module hyperplex

go 1.22
