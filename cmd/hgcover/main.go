// Command hgcover computes approximate minimum-weight vertex covers
// and multicovers of a hypergraph — the paper's bait-selection tool.
//
// Usage:
//
//	hgcover [-weights unit|degree2] [-r N | -reliability P,TARGET] [-skip-singletons]
//	        [-primal-dual | -exact] [-mtx | -store FILE] [file]
//
// -weights degree2 weights each vertex by the square of its degree,
// biasing the cover toward low-degree baits (§4.2).  -r 2 computes a
// 2-multicover; -reliability 0.7,0.95 derives per-complex requirements
// from a pull-down success probability and a recovery target;
// -skip-singletons drops hyperedges too small to satisfy the
// requirement instead of failing.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"hyperplex/internal/bio"
	"hyperplex/internal/cli"
	"hyperplex/internal/cover"
	"hyperplex/internal/hypergraph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hgcover: ")
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) (err error) {
	defer cli.RecoverPanic(&err)
	fs := flag.NewFlagSet("hgcover", flag.ContinueOnError)
	fs.SetOutput(stdout)
	weightScheme := fs.String("weights", "unit", "vertex weights: unit, degree2, or file:PATH (lines of \"name weight\" — the expert-preference weighting §4.2 suggests)")
	r := fs.Int("r", 1, "cover each hyperedge at least this many times")
	reliability := fs.String("reliability", "", "derive requirements from P,TARGET (e.g. 0.7,0.95)")
	skipSingletons := fs.Bool("skip-singletons", false, "drop hyperedges smaller than the requirement instead of failing")
	primalDual := fs.Bool("primal-dual", false, "use the certifying primal-dual algorithm (r must be 1)")
	exact := fs.Bool("exact", false, "use exact branch-and-bound (small instances, r must be 1)")
	useCSR := fs.Bool("csr", true, "run the greedy cover on the flat-array CSR kernel (false = map-based reference kernel; both produce identical covers)")
	mtx := fs.Bool("mtx", false, "input is a Matrix Market file")
	storePath := fs.String("store", "", "read the hypergraph from this binary store file (memory-mapped; overrides [file] and -mtx)")
	quiet := fs.Bool("quiet", false, "suppress the member listing")
	timeout := fs.Duration("timeout", 0, "abort if reading plus covering exceed this duration (0 = no limit)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := cli.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var h *hypergraph.Hypergraph
	if *storePath != "" {
		st, sh, err := cli.OpenStoreCtx(ctx, *storePath)
		if err != nil {
			return err
		}
		// The hypergraph aliases the store's mapped arrays; keep the
		// backend open for the whole run.
		defer st.Close()
		h = sh
	} else {
		h, err = cli.ReadHypergraphCtx(ctx, *mtx, fs.Arg(0), stdin)
		if err != nil {
			return err
		}
	}

	var weights []float64
	switch {
	case *weightScheme == "unit":
		weights = nil
	case *weightScheme == "degree2":
		weights = cover.DegreeSquaredWeights(h)
	case strings.HasPrefix(*weightScheme, "file:"):
		weights, err = loadWeights(h, strings.TrimPrefix(*weightScheme, "file:"))
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown weight scheme %q (want unit, degree2, or file:PATH)", *weightScheme)
	}

	req := cover.UniformRequirement(h, *r)
	if *reliability != "" {
		p, target, err := parseReliability(*reliability)
		if err != nil {
			return err
		}
		req, err = bio.RequirementsForReliability(h, p, target)
		if err != nil {
			return err
		}
	}
	skipped := 0
	if *skipSingletons {
		for f := 0; f < h.NumEdges(); f++ {
			if h.EdgeDegree(f) < req[f] {
				req[f] = 0
				skipped++
			}
		}
	}

	var c *cover.Cover
	switch {
	case *primalDual:
		if *r != 1 {
			return fmt.Errorf("-primal-dual supports only -r 1")
		}
		res, err := cover.PrimalDual(h, weights)
		if err != nil {
			return err
		}
		c = res.Cover
		fmt.Fprintf(stdout, "dual lower bound %.2f, certified ratio %.2f\n", res.DualValue, res.ApproxRatio())
	case *exact:
		if *r != 1 {
			return fmt.Errorf("-exact supports only -r 1")
		}
		c, err = cover.Exact(h, weights, 0)
		if err != nil {
			return err
		}
	case *useCSR:
		c, err = cover.CSRGreedyMulticoverCtx(ctx, h, weights, req)
		if err != nil {
			return err
		}
	default:
		c, err = cover.GreedyMulticoverCtx(ctx, h, weights, req)
		if err != nil {
			return err
		}
	}
	if *primalDual || *exact {
		// These paths solved the plain covering problem.
		req = nil
	}
	if err := cover.Verify(h, c, req); err != nil {
		return fmt.Errorf("internal error: produced cover fails verification: %w", err)
	}

	fmt.Fprintf(stdout, "cover: %d vertices, weight %.2f, average degree %.2f", c.Size(), c.Weight, c.AverageDegree(h))
	if skipped > 0 {
		fmt.Fprintf(stdout, " (%d hyperedges skipped)", skipped)
	}
	fmt.Fprintln(stdout)
	if !*quiet {
		w := bufio.NewWriter(stdout)
		for _, v := range c.Vertices {
			fmt.Fprintln(w, cli.VertexLabel(h, v))
		}
		w.Flush()
	}
	return nil
}

// loadWeights reads "name weight" lines; proteins absent from the file
// get weight 1.  Blank lines and '#' comments are ignored.
func loadWeights(h *hypergraph.Hypergraph, path string) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	weights := cover.UnitWeights(h)
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("weights %s:%d: want \"name weight\", got %q", path, lineNo, line)
		}
		v, ok := h.VertexID(fields[0])
		if !ok {
			return nil, fmt.Errorf("weights %s:%d: unknown protein %q", path, lineNo, fields[0])
		}
		w, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("weights %s:%d: bad weight %q (must be positive)", path, lineNo, fields[1])
		}
		weights[v] = w
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return weights, nil
}

func parseReliability(s string) (p, target float64, err error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("-reliability wants P,TARGET, got %q", s)
	}
	p, err1 := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	target, err2 := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("-reliability wants P,TARGET, got %q", s)
	}
	return p, target, nil
}
