package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hyperplex/internal/store"
)

const sample = "c1: hub a\nc2: hub b\nc3: hub c\n"

func TestRunUnweighted(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "cover: 1 vertices") {
		t.Errorf("output:\n%s", got)
	}
	if !strings.Contains(got, "hub") {
		t.Errorf("hub not listed:\n%s", got)
	}
}

func TestRunDegree2Weights(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-weights", "degree2", "-quiet"}, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cover: 3 vertices") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunMulticover(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-r", "2", "-quiet"}, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	// Each pair needs both members: 4 vertices.
	if !strings.Contains(out.String(), "cover: 4 vertices") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunCSRFlagMatchesMapKernel(t *testing.T) {
	// The default (CSR) and -csr=false (map) kernels must print the
	// byte-identical cover, member listing included.
	var def, mapped bytes.Buffer
	if err := run([]string{"-weights", "degree2", "-r", "2"}, strings.NewReader(sample), &def); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-weights", "degree2", "-r", "2", "-csr=false"}, strings.NewReader(sample), &mapped); err != nil {
		t.Fatal(err)
	}
	if def.String() != mapped.String() {
		t.Errorf("kernels diverge:\n-csr (default):\n%s\n-csr=false:\n%s", def.String(), mapped.String())
	}
}

func TestRunMulticoverInfeasibleAndSkip(t *testing.T) {
	in := "single: z\npair: a b\n"
	var out bytes.Buffer
	if err := run([]string{"-r", "2", "-quiet"}, strings.NewReader(in), &out); err == nil {
		t.Error("infeasible multicover accepted")
	}
	out.Reset()
	if err := run([]string{"-r", "2", "-skip-singletons", "-quiet"}, strings.NewReader(in), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "1 hyperedges skipped") {
		t.Errorf("skip note missing:\n%s", out.String())
	}
}

func TestRunReliabilityRequirements(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-reliability", "0.7,0.95", "-skip-singletons", "-quiet"}, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	// r = 3 capped at size 2: both members of every pair → 4 vertices.
	if !strings.Contains(out.String(), "cover: 4 vertices") {
		t.Errorf("output:\n%s", out.String())
	}
	if err := run([]string{"-reliability", "nonsense"}, strings.NewReader(sample), &out); err == nil {
		t.Error("bad -reliability accepted")
	}
	if err := run([]string{"-reliability", "2,0.5"}, strings.NewReader(sample), &out); err == nil {
		t.Error("out-of-range p accepted")
	}
}

func TestRunPrimalDualAndExact(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-primal-dual", "-quiet"}, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "dual lower bound") {
		t.Errorf("certificate missing:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-exact", "-quiet"}, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cover: 1 vertices, weight 1.00") {
		t.Errorf("exact output:\n%s", out.String())
	}
	// Mode restrictions.
	if err := run([]string{"-primal-dual", "-r", "2"}, strings.NewReader(sample), &out); err == nil {
		t.Error("-primal-dual with -r 2 accepted")
	}
	if err := run([]string{"-exact", "-r", "2"}, strings.NewReader(sample), &out); err == nil {
		t.Error("-exact with -r 2 accepted")
	}
}

func TestRunBadWeightScheme(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-weights", "zipf"}, strings.NewReader(sample), &out); err == nil {
		t.Error("unknown weight scheme accepted")
	}
}

func TestRunWeightFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.txt")
	// Make the hub prohibitively expensive.
	if err := os.WriteFile(path, []byte("# preferences\nhub 100\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-weights", "file:" + path, "-quiet"}, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cover: 3 vertices, weight 3.00") {
		t.Errorf("output:\n%s", out.String())
	}
	// Error paths.
	if err := os.WriteFile(path, []byte("ghost 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-weights", "file:" + path}, strings.NewReader(sample), &out); err == nil {
		t.Error("unknown protein in weight file accepted")
	}
	if err := os.WriteFile(path, []byte("hub -1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-weights", "file:" + path}, strings.NewReader(sample), &out); err == nil {
		t.Error("negative weight accepted")
	}
	if err := run([]string{"-weights", "file:/does/not/exist"}, strings.NewReader(sample), &out); err == nil {
		t.Error("missing weight file accepted")
	}
}

// TestRunStoreMatchesText pins the -store route byte for byte against
// the text route, including a 2-multicover.
func TestRunStoreMatchesText(t *testing.T) {
	dir := t.TempDir()
	textPath := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(textPath, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	storePath := filepath.Join(dir, "g.store")
	if err := store.BuildFile(storePath, store.FileSource("text", textPath)); err != nil {
		t.Fatal(err)
	}
	for _, mode := range [][]string{
		nil,
		{"-r", "2"},
		{"-weights", "degree2"},
	} {
		var text, mapped bytes.Buffer
		if err := run(append(append([]string{}, mode...), textPath), nil, &text); err != nil {
			t.Fatal(err)
		}
		if err := run(append(append([]string{}, mode...), "-store", storePath), nil, &mapped); err != nil {
			t.Fatal(err)
		}
		if text.String() != mapped.String() {
			t.Errorf("%v: text %q vs store %q", mode, text.String(), mapped.String())
		}
	}
}
