// Command hgshardd is a distributed-decomposition worker daemon: it
// dials the coordinator (a dist.DecomposeCtx run, typically launched
// by hgcore -dist or experiments -dist), receives its hypergraph and
// shard assignments over the dist wire protocol, and serves BSP peel
// rounds — heartbeating throughout — until the coordinator shuts it
// down or the connection drops.
//
// Usage:
//
//	hgshardd -connect HOST:PORT [-id N] [-heartbeat D] [-timeout D]
//
// The coordinator normally spawns hgshardd itself and passes -connect,
// -id (the worker slot this process fills, echoed in the Hello
// handshake) and -heartbeat; running it by hand is only useful for
// debugging a coordinator on another machine.
package main

import (
	"context"
	"errors"
	"flag"
	"io"
	"log"
	"net"
	"os"
	"time"

	"hyperplex/internal/cli"
	"hyperplex/internal/dist"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hgshardd: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) (err error) {
	defer cli.RecoverPanic(&err)
	fs := flag.NewFlagSet("hgshardd", flag.ContinueOnError)
	fs.SetOutput(stdout)
	connect := fs.String("connect", "", "coordinator address to dial (required)")
	id := fs.Int("id", 0, "worker slot assigned by the coordinator")
	heartbeat := fs.Duration("heartbeat", 100*time.Millisecond, "liveness beacon interval")
	timeout := fs.Duration("timeout", 0, "abort if serving exceeds this duration (0 = no limit)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *connect == "" {
		return errors.New("-connect is required")
	}
	ctx, cancel := cli.WithTimeout(context.Background(), *timeout)
	defer cancel()

	conn, err := net.Dial("tcp", *connect)
	if err != nil {
		return err
	}
	defer conn.Close()
	return dist.ServeWorker(ctx, conn, dist.WorkerOptions{ID: *id, HeartbeatInterval: *heartbeat})
}
