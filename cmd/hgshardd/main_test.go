package main

import (
	"net"
	"strings"
	"testing"
	"time"
)

func TestRunRequiresConnect(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil || !strings.Contains(err.Error(), "-connect") {
		t.Fatalf("err = %v, want -connect requirement", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-nope"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// TestRunServesUntilHangup dials a fake coordinator that accepts the
// connection and hangs up: the worker must exit cleanly (a coordinator
// EOF is a normal shutdown, not an error).
func TestRunServesUntilHangup(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		defer func() { _ = recover() }()
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// Drain the Hello, then hang up.
		buf := make([]byte, 64)
		_, _ = conn.Read(buf)
		_ = conn.Close()
	}()
	var out strings.Builder
	if err := run([]string{"-connect", ln.Addr().String(), "-heartbeat", "10ms"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestRunTimeout pins the -timeout wiring: against a coordinator that
// never speaks, the worker must give up when the deadline passes.
func TestRunTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		defer func() { _ = recover() }()
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		time.Sleep(5 * time.Second)
	}()
	var out strings.Builder
	start := time.Now()
	err = run([]string{"-connect", ln.Addr().String(), "-timeout", "150ms"}, &out)
	if err == nil {
		t.Fatal("run returned nil against a silent coordinator")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
}
