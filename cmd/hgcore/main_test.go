package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hyperplex/internal/dataset"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/store"
)

// planted has a 3-core {a,b,c,d} plus pendants.
const planted = "e1: a b c\ne2: a b d\ne3: a c d\ne4: b c d\np1: a x\np2: x y\n"

func TestRunMaxCore(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(planted), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "3-core: 4 vertices, 4 hyperedges") {
		t.Errorf("unexpected output:\n%s", got)
	}
	if !strings.Contains(got, "vertex a") || !strings.Contains(got, "hyperedge e4") {
		t.Errorf("member listing missing:\n%s", got)
	}
}

func TestRunExplicitK(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-k", "2", "-quiet"}, strings.NewReader(planted), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "2-core:") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	var seq, par bytes.Buffer
	if err := run([]string{"-k", "3", "-quiet"}, strings.NewReader(planted), &seq); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-k", "3", "-parallel", "2", "-quiet"}, strings.NewReader(planted), &par); err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Errorf("sequential %q vs parallel %q", seq.String(), par.String())
	}
}

func TestRunShardedMatchesSequential(t *testing.T) {
	for _, mode := range [][]string{
		{"-max", "-quiet"},
		{"-decompose"},
	} {
		var seq, sharded bytes.Buffer
		if err := run(mode, strings.NewReader(planted), &seq); err != nil {
			t.Fatal(err)
		}
		if err := run(append([]string{"-shards", "3"}, mode...), strings.NewReader(planted), &sharded); err != nil {
			t.Fatal(err)
		}
		if seq.String() != sharded.String() {
			t.Errorf("%v: sequential %q vs sharded %q", mode, seq.String(), sharded.String())
		}
	}
}

// TestRunCSRMatchesMapPeeler pins the -csr default (the flat-array
// kernel) to the map-based peeler byte for byte, member listing
// included, for both the maximum-core and decompose modes.
func TestRunCSRMatchesMapPeeler(t *testing.T) {
	for _, mode := range [][]string{
		{"-max"},
		{"-decompose"},
	} {
		var flat, maps bytes.Buffer
		if err := run(mode, strings.NewReader(planted), &flat); err != nil {
			t.Fatal(err)
		}
		if err := run(append([]string{"-csr=false"}, mode...), strings.NewReader(planted), &maps); err != nil {
			t.Fatal(err)
		}
		if flat.String() != maps.String() {
			t.Errorf("%v: csr %q vs map peeler %q", mode, flat.String(), maps.String())
		}
	}
}

func TestRunBiCoreFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-k", "2", "-l", "3", "-quiet"}, strings.NewReader(planted), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "2-core: 4 vertices") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestRunDecompose(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-decompose"}, strings.NewReader(planted), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "maximum core: 3") {
		t.Errorf("output:\n%s", got)
	}
	if !strings.Contains(got, "a\t3") || !strings.Contains(got, "y\t1") {
		t.Errorf("coreness listing missing:\n%s", got)
	}
	if !strings.Contains(got, "3-core: 4 vertices, 4 hyperedges") {
		t.Errorf("profile missing:\n%s", got)
	}
}

func TestRunPajekOutput(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "core")
	var out bytes.Buffer
	if err := run([]string{"-quiet", "-pajek", prefix}, strings.NewReader(planted), &out); err != nil {
		t.Fatal(err)
	}
	net, err := os.ReadFile(prefix + ".net")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(net), "*Edges") {
		t.Error(".net missing edges section")
	}
	if _, err := os.Stat(prefix + ".clu"); err != nil {
		t.Error(".clu missing")
	}
}

func TestRunBadInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader("garbage without colon"), &out); err == nil {
		t.Error("bad input accepted")
	}
}

// TestRunDistMatchesSequential pins the -dist route (coordinator plus
// an in-process worker pool over loopback TCP) to the sequential
// output byte for byte, with and without -local-fallback.
func TestRunDistMatchesSequential(t *testing.T) {
	for _, mode := range [][]string{
		{"-max", "-quiet"},
		{"-decompose", "-quiet"},
	} {
		var seq, dist bytes.Buffer
		if err := run(mode, strings.NewReader(planted), &seq); err != nil {
			t.Fatal(err)
		}
		if err := run(append([]string{"-dist", "2", "-shards", "3", "-local-fallback"}, mode...), strings.NewReader(planted), &dist); err != nil {
			t.Fatal(err)
		}
		if seq.String() != dist.String() {
			t.Errorf("%v: sequential %q vs dist %q", mode, seq.String(), dist.String())
		}
	}
}

// TestRunStoreMatchesText pins the -store route byte for byte against
// the text route, member listings included, on the calibrated Cellzome
// instance — the ISSUE's out-of-core smoke: text → store file →
// memory-mapped decomposition must be indistinguishable from the
// all-in-RAM run.
func TestRunStoreMatchesText(t *testing.T) {
	dir := t.TempDir()
	h := dataset.Cellzome().H
	textPath := filepath.Join(dir, "cellzome.txt")
	tf, err := os.Create(textPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := hypergraph.WriteText(tf, h); err != nil {
		t.Fatal(err)
	}
	if err := tf.Close(); err != nil {
		t.Fatal(err)
	}
	// Build the store from the text file with the streaming builder, so
	// both routes see the same first-encounter vertex numbering (the
	// original instance's insertion order is not recoverable from text).
	storePath := filepath.Join(dir, "cellzome.store")
	if err := store.BuildFile(storePath, store.FileSource("text", textPath)); err != nil {
		t.Fatal(err)
	}
	for _, mode := range [][]string{
		{"-max"},
		{"-decompose"},
		{"-k", "4"},
	} {
		var text, mapped bytes.Buffer
		if err := run(append(append([]string{}, mode...), textPath), nil, &text); err != nil {
			t.Fatal(err)
		}
		if err := run(append(append([]string{}, mode...), "-store", storePath), nil, &mapped); err != nil {
			t.Fatal(err)
		}
		if text.String() != mapped.String() {
			t.Errorf("%v: text and -store outputs differ", mode)
		}
	}
}

func TestRunStoreBadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.store")
	if err := os.WriteFile(path, []byte("not a store"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-store", path}, nil, &out); err == nil {
		t.Error("junk store file accepted")
	}
}
