// Command hgcore computes k-cores of a hypergraph.
//
// Usage:
//
//	hgcore [-k N | -max | -decompose] [-l N] [-mtx | -store FILE] [-csr] [-parallel N] [-shards N] [-dist N [-hgshardd PATH] [-local-fallback]] [-pajek PREFIX] [file]
//
// With -k it prints the members of the k-core (or the (k, l)-core with
// -l); with -max (default) the maximum core; with -decompose the
// coreness of every vertex.  -pajek writes PREFIX.net and PREFIX.clu
// with the core highlighted (Fig. 3 of the paper).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"hyperplex/internal/cli"
	"hyperplex/internal/core"
	"hyperplex/internal/dist"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/pajek"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hgcore: ")
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) (err error) {
	defer cli.RecoverPanic(&err)
	fs := flag.NewFlagSet("hgcore", flag.ContinueOnError)
	fs.SetOutput(stdout)
	k := fs.Int("k", -1, "compute the k-core for this k")
	l := fs.Int("l", 1, "minimum hyperedge size (the l of a (k, l)-core)")
	max := fs.Bool("max", false, "compute the maximum core (default when -k and -decompose are absent)")
	decompose := fs.Bool("decompose", false, "print the coreness of every vertex")
	mtx := fs.Bool("mtx", false, "input is a Matrix Market file")
	storePath := fs.String("store", "", "read the hypergraph from this binary store file (memory-mapped; overrides [file] and -mtx)")
	parallel := fs.Int("parallel", 0, "use the parallel algorithm with this many workers (0 = sequential)")
	shards := fs.Int("shards", 0, "use the sharded decomposition engine with this many shards (0 = sequential)")
	csr := fs.Bool("csr", true, "route -max and -decompose through the flat-array CSR kernel (-csr=false keeps the map-based peeler)")
	distN := fs.Int("dist", 0, "run the decomposition on a fault-tolerant pool of this many workers (0 = in-process)")
	hgshardd := fs.String("hgshardd", "", "spawn -dist workers as OS processes running this hgshardd binary (empty = in-process workers)")
	localFallback := fs.Bool("local-fallback", false, "with -dist, degrade to the in-process sharded engine if the worker pool collapses")
	pajekPrefix := fs.String("pajek", "", "write PREFIX.net and PREFIX.clu with the core highlighted")
	quiet := fs.Bool("quiet", false, "suppress the member listing")
	timeout := fs.Duration("timeout", 0, "abort if reading plus peeling exceed this duration (0 = no limit)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := cli.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var h *hypergraph.Hypergraph
	if *storePath != "" {
		st, sh, err := cli.OpenStoreCtx(ctx, *storePath)
		if err != nil {
			return err
		}
		// The hypergraph aliases the store's mapped arrays; keep the
		// backend open for the whole run.
		defer st.Close()
		h = sh
	} else {
		h, err = cli.ReadHypergraphCtx(ctx, *mtx, fs.Arg(0), stdin)
		if err != nil {
			return err
		}
	}

	// decomposeVia routes through the distributed runtime when -dist is
	// set, the sharded engine when -shards is set, otherwise through
	// the CSR kernel unless -csr=false; all paths produce identical
	// vertex coreness.
	decomposeVia := func() (*core.Decomposition, error) {
		switch {
		case *distN > 0:
			opts := dist.Options{
				Workers:       *distN,
				Shards:        *shards,
				LocalFallback: *localFallback,
				WorkerStderr:  os.Stderr,
			}
			if *hgshardd != "" {
				opts.WorkerCommand = []string{*hgshardd}
			}
			return dist.DecomposeCtx(ctx, h, opts)
		case *shards > 0:
			return core.ShardedDecomposeCtx(ctx, h, core.ShardedOptions{Shards: *shards})
		case *csr:
			return core.CSRDecomposeCtx(ctx, h)
		default:
			return core.DecomposeCtx(ctx, h)
		}
	}

	switch {
	case *decompose:
		d, err := decomposeVia()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "maximum core: %d\n", d.MaxK)
		for _, lvl := range d.Profile() {
			fmt.Fprintf(stdout, "  %d-core: %d vertices, %d hyperedges\n", lvl.K, lvl.Vertices, lvl.Edges)
		}
		if !*quiet {
			for v := 0; v < h.NumVertices(); v++ {
				fmt.Fprintf(stdout, "%s\t%d\n", cli.VertexLabel(h, v), d.VertexCoreness[v])
			}
		}
		return nil
	case *k >= 0:
		var r *core.Result
		switch {
		case *l > 1:
			r, err = core.BiCoreCtx(ctx, h, *k, *l)
		case *parallel > 0:
			r, err = core.KCoreParallelCtx(ctx, h, *k, *parallel)
		default:
			r, err = core.KCoreCtx(ctx, h, *k)
		}
		if err != nil {
			return err
		}
		return report(stdout, h, r, *pajekPrefix, *quiet)
	default:
		_ = max
		var r *core.Result
		if *shards > 0 || *csr {
			d, err := decomposeVia()
			if err != nil {
				return err
			}
			if d.MaxK == 0 {
				// Core(0) keeps non-maximal edges; the 0-core is the
				// reduced hypergraph, so peel it directly.
				r, err = core.KCoreCtx(ctx, h, 0)
				if err != nil {
					return err
				}
			} else {
				r = d.Core(d.MaxK)
			}
		} else {
			r, err = core.MaxCoreCtx(ctx, h)
		}
		if err != nil {
			return err
		}
		return report(stdout, h, r, *pajekPrefix, *quiet)
	}
}

func report(stdout io.Writer, h *hypergraph.Hypergraph, r *core.Result, pajekPrefix string, quiet bool) error {
	fmt.Fprintf(stdout, "%d-core: %d vertices, %d hyperedges\n", r.K, r.NumVertices, r.NumEdges)
	if !quiet {
		w := bufio.NewWriter(stdout)
		for v := range r.VertexIn {
			if r.VertexIn[v] {
				fmt.Fprintf(w, "vertex %s\n", cli.VertexLabel(h, v))
			}
		}
		for f := range r.EdgeIn {
			if r.EdgeIn[f] {
				fmt.Fprintf(w, "hyperedge %s\n", cli.EdgeLabel(h, f))
			}
		}
		w.Flush()
	}
	if pajekPrefix != "" {
		if err := writePajek(h, r, pajekPrefix); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s.net and %s.clu\n", pajekPrefix, pajekPrefix)
	}
	return nil
}

func writePajek(h *hypergraph.Hypergraph, r *core.Result, prefix string) error {
	nf, err := os.Create(prefix + ".net")
	if err != nil {
		return err
	}
	defer nf.Close()
	if err := pajek.WriteNet(nf, h, r.VertexIn, r.EdgeIn); err != nil {
		return err
	}
	cf, err := os.Create(prefix + ".clu")
	if err != nil {
		return err
	}
	defer cf.Close()
	return pajek.WriteClu(cf, h, r.VertexIn, r.EdgeIn)
}
