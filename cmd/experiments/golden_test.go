package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden experiments output")

// goldenIDs is the deterministic subset of the experiment registry:
// everything except the experiments that sample trial noise (X1, X5),
// time-dependent scaling runs (T1, X3) or write artifact files whose
// content is covered elsewhere (F3).
var goldenIDs = []string{"F1", "F2", "S2", "S3", "S4", "X2"}

// timingRe erases wall-clock measurements so the pinned output only
// contains machine-independent numbers.
var timingRe = regexp.MustCompile(`\d+\.\d+s`)

// TestGoldenPaperNumbers pins the full output of the deterministic
// experiments, so any drift in the reproduced paper numbers (degree
// power law, small-world statistics, maximum core, cover sizes) fails
// loudly with a diff instead of rotting silently.  Run with -update to
// accept intentional changes.
func TestGoldenPaperNumbers(t *testing.T) {
	var buf bytes.Buffer
	o := options{short: false, outDir: t.TempDir(), trials: 5, csr: true}
	for _, id := range goldenIDs {
		found := false
		for _, e := range allExperiments {
			if e.id != id {
				continue
			}
			found = true
			fmt.Fprintf(&buf, "==== %s: %s ====\n", e.id, e.title)
			if err := e.run(&buf, o); err != nil {
				t.Fatalf("%s: %v", e.id, err)
			}
			fmt.Fprintln(&buf)
		}
		if !found {
			t.Fatalf("golden experiment %s not in registry", id)
		}
	}
	got := timingRe.ReplaceAllString(buf.String(), "<time>")

	path := filepath.Join("testdata", "golden_paper.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if got != string(want) {
		t.Errorf("experiments output drifted from %s (run with -update to accept):\n%s",
			path, firstDiff(string(want), got))
	}

	// Belt and braces: the paper's headline numbers must appear verbatim
	// even if the golden file is regenerated carelessly.
	for _, must := range []string{
		"gamma = 2.528",
		"R² = 0.963",
		"2.568",
		"diameter",
		"6-core with 41 proteins and 54 complexes",
		"109 @ 3.7",
		"233 @ 1.14",
		"558 @ 1.74",
	} {
		if !strings.Contains(got, must) {
			t.Errorf("output lost the paper constant %q", must)
		}
	}
}

// TestGoldenShardedMatchesSequential pins that the sharded engine
// prints the identical paper numbers: the §3 core-proteome experiment
// run with -shards must produce byte-identical output (after erasing
// wall-clock timings) to the sequential run, including the headline
// "6-core with 41 proteins and 54 complexes".
func TestGoldenShardedMatchesSequential(t *testing.T) {
	runS3With := func(o options) string {
		var buf bytes.Buffer
		for _, e := range allExperiments {
			if e.id != "S3" {
				continue
			}
			if err := e.run(&buf, o); err != nil {
				t.Fatalf("S3 with %+v: %v", o, err)
			}
		}
		return timingRe.ReplaceAllString(buf.String(), "<time>")
	}
	seq := runS3With(options{outDir: t.TempDir()})
	if !strings.Contains(seq, "6-core with 41 proteins and 54 complexes") {
		t.Fatalf("sequential S3 lost the paper's core proteome:\n%s", seq)
	}
	for _, shards := range []int{1, 3, 16} {
		sharded := runS3With(options{outDir: t.TempDir(), shards: shards})
		if sharded != seq {
			t.Errorf("S3 output with shards=%d differs from sequential:\n%s", shards, firstDiff(seq, sharded))
		}
	}
	if flat := runS3With(options{outDir: t.TempDir(), csr: true}); flat != seq {
		t.Errorf("S3 output with the CSR kernel differs from sequential:\n%s", firstDiff(seq, flat))
	}
}

// firstDiff renders the first differing line of two texts.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("line %d:\n-%s\n+%s", i+1, w, g)
		}
	}
	return "(texts equal)"
}
