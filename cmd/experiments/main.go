// Command experiments reproduces every table and figure of Ramadan,
// Tarafdar & Pothen (IPPS 2004) on the synthetic calibrated datasets
// and prints paper-vs-measured rows.  EXPERIMENTS.md is generated from
// this tool's output.
//
// Usage:
//
//	experiments [-run F1,T1,S2,...|all] [-short] [-out DIR] [-trials N]
//
// Experiment IDs: F1 F2 F3 T1 S2 S3 S4 X1 X2 X3 X4 (see DESIGN.md).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hyperplex/internal/cli"
)

func main() {
	runFlag := flag.String("run", "all", "comma-separated experiment IDs (F1,F2,F3,T1,S2,S3,S4,X1,X2,X3,X4) or 'all'")
	short := flag.Bool("short", false, "shrink the Table 1 matrices and trial counts for a quick run")
	outDir := flag.String("out", ".", "directory for generated artifacts (fig3.net, fig3.clu)")
	trials := flag.Int("trials", 100, "TAP simulation trials for X1")
	shards := flag.Int("shards", 0, "compute maximum cores with the sharded engine on this many shards (0 = sequential peeler)")
	distW := flag.Int("dist", 0, "compute maximum cores on a fault-tolerant distributed pool of this many workers (0 = in-process)")
	csr := flag.Bool("csr", true, "compute maximum cores with the flat-array CSR kernel (-csr=false keeps the map-based peeler)")
	storeDir := flag.String("store", "", "round every maximum-core input through a memory-mapped store file in this directory (out-of-core mode)")
	timeout := flag.Duration("timeout", 0, "stop starting new experiments after this duration (0 = no limit)")
	flag.Parse()
	ctx, cancel := cli.WithTimeout(context.Background(), *timeout)
	defer cancel()

	wanted := map[string]bool{}
	if *runFlag == "all" {
		for _, id := range allExperiments {
			wanted[id.id] = true
		}
	} else {
		for _, s := range strings.Split(*runFlag, ",") {
			wanted[strings.ToUpper(strings.TrimSpace(s))] = true
		}
	}

	opts := options{short: *short, outDir: *outDir, trials: *trials, shards: *shards, csr: *csr, dist: *distW, store: *storeDir}
	if *short && *trials > 20 {
		opts.trials = 20
	}
	failed := false
	for _, e := range allExperiments {
		if !wanted[e.id] {
			continue
		}
		// The deadline is coarse: it stops starting new experiments
		// rather than interrupting one mid-flight.
		if err := ctx.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: not run: %v\n", e.id, err)
			failed = true
			continue
		}
		fmt.Printf("==== %s: %s ====\n", e.id, e.title)
		if err := runExperiment(e, os.Stdout, opts); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
			failed = true
		}
		fmt.Println()
	}
	if failed {
		os.Exit(1)
	}
}

// runExperiment runs one experiment with a panic boundary, so a fault
// in one experiment reports as its failure instead of killing the
// whole sweep.
func runExperiment(e experiment, w io.Writer, o options) (err error) {
	defer cli.RecoverPanic(&err)
	return e.run(w, o)
}

type options struct {
	short  bool
	outDir string
	trials int
	// shards > 0 routes maximum-core computations through the sharded
	// decomposition engine; 0 keeps the sequential peeler.
	shards int
	// csr routes maximum-core computations through the flat-array CSR
	// kernel when no sharded engine was requested.
	csr bool
	// dist > 0 routes maximum-core computations through the
	// fault-tolerant distributed runtime with this many workers
	// (local fallback enabled, so a pool collapse degrades rather
	// than fails).
	dist int
	// store, when non-empty, names a directory: every maximum-core
	// input is first written to a store file there and re-read through
	// the memory-mapped backend, so the peel runs over the on-disk
	// arrays (out-of-core mode).  The cores are identical either way.
	store string
}

type experiment struct {
	id    string
	title string
	run   func(w io.Writer, o options) error
}

var allExperiments = []experiment{
	{"F1", "Fig. 1 — protein degree power law", runF1},
	{"F2", "Fig. 2 — k-core of a graph", runF2},
	{"F3", "Fig. 3 — Pajek export of the hypergraph and its maximum core", runF3},
	{"T1", "Table 1 — hypergraph statistics and maximum cores", runT1},
	{"S2", "§2 — components and small-world statistics", runS2},
	{"S3", "§3 — core proteome and DIP graph cores", runS3},
	{"S4", "§4.2 — vertex covers for bait selection", runS4},
	{"X1", "X1 — TAP reliability: cover vs multicover (extension)", runX1},
	{"X2", "X2 — primal-dual vs greedy covers (extension)", runX2},
	{"X3", "X3 — parallel k-core scaling (extension)", runX3},
	{"X4", "X4 — model comparison: storage and clustering (extension)", runX4},
	{"X5", "X5 — human-proteome-scale core computation (extension)", runX5},
	{"X6", "X6 — complex prediction from graph cores vs the hypergraph (§3 warning)", runX6},
	{"X7", "X7 — cross-organism bait transfer (§4 second scenario)", runX7},
}
