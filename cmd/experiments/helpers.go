package main

import (
	"io"

	"hyperplex/internal/core"
	"hyperplex/internal/dataset"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/mmio"
	"hyperplex/internal/pajek"
)

func toHypergraph(m *mmio.Matrix) (*hypergraph.Hypergraph, error) {
	return mmio.ToHypergraph(m)
}

func writeNet(w io.Writer, inst *dataset.Instance, mc *core.Result) error {
	return pajek.WriteNet(w, inst.H, mc.VertexIn, mc.EdgeIn)
}

func writeClu(w io.Writer, inst *dataset.Instance, mc *core.Result) error {
	return pajek.WriteClu(w, inst.H, mc.VertexIn, mc.EdgeIn)
}
