package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// TestAllExperimentsShort drives every experiment at -short scale and
// checks the paper-vs-measured markers appear.
func TestAllExperimentsShort(t *testing.T) {
	checks := map[string][]string{
		"F1": {"fit:", "paper:", "gamma"},
		"F2": {"maximum core: 3-core"},
		"F3": {"core highlight: 41 proteins (red), 54 complexes (green)"},
		"T1": {"Cellzome", "bfw398a", "max core"},
		"S2": {"connected components", "33", "diameter", "power law satisfied", "complex degrees"},
		"S3": {"6-core with 41 proteins and 54 complexes", "DIP yeast", "k = 10 with 33"},
		"S4": {"greedy min-cardinality cover", "2-multicover", "459"},
		"X1": {"2-multicover (r=2)", "reliability multicover", "mean recov"},
		"X2": {"greedy weight", "dual LB", "H_m"},
		"X3": {"sequential:", "parallel", "[OK]"},
		"X4": {"clique-expansion edges", "clustering coefficient"},
		"X5": {"synthetic human-scale proteome", "maximum core"},
		"X6": {"clique-expansion PPI graph", "hypergraph 6-core hyperedges"},
		"X7": {"projected-cover baits", "random baits"},
	}
	o := options{short: true, outDir: t.TempDir(), trials: 5, csr: true}
	for _, e := range allExperiments {
		e := e
		t.Run(e.id, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.run(&buf, o); err != nil {
				t.Fatalf("%s: %v", e.id, err)
			}
			out := buf.String()
			for _, want := range checks[e.id] {
				if !strings.Contains(out, want) {
					t.Errorf("%s output missing %q:\n%s", e.id, want, out)
				}
			}
		})
	}
	if len(checks) != len(allExperiments) {
		t.Errorf("checks cover %d experiments, registry has %d", len(checks), len(allExperiments))
	}
}

// TestStoreOptionMatches runs a maximum-core experiment in out-of-core
// mode (-store DIR routes the input through a memory-mapped store
// file) and checks the cores come out identical to the in-RAM run.
func TestStoreOptionMatches(t *testing.T) {
	o := options{short: true, outDir: t.TempDir(), trials: 5, csr: true, store: t.TempDir()}
	var buf bytes.Buffer
	if err := runS3(&buf, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "6-core with 41 proteins and 54 complexes") {
		t.Errorf("out-of-core S3 lost the paper core:\n%s", buf.String())
	}
	// The store directory must not accumulate files: each round-trip
	// cleans up after itself.
	entries, err := os.ReadDir(o.store)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("store directory littered: %v", entries)
	}
}
