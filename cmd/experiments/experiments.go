package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"hyperplex/internal/bio"
	"hyperplex/internal/core"
	"hyperplex/internal/cover"
	"hyperplex/internal/dataset"
	"hyperplex/internal/dist"
	"hyperplex/internal/gen"
	"hyperplex/internal/graph"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/stats"
	"hyperplex/internal/store"
	"hyperplex/internal/xrand"
)

// maxCoreVia computes the maximum core with the engine selected by
// -dist, -shards and -csr: the fault-tolerant distributed runtime when
// -dist is set, the sharded decomposition engine when -shards is set,
// otherwise the flat-array CSR kernel unless -csr=false, else the
// sequential map-based peeler (all produce the same cores; the golden
// test pins that on the paper numbers).
func maxCoreVia(h *hypergraph.Hypergraph, o options) (*core.Result, error) {
	if o.store != "" {
		tmp, err := os.CreateTemp(o.store, "experiment-*.store")
		if err != nil {
			return nil, err
		}
		path := tmp.Name()
		tmp.Close()
		defer os.Remove(path)
		if err := store.WriteH(path, h); err != nil {
			return nil, err
		}
		st, err := store.Open(path, store.Options{})
		if err != nil {
			return nil, err
		}
		defer st.Close()
		mapped, err := st.H()
		if err != nil {
			return nil, err
		}
		// Recurse once with the store-backed hypergraph; the peel below
		// then reads the mapped arrays.
		h = mapped
		o.store = ""
		return maxCoreVia(h, o)
	}
	var d *core.Decomposition
	switch {
	case o.dist > 0:
		var err error
		d, err = dist.Decompose(h, dist.Options{Workers: o.dist, Shards: o.shards, LocalFallback: true, WorkerStderr: os.Stderr})
		if err != nil {
			return nil, err
		}
	case o.shards > 0:
		d = core.ShardedDecompose(h, core.ShardedOptions{Shards: o.shards})
	case o.csr:
		d = core.CSRDecompose(h)
	default:
		return core.MaxCore(h), nil
	}
	if d.MaxK == 0 {
		// Core(0) keeps non-maximal edges; the 0-core is the reduced
		// hypergraph, so peel it directly.
		return core.KCore(h, 0), nil
	}
	return d.Core(d.MaxK), nil
}

// greedyVia runs the greedy cover (req == nil) or multicover with the
// kernel selected by -csr: the flat-array CSR kernel by default, the
// map-based reference with -csr=false.  The two kernels produce
// identical covers — same vertices, same order, bitwise-equal weight —
// so every experiment output is flag-independent.
func greedyVia(h *hypergraph.Hypergraph, weights []float64, req []int, o options) (*cover.Cover, error) {
	if o.csr {
		return cover.CSRGreedyMulticover(h, weights, req)
	}
	return cover.GreedyMulticover(h, weights, req)
}

// runF1 reproduces Fig. 1: the protein degree distribution of the
// Cellzome hypergraph and its power-law fit.
func runF1(w io.Writer, o options) error {
	inst := dataset.Cellzome()
	hist := stats.DegreeHistogram(inst.H.VertexDegrees())
	fmt.Fprintln(w, "degree  frequency")
	for d := 1; d < len(hist); d++ {
		if hist[d] > 0 {
			fmt.Fprintf(w, "%6d  %9d\n", d, hist[d])
		}
	}
	fit, err := stats.FitPowerLaw(hist)
	if err != nil {
		return err
	}
	p := inst.Published
	fmt.Fprintf(w, "fit:   log c = %.3f, gamma = %.3f, R² = %.3f\n", fit.LogC, fit.Gamma, fit.R2)
	fmt.Fprintf(w, "paper: log c = %.3f, gamma = %.3f, R² = %.3f\n", p.PowerLawLogC, p.PowerLawGamma, p.PowerLawR2)
	return nil
}

// runF2 reproduces Fig. 2: the k-cores of the illustrative graph
// (1-core = whole graph, 2-core = 3-core = maximum core, 4-core = ∅).
func runF2(w io.Writer, o options) error {
	g := graph.MustBuild(7, [][2]int32{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, // K4: the 3-core
		{3, 4}, {4, 5}, {0, 6}, // pendant path and leaf
	})
	coreness := core.GraphCoreness(g)
	fmt.Fprintf(w, "vertex coreness: %v\n", coreness)
	for k := 1; k <= 4; k++ {
		in := core.GraphKCore(g, k)
		n := 0
		for _, b := range in {
			if b {
				n++
			}
		}
		fmt.Fprintf(w, "%d-core: %d vertices\n", k, n)
	}
	k, _ := core.GraphMaxCore(g)
	fmt.Fprintf(w, "maximum core: %d-core (paper's figure: 3-core; 2-core = 3-core; 4-core empty)\n", k)
	return nil
}

// runF3 reproduces Fig. 3: the Pajek export with the maximum core
// highlighted (red proteins / green complexes).
func runF3(w io.Writer, o options) error {
	inst := dataset.Cellzome()
	mc := core.MaxCore(inst.H)
	netPath := filepath.Join(o.outDir, "fig3.net")
	cluPath := filepath.Join(o.outDir, "fig3.clu")
	nf, err := os.Create(netPath)
	if err != nil {
		return err
	}
	defer nf.Close()
	if err := writeNet(nf, inst, mc); err != nil {
		return err
	}
	cf, err := os.Create(cluPath)
	if err != nil {
		return err
	}
	defer cf.Close()
	if err := writeClu(cf, inst, mc); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s (%d vertices + %d complexes, %d pins) and %s\n",
		netPath, inst.H.NumVertices(), inst.H.NumEdges(), inst.H.NumPins(), cluPath)
	fmt.Fprintf(w, "core highlight: %d proteins (red), %d complexes (green)\n", mc.NumVertices, mc.NumEdges)
	return nil
}

// runT1 reproduces Table 1: statistics and maximum cores of the
// Cellzome hypergraph and the synthetic Matrix Market suite.
func runT1(w io.Writer, o options) error {
	names, hs := dataset.Table1Hypergraphs(o.short)
	fmt.Fprintln(w, dataset.Table1Header())
	for i, h := range hs {
		row := dataset.Table1Row{
			Name:     names[i],
			NumV:     h.NumVertices(),
			NumF:     h.NumEdges(),
			Pins:     h.NumPins(),
			MaxVDeg:  h.MaxVertexDegree(),
			MaxFDeg:  h.MaxEdgeDegree(),
			MaxDeg2F: h.MaxDegree2Edge(),
		}
		start := time.Now()
		mc, err := maxCoreVia(h, o)
		if err != nil {
			return err
		}
		row.ElapsedSec = time.Since(start).Seconds()
		row.MaxCoreK = mc.K
		row.CoreV = mc.NumVertices
		row.CoreF = mc.NumEdges
		fmt.Fprintln(w, row.Format())
	}
	fmt.Fprintln(w, "paper (2 GHz Xeon): Cellzome row had max core 6 with 41/54 in 0.47 s;")
	fmt.Fprintln(w, "larger rows ran seconds to hours — absolute times are machine-bound, the size→time ordering is the reproducible shape.")
	return nil
}

// runS2 reproduces the §2 text statistics.
func runS2(w io.Writer, o options) error {
	inst := dataset.Cellzome()
	h := inst.H
	p := inst.Published
	_, _, comps := stats.Components(h)
	deg1 := 0
	for v := 0; v < h.NumVertices(); v++ {
		if h.VertexDegree(v) == 1 {
			deg1++
		}
	}
	sw := stats.SmallWorldStats(h, runtime.NumCPU())
	adh1, _ := h.VertexID("ADH1")
	fmt.Fprintf(w, "%-34s %10s %10s\n", "metric", "measured", "paper")
	row := func(name string, got, want interface{}) {
		fmt.Fprintf(w, "%-34s %10v %10v\n", name, got, want)
	}
	row("proteins", h.NumVertices(), p.Proteins)
	row("complexes", h.NumEdges(), p.Complexes)
	row("connected components", len(comps), p.Components)
	row("largest component proteins", comps[0].Vertices, p.LargestCompV)
	row("largest component complexes", comps[0].Edges, p.LargestCompF)
	row("degree-1 proteins", deg1, p.DegreeOneProteins)
	row("max protein degree (ADH1)", h.VertexDegree(adh1), p.MaxProteinDegree)
	row("diameter", sw.Diameter, p.Diameter)
	row("average path length", fmt.Sprintf("%.3f", sw.AvgPathLength), p.AvgPathLength)

	// §2's second distributional claim: protein degrees follow a power
	// law, complex degrees satisfy neither a power law nor an
	// exponential.
	pv := stats.JudgeDistribution(stats.DegreeHistogram(h.VertexDegrees()), 0.9)
	cv := stats.JudgeDistribution(stats.DegreeHistogram(h.EdgeDegrees()), 0.9)
	fmt.Fprintf(w, "protein degrees:  %v\n", pv)
	fmt.Fprintf(w, "complex degrees:  %v\n", cv)
	fmt.Fprintln(w, "paper: protein degrees satisfy a power law; complex degrees satisfy neither distribution")
	return nil
}

// runS3 reproduces §3: the core proteome of the Cellzome hypergraph,
// its enrichment in essential and homologous proteins, and the DIP
// graph cores.
func runS3(w io.Writer, o options) error {
	inst := dataset.Cellzome()
	h := inst.H
	p := inst.Published

	start := time.Now()
	mc, err := maxCoreVia(h, o)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Fprintf(w, "maximum core: %d-core with %d proteins and %d complexes in %.3fs (paper: %d-core, %d/%d, 0.47s)\n",
		mc.K, mc.NumVertices, mc.NumEdges, elapsed.Seconds(), p.MaxCoreK, p.MaxCoreProteins, p.MaxCoreComplexes)

	// Characterize the core proteome.
	unknown, knownEssential, homologs, homologUnknown := 0, 0, 0, 0
	for v := range mc.VertexIn {
		if !mc.VertexIn[v] {
			continue
		}
		if !inst.Ann.Known[v] {
			unknown++
			if inst.Ann.Homolog[v] {
				homologUnknown++
			}
		} else if inst.Ann.Essential[v] {
			knownEssential++
		}
		if inst.Ann.Homolog[v] {
			homologs++
		}
	}
	fmt.Fprintf(w, "core characterization: %d unknown (paper %d); %d of %d known essential (paper %d of %d); %d homologs, %d among unknown (paper %d, %d)\n",
		unknown, p.CoreUnknown, knownEssential, mc.NumVertices-unknown, p.CoreKnownEssential, 41-p.CoreUnknown,
		homologs, homologUnknown, p.CoreHomologs, 3)

	known := make([]bool, h.NumVertices())
	for v := range known {
		known[v] = mc.VertexIn[v] && inst.Ann.Known[v]
	}
	e := bio.EnrichmentOf(known, inst.Ann.Essential, bio.GenomeEssentialFraction(), "essential proteins in the core")
	fmt.Fprintf(w, "enrichment: %v\n", e)
	fmt.Fprintf(w, "genome background: %d essential / %d non-essential\n", bio.GenomeEssential, bio.GenomeNonEssential)

	// DIP graph cores.
	for _, gi := range []*dataset.GraphInstance{dataset.DIPYeast(), dataset.DIPFly()} {
		k, in := core.GraphMaxCore(gi.G)
		n := 0
		for _, b := range in {
			if b {
				n++
			}
		}
		fmt.Fprintf(w, "%s: %d proteins, max core k = %d with %d proteins (paper: %d, k = %d, %d)\n",
			gi.Published.Name, gi.G.NumVertices(), k, n,
			gi.Published.Proteins, gi.Published.MaxCoreK, gi.Published.CoreSize)
	}
	return nil
}

// runS4 reproduces §4.2: the three covers and the Cellzome bait
// baseline.
func runS4(w io.Writer, o options) error {
	inst := dataset.Cellzome()
	h := inst.H
	p := inst.Published

	c1, err := greedyVia(h, nil, nil, o)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "greedy min-cardinality cover:  %4d proteins, avg degree %.2f   (paper: %d @ %.1f)\n",
		c1.Size(), c1.AverageDegree(h), p.GreedyCoverSize, p.GreedyCoverAvgDeg)

	c2, err := greedyVia(h, cover.DegreeSquaredWeights(h), nil, o)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "degree²-weighted cover:        %4d proteins, avg degree %.2f   (paper: %d @ %.2f)\n",
		c2.Size(), c2.AverageDegree(h), p.WeightedCoverSize, p.WeightedCoverAvgD)

	req := cover.UniformRequirement(h, 2)
	for _, f := range inst.Singletons {
		req[f] = 0
	}
	c3, err := greedyVia(h, cover.DegreeSquaredWeights(h), req, o)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "2-multicover (%d complexes):  %4d proteins, avg degree %.2f   (paper: %d @ %.2f)\n",
		h.NumEdges()-len(inst.Singletons), c3.Size(), c3.AverageDegree(h), p.MulticoverSize, p.MulticoverAvgDeg)
	fmt.Fprintln(w, "note: the paper's 558 exceeds the multicover maximum of 2×229 = 458 picks; see EXPERIMENTS.md.")

	bs := bio.ComputeBaitStats(h, inst.BaitsReported)
	fmt.Fprintf(w, "Cellzome baseline baits:       %4d proteins, avg degree %.2f   (paper: %d @ %.2f; pulled 1/2/3: %d/%d/%d)\n",
		bs.Count, bs.AverageDegree, p.BaitsReported, p.BaitAvgDegree, p.BaitsPulledOne, p.BaitsPulledTwo, p.BaitsPulledThree)
	return nil
}

// runX1 quantifies the reliability argument: at 70 % pull-down
// reproducibility, a 2-multicover recovers more complexes than a
// single cover of comparable quality.
func runX1(w io.Writer, o options) error {
	inst := dataset.Cellzome()
	h := inst.H
	weights := cover.DegreeSquaredWeights(h)

	c1, err := greedyVia(h, weights, nil, o)
	if err != nil {
		return err
	}
	req := cover.UniformRequirement(h, 2)
	for _, f := range inst.Singletons {
		req[f] = 0
	}
	c2, err := greedyVia(h, weights, req, o)
	if err != nil {
		return err
	}
	// A requirements vector derived from the reliability model itself:
	// r_f = ⌈ln(1−target)/ln(1−p)⌉ for a 95 % per-complex target at
	// p = 0.7 (capped at the complex size).
	params := bio.DefaultTAPParams()
	reqR, err := bio.RequirementsForReliability(h, params.PullDownSuccess, 0.95)
	if err != nil {
		return err
	}
	c4, err := greedyVia(h, weights, reqR, o)
	if err != nil {
		return err
	}
	sets := map[string][]int{
		"weighted cover (r=1)":    c1.Vertices,
		"2-multicover (r=2)":      c2.Vertices,
		"reliability multicover":  c4.Vertices,
		"Cellzome reported baits": inst.BaitsReported,
	}
	rng := xrand.New(0x7a9)
	trials := bio.CompareReliability(h, sets, bio.DefaultTAPParams(), o.trials, rng)
	fmt.Fprintf(w, "%d trials at %.0f%% pull-down success, %.0f%% prey detection, %.0f%% recovery threshold\n",
		o.trials, 100*bio.DefaultTAPParams().PullDownSuccess, 100*bio.DefaultTAPParams().PreyDetection, 100*bio.DefaultTAPParams().RecoveryFraction)
	fmt.Fprintf(w, "%-26s %6s %12s %12s %14s\n", "bait set", "baits", "mean recov", "min recov", "mean pulldowns")
	for _, tr := range trials {
		fmt.Fprintf(w, "%-26s %6d %11.1f%% %11.1f%% %14.1f\n",
			tr.Name, len(tr.Baits), 100*tr.MeanRecovery, 100*tr.MinRecovery, tr.MeanPullDowns)
	}

	// Beyond touching complexes: the fidelity of the *observed network*
	// each bait design reconstructs (one representative screen each).
	fmt.Fprintln(w, "\nobserved-network fidelity (one screen each):")
	names := make([]string, 0, len(sets))
	for name := range sets {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		screen := bio.SimulateScreen(h, sets[name], bio.DefaultTAPParams(), rng.Split())
		obs := bio.ObservedHypergraph(h, screen)
		fi, err := bio.NetworkFidelity(h, obs)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-26s %v\n", name, fi)
	}
	return nil
}

// runX2 compares the greedy and primal-dual covers, with the dual
// lower bound certifying both.
func runX2(w io.Writer, o options) error {
	inst := dataset.Cellzome()
	h := inst.H
	for _, tc := range []struct {
		name    string
		weights []float64
	}{
		{"unit weights", nil},
		{"degree² weights", cover.DegreeSquaredWeights(h)},
	} {
		g, err := greedyVia(h, tc.weights, nil, o)
		if err != nil {
			return err
		}
		pd, err := cover.PrimalDual(h, tc.weights)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s: greedy weight %.0f (%d proteins) | primal-dual weight %.0f (%d proteins), dual LB %.1f, certified ratio %.2f\n",
			tc.name, g.Weight, g.Size(), pd.Cover.Weight, pd.Cover.Size(), pd.DualValue, pd.ApproxRatio())
		hm := cover.HarmonicBound(h.NumEdges())
		fmt.Fprintf(w, "  greedy guarantee H_m = %.2f; primal-dual guarantee Δ_F = %d (paper §4.1: greedy's bound is better here)\n",
			hm, h.MaxEdgeDegree())
	}

	// The guarantee crossover: on a 3-uniform hypergraph Δ_F = 3 beats
	// H_m once m > 10, so the primal-dual certificate is the stronger
	// a-priori bound even when greedy's solutions stay better.  The
	// exact optimum referees both on a small instance.
	rng := xrand.New(0x2c)
	edges := make([][]int32, 60)
	for f := range edges {
		seen := map[int32]bool{}
		for len(seen) < 3 {
			seen[int32(rng.Intn(40))] = true
		}
		for v := range seen {
			edges[f] = append(edges[f], v)
		}
	}
	hu, err := hypergraph.FromEdgeSets(40, edges)
	if err != nil {
		return err
	}
	gU, err := greedyVia(hu, nil, nil, o)
	if err != nil {
		return err
	}
	pdU, err := cover.PrimalDual(hu, nil)
	if err != nil {
		return err
	}
	exU, err := cover.Exact(hu, nil, 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "3-uniform random (m=%d): optimum %.0f | greedy %.0f (H_m = %.2f) | primal-dual %.0f (Δ_F = %d < H_m: the guarantee crossover)\n",
		hu.NumEdges(), exU.Weight, gU.Weight, cover.HarmonicBound(hu.NumEdges()), pdU.Cover.Weight, hu.MaxEdgeDegree())
	return nil
}

// runX3 measures the parallel k-core against the sequential algorithm.
func runX3(w io.Writer, o options) error {
	spec := gen.MatrixSpec{Name: "scale", Rows: 30000, Cols: 30000, Band: 12, BandFill: 0.7, RandomPerRow: 2, Seed: 0xA11}
	if o.short {
		spec.Rows, spec.Cols = 6000, 6000
	}
	m := gen.SyntheticMatrix(spec)
	h, err := toHypergraph(m)
	if err != nil {
		return err
	}
	k := 8
	start := time.Now()
	seq := core.KCore(h, k)
	seqT := time.Since(start)
	fmt.Fprintf(w, "hypergraph |V|=%d |F|=%d |E|=%d, k=%d\n", h.NumVertices(), h.NumEdges(), h.NumPins(), k)
	fmt.Fprintf(w, "sequential: %8.3fs (core %d/%d)\n", seqT.Seconds(), seq.NumVertices, seq.NumEdges)
	workerSet := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		workerSet = append(workerSet, n)
	}
	for _, workers := range workerSet {
		start = time.Now()
		par := core.KCoreParallel(h, k, workers)
		t := time.Since(start)
		match := "OK"
		if par.NumVertices != seq.NumVertices || par.NumEdges != seq.NumEdges {
			match = "MISMATCH"
		}
		fmt.Fprintf(w, "parallel %2d workers: %8.3fs, speedup %.2fx vs sequential [%s]\n",
			workers, t.Seconds(), seqT.Seconds()/t.Seconds(), match)
	}
	fmt.Fprintf(w, "(host has %d CPU(s); with one CPU the gain is algorithmic — the round-synchronous\n", runtime.NumCPU())
	fmt.Fprintln(w, " peeler skips the up-front global overlap table that the sequential peeler builds)")
	shardSet := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		shardSet = append(shardSet, n)
	}
	for _, shards := range shardSet {
		start = time.Now()
		d := core.ShardedDecompose(h, core.ShardedOptions{Shards: shards})
		t := time.Since(start)
		sc := d.Core(k)
		match := "OK"
		if sc.NumVertices != seq.NumVertices || sc.NumEdges != seq.NumEdges {
			match = "MISMATCH"
		}
		fmt.Fprintf(w, "sharded %2d shards: %8.3fs full decomposition (max k = %d, %d-core %d/%d) [%s]\n",
			shards, t.Seconds(), d.MaxK, k, sc.NumVertices, sc.NumEdges, match)
	}
	return nil
}

// runX5 scales the core computation to a human-proteome-sized
// instance, the workload the paper's conclusion calls for.
func runX5(w io.Writer, o options) error {
	nP, nC := 20000, 3000
	if o.short {
		nP, nC = 5000, 800
	}
	h := dataset.SyntheticProteome(nP, nC, 0x42A1)
	fmt.Fprintf(w, "synthetic human-scale proteome: %v (Cellzome was 1361/232)\n", h)
	start := time.Now()
	mc := core.MaxCore(h)
	seqT := time.Since(start)
	fmt.Fprintf(w, "sequential maximum core: %d-core with %d proteins / %d complexes in %.3fs\n",
		mc.K, mc.NumVertices, mc.NumEdges, seqT.Seconds())
	start = time.Now()
	par := core.KCoreParallel(h, mc.K, 0)
	parT := time.Since(start)
	fmt.Fprintf(w, "parallel %d-core: %d/%d in %.3fs\n", mc.K, par.NumVertices, par.NumEdges, parT.Seconds())
	rng := xrand.New(5)
	start = time.Now()
	sw := stats.SmallWorldSampled(h, 256, runtime.NumCPU(), rng)
	fmt.Fprintf(w, "sampled small-world (256 sources): diameter ≥ %d, avg path ≈ %.2f (%.3fs)\n",
		sw.Diameter, sw.AvgPathLength, time.Since(start).Seconds())
	return nil
}

// runX6 quantifies §3's warning that predicting complexes from the
// cores of protein-interaction graphs is error-prone: the
// clique-expansion PPI graph's dense cores are compared against the
// true complexes of the hypergraph.
func runX6(w io.Writer, o options) error {
	inst := dataset.Cellzome()
	h := inst.H
	g := graph.CliqueExpansion(h)

	coreness := core.GraphCoreness(g)
	maxK := 0
	for _, c := range coreness {
		if c > maxK {
			maxK = c
		}
	}
	fmt.Fprintf(w, "clique-expansion PPI graph: %d vertices, %d edges, max core k = %d\n",
		g.NumVertices(), g.NumEdges(), maxK)

	// Predict complexes as the connected components of high-k graph
	// cores (the §3-cited approach), at a few levels.
	for _, k := range []int{maxK, maxK * 3 / 4, maxK / 2} {
		if k < 1 {
			continue
		}
		keep := make([]bool, g.NumVertices())
		for v, c := range coreness {
			keep[v] = c >= k
		}
		sub, vMap := g.Subgraph(keep)
		comp, n := sub.Components()
		// Invert the vertex map to original IDs.
		inv := make([]int, sub.NumVertices())
		for old, nw := range vMap {
			inv[nw] = old
		}
		preds := make([][]bool, n)
		for i := range preds {
			preds[i] = make([]bool, h.NumVertices())
		}
		for v, c := range comp {
			preds[c][inv[v]] = true
		}
		var bestJ float64
		for _, pred := range preds {
			if m := bio.MatchPrediction(h, pred); m.Jaccard > bestJ {
				bestJ = m.Jaccard
			}
		}
		_, recovered := bio.ComplexRecovery(h, preds, 0.5)
		fmt.Fprintf(w, "graph %2d-core components as predicted complexes: %3d predictions, best Jaccard %.2f, %d/%d true complexes recovered at J ≥ 0.5\n",
			k, n, bestJ, recovered, h.NumEdges())
	}

	// The hypergraph core, by contrast, returns actual complexes.
	mc := core.MaxCore(h)
	preds := make([][]bool, 0, mc.NumEdges)
	for f := range mc.EdgeIn {
		if !mc.EdgeIn[f] {
			continue
		}
		pred := make([]bool, h.NumVertices())
		for _, v := range h.Vertices(f) {
			pred[v] = true
		}
		preds = append(preds, pred)
	}
	_, recovered := bio.ComplexRecovery(h, preds, 0.5)
	fmt.Fprintf(w, "hypergraph 6-core hyperedges as predictions: %d predictions, %d/%d complexes recovered at J ≥ 0.5\n",
		len(preds), recovered, h.NumEdges())
	fmt.Fprintln(w, "paper §3: inferring complexes from graph cores is error-prone — the hypergraph keeps the complexes first-class.")
	return nil
}

// runX7 plays out §4's second scenario: select baits on a *model*
// organism's complex network and use them to screen a *related*
// organism whose proteome has diverged.  Cover-chosen baits are
// compared against random bait sets of the same size.
func runX7(w io.Writer, o options) error {
	inst := dataset.Cellzome()
	model := inst.H
	rng := xrand.New(0x017)

	orth, err := bio.GenerateOrthology(model, 0.8, 200, rng)
	if err != nil {
		return err
	}
	projected := bio.ProjectHypergraph(model, orth, 2)
	truth := bio.DivergeComplexes(projected, bio.DivergenceParams{
		DropComplex: 0.10, DropMember: 0.15, AddMember: 1.0,
	}, rng)
	fmt.Fprintf(w, "model organism: %v\n", model)
	fmt.Fprintf(w, "projected prediction for the target: %v\n", projected)
	fmt.Fprintf(w, "true (diverged) target network: %v\n", truth)

	// Bait selection on the projection — the only data a biologist has
	// before the screen.
	req, err := bio.RequirementsForReliability(projected, 0.7, 0.9)
	if err != nil {
		return err
	}
	c, err := greedyVia(projected, cover.DegreeSquaredWeights(projected), req, o)
	if err != nil {
		return err
	}
	chosen, err := bio.TransferBaits(projected, truth, c.Vertices)
	if err != nil {
		return err
	}

	// Random baseline of the same size.
	perm := rng.Perm(truth.NumVertices())
	random := perm[:len(chosen)]

	params := bio.DefaultTAPParams()
	sets := map[string][]int{
		"projected-cover baits": chosen,
		"random baits":          random,
	}
	trials := bio.CompareReliability(truth, sets, params, o.trials, rng)
	fmt.Fprintf(w, "%-24s %6s %12s %12s\n", "bait set", "baits", "mean recov", "min recov")
	for _, tr := range trials {
		fmt.Fprintf(w, "%-24s %6d %11.1f%% %11.1f%%\n", tr.Name, len(tr.Baits), 100*tr.MeanRecovery, 100*tr.MinRecovery)
	}
	fmt.Fprintln(w, "→ covers computed on the model organism remain effective bait sets after divergence,")
	fmt.Fprintln(w, "  the transfer scenario §4 proposes.")
	return nil
}

// runX4 quantifies the §1.2 modeling argument: storage blow-up and
// clustering inflation of the competing representations.
func runX4(w io.Writer, o options) error {
	inst := dataset.Cellzome()
	h := inst.H
	s := stats.ComputeStorageCosts(h)
	fmt.Fprintf(w, "hypergraph pins |E|:            %7d\n", s.HypergraphPins)
	fmt.Fprintf(w, "clique-expansion edges:         %7d  (%.1fx the pins — the paper's O(n²) vs O(n))\n", s.CliqueExpansionEdges, s.CliqueBlowupFactor)
	fmt.Fprintf(w, "star-expansion edges:           %7d\n", s.StarExpansionEdges)
	fmt.Fprintf(w, "intersection-graph edges:       %7d  (%.2f per complex; proteins not represented at all)\n", s.IntersectionEdges, s.IntersectionPerMember)
	cc := graph.CliqueExpansion(h).ClusteringCoefficient()
	sc := graph.StarExpansion(h, nil).ClusteringCoefficient()
	fmt.Fprintf(w, "clustering coefficient: clique expansion %.3f vs star expansion %.3f (clique model inflates clustering [Maslov-Sneppen-Alon])\n", cc, sc)
	return nil
}
