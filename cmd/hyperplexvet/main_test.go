package main

import (
	"strings"
	"testing"
)

// fixture returns the path of one of internal/lint's fixture packages,
// relative to this test's working directory (the cmd/hyperplexvet dir).
func fixture(name string) string {
	return "../../internal/lint/testdata/src/" + name
}

func runVet(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestCleanPackageExitsZero(t *testing.T) {
	code, out, _ := runVet(t, fixture("clean"))
	if code != 0 {
		t.Fatalf("exit = %d, want 0; output:\n%s", code, out)
	}
	if out != "" {
		t.Errorf("clean run printed diagnostics:\n%s", out)
	}
}

func TestDiagnosticsExitOne(t *testing.T) {
	code, out, stderr := runVet(t, fixture("nopanic"))
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr)
	}
	if !strings.Contains(out, "nopanic.go:") || !strings.Contains(out, "nopanic: naked panic") {
		t.Errorf("diagnostics missing file:line or analyzer name:\n%s", out)
	}
	if !strings.Contains(stderr, "issue(s)") {
		t.Errorf("summary line missing from stderr: %s", stderr)
	}
}

func TestMultiplePackages(t *testing.T) {
	code, out, _ := runVet(t, fixture("clean"), fixture("errwrap"))
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(out, "errwrap.go:") {
		t.Errorf("errwrap diagnostics missing:\n%s", out)
	}
	if strings.Contains(out, "clean.go:") {
		t.Errorf("clean package produced diagnostics:\n%s", out)
	}
}

func TestSuppressionsHonored(t *testing.T) {
	code, out, _ := runVet(t, fixture("suppressclean"))
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (suppressions should silence every finding); output:\n%s", code, out)
	}
}

func TestLoadErrorExitsTwo(t *testing.T) {
	code, _, stderr := runVet(t, fixture("broken"))
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "hyperplexvet:") {
		t.Errorf("load error not reported on stderr: %s", stderr)
	}
}

func TestMissingDirExitsTwo(t *testing.T) {
	if code, _, _ := runVet(t, "./no/such/dir"); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestListFlag(t *testing.T) {
	code, out, _ := runVet(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"ctxfirst", "ctxpair", "errwrap", "failpointsite", "gorecover", "nopanic"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list missing analyzer %s:\n%s", name, out)
		}
	}
}

func TestOnlyFlag(t *testing.T) {
	// nopanic fixture is dirty under nopanic but clean under errwrap.
	if code, _, _ := runVet(t, "-only", "errwrap", fixture("nopanic")); code != 0 {
		t.Fatalf("-only errwrap exit = %d, want 0", code)
	}
	if code, _, _ := runVet(t, "-only", "nopanic", fixture("nopanic")); code != 1 {
		t.Fatalf("-only nopanic exit = %d, want 1", code)
	}
}

func TestOnlyUnknownAnalyzerExitsTwo(t *testing.T) {
	code, _, stderr := runVet(t, "-only", "nosuchlint", fixture("clean"))
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown analyzer") {
		t.Errorf("unknown analyzer not reported: %s", stderr)
	}
}
