package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// fixture returns the path of one of internal/lint's fixture packages,
// relative to this test's working directory (the cmd/hyperplexvet dir).
func fixture(name string) string {
	return "../../internal/lint/testdata/src/" + name
}

func runVet(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestCleanPackageExitsZero(t *testing.T) {
	code, out, _ := runVet(t, fixture("clean"))
	if code != 0 {
		t.Fatalf("exit = %d, want 0; output:\n%s", code, out)
	}
	if out != "" {
		t.Errorf("clean run printed diagnostics:\n%s", out)
	}
}

func TestDiagnosticsExitOne(t *testing.T) {
	code, out, stderr := runVet(t, fixture("nopanic"))
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr)
	}
	if !strings.Contains(out, "nopanic.go:") || !strings.Contains(out, "nopanic: naked panic") {
		t.Errorf("diagnostics missing file:line or analyzer name:\n%s", out)
	}
	if !strings.Contains(stderr, "issue(s)") {
		t.Errorf("summary line missing from stderr: %s", stderr)
	}
}

func TestMultiplePackages(t *testing.T) {
	code, out, _ := runVet(t, fixture("clean"), fixture("errwrap"))
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(out, "errwrap.go:") {
		t.Errorf("errwrap diagnostics missing:\n%s", out)
	}
	if strings.Contains(out, "clean.go:") {
		t.Errorf("clean package produced diagnostics:\n%s", out)
	}
}

func TestSuppressionsHonored(t *testing.T) {
	code, out, _ := runVet(t, fixture("suppressclean"))
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (suppressions should silence every finding); output:\n%s", code, out)
	}
}

func TestLoadErrorExitsTwo(t *testing.T) {
	code, _, stderr := runVet(t, fixture("broken"))
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "hyperplexvet:") {
		t.Errorf("load error not reported on stderr: %s", stderr)
	}
}

func TestMissingDirExitsTwo(t *testing.T) {
	if code, _, _ := runVet(t, "./no/such/dir"); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestListFlag(t *testing.T) {
	code, out, _ := runVet(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"ctxfirst", "ctxpair", "errwrap", "failpointsite", "gorecover", "nopanic"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list missing analyzer %s:\n%s", name, out)
		}
	}
}

func TestOnlyFlag(t *testing.T) {
	// nopanic fixture is dirty under nopanic but clean under errwrap.
	if code, _, _ := runVet(t, "-only", "errwrap", fixture("nopanic")); code != 0 {
		t.Fatalf("-only errwrap exit = %d, want 0", code)
	}
	if code, _, _ := runVet(t, "-only", "nopanic", fixture("nopanic")); code != 1 {
		t.Fatalf("-only nopanic exit = %d, want 1", code)
	}
}

func TestJSONOutput(t *testing.T) {
	code, out, _ := runVet(t, "-json", fixture("nopanic"))
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var diags []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(out), &diags); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out)
	}
	if len(diags) == 0 {
		t.Fatal("-json reported no diagnostics for the nopanic fixture")
	}
	for _, d := range diags {
		if d.Analyzer != "nopanic" || d.Line <= 0 || !strings.HasSuffix(d.File, "nopanic.go") {
			t.Errorf("unexpected JSON diagnostic: %+v", d)
		}
	}
}

func TestJSONCleanIsEmptyArray(t *testing.T) {
	code, out, _ := runVet(t, "-json", fixture("clean"))
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if strings.TrimSpace(out) != "[]" {
		t.Errorf("clean -json output = %q, want empty array", out)
	}
}

func TestAnnotateDryRun(t *testing.T) {
	code, out, _ := runVet(t, "-annotate", fixture("nopanic"))
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (annotate is a dry run, diagnostics still fail)", code)
	}
	if !strings.Contains(out, "//hyperplexvet:ignore nopanic <reason>") {
		t.Errorf("-annotate did not propose an ignore directive:\n%s", out)
	}
}

func TestAnnotateCleanPrintsNothing(t *testing.T) {
	code, out, _ := runVet(t, "-annotate", fixture("clean"))
	if code != 0 || out != "" {
		t.Errorf("clean -annotate: exit = %d, output = %q; want 0 and empty", code, out)
	}
}

func TestJSONAndAnnotateConflict(t *testing.T) {
	code, _, stderr := runVet(t, "-json", "-annotate", fixture("clean"))
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "mutually exclusive") {
		t.Errorf("conflict not reported: %s", stderr)
	}
}

func TestOnlyUnknownAnalyzerExitsTwo(t *testing.T) {
	code, _, stderr := runVet(t, "-only", "nosuchlint", fixture("clean"))
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown analyzer") {
		t.Errorf("unknown analyzer not reported: %s", stderr)
	}
}
