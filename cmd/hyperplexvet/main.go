// Command hyperplexvet runs the project's static-analysis suite
// (internal/lint) over the given packages and reports contract
// violations with file:line positions.
//
// Usage:
//
//	hyperplexvet [-list] [-only name,...] [packages]
//
// Packages are directories or recursive patterns like ./...; with no
// arguments the whole module is checked.  Exit status is 0 when the
// suite is clean, 1 when diagnostics were reported, and 2 when the
// packages could not be loaded (or the flags were invalid).
//
// Diagnostics are suppressed in source with
//
//	//hyperplexvet:ignore <analyzers> <reason>
//
// on the offending line or directly above it; see internal/lint and
// TESTING.md for what each analyzer enforces.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hyperplex/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the suite and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hyperplexvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "hyperplexvet: unknown analyzer %q (see -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "hyperplexvet:", err)
		return 2
	}
	prog, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "hyperplexvet:", err)
		return 2
	}

	diags := lint.RunSuite(prog, analyzers)
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "hyperplexvet: %d issue(s) in %d package(s)\n", len(diags), len(prog.Pkgs))
		return 1
	}
	return 0
}
