// Command hyperplexvet runs the project's static-analysis suite
// (internal/lint) over the given packages and reports contract
// violations with file:line positions.
//
// Usage:
//
//	hyperplexvet [-list] [-only name,...] [-json | -annotate] [packages]
//
// Packages are directories or recursive patterns like ./...; with no
// arguments the whole module is checked.  Exit status is 0 when the
// suite is clean, 1 when diagnostics were reported, and 2 when the
// packages could not be loaded (or the flags were invalid).
//
// -json emits the diagnostics as a JSON array on stdout (empty array
// when clean), for CI artifacts and tooling.  -annotate is a dry run
// that prints, for every suppressible diagnostic, the ignore directive
// that would silence it — nothing is written to any file; the reason
// is yours to state.
//
// Diagnostics are suppressed in source with
//
//	//hyperplexvet:ignore <analyzers> <reason>
//
// on the offending line or directly above it; see internal/lint and
// TESTING.md for what each analyzer enforces.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hyperplex/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the suite and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hyperplexvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	annotate := fs.Bool("annotate", false, "dry run: print the ignore directive each diagnostic would take, editing nothing")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *jsonOut && *annotate {
		fmt.Fprintln(stderr, "hyperplexvet: -json and -annotate are mutually exclusive")
		return 2
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "hyperplexvet: unknown analyzer %q (see -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "hyperplexvet:", err)
		return 2
	}
	prog, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "hyperplexvet:", err)
		return 2
	}

	diags := lint.RunSuite(prog, analyzers)
	switch {
	case *jsonOut:
		if err := writeJSON(stdout, diags); err != nil {
			fmt.Fprintln(stderr, "hyperplexvet:", err)
			return 2
		}
	case *annotate:
		writeAnnotations(stdout, diags)
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "hyperplexvet: %d issue(s) in %d package(s)\n", len(diags), len(prog.Pkgs))
		return 1
	}
	return 0
}

// jsonDiag is the machine-readable diagnostic shape emitted by -json.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// writeJSON emits the diagnostics as one indented JSON array — an
// empty array for a clean run, so consumers always get valid JSON.
func writeJSON(w io.Writer, diags []lint.Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// writeAnnotations prints, for each diagnostic, the ignore directive a
// reasoned suppression would take, as a dry run: nothing is edited.
// Malformed-directive findings (pseudo-analyzer "hyperplexvet") cannot
// be suppressed and are called out as such.
func writeAnnotations(w io.Writer, diags []lint.Diagnostic) {
	for _, d := range diags {
		if d.Analyzer == "hyperplexvet" {
			fmt.Fprintf(w, "%s: not suppressible: %s\n", d.Pos, d.Message)
			continue
		}
		fmt.Fprintf(w, "%s: %s\n\tinsert above: //hyperplexvet:ignore %s <reason>\n", d.Pos, d.Message, d.Analyzer)
	}
}
