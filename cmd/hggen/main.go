// Command hggen writes the synthetic datasets to disk.
//
// Usage:
//
//	hggen -dataset cellzome [-format text|json|pajek] [-o FILE]
//	hggen -dataset proteome -nv 20000 -ne 3000 -seed 42 [-o FILE]
//	hggen -dataset random -nv 100 -ne 50 -maxsize 8 -seed 42 [-o FILE]
//	hggen -dataset matrix -name fdp011 [-short] [-o FILE]   (Matrix Market output)
//
// With no -o, output goes to stdout.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"hyperplex/internal/cli"
	"hyperplex/internal/dataset"
	"hyperplex/internal/gen"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/mmio"
	"hyperplex/internal/pajek"
	"hyperplex/internal/xrand"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hggen: ")
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout, stderr io.Writer) (err error) {
	defer cli.RecoverPanic(&err)
	fs := flag.NewFlagSet("hggen", flag.ContinueOnError)
	fs.SetOutput(stdout)
	ds := fs.String("dataset", "cellzome", "cellzome | proteome | random | matrix")
	format := fs.String("format", "text", "text | json | pajek (hypergraph datasets)")
	out := fs.String("o", "", "output file (default stdout)")
	nv := fs.Int("nv", 100, "random/proteome: number of vertices")
	ne := fs.Int("ne", 50, "random/proteome: number of hyperedges")
	maxSize := fs.Int("maxsize", 8, "random: maximum hyperedge size")
	seed := fs.Uint64("seed", 42, "RNG seed")
	name := fs.String("name", "bfw398a", "matrix: spec name from Table 1")
	short := fs.Bool("short", false, "matrix: shrunken dimensions")
	instanceDir := fs.String("instance", "", "cellzome: write the full instance (hypergraph, baits, annotations, core) to this directory")
	timeout := fs.Duration("timeout", 0, "abort if generation exceeds this duration (0 = no limit)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := cli.WithTimeout(context.Background(), *timeout)
	defer cancel()
	// Generation runs in coarse stages; the deadline is checked between
	// them rather than inside the generators.
	if err := ctx.Err(); err != nil {
		return err
	}

	if *instanceDir != "" {
		if *ds != "cellzome" {
			return fmt.Errorf("-instance is only supported for -dataset cellzome")
		}
		inst := dataset.Cellzome()
		if err := inst.Save(*instanceDir); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "hggen: wrote instance to %s\n", *instanceDir)
		return nil
	}

	var w io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	if err := ctx.Err(); err != nil {
		return err
	}
	switch *ds {
	case "cellzome":
		return writeHypergraph(w, stderr, dataset.Cellzome().H, *format)
	case "proteome":
		return writeHypergraph(w, stderr, dataset.SyntheticProteome(*nv, *ne, *seed), *format)
	case "random":
		h := gen.RandomHypergraph(*nv, *ne, *maxSize, xrand.New(*seed))
		return writeHypergraph(w, stderr, h, *format)
	case "matrix":
		for _, spec := range gen.Table1Specs(*short) {
			if spec.Name == *name {
				return mmio.Write(w, gen.SyntheticMatrix(spec))
			}
		}
		return fmt.Errorf("unknown matrix spec %q; known: bfw398a utm5940 fdp011 stk32 fdpm37", *name)
	default:
		return fmt.Errorf("unknown dataset %q", *ds)
	}
}

func writeHypergraph(w, stderr io.Writer, h *hypergraph.Hypergraph, format string) error {
	var err error
	switch format {
	case "text":
		err = hypergraph.WriteText(w, h)
	case "json":
		var data []byte
		data, err = h.MarshalJSON()
		if err == nil {
			_, err = w.Write(append(data, '\n'))
		}
	case "pajek":
		err = pajek.WriteNet(w, h, nil, nil)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "hggen: wrote |V|=%d |F|=%d |E|=%d\n", h.NumVertices(), h.NumEdges(), h.NumPins())
	return nil
}
