package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRandomText(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-dataset", "random", "-nv", "30", "-ne", "10"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut.String(), "|V|=30 |F|=10") {
		t.Errorf("status line: %s", errOut.String())
	}
	if !strings.Contains(out.String(), "f0:") {
		t.Errorf("text output missing edges:\n%s", out.String())
	}
}

func TestRunCellzomeJSON(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-dataset", "cellzome", "-format", "json"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"edges"`) {
		t.Error("json output missing edges key")
	}
	if !strings.Contains(errOut.String(), "|V|=1361 |F|=232") {
		t.Errorf("status line: %s", errOut.String())
	}
}

func TestRunProteome(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-dataset", "proteome", "-nv", "500", "-ne", "60", "-format", "pajek"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "*Vertices") {
		t.Error("pajek output missing header")
	}
}

func TestRunMatrixToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.mtx")
	var out, errOut bytes.Buffer
	if err := run([]string{"-dataset", "matrix", "-name", "bfw398a", "-short", "-o", path}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "%%MatrixMarket") {
		t.Error("matrix file missing header")
	}
}

func TestRunErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-dataset", "nope"}, &out, &errOut); err == nil {
		t.Error("unknown dataset accepted")
	}
	if err := run([]string{"-dataset", "matrix", "-name", "nope"}, &out, &errOut); err == nil {
		t.Error("unknown matrix accepted")
	}
	if err := run([]string{"-dataset", "random", "-format", "nope"}, &out, &errOut); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestRunInstanceDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "inst")
	var out, errOut bytes.Buffer
	if err := run([]string{"-dataset", "cellzome", "-instance", dir}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "hypergraph.txt")); err != nil {
		t.Error("instance files missing")
	}
	if err := run([]string{"-dataset", "random", "-instance", dir}, &out, &errOut); err == nil {
		t.Error("-instance with random dataset accepted")
	}
}
