// Command hgstats prints Table 1-style statistics for a hypergraph:
// sizes, degree extremes, components, degree-distribution power-law
// fit, and optionally small-world metrics and the maximum core.
//
// Usage:
//
//	hgstats [-mtx | -store FILE] [-smallworld] [-core] [file]
//
// The input is the native text format ("name: members..."), or a
// Matrix Market file with -mtx (columns become hyperedges).  With no
// file, stdin is read.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"time"

	"hyperplex/internal/cli"
	"hyperplex/internal/core"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hgstats: ")
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) (err error) {
	defer cli.RecoverPanic(&err)
	fs := flag.NewFlagSet("hgstats", flag.ContinueOnError)
	fs.SetOutput(stdout)
	mtx := fs.Bool("mtx", false, "input is a Matrix Market file")
	storePath := fs.String("store", "", "read the hypergraph from this binary store file (memory-mapped; overrides [file] and -mtx)")
	smallworld := fs.Bool("smallworld", false, "compute exact diameter and average path length (all-pairs BFS)")
	withCore := fs.Bool("core", false, "compute the maximum core")
	judge := fs.Bool("judge", false, "judge both degree distributions against power-law and exponential fits")
	timeout := fs.Duration("timeout", 0, "abort if the computation exceeds this duration (0 = no limit)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := cli.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var h *hypergraph.Hypergraph
	if *storePath != "" {
		st, sh, err := cli.OpenStoreCtx(ctx, *storePath)
		if err != nil {
			return err
		}
		// The hypergraph aliases the store's mapped arrays; keep the
		// backend open for the whole run.
		defer st.Close()
		h = sh
	} else {
		h, err = cli.ReadHypergraphCtx(ctx, *mtx, fs.Arg(0), stdin)
		if err != nil {
			return err
		}
	}

	fmt.Fprintf(stdout, "|V| = %d   |F| = %d   |E| = %d\n", h.NumVertices(), h.NumEdges(), h.NumPins())
	fmt.Fprintf(stdout, "ΔV = %d   ΔF = %d   Δ2,F = %d\n", h.MaxVertexDegree(), h.MaxEdgeDegree(), h.MaxDegree2Edge())

	_, _, comps := stats.Components(h)
	fmt.Fprintf(stdout, "components: %d", len(comps))
	if len(comps) > 0 {
		fmt.Fprintf(stdout, " (largest: %d vertices, %d hyperedges)", comps[0].Vertices, comps[0].Edges)
	}
	fmt.Fprintln(stdout)

	hist := stats.DegreeHistogram(h.VertexDegrees())
	if fit, err := stats.FitPowerLaw(hist); err == nil {
		fmt.Fprintf(stdout, "vertex degree distribution: %v\n", fit)
	} else {
		fmt.Fprintf(stdout, "vertex degree distribution: %v\n", err)
	}

	if *judge {
		fmt.Fprintf(stdout, "vertex degrees:    %v\n", stats.JudgeDistribution(hist, 0.9))
		fmt.Fprintf(stdout, "hyperedge degrees: %v\n", stats.JudgeDistribution(stats.DegreeHistogram(h.EdgeDegrees()), 0.9))
	}
	if *smallworld {
		sw, err := stats.SmallWorldStatsCtx(ctx, h, runtime.NumCPU())
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "diameter = %d   average path length = %.3f (over %d connected pairs)\n",
			sw.Diameter, sw.AvgPathLength, sw.Pairs)
	}
	if *withCore {
		start := time.Now()
		mc, err := core.MaxCoreCtx(ctx, h)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "maximum core: %d-core with %d vertices and %d hyperedges (%.3fs)\n",
			mc.K, mc.NumVertices, mc.NumEdges, time.Since(start).Seconds())
	}
	return nil
}
