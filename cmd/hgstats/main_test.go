package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hyperplex/internal/store"
)

const sampleText = "c1: a b c\nc2: b c d\nc3: e\n"

func TestRunBasic(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(sampleText), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"|V| = 5", "|F| = 3", "|E| = 7", "components: 2"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunSmallWorldAndCore(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-smallworld", "-core"}, strings.NewReader(sampleText), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "diameter = 2") {
		t.Errorf("small-world line missing:\n%s", got)
	}
	if !strings.Contains(got, "maximum core:") {
		t.Errorf("core line missing:\n%s", got)
	}
}

func TestRunMtx(t *testing.T) {
	mtx := "%%MatrixMarket matrix coordinate pattern general\n3 2 3\n1 1\n2 1\n3 2\n"
	var out bytes.Buffer
	if err := run([]string{"-mtx"}, strings.NewReader(mtx), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "|V| = 3   |F| = 2") {
		t.Errorf("mtx stats wrong:\n%s", out.String())
	}
}

func TestRunBadInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader("not a hypergraph line"), &out); err == nil {
		t.Error("bad input accepted")
	}
	if err := run(nil, strings.NewReader(sampleText), &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"missing-file.txt"}, strings.NewReader(""), &out); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunJudge(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-judge"}, strings.NewReader(sampleText), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "vertex degrees:") || !strings.Contains(got, "hyperedge degrees:") {
		t.Errorf("judge lines missing:\n%s", got)
	}
}

// TestRunStoreMatchesText pins the -store route byte for byte against
// the text route.
func TestRunStoreMatchesText(t *testing.T) {
	dir := t.TempDir()
	textPath := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(textPath, []byte(sampleText), 0o644); err != nil {
		t.Fatal(err)
	}
	storePath := filepath.Join(dir, "g.store")
	if err := store.BuildFile(storePath, store.FileSource("text", textPath)); err != nil {
		t.Fatal(err)
	}
	var text, mapped bytes.Buffer
	if err := run([]string{"-core", textPath}, nil, &text); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-core", "-store", storePath}, nil, &mapped); err != nil {
		t.Fatal(err)
	}
	if text.String() != mapped.String() {
		t.Errorf("text %q vs store %q", text.String(), mapped.String())
	}
}
