package main

import (
	"bytes"
	"strings"
	"testing"
)

const sample = "c1: a b\nc2: b c\n"

func TestRunTextToJSONAndBack(t *testing.T) {
	var js, errOut bytes.Buffer
	if err := run([]string{"-from", "text", "-to", "json"}, strings.NewReader(sample), &js, &errOut); err != nil {
		t.Fatal(err)
	}
	var txt bytes.Buffer
	if err := run([]string{"-from", "json", "-to", "text"}, bytes.NewReader(js.Bytes()), &txt, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "c1: a b") {
		t.Errorf("round trip lost structure:\n%s", txt.String())
	}
}

func TestRunTextToMtxAndBack(t *testing.T) {
	var mtx, errOut bytes.Buffer
	if err := run([]string{"-to", "mtx"}, strings.NewReader(sample), &mtx, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(mtx.String(), "%%MatrixMarket") {
		t.Fatalf("mtx output:\n%s", mtx.String())
	}
	var back bytes.Buffer
	if err := run([]string{"-from", "mtx", "-to", "text"}, bytes.NewReader(mtx.Bytes()), &back, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut.String(), "|V|=3 |F|=2 |E|=4") {
		t.Errorf("status: %s", errOut.String())
	}
}

func TestRunToPajek(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-to", "pajek"}, strings.NewReader(sample), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "*Vertices 5") {
		t.Errorf("pajek output:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-from", "nope"}, strings.NewReader(sample), &out, &errOut); err == nil {
		t.Error("unknown input format accepted")
	}
	if err := run([]string{"-to", "nope"}, strings.NewReader(sample), &out, &errOut); err == nil {
		t.Error("unknown output format accepted")
	}
	if err := run(nil, strings.NewReader("bad input"), &out, &errOut); err == nil {
		t.Error("bad input accepted")
	}
	if err := run([]string{"missing.txt"}, strings.NewReader(""), &out, &errOut); err == nil {
		t.Error("missing file accepted")
	}
}
