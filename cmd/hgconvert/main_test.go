package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = "c1: a b\nc2: b c\n"

func TestRunTextToJSONAndBack(t *testing.T) {
	var js, errOut bytes.Buffer
	if err := run([]string{"-from", "text", "-to", "json"}, strings.NewReader(sample), &js, &errOut); err != nil {
		t.Fatal(err)
	}
	var txt bytes.Buffer
	if err := run([]string{"-from", "json", "-to", "text"}, bytes.NewReader(js.Bytes()), &txt, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "c1: a b") {
		t.Errorf("round trip lost structure:\n%s", txt.String())
	}
}

func TestRunTextToMtxAndBack(t *testing.T) {
	var mtx, errOut bytes.Buffer
	if err := run([]string{"-to", "mtx"}, strings.NewReader(sample), &mtx, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(mtx.String(), "%%MatrixMarket") {
		t.Fatalf("mtx output:\n%s", mtx.String())
	}
	var back bytes.Buffer
	if err := run([]string{"-from", "mtx", "-to", "text"}, bytes.NewReader(mtx.Bytes()), &back, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut.String(), "|V|=3 |F|=2 |E|=4") {
		t.Errorf("status: %s", errOut.String())
	}
}

func TestRunToPajek(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-to", "pajek"}, strings.NewReader(sample), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "*Vertices 5") {
		t.Errorf("pajek output:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-from", "nope"}, strings.NewReader(sample), &out, &errOut); err == nil {
		t.Error("unknown input format accepted")
	}
	if err := run([]string{"-to", "nope"}, strings.NewReader(sample), &out, &errOut); err == nil {
		t.Error("unknown output format accepted")
	}
	if err := run(nil, strings.NewReader("bad input"), &out, &errOut); err == nil {
		t.Error("bad input accepted")
	}
	if err := run([]string{"missing.txt"}, strings.NewReader(""), &out, &errOut); err == nil {
		t.Error("missing file accepted")
	}
}

// TestRunStoreRoundTrip converts text → store → text through real
// files and expects the text to survive unchanged.
func TestRunStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	storePath := filepath.Join(dir, "g.store")
	var devnull, errOut bytes.Buffer
	if err := run([]string{"-to", "store", "-o", storePath}, strings.NewReader(sample), &devnull, &errOut); err != nil {
		t.Fatal(err)
	}
	var back bytes.Buffer
	if err := run([]string{"-from", "store", "-to", "text", storePath}, nil, &back, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(back.String(), "c1: a b") || !strings.Contains(back.String(), "c2: b c") {
		t.Errorf("store round trip lost structure:\n%s", back.String())
	}
}

// TestRunStoreStreamedBuild pins that a file-backed text input with
// -to store takes the two-pass streaming builder instead of the
// in-RAM read, and that the resulting store is equivalent to the one
// the in-RAM path writes.
func TestRunStoreStreamedBuild(t *testing.T) {
	dir := t.TempDir()
	textPath := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(textPath, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	storePath := filepath.Join(dir, "g.store")
	var devnull, errOut bytes.Buffer
	if err := run([]string{"-to", "store", "-o", storePath, textPath}, nil, &devnull, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut.String(), "streamed") {
		t.Errorf("file-backed text → store did not take the streaming builder: %q", errOut.String())
	}
	var back bytes.Buffer
	if err := run([]string{"-from", "store", "-to", "text", storePath}, nil, &back, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(back.String(), "c1: a b") || !strings.Contains(back.String(), "c2: b c") {
		t.Errorf("streamed store lost structure:\n%s", back.String())
	}
	// Missing -o is rejected on the streaming path too.
	if err := run([]string{"-to", "store", textPath}, nil, &devnull, &errOut); err == nil {
		t.Error("-to store without -o accepted on the streaming path")
	}
}

func TestRunStoreNeedsRealFiles(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-to", "store"}, strings.NewReader(sample), &out, &errOut); err == nil {
		t.Error("-to store without -o accepted")
	}
	if err := run([]string{"-from", "store"}, strings.NewReader(sample), &out, &errOut); err == nil {
		t.Error("-from store on stdin accepted")
	}
}
