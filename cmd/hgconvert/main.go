// Command hgconvert converts hypergraphs between the supported
// interchange formats.
//
// Usage:
//
//	hgconvert -from text|json|mtx -to text|json|mtx|pajek [-o FILE] [input]
//
// Matrix Market input treats columns as hyperedges over row vertices;
// Matrix Market output writes the pattern matrix of the incidence
// relation.  Pajek is write-only (the bipartite drawing B(H)).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"hyperplex/internal/cli"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/mmio"
	"hyperplex/internal/pajek"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hgconvert: ")
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) (err error) {
	defer cli.RecoverPanic(&err)
	fs := flag.NewFlagSet("hgconvert", flag.ContinueOnError)
	fs.SetOutput(stdout)
	from := fs.String("from", "text", "input format: text | json | mtx")
	to := fs.String("to", "text", "output format: text | json | mtx | pajek")
	out := fs.String("o", "", "output file (default stdout)")
	timeout := fs.Duration("timeout", 0, "abort if the conversion exceeds this duration (0 = no limit)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := cli.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var r io.Reader = stdin
	if fs.Arg(0) != "" {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}

	var h *hypergraph.Hypergraph
	switch *from {
	case "text":
		h, err = hypergraph.ReadTextCtx(ctx, r)
	case "json":
		var data []byte
		data, err = io.ReadAll(r)
		if err == nil {
			h, err = hypergraph.UnmarshalJSONHypergraph(data)
		}
	case "mtx":
		var m *mmio.Matrix
		m, err = mmio.ReadCtx(ctx, r)
		if err == nil {
			h, err = mmio.ToHypergraph(m)
		}
	default:
		return fmt.Errorf("unknown input format %q", *from)
	}
	if err != nil {
		return err
	}

	var w io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	switch *to {
	case "text":
		err = hypergraph.WriteText(w, h)
	case "json":
		var data []byte
		data, err = h.MarshalJSON()
		if err == nil {
			_, err = w.Write(append(data, '\n'))
		}
	case "mtx":
		err = mmio.Write(w, mmio.FromHypergraph(h))
	case "pajek":
		err = pajek.WriteNet(w, h, nil, nil)
	default:
		return fmt.Errorf("unknown output format %q", *to)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "hgconvert: %s → %s: |V|=%d |F|=%d |E|=%d\n",
		*from, *to, h.NumVertices(), h.NumEdges(), h.NumPins())
	return nil
}
