// Command hgconvert converts hypergraphs between the supported
// interchange formats.
//
// Usage:
//
//	hgconvert -from text|json|mtx|store -to text|json|mtx|pajek|store [-o FILE] [input]
//
// Matrix Market input treats columns as hyperedges over row vertices;
// Matrix Market output writes the pattern matrix of the incidence
// relation.  Pajek is write-only (the bipartite drawing B(H)).  The
// binary store format needs a real file on both sides: -from store
// requires an input path (not stdin), -to store requires -o.  A
// file-backed text/.mtx input converting to a store streams through
// store.BuildFile in two passes, so the hypergraph never has to fit
// in RAM.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"hyperplex/internal/cli"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/mmio"
	"hyperplex/internal/pajek"
	"hyperplex/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hgconvert: ")
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) (err error) {
	defer cli.RecoverPanic(&err)
	fs := flag.NewFlagSet("hgconvert", flag.ContinueOnError)
	fs.SetOutput(stdout)
	from := fs.String("from", "text", "input format: text | json | mtx | store")
	to := fs.String("to", "text", "output format: text | json | mtx | pajek | store")
	out := fs.String("o", "", "output file (default stdout)")
	timeout := fs.Duration("timeout", 0, "abort if the conversion exceeds this duration (0 = no limit)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := cli.WithTimeout(context.Background(), *timeout)
	defer cancel()

	// A file-backed text/.mtx source converting to a store never has to
	// exist in RAM: the streaming builder makes two passes over the
	// input file directly.  Stdin (not re-openable) and the other input
	// formats fall through to the in-RAM read + write below.
	if *to == "store" && fs.Arg(0) != "" && (*from == "text" || *from == "mtx") {
		if *out == "" {
			return fmt.Errorf("-to store needs -o FILE (the store is written with fsync-and-rename, not streamed)")
		}
		if err := store.BuildFileCtx(ctx, *out, store.FileSource(*from, fs.Arg(0))); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "hgconvert: %s → store: streamed %s in two passes\n", *from, fs.Arg(0))
		return nil
	}

	var r io.Reader = stdin
	if fs.Arg(0) != "" && *from != "store" {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}

	var h *hypergraph.Hypergraph
	switch *from {
	case "text":
		h, err = hypergraph.ReadTextCtx(ctx, r)
	case "store":
		if fs.Arg(0) == "" {
			return fmt.Errorf("-from store needs an input file path (the store is memory-mapped, not streamed)")
		}
		var st *store.File
		st, h, err = cli.OpenStoreCtx(ctx, fs.Arg(0))
		if err == nil {
			// The hypergraph aliases the store's mapped arrays; keep
			// the backend open until the conversion is written out.
			defer st.Close()
		}
	case "json":
		var data []byte
		data, err = io.ReadAll(r)
		if err == nil {
			h, err = hypergraph.UnmarshalJSONHypergraph(data)
		}
	case "mtx":
		var m *mmio.Matrix
		m, err = mmio.ReadCtx(ctx, r)
		if err == nil {
			h, err = mmio.ToHypergraph(m)
		}
	default:
		return fmt.Errorf("unknown input format %q", *from)
	}
	if err != nil {
		return err
	}

	if *to == "store" {
		if *out == "" {
			return fmt.Errorf("-to store needs -o FILE (the store is written with fsync-and-rename, not streamed)")
		}
		if err := store.WriteHCtx(ctx, *out, h); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "hgconvert: %s → store: |V|=%d |F|=%d |E|=%d\n",
			*from, h.NumVertices(), h.NumEdges(), h.NumPins())
		return nil
	}

	var w io.Writer = stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	switch *to {
	case "text":
		err = hypergraph.WriteText(w, h)
	case "json":
		var data []byte
		data, err = h.MarshalJSON()
		if err == nil {
			_, err = w.Write(append(data, '\n'))
		}
	case "mtx":
		err = mmio.Write(w, mmio.FromHypergraph(h))
	case "pajek":
		err = pajek.WriteNet(w, h, nil, nil)
	default:
		return fmt.Errorf("unknown output format %q", *to)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "hgconvert: %s → %s: |V|=%d |F|=%d |E|=%d\n",
		*from, *to, h.NumVertices(), h.NumEdges(), h.NumPins())
	return nil
}
