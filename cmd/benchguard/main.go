// benchguard gates CI on benchmark regressions.  It reads `go test
// -bench` output (stdin or a file), compares the pinned guard
// benchmarks against a committed baseline after calibration scaling,
// and exits non-zero if any kernel regressed past the threshold.
//
// Usage:
//
//	go test -run '^$' -bench '^BenchmarkGuard' -count 3 ./internal/benchguard/ \
//	  | benchguard -baseline internal/benchguard/testdata/baseline.json
//
//	benchguard -baseline ... -update bench.out   # re-record the baseline
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hyperplex/internal/benchguard"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchguard", flag.ContinueOnError)
	baselinePath := fs.String("baseline", "internal/benchguard/testdata/baseline.json", "baseline JSON file")
	threshold := fs.Float64("threshold", benchguard.DefaultThreshold, "fail when current ns/op exceeds calibrated baseline times this factor")
	update := fs.Bool("update", false, "re-record the baseline from the input instead of comparing")
	note := fs.String("note", "", "provenance note to store when updating the baseline")
	if err := fs.Parse(args); err != nil {
		return err
	}

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	current, err := benchguard.ParseBench(in)
	if err != nil {
		return err
	}

	if *update {
		b := &benchguard.Baseline{Note: *note, NsPerOp: current}
		if err := b.Save(*baselinePath); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "recorded %d benchmarks to %s\n", len(current), *baselinePath)
		return nil
	}

	baseline, err := benchguard.LoadBaseline(*baselinePath)
	if err != nil {
		return err
	}
	regressions, err := benchguard.Compare(baseline, current, *threshold)
	if err != nil {
		return err
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(stdout, "REGRESSION:", r)
		}
		return fmt.Errorf("%d benchmark(s) regressed past %.2fx", len(regressions), *threshold)
	}
	fmt.Fprintf(stdout, "benchguard: %d benchmarks within %.2fx of calibrated baseline\n",
		len(baseline.NsPerOp)-1, *threshold)
	return nil
}
