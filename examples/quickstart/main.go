// Quickstart: build a protein-complex hypergraph by hand, inspect it,
// compute its maximum core, and choose bait proteins with a weighted
// vertex cover — the whole public API in one small program.
package main

import (
	"fmt"
	"log"
	"os"

	"hyperplex"
)

func main() {
	log.SetFlags(0)

	// Build a toy protein-complex hypergraph: proteins are vertices,
	// complexes are hyperedges.
	b := hyperplex.NewBuilder()
	b.AddEdge("ribosome-ish", "RPL1", "RPL2", "RPS1", "NOP1")
	b.AddEdge("nucleolar", "NOP1", "NOP2", "RPL2", "SIK1")
	b.AddEdge("polymerase", "RPL1", "NOP1", "NOP2", "POL1")
	b.AddEdge("chaperone", "HSP1", "HSP2", "RPL1", "NOP2")
	b.AddEdge("kinase", "CDC1", "HSP1")
	b.AddEdge("lonely", "ORF1")
	h, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("hypergraph: %v\n", h)
	rpl1, _ := h.VertexID("RPL1")
	fmt.Printf("degree of RPL1: %d complexes\n", h.VertexDegree(rpl1))

	// Connected components and distances under the alternating
	// vertex–hyperedge path metric.
	_, _, comps := hyperplex.Components(h)
	fmt.Printf("components: %d (largest has %d proteins)\n", len(comps), comps[0].Vertices)
	sw := hyperplex.SmallWorldStats(h, 2)
	fmt.Printf("diameter %d, average path length %.2f\n", sw.Diameter, sw.AvgPathLength)

	// The maximum core: the densest nucleus of the complex network.
	mc := hyperplex.MaxCore(h)
	fmt.Printf("maximum core: %d-core with %d proteins and %d complexes\n", mc.K, mc.NumVertices, mc.NumEdges)
	for v := range mc.VertexIn {
		if mc.VertexIn[v] {
			fmt.Printf("  core protein: %s\n", h.VertexName(v))
		}
	}

	// Bait selection: cover every complex, preferring low-degree
	// proteins (weight = degree²).
	c, err := hyperplex.GreedyCover(h, hyperplex.DegreeSquaredWeights(h))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bait cover: %d proteins, average degree %.2f\n", c.Size(), c.AverageDegree(h))
	for _, v := range c.Vertices {
		fmt.Printf("  bait: %s\n", h.VertexName(v))
	}

	// Round-trip through the native text format.
	if err := hyperplex.WriteHypergraph(os.Stdout, h); err != nil {
		log.Fatal(err)
	}
}
