// Coreproteome reproduces the §3 analysis end to end on the calibrated
// synthetic Cellzome dataset: compute the maximum core of the yeast
// protein-complex hypergraph, characterize the core proteome against
// the annotation database, and test the essentiality-enrichment
// conjecture.
package main

import (
	"fmt"
	"sort"

	"hyperplex"
	"hyperplex/internal/bio"
)

func main() {
	inst := hyperplex.Cellzome()
	h := inst.H

	fmt.Printf("yeast protein-complex hypergraph: %v\n", h)

	// Full core decomposition: how deep does each protein sit?
	d := hyperplex.Decompose(h)
	fmt.Printf("maximum core level: %d\n", d.MaxK)
	levelCounts := map[int]int{}
	for _, c := range d.VertexCoreness {
		levelCounts[c]++
	}
	levels := make([]int, 0, len(levelCounts))
	for l := range levelCounts {
		levels = append(levels, l)
	}
	sort.Ints(levels)
	for _, l := range levels {
		fmt.Printf("  coreness %d: %d proteins\n", l, levelCounts[l])
	}

	// The core proteome.
	mc := d.Core(d.MaxK)
	fmt.Printf("\ncore proteome: %d proteins in %d complexes (%d-core)\n", mc.NumVertices, mc.NumEdges, d.MaxK)

	unknown, knownEssential, known, homologs := 0, 0, 0, 0
	for v := range mc.VertexIn {
		if !mc.VertexIn[v] {
			continue
		}
		if inst.Ann.Known[v] {
			known++
			if inst.Ann.Essential[v] {
				knownEssential++
			}
		} else {
			unknown++
		}
		if inst.Ann.Homolog[v] {
			homologs++
		}
	}
	fmt.Printf("  %d of unknown function; %d of the %d known are essential; %d have homologs\n",
		unknown, knownEssential, known, homologs)

	// Enrichment against the genome background (878 essential of 4036).
	knownCore := make([]bool, h.NumVertices())
	for v := range knownCore {
		knownCore[v] = mc.VertexIn[v] && inst.Ann.Known[v]
	}
	e := hyperplex.EnrichmentOf(knownCore, inst.Ann.Essential, bio.GenomeEssentialFraction(),
		"essential proteins in the core proteome")
	fmt.Printf("  %v\n", e)
	if e.Fold > 1.5 && e.PValue < 0.01 {
		fmt.Println("  → the core proteome is significantly enriched in essential proteins,")
		fmt.Println("    supporting the paper's core-proteome conjecture.")
	}

	// How does coreness relate to essentiality outside the maximum
	// core?  (An extension the decomposition makes easy.)
	fmt.Println("\nessentiality by coreness level:")
	for _, l := range levels {
		subset := make([]bool, h.NumVertices())
		for v, c := range d.VertexCoreness {
			subset[v] = c == l && inst.Ann.Known[v]
		}
		le := hyperplex.EnrichmentOf(subset, inst.Ann.Essential, bio.GenomeEssentialFraction(),
			fmt.Sprintf("coreness %d", l))
		if le.Subset > 0 {
			fmt.Printf("  coreness %d: %3d/%4d known essential (%.0f%%)\n", l, le.Hits, le.Subset, 100*le.SubsetFrac)
		}
	}
}
