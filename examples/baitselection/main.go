// Baitselection reproduces the §4 workflow: choose candidate bait
// proteins for a TAP screen with vertex covers and multicovers, then
// quantify the reliability gain of double coverage by simulating the
// experiment at the published 70 % pull-down reproducibility.
package main

import (
	"fmt"
	"log"

	"hyperplex"
	"hyperplex/internal/bio"
)

func main() {
	log.SetFlags(0)
	inst := hyperplex.Cellzome()
	h := inst.H

	fmt.Printf("dataset: %v\n\n", h)

	// 1. Minimum-cardinality cover: fewest baits that touch every
	//    complex — but they tend to be promiscuous (high degree).
	c1, err := hyperplex.GreedyCover(h, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("min-cardinality cover:  %3d baits, avg degree %.2f\n", c1.Size(), c1.AverageDegree(h))

	// 2. Degree²-weighted cover: prefer low-degree baits that pull
	//    down their complex unambiguously.
	w := hyperplex.DegreeSquaredWeights(h)
	c2, err := hyperplex.GreedyCover(h, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("degree²-weighted cover: %3d baits, avg degree %.2f\n", c2.Size(), c2.AverageDegree(h))

	// 3. 2-multicover: every complex is pulled down by two independent
	//    baits (single-protein complexes cannot be double-covered and
	//    are excluded, as in the paper).
	req := hyperplex.UniformRequirement(h, 2)
	for _, f := range inst.Singletons {
		req[f] = 0
	}
	c3, err := hyperplex.GreedyMulticover(h, w, req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2-multicover:           %3d baits, avg degree %.2f\n\n", c3.Size(), c3.AverageDegree(h))

	// 4. Simulate the TAP experiment: how many complexes does each
	//    bait set actually recover when pull-downs fail 30 % of the
	//    time?
	params := bio.DefaultTAPParams()
	rng := hyperplex.NewRNG(2026)
	trials := 50
	fmt.Printf("simulated TAP screens (%d trials, %.0f%% pull-down success):\n", trials, 100*params.PullDownSuccess)
	for _, set := range []struct {
		name  string
		baits []int
	}{
		{"weighted cover (r=1)", c2.Vertices},
		{"2-multicover (r=2)", c3.Vertices},
		{"Cellzome reported baits", inst.BaitsReported},
	} {
		var sum float64
		min := 1.0
		for i := 0; i < trials; i++ {
			o := hyperplex.SimulateTAP(h, set.baits, params, rng)
			r := o.RecoveryRate()
			sum += r
			if r < min {
				min = r
			}
		}
		fmt.Printf("  %-24s mean recovery %.1f%%, worst trial %.1f%%\n", set.name, 100*sum/float64(trials), 100*min)
	}
	fmt.Println("\n→ double coverage buys substantially higher recovery for roughly")
	fmt.Println("  double the bait count — the quantitative version of the paper's")
	fmt.Println("  reliability argument.")
}
