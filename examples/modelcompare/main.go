// Modelcompare quantifies the paper's §1.2 modeling argument on the
// Cellzome dataset: the hypergraph stores each complex in O(n) space
// while the clique-expansion protein-interaction graph needs O(n²),
// inflates clustering, and — like the star expansion and the complex
// intersection graph — answers some queries wrongly.
package main

import (
	"fmt"

	"hyperplex"
)

func main() {
	inst := hyperplex.Cellzome()
	h := inst.H

	fmt.Printf("dataset: %v\n\n", h)

	s := hyperplex.ComputeStorageCosts(h)
	fmt.Println("storage comparison:")
	fmt.Printf("  hypergraph pins:          %7d  (exact, lossless)\n", s.HypergraphPins)
	fmt.Printf("  clique expansion edges:   %7d  (%.1fx blow-up)\n", s.CliqueExpansionEdges, s.CliqueBlowupFactor)
	fmt.Printf("  star expansion edges:     %7d  (loses which complex an edge came from)\n", s.StarExpansionEdges)
	fmt.Printf("  intersection graph edges: %7d  (loses the proteins entirely)\n\n", s.IntersectionEdges)

	clique := hyperplex.CliqueExpansion(h)
	star := hyperplex.StarExpansion(h, nil)
	fmt.Println("clustering coefficients (the clique model's artifact):")
	fmt.Printf("  clique expansion: %.3f\n", clique.ClusteringCoefficient())
	fmt.Printf("  star expansion:   %.3f\n\n", star.ClusteringCoefficient())

	// A concrete query the lossy models answer differently: are two
	// proteins in a common complex?  Clique expansion answers via an
	// edge; star expansion misses prey–prey pairs.
	missed := 0
	checked := 0
	for f := 0; f < h.NumEdges() && checked < 100000; f++ {
		members := h.Vertices(f)
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				checked++
				if !star.HasEdge(int(members[i]), int(members[j])) {
					missed++
				}
			}
		}
	}
	fmt.Printf("co-complex queries: star expansion misses %d of %d prey–prey pairs (%.0f%%)\n",
		missed, checked, 100*float64(missed)/float64(checked))

	// And the intersection graph cannot answer protein queries at all;
	// but it does expose complex overlap structure:
	ig, edges, weights := hyperplex.IntersectionGraph(h)
	maxW, at := 0, -1
	for i, w := range weights {
		if w > maxW {
			maxW, at = w, i
		}
	}
	fmt.Printf("intersection graph: %d complex nodes, %d overlap edges", ig.NumVertices(), ig.NumEdges())
	if at >= 0 {
		fmt.Printf("; largest overlap %d proteins between %s and %s",
			maxW, h.EdgeName(int(edges[at][0])), h.EdgeName(int(edges[at][1])))
	}
	fmt.Println()

	// The hypergraph's maximum core vs the clique expansion's: the
	// graph model reports a very different "core" because every large
	// complex inflates into a dense clique.
	hm := hyperplex.MaxCore(h)
	gk, gin := hyperplex.GraphMaxCore(clique)
	gn := 0
	for _, b := range gin {
		if b {
			gn++
		}
	}
	fmt.Printf("\nmaximum cores: hypergraph %d-core (%d proteins) vs clique-expansion %d-core (%d proteins)\n",
		hm.K, hm.NumVertices, gk, gn)
	fmt.Println("→ the clique expansion's core is dominated by the largest complex,")
	fmt.Println("  not by proteins shared across many complexes — the paper's point.")
}
