// Pathfinder walks the paper's §1.3 path metric on the Cellzome
// dataset: distances between proteins are counted in complexes, and
// the actual alternating protein–complex paths can be extracted — the
// "two proteins are related through this chain of complexes" queries
// that the lossy graph models cannot answer faithfully.
package main

import (
	"fmt"
	"log"

	"hyperplex"
)

func main() {
	log.SetFlags(0)
	inst := hyperplex.Cellzome()
	h := inst.H

	adh1, ok := h.VertexID("ADH1")
	if !ok {
		log.Fatal("ADH1 missing")
	}

	// Eccentric pairs: find a protein far from ADH1 and show the chain.
	far, farDist := -1, int32(-1)
	bip := hyperplex.Bipartite(h)
	dist := bip.BFS(adh1, nil)
	for v := 0; v < h.NumVertices(); v++ {
		if dist[v] > farDist {
			far, farDist = v, dist[v]
		}
	}
	fmt.Printf("farthest protein from ADH1: %s at distance %d complexes\n",
		h.VertexName(far), farDist/2)

	p, ok := hyperplex.ShortestPath(h, adh1, far)
	if !ok {
		log.Fatal("no path found")
	}
	fmt.Printf("chain: %s\n\n", p.Format(h))

	// The core proteome is close-knit: every pair of core proteins is
	// within a couple of complexes.
	mc := hyperplex.MaxCore(h)
	var corePs []int
	for v, in := range mc.VertexIn {
		if in {
			corePs = append(corePs, v)
		}
	}
	maxD := 0
	for i := 0; i < len(corePs); i++ {
		d := bip.BFS(corePs[i], dist)
		for j := 0; j < len(corePs); j++ {
			if hd := int(d[corePs[j]]) / 2; hd > maxD {
				maxD = hd
			}
		}
	}
	fmt.Printf("diameter of the %d-protein core proteome: %d complexes\n", len(corePs), maxD)

	// A concrete example path inside the core.
	if len(corePs) >= 2 {
		cp, _ := hyperplex.ShortestPath(h, corePs[0], corePs[len(corePs)-1])
		fmt.Printf("core chain: %s\n", cp.Format(h))
	}
}
