// Humanscale exercises the library at the scale the paper's conclusion
// anticipates — proteome-wide studies far larger than the 2002 yeast
// screen — generating a synthetic 20000-protein complex network and
// running the full analysis pipeline: statistics, core decomposition
// (sequential and parallel), and bait selection.
//
// Pass -short for a 5000-protein run.
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	"hyperplex"
	"hyperplex/internal/dataset"
	"hyperplex/internal/stats"
)

func main() {
	log.SetFlags(0)
	short := flag.Bool("short", false, "use a 5000-protein instance")
	flag.Parse()

	nP, nC := 20000, 3000
	if *short {
		nP, nC = 5000, 800
	}
	start := time.Now()
	h := dataset.SyntheticProteome(nP, nC, 0x42A1)
	fmt.Printf("generated %v in %.2fs\n", h, time.Since(start).Seconds())

	// Degree structure.
	fit, err := hyperplex.FitPowerLaw(hyperplex.DegreeHistogram(h.VertexDegrees()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("protein degrees: %v\n", fit)

	_, _, comps := hyperplex.Components(h)
	fmt.Printf("components: %d (largest %d proteins / %d complexes)\n",
		len(comps), comps[0].Vertices, comps[0].Edges)

	// Core decomposition, sequential vs parallel.
	start = time.Now()
	mc := hyperplex.MaxCore(h)
	seqT := time.Since(start)
	fmt.Printf("maximum core (sequential): %d-core, %d proteins / %d complexes in %.2fs\n",
		mc.K, mc.NumVertices, mc.NumEdges, seqT.Seconds())

	start = time.Now()
	par := hyperplex.KCoreParallel(h, mc.K, 0)
	parT := time.Since(start)
	fmt.Printf("maximum core (parallel):   %d-core, %d proteins / %d complexes in %.2fs (%.1fx)\n",
		mc.K, par.NumVertices, par.NumEdges, parT.Seconds(), seqT.Seconds()/parT.Seconds())

	// Sampled small-world metrics (exact APSP would be |V| BFS runs).
	rng := hyperplex.NewRNG(7)
	start = time.Now()
	sw := stats.SmallWorldSampled(h, 256, runtime.NumCPU(), rng)
	fmt.Printf("sampled small-world: diameter ≥ %d, avg path ≈ %.2f (%.2fs from 256 sources)\n",
		sw.Diameter, sw.AvgPathLength, time.Since(start).Seconds())

	// Bait selection at scale.
	start = time.Now()
	c, err := hyperplex.GreedyCover(h, hyperplex.DegreeSquaredWeights(h))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("weighted bait cover: %d baits (avg degree %.2f) in %.2fs\n",
		c.Size(), c.AverageDegree(h), time.Since(start).Seconds())
}
