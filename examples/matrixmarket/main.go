// Matrixmarket runs the Table 1 pipeline on a sparse matrix: read (or
// synthesize) a Matrix Market file, view its columns as hyperedges
// over its rows, and compute the structural statistics and maximum
// core the paper reports for scientific-computing hypergraphs.
//
// Usage:
//
//	matrixmarket [file.mtx]
//
// With no argument a synthetic bfw398a-scale matrix is generated.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"hyperplex"
	"hyperplex/internal/gen"
)

func main() {
	log.SetFlags(0)

	var m *hyperplex.Matrix
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			log.Fatal(err)
		}
		m, err = hyperplex.ReadMatrixMarket(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("read %s: %dx%d, %d nonzeros\n", os.Args[1], m.Rows, m.Cols, m.NNZ())
	} else {
		spec := gen.Table1Specs(false)[0] // bfw398a
		m = gen.SyntheticMatrix(spec)
		fmt.Printf("synthesized %s: %dx%d, %d nonzeros\n", spec.Name, m.Rows, m.Cols, m.NNZ())
	}

	h, err := hyperplex.MatrixToHypergraph(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("as a hypergraph: %v\n", h)
	fmt.Printf("ΔV = %d, ΔF = %d, Δ2,F = %d\n", h.MaxVertexDegree(), h.MaxEdgeDegree(), h.MaxDegree2Edge())

	start := time.Now()
	mc := hyperplex.MaxCore(h)
	elapsed := time.Since(start)
	fmt.Printf("maximum core: %d-core with %d vertices and %d hyperedges (%.3fs)\n",
		mc.K, mc.NumVertices, mc.NumEdges, elapsed.Seconds())

	// The same computation with the parallel algorithm at the max
	// core's level.
	start = time.Now()
	par := hyperplex.KCoreParallel(h, mc.K, 0)
	fmt.Printf("parallel %d-core check: %d/%d in %.3fs\n", mc.K, par.NumVertices, par.NumEdges, time.Since(start).Seconds())

	// Degree distribution of the rows.
	if fit, err := hyperplex.FitPowerLaw(hyperplex.DegreeHistogram(h.VertexDegrees())); err == nil {
		fmt.Printf("row-degree distribution: %v\n", fit)
	} else {
		fmt.Printf("row-degree distribution: not power-law-fittable (%v) — banded matrices are near-regular, unlike the protein network\n", err)
	}
}
