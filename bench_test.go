// Benchmarks regenerating every table and figure of the paper (see
// DESIGN.md §4 for the experiment index) plus the ablations of §5.
// Run with:
//
//	go test -bench=. -benchmem
package hyperplex_test

import (
	"io"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"hyperplex/internal/bio"
	"hyperplex/internal/core"
	"hyperplex/internal/cover"
	"hyperplex/internal/csr"
	"hyperplex/internal/dataset"
	"hyperplex/internal/gen"
	"hyperplex/internal/graph"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/mmio"
	"hyperplex/internal/pajek"
	"hyperplex/internal/stats"
	"hyperplex/internal/store"
	"hyperplex/internal/xrand"
)

var (
	czOnce sync.Once
	czInst *dataset.Instance
)

func cellzome(b *testing.B) *dataset.Instance {
	b.Helper()
	czOnce.Do(func() { czInst = dataset.Cellzome() })
	return czInst
}

// BenchmarkFig1PowerLaw regenerates Fig. 1: the protein degree
// histogram and its log-log least-squares fit.
func BenchmarkFig1PowerLaw(b *testing.B) {
	h := cellzome(b).H
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hist := stats.DegreeHistogram(h.VertexDegrees())
		if _, err := stats.FitPowerLaw(hist); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2GraphCore regenerates Fig. 2: the core decomposition of
// the illustrative graph.
func BenchmarkFig2GraphCore(b *testing.B) {
	g := graph.MustBuild(7, [][2]int32{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
		{3, 4}, {4, 5}, {0, 6},
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.GraphCoreness(g)
	}
}

// BenchmarkFig3PajekExport regenerates Fig. 3: the Pajek drawing of
// the hypergraph with its maximum core highlighted.
func BenchmarkFig3PajekExport(b *testing.B) {
	inst := cellzome(b)
	mc := core.MaxCore(inst.H)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := pajek.WriteNet(io.Discard, inst.H, mc.VertexIn, mc.EdgeIn); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Cellzome regenerates the Cellzome row of Table 1: the
// maximum-core computation the paper timed at 0.47 s on a 2 GHz Xeon.
func BenchmarkTable1Cellzome(b *testing.B) {
	h := cellzome(b).H
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.MaxCore(h)
	}
}

// BenchmarkTable1Matrix regenerates the Matrix Market rows of Table 1
// (shrunken scales in -short mode so `go test -bench` stays quick).
func BenchmarkTable1Matrix(b *testing.B) {
	for _, spec := range gen.Table1Specs(true) {
		m := gen.SyntheticMatrix(spec)
		h, err := mmio.ToHypergraph(m)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(spec.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.MaxCore(h)
			}
		})
	}
}

// BenchmarkSec2SmallWorld regenerates the §2 small-world statistics
// (exact all-pairs BFS).
func BenchmarkSec2SmallWorld(b *testing.B) {
	h := cellzome(b).H
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		stats.SmallWorldStats(h, runtime.NumCPU())
	}
}

// BenchmarkSec2Components regenerates the component census of §2.
func BenchmarkSec2Components(b *testing.B) {
	h := cellzome(b).H
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		stats.Components(h)
	}
}

// BenchmarkSec3HypergraphCore regenerates the §3 core-proteome
// computation (maximum core of the Cellzome hypergraph).
func BenchmarkSec3HypergraphCore(b *testing.B) {
	h := cellzome(b).H
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := core.MaxCore(h)
		if r.K != 6 {
			b.Fatalf("max core k = %d", r.K)
		}
	}
}

// BenchmarkSec3DIPCores regenerates the §3 DIP graph-core results.
func BenchmarkSec3DIPCores(b *testing.B) {
	yeast := dataset.DIPYeast()
	fly := dataset.DIPFly()
	b.Run("yeast", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.GraphCoreness(yeast.G)
		}
	})
	b.Run("fly", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.GraphCoreness(fly.G)
		}
	})
}

// BenchmarkSec4Covers regenerates the §4.2 covers.
func BenchmarkSec4Covers(b *testing.B) {
	inst := cellzome(b)
	h := inst.H
	b.Run("greedy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cover.Greedy(h, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("degree2weighted", func(b *testing.B) {
		w := cover.DegreeSquaredWeights(h)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cover.Greedy(h, w); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("multicover", func(b *testing.B) {
		w := cover.DegreeSquaredWeights(h)
		req := cover.UniformRequirement(h, 2)
		for _, f := range inst.Singletons {
			req[f] = 0
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cover.GreedyMulticover(h, w, req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExtTAPReliability regenerates experiment X1: one simulated
// TAP screen over the reported baits.
func BenchmarkExtTAPReliability(b *testing.B) {
	inst := cellzome(b)
	rng := xrand.New(1)
	p := bio.DefaultTAPParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bio.SimulateTAP(inst.H, inst.BaitsReported, p, rng)
	}
}

// BenchmarkExtPrimalDual regenerates experiment X2.
func BenchmarkExtPrimalDual(b *testing.B) {
	h := cellzome(b).H
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cover.PrimalDual(h, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtParallelCore regenerates experiment X3: sequential vs
// round-synchronous parallel peeling on a banded hypergraph.
func BenchmarkExtParallelCore(b *testing.B) {
	spec := gen.MatrixSpec{Name: "bench", Rows: 8000, Cols: 8000, Band: 10, BandFill: 0.7, RandomPerRow: 2, Seed: 0xBE}
	m := gen.SyntheticMatrix(spec)
	h, err := mmio.ToHypergraph(m)
	if err != nil {
		b.Fatal(err)
	}
	const k = 8
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.KCore(h, k)
		}
	})
	for _, workers := range []int{1, 2, 4, runtime.NumCPU()} {
		b.Run("parallel-"+itoa(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.KCoreParallel(h, k, workers)
			}
		})
	}
}

// bandedBench builds the shared 8000×8000 banded instance used by the
// decomposition benchmarks.
func bandedBench(b *testing.B) *hypergraph.Hypergraph {
	b.Helper()
	spec := gen.MatrixSpec{Name: "bench", Rows: 8000, Cols: 8000, Band: 10, BandFill: 0.7, RandomPerRow: 2, Seed: 0xBE}
	m := gen.SyntheticMatrix(spec)
	h, err := mmio.ToHypergraph(m)
	if err != nil {
		b.Fatal(err)
	}
	return h
}

// BenchmarkDecompose measures the map-based level-by-level sequential
// decomposition — the pre-CSR hot path, kept as the semantic reference.
func BenchmarkDecompose(b *testing.B) {
	h := bandedBench(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := core.Decompose(h); d.MaxK == 0 {
			b.Fatal("degenerate decomposition")
		}
	}
}

// BenchmarkCSRDecompose measures the flat-array bucket-queue kernel on
// the same instance as BenchmarkDecompose, so the two are directly
// comparable (BENCH_PR6.json records the trajectory).
func BenchmarkCSRDecompose(b *testing.B) {
	h := bandedBench(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := core.CSRDecompose(h); d.MaxK == 0 {
			b.Fatal("degenerate decomposition")
		}
	}
}

// BenchmarkStoreDecompose measures the flat-array decomposition kernel
// over the memory-mapped store backend against the same kernel over
// in-RAM CSR arrays, on the shared banded instance (BENCH_PR10.json
// records the trajectory).  The mmap sub-benchmark pays the page-cache
// walk on first touch; steady-state iterations measure the residency
// cost of running the peel over file-backed arrays.
func BenchmarkStoreDecompose(b *testing.B) {
	h := bandedBench(b)
	b.Run("inram", func(b *testing.B) {
		c := csr.FromH(h)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if d := csr.Decompose(c); d.MaxK == 0 {
				b.Fatal("degenerate decomposition")
			}
		}
	})
	b.Run("mmap", func(b *testing.B) {
		path := filepath.Join(b.TempDir(), "banded.store")
		if err := store.WriteH(path, h); err != nil {
			b.Fatal(err)
		}
		st, err := store.Open(path, store.Options{})
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		c := st.CSR()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if d := csr.Decompose(c); d.MaxK == 0 {
				b.Fatal("degenerate decomposition")
			}
		}
	})
}

// BenchmarkShardedDecompose measures the sharded decomposition engine
// against the sequential peeler on a banded hypergraph, across shard
// counts.
func BenchmarkShardedDecompose(b *testing.B) {
	h := bandedBench(b)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.Decompose(h)
		}
	})
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run("sharded-"+itoa(shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.ShardedDecompose(h, core.ShardedOptions{Shards: shards})
			}
		})
	}
}

// bandedReq builds a demand-2 multicover requirement on h, clamped to
// each hyperedge's degree so the instance stays feasible.
func bandedReq(h *hypergraph.Hypergraph) []int {
	req := make([]int, h.NumEdges())
	for f := range req {
		req[f] = 2
		if d := h.EdgeDegree(f); d < 2 {
			req[f] = d
		}
	}
	return req
}

// BenchmarkGreedyMulticover measures the map-based lazy-heap greedy
// multicover — the semantic reference kernel — on the banded instance.
func BenchmarkGreedyMulticover(b *testing.B) {
	h := bandedBench(b)
	w := cover.DegreeSquaredWeights(h)
	req := bandedReq(h)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cover.GreedyMulticover(h, w, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCSRGreedyMulticover measures the flat-array greedy
// multicover kernel on the same instance as BenchmarkGreedyMulticover,
// so the two are directly comparable (BENCH_PR7.json records the
// trajectory).
func BenchmarkCSRGreedyMulticover(b *testing.B) {
	h := bandedBench(b)
	w := cover.DegreeSquaredWeights(h)
	req := bandedReq(h)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cover.CSRGreedyMulticover(h, w, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtModelCompare regenerates experiment X4: building the
// competing representations.
func BenchmarkExtModelCompare(b *testing.B) {
	h := cellzome(b).H
	b.Run("clique", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			graph.CliqueExpansion(h)
		}
	})
	b.Run("star", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			graph.StarExpansion(h, nil)
		}
	})
	b.Run("intersection", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			graph.IntersectionGraph(h)
		}
	})
	b.Run("bipartite", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			graph.Bipartite(h)
		}
	})
}

// BenchmarkExtBiCore measures the (k, l)-core extension against the
// plain k-core on the Cellzome instance.
func BenchmarkExtBiCore(b *testing.B) {
	h := cellzome(b).H
	b.Run("kcore-6", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.KCore(h, 6)
		}
	})
	b.Run("bicore-6-3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.BiCore(h, 6, 3)
		}
	})
}

// BenchmarkExtExactCover measures the branch-and-bound solver on a
// modest instance where it certifies the greedy result.
func BenchmarkExtExactCover(b *testing.B) {
	h := gen.RandomHypergraph(60, 40, 4, xrand.New(13))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cover.Exact(h, nil, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtShortestPath measures alternating-path extraction.
func BenchmarkExtShortestPath(b *testing.B) {
	h := cellzome(b).H
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := stats.ShortestPath(h, 0, h.NumVertices()-1); ok {
			b.Fatal("satellite should be disconnected from vertex 0")
		}
	}
}

// ---- Ablations (DESIGN.md §5) -------------------------------------------

// BenchmarkAblationComponents compares bipartite-BFS labeling with the
// union-find implementation.
func BenchmarkAblationComponents(b *testing.B) {
	h := cellzome(b).H
	b.Run("bfs", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			stats.Components(h)
		}
	})
	b.Run("union-find", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			stats.ComponentsUF(h)
		}
	})
}

// BenchmarkAblationMaximality compares the paper's overlap-count
// maximality detection against naive pairwise containment scans.
func BenchmarkAblationMaximality(b *testing.B) {
	h := gen.RandomHypergraph(600, 400, 8, xrand.New(3))
	b.Run("overlap-count", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.KCore(h, 2)
		}
	})
	b.Run("naive-containment", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.KCoreNaive(h, 2)
		}
	})
}

// greedyRescan is the heap-free greedy cover baseline: every iteration
// rescans all vertices for the minimum cost.
func greedyRescan(h *hypergraph.Hypergraph, weights []float64) *cover.Cover {
	nv, ne := h.NumVertices(), h.NumEdges()
	if weights == nil {
		weights = cover.UnitWeights(h)
	}
	covered := make([]bool, ne)
	uncovered := ne
	c := &cover.Cover{InCover: make([]bool, nv)}
	for uncovered > 0 {
		best, bestCost := -1, 0.0
		for v := 0; v < nv; v++ {
			if c.InCover[v] {
				continue
			}
			g := 0
			for _, f := range h.Edges(v) {
				if !covered[f] {
					g++
				}
			}
			if g == 0 {
				continue
			}
			cost := weights[v] / float64(g)
			if best < 0 || cost < bestCost {
				best, bestCost = v, cost
			}
		}
		if best < 0 {
			break
		}
		c.InCover[best] = true
		c.Vertices = append(c.Vertices, best)
		c.Weight += weights[best]
		for _, f := range h.Edges(best) {
			if !covered[f] {
				covered[f] = true
				uncovered--
			}
		}
	}
	return c
}

// BenchmarkAblationCoverHeap compares the lazy-heap greedy against the
// rescan baseline.
func BenchmarkAblationCoverHeap(b *testing.B) {
	h := gen.RandomHypergraph(4000, 2500, 10, xrand.New(5))
	b.Run("lazy-heap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cover.Greedy(h, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rescan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			greedyRescan(h, nil)
		}
	})
}

// BenchmarkAblationStorage compares traversal over the CSR hypergraph
// against the map-of-sets representation.
func BenchmarkAblationStorage(b *testing.B) {
	h := gen.RandomHypergraph(5000, 3000, 12, xrand.New(7))
	m := hypergraph.NewMapHypergraph(h)
	b.Run("csr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sum := 0
			for v := 0; v < h.NumVertices(); v++ {
				for _, f := range h.Edges(v) {
					sum += h.EdgeDegree(int(f))
				}
			}
			if sum == 0 {
				b.Fatal("no pins")
			}
		}
	})
	b.Run("mapset", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sum := 0
			for v := range m.VertexEdges {
				for f := range m.VertexEdges[v] {
					sum += m.EdgeDegree(f)
				}
			}
			if sum == 0 {
				b.Fatal("no pins")
			}
		}
	})
}

// BenchmarkAblationAPSP compares exact all-pairs BFS against sampled
// landmarks for the average path length.
func BenchmarkAblationAPSP(b *testing.B) {
	h := cellzome(b).H
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			stats.SmallWorldStats(h, runtime.NumCPU())
		}
	})
	b.Run("sampled-64", func(b *testing.B) {
		rng := xrand.New(11)
		for i := 0; i < b.N; i++ {
			stats.SmallWorldSampled(h, 64, runtime.NumCPU(), rng)
		}
	})
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}
