package cover

import (
	"fmt"
	"math"

	"hyperplex/internal/hypergraph"
)

// PrimalDualResult is the outcome of the primal-dual cover algorithm:
// a feasible cover together with a feasible dual solution whose value
// lower-bounds the optimum, giving a per-instance quality certificate.
type PrimalDualResult struct {
	Cover *Cover
	// Dual holds the dual variable y_f of every hyperedge.
	Dual []float64
	// DualValue = Σ_f y_f ≤ OPT ≤ Cover.Weight.
	DualValue float64
}

// ApproxRatio returns the certified approximation ratio
// Cover.Weight / DualValue (∞ if the dual value is 0 with a non-empty
// cover, 1 for an empty instance).
func (r *PrimalDualResult) ApproxRatio() float64 {
	if r.DualValue == 0 {
		if r.Cover.Weight == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return r.Cover.Weight / r.DualValue
}

// PrimalDual computes a vertex cover by the classical primal-dual
// schema on the covering LP
//
//	min Σ w(v)·x(v)   s.t.  Σ_{v∈f} x(v) ≥ 1  for every hyperedge f,
//
// whose dual packs y_f subject to Σ_{f∋v} y_f ≤ w(v).  Hyperedges are
// scanned once; an uncovered hyperedge raises its y_f until some member
// becomes tight, and all members tightened by the raise enter the
// cover.  The cover weight is at most Δ_F (the maximum hyperedge
// cardinality) times the dual value, hence at most Δ_F · OPT.
//
// For hypergraphs with small maximum hyperedge degree this can beat
// the greedy's H_m bound; the paper notes for the yeast complex data
// (Δ_F large) greedy's bound is better — experiment X2 compares them.
func PrimalDual(h *hypergraph.Hypergraph, weights []float64) (*PrimalDualResult, error) {
	nv, ne := h.NumVertices(), h.NumEdges()
	if weights == nil {
		weights = UnitWeights(h)
	}
	if len(weights) != nv {
		return nil, fmt.Errorf("cover: %d weights for %d vertices", len(weights), nv)
	}
	for v, w := range weights {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("cover: weight of vertex %d is %v; weights must be positive and finite", v, w)
		}
	}
	slack := append([]float64(nil), weights...)
	y := make([]float64, ne)
	c := &Cover{InCover: make([]bool, nv)}
	covered := make([]bool, ne)
	dualValue := 0.0

	for f := 0; f < ne; f++ {
		if covered[f] {
			continue
		}
		members := h.Vertices(f)
		if len(members) == 0 {
			return nil, fmt.Errorf("cover: hyperedge %d is empty and cannot be covered", f)
		}
		// Raise y_f by the minimum remaining slack among members.
		min := math.Inf(1)
		for _, v := range members {
			if !c.InCover[v] && slack[v] < min {
				min = slack[v]
			}
		}
		if math.IsInf(min, 1) {
			// Every member is already in the cover (possible when an
			// earlier raise tightened several vertices at once).
			covered[f] = true
			continue
		}
		y[f] = min
		dualValue += min
		for _, v32 := range members {
			v := int(v32)
			if c.InCover[v] {
				continue
			}
			slack[v] -= min
			if slack[v] <= 1e-12 {
				c.InCover[v] = true
				c.Vertices = append(c.Vertices, v)
				c.Weight += weights[v]
				for _, g := range h.Edges(v) {
					covered[g] = true
				}
			}
		}
	}
	return &PrimalDualResult{Cover: c, Dual: y, DualValue: dualValue}, nil
}
