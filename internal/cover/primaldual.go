package cover

import (
	"context"
	"fmt"
	"math"

	"hyperplex/internal/failpoint"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/run"
)

// fpPrimalDualScan fires on every checkpoint of the primal-dual
// hyperedge scan.
var fpPrimalDualScan = failpoint.Register("cover.primaldual.scan")

// tightRelTol decides when a vertex's remaining slack counts as zero:
// the test is relative to the vertex's own weight, so instances whose
// weights all sit at (say) 1e-13 scale behave exactly like their
// scaled-up copies instead of every member going tight on the first
// raise.
const tightRelTol = 1e-12

// PrimalDualResult is the outcome of the primal-dual cover algorithm:
// a feasible cover together with a feasible dual solution whose value
// lower-bounds the optimum, giving a per-instance quality certificate.
type PrimalDualResult struct {
	Cover *Cover
	// Dual holds the dual variable y_f of every hyperedge.
	Dual []float64
	// DualValue = Σ_f y_f ≤ OPT ≤ Cover.Weight.
	DualValue float64
}

// ApproxRatio returns the certified approximation ratio
// Cover.Weight / DualValue (∞ if the dual value is 0 with a non-empty
// cover, 1 for an empty instance).
func (r *PrimalDualResult) ApproxRatio() float64 {
	if r.DualValue == 0 {
		if r.Cover.Weight == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return r.Cover.Weight / r.DualValue
}

// PrimalDual computes a vertex cover by the classical primal-dual
// schema on the covering LP
//
//	min Σ w(v)·x(v)   s.t.  Σ_{v∈f} x(v) ≥ 1  for every hyperedge f,
//
// whose dual packs y_f subject to Σ_{f∋v} y_f ≤ w(v).  Hyperedges are
// scanned once; an uncovered hyperedge raises its y_f until some member
// becomes tight, and all members tightened by the raise enter the
// cover.  The cover weight is at most Δ_F (the maximum hyperedge
// cardinality) times the dual value, hence at most Δ_F · OPT.
//
// For hypergraphs with small maximum hyperedge degree this can beat
// the greedy's H_m bound; the paper notes for the yeast complex data
// (Δ_F large) greedy's bound is better — experiment X2 compares them.
func PrimalDual(h *hypergraph.Hypergraph, weights []float64) (*PrimalDualResult, error) {
	return PrimalDualCtx(context.Background(), h, weights)
}

// PrimalDualCtx is PrimalDual honoring cancellation, deadline and any
// run.Budget attached to ctx (one step per hyperedge scanned, checked
// at bounded intervals).  On cancellation or budget exhaustion it
// returns (nil, err): a half-raised dual does not certify anything.
func PrimalDualCtx(ctx context.Context, h *hypergraph.Hypergraph, weights []float64) (*PrimalDualResult, error) {
	if err := run.Tick(ctx, run.MeterFrom(ctx), 0); err != nil {
		return nil, err
	}
	nv, ne := h.NumVertices(), h.NumEdges()
	weights, err := checkWeights(h, weights)
	if err != nil {
		return nil, err
	}
	slack := append([]float64(nil), weights...)
	y := make([]float64, ne)
	c := &Cover{InCover: make([]bool, nv)}
	covered := make([]bool, ne)
	dualValue := 0.0

	meter := run.MeterFrom(ctx)
	ops := 0
	for f := 0; f < ne; f++ {
		if ops++; ops >= greedyCheckEvery {
			if err := failpoint.Inject(fpPrimalDualScan); err != nil {
				return nil, err
			}
			if err := run.Tick(ctx, meter, int64(ops)); err != nil {
				return nil, err
			}
			ops = 0
		}
		if covered[f] {
			continue
		}
		members := h.Vertices(f)
		if len(members) == 0 {
			return nil, fmt.Errorf("cover: hyperedge %d is empty and cannot be covered", f)
		}
		// Raise y_f by the minimum remaining slack among members.
		min := math.Inf(1)
		for _, v := range members {
			if !c.InCover[v] && slack[v] < min {
				min = slack[v]
			}
		}
		if math.IsInf(min, 1) {
			// Every member is already in the cover (possible when an
			// earlier raise tightened several vertices at once).
			covered[f] = true
			continue
		}
		y[f] = min
		dualValue += min
		//hyperplexvet:ignore budgettick bounded: one pass over f's members; the enclosing raise loop ticks every coverCheckEvery hyperedges
		for _, v32 := range members {
			v := int(v32)
			if c.InCover[v] {
				continue
			}
			slack[v] -= min
			if slack[v] <= tightRelTol*weights[v] {
				c.InCover[v] = true
				c.Vertices = append(c.Vertices, v)
				c.Weight += weights[v]
				for _, g := range h.Edges(v) {
					covered[g] = true
				}
			}
		}
	}
	// Charge the final sub-checkEvery batch of scans so every hyperedge
	// is metered exactly once.
	if ops > 0 {
		if err := failpoint.Inject(fpPrimalDualScan); err != nil {
			return nil, err
		}
		if err := run.Tick(ctx, meter, int64(ops)); err != nil {
			return nil, err
		}
	}
	return &PrimalDualResult{Cover: c, Dual: y, DualValue: dualValue}, nil
}
