package cover

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"hyperplex/internal/hypergraph"
)

func TestExactTriangle(t *testing.T) {
	h := triangleH(t)
	c, err := Exact(h, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Weight != 2 || len(c.Vertices) != 2 {
		t.Errorf("exact cover weight %v size %d, want 2, 2", c.Weight, len(c.Vertices))
	}
	if err := Verify(h, c, nil); err != nil {
		t.Error(err)
	}
}

func TestExactWeighted(t *testing.T) {
	// Star where the hub is expensive: optimum is the two leaves.
	b := hypergraph.NewBuilder()
	b.AddEdge("f1", "hub", "a")
	b.AddEdge("f2", "hub", "b")
	h := b.MustBuild()
	w := UnitWeights(h)
	hub, _ := h.VertexID("hub")
	w[hub] = 1.5
	c, err := Exact(h, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Weight-1.5) > 1e-12 || len(c.Vertices) != 1 {
		t.Errorf("weight %v size %d, want hub at 1.5", c.Weight, len(c.Vertices))
	}
	w[hub] = 3
	c, err = Exact(h, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Weight != 2 || c.InCover[hub] {
		t.Errorf("weight %v, hub in cover %v; want leaves at 2", c.Weight, c.InCover[hub])
	}
}

func TestExactEmptyEdge(t *testing.T) {
	h, err := hypergraph.FromEdgeSets(2, [][]int32{{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Exact(h, nil, 0); err == nil {
		t.Error("Exact accepted an empty hyperedge")
	}
}

func TestExactNodeCap(t *testing.T) {
	// A cap of 1 node cannot prove optimality on a nontrivial instance,
	// and the failure must carry the ErrSearchCapped sentinel so the
	// differential oracles can treat it as inconclusive.
	h := triangleH(t)
	_, err := Exact(h, nil, 1)
	if err == nil {
		t.Fatal("Exact with 1-node cap should fail")
	}
	if !errors.Is(err, ErrSearchCapped) {
		t.Errorf("cap error %v does not wrap ErrSearchCapped", err)
	}
}

func TestPropertyExactMatchesBruteForce(t *testing.T) {
	prop := func(seed uint64) bool {
		h, w := randomCoverInstance(seed)
		if h.NumVertices() > 14 {
			return true
		}
		c, err := Exact(h, w, 0)
		if err != nil {
			return false
		}
		if Verify(h, c, nil) != nil {
			return false
		}
		opt := optimalCoverWeight(h, w, nil)
		return math.Abs(c.Weight-opt) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyGreedyWithinHarmonicOfExact(t *testing.T) {
	prop := func(seed uint64) bool {
		h, w := randomCoverInstance(seed)
		g, err := Greedy(h, w)
		if err != nil {
			return false
		}
		e, err := Exact(h, w, 0)
		if err != nil {
			return false
		}
		return g.Weight <= e.Weight*HarmonicBound(h.NumEdges())+1e-9 && e.Weight <= g.Weight+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
