// Tests pinning the CSR cover kernel to the map kernel (exact equality
// including selection order), the exact step accounting of the cover
// budgets, the relative tightness tolerance of the primal-dual schema,
// and the CertifyPrimalDual oracle over the sweep.
package cover_test

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"testing"

	"hyperplex/internal/check"
	"hyperplex/internal/cover"
	"hyperplex/internal/dataset"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/run"
)

// sameCover fails unless the two covers are identical: same selection
// order, same membership, and bitwise-equal weight (both kernels
// accumulate the sum in the same order).
func sameCover(t *testing.T, label string, want, got *cover.Cover) {
	t.Helper()
	if !slices.Equal(want.Vertices, got.Vertices) {
		t.Fatalf("%s: selection order differs:\nmap %v\ncsr %v", label, want.Vertices, got.Vertices)
	}
	if !slices.Equal(want.InCover, got.InCover) {
		t.Fatalf("%s: membership differs", label)
	}
	if want.Weight != got.Weight {
		t.Fatalf("%s: weight differs: map %v, csr %v", label, want.Weight, got.Weight)
	}
}

// TestDifferentialCSRGreedyMulticover pins CSRGreedyMulticover to the
// map kernel over the sweep and Cellzome: exact cover equality — same
// vertices in the same tie-break order — for unit and degree² weights,
// plain covering and requirement 2, including identical errors on
// infeasible input.
func TestDifferentialCSRGreedyMulticover(t *testing.T) {
	instances := append(check.Instances(58, 0xC0FE7), dataset.Cellzome().H)
	for i, h := range instances {
		for _, weighted := range []bool{false, true} {
			var w []float64
			if weighted {
				w = cover.DegreeSquaredWeights(h)
			}
			for _, multi := range []bool{false, true} {
				var req []int
				if multi {
					req = feasibleReq(h, 2)
				}
				label := fmt.Sprintf("instance %d %v (weighted=%v multi=%v)", i, h, weighted, multi)
				want, wantErr := cover.GreedyMulticover(h, w, req)
				got, gotErr := cover.CSRGreedyMulticover(h, w, req)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("%s: map err %v, csr err %v", label, wantErr, gotErr)
				}
				if wantErr != nil {
					if wantErr.Error() != gotErr.Error() {
						t.Fatalf("%s: errors differ:\nmap %v\ncsr %v", label, wantErr, gotErr)
					}
					continue
				}
				sameCover(t, label, want, got)
				if err := check.ValidCover(h, got, w, req); err != nil {
					t.Fatalf("%s: %v", label, err)
				}
			}
		}
	}
}

// chainH builds the two-vertex instance e1{a}, e2{a,b}, e3{b}, whose
// greedy run is small enough to trace by hand: pop a (select), pop b
// (stale, re-push), pop b (select) — exactly three heap pops.
func chainH(t *testing.T) *hypergraph.Hypergraph {
	t.Helper()
	b := hypergraph.NewBuilder()
	b.AddEdge("e1", "a")
	b.AddEdge("e2", "a", "b")
	b.AddEdge("e3", "b")
	return b.MustBuild()
}

// TestGreedyBudgetExactAccounting asserts that the greedy kernels meter
// every heap pop exactly once, including the final sub-checkEvery batch
// that the pre-fix code dropped (small instances used to report zero
// steps).
func TestGreedyBudgetExactAccounting(t *testing.T) {
	kernels := []struct {
		name string
		run  func(ctx context.Context, h *hypergraph.Hypergraph) (*cover.Cover, error)
	}{
		{"map", func(ctx context.Context, h *hypergraph.Hypergraph) (*cover.Cover, error) {
			return cover.GreedyMulticoverCtx(ctx, h, nil, nil)
		}},
		{"csr", func(ctx context.Context, h *hypergraph.Hypergraph) (*cover.Cover, error) {
			return cover.CSRGreedyMulticoverCtx(ctx, h, nil, nil)
		}},
	}
	single := hypergraph.NewBuilder()
	single.AddEdge("e", "a")
	cases := []struct {
		name  string
		h     *hypergraph.Hypergraph
		steps int64 // hand-counted heap pops
	}{
		{"single-edge", single.MustBuild(), 1},
		{"chain", chainH(t), 3},
	}
	for _, kern := range kernels {
		for _, tc := range cases {
			ctx, meter := run.WithBudget(context.Background(), run.Budget{})
			c, err := kern.run(ctx, tc.h)
			if err != nil {
				t.Fatalf("%s/%s: %v", kern.name, tc.name, err)
			}
			if got := meter.Steps(); got != tc.steps {
				t.Errorf("%s/%s: metered %d steps, hand count is %d", kern.name, tc.name, got, tc.steps)
			}
			if int64(len(c.Vertices)) > meter.Steps() {
				t.Errorf("%s/%s: %d selections cannot outnumber %d pops", kern.name, tc.name, len(c.Vertices), meter.Steps())
			}
		}
	}
	// Both kernels over the sweep: identical pop counts (same selection
	// trace), never fewer pops than selections, never zero on non-empty
	// work.
	for i, h := range check.Instances(30, 0xC0FE9) {
		ctxM, meterM := run.WithBudget(context.Background(), run.Budget{})
		cM, errM := cover.GreedyMulticoverCtx(ctxM, h, nil, feasibleReq(h, 1))
		ctxC, meterC := run.WithBudget(context.Background(), run.Budget{})
		cC, errC := cover.CSRGreedyMulticoverCtx(ctxC, h, nil, feasibleReq(h, 1))
		if errM != nil || errC != nil {
			t.Fatalf("instance %d %v: map err %v, csr err %v", i, h, errM, errC)
		}
		if meterM.Steps() != meterC.Steps() {
			t.Errorf("instance %d %v: map metered %d, csr %d", i, h, meterM.Steps(), meterC.Steps())
		}
		if int64(len(cM.Vertices)) > meterM.Steps() {
			t.Errorf("instance %d %v: %d selections, only %d pops metered", i, h, len(cM.Vertices), meterM.Steps())
		}
		if len(cC.Vertices) > 0 && meterC.Steps() == 0 {
			t.Errorf("instance %d %v: non-empty cover with zero metered steps", i, h)
		}
	}
	// A budget the residual flush must trip: the chain instance needs 3
	// pops, so MaxSteps 2 fails even though no periodic checkpoint fires.
	for _, kern := range kernels {
		ctx, _ := run.WithBudget(context.Background(), run.Budget{MaxSteps: 2})
		c, err := kern.run(ctx, chainH(t))
		if !errors.Is(err, run.ErrBudgetExceeded) {
			t.Errorf("%s: MaxSteps 2 on a 3-pop instance: got cover %v, err %v", kern.name, c, err)
		}
	}
}

// TestPrimalDualStepAccounting asserts one metered step per hyperedge
// scanned, residual batch included.
func TestPrimalDualStepAccounting(t *testing.T) {
	h := chainH(t)
	ctx, meter := run.WithBudget(context.Background(), run.Budget{})
	if _, err := cover.PrimalDualCtx(ctx, h, nil); err != nil {
		t.Fatal(err)
	}
	if got := meter.Steps(); got != int64(h.NumEdges()) {
		t.Errorf("metered %d steps for %d hyperedges", got, h.NumEdges())
	}
	ctx, _ = run.WithBudget(context.Background(), run.Budget{MaxSteps: 1})
	if _, err := cover.PrimalDualCtx(ctx, h, nil); !errors.Is(err, run.ErrBudgetExceeded) {
		t.Errorf("MaxSteps 1 over 3 hyperedges: err %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cover.PrimalDualCtx(ctx, h, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled context: err %v", err)
	}
}

// TestPrimalDualTinyWeights is the regression test for the absolute
// tightness tolerance: with every weight at or below the old 1e-12
// cutoff, the first raise used to tighten every member and the cover
// degenerated to near-everything.
func TestPrimalDualTinyWeights(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.AddEdge("f", "a", "b", "c")
	h := b.MustBuild()
	pd, err := cover.PrimalDual(h, []float64{1e-13, 2e-13, 3e-13})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.ValidPrimalDual(h, []float64{1e-13, 2e-13, 3e-13}, pd); err != nil {
		t.Fatal(err)
	}
	// Only the cheapest member goes tight; the raise leaves b and c
	// with slack far above their relative tolerance.
	if len(pd.Cover.Vertices) != 1 || pd.Cover.Vertices[0] != 0 {
		t.Fatalf("cover is %v, want just vertex 0 (a)", pd.Cover.Vertices)
	}

	// Mixed magnitudes: the 1e-15 member is the unique minimum; the
	// 5e-13 member retains ~all of its slack and must stay out.
	b = hypergraph.NewBuilder()
	b.AddEdge("f", "a", "b")
	h = b.MustBuild()
	pd, err = cover.PrimalDual(h, []float64{1e-15, 5e-13})
	if err != nil {
		t.Fatal(err)
	}
	if len(pd.Cover.Vertices) != 1 || pd.Cover.Vertices[0] != 0 {
		t.Fatalf("mixed magnitudes: cover is %v, want just vertex 0", pd.Cover.Vertices)
	}
}

// TestPrimalDualScaleInvariance checks that scaling all weights by a
// power of two (exact in float64) leaves the chosen cover identical —
// the property the absolute tolerance broke.
func TestPrimalDualScaleInvariance(t *testing.T) {
	const scale = 0x1p-40
	for i, h := range check.Instances(30, 0xC0FEA) {
		if hasEmptyEdge(h) {
			continue
		}
		w := cover.DegreeSquaredWeights(h)
		scaled := make([]float64, len(w))
		for v := range w {
			scaled[v] = w[v] * scale
		}
		base, err := cover.PrimalDual(h, w)
		if err != nil {
			t.Fatalf("instance %d %v: %v", i, h, err)
		}
		tiny, err := cover.PrimalDual(h, scaled)
		if err != nil {
			t.Fatalf("instance %d %v: %v", i, h, err)
		}
		if !slices.Equal(base.Cover.Vertices, tiny.Cover.Vertices) {
			t.Fatalf("instance %d %v: cover changed under 2^-40 weight scaling:\nbase %v\ntiny %v",
				i, h, base.Cover.Vertices, tiny.Cover.Vertices)
		}
	}
}

// TestCertifyPrimalDualSweep wires the CertifyPrimalDual oracle into
// the sweep: feasibility plus the weak-duality sandwich
// DualValue ≤ OPT ≤ Cover.Weight ≤ Δ_F·DualValue against the exact
// optimum, for unit and degree² weights.
func TestCertifyPrimalDualSweep(t *testing.T) {
	for i, h := range check.Instances(58, 0xC0FEB) {
		if hasEmptyEdge(h) {
			continue
		}
		for _, weighted := range []bool{false, true} {
			var w []float64
			if weighted {
				w = cover.DegreeSquaredWeights(h)
			}
			if err := check.CertifyPrimalDual(h, w, 200_000); err != nil {
				t.Fatalf("instance %d %v (weighted=%v): %v", i, h, weighted, err)
			}
		}
	}
	for i, h := range tinyInstances(40, 0xC0FEC) {
		if err := check.CertifyPrimalDual(h, nil, 200_000); err != nil {
			t.Fatalf("tiny %d %v: %v", i, h, err)
		}
	}
}
