package cover

import (
	"context"
	"fmt"

	"hyperplex/internal/csr"
	"hyperplex/internal/failpoint"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/run"
)

// This file is the flat-array greedy multicover kernel: the same lazy
// min-heap selection rule as GreedyMulticover, but with the inner loops
// running over a csr.CSR view — gain recomputation and requirement
// decrements walk flat VertexEdges rows, and the int32 state
// (remaining, lastGain, the heap's vertex array) is carved from one
// arena allocation.  Only the cost keys stay in a separate float64
// slice, preallocated to the heap's proven maximum size.
//
// The kernel is pinned to the map kernel by exact cover equality,
// including selection order, so the heap discipline must match
// byte-for-byte: it reuses costHeap itself (sift-up on push, sift-down
// on pop via container/heap), pushes the initial candidates in the same
// ascending vertex order, and computes costs with the identical
// weights[v]/float64(g) arithmetic.  The heap never outgrows its
// preallocation because every re-push is preceded by a pop.

// fpCSRPop fires on every checkpoint of the CSR greedy selection loop.
var fpCSRPop = failpoint.Register("cover.csr.pop")

// CSRGreedy computes an approximate minimum-weight vertex cover with
// the flat-array kernel.  It returns the exact cover Greedy returns,
// selected in the same order.
func CSRGreedy(h *hypergraph.Hypergraph, weights []float64) (*Cover, error) {
	return CSRGreedyMulticover(h, weights, nil)
}

// CSRGreedyCtx is CSRGreedy honoring cancellation, deadline and any
// run.Budget attached to ctx (one step per heap pop, checked at
// bounded intervals).
func CSRGreedyCtx(ctx context.Context, h *hypergraph.Hypergraph, weights []float64) (*Cover, error) {
	return CSRGreedyMulticoverCtx(ctx, h, weights, nil)
}

// CSRGreedyMulticover computes an approximate minimum-weight multicover
// with the flat-array kernel: the exact cover GreedyMulticover returns,
// selected in the same order, from inner loops over a CSR view.
func CSRGreedyMulticover(h *hypergraph.Hypergraph, weights []float64, req []int) (*Cover, error) {
	return CSRGreedyMulticoverCtx(context.Background(), h, weights, req)
}

// CSRGreedyMulticoverCtx is CSRGreedyMulticover honoring cancellation,
// deadline and any run.Budget attached to ctx (one step per heap pop,
// checked at bounded intervals).  On cancellation or budget exhaustion
// it returns (nil, err): a partially built cover does not satisfy the
// covering constraints.
func CSRGreedyMulticoverCtx(ctx context.Context, h *hypergraph.Hypergraph, weights []float64, req []int) (*Cover, error) {
	if err := run.Tick(ctx, run.MeterFrom(ctx), 0); err != nil {
		return nil, err
	}
	nv, ne := h.NumVertices(), h.NumEdges()
	weights, err := checkWeights(h, weights)
	if err != nil {
		return nil, err
	}

	// One arena allocation backs every int32 slice of the kernel; the
	// heap's vertex array is carved at its maximum live size (each
	// re-push follows a pop, so the heap never exceeds its initial nv
	// candidates).
	arena := make([]int32, ne+2*nv)
	carve := func(n int) []int32 {
		s := arena[:n:n]
		arena = arena[n:]
		return s
	}
	remaining := carve(ne)
	lastGain := carve(nv)
	heapV := carve(nv)[:0]

	unmet, err := fillRequirements(h, req, remaining)
	if err != nil {
		return nil, err
	}

	view := csr.FromH(h)
	// gain(v) = number of adjacent hyperedges with unmet requirement,
	// counted over the flat pin row.
	gain := func(v int32) int32 {
		g := int32(0)
		for _, f := range view.VertexEdges(v) {
			if remaining[f] > 0 {
				g++
			}
		}
		return g
	}

	ch := &costHeap{cost: make([]float64, 0, nv), v: heapV}
	meter := run.MeterFrom(ctx)
	// The heap seeding is O(pins) before the greedy loop's own ticks
	// start, so it checkpoints on the same interval as the pop loop.
	seeded := 0
	for v := int32(0); int(v) < nv; v++ {
		if seeded++; seeded >= greedyCheckEvery {
			if err := run.Tick(ctx, meter, int64(seeded)); err != nil {
				return nil, err
			}
			seeded = 0
		}
		if g := gain(v); g > 0 {
			lastGain[v] = g
			ch.pushItem(weights[v]/float64(g), v)
		}
	}

	c := &Cover{InCover: make([]bool, nv)}
	pops := 0
	for unmet > 0 {
		if ch.Len() == 0 {
			return nil, fmt.Errorf("cover: %d hyperedges remain uncoverable", unmet)
		}
		if pops++; pops >= greedyCheckEvery {
			if err := failpoint.Inject(fpCSRPop); err != nil {
				return nil, err
			}
			if err := run.Tick(ctx, meter, int64(pops)); err != nil {
				return nil, err
			}
			pops = 0
		}
		_, v := ch.popItem()
		if c.InCover[v] {
			continue
		}
		g := gain(v)
		if g == 0 {
			continue
		}
		if g != lastGain[v] {
			// Stale entry: re-cost and retry.
			lastGain[v] = g
			ch.pushItem(weights[v]/float64(g), v)
			continue
		}
		c.InCover[v] = true
		c.Vertices = append(c.Vertices, int(v))
		c.Weight += weights[v]
		//hyperplexvet:hotpath
		for _, f := range view.VertexEdges(v) {
			if remaining[f] > 0 {
				remaining[f]--
				if remaining[f] == 0 {
					unmet--
				}
			}
		}
	}
	// The final sub-checkEvery batch of pops never reached a periodic
	// checkpoint; charge it so every pop is metered exactly once.
	if pops > 0 {
		if err := failpoint.Inject(fpCSRPop); err != nil {
			return nil, err
		}
		if err := run.Tick(ctx, meter, int64(pops)); err != nil {
			return nil, err
		}
	}
	return c, nil
}
