package cover_test

import (
	"fmt"

	"hyperplex/internal/cover"
	"hyperplex/internal/hypergraph"
)

// ExampleGreedy selects bait proteins covering every complex.
func ExampleGreedy() {
	b := hypergraph.NewBuilder()
	b.AddEdge("c1", "hub", "p1")
	b.AddEdge("c2", "hub", "p2")
	b.AddEdge("c3", "hub", "p3")
	h := b.MustBuild()

	c, _ := cover.Greedy(h, nil)
	fmt.Printf("%d bait covers all %d complexes\n", c.Size(), h.NumEdges())
	// Output:
	// 1 bait covers all 3 complexes
}

// ExampleGreedyMulticover covers each complex twice for reliability.
func ExampleGreedyMulticover() {
	b := hypergraph.NewBuilder()
	b.AddEdge("c1", "a", "b")
	b.AddEdge("c2", "b", "c")
	h := b.MustBuild()

	c, _ := cover.GreedyMulticover(h, nil, cover.UniformRequirement(h, 2))
	fmt.Printf("%d baits give double coverage\n", c.Size())
	// Output:
	// 3 baits give double coverage
}

// ExamplePrimalDual certifies a cover with a dual lower bound.
func ExamplePrimalDual() {
	b := hypergraph.NewBuilder()
	b.AddEdge("c1", "a", "b")
	b.AddEdge("c2", "c", "d")
	h := b.MustBuild()

	r, _ := cover.PrimalDual(h, nil)
	// The primal-dual schema adds every vertex tightened by a raise —
	// here both endpoints of each hyperedge — and certifies the result
	// against the dual lower bound: weight ≤ Δ_F · bound.
	fmt.Printf("cover weight %.0f, lower bound %.0f\n", r.Cover.Weight, r.DualValue)
	// Output:
	// cover weight 4, lower bound 2
}
