package cover

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"hyperplex/internal/hypergraph"
	"hyperplex/internal/xrand"
)

func triangleH(t *testing.T) *hypergraph.Hypergraph {
	t.Helper()
	b := hypergraph.NewBuilder()
	b.AddEdge("f1", "a", "b")
	b.AddEdge("f2", "b", "c")
	b.AddEdge("f3", "a", "c")
	return b.MustBuild()
}

func TestGreedyStar(t *testing.T) {
	// A star hypergraph: one hub in every edge — greedy must pick just
	// the hub.
	b := hypergraph.NewBuilder()
	b.AddEdge("f1", "hub", "a")
	b.AddEdge("f2", "hub", "b")
	b.AddEdge("f3", "hub", "c")
	h := b.MustBuild()
	c, err := Greedy(h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 1 {
		t.Fatalf("cover size = %d, want 1", c.Size())
	}
	hub, _ := h.VertexID("hub")
	if !c.InCover[hub] {
		t.Error("greedy did not pick the hub")
	}
	if err := Verify(h, c, nil); err != nil {
		t.Error(err)
	}
}

func TestGreedyTriangle(t *testing.T) {
	h := triangleH(t)
	c, err := Greedy(h, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Any two vertices cover the triangle; one cannot.
	if c.Size() != 2 {
		t.Errorf("cover size = %d, want 2", c.Size())
	}
	if err := Verify(h, c, nil); err != nil {
		t.Error(err)
	}
}

func TestGreedyWeights(t *testing.T) {
	// Heavy hub: weights steer greedy away from it.
	b := hypergraph.NewBuilder()
	b.AddEdge("f1", "hub", "a")
	b.AddEdge("f2", "hub", "b")
	h := b.MustBuild()
	w := UnitWeights(h)
	hub, _ := h.VertexID("hub")
	w[hub] = 100
	c, err := Greedy(h, w)
	if err != nil {
		t.Fatal(err)
	}
	if c.InCover[hub] {
		t.Error("greedy picked the heavy hub")
	}
	if c.Size() != 2 || c.Weight != 2 {
		t.Errorf("cover = %d vertices weight %v, want 2 vertices weight 2", c.Size(), c.Weight)
	}
}

func TestGreedyInvalidWeights(t *testing.T) {
	h := triangleH(t)
	for _, bad := range [][]float64{
		{1, 1},              // wrong length
		{0, 1, 1},           // zero
		{-1, 1, 1},          // negative
		{math.NaN(), 1, 1},  // NaN
		{math.Inf(1), 1, 1}, // Inf
	} {
		if _, err := Greedy(h, bad); err == nil {
			t.Errorf("Greedy accepted invalid weights %v", bad)
		}
	}
}

func TestMulticover(t *testing.T) {
	h := triangleH(t)
	c, err := GreedyMulticover(h, nil, UniformRequirement(h, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Every edge has 2 vertices, so covering each twice needs all 3.
	if c.Size() != 3 {
		t.Errorf("2-multicover size = %d, want 3", c.Size())
	}
	if err := Verify(h, c, UniformRequirement(h, 2)); err != nil {
		t.Error(err)
	}
}

func TestMulticoverInfeasible(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.AddEdge("singleton", "a")
	h := b.MustBuild()
	_, err := GreedyMulticover(h, nil, UniformRequirement(h, 2))
	if err == nil {
		t.Fatal("2-multicover of a singleton edge should be infeasible")
	}
	if !strings.Contains(err.Error(), "singleton") {
		t.Errorf("error %q does not name the offending hyperedge", err)
	}
}

func TestMulticoverZeroRequirementSkips(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.AddEdge("want", "a", "b")
	b.AddEdge("skip", "c")
	h := b.MustBuild()
	req := []int{1, 0}
	c, err := GreedyMulticover(h, nil, req)
	if err != nil {
		t.Fatal(err)
	}
	cID, _ := h.VertexID("c")
	if c.InCover[cID] {
		t.Error("vertex of a requirement-0 edge was chosen")
	}
	if err := Verify(h, c, req); err != nil {
		t.Error(err)
	}
}

func TestMulticoverNegativeRequirement(t *testing.T) {
	h := triangleH(t)
	if _, err := GreedyMulticover(h, nil, []int{-1, 1, 1}); err == nil {
		t.Error("negative requirement accepted")
	}
}

func TestVerifyCatchesBadCover(t *testing.T) {
	h := triangleH(t)
	c := &Cover{InCover: make([]bool, h.NumVertices())}
	a, _ := h.VertexID("a")
	c.InCover[a] = true
	c.Vertices = []int{a}
	if err := Verify(h, c, nil); err == nil {
		t.Error("Verify accepted a non-cover")
	}
	// Wrong-length membership.
	bad := &Cover{InCover: make([]bool, 1)}
	if err := Verify(h, bad, nil); err == nil {
		t.Error("Verify accepted wrong-length InCover")
	}
}

func TestDegreeSquaredWeights(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.AddEdge("f1", "a", "b")
	b.AddEdge("f2", "a", "c")
	b.AddVertex("iso")
	h := b.MustBuild()
	w := DegreeSquaredWeights(h)
	a, _ := h.VertexID("a")
	iso, _ := h.VertexID("iso")
	if w[a] != 4 {
		t.Errorf("w(a) = %v, want 4", w[a])
	}
	if w[iso] != 1 {
		t.Errorf("w(iso) = %v, want 1 (degree-0 fallback)", w[iso])
	}
}

func TestHarmonicBound(t *testing.T) {
	if got := HarmonicBound(1); got != 1 {
		t.Errorf("H_1 = %v, want 1", got)
	}
	if got := HarmonicBound(4); math.Abs(got-(1+0.5+1.0/3+0.25)) > 1e-12 {
		t.Errorf("H_4 = %v", got)
	}
}

func TestAverageDegree(t *testing.T) {
	h := triangleH(t)
	a, _ := h.VertexID("a")
	b, _ := h.VertexID("b")
	c := &Cover{Vertices: []int{a, b}, InCover: make([]bool, h.NumVertices())}
	if got := c.AverageDegree(h); got != 2 {
		t.Errorf("AverageDegree = %v, want 2", got)
	}
	empty := &Cover{}
	if got := empty.AverageDegree(h); got != 0 {
		t.Errorf("empty AverageDegree = %v, want 0", got)
	}
}

func TestPrimalDualBasic(t *testing.T) {
	h := triangleH(t)
	r, err := PrimalDual(h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(h, r.Cover, nil); err != nil {
		t.Fatal(err)
	}
	if r.DualValue <= 0 || r.DualValue > r.Cover.Weight {
		t.Errorf("dual value %v not in (0, %v]", r.DualValue, r.Cover.Weight)
	}
	maxF := h.MaxEdgeDegree()
	if r.ApproxRatio() > float64(maxF)+1e-9 {
		t.Errorf("approx ratio %v exceeds Δ_F = %d", r.ApproxRatio(), maxF)
	}
}

func TestPrimalDualEmptyEdge(t *testing.T) {
	h, err := hypergraph.FromEdgeSets(2, [][]int32{{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PrimalDual(h, nil); err == nil {
		t.Error("PrimalDual accepted an empty hyperedge")
	}
}

func TestPrimalDualEmptyInstance(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.AddVertex("a")
	h := b.MustBuild()
	r, err := PrimalDual(h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cover.Size() != 0 || r.ApproxRatio() != 1 {
		t.Errorf("empty instance: size %d ratio %v", r.Cover.Size(), r.ApproxRatio())
	}
}

func randomCoverInstance(seed uint64) (*hypergraph.Hypergraph, []float64) {
	rng := xrand.New(seed)
	nv := 2 + rng.Intn(15)
	ne := 1 + rng.Intn(20)
	edges := make([][]int32, ne)
	for f := range edges {
		size := 1 + rng.Intn(4)
		if size > nv {
			size = nv
		}
		seen := map[int32]bool{}
		for len(seen) < size {
			seen[int32(rng.Intn(nv))] = true
		}
		for v := range seen {
			edges[f] = append(edges[f], v)
		}
	}
	h, err := hypergraph.FromEdgeSets(nv, edges)
	if err != nil {
		panic(err)
	}
	w := make([]float64, nv)
	for i := range w {
		w[i] = 0.5 + rng.Float64()*4
	}
	return h, w
}

// optimalCoverWeight brute-forces the optimum for small instances.
func optimalCoverWeight(h *hypergraph.Hypergraph, w []float64, req []int) float64 {
	nv := h.NumVertices()
	best := math.Inf(1)
	for mask := 0; mask < 1<<nv; mask++ {
		weight := 0.0
		for v := 0; v < nv; v++ {
			if mask&(1<<v) != 0 {
				weight += w[v]
			}
		}
		if weight >= best {
			continue
		}
		ok := true
		for f := 0; f < h.NumEdges() && ok; f++ {
			r := 1
			if req != nil {
				r = req[f]
			}
			got := 0
			for _, v := range h.Vertices(f) {
				if mask&(1<<int(v)) != 0 {
					got++
				}
			}
			ok = got >= r
		}
		if ok {
			best = weight
		}
	}
	return best
}

func TestPropertyGreedyFeasibleAndBounded(t *testing.T) {
	prop := func(seed uint64) bool {
		h, w := randomCoverInstance(seed)
		if h.NumVertices() > 14 {
			return true // keep the brute force cheap
		}
		c, err := Greedy(h, w)
		if err != nil {
			return false
		}
		if Verify(h, c, nil) != nil {
			return false
		}
		opt := optimalCoverWeight(h, w, nil)
		return c.Weight <= opt*HarmonicBound(h.NumEdges())+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyPrimalDualCertificate(t *testing.T) {
	prop := func(seed uint64) bool {
		h, w := randomCoverInstance(seed)
		if h.NumVertices() > 14 {
			return true
		}
		r, err := PrimalDual(h, w)
		if err != nil {
			return false
		}
		if Verify(h, r.Cover, nil) != nil {
			return false
		}
		opt := optimalCoverWeight(h, w, nil)
		// dual ≤ OPT ≤ primal ≤ Δ_F · dual
		if r.DualValue > opt+1e-9 {
			return false
		}
		if r.Cover.Weight < opt-1e-9 {
			return false
		}
		return r.Cover.Weight <= float64(h.MaxEdgeDegree())*r.DualValue+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMulticoverFeasible(t *testing.T) {
	prop := func(seed uint64) bool {
		h, w := randomCoverInstance(seed)
		req := make([]int, h.NumEdges())
		rng := xrand.New(seed ^ 0x1234)
		for f := range req {
			r := 1 + rng.Intn(2)
			if r > h.EdgeDegree(f) {
				r = h.EdgeDegree(f)
			}
			req[f] = r
		}
		c, err := GreedyMulticover(h, w, req)
		if err != nil {
			return false
		}
		return Verify(h, c, req) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCoverNoDuplicates(t *testing.T) {
	prop := func(seed uint64) bool {
		h, w := randomCoverInstance(seed)
		c, err := Greedy(h, w)
		if err != nil {
			return false
		}
		seen := map[int]bool{}
		for _, v := range c.Vertices {
			if seen[v] {
				return false
			}
			seen[v] = true
			if !c.InCover[v] {
				return false
			}
		}
		n := 0
		for _, in := range c.InCover {
			if in {
				n++
			}
		}
		return n == len(c.Vertices)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
