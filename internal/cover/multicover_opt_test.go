package cover

import (
	"testing"
	"testing/quick"

	"hyperplex/internal/xrand"
)

// TestPropertyMulticoverWithinHarmonicOfOptimum checks the H_m
// guarantee for the multicover variant against the brute-force
// optimum.
func TestPropertyMulticoverWithinHarmonicOfOptimum(t *testing.T) {
	prop := func(seed uint64) bool {
		h, w := randomCoverInstance(seed)
		if h.NumVertices() > 12 {
			return true
		}
		rng := xrand.New(seed ^ 0x5555)
		req := make([]int, h.NumEdges())
		for f := range req {
			r := 1 + rng.Intn(2)
			if r > h.EdgeDegree(f) {
				r = h.EdgeDegree(f)
			}
			req[f] = r
		}
		c, err := GreedyMulticover(h, w, req)
		if err != nil {
			return false
		}
		opt := optimalCoverWeight(h, w, req)
		return c.Weight <= opt*HarmonicBound(h.NumEdges())+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMulticoverNeverExceedsSumRequirements pins the bound the
// EXPERIMENTS.md inconsistency note relies on: a multicover picks at
// most Σ r_f vertices.
func TestPropertyMulticoverNeverExceedsSumRequirements(t *testing.T) {
	prop := func(seed uint64) bool {
		h, w := randomCoverInstance(seed)
		rng := xrand.New(seed ^ 0xaaaa)
		req := make([]int, h.NumEdges())
		sum := 0
		for f := range req {
			r := rng.Intn(3)
			if r > h.EdgeDegree(f) {
				r = h.EdgeDegree(f)
			}
			req[f] = r
			sum += r
		}
		c, err := GreedyMulticover(h, w, req)
		if err != nil {
			return false
		}
		return c.Size() <= sum
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
