// Package cover implements minimum-weight vertex covers and multicovers
// of hypergraphs, used in the paper to select bait proteins for the
// Cellzome TAP experiments (§4).
//
// The main algorithm is the greedy set-cover heuristic of Johnson,
// Chvátal and Lovász: repeatedly pick the vertex of minimum current
// cost α(v) = w(v) / |adj(v) ∩ F_i| (its weight spread over the
// hyperedges it would newly cover) — an H_m = O(log m) approximation.
// A multicover variant covers each hyperedge f at least r_f times with
// the same guarantee.  A primal-dual algorithm (named as current work
// in §4.1 of the paper) provides an alternative with a Δ_F
// approximation ratio and a per-instance lower-bound certificate.
package cover

import (
	"container/heap"
	"context"
	"fmt"
	"math"

	"hyperplex/internal/failpoint"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/run"
)

// fpGreedyPop fires on every checkpoint of the greedy selection loop.
var fpGreedyPop = failpoint.Register("cover.greedy.pop")

// greedyCheckEvery bounds how many heap pops may pass between
// cancellation/budget checkpoints.
const greedyCheckEvery = 64

// Cover is the result of a covering algorithm.
type Cover struct {
	// Vertices lists the chosen vertex IDs in the order selected.
	Vertices []int
	// InCover is the membership form of Vertices.
	InCover []bool
	// Weight is the total weight of the chosen vertices.
	Weight float64
}

// Size returns the number of chosen vertices.
func (c *Cover) Size() int { return len(c.Vertices) }

// AverageDegree returns the mean hypergraph degree of the chosen
// vertices — the paper's figure of merit for bait quality (low-degree
// baits pull down their complexes less ambiguously).
func (c *Cover) AverageDegree(h *hypergraph.Hypergraph) float64 {
	if len(c.Vertices) == 0 {
		return 0
	}
	sum := 0
	for _, v := range c.Vertices {
		sum += h.VertexDegree(v)
	}
	return float64(sum) / float64(len(c.Vertices))
}

// UnitWeights returns a weight of 1 for every vertex.
func UnitWeights(h *hypergraph.Hypergraph) []float64 {
	w := make([]float64, h.NumVertices())
	for i := range w {
		w[i] = 1
	}
	return w
}

// DegreeSquaredWeights returns w(v) = d(v)², the weighting the paper
// uses to bias the cover toward low-degree bait proteins.  Vertices of
// degree 0 get weight 1 so the weights stay positive.
func DegreeSquaredWeights(h *hypergraph.Hypergraph) []float64 {
	w := make([]float64, h.NumVertices())
	for v := range w {
		d := h.VertexDegree(v)
		if d == 0 {
			w[v] = 1
		} else {
			w[v] = float64(d * d)
		}
	}
	return w
}

// UniformRequirement returns r_f = r for every hyperedge.
func UniformRequirement(h *hypergraph.Hypergraph, r int) []int {
	req := make([]int, h.NumEdges())
	for i := range req {
		req[i] = r
	}
	return req
}

// checkWeights substitutes unit weights for nil and validates that
// every weight is positive and finite.  Shared by the map kernel, the
// CSR kernel and the primal-dual schema so all three reject invalid
// input with identical errors.
func checkWeights(h *hypergraph.Hypergraph, weights []float64) ([]float64, error) {
	if weights == nil {
		weights = UnitWeights(h)
	}
	if len(weights) != h.NumVertices() {
		return nil, fmt.Errorf("cover: %d weights for %d vertices", len(weights), h.NumVertices())
	}
	for v, w := range weights {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("cover: weight of vertex %d is %v; weights must be positive and finite", v, w)
		}
	}
	return weights, nil
}

// fillRequirements validates req (nil means a requirement of 1
// everywhere) and writes the outstanding per-hyperedge counts into
// remaining, which the caller sizes to h.NumEdges() — the CSR kernel
// hands in an arena slice, the map kernel a fresh one.  It returns the
// number of hyperedges with a positive requirement.
func fillRequirements(h *hypergraph.Hypergraph, req []int, remaining []int32) (int, error) {
	unmet := 0
	for f := range remaining {
		r := 1
		if req != nil {
			r = req[f]
		}
		if r < 0 {
			return 0, fmt.Errorf("cover: negative requirement %d for hyperedge %d", r, f)
		}
		if r > h.EdgeDegree(f) {
			name := h.EdgeName(f)
			if name == "" {
				name = fmt.Sprintf("f%d", f)
			}
			return 0, fmt.Errorf("cover: hyperedge %s has %d vertices but requirement %d", name, h.EdgeDegree(f), r)
		}
		remaining[f] = int32(r)
		if r > 0 {
			unmet++
		}
	}
	return unmet, nil
}

// heap of candidate vertices keyed by last-known cost; stale entries
// are re-costed lazily at pop time (valid because a vertex's cost only
// increases as hyperedges become covered).
type costHeap struct {
	cost []float64
	v    []int32
}

func (h *costHeap) Len() int           { return len(h.v) }
func (h *costHeap) Less(i, j int) bool { return h.cost[i] < h.cost[j] }
func (h *costHeap) Swap(i, j int) {
	h.cost[i], h.cost[j] = h.cost[j], h.cost[i]
	h.v[i], h.v[j] = h.v[j], h.v[i]
}

//hyperplexvet:ignore nopanic container/heap interface stubs; the typed pushItem/popItem are the only callers
func (h *costHeap) Push(x interface{}) { panic("use pushItem") }

//hyperplexvet:ignore nopanic container/heap interface stubs; the typed pushItem/popItem are the only callers
func (h *costHeap) Pop() interface{} { panic("use popItem") }
func (h *costHeap) pushItem(c float64, v int32) {
	h.cost = append(h.cost, c)
	h.v = append(h.v, v)
	heap.Fix(h, h.Len()-1)
}

//hyperplexvet:hotpath
func (h *costHeap) popItem() (float64, int32) {
	c, v := h.cost[0], h.v[0]
	n := h.Len() - 1
	h.Swap(0, n)
	h.cost = h.cost[:n]
	h.v = h.v[:n]
	if n > 0 {
		heap.Fix(h, 0)
	}
	return c, v
}

// Greedy computes an approximate minimum-weight vertex cover.  weights
// may be nil for the unweighted (minimum cardinality) problem; all
// weights must be positive.  It returns an error if some non-empty
// hyperedge cannot be covered (impossible for valid input) or if a
// hyperedge is empty.
func Greedy(h *hypergraph.Hypergraph, weights []float64) (*Cover, error) {
	return GreedyMulticover(h, weights, nil)
}

// GreedyCtx is Greedy honoring cancellation, deadline and any
// run.Budget attached to ctx (one step per heap pop, checked at
// bounded intervals).  On cancellation or budget exhaustion it returns
// (nil, err): a partially built cover does not satisfy the covering
// constraints.
func GreedyCtx(ctx context.Context, h *hypergraph.Hypergraph, weights []float64) (*Cover, error) {
	return GreedyMulticoverCtx(ctx, h, weights, nil)
}

// GreedyMulticover computes an approximate minimum-weight multicover:
// at least req[f] distinct vertices of every hyperedge f must be
// chosen.  req may be nil (then every requirement is 1); requirements
// of 0 mean the hyperedge is ignored.  A hyperedge with req[f] greater
// than its cardinality is infeasible and yields an error naming it.
//
// The implementation follows the paper's greedy rule with a lazy
// min-heap: α(v) = w(v) / (number of adjacent hyperedges with unmet
// requirement).  Each pop re-computes the vertex's current cost and
// re-inserts it if stale, which is sound because costs only increase.
func GreedyMulticover(h *hypergraph.Hypergraph, weights []float64, req []int) (*Cover, error) {
	return GreedyMulticoverCtx(context.Background(), h, weights, req)
}

// GreedyMulticoverCtx is GreedyMulticover honoring cancellation,
// deadline and any run.Budget attached to ctx (one step per heap pop,
// checked at bounded intervals).  On cancellation or budget exhaustion
// it returns (nil, err): a partially built cover does not satisfy the
// covering constraints.
func GreedyMulticoverCtx(ctx context.Context, h *hypergraph.Hypergraph, weights []float64, req []int) (*Cover, error) {
	if err := run.Tick(ctx, run.MeterFrom(ctx), 0); err != nil {
		return nil, err
	}
	nv, ne := h.NumVertices(), h.NumEdges()
	weights, err := checkWeights(h, weights)
	if err != nil {
		return nil, err
	}
	remaining := make([]int32, ne)
	unmet, err := fillRequirements(h, req, remaining)
	if err != nil {
		return nil, err
	}

	// gain(v) = number of adjacent hyperedges with unmet requirement.
	gain := func(v int) int {
		g := 0
		for _, f := range h.Edges(v) {
			if remaining[f] > 0 {
				g++
			}
		}
		return g
	}

	ch := &costHeap{}
	lastGain := make([]int, nv)
	meter := run.MeterFrom(ctx)
	// The heap seeding is O(pins) before the greedy loop's own ticks
	// start, so it checkpoints on the same interval as the pop loop.
	seeded := 0
	for v := 0; v < nv; v++ {
		if seeded++; seeded >= greedyCheckEvery {
			if err := run.Tick(ctx, meter, int64(seeded)); err != nil {
				return nil, err
			}
			seeded = 0
		}
		if g := gain(v); g > 0 {
			lastGain[v] = g
			ch.pushItem(weights[v]/float64(g), int32(v))
		}
	}

	c := &Cover{InCover: make([]bool, nv)}
	pops := 0
	for unmet > 0 {
		if ch.Len() == 0 {
			return nil, fmt.Errorf("cover: %d hyperedges remain uncoverable", unmet)
		}
		if pops++; pops >= greedyCheckEvery {
			if err := failpoint.Inject(fpGreedyPop); err != nil {
				return nil, err
			}
			if err := run.Tick(ctx, meter, int64(pops)); err != nil {
				return nil, err
			}
			pops = 0
		}
		_, v32 := ch.popItem()
		v := int(v32)
		if c.InCover[v] {
			continue
		}
		g := gain(v)
		if g == 0 {
			continue
		}
		if g != lastGain[v] {
			// Stale entry: re-cost and retry.
			lastGain[v] = g
			ch.pushItem(weights[v]/float64(g), v32)
			continue
		}
		c.InCover[v] = true
		c.Vertices = append(c.Vertices, v)
		c.Weight += weights[v]
		for _, f := range h.Edges(v) {
			if remaining[f] > 0 {
				remaining[f]--
				if remaining[f] == 0 {
					unmet--
				}
			}
		}
	}
	// The final sub-checkEvery batch of pops never reached a periodic
	// checkpoint; charge it so every pop is metered exactly once.
	if pops > 0 {
		if err := failpoint.Inject(fpGreedyPop); err != nil {
			return nil, err
		}
		if err := run.Tick(ctx, meter, int64(pops)); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Verify checks that cover satisfies the (multi)cover requirements on
// h.  req may be nil for plain covering.  It returns nil on success.
func Verify(h *hypergraph.Hypergraph, c *Cover, req []int) error {
	if len(c.InCover) != h.NumVertices() {
		return fmt.Errorf("cover: InCover has %d entries for %d vertices", len(c.InCover), h.NumVertices())
	}
	for f := 0; f < h.NumEdges(); f++ {
		r := 1
		if req != nil {
			r = req[f]
		}
		got := 0
		for _, v := range h.Vertices(f) {
			if c.InCover[v] {
				got++
			}
		}
		if got < r {
			name := h.EdgeName(f)
			if name == "" {
				name = fmt.Sprintf("f%d", f)
			}
			return fmt.Errorf("cover: hyperedge %s covered %d times, need %d", name, got, r)
		}
	}
	return nil
}

// HarmonicBound returns H_m = 1 + 1/2 + … + 1/m, the greedy
// algorithm's approximation ratio for an instance with m hyperedges.
func HarmonicBound(m int) float64 {
	s := 0.0
	for i := 1; i <= m; i++ {
		s += 1 / float64(i)
	}
	return s
}
