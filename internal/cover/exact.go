package cover

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"hyperplex/internal/hypergraph"
)

// ErrSearchCapped reports that Exact exhausted its node cap before
// proving optimality.  Callers that treat a capped search as
// "inconclusive" rather than fatal (the differential oracles) test for
// it with errors.Is.
var ErrSearchCapped = errors.New("cover: exact search capped")

// Exact computes an optimal minimum-weight vertex cover by
// branch-and-bound: branch on an uncovered hyperedge (one branch per
// member vertex), prune with the running best and a fractional
// lower bound.  Exponential in the worst case — intended for instances
// up to a few hundred hyperedges, where it certifies the greedy and
// primal-dual results; maxNodes caps the search (0 means a default of
// 5 million) and an error is returned if the cap is hit before
// optimality is proved.
func Exact(h *hypergraph.Hypergraph, weights []float64, maxNodes int64) (*Cover, error) {
	nv, ne := h.NumVertices(), h.NumEdges()
	if weights == nil {
		weights = UnitWeights(h)
	}
	if len(weights) != nv {
		return nil, fmt.Errorf("cover: %d weights for %d vertices", len(weights), nv)
	}
	for v, w := range weights {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("cover: weight of vertex %d is %v; weights must be positive and finite", v, w)
		}
	}
	for f := 0; f < ne; f++ {
		if h.EdgeDegree(f) == 0 {
			return nil, fmt.Errorf("cover: hyperedge %d is empty and cannot be covered", f)
		}
	}
	if maxNodes <= 0 {
		maxNodes = 5_000_000
	}

	// Start from the greedy solution as the incumbent.
	incumbent, err := Greedy(h, weights)
	if err != nil {
		return nil, err
	}
	best := append([]bool(nil), incumbent.InCover...)
	bestW := incumbent.Weight

	// Branch order: hardest hyperedges (fewest members) first.
	order := h.SortedEdgeIDsByDegree()

	inCover := make([]bool, nv)
	coveredBy := make([]int, ne) // how many chosen vertices cover f
	nodes := int64(0)
	capped := false

	// lowerBound: each uncovered hyperedge needs at least its cheapest
	// member; sum of per-edge minima divided by the max edge degree is
	// a valid bound, but the simpler "max over uncovered edges of the
	// cheapest member" plus current weight is both cheap and admissible.
	cheapest := make([]float64, ne)
	for f := 0; f < ne; f++ {
		min := math.Inf(1)
		for _, v := range h.Vertices(f) {
			if weights[v] < min {
				min = weights[v]
			}
		}
		cheapest[f] = min
	}

	var dfs func(idx int, weight float64)
	dfs = func(idx int, weight float64) {
		if capped {
			return
		}
		nodes++
		if nodes > maxNodes {
			capped = true
			return
		}
		// Advance to the next uncovered hyperedge.
		for idx < ne && coveredBy[order[idx]] > 0 {
			idx++
		}
		if idx == ne {
			if weight < bestW {
				bestW = weight
				copy(best, inCover)
			}
			return
		}
		f := order[idx]
		if weight+cheapest[f] >= bestW {
			return
		}
		// Branch: choose each member of f in turn.  To avoid exploring
		// the same cover twice, branch i also forbids the members tried
		// in branches < i; the simple version below just relies on the
		// bound, which is sufficient at the target sizes.
		for _, v32 := range h.Vertices(f) {
			v := int(v32)
			if inCover[v] {
				continue
			}
			if weight+weights[v] >= bestW {
				continue
			}
			inCover[v] = true
			for _, g := range h.Edges(v) {
				coveredBy[g]++
			}
			dfs(idx+1, weight+weights[v])
			inCover[v] = false
			for _, g := range h.Edges(v) {
				coveredBy[g]--
			}
			if capped {
				return
			}
		}
	}
	dfs(0, 0)
	if capped {
		return nil, fmt.Errorf("%w: hit the %d-node cap before proving optimality", ErrSearchCapped, maxNodes)
	}

	c := &Cover{InCover: best, Weight: bestW}
	for v, in := range best {
		if in {
			c.Vertices = append(c.Vertices, v)
		}
	}
	sort.Ints(c.Vertices)
	return c, nil
}
