// Differential tests validating the covering algorithms against the
// brute-force oracle and invariant checkers in internal/check.  This
// file is an external test package because check imports cover.
package cover_test

import (
	"testing"

	"hyperplex/internal/check"
	"hyperplex/internal/cover"
	"hyperplex/internal/dataset"
	"hyperplex/internal/gen"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/xrand"
)

// tinyInstances generates hypergraphs small enough for the exhaustive
// multicover oracle (≤ 12 vertices).
func tinyInstances(count int, seed uint64) []*hypergraph.Hypergraph {
	rng := xrand.New(seed)
	out := make([]*hypergraph.Hypergraph, 0, count)
	for len(out) < count {
		nv := 2 + rng.Intn(11)
		ne := 1 + rng.Intn(8)
		maxSize := 1 + rng.Intn(3)
		out = append(out, gen.RandomHypergraph(nv, ne, maxSize, rng))
	}
	return out
}

// feasibleReq returns the requirement min(r, d(f)) per hyperedge, the
// clamping the paper applies to singleton complexes in §4.2.
func feasibleReq(h *hypergraph.Hypergraph, r int) []int {
	req := make([]int, h.NumEdges())
	for f := range req {
		req[f] = r
		if d := h.EdgeDegree(f); d < r {
			req[f] = d
		}
	}
	return req
}

// TestDifferentialGreedyCover checks greedy covers for feasibility and
// consistency on the full sweep, and against the exact optimum (within
// the H_m guarantee) on tiny instances.
func TestDifferentialGreedyCover(t *testing.T) {
	for i, h := range check.Instances(58, 0xC0FE1) {
		c, err := cover.Greedy(h, nil)
		if err != nil {
			if !hasEmptyEdge(h) {
				t.Fatalf("instance %d %v: Greedy failed without an empty hyperedge: %v", i, h, err)
			}
			continue
		}
		if err := check.ValidCover(h, c, nil, nil); err != nil {
			t.Fatalf("instance %d %v: %v", i, h, err)
		}
	}
	for i, h := range tinyInstances(40, 0xC0FE2) {
		c, err := cover.Greedy(h, nil)
		if err != nil {
			t.Fatalf("tiny %d %v: %v", i, h, err)
		}
		if err := check.ValidCover(h, c, nil, nil); err != nil {
			t.Fatalf("tiny %d %v: %v", i, h, err)
		}
		opt, _, err := check.MulticoverOptBrute(h, nil, nil)
		if err != nil {
			t.Fatalf("tiny %d %v: %v", i, h, err)
		}
		bound := cover.HarmonicBound(h.NumEdges()) * opt
		if c.Weight < opt-1e-9 || c.Weight > bound+1e-9 {
			t.Fatalf("tiny %d %v: greedy weight %g outside [OPT=%g, H_m·OPT=%g]", i, h, c.Weight, opt, bound)
		}
	}
	h := dataset.Cellzome().H
	for _, w := range [][]float64{nil, cover.DegreeSquaredWeights(h)} {
		c, err := cover.Greedy(h, w)
		if err != nil {
			t.Fatalf("Cellzome greedy: %v", err)
		}
		if err := check.ValidCover(h, c, w, nil); err != nil {
			t.Fatalf("Cellzome greedy: %v", err)
		}
	}
}

// TestDifferentialMulticover checks the multicover variant the same
// way, with requirement 2 clamped to hyperedge cardinality.
func TestDifferentialMulticover(t *testing.T) {
	for i, h := range check.Instances(58, 0xC0FE3) {
		req := feasibleReq(h, 2)
		c, err := cover.GreedyMulticover(h, nil, req)
		if err != nil {
			t.Fatalf("instance %d %v: %v", i, h, err)
		}
		if err := check.ValidCover(h, c, nil, req); err != nil {
			t.Fatalf("instance %d %v: %v", i, h, err)
		}
		if err := cover.Verify(h, c, req); err != nil {
			t.Fatalf("instance %d %v: checkers disagree, cover.Verify says %v", i, h, err)
		}
	}
	for i, h := range tinyInstances(40, 0xC0FE4) {
		req := feasibleReq(h, 2)
		c, err := cover.GreedyMulticover(h, nil, req)
		if err != nil {
			t.Fatalf("tiny %d %v: %v", i, h, err)
		}
		if err := check.ValidCover(h, c, nil, req); err != nil {
			t.Fatalf("tiny %d %v: %v", i, h, err)
		}
		opt, _, err := check.MulticoverOptBrute(h, nil, req)
		if err != nil {
			t.Fatalf("tiny %d %v: %v", i, h, err)
		}
		total := 0
		for _, r := range req {
			total += r
		}
		bound := cover.HarmonicBound(total) * opt
		if c.Weight < opt-1e-9 || c.Weight > bound+1e-9 {
			t.Fatalf("tiny %d %v: multicover weight %g outside [OPT=%g, bound=%g]", i, h, c.Weight, opt, bound)
		}
	}
	h := dataset.Cellzome().H
	req := feasibleReq(h, 2)
	c, err := cover.GreedyMulticover(h, nil, req)
	if err != nil {
		t.Fatalf("Cellzome multicover: %v", err)
	}
	if err := check.ValidCover(h, c, nil, req); err != nil {
		t.Fatalf("Cellzome multicover: %v", err)
	}
}

// TestDifferentialPrimalDual verifies the primal-dual certificate on
// the sweep and that its dual value really lower-bounds the optimum on
// tiny instances.
func TestDifferentialPrimalDual(t *testing.T) {
	for i, h := range check.Instances(58, 0xC0FE5) {
		pd, err := cover.PrimalDual(h, nil)
		if err != nil {
			if !hasEmptyEdge(h) {
				t.Fatalf("instance %d %v: PrimalDual failed without an empty hyperedge: %v", i, h, err)
			}
			continue
		}
		if err := check.ValidPrimalDual(h, nil, pd); err != nil {
			t.Fatalf("instance %d %v: %v", i, h, err)
		}
	}
	for i, h := range tinyInstances(40, 0xC0FE6) {
		pd, err := cover.PrimalDual(h, nil)
		if err != nil {
			t.Fatalf("tiny %d %v: %v", i, h, err)
		}
		if err := check.ValidPrimalDual(h, nil, pd); err != nil {
			t.Fatalf("tiny %d %v: %v", i, h, err)
		}
		opt, _, err := check.MulticoverOptBrute(h, nil, nil)
		if err != nil {
			t.Fatalf("tiny %d %v: %v", i, h, err)
		}
		if pd.DualValue > opt+1e-9 {
			t.Fatalf("tiny %d %v: dual value %g exceeds optimum %g", i, h, pd.DualValue, opt)
		}
		if pd.Cover.Weight < opt-1e-9 {
			t.Fatalf("tiny %d %v: primal weight %g below optimum %g", i, h, pd.Cover.Weight, opt)
		}
	}
	h := dataset.Cellzome().H
	for _, w := range [][]float64{nil, cover.DegreeSquaredWeights(h)} {
		pd, err := cover.PrimalDual(h, w)
		if err != nil {
			t.Fatalf("Cellzome primal-dual: %v", err)
		}
		if err := check.ValidPrimalDual(h, w, pd); err != nil {
			t.Fatalf("Cellzome primal-dual: %v", err)
		}
	}
}

func hasEmptyEdge(h *hypergraph.Hypergraph) bool {
	for f := 0; f < h.NumEdges(); f++ {
		if h.EdgeDegree(f) == 0 {
			return true
		}
	}
	return false
}
