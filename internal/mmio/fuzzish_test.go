package mmio

import (
	"strings"
	"testing"
	"testing/quick"

	"hyperplex/internal/xrand"
)

func TestReadNeverPanics(t *testing.T) {
	prop := func(seed uint64) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		rng := xrand.New(seed)
		chars := []byte("%MatrixMarket matrix coordinate real general symmetric pattern\n 0123456789.-e")
		n := rng.Intn(300)
		var sb strings.Builder
		// Half the cases start with a plausible header to reach the
		// body parser.
		if seed%2 == 0 {
			sb.WriteString("%%MatrixMarket matrix coordinate real general\n")
		}
		for i := 0; i < n; i++ {
			sb.WriteByte(chars[rng.Intn(len(chars))])
		}
		m, err := Read(strings.NewReader(sb.String()))
		if err == nil {
			// Whatever parses must convert cleanly.
			if h, err2 := ToHypergraph(m); err2 != nil || h.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
