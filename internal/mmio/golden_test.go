package mmio

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenMatrixMarket pins the interchange behaviour against a file
// on disk: shape, values and a write/read round trip.
func TestGoldenMatrixMarket(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "golden.mtx"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 4 || m.NNZ() != 5 {
		t.Fatalf("golden shape: %dx%d nnz %d", m.Rows, m.Cols, m.NNZ())
	}
	if m.Val[1] != -2 {
		t.Errorf("value[1] = %v", m.Val[1])
	}
	var out bytes.Buffer
	if err := Write(&out, m); err != nil {
		t.Fatal(err)
	}
	m2, err := Read(&out)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < m.NNZ(); k++ {
		if m.RowIdx[k] != m2.RowIdx[k] || m.ColIdx[k] != m2.ColIdx[k] || m.Val[k] != m2.Val[k] {
			t.Fatalf("round trip entry %d differs", k)
		}
	}
}
