// Package mmio reads and writes sparse matrices in the NIST Matrix
// Market coordinate format and converts them to hypergraphs.  Table 1
// of the paper runs the hypergraph core algorithm on matrices from the
// Matrix Market collection (math.nist.gov/MatrixMarket); this package
// supplies the interchange format, and internal/gen synthesizes
// matrices at the published scales since the originals cannot be
// downloaded in an offline build.
package mmio

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hyperplex/internal/failpoint"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/run"
)

// fpReadEntry fires on every checkpoint of the coordinate-entry loop.
var fpReadEntry = failpoint.Register("mmio.read.entry")

// readCheckEvery bounds how many coordinate entries may pass between
// cancellation/budget checkpoints in ReadCtx.
const readCheckEvery = 256

// entryBytes is the estimated long-lived cost of one stored entry
// (row + col int32 plus a float64), charged against MaxAlloc.
const entryBytes = 16

// Matrix is a sparse matrix in coordinate (triplet) form.  Indices are
// 0-based in memory (the on-disk format is 1-based).  Symmetric input
// is expanded to general form at read time.
type Matrix struct {
	Rows, Cols int
	// RowIdx[k], ColIdx[k], Val[k] describe the k-th stored entry.
	RowIdx []int32
	ColIdx []int32
	Val    []float64
	// Pattern records whether the source had no numeric values.
	Pattern bool
}

// NNZ returns the number of stored entries.
func (m *Matrix) NNZ() int { return len(m.RowIdx) }

// maxIndex caps the matrix dimensions a size line may declare: the
// downstream representations (Matrix, the CSR substrate, the store
// file format) index rows and columns with int32, so a larger
// dimension must fail loudly here instead of truncating in the
// int32(i-1) narrowings below.
const maxIndex = 1<<31 - 1

// Info is the parsed header of a Matrix Market coordinate file.
type Info struct {
	Rows, Cols int
	// NNZ is the stored entry count promised by the size line (before
	// symmetric expansion).
	NNZ       int
	Pattern   bool
	Symmetric bool
}

// MatrixEvents receives the entries of a coordinate file as ScanCtx
// parses them.
type MatrixEvents struct {
	// Size is called once with the validated size-line dimensions,
	// before any Entry call, so consumers can size allocations.  Nil
	// skips delivery.
	Size func(rows, cols, nnz int) error
	// Entry is called per stored entry with 0-based indices; for a
	// symmetric file each off-diagonal entry is delivered twice,
	// mirrored, exactly as Read expands it.  Nil skips delivery.
	Entry func(i, j int32, v float64) error
	// ChargeBytes charges a fixed per-entry allocation estimate
	// against the budget.  Callers that retain every entry (ReadCtx)
	// set it; streaming consumers leave it false.
	ChargeBytes bool
}

// Scan parses a Matrix Market file as a stream, delivering entries to
// ev without building a Matrix.  Read and the out-of-core store
// builder share this scanner.  Supported headers:
//
//	%%MatrixMarket matrix coordinate real|integer|pattern general|symmetric
func Scan(r io.Reader, ev MatrixEvents) (*Info, error) {
	return ScanCtx(context.Background(), r, ev)
}

// ScanCtx is Scan honoring cancellation, deadline and any run.Budget
// attached to ctx, checked at entry and at bounded line intervals (one
// step per line).
func ScanCtx(ctx context.Context, r io.Reader, ev MatrixEvents) (*Info, error) {
	meter := run.MeterFrom(ctx)
	if err := run.Tick(ctx, meter, 0); err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26)

	if !sc.Scan() {
		return nil, fmt.Errorf("mmio: empty input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("mmio: bad header %q", sc.Text())
	}
	if header[2] != "coordinate" {
		return nil, fmt.Errorf("mmio: unsupported storage %q (only coordinate)", header[2])
	}
	field, sym := header[3], header[4]
	switch field {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("mmio: unsupported field type %q", field)
	}
	switch sym {
	case "general", "symmetric":
	default:
		return nil, fmt.Errorf("mmio: unsupported symmetry %q", sym)
	}

	// Skip comments, read the size line.  Each header line is charged:
	// the comment run before the size line is unbounded input.
	var sizeLine string
	for sc.Scan() {
		if err := run.Tick(ctx, meter, 1); err != nil {
			return nil, err
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		sizeLine = line
		break
	}
	if sizeLine == "" {
		return nil, fmt.Errorf("mmio: missing size line")
	}
	dims := strings.Fields(sizeLine)
	if len(dims) != 3 {
		return nil, fmt.Errorf("mmio: bad size line %q", sizeLine)
	}
	rows, err1 := strconv.Atoi(dims[0])
	cols, err2 := strconv.Atoi(dims[1])
	nnz, err3 := strconv.Atoi(dims[2])
	if err1 != nil || err2 != nil || err3 != nil || rows < 0 || cols < 0 || nnz < 0 {
		return nil, fmt.Errorf("mmio: bad size line %q", sizeLine)
	}
	if rows > maxIndex || cols > maxIndex {
		return nil, fmt.Errorf("mmio: %d x %d dimensions overflow the int32 index space", rows, cols)
	}
	info := &Info{
		Rows:      rows,
		Cols:      cols,
		NNZ:       nnz,
		Pattern:   field == "pattern",
		Symmetric: sym == "symmetric",
	}
	if ev.Size != nil {
		if err := ev.Size(rows, cols, nnz); err != nil {
			return nil, err
		}
	}
	read, scanned := 0, 0
	for sc.Scan() {
		// The checkpoint is keyed on scanned lines, not parsed entries:
		// a long run of blank or comment lines must not spin past the
		// budget or a cancelled context unseen.
		if scanned++; scanned%readCheckEvery == 0 {
			if err := failpoint.Inject(fpReadEntry); err != nil {
				return nil, err
			}
			if err := run.Tick(ctx, meter, readCheckEvery); err != nil {
				return nil, err
			}
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if ev.ChargeBytes && read > 0 && read%readCheckEvery == 0 {
			if err := meter.Alloc(readCheckEvery * entryBytes); err != nil {
				return nil, err
			}
		}
		fields := strings.Fields(line)
		wantFields := 3
		if field == "pattern" {
			wantFields = 2
		}
		if len(fields) < wantFields {
			return nil, fmt.Errorf("mmio: entry %d malformed: %q", read+1, line)
		}
		i, err1 := strconv.Atoi(fields[0])
		j, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("mmio: entry %d malformed: %q", read+1, line)
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, fmt.Errorf("mmio: entry %d out of range: %q", read+1, line)
		}
		v := 1.0
		if field != "pattern" {
			var err error
			v, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("mmio: entry %d bad value: %q", read+1, line)
			}
		}
		if ev.Entry != nil {
			if err := ev.Entry(int32(i-1), int32(j-1), v); err != nil {
				return nil, err
			}
			if info.Symmetric && i != j {
				if err := ev.Entry(int32(j-1), int32(i-1), v); err != nil {
					return nil, err
				}
			}
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("mmio: read: %w", err)
	}
	if read != nnz {
		return nil, fmt.Errorf("mmio: read %d entries, header promised %d", read, nnz)
	}
	return info, nil
}

// Read parses a Matrix Market file.  Supported headers:
//
//	%%MatrixMarket matrix coordinate real|integer|pattern general|symmetric
//
// Symmetric matrices are expanded (off-diagonal entries mirrored).
func Read(r io.Reader) (*Matrix, error) {
	return ReadCtx(context.Background(), r)
}

// ReadCtx is Read honoring cancellation, deadline and any run.Budget
// attached to ctx, checked at entry and at bounded entry intervals
// (one step and a fixed per-entry allocation estimate are charged per
// stored entry).  On any error it returns (nil, err).
func ReadCtx(ctx context.Context, r io.Reader) (*Matrix, error) {
	m := &Matrix{}
	info, err := ScanCtx(ctx, r, MatrixEvents{
		ChargeBytes: true,
		Entry: func(i, j int32, v float64) error {
			m.RowIdx = append(m.RowIdx, i)
			m.ColIdx = append(m.ColIdx, j)
			m.Val = append(m.Val, v)
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	m.Rows, m.Cols, m.Pattern = info.Rows, info.Cols, info.Pattern
	return m, nil
}

// Write emits m in general coordinate form (real, or pattern when
// m.Pattern is set).
func Write(w io.Writer, m *Matrix) error {
	bw := bufio.NewWriter(w)
	field := "real"
	if m.Pattern {
		field = "pattern"
	}
	fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate %s general\n", field)
	fmt.Fprintf(bw, "%d %d %d\n", m.Rows, m.Cols, m.NNZ())
	for k := 0; k < m.NNZ(); k++ {
		if m.Pattern {
			fmt.Fprintf(bw, "%d %d\n", m.RowIdx[k]+1, m.ColIdx[k]+1)
		} else {
			fmt.Fprintf(bw, "%d %d %.17g\n", m.RowIdx[k]+1, m.ColIdx[k]+1, m.Val[k])
		}
	}
	return bw.Flush()
}

// ToHypergraph converts a sparse matrix to the hypergraph used by the
// paper's Table 1: rows become vertices and columns become hyperedges
// (a column's hyperedge contains the rows where it has a nonzero).
// Duplicate entries collapse; empty columns become empty hyperedges and
// are retained so |F| matches the matrix dimension.
func ToHypergraph(m *Matrix) (*hypergraph.Hypergraph, error) {
	cols := make([][]int32, m.Cols)
	for k := 0; k < m.NNZ(); k++ {
		j := m.ColIdx[k]
		cols[j] = append(cols[j], m.RowIdx[k])
	}
	return hypergraph.FromEdgeSets(m.Rows, cols)
}

// FromHypergraph converts a hypergraph back to a pattern matrix
// (vertices → rows, hyperedges → columns).
func FromHypergraph(h *hypergraph.Hypergraph) *Matrix {
	m := &Matrix{Rows: h.NumVertices(), Cols: h.NumEdges(), Pattern: true}
	for f := 0; f < h.NumEdges(); f++ {
		for _, v := range h.Vertices(f) {
			m.RowIdx = append(m.RowIdx, v)
			m.ColIdx = append(m.ColIdx, int32(f))
			m.Val = append(m.Val, 1)
		}
	}
	return m
}
