package mmio

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"hyperplex/internal/run"
)

// fuzzDimLimit keeps ToHypergraph off inputs whose parsed dimensions
// (attacker-chosen in the size line) would demand per-row/per-column
// allocations far beyond anything the entry list can justify.
const fuzzDimLimit = 1 << 16

// FuzzReadMatrixMarket feeds arbitrary bytes to the Matrix Market
// parser.  Accepted inputs must survive write→read with every entry bit
// identical, and (for sane dimensions) convert to a structurally valid
// hypergraph.
func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1.5\n3 2 -2\n")
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n% comment\n3 3 2\n1 1\n3 2\n")
	f.Add("%%MatrixMarket matrix coordinate integer general\n2 4 1\n2 4 7\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n1 1 0\n")
	// Enough entries to cross the reader's periodic checkpoint (256).
	f.Add("%%MatrixMarket matrix coordinate pattern general\n9 9 300\n" + strings.Repeat("1 1\n", 300))
	f.Fuzz(func(t *testing.T, data string) {
		// A pre-cancelled context surfaces context.Canceled for every
		// input — never a partial parse or another error class.
		cctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := ReadCtx(cctx, strings.NewReader(data)); !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled ReadCtx of %q: got %v, want context.Canceled", data, err)
		}
		m, err := Read(strings.NewReader(data))
		if err != nil {
			return
		}
		// A starved step budget must either reproduce the unbudgeted
		// parse or fail with a clean ErrBudgetExceeded.
		bctx, _ := run.WithBudget(context.Background(), run.Budget{MaxSteps: 128})
		switch mb, berr := ReadCtx(bctx, strings.NewReader(data)); {
		case berr == nil:
			if mb.Rows != m.Rows || mb.Cols != m.Cols || mb.NNZ() != m.NNZ() {
				t.Fatalf("budgeted ReadCtx of %q changed shape: %dx%d/%d to %dx%d/%d", data,
					m.Rows, m.Cols, m.NNZ(), mb.Rows, mb.Cols, mb.NNZ())
			}
		case errors.Is(berr, run.ErrBudgetExceeded):
		default:
			t.Fatalf("budgeted ReadCtx of %q: got %v, want success or ErrBudgetExceeded", data, berr)
		}
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			t.Fatalf("Write of parsed matrix: %v", err)
		}
		m2, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read of own output: %v", err)
		}
		if m.Rows != m2.Rows || m.Cols != m2.Cols || m.NNZ() != m2.NNZ() || m.Pattern != m2.Pattern {
			t.Fatalf("round trip changed shape: %dx%d/%d/%t to %dx%d/%d/%t",
				m.Rows, m.Cols, m.NNZ(), m.Pattern, m2.Rows, m2.Cols, m2.NNZ(), m2.Pattern)
		}
		for k := 0; k < m.NNZ(); k++ {
			if m.RowIdx[k] != m2.RowIdx[k] || m.ColIdx[k] != m2.ColIdx[k] ||
				math.Float64bits(m.Val[k]) != math.Float64bits(m2.Val[k]) {
				t.Fatalf("entry %d changed: (%d,%d,%g) to (%d,%d,%g)",
					k, m.RowIdx[k], m.ColIdx[k], m.Val[k], m2.RowIdx[k], m2.ColIdx[k], m2.Val[k])
			}
		}
		if m.Rows > fuzzDimLimit || m.Cols > fuzzDimLimit {
			return
		}
		h, err := ToHypergraph(m)
		if err != nil {
			t.Fatalf("ToHypergraph of parsed matrix: %v", err)
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("ToHypergraph produced invalid hypergraph: %v", err)
		}
	})
}
