package mmio

import (
	"bytes"
	"strings"
	"testing"
)

const sampleGeneral = `%%MatrixMarket matrix coordinate real general
% a comment
3 4 5
1 1 1.5
2 2 -2
3 3 3.25
1 4 4
3 1 0.5
`

func TestReadGeneral(t *testing.T) {
	m, err := Read(strings.NewReader(sampleGeneral))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 4 || m.NNZ() != 5 {
		t.Fatalf("shape %dx%d nnz %d", m.Rows, m.Cols, m.NNZ())
	}
	if m.RowIdx[0] != 0 || m.ColIdx[0] != 0 || m.Val[0] != 1.5 {
		t.Errorf("first entry = (%d,%d,%v)", m.RowIdx[0], m.ColIdx[0], m.Val[0])
	}
	if m.Pattern {
		t.Error("real matrix flagged as pattern")
	}
}

func TestReadSymmetricExpands(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
2 2 2
1 1 1
2 1 5
`
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// Diagonal stays single, off-diagonal mirrored: 3 stored entries.
	if m.NNZ() != 3 {
		t.Fatalf("nnz = %d, want 3", m.NNZ())
	}
}

func TestReadPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 2
2 1
`
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Pattern || m.NNZ() != 2 || m.Val[0] != 1 {
		t.Errorf("pattern read wrong: %+v", m)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"bad header":       "%%NotMatrixMarket\n1 1 1\n1 1 1\n",
		"array storage":    "%%MatrixMarket matrix array real general\n1 1\n1\n",
		"bad field":        "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 1\n",
		"bad symmetry":     "%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1\n",
		"no size":          "%%MatrixMarket matrix coordinate real general\n",
		"bad size":         "%%MatrixMarket matrix coordinate real general\n1 1\n",
		"entry range":      "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n",
		"entry malformed":  "%%MatrixMarket matrix coordinate real general\n2 2 1\n1\n",
		"bad value":        "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 zzz\n",
		"wrong nnz":        "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1\n",
		"negative indices": "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Read accepted invalid input", name)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	m, err := Read(strings.NewReader(sampleGeneral))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Rows != m.Rows || m2.Cols != m.Cols || m2.NNZ() != m.NNZ() {
		t.Fatalf("round trip shape mismatch")
	}
	for k := 0; k < m.NNZ(); k++ {
		if m.RowIdx[k] != m2.RowIdx[k] || m.ColIdx[k] != m2.ColIdx[k] || m.Val[k] != m2.Val[k] {
			t.Fatalf("entry %d mismatch", k)
		}
	}
}

func TestToHypergraph(t *testing.T) {
	m, err := Read(strings.NewReader(sampleGeneral))
	if err != nil {
		t.Fatal(err)
	}
	h, err := ToHypergraph(m)
	if err != nil {
		t.Fatal(err)
	}
	// 3 rows → 3 vertices; 4 columns → 4 hyperedges.
	if h.NumVertices() != 3 || h.NumEdges() != 4 {
		t.Fatalf("shape: %v", h)
	}
	// Column 1 has rows {1, 3} → hyperedge 0 = {0, 2}.
	if h.EdgeDegree(0) != 2 {
		t.Errorf("edge 0 degree = %d, want 2", h.EdgeDegree(0))
	}
	// Column 2 has row {2} only.
	if h.EdgeDegree(1) != 1 {
		t.Errorf("edge 1 degree = %d, want 1", h.EdgeDegree(1))
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromHypergraphRoundTrip(t *testing.T) {
	m, err := Read(strings.NewReader(sampleGeneral))
	if err != nil {
		t.Fatal(err)
	}
	h, err := ToHypergraph(m)
	if err != nil {
		t.Fatal(err)
	}
	m2 := FromHypergraph(h)
	if m2.Rows != 3 || m2.Cols != 4 || m2.NNZ() != 5 {
		t.Fatalf("round trip: %dx%d nnz %d", m2.Rows, m2.Cols, m2.NNZ())
	}
	h2, err := ToHypergraph(m2)
	if err != nil {
		t.Fatal(err)
	}
	if h2.NumPins() != h.NumPins() {
		t.Error("pins changed across matrix round trip")
	}
}
