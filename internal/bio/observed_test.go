package bio

import (
	"testing"

	"hyperplex/internal/xrand"
)

func TestSimulateScreenPerfect(t *testing.T) {
	h := smallH(t) // c1={a,b,c}, c2={b,c,d}, c3={d,e}
	p := TAPParams{PullDownSuccess: 1, PreyDetection: 1}
	baits := []int{0, 1, 2, 3, 4}
	s := SimulateScreen(h, baits, p, xrand.New(1))
	if s.Attempted != h.NumPins() {
		t.Errorf("attempted = %d, want %d", s.Attempted, h.NumPins())
	}
	if len(s.PullDowns) != h.NumPins() {
		t.Errorf("pulldowns = %d, want %d", len(s.PullDowns), h.NumPins())
	}
	for _, pd := range s.PullDowns {
		if len(pd.Observed) != h.EdgeDegree(pd.Complex) {
			t.Errorf("pulldown of complex %d observed %d of %d members",
				pd.Complex, len(pd.Observed), h.EdgeDegree(pd.Complex))
		}
	}
}

func TestObservedHypergraphPerfect(t *testing.T) {
	h := smallH(t)
	p := TAPParams{PullDownSuccess: 1, PreyDetection: 1}
	baits := []int{0, 1, 2, 3, 4}
	s := SimulateScreen(h, baits, p, xrand.New(1))
	obs := ObservedHypergraph(h, s)
	if obs.NumEdges() != h.NumEdges() || obs.NumPins() != h.NumPins() {
		t.Fatalf("perfect screen observed %v, truth %v", obs, h)
	}
	fi, err := NetworkFidelity(h, obs)
	if err != nil {
		t.Fatal(err)
	}
	if fi.MeanJaccard != 1 || fi.PerfectComplexes != h.NumEdges() || fi.MissedPins != 0 {
		t.Errorf("perfect fidelity wrong: %v", fi)
	}
}

func TestObservedHypergraphLossy(t *testing.T) {
	h := smallH(t)
	p := TAPParams{PullDownSuccess: 0.5, PreyDetection: 0.6}
	baits := []int{1} // b only
	s := SimulateScreen(h, baits, p, xrand.New(7))
	obs := ObservedHypergraph(h, s)
	// b belongs to c1 and c2 only: at most 2 observed complexes.
	if obs.NumEdges() > 2 {
		t.Errorf("observed %d complexes from a degree-2 bait", obs.NumEdges())
	}
	fi, err := NetworkFidelity(h, obs)
	if err != nil {
		t.Fatal(err)
	}
	if fi.ComplexesObserved != obs.NumEdges() {
		t.Errorf("fidelity counted %d, observed %d", fi.ComplexesObserved, obs.NumEdges())
	}
	if fi.MeanJaccard > 1 || fi.MeanJaccard < 0 {
		t.Errorf("Jaccard out of range: %v", fi)
	}
	if fi.MissedPins < h.NumPins()-obs.NumPins() {
		t.Errorf("missed pins %d inconsistent", fi.MissedPins)
	}
}

func TestObservedMergesRepeatPullDowns(t *testing.T) {
	// Two baits of the same complex with partial detection: the
	// observed complex is the union of the two pull-downs.
	h := smallH(t)
	p := TAPParams{PullDownSuccess: 1, PreyDetection: 0}
	bID, _ := h.VertexID("b")
	cID, _ := h.VertexID("c")
	s := SimulateScreen(h, []int{bID, cID}, p, xrand.New(3))
	obs := ObservedHypergraph(h, s)
	// With zero prey detection each pull-down observes only its bait;
	// c1 and c2 were each pulled by both b and c → observed as {b, c}.
	c1obs, ok := obs.EdgeID("obs:c1")
	if !ok {
		t.Fatal("obs:c1 missing")
	}
	if obs.EdgeDegree(c1obs) != 2 {
		t.Errorf("merged degree = %d, want 2 (b and c)", obs.EdgeDegree(c1obs))
	}
}

func TestNetworkFidelityRejectsForeign(t *testing.T) {
	h := smallH(t)
	if _, err := NetworkFidelity(h, h); err == nil {
		t.Error("fidelity accepted a network without obs: prefixes")
	}
}

func TestFidelityImprovesWithMulticover(t *testing.T) {
	// Statistical check: double-covered complexes yield higher mean
	// Jaccard than single coverage, averaged over trials.
	h := smallH(t)
	p := TAPParams{PullDownSuccess: 0.7, PreyDetection: 0.8}
	single := []int{0, 3}          // a covers c1, d covers c2+c3
	double := []int{0, 1, 2, 3, 4} // everyone
	rng := xrand.New(42)
	trials := 200
	var js, jd float64
	for i := 0; i < trials; i++ {
		so := ObservedHypergraph(h, SimulateScreen(h, single, p, rng.Split()))
		do := ObservedHypergraph(h, SimulateScreen(h, double, p, rng.Split()))
		fs, err := NetworkFidelity(h, so)
		if err != nil {
			t.Fatal(err)
		}
		fd, err := NetworkFidelity(h, do)
		if err != nil {
			t.Fatal(err)
		}
		js += fs.MeanJaccard * float64(fs.ComplexesObserved) / float64(h.NumEdges())
		jd += fd.MeanJaccard * float64(fd.ComplexesObserved) / float64(h.NumEdges())
	}
	if jd <= js {
		t.Errorf("double coverage fidelity %v not better than single %v", jd/float64(trials), js/float64(trials))
	}
}
