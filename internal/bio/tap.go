package bio

import (
	"fmt"
	"sort"

	"hyperplex/internal/hypergraph"
	"hyperplex/internal/xrand"
)

// BaitStats summarizes a bait protein set the way §4.2 reports the
// Cellzome baits: size, average hypergraph degree, and the histogram
// of degrees.
type BaitStats struct {
	Count         int
	AverageDegree float64
	// DegreeCounts[d] = number of baits of hypergraph degree d.
	DegreeCounts map[int]int
}

// ComputeBaitStats summarizes the degrees of the given bait vertex IDs.
func ComputeBaitStats(h *hypergraph.Hypergraph, baits []int) BaitStats {
	s := BaitStats{Count: len(baits), DegreeCounts: map[int]int{}}
	sum := 0
	for _, b := range baits {
		d := h.VertexDegree(b)
		sum += d
		s.DegreeCounts[d]++
	}
	if len(baits) > 0 {
		s.AverageDegree = float64(sum) / float64(len(baits))
	}
	return s
}

func (s BaitStats) String() string {
	degs := make([]int, 0, len(s.DegreeCounts))
	for d := range s.DegreeCounts {
		degs = append(degs, d)
	}
	sort.Ints(degs)
	out := fmt.Sprintf("%d baits, avg degree %.2f;", s.Count, s.AverageDegree)
	for _, d := range degs {
		out += fmt.Sprintf(" d%d:%d", d, s.DegreeCounts[d])
	}
	return out
}

// TAPParams models the reliability of one tandem-affinity-purification
// pull-down.
type TAPParams struct {
	// PullDownSuccess is the probability that tagging a bait and
	// purifying yields the complex at all (the Cellzome study reports
	// ≈ 70 % reproducibility).
	PullDownSuccess float64
	// PreyDetection is the probability that each non-bait member of a
	// successfully pulled-down complex is identified by mass
	// spectrometry.
	PreyDetection float64
	// RecoveryFraction is the fraction of a complex's members that must
	// be observed (across all pull-downs) for the complex to count as
	// recovered.
	RecoveryFraction float64
}

// DefaultTAPParams returns the calibration used by the experiments
// (70 % pull-down reproducibility as published; 90 % prey detection;
// recovery = 75 % of members observed).
func DefaultTAPParams() TAPParams {
	return TAPParams{PullDownSuccess: 0.70, PreyDetection: 0.90, RecoveryFraction: 0.75}
}

// TAPOutcome reports one simulated screen.
type TAPOutcome struct {
	// Recovered[f] reports whether complex f met the recovery
	// criterion.
	Recovered []bool
	// ObservedMembers[f] is the number of distinct members of f seen
	// across all pull-downs.
	ObservedMembers []int
	// PullDowns is the number of attempted pull-downs (Σ bait degrees).
	PullDowns int
	// SuccessfulPullDowns counts those that yielded material.
	SuccessfulPullDowns int
}

// RecoveredCount returns the number of recovered complexes.
func (o *TAPOutcome) RecoveredCount() int {
	n := 0
	for _, r := range o.Recovered {
		if r {
			n++
		}
	}
	return n
}

// RecoveryRate returns the fraction of complexes recovered, counting
// only complexes with at least one bait among the given target set
// semantics: the denominator is all complexes of h.
func (o *TAPOutcome) RecoveryRate() float64 {
	if len(o.Recovered) == 0 {
		return 0
	}
	return float64(o.RecoveredCount()) / float64(len(o.Recovered))
}

// SimulateTAP runs one screen: every bait attempts one pull-down per
// complex it belongs to; a successful pull-down observes the bait and
// each other member independently with probability PreyDetection.  A
// complex is recovered when the union of observations across
// pull-downs covers at least RecoveryFraction of its members.
func SimulateTAP(h *hypergraph.Hypergraph, baits []int, p TAPParams, rng *xrand.RNG) *TAPOutcome {
	ne := h.NumEdges()
	observed := make([]map[int32]struct{}, ne)
	out := &TAPOutcome{
		Recovered:       make([]bool, ne),
		ObservedMembers: make([]int, ne),
	}
	for _, b := range baits {
		for _, f := range h.Edges(b) {
			out.PullDowns++
			if rng.Float64() >= p.PullDownSuccess {
				continue
			}
			out.SuccessfulPullDowns++
			if observed[f] == nil {
				observed[f] = make(map[int32]struct{})
			}
			observed[f][int32(b)] = struct{}{}
			for _, m := range h.Vertices(int(f)) {
				if int(m) == b {
					continue
				}
				if rng.Float64() < p.PreyDetection {
					observed[f][m] = struct{}{}
				}
			}
		}
	}
	for f := 0; f < ne; f++ {
		seen := len(observed[f])
		out.ObservedMembers[f] = seen
		need := int(p.RecoveryFraction*float64(h.EdgeDegree(f)) + 0.9999)
		if need < 1 {
			need = 1
		}
		out.Recovered[f] = seen >= need
	}
	return out
}

// ReliabilityTrial compares bait sets over repeated simulated screens.
type ReliabilityTrial struct {
	Name          string
	Baits         []int
	MeanRecovery  float64 // mean fraction of complexes recovered
	MinRecovery   float64
	MeanPullDowns float64
}

// CompareReliability runs `trials` independent screens for each named
// bait set and reports recovery statistics.  This is experiment X1:
// the paper argues (without simulating) that covering each complex
// twice improves reliability at 70 % reproducibility; this quantifies
// the claim.
func CompareReliability(h *hypergraph.Hypergraph, sets map[string][]int, p TAPParams, trials int, rng *xrand.RNG) []ReliabilityTrial {
	names := make([]string, 0, len(sets))
	for name := range sets {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]ReliabilityTrial, 0, len(names))
	for _, name := range names {
		baits := sets[name]
		t := ReliabilityTrial{Name: name, Baits: baits, MinRecovery: 1}
		var sumRec, sumPD float64
		for i := 0; i < trials; i++ {
			o := SimulateTAP(h, baits, p, rng.Split())
			r := o.RecoveryRate()
			sumRec += r
			sumPD += float64(o.PullDowns)
			if r < t.MinRecovery {
				t.MinRecovery = r
			}
		}
		if trials > 0 {
			t.MeanRecovery = sumRec / float64(trials)
			t.MeanPullDowns = sumPD / float64(trials)
		}
		out = append(out, t)
	}
	return out
}
