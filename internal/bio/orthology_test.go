package bio

import (
	"strings"
	"testing"

	"hyperplex/internal/hypergraph"
	"hyperplex/internal/xrand"
)

func TestGenerateOrthology(t *testing.T) {
	h := smallH(t)
	rng := xrand.New(1)
	m, err := GenerateOrthology(h, 1.0, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	for v, tgt := range m.ToTarget {
		if tgt < 0 {
			t.Errorf("full orthology left vertex %d unmapped", v)
		}
		if !strings.HasPrefix(m.TargetNames[tgt], "t:") {
			t.Errorf("target name %q", m.TargetNames[tgt])
		}
	}
	if len(m.TargetNames) != h.NumVertices()+3 {
		t.Errorf("target proteome size = %d", len(m.TargetNames))
	}

	none, err := GenerateOrthology(h, 0.0, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, tgt := range none.ToTarget {
		if tgt != -1 {
			t.Error("zero orthology mapped something")
		}
	}

	if _, err := GenerateOrthology(h, 1.5, 0, rng); err == nil {
		t.Error("orthologFrac outside [0,1] accepted")
	}
	if _, err := GenerateOrthology(h, -0.1, 0, rng); err == nil {
		t.Error("negative orthologFrac accepted")
	}
}

func TestProjectHypergraph(t *testing.T) {
	h := smallH(t) // c1={a,b,c}, c2={b,c,d}, c3={d,e}
	rng := xrand.New(2)
	m, err := GenerateOrthology(h, 1.0, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Remove d's ortholog by hand.
	d, _ := h.VertexID("d")
	m.ToTarget[d] = -1
	proj := ProjectHypergraph(h, m, 2)
	// c1 keeps 3 members; c2 keeps {b,c}; c3 keeps only {e} → dropped.
	if proj.NumEdges() != 2 {
		t.Fatalf("projected edges = %d, want 2", proj.NumEdges())
	}
	c2, ok := proj.EdgeID("proj:c2")
	if !ok || proj.EdgeDegree(c2) != 2 {
		t.Errorf("proj:c2 degree = %d", proj.EdgeDegree(c2))
	}
	if _, ok := proj.EdgeID("proj:c3"); ok {
		t.Error("undersized complex survived projection")
	}
	if err := proj.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDivergeComplexes(t *testing.T) {
	h := smallH(t)
	rng := xrand.New(3)
	m, err := GenerateOrthology(h, 1.0, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	proj := ProjectHypergraph(h, m, 1)

	// No divergence: structure preserved (names prefixed).
	same := DivergeComplexes(proj, DivergenceParams{}, xrand.New(4))
	if same.NumEdges() != proj.NumEdges() || same.NumPins() != proj.NumPins() {
		t.Errorf("zero divergence changed structure: %v vs %v", same, proj)
	}
	// Full drop: nothing remains.
	gone := DivergeComplexes(proj, DivergenceParams{DropComplex: 1}, xrand.New(4))
	if gone.NumEdges() != 0 {
		t.Errorf("full drop left %d complexes", gone.NumEdges())
	}
	// Member drift keeps validity.
	drift := DivergeComplexes(proj, DivergenceParams{DropMember: 0.3, AddMember: 1.5}, xrand.New(5))
	if err := drift.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTransferBaits(t *testing.T) {
	h := smallH(t)
	rng := xrand.New(6)
	m, err := GenerateOrthology(h, 1.0, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	proj := ProjectHypergraph(h, m, 1)
	truth := DivergeComplexes(proj, DivergenceParams{DropMember: 0.2}, rng)
	baits := []int{0, 1}
	tb, err := TransferBaits(proj, truth, baits)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range baits {
		if truth.VertexName(tb[i]) != proj.VertexName(b) {
			t.Errorf("bait %d name mismatch", i)
		}
	}
}

func TestCrossOrganismPipeline(t *testing.T) {
	// End-to-end: model → orthology → projection → divergence → bait
	// transfer → simulated screen.  The screen must recover a sizeable
	// fraction of the true complexes.
	b := hypergraph.NewBuilder()
	for i := 0; i < 12; i++ {
		names := []string{}
		for j := 0; j < 4; j++ {
			names = append(names, string(rune('a'+(i*2+j)%20)))
		}
		b.AddEdge("cx"+string(rune('A'+i)), names...)
	}
	h := b.MustBuild()
	rng := xrand.New(99)
	m, err := GenerateOrthology(h, 0.9, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	proj := ProjectHypergraph(h, m, 2)
	truth := DivergeComplexes(proj, DivergenceParams{DropComplex: 0.1, DropMember: 0.1, AddMember: 0.5}, rng)
	if truth.NumEdges() == 0 {
		t.Skip("all complexes diverged away under this seed")
	}
	// Baits: every projected vertex (exhaustive upper bound).
	baits := make([]int, proj.NumVertices())
	for i := range baits {
		baits[i] = i
	}
	tb, err := TransferBaits(proj, truth, baits)
	if err != nil {
		t.Fatal(err)
	}
	o := SimulateTAP(truth, tb, TAPParams{PullDownSuccess: 1, PreyDetection: 1, RecoveryFraction: 1}, rng)
	if o.RecoveredCount() != truth.NumEdges() {
		t.Errorf("perfect exhaustive screen recovered %d of %d", o.RecoveredCount(), truth.NumEdges())
	}
}
