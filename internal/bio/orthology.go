package bio

import (
	"fmt"
	"sort"

	"hyperplex/internal/hypergraph"
	"hyperplex/internal/xrand"
)

// §4 names a second use for cover-based bait selection: "when we wish
// to use one organism as a model to identify the protein complexes in
// a related organism".  This file supplies that scenario.  An
// OrthologyMap relates the proteins of a model organism to a target
// organism; ProjectHypergraph transfers the model's complexes through
// the map (the prediction a biologist would start from); and
// DivergeComplexes simulates the true target proteome, which has
// drifted from the model by membership gains/losses and lost
// complexes.  Experiment X7 selects baits on the *projected*
// hypergraph and screens them against the *true* one.

// OrthologyMap maps model-organism vertex IDs to target-organism
// vertex IDs (-1 = no ortholog).
type OrthologyMap struct {
	// ToTarget[v] is the target protein for model protein v, or -1.
	ToTarget []int
	// TargetNames names the target proteome (the mapped proteins first,
	// then target-only proteins).
	TargetNames []string
}

// GenerateOrthology builds a synthetic orthology map: each model
// protein has an ortholog with probability orthologFrac, and the
// target proteome additionally contains extraTarget unmapped proteins.
// It returns an error when orthologFrac is outside [0,1].
func GenerateOrthology(h *hypergraph.Hypergraph, orthologFrac float64, extraTarget int, rng *xrand.RNG) (*OrthologyMap, error) {
	if orthologFrac < 0 || orthologFrac > 1 {
		return nil, fmt.Errorf("bio: orthologFrac %v outside [0,1]", orthologFrac)
	}
	m := &OrthologyMap{ToTarget: make([]int, h.NumVertices())}
	for v := 0; v < h.NumVertices(); v++ {
		if rng.Float64() < orthologFrac {
			m.ToTarget[v] = len(m.TargetNames)
			name := h.VertexName(v)
			if name == "" {
				name = fmt.Sprintf("v%d", v)
			}
			m.TargetNames = append(m.TargetNames, "t:"+name)
		} else {
			m.ToTarget[v] = -1
		}
	}
	for i := 0; i < extraTarget; i++ {
		m.TargetNames = append(m.TargetNames, fmt.Sprintf("t:extra%04d", i))
	}
	return m, nil
}

// ProjectHypergraph transfers the model's complexes into the target
// proteome through the orthology map: each complex keeps its mapped
// members; complexes retaining fewer than minSize members are dropped.
// This is the *predicted* complex network of the target organism.
func ProjectHypergraph(h *hypergraph.Hypergraph, m *OrthologyMap, minSize int) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder()
	for _, name := range m.TargetNames {
		b.AddVertex(name)
	}
	for f := 0; f < h.NumEdges(); f++ {
		var members []int32
		for _, v := range h.Vertices(f) {
			if t := m.ToTarget[v]; t >= 0 {
				members = append(members, int32(t))
			}
		}
		if len(members) >= minSize {
			name := h.EdgeName(f)
			if name == "" {
				name = fmt.Sprintf("f%d", f)
			}
			b.AddEdgeIDs("proj:"+name, members)
		}
	}
	return b.MustBuild()
}

// DivergenceParams controls how the target's true complex network
// drifts from the projection.
type DivergenceParams struct {
	// DropComplex is the probability a projected complex does not exist
	// in the target at all.
	DropComplex float64
	// DropMember is the per-member probability of loss.
	DropMember float64
	// AddMember is the expected number of target-only proteins gained
	// per complex (sampled binomially from the unmapped pool).
	AddMember float64
}

// DivergeComplexes produces the target organism's true hypergraph from
// the projection: complexes vanish, lose members, and gain
// target-specific proteins.  Complexes reduced below two members are
// kept only if they had one member to begin with (mirroring real
// singleton complexes).
func DivergeComplexes(projected *hypergraph.Hypergraph, p DivergenceParams, rng *xrand.RNG) *hypergraph.Hypergraph {
	nv := projected.NumVertices()
	b := hypergraph.NewBuilder()
	for v := 0; v < nv; v++ {
		name := projected.VertexName(v)
		if name == "" {
			name = fmt.Sprintf("v%d", v)
		}
		b.AddVertex(name)
	}
	for f := 0; f < projected.NumEdges(); f++ {
		if rng.Float64() < p.DropComplex {
			continue
		}
		var members []int32
		for _, v := range projected.Vertices(f) {
			if rng.Float64() >= p.DropMember {
				members = append(members, v)
			}
		}
		gains := rng.Binomial(8, p.AddMember/8)
		for i := 0; i < gains; i++ {
			members = append(members, int32(rng.Intn(nv)))
		}
		if len(members) == 0 {
			continue
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		name := projected.EdgeName(f)
		if name == "" {
			name = fmt.Sprintf("f%d", f)
		}
		b.AddEdgeIDs("true:"+name, members)
	}
	return b.MustBuild()
}

// TransferBaits maps bait vertex IDs chosen on the projected
// hypergraph onto the true hypergraph by name (identical vertex sets
// by construction, but this keeps the coupling explicit and safe).
func TransferBaits(projected, truth *hypergraph.Hypergraph, baits []int) ([]int, error) {
	out := make([]int, 0, len(baits))
	for _, b := range baits {
		name := projected.VertexName(b)
		t, ok := truth.VertexID(name)
		if !ok {
			return nil, fmt.Errorf("bio: bait %q missing from the target proteome", name)
		}
		out = append(out, t)
	}
	return out, nil
}
