// Differential tests validating the reliability math against naive
// oracles in internal/check.  External test package because check must
// stay importable from bio's tests without a cycle.
package bio_test

import (
	"fmt"
	"math"
	"testing"

	"hyperplex/internal/bio"
	"hyperplex/internal/check"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/xrand"
)

// eps absorbs the difference between the closed-form math.Pow /
// logarithm expressions in production and the oracles' running
// products.
const eps = 1e-9

// randomBaits draws n baits uniformly, duplicates allowed — the
// production code must count a duplicated bait twice, and so does the
// oracle's nested scan.
func randomBaits(rng *xrand.RNG, nv, n int) []int {
	baits := make([]int, n)
	for i := range baits {
		baits[i] = rng.Intn(nv)
	}
	return baits
}

// TestDifferentialExpectedRecovery compares ExpectedRecovery (incidence
// lists + math.Pow) against the naive membership scan + running
// product on every sweep instance.
func TestDifferentialExpectedRecovery(t *testing.T) {
	rng := xrand.New(0xB10A)
	for i, h := range check.Instances(58, 0xB109) {
		nv := h.NumVertices()
		if nv == 0 || h.NumEdges() == 0 {
			continue
		}
		label := fmt.Sprintf("instance %d %v", i, h)
		for _, p := range []float64{0.0, 0.3, 0.7, 1.0} {
			for _, n := range []int{0, 1, 3, nv} {
				baits := randomBaits(rng, nv, n)
				per, mean := bio.ExpectedRecovery(h, baits, p)
				counts := check.BaitCountsNaive(h, baits)
				for f, got := range per {
					want := check.RecoveryProbNaive(p, counts[f])
					if math.Abs(got-want) > eps {
						t.Fatalf("%s: p=%v baits=%v complex %d: recovery %v, oracle %v",
							label, p, baits, f, got, want)
					}
				}
				if wantMean := check.RecoveryMeanNaive(per); math.Abs(mean-wantMean) > eps {
					t.Fatalf("%s: p=%v mean %v, oracle %v", label, p, mean, wantMean)
				}
			}
		}
	}
}

// TestDifferentialRequirements checks RequirementsForReliability
// against the oracle's incremental search.  The closed-form ceil(log)
// requirement may differ from the running-product search only inside
// the float tolerance of the target, so the comparison is a
// sufficiency + minimality property rather than strict equality:
// the returned requirement must reach the target (within eps, unless
// capped at the complex size) and the requirement minus one must not
// clear it.
func TestDifferentialRequirements(t *testing.T) {
	for i, h := range check.Instances(58, 0xB10B) {
		if h.NumEdges() == 0 {
			continue
		}
		label := fmt.Sprintf("instance %d %v", i, h)
		for _, p := range []float64{0.2, 0.5, 0.9, 1.0} {
			for _, target := range []float64{0.0, 0.5, 0.9, 0.999} {
				req, err := bio.RequirementsForReliability(h, p, target)
				if err != nil {
					t.Fatalf("%s: p=%v target=%v: %v", label, p, target, err)
				}
				for f, r := range req {
					d := h.EdgeDegree(f)
					naive := check.RequirementNaive(p, target, d)
					if r < 1 || r > d {
						t.Fatalf("%s: complex %d requirement %d outside [1,%d]", label, f, r, d)
					}
					if got := check.RecoveryProbNaive(p, r); r < d && got < target-eps {
						t.Fatalf("%s: p=%v target=%v complex %d: %d baits reach only %v",
							label, p, target, f, r, got)
					}
					if r > 1 {
						if below := check.RecoveryProbNaive(p, r-1); below >= target+eps {
							t.Fatalf("%s: p=%v target=%v complex %d: requirement %d not minimal (%d already reaches %v)",
								label, p, target, f, r, r-1, below)
						}
					}
					// The oracle and the closed form may legitimately differ
					// by one step at a float boundary, never more.
					if diff := r - naive; diff < -1 || diff > 1 {
						t.Fatalf("%s: p=%v target=%v complex %d: requirement %d, oracle %d",
							label, p, target, f, r, naive)
					}
				}
			}
		}
	}
}

// TestDifferentialRecoveryVsSimulation ties the analytic recovery to
// the TAP simulator on a small fixed hypergraph: with ideal prey
// detection the Monte-Carlo recovery rate of each complex must
// approach the analytic probability.
func TestDifferentialRecoveryVsSimulation(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.AddEdge("c1", "a", "b", "c")
	b.AddEdge("c2", "b", "c", "d")
	b.AddEdge("c3", "d", "e")
	h := b.MustBuild()
	baits := []int{0, 1, 3} // a, b, d
	const p = 0.6
	per, _ := bio.ExpectedRecovery(h, baits, p)

	const trials = 4000
	hits := make([]int, h.NumEdges())
	rng := xrand.New(0xB10C)
	for i := 0; i < trials; i++ {
		o := bio.SimulateTAP(h, baits, bio.TAPParams{PullDownSuccess: p, PreyDetection: 1, RecoveryFraction: 1}, rng)
		for f := 0; f < h.NumEdges(); f++ {
			if o.Recovered[f] {
				hits[f]++
			}
		}
	}
	for f := 0; f < h.NumEdges(); f++ {
		got := float64(hits[f]) / trials
		// 4σ bound on a Bernoulli mean over `trials` samples.
		bound := 4 * math.Sqrt(per[f]*(1-per[f])/trials+1e-12)
		if math.Abs(got-per[f]) > bound+1e-3 {
			t.Errorf("complex %d: simulated recovery %v, analytic %v (bound %v)", f, got, per[f], bound)
		}
	}
}
