package bio

import (
	"fmt"
	"math"

	"hyperplex/internal/hypergraph"
)

// RequirementsForReliability derives per-complex multicover
// requirements from a reliability target: if each pull-down
// independently succeeds with probability p, covering complex f with
// r_f baits recovers it (at least one successful pull-down) with
// probability 1 − (1−p)^r_f.  Solving for the target gives
//
//	r_f = ⌈ ln(1 − target) / ln(1 − p) ⌉,
//
// capped at the complex's cardinality (a complex smaller than the
// uncapped requirement simply gets every member as a bait).  This
// turns the paper's qualitative "cover each complex more than once"
// advice into a principled requirement vector for GreedyMulticover.
func RequirementsForReliability(h *hypergraph.Hypergraph, pullDownSuccess, target float64) ([]int, error) {
	if pullDownSuccess <= 0 || pullDownSuccess > 1 {
		return nil, fmt.Errorf("bio: pull-down success %v outside (0, 1]", pullDownSuccess)
	}
	if target < 0 || target >= 1 {
		return nil, fmt.Errorf("bio: reliability target %v outside [0, 1)", target)
	}
	base := 1
	if pullDownSuccess < 1 && target > 0 {
		base = int(math.Ceil(math.Log(1-target) / math.Log(1-pullDownSuccess)))
		if base < 1 {
			base = 1
		}
	}
	req := make([]int, h.NumEdges())
	for f := range req {
		r := base
		if d := h.EdgeDegree(f); r > d {
			r = d
		}
		req[f] = r
	}
	return req, nil
}

// ExpectedRecovery returns the per-complex probability of at least one
// successful pull-down given the bait multiplicities induced by a
// chosen bait set, plus the mean over complexes.  It is the analytic
// counterpart of SimulateTAP's recovery (ignoring prey-detection
// noise).
func ExpectedRecovery(h *hypergraph.Hypergraph, baits []int, pullDownSuccess float64) (perComplex []float64, mean float64) {
	counts := make([]int, h.NumEdges())
	for _, b := range baits {
		for _, f := range h.Edges(b) {
			counts[f]++
		}
	}
	perComplex = make([]float64, h.NumEdges())
	total := 0.0
	for f, c := range counts {
		perComplex[f] = 1 - math.Pow(1-pullDownSuccess, float64(c))
		total += perComplex[f]
	}
	if len(counts) > 0 {
		mean = total / float64(len(counts))
	}
	return perComplex, mean
}
