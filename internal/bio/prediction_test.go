package bio

import (
	"math"
	"testing"

	"hyperplex/internal/hypergraph"
)

func TestMatchPredictionExact(t *testing.T) {
	h := smallH(t) // c1={a,b,c}, c2={b,c,d}, c3={d,e}
	pred := make([]bool, h.NumVertices())
	for _, name := range []string{"a", "b", "c"} {
		v, _ := h.VertexID(name)
		pred[v] = true
	}
	m := MatchPrediction(h, pred)
	c1, _ := h.EdgeID("c1")
	if m.BestComplex != c1 || m.Jaccard != 1 || m.Precision != 1 || m.Recall != 1 {
		t.Errorf("match = %+v", m)
	}
}

func TestMatchPredictionPartial(t *testing.T) {
	h := smallH(t)
	pred := make([]bool, h.NumVertices())
	for _, name := range []string{"b", "c", "e"} {
		v, _ := h.VertexID(name)
		pred[v] = true
	}
	m := MatchPrediction(h, pred)
	// Against c1 or c2: |∩|=2, |∪|=4 → J = 0.5.
	if math.Abs(m.Jaccard-0.5) > 1e-12 {
		t.Errorf("Jaccard = %v", m.Jaccard)
	}
	if math.Abs(m.Precision-2.0/3.0) > 1e-12 || math.Abs(m.Recall-2.0/3.0) > 1e-12 {
		t.Errorf("P/R = %v/%v", m.Precision, m.Recall)
	}
}

func TestMatchPredictionEmpty(t *testing.T) {
	h := smallH(t)
	m := MatchPrediction(h, make([]bool, h.NumVertices()))
	if m.BestComplex != -1 || m.Jaccard != 0 {
		t.Errorf("empty prediction match = %+v", m)
	}
}

func TestComplexRecovery(t *testing.T) {
	h := smallH(t)
	// One perfect prediction for c3, nothing for the others.
	pred := make([]bool, h.NumVertices())
	for _, name := range []string{"d", "e"} {
		v, _ := h.VertexID(name)
		pred[v] = true
	}
	per, recovered := ComplexRecovery(h, [][]bool{pred}, 0.5)
	c3, _ := h.EdgeID("c3")
	if per[c3] != 1 {
		t.Errorf("per[c3] = %v", per[c3])
	}
	if recovered != 1 {
		t.Errorf("recovered = %d, want 1", recovered)
	}
	// Empty prediction family.
	_, rec0 := ComplexRecovery(h, nil, 0.5)
	if rec0 != 0 {
		t.Errorf("recovered with no predictions = %d", rec0)
	}
	// A singleton complex matched exactly by a different hypergraph:
	// stays unrecovered here since predictions don't cover it.
	hg := hypergraph.NewBuilder()
	hg.AddEdge("s", "only")
	h2 := hg.MustBuild()
	p2 := []bool{true}
	_, rec2 := ComplexRecovery(h2, [][]bool{p2}, 0.99)
	if rec2 != 1 {
		t.Errorf("exact singleton not recovered: %d", rec2)
	}
}
