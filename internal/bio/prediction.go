package bio

import (
	"hyperplex/internal/hypergraph"
)

// §3 of the paper warns that determining putative protein complexes
// from the cores of protein-interaction graphs "is error-prone since
// the proteins in a complex might have only few interaction partners".
// This file provides the metric that experiment X6 uses to quantify
// that warning: how well a predicted protein set matches the true
// complexes of the hypergraph.

// SetMatch scores a predicted vertex set against the ground-truth
// hyperedges.
type SetMatch struct {
	// BestComplex is the hyperedge with the highest Jaccard overlap.
	BestComplex int
	// Jaccard = |prediction ∩ complex| / |prediction ∪ complex| of the
	// best match.
	Jaccard float64
	// Precision and Recall of the best match.
	Precision float64
	Recall    float64
}

// MatchPrediction finds the ground-truth complex best matching a
// predicted protein set (given as a membership slice).  Returns a zero
// match if the hypergraph has no complexes or the prediction is empty.
func MatchPrediction(h *hypergraph.Hypergraph, predicted []bool) SetMatch {
	size := 0
	for _, in := range predicted {
		if in {
			size++
		}
	}
	best := SetMatch{BestComplex: -1}
	if size == 0 {
		return best
	}
	for f := 0; f < h.NumEdges(); f++ {
		inter := 0
		for _, v := range h.Vertices(f) {
			if predicted[v] {
				inter++
			}
		}
		union := size + h.EdgeDegree(f) - inter
		if union == 0 {
			continue
		}
		j := float64(inter) / float64(union)
		if j > best.Jaccard {
			best.Jaccard = j
			best.BestComplex = f
			best.Precision = float64(inter) / float64(size)
			best.Recall = float64(inter) / float64(h.EdgeDegree(f))
		}
	}
	return best
}

// ComplexRecovery reports, for every ground-truth complex, the best
// Jaccard overlap achievable against a family of predicted sets, and
// the fraction of complexes recovered above the threshold.  Used to
// compare hypergraph-core complexes (exact by construction) with
// graph-core "complexes".
func ComplexRecovery(h *hypergraph.Hypergraph, predictions [][]bool, threshold float64) (perComplex []float64, recovered int) {
	perComplex = make([]float64, h.NumEdges())
	for _, pred := range predictions {
		size := 0
		for _, in := range pred {
			if in {
				size++
			}
		}
		if size == 0 {
			continue
		}
		for f := 0; f < h.NumEdges(); f++ {
			inter := 0
			for _, v := range h.Vertices(f) {
				if pred[v] {
					inter++
				}
			}
			union := size + h.EdgeDegree(f) - inter
			if union == 0 {
				continue
			}
			if j := float64(inter) / float64(union); j > perComplex[f] {
				perComplex[f] = j
			}
		}
	}
	for _, j := range perComplex {
		if j >= threshold {
			recovered++
		}
	}
	return perComplex, recovered
}
