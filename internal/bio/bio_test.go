package bio

import (
	"math"
	"testing"
	"testing/quick"

	"hyperplex/internal/hypergraph"
	"hyperplex/internal/xrand"
)

func smallH(t *testing.T) *hypergraph.Hypergraph {
	t.Helper()
	b := hypergraph.NewBuilder()
	b.AddEdge("c1", "a", "b", "c")
	b.AddEdge("c2", "b", "c", "d")
	b.AddEdge("c3", "d", "e")
	return b.MustBuild()
}

func TestGenomeEssentialFraction(t *testing.T) {
	f := GenomeEssentialFraction()
	if math.Abs(f-878.0/4036.0) > 1e-12 {
		t.Errorf("fraction = %v", f)
	}
}

func TestGenerateAnnotationsCoreCounts(t *testing.T) {
	b := hypergraph.NewBuilder()
	for i := 0; i < 100; i++ {
		b.AddVertex(string(rune('A'+i/26)) + string(rune('a'+i%26)))
	}
	h := b.MustBuild()
	coreV := make([]bool, 100)
	for i := 0; i < 41; i++ {
		coreV[i] = true
	}
	db, err := GenerateAnnotations(h, coreV, DefaultAnnotationParams(), xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Validate(h); err != nil {
		t.Fatal(err)
	}
	unknown, essential, homolog, homologUnknown := 0, 0, 0, 0
	for v := 0; v < 41; v++ {
		if !db.Known[v] {
			unknown++
			if db.Homolog[v] {
				homologUnknown++
			}
		}
		if db.Essential[v] {
			essential++
		}
		if db.Homolog[v] {
			homolog++
		}
	}
	if unknown != 9 || essential != 22 || homolog != 24 || homologUnknown != 3 {
		t.Errorf("core counts unknown=%d essential=%d homolog=%d homologUnknown=%d, want 9/22/24/3",
			unknown, essential, homolog, homologUnknown)
	}
}

func TestGenerateAnnotationsErrors(t *testing.T) {
	b := hypergraph.NewBuilder()
	for i := 0; i < 5; i++ {
		b.AddVertex(string(rune('a' + i)))
	}
	h := b.MustBuild()
	coreV := []bool{true, true, true, false, false}
	bad := DefaultAnnotationParams() // CoreUnknown 9 > core size 3
	if _, err := GenerateAnnotations(h, coreV, bad, xrand.New(1)); err == nil {
		t.Error("oversized CoreUnknown accepted")
	}
	p := DefaultAnnotationParams()
	p.CoreUnknown = 1
	p.CoreEssential = 3 // > 2 known
	if _, err := GenerateAnnotations(h, coreV, p, xrand.New(1)); err == nil {
		t.Error("oversized CoreEssential accepted")
	}
}

func TestEnrichmentOf(t *testing.T) {
	subset := []bool{true, true, true, true, false, false}
	hit := []bool{true, true, true, false, true, false}
	e := EnrichmentOf(subset, hit, 0.25, "test")
	if e.Subset != 4 || e.Hits != 3 {
		t.Fatalf("subset %d hits %d", e.Subset, e.Hits)
	}
	if math.Abs(e.SubsetFrac-0.75) > 1e-12 || math.Abs(e.Fold-3) > 1e-12 {
		t.Errorf("frac %v fold %v", e.SubsetFrac, e.Fold)
	}
	// P(X ≥ 3), X ~ Bin(4, 0.25) = 4·(1/64)(3/4) + 1/256 = 13/256.
	if math.Abs(e.PValue-13.0/256.0) > 1e-9 {
		t.Errorf("p-value = %v, want %v", e.PValue, 13.0/256.0)
	}
	if e.String() == "" {
		t.Error("empty String()")
	}
}

func TestBinomialTailEdges(t *testing.T) {
	if binomialTail(10, 0, 0.5) != 1 {
		t.Error("P(X ≥ 0) must be 1")
	}
	if binomialTail(10, 3, 0) != 0 {
		t.Error("p = 0 tail must be 0")
	}
	if binomialTail(10, 3, 1) != 1 {
		t.Error("p = 1 tail must be 1")
	}
	// Monotone in k.
	prev := 1.0
	for k := 0; k <= 10; k++ {
		cur := binomialTail(10, k, 0.3)
		if cur > prev+1e-12 {
			t.Errorf("tail not monotone at k=%d: %v > %v", k, cur, prev)
		}
		prev = cur
	}
}

func TestComputeBaitStats(t *testing.T) {
	h := smallH(t)
	a, _ := h.VertexID("a") // degree 1
	b, _ := h.VertexID("b") // degree 2
	d, _ := h.VertexID("d") // degree 2
	s := ComputeBaitStats(h, []int{a, b, d})
	if s.Count != 3 {
		t.Fatalf("count = %d", s.Count)
	}
	if math.Abs(s.AverageDegree-5.0/3.0) > 1e-12 {
		t.Errorf("avg degree = %v", s.AverageDegree)
	}
	if s.DegreeCounts[1] != 1 || s.DegreeCounts[2] != 2 {
		t.Errorf("degree counts = %v", s.DegreeCounts)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
	empty := ComputeBaitStats(h, nil)
	if empty.AverageDegree != 0 {
		t.Error("empty bait set avg != 0")
	}
}

func TestSimulateTAPPerfect(t *testing.T) {
	h := smallH(t)
	// Perfect reliability and full bait coverage: everything recovered.
	p := TAPParams{PullDownSuccess: 1, PreyDetection: 1, RecoveryFraction: 1}
	baits := []int{0, 1, 2, 3, 4}
	o := SimulateTAP(h, baits, p, xrand.New(1))
	if o.RecoveredCount() != h.NumEdges() {
		t.Errorf("recovered %d of %d", o.RecoveredCount(), h.NumEdges())
	}
	if o.PullDowns != h.NumPins() {
		t.Errorf("pulldowns = %d, want %d", o.PullDowns, h.NumPins())
	}
	if o.SuccessfulPullDowns != o.PullDowns {
		t.Error("perfect success rate expected")
	}
	if o.RecoveryRate() != 1 {
		t.Errorf("rate = %v", o.RecoveryRate())
	}
}

func TestSimulateTAPZeroSuccess(t *testing.T) {
	h := smallH(t)
	p := TAPParams{PullDownSuccess: 0, PreyDetection: 1, RecoveryFraction: 0.5}
	o := SimulateTAP(h, []int{0, 1, 2, 3, 4}, p, xrand.New(1))
	if o.RecoveredCount() != 0 || o.SuccessfulPullDowns != 0 {
		t.Errorf("recovered %d, successes %d; want 0, 0", o.RecoveredCount(), o.SuccessfulPullDowns)
	}
}

func TestSimulateTAPNoBaitsNoRecovery(t *testing.T) {
	h := smallH(t)
	o := SimulateTAP(h, nil, DefaultTAPParams(), xrand.New(1))
	if o.RecoveredCount() != 0 || o.PullDowns != 0 {
		t.Errorf("outcome %v", o)
	}
}

func TestPropertyTAPMoreBaitsNeverHurt(t *testing.T) {
	// With the same RNG stream semantics we cannot compare run-to-run
	// directly, so check the monotone expectation over repeated trials:
	// a superset bait set recovers at least as much on average.
	h := smallH(t)
	prop := func(seed uint64) bool {
		rng := xrand.New(seed)
		small := []int{0}
		big := []int{0, 1, 2, 3, 4}
		p := DefaultTAPParams()
		trials := 30
		var rs, rb float64
		for i := 0; i < trials; i++ {
			rs += SimulateTAP(h, small, p, rng.Split()).RecoveryRate()
			rb += SimulateTAP(h, big, p, rng.Split()).RecoveryRate()
		}
		return rb >= rs-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCompareReliability(t *testing.T) {
	h := smallH(t)
	sets := map[string][]int{
		"single": {0, 3},
		"double": {0, 1, 2, 3, 4},
	}
	rng := xrand.New(77)
	trials := CompareReliability(h, sets, DefaultTAPParams(), 50, rng)
	if len(trials) != 2 {
		t.Fatalf("trials = %d", len(trials))
	}
	// Sorted by name: double before single.
	if trials[0].Name != "double" || trials[1].Name != "single" {
		t.Errorf("order: %s, %s", trials[0].Name, trials[1].Name)
	}
	if trials[0].MeanRecovery < trials[1].MeanRecovery {
		t.Errorf("more baits recovered less: %v vs %v", trials[0].MeanRecovery, trials[1].MeanRecovery)
	}
	for _, tr := range trials {
		if tr.MinRecovery > tr.MeanRecovery+1e-9 {
			t.Errorf("%s: min %v > mean %v", tr.Name, tr.MinRecovery, tr.MeanRecovery)
		}
		if tr.MeanPullDowns <= 0 {
			t.Errorf("%s: no pulldowns", tr.Name)
		}
	}
}

func newTestRNG() *xrand.RNG { return xrand.New(0xb10) }
