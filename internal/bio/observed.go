package bio

import (
	"fmt"
	"sort"

	"hyperplex/internal/hypergraph"
	"hyperplex/internal/xrand"
)

// The Cellzome data the paper models *is* the output of pull-downs:
// each successful purification contributes one observed complex (the
// bait plus its detected preys), and observations of the same complex
// are merged.  This file closes that loop: SimulateScreen runs the
// pull-downs and materializes the observed hypergraph, and
// NetworkFidelity measures how faithfully it reproduces the truth —
// which lets experiment X1 report not just "complexes touched" but the
// quality of the recovered network under different bait designs.

// PullDown is one successful purification.
type PullDown struct {
	Bait     int     // bait vertex (truth IDs)
	Complex  int     // the truth hyperedge that was purified
	Observed []int32 // detected members (bait included), sorted
}

// Screen is the full record of a simulated TAP experiment.
type Screen struct {
	PullDowns []PullDown
	Attempted int // total pull-downs attempted (Σ bait degrees)
}

// SimulateScreen runs one screen like SimulateTAP but keeps the
// per-pull-down records needed to build the observed network.
func SimulateScreen(h *hypergraph.Hypergraph, baits []int, p TAPParams, rng *xrand.RNG) *Screen {
	s := &Screen{}
	for _, b := range baits {
		for _, f := range h.Edges(b) {
			s.Attempted++
			if rng.Float64() >= p.PullDownSuccess {
				continue
			}
			pd := PullDown{Bait: b, Complex: int(f)}
			for _, m := range h.Vertices(int(f)) {
				if int(m) == b || rng.Float64() < p.PreyDetection {
					pd.Observed = append(pd.Observed, m)
				}
			}
			sort.Slice(pd.Observed, func(i, j int) bool { return pd.Observed[i] < pd.Observed[j] })
			s.PullDowns = append(s.PullDowns, pd)
		}
	}
	return s
}

// ObservedHypergraph merges the screen's pull-downs into the observed
// protein-complex hypergraph, the analogue of the published Cellzome
// dataset: pull-downs of the same underlying complex are unioned into
// one observed complex.  Vertex IDs and names are shared with the
// truth hypergraph; proteins never observed become isolated vertices.
func ObservedHypergraph(truth *hypergraph.Hypergraph, s *Screen) *hypergraph.Hypergraph {
	merged := make(map[int]map[int32]struct{})
	for _, pd := range s.PullDowns {
		set := merged[pd.Complex]
		if set == nil {
			set = make(map[int32]struct{})
			merged[pd.Complex] = set
		}
		for _, m := range pd.Observed {
			set[m] = struct{}{}
		}
	}
	b := hypergraph.NewBuilder()
	for v := 0; v < truth.NumVertices(); v++ {
		name := truth.VertexName(v)
		if name == "" {
			name = fmt.Sprintf("v%d", v)
		}
		b.AddVertex(name)
	}
	complexes := make([]int, 0, len(merged))
	for f := range merged {
		complexes = append(complexes, f)
	}
	sort.Ints(complexes)
	for _, f := range complexes {
		members := make([]int32, 0, len(merged[f]))
		for m := range merged[f] {
			members = append(members, m)
		}
		name := truth.EdgeName(f)
		if name == "" {
			name = fmt.Sprintf("f%d", f)
		}
		b.AddEdgeIDs("obs:"+name, members)
	}
	return b.MustBuild()
}

// Fidelity compares an observed network against the truth.
type Fidelity struct {
	// ComplexesObserved of ComplexesTrue were seen at least once.
	ComplexesObserved int
	ComplexesTrue     int
	// MeanJaccard is the average, over observed complexes, of the
	// Jaccard similarity to their true membership.
	MeanJaccard float64
	// PerfectComplexes counts observed complexes recovered exactly.
	PerfectComplexes int
	// MissedPins counts (complex, protein) incidences never observed,
	// over all true complexes.
	MissedPins int
	TruePins   int
}

// NetworkFidelity measures the observed hypergraph against the truth.
// Observed complexes are matched to their originating true complex by
// name ("obs:" prefix).
func NetworkFidelity(truth, observed *hypergraph.Hypergraph) (Fidelity, error) {
	fi := Fidelity{ComplexesTrue: truth.NumEdges(), TruePins: truth.NumPins()}
	seenPins := 0
	var sumJ float64
	for of := 0; of < observed.NumEdges(); of++ {
		name := observed.EdgeName(of)
		const prefix = "obs:"
		if len(name) < len(prefix) || name[:len(prefix)] != prefix {
			return fi, fmt.Errorf("bio: observed complex %q lacks the obs: prefix", name)
		}
		tf, ok := truth.EdgeID(name[len(prefix):])
		if !ok {
			return fi, fmt.Errorf("bio: observed complex %q has no true counterpart", name)
		}
		fi.ComplexesObserved++
		inter := 0
		for _, m := range observed.Vertices(of) {
			tm, ok := truth.VertexID(observed.VertexName(int(m)))
			if ok && truth.EdgeContains(tf, tm) {
				inter++
			}
		}
		union := observed.EdgeDegree(of) + truth.EdgeDegree(tf) - inter
		j := 0.0
		if union > 0 {
			j = float64(inter) / float64(union)
		}
		sumJ += j
		if j == 1 {
			fi.PerfectComplexes++
		}
		seenPins += inter
	}
	if fi.ComplexesObserved > 0 {
		fi.MeanJaccard = sumJ / float64(fi.ComplexesObserved)
	}
	fi.MissedPins = fi.TruePins - seenPins
	return fi, nil
}

func (f Fidelity) String() string {
	return fmt.Sprintf("%d/%d complexes observed, mean Jaccard %.3f, %d exact, %d/%d pins missed",
		f.ComplexesObserved, f.ComplexesTrue, f.MeanJaccard, f.PerfectComplexes, f.MissedPins, f.TruePins)
}
