// Package bio supplies the proteomics substrate around the hypergraph
// algorithms: protein annotations (essentiality, homology, functional
// characterization) with enrichment analysis for the core-proteome
// experiment of §3, bait statistics for §4, and a simulator of the
// Cellzome TAP (tandem-affinity-purification) pull-down experiment
// with its reported ≈70 % reproducibility, used to quantify the
// paper's argument that multicovers improve identification
// reliability.
//
// Real SGD/CYGD annotation databases are not available offline, so
// annotations are generated synthetically, calibrated to the published
// fractions (878 essential vs 3158 non-essential genes genome-wide;
// the stated core-proteome counts); the analysis code then recomputes
// every reported number from the generated data.
package bio

import (
	"fmt"
	"math"

	"hyperplex/internal/hypergraph"
	"hyperplex/internal/xrand"
)

// Genome-wide essentiality counts reported by the Comprehensive Yeast
// Genome Database, as cited in §3 of the paper.
const (
	GenomeEssential    = 878
	GenomeNonEssential = 3158
)

// GenomeEssentialFraction is the background fraction of essential
// genes (≈ 21.7 %), the baseline the core proteome is compared to.
func GenomeEssentialFraction() float64 {
	return float64(GenomeEssential) / float64(GenomeEssential+GenomeNonEssential)
}

// AnnotationDB holds per-protein annotations for one hypergraph
// instance, indexed by vertex ID.
type AnnotationDB struct {
	// Known reports whether the protein is characterized (has a known
	// function); the paper's core contained 9 unknown of 41.
	Known []bool
	// Essential reports whether deleting the corresponding gene is
	// lethal.  Only meaningful where Known is true (the essentiality of
	// uncharacterized proteins is reported as false).
	Essential []bool
	// Homolog reports whether the protein has a reported homolog in
	// other organisms (human, mouse, E. coli, bacillus in the paper).
	Homolog []bool
}

// Validate checks the slices cover exactly the hypergraph's vertices.
func (db *AnnotationDB) Validate(h *hypergraph.Hypergraph) error {
	n := h.NumVertices()
	if len(db.Known) != n || len(db.Essential) != n || len(db.Homolog) != n {
		return fmt.Errorf("bio: annotation slices (%d/%d/%d) do not match %d vertices",
			len(db.Known), len(db.Essential), len(db.Homolog), n)
	}
	for v := range db.Essential {
		if db.Essential[v] && !db.Known[v] {
			return fmt.Errorf("bio: vertex %d essential but unknown", v)
		}
	}
	return nil
}

// AnnotationParams calibrates GenerateAnnotations.
type AnnotationParams struct {
	// Fractions applied to proteins outside the designated core.
	BackgroundKnown     float64
	BackgroundEssential float64 // conditional on Known
	BackgroundHomolog   float64
	// Exact counts imposed on the designated core vertex set,
	// reproducing the published core-proteome characterization
	// (41 proteins: 9 unknown; 22 of the 32 known essential; 24 with
	// homologs, 3 of them among the unknown).
	CoreUnknown        int
	CoreEssential      int
	CoreHomolog        int
	CoreHomologUnknown int
}

// DefaultAnnotationParams returns the calibration used by the Cellzome
// instance.
func DefaultAnnotationParams() AnnotationParams {
	return AnnotationParams{
		BackgroundKnown:     0.85,
		BackgroundEssential: GenomeEssentialFraction(),
		BackgroundHomolog:   0.40,
		CoreUnknown:         9,
		CoreEssential:       22,
		CoreHomolog:         24,
		CoreHomologUnknown:  3,
	}
}

// GenerateAnnotations produces an AnnotationDB for h.  coreV marks the
// core-proteome vertices, which receive the exact counts from params
// (assigned deterministically from rng); the rest are sampled from the
// background fractions.  coreV may be nil (all background).
func GenerateAnnotations(h *hypergraph.Hypergraph, coreV []bool, params AnnotationParams, rng *xrand.RNG) (*AnnotationDB, error) {
	n := h.NumVertices()
	db := &AnnotationDB{
		Known:     make([]bool, n),
		Essential: make([]bool, n),
		Homolog:   make([]bool, n),
	}
	var core []int
	for v := 0; v < n; v++ {
		if coreV != nil && coreV[v] {
			core = append(core, v)
		}
	}
	if len(core) > 0 {
		if params.CoreUnknown > len(core) {
			return nil, fmt.Errorf("bio: CoreUnknown %d exceeds core size %d", params.CoreUnknown, len(core))
		}
		known := len(core) - params.CoreUnknown
		if params.CoreEssential > known {
			return nil, fmt.Errorf("bio: CoreEssential %d exceeds known core %d", params.CoreEssential, known)
		}
		if params.CoreHomolog > len(core) || params.CoreHomologUnknown > params.CoreUnknown || params.CoreHomologUnknown > params.CoreHomolog {
			return nil, fmt.Errorf("bio: homolog counts inconsistent (%d/%d)", params.CoreHomolog, params.CoreHomologUnknown)
		}
		perm := rng.Perm(len(core))
		// First CoreUnknown entries of the permutation are unknown.
		unknown := make([]int, 0, params.CoreUnknown)
		knownList := make([]int, 0, known)
		for i, p := range perm {
			v := core[p]
			if i < params.CoreUnknown {
				unknown = append(unknown, v)
			} else {
				db.Known[v] = true
				knownList = append(knownList, v)
			}
		}
		for i := 0; i < params.CoreEssential; i++ {
			db.Essential[knownList[i]] = true
		}
		// Homologs: CoreHomologUnknown among the unknown, the rest among
		// the known.
		for i := 0; i < params.CoreHomologUnknown; i++ {
			db.Homolog[unknown[i]] = true
		}
		for i := 0; i < params.CoreHomolog-params.CoreHomologUnknown; i++ {
			db.Homolog[knownList[i]] = true
		}
	}
	for v := 0; v < n; v++ {
		if coreV != nil && coreV[v] {
			continue
		}
		if rng.Float64() < params.BackgroundKnown {
			db.Known[v] = true
			if rng.Float64() < params.BackgroundEssential {
				db.Essential[v] = true
			}
		}
		if rng.Float64() < params.BackgroundHomolog {
			db.Homolog[v] = true
		}
	}
	return db, nil
}

// Enrichment summarizes how a protein subset compares against a
// background fraction, as the paper does for the core proteome.
type Enrichment struct {
	Subset      int     // subset size
	Hits        int     // annotated members of the subset
	SubsetFrac  float64 // Hits / Subset
	Background  float64 // background fraction compared against
	Fold        float64 // SubsetFrac / Background
	PValue      float64 // one-sided binomial tail P(X ≥ Hits)
	Description string
}

// EnrichmentOf computes the enrichment of predicate `hit` over the
// vertices marked in subset, against the given background fraction.
func EnrichmentOf(subset []bool, hit []bool, background float64, description string) Enrichment {
	e := Enrichment{Background: background, Description: description}
	for v, in := range subset {
		if !in {
			continue
		}
		e.Subset++
		if hit[v] {
			e.Hits++
		}
	}
	if e.Subset > 0 {
		e.SubsetFrac = float64(e.Hits) / float64(e.Subset)
	}
	if background > 0 {
		e.Fold = e.SubsetFrac / background
	}
	e.PValue = binomialTail(e.Subset, e.Hits, background)
	return e
}

func (e Enrichment) String() string {
	return fmt.Sprintf("%s: %d/%d = %.1f%% vs background %.1f%% (%.2fx, p = %.2g)",
		e.Description, e.Hits, e.Subset, 100*e.SubsetFrac, 100*e.Background, e.Fold, e.PValue)
}

// binomialTail returns P(X ≥ k) for X ~ Binomial(n, p), computed in
// log space for numerical stability.
func binomialTail(n, k int, p float64) float64 {
	if k <= 0 {
		return 1
	}
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	total := 0.0
	for i := k; i <= n; i++ {
		total += math.Exp(logChoose(n, i) + float64(i)*math.Log(p) + float64(n-i)*math.Log(1-p))
	}
	if total > 1 {
		total = 1
	}
	return total
}

func logChoose(n, k int) float64 {
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}
