package bio

import (
	"math"
	"testing"

	"hyperplex/internal/cover"
	"hyperplex/internal/hypergraph"
)

func TestRequirementsForReliability(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.AddEdge("big", "a", "b", "c", "d", "e")
	b.AddEdge("pair", "a", "b")
	b.AddEdge("single", "z")
	h := b.MustBuild()

	// p = 0.7, target 0.95 → r = ⌈ln(0.05)/ln(0.3)⌉ = ⌈2.49⌉ = 3.
	req, err := RequirementsForReliability(h, 0.7, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	big, _ := h.EdgeID("big")
	pair, _ := h.EdgeID("pair")
	single, _ := h.EdgeID("single")
	if req[big] != 3 {
		t.Errorf("req(big) = %d, want 3", req[big])
	}
	if req[pair] != 2 { // capped at cardinality
		t.Errorf("req(pair) = %d, want 2 (capped)", req[pair])
	}
	if req[single] != 1 {
		t.Errorf("req(single) = %d, want 1 (capped)", req[single])
	}

	// The requirements are feasible by construction.
	c, err := cover.GreedyMulticover(h, nil, req)
	if err != nil {
		t.Fatal(err)
	}
	if err := cover.Verify(h, c, req); err != nil {
		t.Error(err)
	}
}

func TestRequirementsForReliabilityEdgeCases(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.AddEdge("f", "a", "b", "c")
	h := b.MustBuild()
	// Perfect pull-downs: one bait suffices regardless of target.
	req, err := RequirementsForReliability(h, 1, 0.999)
	if err != nil || req[0] != 1 {
		t.Errorf("p=1: req = %v, err = %v", req, err)
	}
	// Zero target: minimum coverage.
	req, err = RequirementsForReliability(h, 0.5, 0)
	if err != nil || req[0] != 1 {
		t.Errorf("target=0: req = %v, err = %v", req, err)
	}
	if _, err := RequirementsForReliability(h, 0, 0.9); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := RequirementsForReliability(h, 0.5, 1); err == nil {
		t.Error("target=1 accepted")
	}
	if _, err := RequirementsForReliability(h, 1.5, 0.5); err == nil {
		t.Error("p>1 accepted")
	}
}

func TestExpectedRecovery(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.AddEdge("f1", "a", "b")
	b.AddEdge("f2", "b", "c")
	h := b.MustBuild()
	bID, _ := h.VertexID("b")

	per, mean := ExpectedRecovery(h, []int{bID}, 0.7)
	// b covers both complexes once each: P = 0.7 for both.
	if math.Abs(per[0]-0.7) > 1e-12 || math.Abs(per[1]-0.7) > 1e-12 {
		t.Errorf("per-complex = %v", per)
	}
	if math.Abs(mean-0.7) > 1e-12 {
		t.Errorf("mean = %v", mean)
	}

	aID, _ := h.VertexID("a")
	per2, _ := ExpectedRecovery(h, []int{aID, bID}, 0.7)
	// f1 covered twice: 1 − 0.3² = 0.91.
	if math.Abs(per2[0]-0.91) > 1e-12 {
		t.Errorf("double coverage recovery = %v, want 0.91", per2[0])
	}

	// No baits → zero recovery.
	_, mean0 := ExpectedRecovery(h, nil, 0.7)
	if mean0 != 0 {
		t.Errorf("mean with no baits = %v", mean0)
	}
}

func TestExpectedRecoveryAgreesWithSimulation(t *testing.T) {
	// Analytic complex-touch probability should approximate the
	// simulated one when prey detection is perfect and the recovery
	// threshold only needs the bait itself... to keep the comparison
	// clean, use RecoveryFraction so low that any successful pull-down
	// recovers the complex.
	b := hypergraph.NewBuilder()
	b.AddEdge("f1", "a", "b", "c")
	b.AddEdge("f2", "b", "d", "e")
	h := b.MustBuild()
	bID, _ := h.VertexID("b")
	baits := []int{bID}
	p := TAPParams{PullDownSuccess: 0.7, PreyDetection: 1, RecoveryFraction: 0.01}

	rng := newTestRNG()
	trials := 4000
	recovered := 0
	for i := 0; i < trials; i++ {
		o := SimulateTAP(h, baits, p, rng.Split())
		recovered += o.RecoveredCount()
	}
	simMean := float64(recovered) / float64(trials*h.NumEdges())
	_, anaMean := ExpectedRecovery(h, baits, 0.7)
	if math.Abs(simMean-anaMean) > 0.03 {
		t.Errorf("simulated %v vs analytic %v", simMean, anaMean)
	}
}
