package partition_test

import (
	"context"
	"errors"
	"runtime"
	"slices"
	"testing"

	"hyperplex/internal/csr"
	"hyperplex/internal/gen"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/partition"
	"hyperplex/internal/run"
	"hyperplex/internal/xrand"
)

func instances(t *testing.T) []*hypergraph.Hypergraph {
	t.Helper()
	giant, err := hypergraph.FromEdgeSets(12, [][]int32{
		{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, // spans every block
		{0, 1}, {5, 6}, {10, 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := []*hypergraph.Hypergraph{giant}
	rng := xrand.New(0x9A57)
	for i := 0; i < 8; i++ {
		out = append(out, gen.RandomHypergraph(5+rng.Intn(60), 1+rng.Intn(40), 1+rng.Intn(7), rng))
	}
	return out
}

// validate checks the partition invariants: disjoint contiguous vertex
// blocks covering V, edge ownership anchored at the first member,
// consistent cut/frontier sets, and pin accounting.
func validate(t *testing.T, h *hypergraph.Hypergraph, p *partition.Partition) {
	t.Helper()
	nv, ne := h.NumVertices(), h.NumEdges()
	seenV := make([]bool, nv)
	for s, sh := range p.Shards {
		if sh.Index != s {
			t.Fatalf("shard %d has Index %d", s, sh.Index)
		}
		if len(sh.Vertices) == 0 && nv > 0 {
			t.Fatalf("shard %d owns no vertices", s)
		}
		for i, v := range sh.Vertices {
			if seenV[v] {
				t.Fatalf("vertex %d owned twice", v)
			}
			seenV[v] = true
			if p.VertexOwner[v] != int32(s) {
				t.Fatalf("vertex %d: owner %d, listed in shard %d", v, p.VertexOwner[v], s)
			}
			if i > 0 && v != sh.Vertices[i-1]+1 {
				t.Fatalf("shard %d vertex block not contiguous: %v", s, sh.Vertices)
			}
		}
	}
	for v := 0; v < nv; v++ {
		if !seenV[v] {
			t.Fatalf("vertex %d unowned", v)
		}
	}
	seenF := make([]bool, ne)
	var cut int
	for s, sh := range p.Shards {
		pins := 0
		cutSet := make(map[int32]bool, len(sh.Cut))
		for _, f := range sh.Cut {
			cutSet[f] = true
		}
		frontier := make(map[int32]bool, len(sh.Frontier))
		for _, v := range sh.Frontier {
			if p.VertexOwner[v] == int32(s) {
				t.Fatalf("shard %d frontier contains owned vertex %d", s, v)
			}
			if frontier[v] {
				t.Fatalf("shard %d frontier lists vertex %d twice", s, v)
			}
			frontier[v] = true
		}
		for _, f := range sh.Edges {
			if seenF[f] {
				t.Fatalf("hyperedge %d owned twice", f)
			}
			seenF[f] = true
			if p.EdgeOwner[f] != int32(s) {
				t.Fatalf("hyperedge %d: owner %d, listed in shard %d", f, p.EdgeOwner[f], s)
			}
			members := h.Vertices(int(f))
			pins += len(members)
			if len(members) > 0 && p.VertexOwner[members[0]] != int32(s) {
				t.Fatalf("hyperedge %d not anchored at first member", f)
			}
			isCut := false
			for _, v := range members {
				if p.VertexOwner[v] != int32(s) {
					isCut = true
					if !frontier[v] {
						t.Fatalf("shard %d: vertex %d of cut edge %d missing from frontier", s, v, f)
					}
				}
			}
			if isCut != cutSet[f] {
				t.Fatalf("hyperedge %d: cut=%t but Cut set says %t", f, isCut, cutSet[f])
			}
		}
		if pins != sh.Pins {
			t.Fatalf("shard %d: Pins=%d, recount %d", s, sh.Pins, pins)
		}
		cut += len(sh.Cut)
	}
	for f := 0; f < ne; f++ {
		if !seenF[f] {
			t.Fatalf("hyperedge %d unowned", f)
		}
	}
	if cut != len(p.CutEdges) {
		t.Fatalf("CutEdges has %d entries, shards list %d", len(p.CutEdges), cut)
	}
}

func TestBuildInvariants(t *testing.T) {
	for i, h := range instances(t) {
		for _, shards := range []int{1, 2, 3, 5, runtime.NumCPU(), h.NumVertices() + 7} {
			p := partition.Build(h, shards)
			want := partition.NormalizeShards(shards, h.NumVertices())
			if p.NumShards() != want {
				t.Fatalf("instance %d %v shards=%d: got %d shards, want %d", i, h, shards, p.NumShards(), want)
			}
			validate(t, h, p)
		}
	}
}

func TestNormalizeShards(t *testing.T) {
	cases := []struct{ shards, nv, want int }{
		{0, 100, runtime.NumCPU()},
		{-3, 100, runtime.NumCPU()},
		{4, 100, 4},
		{7, 3, 3},
		{5, 0, 1},
		{1, 1, 1},
	}
	for _, c := range cases {
		if c.nv < c.want { // NumCPU may exceed tiny nv
			c.want = c.nv
		}
		if got := partition.NormalizeShards(c.shards, c.nv); got != c.want && !(c.nv == 0 && got == 1) {
			t.Errorf("NormalizeShards(%d, %d) = %d, want %d", c.shards, c.nv, got, c.want)
		}
	}
}

// TestMaterialize checks that each shard's materialized sub-hypergraph
// carries the owned hyperedges intact (frontier vertices kept).
func TestMaterialize(t *testing.T) {
	for i, h := range instances(t) {
		p := partition.Build(h, 3)
		for s := range p.Shards {
			sub, vMap, fMap := p.Materialize(s)
			if sub.NumEdges() != len(p.Shards[s].Edges) {
				t.Fatalf("instance %d shard %d: %d hyperedges materialized, own %d",
					i, s, sub.NumEdges(), len(p.Shards[s].Edges))
			}
			for _, f := range p.Shards[s].Edges {
				nf, ok := fMap[int(f)]
				if !ok {
					t.Fatalf("instance %d shard %d: hyperedge %d not in fMap", i, s, f)
				}
				if sub.EdgeDegree(nf) != h.EdgeDegree(int(f)) {
					t.Fatalf("instance %d shard %d: hyperedge %d lost members (%d → %d)",
						i, s, f, h.EdgeDegree(int(f)), sub.EdgeDegree(nf))
				}
				for _, v := range h.Vertices(int(f)) {
					if _, ok := vMap[int(v)]; !ok {
						t.Fatalf("instance %d shard %d: member vertex %d of %d dropped", i, s, v, f)
					}
				}
			}
		}
	}
}

// TestMaterializeCSR pins the flat-array block against the
// builder-layer Materialize: both number the kept vertices in
// ascending original-ID order, so the structures must agree
// positionally — same counts, same member rows (translated through
// vMap), valid CSR invariants, and ID maps that invert exactly.
func TestMaterializeCSR(t *testing.T) {
	for i, h := range instances(t) {
		for _, shards := range []int{1, 3, 7} {
			p := partition.Build(h, shards)
			for s := range p.Shards {
				c := p.MaterializeCSR(s)
				if err := c.Validate(); err != nil {
					t.Fatalf("instance %d shard %d/%d: %v", i, s, shards, err)
				}
				sub, vMap, fMap := p.Materialize(s)
				if c.NumVertices() != sub.NumVertices() || c.NumEdges() != sub.NumEdges() || c.NumPins() != sub.NumPins() {
					t.Fatalf("instance %d shard %d/%d: CSR block %d/%d/%d, Materialize %d/%d/%d",
						i, s, shards, c.NumVertices(), c.NumEdges(), c.NumPins(),
						sub.NumVertices(), sub.NumEdges(), sub.NumPins())
				}
				for old, nf := range fMap {
					if int(c.EdgeID[nf]) != old {
						t.Fatalf("instance %d shard %d/%d: EdgeID[%d] = %d, want %d", i, s, shards, nf, c.EdgeID[nf], old)
					}
					row := c.EdgeVertices(int32(nf))
					want := sub.Vertices(nf)
					if len(row) != len(want) {
						t.Fatalf("instance %d shard %d/%d: edge %d has %d members, want %d",
							i, s, shards, nf, len(row), len(want))
					}
					for j := range row {
						if row[j] != want[j] {
							t.Fatalf("instance %d shard %d/%d: edge %d member %d = %d, want %d",
								i, s, shards, nf, j, row[j], want[j])
						}
					}
				}
				for old, nv := range vMap {
					if int(c.VertexID[nv]) != old {
						t.Fatalf("instance %d shard %d/%d: VertexID[%d] = %d, want %d", i, s, shards, nv, c.VertexID[nv], old)
					}
				}
			}
		}
	}
}

// TestRemoteEdges checks that the remote-incidence rows are exactly
// the complement of the owned rows in the MaterializeCSR block: for
// every owned vertex, the block row (mapped to original IDs) plus the
// remote row reassembles the vertex's full incidence list, ascending
// and disjoint.
func TestRemoteEdges(t *testing.T) {
	for i, h := range instances(t) {
		for _, shards := range []int{1, 3, 7} {
			p := partition.Build(h, shards)
			for s := range p.Shards {
				sh := &p.Shards[s]
				block := p.MaterializeCSR(s)
				off, adj := p.RemoteEdges(s)
				if len(off) != len(sh.Vertices)+1 {
					t.Fatalf("instance %d shard %d/%d: %d offsets for %d owned vertices",
						i, s, shards, len(off), len(sh.Vertices))
				}
				if int(off[len(sh.Vertices)]) != len(adj) {
					t.Fatalf("instance %d shard %d/%d: offsets end at %d, adj has %d",
						i, s, shards, off[len(sh.Vertices)], len(adj))
				}
				for j, v := range sh.Vertices {
					remote := adj[off[j]:off[j+1]]
					for _, f := range remote {
						if p.EdgeOwner[f] == int32(s) {
							t.Fatalf("instance %d shard %d/%d: remote row of vertex %d lists owned hyperedge %d",
								i, s, shards, v, f)
						}
					}
					// Rebuild the full row: owned incidences from the block
					// (local edge IDs mapped back), remote from the rows.
					local, ok := localID(block.VertexID, v)
					if !ok {
						t.Fatalf("instance %d shard %d/%d: owned vertex %d missing from block", i, s, shards, v)
					}
					var full []int32
					for _, fi := range block.VertexEdges(local) {
						full = append(full, block.EdgeID[fi])
					}
					full = append(full, remote...)
					want := h.Edges(int(v))
					if len(full) != len(want) {
						t.Fatalf("instance %d shard %d/%d: vertex %d reassembles %d incidences, want %d",
							i, s, shards, v, len(full), len(want))
					}
					seen := make(map[int32]bool, len(full))
					for _, f := range full {
						seen[f] = true
					}
					for _, f := range want {
						if !seen[f] {
							t.Fatalf("instance %d shard %d/%d: vertex %d incidence %d missing from block+remote",
								i, s, shards, v, f)
						}
					}
				}
			}
		}
	}
}

// localID finds the block-local ID of original vertex v in the sorted
// VertexID map.
func localID(ids []int32, v int32) (int32, bool) {
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := (lo + hi) / 2
		if ids[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ids) && ids[lo] == v {
		return int32(lo), true
	}
	return 0, false
}

func TestBuildEmptyHypergraph(t *testing.T) {
	h, err := hypergraph.FromEdgeSets(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := partition.Build(h, 4)
	if p.NumShards() != 1 {
		t.Fatalf("empty hypergraph: %d shards, want 1", p.NumShards())
	}
	validate(t, h, p)
}

func TestBuildCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h := gen.RandomHypergraph(50, 30, 4, xrand.New(1))
	if _, err := partition.BuildCtx(ctx, h, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled build: err = %v, want context.Canceled", err)
	}
}

func TestBuildCtxBudget(t *testing.T) {
	h := gen.RandomHypergraph(500, 300, 5, xrand.New(2))
	ctx, m := run.WithBudget(context.Background(), run.Budget{MaxSteps: 1})
	_ = m
	if _, err := partition.BuildCtx(ctx, h, 4); !errors.Is(err, run.ErrBudgetExceeded) {
		t.Fatalf("budgeted build: err = %v, want ErrBudgetExceeded", err)
	}
}

// TestDescsRoundTrip pins the serializable shard descriptors: for
// every instance and shard count, FromDescs(h, p.Descs()) rebuilds a
// partition identical to p in every derived structure.
func TestDescsRoundTrip(t *testing.T) {
	for i, h := range instances(t) {
		for _, shards := range []int{1, 2, 3, 5, runtime.NumCPU()} {
			p := partition.Build(h, shards)
			q := partition.FromDescs(h, p.Descs())
			if q.NumShards() != p.NumShards() {
				t.Fatalf("instance %d shards %d: rebuilt %d shards, want %d", i, shards, q.NumShards(), p.NumShards())
			}
			validate(t, h, q)
			for v := range p.VertexOwner {
				if q.VertexOwner[v] != p.VertexOwner[v] {
					t.Fatalf("instance %d: vertex %d owner %d, want %d", i, v, q.VertexOwner[v], p.VertexOwner[v])
				}
			}
			for f := range p.EdgeOwner {
				if q.EdgeOwner[f] != p.EdgeOwner[f] {
					t.Fatalf("instance %d: edge %d owner %d, want %d", i, f, q.EdgeOwner[f], p.EdgeOwner[f])
				}
			}
			for s := range p.Shards {
				a, b := &p.Shards[s], &q.Shards[s]
				if len(a.Vertices) != len(b.Vertices) || len(a.Edges) != len(b.Edges) ||
					len(a.Frontier) != len(b.Frontier) || len(a.Cut) != len(b.Cut) || a.Pins != b.Pins {
					t.Fatalf("instance %d shard %d: rebuilt shard differs: %+v vs %+v", i, s, a, b)
				}
			}
		}
	}
}

// TestFromDescsRejectsInvalid pins the wire-input defenses: gaps,
// overlaps, empty blocks, short and over-long covers are all rejected
// with an error rather than a silently divergent partition.
func TestFromDescsRejectsInvalid(t *testing.T) {
	h := gen.RandomHypergraph(10, 8, 3, xrand.New(7))
	cases := []struct {
		name  string
		descs []partition.Desc
	}{
		{"none", nil},
		{"gap", []partition.Desc{{First: 0, Count: 4}, {First: 5, Count: 5}}},
		{"overlap", []partition.Desc{{First: 0, Count: 6}, {First: 4, Count: 6}}},
		{"empty block", []partition.Desc{{First: 0, Count: 0}, {First: 0, Count: 10}}},
		{"short cover", []partition.Desc{{First: 0, Count: 6}}},
		{"over-long", []partition.Desc{{First: 0, Count: 11}}},
		{"negative", []partition.Desc{{First: 0, Count: -1}}},
	}
	for _, tc := range cases {
		if _, err := partition.FromDescsCtx(context.Background(), h, tc.descs); err == nil {
			t.Errorf("%s: invalid descriptors accepted", tc.name)
		}
	}
}

// TestFromDescsEmptyHypergraph: a vertexless hypergraph round-trips
// through its single empty descriptor.
func TestFromDescsEmptyHypergraph(t *testing.T) {
	h, err := hypergraph.FromEdgeSets(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := partition.Build(h, 4)
	q := partition.FromDescs(h, p.Descs())
	if q.NumShards() != 1 {
		t.Fatalf("rebuilt %d shards, want 1", q.NumShards())
	}
	validate(t, h, q)
}

// TestFromDescsCtxCancelled: the Ctx variant fails fast when cancelled.
func TestFromDescsCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h := gen.RandomHypergraph(50, 30, 4, xrand.New(1))
	p := partition.Build(h, 4)
	if _, err := partition.FromDescsCtx(ctx, h, p.Descs()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled rebuild: err = %v, want context.Canceled", err)
	}
}

// TestBuildCSRMatchesBuild pins the CSR-backed partition to the
// Hypergraph-backed one: same owners, same shards, same materialized
// blocks, same remote rows — so a store-mapped CSR shards exactly like
// the hypergraph it was written from.
func TestBuildCSRMatchesBuild(t *testing.T) {
	for _, h := range instances(t) {
		for _, shards := range []int{1, 2, 3, 7} {
			want := partition.Build(h, shards)
			got := partition.BuildCSR(csr.FromH(h), shards)
			if !slices.Equal(got.VertexOwner, want.VertexOwner) || !slices.Equal(got.EdgeOwner, want.EdgeOwner) {
				t.Fatalf("%v at %d shards: CSR-backed ownership differs", h, shards)
			}
			if !slices.Equal(got.CutEdges, want.CutEdges) {
				t.Fatalf("%v at %d shards: CSR-backed cut edges differ", h, shards)
			}
			for s := range want.Shards {
				ws, gs := &want.Shards[s], &got.Shards[s]
				if !slices.Equal(gs.Vertices, ws.Vertices) || !slices.Equal(gs.Edges, ws.Edges) ||
					!slices.Equal(gs.Frontier, ws.Frontier) || !slices.Equal(gs.Cut, ws.Cut) || gs.Pins != ws.Pins {
					t.Fatalf("%v at %d shards: shard %d differs", h, shards, s)
				}
				wc, gc := want.MaterializeCSR(s), got.MaterializeCSR(s)
				if !slices.Equal(gc.VOff, wc.VOff) || !slices.Equal(gc.VAdj, wc.VAdj) ||
					!slices.Equal(gc.EOff, wc.EOff) || !slices.Equal(gc.EAdj, wc.EAdj) ||
					!slices.Equal(gc.VertexID, wc.VertexID) || !slices.Equal(gc.EdgeID, wc.EdgeID) {
					t.Fatalf("%v at %d shards: MaterializeCSR(%d) differs", h, shards, s)
				}
				wOff, wAdj := want.RemoteEdges(s)
				gOff, gAdj := got.RemoteEdges(s)
				if !slices.Equal(gOff, wOff) || !slices.Equal(gAdj, wAdj) {
					t.Fatalf("%v at %d shards: RemoteEdges(%d) differs", h, shards, s)
				}
			}
		}
	}
}

// TestMaterializeNeedsH pins the contract that a CSR-backed partition
// cannot materialize named sub-hypergraphs.
func TestMaterializeNeedsH(t *testing.T) {
	h := gen.RandomHypergraph(20, 10, 3, xrand.New(7))
	p := partition.BuildCSR(csr.FromH(h), 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Materialize on a CSR-backed partition did not panic")
		}
	}()
	p.Materialize(0)
}
