// Package partition splits a hypergraph into contiguous vertex-block
// shards for the sharded peeling engine (internal/core, sharded.go).
// Each shard owns a block of vertices and the hyperedges anchored in
// it; hyperedges whose members span several blocks are tracked as cut
// edges, and the non-owned vertices reachable through owned hyperedges
// form the shard's frontier.  Blocks are balanced by pin weight
// (1 + d(v) per vertex), so a shard's share of the incidence structure
// — not just its vertex count — is even.
package partition

import (
	"context"
	"fmt"
	"runtime"
	"slices"

	"hyperplex/internal/csr"
	"hyperplex/internal/failpoint"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/run"
)

// fpBuild fires at the start of every partition build, so chaos tests
// can fail or stall the construction before any shard exists.
var fpBuild = failpoint.Register("partition.build")

// buildCheckEvery bounds the work between two cancellation/budget
// checkpoints during a build.
const buildCheckEvery = 64

// Shard is one block of a Partition.  All IDs are the original
// hypergraph's; the old↔new maps of a materialized sub-hypergraph come
// from Materialize.
type Shard struct {
	Index    int
	Vertices []int32 // owned vertices (ascending: a contiguous block)
	Edges    []int32 // owned hyperedges (anchored at their first member)
	Frontier []int32 // non-owned vertices appearing in owned hyperedges
	Cut      []int32 // owned hyperedges with members outside the block
	Pins     int     // Σ d(f) over owned hyperedges
}

// Partition is a disjoint cover of a hypergraph's vertices and
// hyperedges by shards.  Every vertex has exactly one owner; every
// hyperedge is owned by the shard of its first (lowest-ID) member, so
// edge ownership follows vertex ownership deterministically.
//
// Exactly one of H and C backs the incidence structure: Build fills H,
// BuildCSR fills C.  The CSR backing serves the same ascending
// adjacency rows (csr.FromH preserves row order), so the two paths
// partition identically; it exists so a memory-mapped store file can
// be sharded without first rebuilding a Hypergraph in RAM.
type Partition struct {
	H           *hypergraph.Hypergraph
	C           *csr.CSR
	VertexOwner []int32 // shard index per vertex
	EdgeOwner   []int32 // shard index per hyperedge (empty edges → shard 0)
	Shards      []Shard
	CutEdges    []int32 // all hyperedges spanning more than one shard
}

// The accessors below dispatch to whichever backing is present, so the
// block balancing, assembly, and materialization code is written once.

func (p *Partition) numVertices() int {
	if p.C != nil {
		return p.C.NumVertices()
	}
	return p.H.NumVertices()
}

func (p *Partition) numEdges() int {
	if p.C != nil {
		return p.C.NumEdges()
	}
	return p.H.NumEdges()
}

func (p *Partition) numPins() int {
	if p.C != nil {
		return p.C.NumPins()
	}
	return p.H.NumPins()
}

func (p *Partition) vertexDegree(v int) int {
	if p.C != nil {
		return int(p.C.VertexDegree(int32(v)))
	}
	return p.H.VertexDegree(v)
}

func (p *Partition) edgeDegree(f int) int {
	if p.C != nil {
		return int(p.C.EdgeDegree(int32(f)))
	}
	return p.H.EdgeDegree(f)
}

func (p *Partition) edgeVertices(f int) []int32 {
	if p.C != nil {
		return p.C.EdgeVertices(int32(f))
	}
	return p.H.Vertices(f)
}

func (p *Partition) vertexEdges(v int) []int32 {
	if p.C != nil {
		return p.C.VertexEdges(int32(v))
	}
	return p.H.Edges(v)
}

// NumShards returns the number of shards.
func (p *Partition) NumShards() int { return len(p.Shards) }

// NormalizeShards applies the shared shard-count policy: requests ≤ 0
// select runtime.NumCPU(), and the count is clamped to the vertex
// count (at least one shard even for an empty hypergraph).
func NormalizeShards(shards, numVertices int) int {
	if shards <= 0 {
		shards = runtime.NumCPU()
	}
	if shards > numVertices {
		shards = numVertices
	}
	if shards < 1 {
		shards = 1
	}
	return shards
}

// Build partitions h into the requested number of shards (normalized
// by NormalizeShards).
func Build(h *hypergraph.Hypergraph, shards int) *Partition {
	p, err := BuildCtx(context.Background(), h, shards)
	if err != nil {
		// Only reachable through an armed failpoint: the background
		// context cannot be cancelled and carries no budget.
		panic(err)
	}
	return p
}

// BuildCtx is Build honoring cancellation, deadline and any run.Budget
// attached to ctx, checked at bounded intervals throughout the
// construction.  On any error it returns (nil, err).
func BuildCtx(ctx context.Context, h *hypergraph.Hypergraph, shards int) (*Partition, error) {
	return buildCtx(ctx, &Partition{H: h}, shards)
}

// BuildCSR partitions a bare CSR — typically the mapped arrays of a
// store file — into the requested number of shards.  The result has no
// Hypergraph backing (H is nil): Materialize is unavailable, but
// MaterializeCSR, RemoteEdges, and the descriptor round trip all work,
// which is everything the sharded peeler needs.
func BuildCSR(c *csr.CSR, shards int) *Partition {
	p, err := BuildCSRCtx(context.Background(), c, shards)
	if err != nil {
		// Only reachable through an armed failpoint: the background
		// context cannot be cancelled and carries no budget.
		panic(err)
	}
	return p
}

// BuildCSRCtx is BuildCSR honoring cancellation, deadline and any
// run.Budget attached to ctx.  On any error it returns (nil, err).
func BuildCSRCtx(ctx context.Context, c *csr.CSR, shards int) (*Partition, error) {
	return buildCtx(ctx, &Partition{C: c}, shards)
}

// buildCtx runs the shared block balancing over a Partition shell that
// already carries its backing (H or C).
func buildCtx(ctx context.Context, p *Partition, shards int) (*Partition, error) {
	meter := run.MeterFrom(ctx)
	// Entry checkpoint: an already-cancelled context fails before any
	// work, even on inputs too small to reach a periodic checkpoint.
	if err := run.Tick(ctx, meter, 0); err != nil {
		return nil, err
	}
	if err := failpoint.Inject(fpBuild); err != nil {
		return nil, fmt.Errorf("partition: build: %w", err)
	}
	nv, ne := p.numVertices(), p.numEdges()
	shards = NormalizeShards(shards, nv)

	p.VertexOwner = make([]int32, nv)
	p.EdgeOwner = make([]int32, ne)
	p.Shards = make([]Shard, shards)
	for s := range p.Shards {
		p.Shards[s].Index = s
	}

	// Assign contiguous vertex blocks greedily by pin weight.  Closing
	// a block when the remaining vertices exactly match the remaining
	// shards guarantees every shard owns at least one vertex (shards ≤
	// nv after normalization keeps that reachable).
	target := (nv + p.numPins() + shards - 1) / shards
	s, acc := 0, 0
	for v := 0; v < nv; v++ {
		if v%buildCheckEvery == 0 {
			if err := run.Tick(ctx, meter, buildCheckEvery); err != nil {
				return nil, err
			}
		}
		p.VertexOwner[v] = int32(s)
		p.Shards[s].Vertices = append(p.Shards[s].Vertices, int32(v))
		acc += 1 + p.vertexDegree(v)
		if rem := shards - s - 1; rem > 0 && (acc >= target || nv-v-1 == rem) {
			s++
			acc = 0
		}
	}
	if err := p.assemble(ctx, meter); err != nil {
		return nil, err
	}
	return p, nil
}

// Desc is a serializable shard descriptor: one contiguous owned vertex
// block, identified by its first vertex and length.  A []Desc is the
// whole partition in wire-ready form — a coordinator computes the
// balanced blocks once and ships descriptors, and every worker rebuilds
// the identical Partition with FromDescs regardless of the balancing
// heuristic's inputs.
type Desc struct {
	First int32 // first owned vertex ID
	Count int32 // owned vertex count
}

// Descs returns the partition's shard descriptors, in shard order.
func (p *Partition) Descs() []Desc {
	out := make([]Desc, len(p.Shards))
	for s := range p.Shards {
		sh := &p.Shards[s]
		out[s].Count = csr.MustInt32(len(sh.Vertices))
		if len(sh.Vertices) > 0 {
			out[s].First = sh.Vertices[0]
		}
	}
	return out
}

// FromDescs rebuilds a Partition of h from shard descriptors.
func FromDescs(h *hypergraph.Hypergraph, descs []Desc) *Partition {
	p, err := FromDescsCtx(context.Background(), h, descs)
	if err != nil {
		// Unreachable for descriptors produced by Descs on the same
		// hypergraph under a background context; invalid wire input must
		// go through FromDescsCtx.
		panic(err)
	}
	return p
}

// FromDescsCtx is FromDescs honoring cancellation, deadline and any
// run.Budget attached to ctx.  The descriptors must cover h's vertices
// exactly with contiguous, ascending, non-empty blocks (except that a
// vertexless hypergraph is described by a single empty block); anything
// else — including descriptors from another hypergraph — returns an
// error, so a worker can reject a corrupt or mismatched assignment
// instead of building a partition that silently disagrees with the
// coordinator's.
func FromDescsCtx(ctx context.Context, h *hypergraph.Hypergraph, descs []Desc) (*Partition, error) {
	meter := run.MeterFrom(ctx)
	if err := run.Tick(ctx, meter, 0); err != nil {
		return nil, err
	}
	if err := failpoint.Inject(fpBuild); err != nil {
		return nil, fmt.Errorf("partition: build from descriptors: %w", err)
	}
	nv, ne := h.NumVertices(), h.NumEdges()
	if len(descs) == 0 {
		return nil, fmt.Errorf("partition: no shard descriptors")
	}
	p := &Partition{
		H:           h,
		VertexOwner: make([]int32, nv),
		EdgeOwner:   make([]int32, ne),
		Shards:      make([]Shard, len(descs)),
	}
	next := int32(0)
	for s, d := range descs {
		p.Shards[s].Index = s
		if d.First != next || d.Count < 0 || int(next)+int(d.Count) > nv {
			return nil, fmt.Errorf("partition: shard %d descriptor [%d,+%d) does not continue the block cover at %d of %d vertices",
				s, d.First, d.Count, next, nv)
		}
		if d.Count == 0 && nv > 0 {
			return nil, fmt.Errorf("partition: shard %d descriptor is empty", s)
		}
		for i := int32(0); i < d.Count; i++ {
			v := next + i
			p.VertexOwner[v] = int32(s)
			p.Shards[s].Vertices = append(p.Shards[s].Vertices, v)
		}
		next += d.Count
		if err := run.Tick(ctx, meter, int64(d.Count)+1); err != nil {
			return nil, err
		}
	}
	if int(next) != nv {
		return nil, fmt.Errorf("partition: descriptors cover %d of %d vertices", next, nv)
	}
	if err := p.assemble(ctx, meter); err != nil {
		return nil, err
	}
	return p, nil
}

// assemble derives the ownership-dependent structure — edge anchors,
// cut edges, frontiers — from an already-filled vertex block
// assignment.
func (p *Partition) assemble(ctx context.Context, meter *run.Meter) error {
	nv, ne := p.numVertices(), p.numEdges()

	// Anchor each hyperedge at its first member and record cut edges.
	for f := 0; f < ne; f++ {
		if f%buildCheckEvery == 0 {
			if err := run.Tick(ctx, meter, buildCheckEvery); err != nil {
				return err
			}
		}
		members := p.edgeVertices(f)
		owner := int32(0)
		if len(members) > 0 {
			owner = p.VertexOwner[members[0]]
		}
		p.EdgeOwner[f] = owner
		sh := &p.Shards[owner]
		sh.Edges = append(sh.Edges, int32(f))
		sh.Pins += len(members)
		for _, v := range members {
			if p.VertexOwner[v] != owner {
				sh.Cut = append(sh.Cut, int32(f))
				p.CutEdges = append(p.CutEdges, int32(f))
				break
			}
		}
	}

	// Collect each shard's frontier from its cut edges.  One shard is
	// fully processed before the next, so frontierMark[v] — the last
	// shard that recorded v — deduplicates within a shard while still
	// letting v appear on several shards' frontiers.
	frontierMark := make([]int32, nv)
	for v := range frontierMark {
		frontierMark[v] = -1
	}
	for s := range p.Shards {
		// Per-shard checkpoint: a shard with no cut edges would
		// otherwise pass through the loop without one.
		if err := run.Tick(ctx, meter, 1); err != nil {
			return err
		}
		sh := &p.Shards[s]
		for i, f := range sh.Cut {
			if i%buildCheckEvery == 0 {
				if err := run.Tick(ctx, meter, buildCheckEvery); err != nil {
					return err
				}
			}
			for _, v := range p.edgeVertices(int(f)) {
				if p.VertexOwner[v] != int32(s) && frontierMark[v] != int32(s) {
					frontierMark[v] = int32(s)
					sh.Frontier = append(sh.Frontier, v)
				}
			}
		}
	}
	return nil
}

// Materialize builds the standalone sub-hypergraph of shard s: its
// owned hyperedges restricted to nothing (owned and frontier vertices
// are all kept, so owned hyperedges survive intact).  The returned
// maps give old-ID → new-ID for vertices and hyperedges, as
// hypergraph.Sub defines them.
func (p *Partition) Materialize(s int) (*hypergraph.Hypergraph, map[int]int, map[int]int) {
	if p.H == nil {
		//hyperplexvet:ignore nopanic API misuse invariant: a BuildCSR partition has no named-vertex backing to materialize from, and the signature has no error slot
		panic("partition: Materialize needs a Hypergraph backing; a BuildCSR partition only supports MaterializeCSR")
	}
	sh := &p.Shards[s]
	keepV := make([]bool, p.H.NumVertices())
	for _, v := range sh.Vertices {
		keepV[v] = true
	}
	for _, v := range sh.Frontier {
		keepV[v] = true
	}
	keepF := make([]bool, p.H.NumEdges())
	for _, f := range sh.Edges {
		keepF[f] = true
	}
	return p.H.Sub(keepV, keepF)
}

// MaterializeCSR builds shard s's block directly in the flat-array
// kernel substrate: a csr.CSR over the shard's owned-plus-frontier
// vertices and owned hyperedges, with local IDs assigned in ascending
// original-ID order (the same numbering hypergraph.Sub produces).  The
// CSR's VertexID and EdgeID arrays carry the original IDs, so the
// block's peel results and any exchange deltas are flat int32 slices
// mapping straight back to the full hypergraph — no maps, no name
// tables.  Compared to Materialize it skips the builder layer
// entirely: no vertex/edge names are synthesized, and construction is
// O(block pins) with a binary search per pin.
func (p *Partition) MaterializeCSR(s int) *csr.CSR {
	sh := &p.Shards[s]
	// Local vertex IDs: the sorted union of owned (already ascending)
	// and frontier vertices; the two sets are disjoint and internally
	// duplicate-free, so the union is strictly ascending after sorting.
	keep := make([]int32, 0, len(sh.Vertices)+len(sh.Frontier))
	keep = append(keep, sh.Vertices...)
	keep = append(keep, sh.Frontier...)
	slices.Sort(keep)
	nv, ne := len(keep), len(sh.Edges)

	eOff := make([]int32, ne+1)
	for i, f := range sh.Edges {
		eOff[i+1] = eOff[i] + int32(p.edgeDegree(int(f)))
	}
	// Scatter the local IDs into a global-indexed lookup: O(|V|) zeroed
	// allocation plus O(1) per pin beats a binary search per pin.
	local := make([]int32, p.numVertices())
	for j, v := range keep {
		local[v] = int32(j)
	}
	eAdj := make([]int32, eOff[ne])
	for i, f := range sh.Edges {
		row := eAdj[eOff[i]:eOff[i]]
		for _, v := range p.edgeVertices(int(f)) {
			// Owned hyperedges lose no members: every member is owned or
			// on the frontier, so the lookup always hits.
			row = append(row, local[v])
		}
	}

	// Vertex side by counting sort over the local pins; edges are
	// appended in ascending local ID, so each row comes out sorted.
	vOff := make([]int32, nv+1)
	for _, x := range eAdj {
		vOff[x+1]++
	}
	for v := 0; v < nv; v++ {
		vOff[v+1] += vOff[v]
	}
	vAdj := make([]int32, len(eAdj))
	cursor := append([]int32(nil), vOff[:nv]...)
	for fi := 0; fi < ne; fi++ {
		for _, x := range eAdj[eOff[fi]:eOff[fi+1]] {
			vAdj[cursor[x]] = int32(fi)
			cursor[x]++
		}
	}
	return &csr.CSR{
		VOff:     vOff,
		VAdj:     vAdj,
		EOff:     eOff,
		EAdj:     eAdj,
		VertexID: keep,
		EdgeID:   append([]int32(nil), sh.Edges...),
	}
}

// RemoteEdges returns the remote-incidence rows of shard s: for the
// i-th owned vertex (ascending, matching Shards[s].Vertices),
// adj[off[i]:off[i+1]] lists the hyperedges incident to it that are
// owned by other shards, as ascending original IDs.  These rows are
// the complement of the owned rows in MaterializeCSR's block — a
// vertex's block degree plus its remote row length is its full degree
// — so a shard-local peel loop can notify foreign hyperedges of a
// retired vertex without consulting the full hypergraph.
func (p *Partition) RemoteEdges(s int) (off, adj []int32) {
	sh := &p.Shards[s]
	owner := int32(s)
	off = make([]int32, len(sh.Vertices)+1)
	total := int32(0)
	for i, v := range sh.Vertices {
		for _, f := range p.vertexEdges(int(v)) {
			if p.EdgeOwner[f] != owner {
				total++
			}
		}
		off[i+1] = total
	}
	adj = make([]int32, total)
	k := 0
	for _, v := range sh.Vertices {
		for _, f := range p.vertexEdges(int(v)) {
			if p.EdgeOwner[f] != owner {
				adj[k] = f
				k++
			}
		}
	}
	return off, adj
}
