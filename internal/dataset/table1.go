package dataset

import (
	"fmt"

	"hyperplex/internal/gen"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/mmio"
)

// Table1Row is one row of the paper's Table 1: the structural
// statistics of a hypergraph and its maximum core.
type Table1Row struct {
	Name       string
	NumV       int
	NumF       int
	Pins       int // |E|
	MaxVDeg    int // Δ_V
	MaxFDeg    int // Δ_F
	MaxDeg2F   int // Δ₂,F
	MaxCoreK   int
	CoreV      int
	CoreF      int
	ElapsedSec float64
}

// Header returns the column header matching the paper's table.
func Table1Header() string {
	return fmt.Sprintf("%-10s %8s %8s %9s %5s %5s %7s %8s %8s %8s %9s",
		"hypergraph", "|V|", "|F|", "|E|", "ΔV", "ΔF", "Δ2,F", "max core", "core|V|", "core|F|", "time")
}

// Format renders a row.
func (r Table1Row) Format() string {
	return fmt.Sprintf("%-10s %8d %8d %9d %5d %5d %7d %8d %8d %8d %8.3fs",
		r.Name, r.NumV, r.NumF, r.Pins, r.MaxVDeg, r.MaxFDeg, r.MaxDeg2F, r.MaxCoreK, r.CoreV, r.CoreF, r.ElapsedSec)
}

// Table1Hypergraphs generates the hypergraphs of Table 1: the Cellzome
// instance followed by the five synthetic Matrix Market stand-ins.
// short shrinks the matrices for quick runs.
func Table1Hypergraphs(short bool) (names []string, hs []*hypergraph.Hypergraph) {
	cz := Cellzome()
	names = append(names, "Cellzome")
	hs = append(hs, cz.H)
	for _, spec := range gen.Table1Specs(short) {
		m := gen.SyntheticMatrix(spec)
		h, err := mmio.ToHypergraph(m)
		if err != nil {
			//hyperplexvet:ignore nopanic SyntheticMatrix emits well-formed matrices by construction; failure is a build-time bug
			panic("dataset: Table1Hypergraphs: " + err.Error())
		}
		names = append(names, spec.Name)
		hs = append(hs, h)
	}
	return names, hs
}
