package dataset

import (
	"fmt"

	"hyperplex/internal/gen"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/xrand"
)

// SyntheticProteome generates a protein-complex hypergraph at an
// arbitrary scale with Cellzome-like shape: power-law protein degrees
// (γ ≈ 2.5, mostly degree 1), complex sizes spread over a heavy-tailed
// range, wired by the bipartite configuration model, plus a planted
// dense block so the maximum core is non-trivial.  This answers the
// paper's closing motivation — "larger proteomic studies, e.g., ones
// that scale to the human proteome ... will require high performance
// algorithms and software" — by supplying inputs at any size for the
// scaling experiments (X5).
//
// nProteins and nComplexes set the scale (the human proteome is
// roughly 20000 proteins; Cellzome was 1361/232).  The same seed
// always yields the same hypergraph.
func SyntheticProteome(nProteins, nComplexes int, seed uint64) *hypergraph.Hypergraph {
	if nProteins < 100 || nComplexes < 10 {
		//hyperplexvet:ignore nopanic documented precondition on a generator called with compile-time constants
		panic("dataset: SyntheticProteome needs at least 100 proteins and 10 complexes")
	}
	rng := xrand.New(seed)

	// Planted core block: ~0.5 % of complexes, each over a pool of
	// core proteins with ≥6 memberships.
	coreComplexes := nComplexes / 50
	if coreComplexes < 8 {
		coreComplexes = 8
	}
	coreProteins := coreComplexes * 3 / 4
	if coreProteins < 12 {
		coreProteins = 12 // must exceed the largest core-complex size (≤ 10)
	}

	// Degree sequence for the non-core proteins.
	rest := nProteins - coreProteins
	vDeg := gen.PowerLawDegreeSequence(rest, 2.5, 1, 40, rng)
	sumV := 0
	for _, d := range vDeg {
		sumV += d
	}

	// Complex size sequence for the non-core complexes: heavy-tailed
	// between 3 and 80, scaled to consume the vertex pins.  The shape
	// must be feasible: every complex needs ≥ 2 members and no complex
	// can exceed the protein count.
	restC := nComplexes - coreComplexes
	if 2*restC > sumV {
		//hyperplexvet:ignore nopanic documented precondition on a generator called with compile-time constants
		panic(fmt.Sprintf("dataset: SyntheticProteome shape infeasible: %d complexes need ≥ %d pins but the degree sequence supplies only %d (too many complexes for too few proteins)",
			restC, 2*restC, sumV))
	}
	eSize := make([]int, restC)
	sumE := 0
	for i := range eSize {
		eSize[i] = 2 + rng.PowerLawInt(2.0, 1, 78)
		sumE += eSize[i]
	}
	// Balance the two sums by trimming or padding the edge sizes.
	for sumE > sumV {
		i := rng.Intn(restC)
		if eSize[i] > 2 {
			eSize[i]--
			sumE--
		}
	}
	for sumE < sumV {
		i := rng.Intn(restC)
		if eSize[i] < rest {
			eSize[i]++
			sumE++
		}
	}

	edges, err := gen.BipartiteConfiguration(vDeg, eSize, rng)
	if err != nil {
		//hyperplexvet:ignore nopanic the sequences were balanced above, so a configuration failure is a generator bug
		panic("dataset: SyntheticProteome: " + err.Error())
	}

	b := hypergraph.NewBuilder()
	for v := 0; v < rest; v++ {
		b.AddVertex(fmt.Sprintf("P%06d", v))
	}
	corePIDs := make([]int32, coreProteins)
	for i := range corePIDs {
		corePIDs[i] = int32(b.AddVertex(fmt.Sprintf("CORE%04d", i)))
	}
	for f, members := range edges {
		b.AddEdgeIDs(fmt.Sprintf("CPLX%05d", f), members)
	}
	// Core complexes: 6-10 core proteins each plus a few peripherals.
	for f := 0; f < coreComplexes; f++ {
		size := 6 + rng.Intn(5)
		perm := rng.Perm(coreProteins)
		members := make([]int32, 0, size+2)
		for _, i := range perm[:size] {
			members = append(members, corePIDs[i])
		}
		members = append(members, int32(rng.Intn(rest)), int32(rng.Intn(rest)))
		b.AddEdgeIDs(fmt.Sprintf("CORECPLX%04d", f), members)
	}
	return b.MustBuild()
}
