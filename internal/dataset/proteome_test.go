package dataset

import (
	"testing"

	"hyperplex/internal/core"
	"hyperplex/internal/stats"
)

func TestSyntheticProteome(t *testing.T) {
	h := SyntheticProteome(2000, 300, 7)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.NumVertices() != 2000 || h.NumEdges() != 300 {
		t.Fatalf("shape: %v", h)
	}
	// Power-law-ish protein degrees.
	fit, err := stats.FitPowerLaw(stats.DegreeHistogram(h.VertexDegrees()))
	if err != nil {
		t.Fatal(err)
	}
	if fit.Gamma < 1.5 || fit.Gamma > 3.5 {
		t.Errorf("gamma = %.2f, want Cellzome-like", fit.Gamma)
	}
	// A non-trivial dense core exists (the planted block guarantees
	// ≥ 6-core unless the configuration model out-densifies it, which
	// also yields ≥ 6).
	mc := core.MaxCore(h)
	if mc.K < 5 {
		t.Errorf("max core k = %d, want a dense nucleus", mc.K)
	}
}

func TestSyntheticProteomeDeterministic(t *testing.T) {
	a := SyntheticProteome(1500, 200, 3)
	b := SyntheticProteome(1500, 200, 3)
	if a.NumPins() != b.NumPins() {
		t.Fatal("same seed differs")
	}
	c := SyntheticProteome(1500, 200, 4)
	if a.NumPins() == c.NumPins() {
		t.Log("different seeds gave equal pin counts (possible but unlikely)")
	}
}

func TestSyntheticProteomePanicsOnTiny(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("tiny instance accepted")
		}
	}()
	SyntheticProteome(10, 2, 1)
}

func TestSyntheticProteomeInfeasibleShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("infeasible shape (more complex pins than protein pins) accepted")
		}
	}()
	SyntheticProteome(100, 500, 1)
}
