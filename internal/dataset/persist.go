package dataset

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hyperplex/internal/bio"
	"hyperplex/internal/failpoint"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/run"
)

// fpLoad fires once per file opened by LoadInstanceCtx, so chaos tests
// can fault any of the four loads of a saved instance.
var fpLoad = failpoint.Register("dataset.load")

// The on-disk layout of a saved instance:
//
//	DIR/hypergraph.txt    native text format
//	DIR/baits.txt         one protein name per line; reported baits
//	                      marked with a trailing " *"
//	DIR/annotations.json  per-protein annotation records
//	DIR/meta.json         core membership and singleton complexes
//
// Everything is name-keyed so the files survive vertex renumbering.

type annotationRecord struct {
	Known     bool `json:"known"`
	Essential bool `json:"essential"`
	Homolog   bool `json:"homolog"`
}

type metaRecord struct {
	CoreProteins  []string `json:"coreProteins"`
	CoreComplexes []string `json:"coreComplexes"`
	Singletons    []string `json:"singletonComplexes"`
}

// Save writes the instance to dir (created if needed).
func (inst *Instance) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	h := inst.H
	// Hypergraph.
	hf, err := os.Create(filepath.Join(dir, "hypergraph.txt"))
	if err != nil {
		return err
	}
	if err := hypergraph.WriteText(hf, h); err != nil {
		hf.Close()
		return err
	}
	if err := hf.Close(); err != nil {
		return err
	}
	// Baits.
	bf, err := os.Create(filepath.Join(dir, "baits.txt"))
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(bf)
	reported := make(map[int]bool, len(inst.BaitsReported))
	for _, v := range inst.BaitsReported {
		reported[v] = true
	}
	for _, v := range inst.BaitsUsed {
		mark := ""
		if reported[v] {
			mark = " *"
		}
		fmt.Fprintf(bw, "%s%s\n", h.VertexName(v), mark)
	}
	if err := bw.Flush(); err != nil {
		bf.Close()
		return err
	}
	if err := bf.Close(); err != nil {
		return err
	}
	// Annotations.
	ann := make(map[string]annotationRecord, h.NumVertices())
	for v := 0; v < h.NumVertices(); v++ {
		ann[h.VertexName(v)] = annotationRecord{
			Known:     inst.Ann.Known[v],
			Essential: inst.Ann.Essential[v],
			Homolog:   inst.Ann.Homolog[v],
		}
	}
	if err := writeJSON(filepath.Join(dir, "annotations.json"), ann); err != nil {
		return err
	}
	// Meta.
	meta := metaRecord{}
	for v, in := range inst.CoreV {
		if in {
			meta.CoreProteins = append(meta.CoreProteins, h.VertexName(v))
		}
	}
	for f, in := range inst.CoreF {
		if in {
			meta.CoreComplexes = append(meta.CoreComplexes, h.EdgeName(f))
		}
	}
	for _, f := range inst.Singletons {
		meta.Singletons = append(meta.Singletons, h.EdgeName(f))
	}
	return writeJSON(filepath.Join(dir, "meta.json"), meta)
}

func writeJSON(path string, v interface{}) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadInstance reads an instance saved by Save.  The Published targets
// are re-attached (they are constants of the paper, not data).
func LoadInstance(dir string) (*Instance, error) {
	return LoadInstanceCtx(context.Background(), dir)
}

// LoadInstanceCtx is LoadInstance honoring cancellation, deadline and
// any run.Budget attached to ctx: the checkpoint runs before each of
// the four files is opened, and the hypergraph itself is read with
// ReadTextCtx.  On any error it returns (nil, err).
func LoadInstanceCtx(ctx context.Context, dir string) (*Instance, error) {
	meter := run.MeterFrom(ctx)
	checkpoint := func() error {
		if err := failpoint.Inject(fpLoad); err != nil {
			return err
		}
		return run.Tick(ctx, meter, 1)
	}
	if err := checkpoint(); err != nil {
		return nil, err
	}
	hf, err := os.Open(filepath.Join(dir, "hypergraph.txt"))
	if err != nil {
		return nil, err
	}
	h, err := hypergraph.ReadTextCtx(ctx, hf)
	hf.Close()
	if err != nil {
		return nil, err
	}
	inst := &Instance{H: h, Published: PublishedCellzome()}

	// Baits.
	if err := checkpoint(); err != nil {
		return nil, err
	}
	bf, err := os.Open(filepath.Join(dir, "baits.txt"))
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(bf)
	for sc.Scan() {
		// Each bait line is charged: the file length is unbounded input.
		if err := run.Tick(ctx, meter, 1); err != nil {
			bf.Close()
			return nil, err
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		name, marked := strings.CutSuffix(line, " *")
		v, ok := h.VertexID(strings.TrimSpace(name))
		if !ok {
			bf.Close()
			return nil, fmt.Errorf("dataset: bait %q not in hypergraph", name)
		}
		inst.BaitsUsed = append(inst.BaitsUsed, v)
		if marked {
			inst.BaitsReported = append(inst.BaitsReported, v)
		}
	}
	if err := sc.Err(); err != nil {
		bf.Close()
		return nil, err
	}
	bf.Close()

	// Annotations.
	if err := checkpoint(); err != nil {
		return nil, err
	}
	var ann map[string]annotationRecord
	if err := readJSON(filepath.Join(dir, "annotations.json"), &ann); err != nil {
		return nil, err
	}
	inst.Ann = &bio.AnnotationDB{
		Known:     make([]bool, h.NumVertices()),
		Essential: make([]bool, h.NumVertices()),
		Homolog:   make([]bool, h.NumVertices()),
	}
	for name, rec := range ann {
		v, ok := h.VertexID(name)
		if !ok {
			return nil, fmt.Errorf("dataset: annotated protein %q not in hypergraph", name)
		}
		inst.Ann.Known[v] = rec.Known
		inst.Ann.Essential[v] = rec.Essential
		inst.Ann.Homolog[v] = rec.Homolog
	}

	// Meta.
	if err := checkpoint(); err != nil {
		return nil, err
	}
	var meta metaRecord
	if err := readJSON(filepath.Join(dir, "meta.json"), &meta); err != nil {
		return nil, err
	}
	inst.CoreV = make([]bool, h.NumVertices())
	for _, name := range meta.CoreProteins {
		v, ok := h.VertexID(name)
		if !ok {
			return nil, fmt.Errorf("dataset: core protein %q not in hypergraph", name)
		}
		inst.CoreV[v] = true
	}
	inst.CoreF = make([]bool, h.NumEdges())
	for _, name := range meta.CoreComplexes {
		f, ok := h.EdgeID(name)
		if !ok {
			return nil, fmt.Errorf("dataset: core complex %q not in hypergraph", name)
		}
		inst.CoreF[f] = true
	}
	for _, name := range meta.Singletons {
		f, ok := h.EdgeID(name)
		if !ok {
			return nil, fmt.Errorf("dataset: singleton complex %q not in hypergraph", name)
		}
		inst.Singletons = append(inst.Singletons, f)
	}
	return inst, nil
}

func readJSON(path string, v interface{}) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}
