package dataset

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"hyperplex/internal/bio"
	"hyperplex/internal/failpoint"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/run"
	"hyperplex/internal/store"
)

// fpLoad fires once per file opened by LoadInstanceCtx, so chaos tests
// can fault any of the four loads of a saved instance.
var fpLoad = failpoint.Register("dataset.load")

// The on-disk layout of a saved instance:
//
//	DIR/hypergraph.txt    native text format (Save), or
//	DIR/hypergraph.store  binary store file (SaveStore)
//	DIR/baits.txt         one protein name per line; reported baits
//	                      marked with a trailing " *"
//	DIR/annotations.json  per-protein annotation records
//	DIR/meta.json         core membership and singleton complexes
//
// Everything is name-keyed so the files survive vertex renumbering.
// LoadInstance prefers hypergraph.store when both are present.

type annotationRecord struct {
	Known     bool `json:"known"`
	Essential bool `json:"essential"`
	Homolog   bool `json:"homolog"`
}

type metaRecord struct {
	CoreProteins  []string `json:"coreProteins"`
	CoreComplexes []string `json:"coreComplexes"`
	Singletons    []string `json:"singletonComplexes"`
}

// atomicWrite streams the output of write into path via a same-
// directory temp file that is fsynced and renamed into place, so a
// crash mid-write leaves either the old file or the complete new one —
// never a torn file under the final name.  On any error the temp file
// is removed and path is untouched.
func atomicWrite(path string, write func(w io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("dataset: create temp for %s: %w", path, err)
	}
	finalized := false
	defer func() {
		if !finalized {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriter(tmp)
	if err := write(bw); err != nil {
		return fmt.Errorf("dataset: write %s: %w", path, err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("dataset: write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("dataset: sync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("dataset: close %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("dataset: rename into %s: %w", path, err)
	}
	finalized = true
	dir, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("dataset: sync dir of %s: %w", path, err)
	}
	serr := dir.Sync()
	if cerr := dir.Close(); serr == nil {
		serr = cerr
	}
	if serr != nil {
		return fmt.Errorf("dataset: sync dir of %s: %w", path, serr)
	}
	return nil
}

// Save writes the instance to dir (created if needed), with the
// hypergraph in the native text format.  Every file is written
// atomically (fsync-and-rename), so an interrupted Save never leaves a
// torn file behind.
func (inst *Instance) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dataset: create %s: %w", dir, err)
	}
	if err := atomicWrite(filepath.Join(dir, "hypergraph.txt"), func(w io.Writer) error {
		return hypergraph.WriteText(w, inst.H)
	}); err != nil {
		return err
	}
	return inst.saveAux(dir)
}

// SaveStore is Save with the hypergraph written as a binary store file
// (DIR/hypergraph.store) instead of text, so LoadInstance can map it
// back without rebuilding the adjacency in RAM.  The auxiliary files
// are identical to Save's.
func (inst *Instance) SaveStore(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dataset: create %s: %w", dir, err)
	}
	if err := store.WriteH(filepath.Join(dir, "hypergraph.store"), inst.H); err != nil {
		return err
	}
	return inst.saveAux(dir)
}

// saveAux writes the three name-keyed sidecar files shared by Save and
// SaveStore.
func (inst *Instance) saveAux(dir string) error {
	h := inst.H
	// Baits.
	if err := atomicWrite(filepath.Join(dir, "baits.txt"), func(w io.Writer) error {
		reported := make(map[int]bool, len(inst.BaitsReported))
		for _, v := range inst.BaitsReported {
			reported[v] = true
		}
		for _, v := range inst.BaitsUsed {
			mark := ""
			if reported[v] {
				mark = " *"
			}
			if _, err := fmt.Fprintf(w, "%s%s\n", h.VertexName(v), mark); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	// Annotations.
	ann := make(map[string]annotationRecord, h.NumVertices())
	for v := 0; v < h.NumVertices(); v++ {
		ann[h.VertexName(v)] = annotationRecord{
			Known:     inst.Ann.Known[v],
			Essential: inst.Ann.Essential[v],
			Homolog:   inst.Ann.Homolog[v],
		}
	}
	if err := writeJSON(filepath.Join(dir, "annotations.json"), ann); err != nil {
		return err
	}
	// Meta.
	meta := metaRecord{}
	for v, in := range inst.CoreV {
		if in {
			meta.CoreProteins = append(meta.CoreProteins, h.VertexName(v))
		}
	}
	for f, in := range inst.CoreF {
		if in {
			meta.CoreComplexes = append(meta.CoreComplexes, h.EdgeName(f))
		}
	}
	for _, f := range inst.Singletons {
		meta.Singletons = append(meta.Singletons, h.EdgeName(f))
	}
	return writeJSON(filepath.Join(dir, "meta.json"), meta)
}

func writeJSON(path string, v interface{}) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("dataset: encode %s: %w", path, err)
	}
	return atomicWrite(path, func(w io.Writer) error {
		_, err := w.Write(append(data, '\n'))
		return err
	})
}

// LoadInstance reads an instance saved by Save or SaveStore.  The
// Published targets are re-attached (they are constants of the paper,
// not data).
func LoadInstance(dir string) (*Instance, error) {
	return LoadInstanceCtx(context.Background(), dir)
}

// loadHypergraph reads DIR/hypergraph.store when present (decoded
// without mmap so the arrays outlive the handle), falling back to the
// text format otherwise.
func loadHypergraph(ctx context.Context, dir string) (*hypergraph.Hypergraph, error) {
	storePath := filepath.Join(dir, "hypergraph.store")
	if _, err := os.Stat(storePath); err == nil {
		st, err := store.OpenCtx(ctx, storePath, store.Options{NoMmap: true})
		if err != nil {
			return nil, err
		}
		h, err := st.H()
		if cerr := st.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: load %s: %w", storePath, err)
		}
		return h, nil
	}
	hf, err := os.Open(filepath.Join(dir, "hypergraph.txt"))
	if err != nil {
		return nil, fmt.Errorf("dataset: load hypergraph: %w", err)
	}
	h, err := hypergraph.ReadTextCtx(ctx, hf)
	if cerr := hf.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("dataset: load hypergraph: %w", cerr)
	}
	return h, err
}

// LoadInstanceCtx is LoadInstance honoring cancellation, deadline and
// any run.Budget attached to ctx: the checkpoint runs before each of
// the four files is opened, and the hypergraph itself is read with
// ReadTextCtx or the store loader.  On any error it returns (nil, err).
func LoadInstanceCtx(ctx context.Context, dir string) (*Instance, error) {
	meter := run.MeterFrom(ctx)
	checkpoint := func() error {
		if err := failpoint.Inject(fpLoad); err != nil {
			return err
		}
		return run.Tick(ctx, meter, 1)
	}
	if err := checkpoint(); err != nil {
		return nil, err
	}
	h, err := loadHypergraph(ctx, dir)
	if err != nil {
		return nil, err
	}
	inst := &Instance{H: h, Published: PublishedCellzome()}

	// Baits.
	if err := checkpoint(); err != nil {
		return nil, err
	}
	bf, err := os.Open(filepath.Join(dir, "baits.txt"))
	if err != nil {
		return nil, fmt.Errorf("dataset: load baits: %w", err)
	}
	sc := bufio.NewScanner(bf)
	for sc.Scan() {
		// Each bait line is charged: the file length is unbounded input.
		if err := run.Tick(ctx, meter, 1); err != nil {
			bf.Close()
			return nil, err
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		name, marked := strings.CutSuffix(line, " *")
		v, ok := h.VertexID(strings.TrimSpace(name))
		if !ok {
			bf.Close()
			return nil, fmt.Errorf("dataset: bait %q not in hypergraph", name)
		}
		inst.BaitsUsed = append(inst.BaitsUsed, v)
		if marked {
			inst.BaitsReported = append(inst.BaitsReported, v)
		}
	}
	if err := sc.Err(); err != nil {
		bf.Close()
		return nil, fmt.Errorf("dataset: load baits: %w", err)
	}
	bf.Close()

	// Annotations.
	if err := checkpoint(); err != nil {
		return nil, err
	}
	var ann map[string]annotationRecord
	if err := readJSON(filepath.Join(dir, "annotations.json"), &ann); err != nil {
		return nil, err
	}
	inst.Ann = &bio.AnnotationDB{
		Known:     make([]bool, h.NumVertices()),
		Essential: make([]bool, h.NumVertices()),
		Homolog:   make([]bool, h.NumVertices()),
	}
	for name, rec := range ann {
		v, ok := h.VertexID(name)
		if !ok {
			return nil, fmt.Errorf("dataset: annotated protein %q not in hypergraph", name)
		}
		inst.Ann.Known[v] = rec.Known
		inst.Ann.Essential[v] = rec.Essential
		inst.Ann.Homolog[v] = rec.Homolog
	}

	// Meta.
	if err := checkpoint(); err != nil {
		return nil, err
	}
	var meta metaRecord
	if err := readJSON(filepath.Join(dir, "meta.json"), &meta); err != nil {
		return nil, err
	}
	inst.CoreV = make([]bool, h.NumVertices())
	for _, name := range meta.CoreProteins {
		v, ok := h.VertexID(name)
		if !ok {
			return nil, fmt.Errorf("dataset: core protein %q not in hypergraph", name)
		}
		inst.CoreV[v] = true
	}
	inst.CoreF = make([]bool, h.NumEdges())
	for _, name := range meta.CoreComplexes {
		f, ok := h.EdgeID(name)
		if !ok {
			return nil, fmt.Errorf("dataset: core complex %q not in hypergraph", name)
		}
		inst.CoreF[f] = true
	}
	for _, name := range meta.Singletons {
		f, ok := h.EdgeID(name)
		if !ok {
			return nil, fmt.Errorf("dataset: singleton complex %q not in hypergraph", name)
		}
		inst.Singletons = append(inst.Singletons, f)
	}
	return inst, nil
}

func readJSON(path string, v interface{}) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("dataset: load %s: %w", path, err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("dataset: decode %s: %w", path, err)
	}
	return nil
}
