package dataset

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"hyperplex/internal/core"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	inst := Cellzome()
	if err := inst.Save(dir); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"hypergraph.txt", "baits.txt", "annotations.json", "meta.json"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing %s: %v", f, err)
		}
	}

	got, err := LoadInstance(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.H.NumVertices() != inst.H.NumVertices() || got.H.NumEdges() != inst.H.NumEdges() || got.H.NumPins() != inst.H.NumPins() {
		t.Fatalf("hypergraph shape changed: %v vs %v", got.H, inst.H)
	}
	if len(got.BaitsUsed) != len(inst.BaitsUsed) || len(got.BaitsReported) != len(inst.BaitsReported) {
		t.Errorf("baits: %d/%d vs %d/%d", len(got.BaitsUsed), len(got.BaitsReported), len(inst.BaitsUsed), len(inst.BaitsReported))
	}
	// Annotations survive by name.
	for v := 0; v < inst.H.NumVertices(); v++ {
		name := inst.H.VertexName(v)
		gv, ok := got.H.VertexID(name)
		if !ok {
			t.Fatalf("protein %q lost", name)
		}
		if got.Ann.Known[gv] != inst.Ann.Known[v] ||
			got.Ann.Essential[gv] != inst.Ann.Essential[v] ||
			got.Ann.Homolog[gv] != inst.Ann.Homolog[v] {
			t.Fatalf("annotations for %q changed", name)
		}
	}
	// The loaded core matches a fresh computation.
	mc := core.MaxCore(got.H)
	for v := range mc.VertexIn {
		if mc.VertexIn[v] != got.CoreV[v] {
			t.Fatalf("loaded CoreV disagrees with computed core at %s", got.H.VertexName(v))
		}
	}
	if len(got.Singletons) != len(inst.Singletons) {
		t.Errorf("singletons: %d vs %d", len(got.Singletons), len(inst.Singletons))
	}
}

func TestSaveStoreLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	inst := Cellzome()
	if err := inst.SaveStore(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "hypergraph.store")); err != nil {
		t.Fatalf("missing hypergraph.store: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "hypergraph.txt")); err == nil {
		t.Fatal("SaveStore also wrote hypergraph.txt")
	}
	got, err := LoadInstance(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.H.NumVertices() != inst.H.NumVertices() || got.H.NumEdges() != inst.H.NumEdges() || got.H.NumPins() != inst.H.NumPins() {
		t.Fatalf("hypergraph shape changed: %v vs %v", got.H, inst.H)
	}
	for v := 0; v < inst.H.NumVertices(); v++ {
		if got.H.VertexName(v) != inst.H.VertexName(v) {
			t.Fatalf("vertex %d renamed across store round trip", v)
		}
	}
	if len(got.BaitsUsed) != len(inst.BaitsUsed) || len(got.BaitsReported) != len(inst.BaitsReported) {
		t.Errorf("baits: %d/%d vs %d/%d", len(got.BaitsUsed), len(got.BaitsReported), len(inst.BaitsUsed), len(inst.BaitsReported))
	}
	// When both formats are present the store wins; plant a decoy text
	// file with a different shape to prove which one was read.
	if err := os.WriteFile(filepath.Join(dir, "hypergraph.txt"), []byte("decoy: A B\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	again, err := LoadInstance(dir)
	if err != nil {
		t.Fatal(err)
	}
	if again.H.NumVertices() != inst.H.NumVertices() {
		t.Fatal("LoadInstance preferred hypergraph.txt over hypergraph.store")
	}
}

func TestAtomicWritePartialFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := os.WriteFile(path, []byte("old contents\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk exploded")
	err := atomicWrite(path, func(w io.Writer) error {
		if _, err := io.WriteString(w, "half of the new conte"); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("atomicWrite error = %v, want wrapped %v", err, boom)
	}
	// The old file is untouched and the temp file is gone.
	b, rerr := os.ReadFile(path)
	if rerr != nil || string(b) != "old contents\n" {
		t.Fatalf("target file damaged by failed write: %q, %v", b, rerr)
	}
	entries, rerr := os.ReadDir(dir)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(entries) != 1 {
		t.Fatalf("failed atomicWrite littered the directory: %v", entries)
	}
}

func TestLoadInstanceErrors(t *testing.T) {
	if _, err := LoadInstance(t.TempDir()); err == nil {
		t.Error("loading an empty directory succeeded")
	}
	// Corrupt baits: unknown protein name.
	dir := t.TempDir()
	inst := Cellzome()
	if err := inst.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "baits.txt"), []byte("NOSUCHPROTEIN\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadInstance(dir); err == nil {
		t.Error("unknown bait accepted")
	}
}
