package dataset

import (
	"os"
	"path/filepath"
	"testing"

	"hyperplex/internal/core"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	inst := Cellzome()
	if err := inst.Save(dir); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"hypergraph.txt", "baits.txt", "annotations.json", "meta.json"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing %s: %v", f, err)
		}
	}

	got, err := LoadInstance(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.H.NumVertices() != inst.H.NumVertices() || got.H.NumEdges() != inst.H.NumEdges() || got.H.NumPins() != inst.H.NumPins() {
		t.Fatalf("hypergraph shape changed: %v vs %v", got.H, inst.H)
	}
	if len(got.BaitsUsed) != len(inst.BaitsUsed) || len(got.BaitsReported) != len(inst.BaitsReported) {
		t.Errorf("baits: %d/%d vs %d/%d", len(got.BaitsUsed), len(got.BaitsReported), len(inst.BaitsUsed), len(inst.BaitsReported))
	}
	// Annotations survive by name.
	for v := 0; v < inst.H.NumVertices(); v++ {
		name := inst.H.VertexName(v)
		gv, ok := got.H.VertexID(name)
		if !ok {
			t.Fatalf("protein %q lost", name)
		}
		if got.Ann.Known[gv] != inst.Ann.Known[v] ||
			got.Ann.Essential[gv] != inst.Ann.Essential[v] ||
			got.Ann.Homolog[gv] != inst.Ann.Homolog[v] {
			t.Fatalf("annotations for %q changed", name)
		}
	}
	// The loaded core matches a fresh computation.
	mc := core.MaxCore(got.H)
	for v := range mc.VertexIn {
		if mc.VertexIn[v] != got.CoreV[v] {
			t.Fatalf("loaded CoreV disagrees with computed core at %s", got.H.VertexName(v))
		}
	}
	if len(got.Singletons) != len(inst.Singletons) {
		t.Errorf("singletons: %d vs %d", len(got.Singletons), len(inst.Singletons))
	}
}

func TestLoadInstanceErrors(t *testing.T) {
	if _, err := LoadInstance(t.TempDir()); err == nil {
		t.Error("loading an empty directory succeeded")
	}
	// Corrupt baits: unknown protein name.
	dir := t.TempDir()
	inst := Cellzome()
	if err := inst.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "baits.txt"), []byte("NOSUCHPROTEIN\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadInstance(dir); err == nil {
		t.Error("unknown bait accepted")
	}
}
