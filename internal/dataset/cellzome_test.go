package dataset

import (
	"testing"

	"hyperplex/internal/bio"
	"hyperplex/internal/core"
	"hyperplex/internal/cover"
	"hyperplex/internal/stats"
)

// TestCellzomeCalibration pins the structural targets the synthetic
// instance must reproduce exactly, and logs the soft metrics
// (small-world numbers, power-law fit, cover sizes) for comparison.
func TestCellzomeCalibration(t *testing.T) {
	inst := Cellzome()
	h := inst.H
	want := inst.Published

	if err := h.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := h.NumVertices(); got != want.Proteins {
		t.Errorf("proteins = %d, want %d", got, want.Proteins)
	}
	if got := h.NumEdges(); got != want.Complexes {
		t.Errorf("complexes = %d, want %d", got, want.Complexes)
	}
	if got := h.MaxVertexDegree(); got != want.MaxProteinDegree {
		t.Errorf("max protein degree = %d, want %d", got, want.MaxProteinDegree)
	}
	adh1, ok := h.VertexID("ADH1")
	if !ok || h.VertexDegree(adh1) != want.MaxProteinDegree {
		t.Errorf("ADH1 degree = %d, want %d", h.VertexDegree(adh1), want.MaxProteinDegree)
	}
	deg1 := 0
	for v := 0; v < h.NumVertices(); v++ {
		if h.VertexDegree(v) == 1 {
			deg1++
		}
	}
	if deg1 != want.DegreeOneProteins {
		t.Errorf("degree-1 proteins = %d, want %d", deg1, want.DegreeOneProteins)
	}

	_, _, comps := stats.Components(h)
	if len(comps) != want.Components {
		t.Errorf("components = %d, want %d", len(comps), want.Components)
	}
	if comps[0].Vertices != want.LargestCompV || comps[0].Edges != want.LargestCompF {
		t.Errorf("largest component = %d/%d, want %d/%d",
			comps[0].Vertices, comps[0].Edges, want.LargestCompV, want.LargestCompF)
	}

	mc := core.MaxCore(h)
	if mc.K != want.MaxCoreK || mc.NumVertices != want.MaxCoreProteins || mc.NumEdges != want.MaxCoreComplexes {
		t.Errorf("max core = %d-core %d/%d, want %d-core %d/%d",
			mc.K, mc.NumVertices, mc.NumEdges, want.MaxCoreK, want.MaxCoreProteins, want.MaxCoreComplexes)
	}
	// The computed core must be the planted one.
	for v := range mc.VertexIn {
		if mc.VertexIn[v] != inst.CoreV[v] {
			t.Errorf("core membership of vertex %d (%s) = %v, planted %v", v, h.VertexName(v), mc.VertexIn[v], inst.CoreV[v])
			break
		}
	}

	if len(inst.Singletons) != want.SingletonComplexes {
		t.Errorf("singletons = %d, want %d", len(inst.Singletons), want.SingletonComplexes)
	}
	if len(inst.BaitsUsed) != want.BaitsUsed || len(inst.BaitsReported) != want.BaitsReported {
		t.Errorf("baits = %d used / %d reported, want %d / %d",
			len(inst.BaitsUsed), len(inst.BaitsReported), want.BaitsUsed, want.BaitsReported)
	}
	if err := inst.Ann.Validate(h); err != nil {
		t.Errorf("annotations: %v", err)
	}

	// ---- Soft (shape) metrics: logged, loosely bounded. ----
	sw := stats.SmallWorldStats(h, 0)
	t.Logf("diameter = %d (paper %d), avg path = %.3f (paper %.3f)",
		sw.Diameter, want.Diameter, sw.AvgPathLength, want.AvgPathLength)
	if sw.Diameter != want.Diameter {
		t.Errorf("diameter = %d, want %d", sw.Diameter, want.Diameter)
	}
	if sw.AvgPathLength < 2.4 || sw.AvgPathLength > 2.75 {
		t.Errorf("avg path %.3f too far from paper's %.3f", sw.AvgPathLength, want.AvgPathLength)
	}

	fit, err := stats.FitPowerLaw(stats.DegreeHistogram(h.VertexDegrees()))
	if err != nil {
		t.Fatalf("power-law fit: %v", err)
	}
	t.Logf("power law: %v (paper logC=%.3f γ=%.3f R²=%.3f)", fit, want.PowerLawLogC, want.PowerLawGamma, want.PowerLawR2)
	if fit.Gamma < 1.8 || fit.Gamma > 3.2 {
		t.Errorf("gamma %.3f too far from paper's %.3f", fit.Gamma, want.PowerLawGamma)
	}
	if fit.R2 < 0.85 {
		t.Errorf("R² %.3f too low (paper %.3f)", fit.R2, want.PowerLawR2)
	}

	// Cover shapes (§4.2).
	c1, err := cover.Greedy(h, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("greedy cover: %d proteins avg deg %.2f (paper %d @ %.1f)",
		c1.Size(), c1.AverageDegree(h), want.GreedyCoverSize, want.GreedyCoverAvgDeg)
	c2, err := cover.Greedy(h, cover.DegreeSquaredWeights(h))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("weighted cover: %d proteins avg deg %.2f (paper %d @ %.2f)",
		c2.Size(), c2.AverageDegree(h), want.WeightedCoverSize, want.WeightedCoverAvgD)
	req := cover.UniformRequirement(h, 2)
	for _, f := range inst.Singletons {
		req[f] = 0
	}
	c3, err := cover.GreedyMulticover(h, cover.DegreeSquaredWeights(h), req)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("2-multicover: %d proteins avg deg %.2f (paper %d @ %.2f)",
		c3.Size(), c3.AverageDegree(h), want.MulticoverSize, want.MulticoverAvgDeg)

	// Orderings the paper's argument depends on.
	if !(c1.Size() < c2.Size() && c2.Size() < c3.Size()) {
		t.Errorf("cover size ordering broken: %d, %d, %d", c1.Size(), c2.Size(), c3.Size())
	}
	if !(c2.AverageDegree(h) < c1.AverageDegree(h)) {
		t.Errorf("weighted cover should have lower average degree: %.2f vs %.2f",
			c2.AverageDegree(h), c1.AverageDegree(h))
	}

	// Bait statistics (§4.2 baseline).
	baitStats := bio.ComputeBaitStats(h, inst.BaitsReported)
	t.Logf("reported baits: %v (paper %d @ %.2f)", baitStats, want.BaitsReported, want.BaitAvgDegree)
	if baitStats.AverageDegree < 1.3 || baitStats.AverageDegree > 2.3 {
		t.Errorf("bait avg degree %.2f too far from paper's %.2f", baitStats.AverageDegree, want.BaitAvgDegree)
	}
	// The reported baits must cover every complex (each complex was
	// identified from some bait).
	inCover := make([]bool, h.NumVertices())
	for _, v := range inst.BaitsReported {
		inCover[v] = true
	}
	if err := cover.Verify(h, &cover.Cover{Vertices: inst.BaitsReported, InCover: inCover}, nil); err != nil {
		t.Errorf("reported baits do not cover all complexes: %v", err)
	}
}

func TestCellzomeDeterministic(t *testing.T) {
	a := Cellzome()
	b := Cellzome()
	if a.H.NumPins() != b.H.NumPins() {
		t.Fatal("two builds differ in pins")
	}
	for f := 0; f < a.H.NumEdges(); f++ {
		av, bv := a.H.Vertices(f), b.H.Vertices(f)
		if len(av) != len(bv) {
			t.Fatalf("edge %d differs", f)
		}
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("edge %d member %d differs", f, i)
			}
		}
	}
}

func TestDIPInstances(t *testing.T) {
	for _, gi := range []*GraphInstance{DIPYeast(), DIPFly()} {
		if gi.G.NumVertices() != gi.Published.Proteins {
			t.Errorf("%s: |V| = %d, want %d", gi.Published.Name, gi.G.NumVertices(), gi.Published.Proteins)
		}
		k, in := core.GraphMaxCore(gi.G)
		if k != gi.Published.MaxCoreK {
			t.Errorf("%s: max core k = %d, want %d", gi.Published.Name, k, gi.Published.MaxCoreK)
		}
		n := 0
		for _, b := range in {
			if b {
				n++
			}
		}
		if n != gi.Published.CoreSize {
			t.Errorf("%s: core size = %d, want %d", gi.Published.Name, n, gi.Published.CoreSize)
		}
	}
}

func TestTable1Hypergraphs(t *testing.T) {
	names, hs := Table1Hypergraphs(true)
	if len(names) != 6 || len(hs) != 6 {
		t.Fatalf("rows = %d", len(names))
	}
	if names[0] != "Cellzome" {
		t.Errorf("first row = %q", names[0])
	}
	for i, h := range hs {
		if err := h.Validate(); err != nil {
			t.Errorf("%s: %v", names[i], err)
		}
	}
}
