// Package dataset builds the calibrated synthetic instances standing
// in for the paper's datasets: the Cellzome yeast protein-complex
// hypergraph (Gavin et al. 2002), the DIP yeast and drosophila
// protein-interaction graphs, and the Matrix Market suite of Table 1.
// Every instance is generated deterministically and validated against
// the published structural targets by the package tests; DESIGN.md
// documents why each substitution preserves the behaviour the paper
// measures.
package dataset

import (
	"fmt"
	"sort"

	"hyperplex/internal/bio"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/xrand"
)

// CellzomeTargets records the published numbers the synthetic instance
// is calibrated to (§2–§4 of the paper).
type CellzomeTargets struct {
	Proteins           int     // 1361 proteins in the study
	Complexes          int     // 232 complexes
	Components         int     // 33 connected components
	LargestCompV       int     // 1263 proteins in the largest component
	LargestCompF       int     // 99 complexes in the largest component
	DegreeOneProteins  int     // 846 proteins of degree 1
	MaxProteinDegree   int     // 21 (ADH1)
	Diameter           int     // 6
	AvgPathLength      float64 // 2.568
	PowerLawLogC       float64 // 3.161
	PowerLawGamma      float64 // 2.528
	PowerLawR2         float64 // 0.963
	MaxCoreK           int     // 6
	MaxCoreProteins    int     // 41
	MaxCoreComplexes   int     // 54
	CoreUnknown        int     // 9 of the 41 unknown / unknown function
	CoreKnownEssential int     // 22 of the 32 known are essential
	CoreHomologs       int     // 24 of the 41 have reported homologs
	BaitsUsed          int     // 589 proteins used as baits
	BaitsReported      int     // 459 baits yielded complexes
	BaitAvgDegree      float64 // ≈ 1.85
	BaitsPulledOne     int     // 429
	BaitsPulledTwo     int     // 26
	BaitsPulledThree   int     // 4
	GreedyCoverSize    int     // 109, avg degree ≈ 3.7
	GreedyCoverAvgDeg  float64
	WeightedCoverSize  int // 233, avg degree ≈ 1.14
	WeightedCoverAvgD  float64
	MulticoverSize     int // 558 covering 229 complexes twice, avg ≈ 1.74
	MulticoverAvgDeg   float64
	SingletonComplexes int // 3 complexes of a single protein
}

// PublishedCellzome returns the targets exactly as printed in the
// paper.
func PublishedCellzome() CellzomeTargets {
	return CellzomeTargets{
		Proteins: 1361, Complexes: 232, Components: 33,
		LargestCompV: 1263, LargestCompF: 99,
		DegreeOneProteins: 846, MaxProteinDegree: 21,
		Diameter: 6, AvgPathLength: 2.568,
		PowerLawLogC: 3.161, PowerLawGamma: 2.528, PowerLawR2: 0.963,
		MaxCoreK: 6, MaxCoreProteins: 41, MaxCoreComplexes: 54,
		CoreUnknown: 9, CoreKnownEssential: 22, CoreHomologs: 24,
		BaitsUsed: 589, BaitsReported: 459, BaitAvgDegree: 1.85,
		BaitsPulledOne: 429, BaitsPulledTwo: 26, BaitsPulledThree: 4,
		GreedyCoverSize: 109, GreedyCoverAvgDeg: 3.7,
		WeightedCoverSize: 233, WeightedCoverAvgD: 1.14,
		MulticoverSize: 558, MulticoverAvgDeg: 1.74,
		SingletonComplexes: 3,
	}
}

// Instance bundles a generated hypergraph with its experiment
// metadata.
type Instance struct {
	H *hypergraph.Hypergraph
	// CoreV / CoreF mark the planted maximum-core membership.
	CoreV []bool
	CoreF []bool
	// BaitsUsed are the 589 proteins tagged in the (synthetic)
	// experiment; BaitsReported the 459 whose pull-downs succeeded.
	BaitsUsed     []int
	BaitsReported []int
	// Ann is the synthetic annotation database.
	Ann *bio.AnnotationDB
	// Singletons lists the single-protein complexes (excluded from the
	// 2-multicover, as in the paper).
	Singletons []int
	// Published holds the paper's numbers for side-by-side reporting.
	Published CellzomeTargets
}

// Structural constants of the synthetic Cellzome instance.  They are
// solved so that the component/level counts land exactly on the
// published targets; see the calibration notes in DESIGN.md.
const (
	czSeed = 0xCE112073E

	czCoreProteins  = 41
	czCoreComplexes = 54
	czGiantComplex  = 99 // complexes in the giant component
	czNonCore       = czGiantComplex - czCoreComplexes

	czConnD2 = 300 // degree-2 connector proteins (98 glue the spanning tree)
	czConnD3 = 85
	czConnD4 = 10
	czConnD5 = 13
	czConn   = czConnD2 + czConnD3 + czConnD4 + czConnD5 // 408

	czFresh = 813 // degree-1 giant proteins

	czADH1Degree = 21

	// czChain is the number of trailing non-core complexes that form a
	// pendant path off the main body (no shortcut connectors reach
	// them).  It stretches the diameter to the published value: the
	// densely connected main body alone has protein diameter ≈ 4.
	czChain = 2
)

// Cellzome generates the calibrated synthetic instance.  The build is
// deterministic: every call returns the same hypergraph.
func Cellzome() *Instance {
	rng := xrand.New(czSeed)
	b := hypergraph.NewBuilder()

	// ---- Giant component -------------------------------------------------
	// Core proteins and complexes.
	coreP := make([]int, czCoreProteins)
	for i := range coreP {
		coreP[i] = b.AddVertex(fmt.Sprintf("YCP%03d", i+1))
	}
	adh1 := b.AddVertex("ADH1")

	// Core membership: protein i belongs to coreDeg[i] core complexes.
	// Most have exactly 6 so that the 7-core collapses.
	coreDeg := make([]int, czCoreProteins)
	for i := range coreDeg {
		switch {
		case i < 26:
			coreDeg[i] = 6
		case i < 36:
			coreDeg[i] = 7
		default:
			coreDeg[i] = 8
		}
	}
	coreMembers := assignCoreMembership(coreDeg, czCoreComplexes, rng)

	// Non-core giant complexes and their protein pools.
	connectors := make([]int, 0, czConn)
	addConn := func(n, deg int) []int {
		out := make([]int, 0, n)
		for i := 0; i < n; i++ {
			v := b.AddVertex(fmt.Sprintf("YCN%03d-%d", len(connectors)+1, deg))
			connectors = append(connectors, v)
			out = append(out, v)
		}
		return out
	}
	connD2 := addConn(czConnD2, 2)
	connD3 := addConn(czConnD3, 3)
	connD4 := addConn(czConnD4, 4)
	connD5 := addConn(czConnD5, 5)

	fresh := make([]int, czFresh)
	for i := range fresh {
		fresh[i] = b.AddVertex(fmt.Sprintf("YFP%04d", i+1))
	}

	// Membership lists for the 99 giant complexes (index 0..98; the
	// first czCoreComplexes are the core complexes).
	giant := make([][]int, czGiantComplex)
	for f := 0; f < czCoreComplexes; f++ {
		for _, i := range coreMembers[f] {
			giant[f] = append(giant[f], coreP[i])
		}
	}

	// ADH1 joins 21 of the non-core, non-chain complexes (never the
	// core, so the 6-core stays exactly the planted 41 proteins).
	adh1Homes := rng.Perm(czNonCore - czChain)[:czADH1Degree]
	for _, j := range adh1Homes {
		giant[czCoreComplexes+j] = append(giant[czCoreComplexes+j], adh1)
	}

	// Spanning tree over the 99 complexes: complex j (j ≥ 1) shares a
	// degree-2 connector with an earlier complex.  A uniform random
	// parent yields a recursive tree of logarithmic depth, which is
	// what gives the giant component its small-world diameter.
	conn := 0
	body := czGiantComplex - czChain // complexes 0..body-1 are the main body
	for j := 1; j < czGiantComplex; j++ {
		parent := rng.Intn(j)
		if j >= body {
			parent = j - 1 // the pendant chain hangs path-wise off the body
		} else if parent >= body {
			parent = rng.Intn(body - 1)
		}
		v := connD2[conn]
		conn++
		giant[j] = append(giant[j], v)
		giant[parent] = append(giant[parent], v)
	}
	// Remaining connectors take random distinct main-body complexes
	// (the pendant chain stays shortcut-free).
	place := func(v, deg int) {
		perm := rng.Perm(body)
		for _, f := range perm[:deg] {
			giant[f] = append(giant[f], v)
		}
	}
	for ; conn < len(connD2); conn++ {
		place(connD2[conn], 2)
	}
	for _, v := range connD3 {
		place(v, 3)
	}
	for _, v := range connD4 {
		place(v, 4)
	}
	for _, v := range connD5 {
		place(v, 5)
	}

	// Fresh degree-1 proteins are dealt to complexes by weight; the
	// first non-core complex is the paper's "nearly hundred proteins"
	// giant complex.
	weights := make([]float64, czGiantComplex)
	totalW := 0.0
	for f := range weights {
		switch {
		case f == czCoreComplexes:
			weights[f] = 80
		case f < czCoreComplexes:
			weights[f] = 4 + rng.Float64()*4
		default:
			weights[f] = 5 + rng.Float64()*15
		}
		totalW += weights[f]
	}
	for _, v := range fresh {
		x := rng.Float64() * totalW
		f := 0
		for f < czGiantComplex-1 {
			x -= weights[f]
			if x < 0 {
				break
			}
			f++
		}
		giant[f] = append(giant[f], v)
	}

	for f, members := range giant {
		names := make([]int32, len(members))
		for i, v := range members {
			names[i] = int32(v)
		}
		b.AddEdgeIDs(fmt.Sprintf("C%03d", f+1), names)
	}

	// ---- Satellite components -------------------------------------------
	// 32 components holding 98 proteins and 133 complexes:
	//   3 × (1 protein, 1 singleton complex)
	//  10 × (5 proteins, 10 pair complexes — all pairs)
	//  14 × (2 proteins, 1 pair complex)
	//   4 × (3 proteins, 3 pair complexes — a triangle)
	//   1 × (5 proteins, 4 pair complexes — a path)
	sat := 0
	cNum := czGiantComplex
	newSatP := func() string {
		sat++
		return fmt.Sprintf("YSP%03d", sat)
	}
	addComplex := func(members ...string) {
		cNum++
		b.AddEdge(fmt.Sprintf("C%03d", cNum), members...)
	}
	var singletonNames []string
	for i := 0; i < 3; i++ {
		p := newSatP()
		cNum++
		name := fmt.Sprintf("C%03d", cNum)
		b.AddEdge(name, p)
		singletonNames = append(singletonNames, name)
	}
	for i := 0; i < 10; i++ {
		ps := []string{newSatP(), newSatP(), newSatP(), newSatP(), newSatP()}
		for x := 0; x < 5; x++ {
			for y := x + 1; y < 5; y++ {
				addComplex(ps[x], ps[y])
			}
		}
	}
	for i := 0; i < 14; i++ {
		addComplex(newSatP(), newSatP())
	}
	for i := 0; i < 4; i++ {
		ps := []string{newSatP(), newSatP(), newSatP()}
		addComplex(ps[0], ps[1])
		addComplex(ps[1], ps[2])
		addComplex(ps[0], ps[2])
	}
	{
		ps := []string{newSatP(), newSatP(), newSatP(), newSatP(), newSatP()}
		for x := 0; x+1 < 5; x++ {
			addComplex(ps[x], ps[x+1])
		}
	}

	h := b.MustBuild()

	inst := &Instance{H: h, Published: PublishedCellzome()}
	inst.CoreV = make([]bool, h.NumVertices())
	for _, v := range coreP {
		inst.CoreV[v] = true
	}
	inst.CoreF = make([]bool, h.NumEdges())
	for f := 0; f < czCoreComplexes; f++ {
		inst.CoreF[f] = true
	}
	for _, name := range singletonNames {
		f, _ := h.EdgeID(name)
		inst.Singletons = append(inst.Singletons, f)
	}

	inst.selectBaits(rng)
	ann, err := bio.GenerateAnnotations(h, inst.CoreV, bio.DefaultAnnotationParams(), rng.Split())
	if err != nil {
		//hyperplexvet:ignore nopanic the embedded dataset and fixed seed make failure a build-time bug, not a runtime condition
		panic("dataset: Cellzome annotations: " + err.Error())
	}
	inst.Ann = ann
	return inst
}

// assignCoreMembership deals each core protein i into coreDeg[i]
// distinct complexes out of nc, then repairs the assignment so that
// (a) every complex has at least two core members and (b) no
// complex's core-member set contains another's — the conditions under
// which the 6-core is exactly the planted block.
func assignCoreMembership(coreDeg []int, nc int, rng *xrand.RNG) [][]int {
	members := make([][]int, nc) // complex → core protein indices
	memberSet := make([]map[int]bool, nc)
	for f := range memberSet {
		memberSet[f] = map[int]bool{}
	}
	add := func(f, i int) {
		if !memberSet[f][i] {
			memberSet[f][i] = true
			members[f] = append(members[f], i)
		}
	}
	for i, d := range coreDeg {
		perm := rng.Perm(nc)
		for _, f := range perm[:d] {
			add(f, i)
		}
	}
	// Repair (a): tiny complexes borrow the least-loaded proteins.
	for f := range members {
		for len(members[f]) < 2 {
			i := rng.Intn(len(coreDeg))
			add(f, i)
		}
	}
	// Repair (b): resolve containments by adding a distinguishing
	// member to the smaller complex.  Iterate to a fixpoint.
	for changed := true; changed; {
		changed = false
		for f := 0; f < nc; f++ {
			for g := 0; g < nc; g++ {
				if f == g || len(members[f]) > len(members[g]) {
					continue
				}
				contained := true
				for _, i := range members[f] {
					if !memberSet[g][i] {
						contained = false
						break
					}
				}
				if !contained {
					continue
				}
				// Add to f a protein not in g.
				for attempt := 0; attempt < 1000; attempt++ {
					i := rng.Intn(len(coreDeg))
					if !memberSet[g][i] && !memberSet[f][i] {
						add(f, i)
						changed = true
						break
					}
				}
			}
		}
	}
	for f := range members {
		sort.Ints(members[f])
	}
	return members
}

// selectBaits picks the 459 reported baits — one member per complex
// (so the reported baits form a cover, as the experiment identified
// every complex from some bait) preferring low-degree members, plus
// extras — and 130 additional used-but-unproductive baits for the 589
// total.
func (inst *Instance) selectBaits(rng *xrand.RNG) {
	h := inst.H
	published := inst.Published
	chosen := make(map[int]bool)
	// One bait per complex: pick the lowest-degree member not yet
	// chosen (ties broken randomly) — mirrors that most baits pull
	// down exactly one complex.
	for f := 0; f < h.NumEdges(); f++ {
		best, bestDeg := -1, 1<<30
		off := rng.Intn(h.EdgeDegree(f))
		members := h.Vertices(f)
		for i := range members {
			v := int(members[(i+off)%len(members)])
			d := h.VertexDegree(v)
			if chosen[v] {
				continue
			}
			if d < bestDeg {
				best, bestDeg = v, d
			}
		}
		if best >= 0 {
			chosen[best] = true
		}
	}
	// Top up to the reported count with degree-2 proteins (landing the
	// average degree near the published 1.85 — the covering pass picks
	// mostly degree-1 members, plus the unavoidable degree-4 members of
	// the dense satellite components).
	var candidates []int
	for v := 0; v < h.NumVertices(); v++ {
		if !chosen[v] && h.VertexDegree(v) == 2 {
			candidates = append(candidates, v)
		}
	}
	rng.Shuffle(len(candidates), func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
	for _, v := range candidates {
		if len(chosen) >= published.BaitsReported {
			break
		}
		chosen[v] = true
	}
	inst.BaitsReported = make([]int, 0, len(chosen))
	for v := range chosen {
		inst.BaitsReported = append(inst.BaitsReported, v)
	}
	sort.Ints(inst.BaitsReported)

	// The 589 used baits: the reported ones plus unproductive extras.
	extra := published.BaitsUsed - len(inst.BaitsReported)
	inst.BaitsUsed = append([]int(nil), inst.BaitsReported...)
	for v := 0; v < h.NumVertices() && extra > 0; v++ {
		if !chosen[v] {
			inst.BaitsUsed = append(inst.BaitsUsed, v)
			chosen[v] = true
			extra--
		}
	}
	sort.Ints(inst.BaitsUsed)
}
