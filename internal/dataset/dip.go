package dataset

import (
	"hyperplex/internal/gen"
	"hyperplex/internal/graph"
	"hyperplex/internal/xrand"
)

// DIPTargets records the published Database of Interacting Proteins
// results of §3 (circa Nov 2003).
type DIPTargets struct {
	Name     string
	Proteins int
	MaxCoreK int
	CoreSize int
}

// GraphInstance is a protein-interaction graph with its published
// targets.
type GraphInstance struct {
	G         *graph.Graph
	Published DIPTargets
}

// DIPYeast returns the synthetic stand-in for the DIP yeast
// protein-interaction network: 4746 proteins, maximum core k = 10 with
// 33 proteins.
func DIPYeast() *GraphInstance {
	rng := xrand.New(0xD1B)
	bg := gen.PreferentialAttachment(4746, 3, rng)
	g := gen.PlantDenseSubgraph(bg, 33, 10, rng)
	return &GraphInstance{
		G:         g,
		Published: DIPTargets{Name: "DIP yeast", Proteins: 4746, MaxCoreK: 10, CoreSize: 33},
	}
}

// DIPFly returns the synthetic stand-in for the DIP drosophila
// network: about 7000 proteins, maximum core k = 8 with 577 proteins.
func DIPFly() *GraphInstance {
	rng := xrand.New(0xF17)
	bg := gen.PreferentialAttachment(7036, 3, rng)
	g := gen.PlantDenseSubgraph(bg, 577, 8, rng)
	return &GraphInstance{
		G:         g,
		Published: DIPTargets{Name: "DIP drosophila", Proteins: 7036, MaxCoreK: 8, CoreSize: 577},
	}
}
