package core

import (
	"hyperplex/internal/graph"
)

// GraphCoreness computes the coreness of every vertex of g: the largest
// k such that the vertex belongs to the (non-empty) k-core.  It uses
// the linear-time bucket peeling algorithm (repeatedly remove a vertex
// of minimum degree; the highest minimum degree seen is the maximum
// core), running in O(|V| + |E|).
func GraphCoreness(g *graph.Graph) []int {
	n := g.NumVertices()
	deg := g.Degrees()
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}

	// Bucket sort vertices by degree: bin[d] is the start of degree-d
	// vertices inside pos/vert.
	bin := make([]int, maxDeg+2)
	for _, d := range deg {
		bin[d]++
	}
	start := 0
	for d := 0; d <= maxDeg; d++ {
		c := bin[d]
		bin[d] = start
		start += c
	}
	vert := make([]int32, n) // vertices sorted by current degree
	pos := make([]int, n)    // position of each vertex in vert
	for v := 0; v < n; v++ {
		pos[v] = bin[deg[v]]
		vert[pos[v]] = int32(v)
		bin[deg[v]]++
	}
	for d := maxDeg; d > 0; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0

	core := make([]int, n)
	for i := 0; i < n; i++ {
		v := int(vert[i])
		core[v] = deg[v]
		for _, u32 := range g.Neighbors(v) {
			u := int(u32)
			if deg[u] > deg[v] {
				// Move u one bucket down: swap it with the first vertex
				// of its current bucket, then shift the bucket boundary.
				du := deg[u]
				pu := pos[u]
				pw := bin[du]
				w := vert[pw]
				if u != int(w) {
					vert[pu], vert[pw] = w, int32(u)
					pos[u], pos[w] = pw, pu
				}
				bin[du]++
				deg[u]--
			}
		}
	}
	return core
}

// GraphKCore returns the vertex set of the k-core of g as a boolean
// membership slice (true = in the k-core).  The k-core may be empty.
func GraphKCore(g *graph.Graph, k int) []bool {
	core := GraphCoreness(g)
	in := make([]bool, len(core))
	for v, c := range core {
		in[v] = c >= k
	}
	return in
}

// GraphMaxCore returns the maximum k for which the k-core of g is
// non-empty, together with the membership slice of that core.  For the
// empty graph it returns k = 0 and an all-false slice.
func GraphMaxCore(g *graph.Graph) (k int, in []bool) {
	core := GraphCoreness(g)
	for _, c := range core {
		if c > k {
			k = c
		}
	}
	in = make([]bool, len(core))
	if g.NumVertices() == 0 {
		return 0, in
	}
	for v, c := range core {
		in[v] = c >= k
	}
	return k, in
}
