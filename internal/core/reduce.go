package core

import (
	"hyperplex/internal/hypergraph"
)

// This file is the package's reduction layer: the paper's
// overlap-count machinery for detecting non-maximal hyperedges (a
// hyperedge f is contained in g exactly when |f ∩ g| = d(f)), shared
// by every peeling kernel in the package.  Two strategies implement
// the same detection rule:
//
//   - overlapTable maintains the pairwise overlap counts incrementally
//     while vertices and hyperedges are deleted — the data structure of
//     the sequential peeler (hypercore.go, bicore.go), where each
//     deletion updates the table in place;
//   - nonMaxScratch re-derives the overlap counts of one hyperedge
//     against a consistent alive snapshot with stamped scratch arrays —
//     the strategy of the round-synchronous parallel peeler
//     (parallel.go) and the sharded engine (sharded.go), whose
//     synchronized phases make a persistent global table unnecessary.
//
// Both apply the shared tie-break for equal hyperedges: of two alive
// hyperedges with identical member sets, the lower-ID copy is the
// maximal one.

// overlapTable maintains ov[f][g] = |f ∩ g| over the currently alive
// vertices, for every pair of overlapping alive hyperedges.  (The
// paper uses balanced trees for these sets; Go maps give the same
// amortized behaviour.)
type overlapTable struct {
	ov []map[int32]int32
}

// Fill builds the table for h with every vertex and hyperedge alive,
// in O(Σ_v d(v)²) time: one pass over the vertex adjacency lists.
// checkpoint is called with an operation count at bounded intervals so
// the caller can honor cancellation and budgets; pass a no-op when the
// construction is not cancellable.
func (t *overlapTable) Fill(h *hypergraph.Hypergraph, checkpoint func(n int)) {
	nv, ne := h.NumVertices(), h.NumEdges()
	t.ov = make([]map[int32]int32, ne)
	// Pre-size the overlap maps with each hyperedge's d₂ (counted with
	// a stamped scratch pass) so the construction below never rehashes.
	d2 := make([]int32, ne)
	stamp := make([]int32, ne)
	for i := range stamp {
		stamp[i] = -1
	}
	for f := 0; f < ne; f++ {
		checkpoint(1)
		for _, v := range h.Vertices(f) {
			for _, g := range h.Edges(int(v)) {
				if g != int32(f) && stamp[g] != int32(f) {
					stamp[g] = int32(f)
					d2[f]++
				}
			}
		}
	}
	for f := 0; f < ne; f++ {
		t.ov[f] = make(map[int32]int32, d2[f])
	}
	for v := 0; v < nv; v++ {
		adj := h.Edges(v)
		checkpoint(1 + len(adj))
		for i := 0; i < len(adj); i++ {
			for j := i + 1; j < len(adj); j++ {
				f, g := adj[i], adj[j]
				t.ov[f][g]++
				t.ov[g][f]++
			}
		}
	}
}

// Overlap returns the current |f ∩ g| recorded in the table (0 when
// the hyperedges do not overlap among alive vertices).
func (t *overlapTable) Overlap(f, g int) int {
	return int(t.ov[f][int32(g)])
}

// NonMaximal reports whether alive hyperedge f is currently contained
// in another alive hyperedge: some g with |f ∩ g| = d(f) and either
// d(g) > d(f) (strict containment) or d(g) = d(f) with g < f (the
// tie-break that keeps exactly one copy of equal hyperedges).  eDeg
// holds the current alive degrees of the hyperedges.
func (t *overlapTable) NonMaximal(f int, eDeg []int) bool {
	df := int32(eDeg[f])
	for g, cnt := range t.ov[f] {
		if cnt != df {
			continue
		}
		dg := eDeg[g]
		if dg > eDeg[f] || (dg == eDeg[f] && int(g) < f) {
			return true
		}
	}
	return false
}

// DropEdge removes hyperedge f from the table: f disappears from the
// overlap sets of its neighbors and its own set is released.  Deleting
// an edge can never make another edge non-maximal, so no containment
// re-checks are needed.
func (t *overlapTable) DropEdge(f int) {
	for g := range t.ov[f] {
		delete(t.ov[g], int32(f))
	}
	t.ov[f] = nil
}

// ShrinkPairwise updates the table after one vertex shared by exactly
// the hyperedges in live has been deleted: every pairwise overlap
// among them decreases by one, and pairs reaching zero are removed
// from each other's sets.
func (t *overlapTable) ShrinkPairwise(live []int32) {
	for i := 0; i < len(live); i++ {
		for j := i + 1; j < len(live); j++ {
			f, g := live[i], live[j]
			if c := t.ov[f][g] - 1; c == 0 {
				delete(t.ov[f], g)
				delete(t.ov[g], f)
			} else {
				t.ov[f][g] = c
				t.ov[g][f] = c
			}
		}
	}
}

// nonMaxScratch is the per-worker scratch for snapshot-based
// non-maximality checks: stamped count arrays sized to the hyperedge
// count, so one check runs in O(Σ_{v ∈ f} d(v)) without clearing.
// Each worker of a parallel phase owns its own scratch; the alive
// state read through the accessors must be constant for the duration
// of a check (the synchronized phases of the callers guarantee this).
type nonMaxScratch struct {
	stamp []int32
	count []int32
	seq   int32 // monotone stamp; 0 in stamp means "never stamped"
}

func newNonMaxScratch(ne int) *nonMaxScratch {
	return &nonMaxScratch{
		stamp: make([]int32, ne),
		count: make([]int32, ne),
	}
}

// NonMaximal reports whether hyperedge f, with df > 0 alive vertices,
// is contained in another alive hyperedge of h, reading the alive
// snapshot through the accessors: vAlive reports whether a vertex is
// alive, eAlive whether a hyperedge is alive, and eDeg the current
// alive degree of an alive hyperedge.  The detection counts overlaps
// |f ∩ g| over f's alive two-hop neighborhood and applies the shared
// (degree, ID) tie-break.
func (s *nonMaxScratch) NonMaximal(h *hypergraph.Hypergraph, f, df int32, vAlive, eAlive func(int32) bool, eDeg func(int32) int32) bool {
	if s.seq == 1<<31-1 {
		for j := range s.stamp {
			s.stamp[j] = 0
		}
		s.seq = 0
	}
	s.seq++
	mark := s.seq // unique per check within this scratch
	for _, v := range h.Vertices(int(f)) {
		if !vAlive(v) {
			continue
		}
		for _, g := range h.Edges(int(v)) {
			if g == f || !eAlive(g) {
				continue
			}
			if s.stamp[g] != mark {
				s.stamp[g] = mark
				s.count[g] = 0
			}
			s.count[g]++
			if s.count[g] == df {
				dg := eDeg(g)
				if dg > df || (dg == df && g < f) {
					return true
				}
			}
		}
	}
	return false
}
