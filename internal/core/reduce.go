package core

import (
	"hyperplex/internal/csr"
	"hyperplex/internal/hypergraph"
)

// This file is the package's reduction layer: the paper's
// overlap-count machinery for detecting non-maximal hyperedges (a
// hyperedge f is contained in g exactly when |f ∩ g| = d(f)), shared
// by every peeling kernel in the package.  Two strategies implement
// the same detection rule:
//
//   - overlapTable maintains the pairwise overlap counts incrementally
//     while vertices and hyperedges are deleted — the data structure of
//     the sequential peeler (hypercore.go, bicore.go), where each
//     deletion updates the table in place.  Since the CSR substrate PR
//     it is backed by the flat-array csr.Overlaps (offset/neighbor/count
//     int32 rows) rather than per-hyperedge Go maps;
//   - nonMaxScratch re-derives the overlap counts of one hyperedge
//     against a consistent alive snapshot with stamped scratch arrays —
//     the strategy of the round-synchronous parallel peeler
//     (parallel.go) and the sharded engine (sharded.go), whose
//     synchronized phases make a persistent global table unnecessary.
//     It reads the pins through a csr.CSR view.
//
// Both apply the shared tie-break for equal hyperedges: of two alive
// hyperedges with identical member sets, the lower-ID copy is the
// maximal one.

// overlapTable maintains ov(f, g) = |f ∩ g| over the currently alive
// vertices, for every pair of initially overlapping hyperedges.  (The
// paper uses balanced trees for these sets; the flat sorted rows of
// csr.Overlaps give the same amortized behaviour with binary searches
// instead of pointer chasing.)  Overlap, NonMaximal, DropEdge and
// ShrinkPairwise are promoted from the embedded table.
type overlapTable struct {
	csr.Overlaps
}

// Fill builds the table for h with every vertex and hyperedge alive,
// in O(Σ_v d(v)²) time.  checkpoint is called with an operation count
// at bounded intervals so the caller can honor cancellation and
// budgets; pass a no-op when the construction is not cancellable.
func (t *overlapTable) Fill(h *hypergraph.Hypergraph, checkpoint func(n int)) {
	t.Build(csr.FromH(h), checkpoint)
}

// nonMaxScratch is the per-worker scratch for snapshot-based
// non-maximality checks: stamped count arrays sized to the hyperedge
// count, so one check runs in O(Σ_{v ∈ f} d(v)) without clearing.
// Each worker of a parallel phase owns its own scratch; the alive
// state read through the accessors must be constant for the duration
// of a check (the synchronized phases of the callers guarantee this).
type nonMaxScratch struct {
	stamp []int32
	count []int32
	seq   int32 // monotone stamp; 0 in stamp means "never stamped"
}

func newNonMaxScratch(ne int) *nonMaxScratch {
	return &nonMaxScratch{
		stamp: make([]int32, ne),
		count: make([]int32, ne),
	}
}

// NonMaximal reports whether hyperedge f, with df > 0 alive vertices,
// is contained in another alive hyperedge of c, reading the alive
// snapshot through the accessors: vAlive reports whether a vertex is
// alive, eAlive whether a hyperedge is alive, and eDeg the current
// alive degree of an alive hyperedge.  The detection counts overlaps
// |f ∩ g| over f's alive two-hop neighborhood and applies the shared
// (degree, ID) tie-break.
func (s *nonMaxScratch) NonMaximal(c *csr.CSR, f, df int32, vAlive, eAlive func(int32) bool, eDeg func(int32) int32) bool {
	if s.seq == 1<<31-1 {
		for j := range s.stamp {
			s.stamp[j] = 0
		}
		s.seq = 0
	}
	s.seq++
	mark := s.seq // unique per check within this scratch
	//hyperplexvet:ignore budgettick bounded: one pass over f's two-hop neighborhood through O(1) accessors; every caller charges the check
	for _, v := range c.EdgeVertices(f) {
		if !vAlive(v) {
			continue
		}
		//hyperplexvet:ignore budgettick bounded: inner leg of the same single two-hop pass, charged by the caller
		for _, g := range c.VertexEdges(v) {
			if g == f || !eAlive(g) {
				continue
			}
			if s.stamp[g] != mark {
				s.stamp[g] = mark
				s.count[g] = 0
			}
			s.count[g]++
			if s.count[g] == df {
				dg := eDeg(g)
				if dg > df || (dg == df && g < f) {
					return true
				}
			}
		}
	}
	return false
}
