package core

import (
	"sort"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"hyperplex/internal/graph"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/xrand"
)

// fig2Graph reconstructs the structure of the paper's Figure 2: a graph
// whose maximum core is a 3-core, whose 2-core equals the 3-core, and
// whose 4-core is empty.  We use K4 (the 3-core) with a pendant path
// attached: peeling the path leaves K4; the minimum degree inside K4 is
// 3, and no 4-core exists.
func fig2Graph() *graph.Graph {
	return graph.MustBuild(7, [][2]int32{
		// K4 on {0,1,2,3}
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
		// pendant path 3-4-5 and a leaf 6 off vertex 0
		{3, 4}, {4, 5}, {0, 6},
	})
}

func TestGraphCorenessFig2(t *testing.T) {
	g := fig2Graph()
	core := GraphCoreness(g)
	want := []int{3, 3, 3, 3, 1, 1, 1}
	for v, w := range want {
		if core[v] != w {
			t.Errorf("coreness[%d] = %d, want %d", v, core[v], w)
		}
	}
	k, in := GraphMaxCore(g)
	if k != 3 {
		t.Fatalf("max core k = %d, want 3", k)
	}
	count := 0
	for _, b := range in {
		if b {
			count++
		}
	}
	if count != 4 {
		t.Errorf("max core size = %d, want 4", count)
	}
	// Figure 2's stated facts: 1-core = whole graph, 2-core = 3-core,
	// 4-core = empty.
	in1 := GraphKCore(g, 1)
	for v, b := range in1 {
		if !b {
			t.Errorf("1-core excludes vertex %d", v)
		}
	}
	in2 := GraphKCore(g, 2)
	in3 := GraphKCore(g, 3)
	for v := range in2 {
		if in2[v] != in3[v] {
			t.Errorf("2-core and 3-core differ at vertex %d", v)
		}
	}
	for v, b := range GraphKCore(g, 4) {
		if b {
			t.Errorf("4-core contains vertex %d", v)
		}
	}
}

func TestGraphCorenessEmptyAndEdgeless(t *testing.T) {
	g := graph.MustBuild(0, nil)
	if k, _ := GraphMaxCore(g); k != 0 {
		t.Errorf("empty graph max core = %d, want 0", k)
	}
	g2 := graph.MustBuild(3, nil)
	core := GraphCoreness(g2)
	for v, c := range core {
		if c != 0 {
			t.Errorf("edgeless coreness[%d] = %d, want 0", v, c)
		}
	}
}

func TestGraphCorenessClique(t *testing.T) {
	// K5: every vertex has coreness 4.
	var edges [][2]int32
	for i := int32(0); i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			edges = append(edges, [2]int32{i, j})
		}
	}
	g := graph.MustBuild(5, edges)
	for v, c := range GraphCoreness(g) {
		if c != 4 {
			t.Errorf("K5 coreness[%d] = %d, want 4", v, c)
		}
	}
}

// corenessNaiveGraph checks coreness by definition: v has coreness ≥ k
// iff v survives repeated removal of vertices with degree < k.
func corenessNaiveGraph(g *graph.Graph) []int {
	n := g.NumVertices()
	core := make([]int, n)
	for k := 1; ; k++ {
		alive := make([]bool, n)
		for v := range alive {
			alive[v] = true
		}
		for changed := true; changed; {
			changed = false
			for v := 0; v < n; v++ {
				if !alive[v] {
					continue
				}
				d := 0
				for _, u := range g.Neighbors(v) {
					if alive[u] {
						d++
					}
				}
				if d < k {
					alive[v] = false
					changed = true
				}
			}
		}
		any := false
		for v := 0; v < n; v++ {
			if alive[v] {
				core[v] = k
				any = true
			}
		}
		if !any {
			return core
		}
	}
}

func TestPropertyGraphCorenessMatchesNaive(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 2 + rng.Intn(25)
		ne := rng.Intn(3 * n)
		edges := make([][2]int32, ne)
		for i := range edges {
			edges[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
		}
		g := graph.MustBuild(n, edges)
		fast := GraphCoreness(g)
		slow := corenessNaiveGraph(g)
		for v := range fast {
			if fast[v] != slow[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// plantedHypergraph builds a hypergraph with a known 3-core: 4 core
// vertices each in 3 core hyperedges (pairwise distinct sets), plus
// pendant vertices and a contained hyperedge.
func plantedHypergraph(t *testing.T) *hypergraph.Hypergraph {
	t.Helper()
	b := hypergraph.NewBuilder()
	// Core hyperedges over {a,b,c,d}: each vertex in exactly 3.
	b.AddEdge("e1", "a", "b", "c")
	b.AddEdge("e2", "a", "b", "d")
	b.AddEdge("e3", "a", "c", "d")
	b.AddEdge("e4", "b", "c", "d")
	// Pendant structure.
	b.AddEdge("p1", "a", "x")
	b.AddEdge("p2", "x", "y")
	// Non-maximal edge (contained in e1).
	b.AddEdge("sub", "b", "c")
	return b.MustBuild()
}

func TestHypergraphKCorePlanted(t *testing.T) {
	h := plantedHypergraph(t)
	r := KCore(h, 3)
	if r.NumVertices != 4 || r.NumEdges != 4 {
		t.Fatalf("3-core = %d vertices / %d edges, want 4 / 4", r.NumVertices, r.NumEdges)
	}
	for _, name := range []string{"a", "b", "c", "d"} {
		v, _ := h.VertexID(name)
		if !r.VertexIn[v] {
			t.Errorf("3-core missing vertex %s", name)
		}
	}
	sub, _ := h.EdgeID("sub")
	if r.EdgeIn[sub] {
		t.Error("non-maximal edge survived in the 3-core")
	}
	// Max core.
	mc := MaxCore(h)
	if mc.K != 3 {
		t.Errorf("max core k = %d, want 3", mc.K)
	}
	// 4-core empty.
	r4 := KCore(h, 4)
	if r4.NumVertices != 0 || r4.NumEdges != 0 {
		t.Errorf("4-core = %d/%d, want empty", r4.NumVertices, r4.NumEdges)
	}
}

func TestHypergraphKCoreInitialReduction(t *testing.T) {
	// The k-core of a hypergraph must be reduced even for k = 0/1:
	// duplicate and contained hyperedges do not contribute to degree.
	b := hypergraph.NewBuilder()
	b.AddEdge("big", "a", "b", "c")
	b.AddEdge("dup1", "a", "b")
	b.AddEdge("dup2", "a", "b")
	h := b.MustBuild()
	r := KCore(h, 1)
	// dup1/dup2 ⊆ big: both die, so every vertex has degree 1.
	if r.NumEdges != 1 {
		t.Fatalf("1-core edges = %d, want 1", r.NumEdges)
	}
	big, _ := h.EdgeID("big")
	if !r.EdgeIn[big] {
		t.Error("maximal edge 'big' missing")
	}
	// 2-core must be empty (after reduction all degrees are 1).
	r2 := KCore(h, 2)
	if r2.NumVertices != 0 {
		t.Errorf("2-core vertices = %d, want 0", r2.NumVertices)
	}
}

func TestHypergraphKCoreDuplicateOnly(t *testing.T) {
	// Two identical edges and nothing else: exactly one survives the
	// reduction (the lower ID).
	b := hypergraph.NewBuilder()
	b.AddEdge("e0", "a", "b")
	b.AddEdge("e1", "a", "b")
	h := b.MustBuild()
	r := KCore(h, 1)
	if r.NumEdges != 1 {
		t.Fatalf("edges = %d, want 1", r.NumEdges)
	}
	if !r.EdgeIn[0] || r.EdgeIn[1] {
		t.Errorf("tie-break kept wrong copy: %v", r.EdgeIn)
	}
}

func TestHypergraphKCoreCascade(t *testing.T) {
	// Deleting a vertex shrinks an edge into another, whose deletion
	// drops a vertex below k, cascading.
	//   e1 = {a, b, z}, e2 = {a, b}, e3 = {a, c}, e4 = {b, c}
	// z has degree 1.  At k = 2: z dies → e1 = {a,b} equals e2 →
	// tie-break deletes e2 (higher ID? e1 < e2 so e2 dies... e1 shrank,
	// e1 vs e2 have equal sets, lower ID e1 survives).  Then degrees:
	// a ∈ {e1, e3}, b ∈ {e1, e4}, c ∈ {e3, e4} — all 2, stable.
	b := hypergraph.NewBuilder()
	b.AddEdge("e1", "a", "b", "z")
	b.AddEdge("e2", "a", "b")
	b.AddEdge("e3", "a", "c")
	b.AddEdge("e4", "b", "c")
	h := b.MustBuild()
	r := KCore(h, 2)
	if r.NumVertices != 3 || r.NumEdges != 3 {
		t.Fatalf("2-core = %d/%d, want 3 vertices / 3 edges", r.NumVertices, r.NumEdges)
	}
	e1, _ := h.EdgeID("e1")
	e2, _ := h.EdgeID("e2")
	if !r.EdgeIn[e1] || r.EdgeIn[e2] {
		t.Errorf("equal-set tie-break after shrink failed: e1=%v e2=%v", r.EdgeIn[e1], r.EdgeIn[e2])
	}
}

func TestDecomposeCoreness(t *testing.T) {
	h := plantedHypergraph(t)
	d := Decompose(h)
	if d.MaxK != 3 {
		t.Fatalf("MaxK = %d, want 3", d.MaxK)
	}
	wantV := map[string]int{"a": 3, "b": 3, "c": 3, "d": 3, "x": 1, "y": 1}
	for name, w := range wantV {
		v, _ := h.VertexID(name)
		if d.VertexCoreness[v] != w {
			t.Errorf("coreness(%s) = %d, want %d", name, d.VertexCoreness[v], w)
		}
	}
	sub, _ := h.EdgeID("sub")
	if d.EdgeCoreness[sub] != 0 {
		t.Errorf("coreness(sub) = %d, want 0 (killed in reduction)", d.EdgeCoreness[sub])
	}
	e1, _ := h.EdgeID("e1")
	if d.EdgeCoreness[e1] != 3 {
		t.Errorf("coreness(e1) = %d, want 3", d.EdgeCoreness[e1])
	}
}

func TestResultSub(t *testing.T) {
	h := plantedHypergraph(t)
	r := KCore(h, 3)
	sub, _, _ := r.Sub(h)
	if sub.NumVertices() != 4 || sub.NumEdges() != 4 {
		t.Errorf("materialized core = %v", sub)
	}
	if err := sub.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if !sub.IsReduced() {
		t.Error("materialized core is not reduced")
	}
}

func randomHypergraph(seed uint64) *hypergraph.Hypergraph {
	rng := xrand.New(seed)
	nv := 3 + rng.Intn(20)
	ne := 1 + rng.Intn(25)
	edges := make([][]int32, ne)
	for f := range edges {
		size := 1 + rng.Intn(5)
		for i := 0; i < size; i++ {
			edges[f] = append(edges[f], int32(rng.Intn(nv)))
		}
	}
	h, err := hypergraph.FromEdgeSets(nv, edges)
	if err != nil {
		panic(err)
	}
	return h
}

// sameResult compares two cores as set systems: identical vertex
// membership and identical multisets of restricted hyperedge member
// sets.  Edge IDs may legitimately differ between algorithms when two
// hyperedges shrink to the same set during peeling — which duplicate
// survives depends on deletion order, but the canonical structure is
// unique.
func sameResult(h *hypergraph.Hypergraph, a, b *Result) bool {
	if a.NumVertices != b.NumVertices || a.NumEdges != b.NumEdges {
		return false
	}
	for v := range a.VertexIn {
		if a.VertexIn[v] != b.VertexIn[v] {
			return false
		}
	}
	return canonicalEdges(h, a) == canonicalEdges(h, b)
}

// canonicalEdges renders the surviving hyperedges (restricted to
// surviving vertices) as a sorted textual multiset.
func canonicalEdges(h *hypergraph.Hypergraph, r *Result) string {
	var sets []string
	for f := range r.EdgeIn {
		if !r.EdgeIn[f] {
			continue
		}
		s := ""
		for _, v := range h.Vertices(f) {
			if r.VertexIn[v] {
				s += " " + itoa(int(v))
			}
		}
		sets = append(sets, s)
	}
	sort.Strings(sets)
	return strings.Join(sets, "|")
}

func itoa(i int) string { return strconv.Itoa(i) }

func TestPropertyKCoreMatchesNaive(t *testing.T) {
	prop := func(seed uint64, kRaw uint8) bool {
		h := randomHypergraph(seed)
		k := 1 + int(kRaw%4)
		return sameResult(h, KCore(h, k), KCoreNaive(h, k))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestPropertyKCoreMatchesParallel(t *testing.T) {
	prop := func(seed uint64, kRaw uint8) bool {
		h := randomHypergraph(seed)
		k := 1 + int(kRaw%4)
		seq := KCore(h, k)
		for _, workers := range []int{1, 2, 4} {
			if !sameResult(h, seq, KCoreParallel(h, k, workers)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCoresNested(t *testing.T) {
	// The (k+1)-core is contained in the k-core.
	prop := func(seed uint64) bool {
		h := randomHypergraph(seed)
		prev := KCore(h, 1)
		for k := 2; k <= 4; k++ {
			cur := KCore(h, k)
			for v := range cur.VertexIn {
				if cur.VertexIn[v] && !prev.VertexIn[v] {
					return false
				}
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDecomposeConsistentWithKCore(t *testing.T) {
	// The k-core extracted from the decomposition must equal the
	// directly computed k-core.
	prop := func(seed uint64) bool {
		h := randomHypergraph(seed)
		d := Decompose(h)
		for k := 1; k <= d.MaxK+1; k++ {
			if !sameResult(h, d.Core(k), KCore(h, k)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCoreIsValid(t *testing.T) {
	// Every vertex in the k-core has degree ≥ k inside it, and the core
	// is reduced.
	prop := func(seed uint64, kRaw uint8) bool {
		h := randomHypergraph(seed)
		k := 1 + int(kRaw%4)
		r := KCore(h, k)
		if r.NumVertices == 0 {
			return r.NumEdges == 0
		}
		sub, _, _ := r.Sub(h)
		if !sub.IsReduced() {
			return false
		}
		for v := 0; v < sub.NumVertices(); v++ {
			if sub.VertexDegree(v) < k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCoreIsMaximal(t *testing.T) {
	// No deleted vertex could have been kept: re-adding any single
	// deleted vertex (with its edges restricted to the core+v) cannot
	// yield a valid reduced sub-hypergraph with min degree ≥ k that
	// strictly contains the core.  We verify a weaker but telling
	// property: running KCoreNaive on the core plus one deleted vertex
	// returns exactly the core again.
	prop := func(seed uint64, kRaw uint8) bool {
		h := randomHypergraph(seed)
		k := 1 + int(kRaw%3)
		r := KCore(h, k)
		deleted := -1
		for v := range r.VertexIn {
			if !r.VertexIn[v] {
				deleted = v
				break
			}
		}
		if deleted < 0 {
			return true
		}
		keep := append([]bool(nil), r.VertexIn...)
		keep[deleted] = true
		sub, vMap, _ := h.SubVertices(keep)
		rr := KCoreNaive(sub, k)
		nd, ok := vMap[deleted]
		if !ok {
			return true // deleted vertex had no edges at all
		}
		return !rr.VertexIn[nd]
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestKCoreZero(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.AddEdge("e", "a", "b")
	b.AddVertex("iso")
	h := b.MustBuild()
	r := KCore(h, 0)
	iso, _ := h.VertexID("iso")
	if r.VertexIn[iso] {
		t.Error("0-core kept an isolated vertex")
	}
	if r.NumVertices != 2 || r.NumEdges != 1 {
		t.Errorf("0-core = %d/%d, want 2/1", r.NumVertices, r.NumEdges)
	}
}

func TestMaxCoreEmptyish(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.AddVertex("lonely")
	h := b.MustBuild()
	mc := MaxCore(h)
	if mc.K != 0 || mc.NumVertices != 0 {
		t.Errorf("MaxCore of edgeless hypergraph = k%d %d vertices, want 0/0", mc.K, mc.NumVertices)
	}
}
