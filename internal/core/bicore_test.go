package core

import (
	"testing"
	"testing/quick"

	"hyperplex/internal/hypergraph"
)

func TestBiCoreEqualsKCoreAtL1(t *testing.T) {
	prop := func(seed uint64, kRaw uint8) bool {
		h := randomHypergraph(seed)
		k := 1 + int(kRaw%4)
		return sameResult(h, KCore(h, k), BiCore(h, k, 1))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestBiCoreFiltersSmallEdges(t *testing.T) {
	// Two big overlapping complexes plus pair-complexes: at l = 3 the
	// pairs die immediately.
	b := hypergraph.NewBuilder()
	b.AddEdge("big1", "a", "b", "c", "d")
	b.AddEdge("big2", "a", "b", "c", "e")
	b.AddEdge("big3", "a", "b", "d", "e")
	b.AddEdge("pair1", "a", "x")
	b.AddEdge("pair2", "x", "y")
	h := b.MustBuild()

	r := BiCore(h, 2, 3)
	p1, _ := h.EdgeID("pair1")
	p2, _ := h.EdgeID("pair2")
	if r.EdgeIn[p1] || r.EdgeIn[p2] {
		t.Error("pair complexes survived l = 3")
	}
	xv, _ := h.VertexID("x")
	if r.VertexIn[xv] {
		t.Error("pendant vertex survived")
	}
	// a and b are in all three big complexes; c, d, e in two each.
	for _, name := range []string{"a", "b", "c", "d", "e"} {
		v, _ := h.VertexID(name)
		if !r.VertexIn[v] {
			t.Errorf("vertex %s missing from the (2,3)-core", name)
		}
	}
}

func TestBiCoreCascadeThroughL(t *testing.T) {
	// Peeling a vertex can shrink a hyperedge below l, whose removal
	// drops other vertices below k.
	b := hypergraph.NewBuilder()
	b.AddEdge("e1", "a", "b", "z") // z has degree 1: dies at k=2
	b.AddEdge("e2", "a", "b", "c")
	b.AddEdge("e3", "a", "c", "d")
	b.AddEdge("e4", "b", "c", "d")
	h := b.MustBuild()
	// At (k=2, l=3): z dies → e1 shrinks to 2 < 3 → e1 dies → a, b drop
	// to 2 (still fine); result should be {a,b,c,d} with e2,e3,e4.
	r := BiCore(h, 2, 3)
	if r.NumVertices != 4 || r.NumEdges != 3 {
		t.Fatalf("(2,3)-core = %d/%d, want 4/3", r.NumVertices, r.NumEdges)
	}
	e1, _ := h.EdgeID("e1")
	if r.EdgeIn[e1] {
		t.Error("e1 should have died at l = 3")
	}
}

func TestBiCoreValidity(t *testing.T) {
	prop := func(seed uint64, kRaw, lRaw uint8) bool {
		h := randomHypergraph(seed)
		k := 1 + int(kRaw%3)
		l := 1 + int(lRaw%3)
		r := BiCore(h, k, l)
		if r.NumVertices == 0 {
			return r.NumEdges == 0
		}
		sub, _, _ := r.Sub(h)
		if !sub.IsReduced() {
			return false
		}
		for v := 0; v < sub.NumVertices(); v++ {
			if sub.VertexDegree(v) < k {
				return false
			}
		}
		for f := 0; f < sub.NumEdges(); f++ {
			if sub.EdgeDegree(f) < l {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBiCoreDecomposeL(t *testing.T) {
	h := plantedHypergraph(t)
	k, r := BiCoreDecomposeL(h, 3)
	if k != 3 {
		t.Errorf("max k at l=3 is %d, want 3 (core edges all have 3 members)", k)
	}
	if r.NumVertices != 4 || r.NumEdges != 4 {
		t.Errorf("core = %d/%d, want 4/4", r.NumVertices, r.NumEdges)
	}
	// At l = 4 nothing survives (all planted edges have 3 members).
	k4, r4 := BiCoreDecomposeL(h, 4)
	if k4 != 0 || r4.NumVertices != 0 {
		t.Errorf("l=4: k=%d, %d vertices; want empty", k4, r4.NumVertices)
	}
}

func TestBiCoreZeroK(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.AddEdge("big", "a", "b", "c")
	b.AddEdge("pair", "x", "y")
	h := b.MustBuild()
	r := BiCore(h, 0, 3)
	pair, _ := h.EdgeID("pair")
	if r.EdgeIn[pair] {
		t.Error("pair survived l=3 at k=0")
	}
	big, _ := h.EdgeID("big")
	if !r.EdgeIn[big] {
		t.Error("big edge missing at k=0")
	}
}
