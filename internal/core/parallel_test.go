// Regression and cancellation tests for the parallel peeler.  External
// test package because check imports core.
package core_test

import (
	"context"
	"errors"
	"testing"

	"hyperplex/internal/check"
	"hyperplex/internal/core"
	"hyperplex/internal/run"
)

// TestKCoreParallelWorkerFallback is the regression test for the
// worker-count policy: workers ≤ 0 falls back to runtime.NumCPU() and
// absurdly large requests are clamped, so every value must still
// produce the sequential answer rather than misbehave.
func TestKCoreParallelWorkerFallback(t *testing.T) {
	for i, h := range check.Instances(4, 2026) {
		want := core.KCore(h, 2)
		for _, workers := range []int{-1, 0, 1, 3, 1 << 20} {
			got := core.KCoreParallel(h, 2, workers)
			if err := check.SameResult(h, want, got); err != nil {
				t.Fatalf("instance %d workers=%d: parallel disagrees with sequential: %v",
					i, workers, err)
			}
		}
	}
}

func TestKCoreParallelCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i, h := range check.Instances(2, 7) {
		r, err := core.KCoreParallelCtx(ctx, h, 2, 4)
		if r != nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("instance %d: want (nil, context.Canceled), got (%v, %v)", i, r, err)
		}
	}
}

func TestKCoreParallelCtxBudget(t *testing.T) {
	insts := check.Instances(2, 11)
	h := insts[len(insts)-1] // the largest random instance
	ctx, _ := run.WithBudget(context.Background(), run.Budget{MaxSteps: 1})
	r, err := core.KCoreParallelCtx(ctx, h, 2, 4)
	if r != nil || !errors.Is(err, run.ErrBudgetExceeded) {
		t.Fatalf("want (nil, ErrBudgetExceeded), got (%v, %v)", r, err)
	}
}
