package core

import (
	"runtime"
	"testing"
)

func TestNormalizeWorkers(t *testing.T) {
	cases := []struct{ in, want int }{
		{-3, runtime.NumCPU()},
		{0, runtime.NumCPU()},
		{1, 1},
		{7, 7},
		{maxParallelWorkers, maxParallelWorkers},
		{maxParallelWorkers + 1, maxParallelWorkers},
		{1 << 30, maxParallelWorkers},
	}
	for _, c := range cases {
		if got := normalizeWorkers(c.in); got != c.want {
			t.Errorf("normalizeWorkers(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}
