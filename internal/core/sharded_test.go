// Policy, cancellation and budget tests for the sharded decomposition
// engine.  External test package because check imports core.
package core_test

import (
	"context"
	"errors"
	"testing"

	"hyperplex/internal/check"
	"hyperplex/internal/core"
	"hyperplex/internal/run"
)

// TestShardedDecomposeOptionFallback is the regression test for the
// shard- and worker-count policies: non-positive values fall back to
// runtime.NumCPU() and absurdly large requests are clamped, so every
// combination must still produce the sequential answer.
func TestShardedDecomposeOptionFallback(t *testing.T) {
	for i, h := range check.Instances(4, 2027) {
		want := core.Decompose(h)
		for _, opts := range []core.ShardedOptions{
			{Shards: -1, Workers: -1},
			{},
			{Shards: 1, Workers: 1},
			{Shards: 1 << 20, Workers: 1 << 20},
			{Shards: 3, Workers: 2},
		} {
			got := core.ShardedDecompose(h, opts)
			if got.MaxK != want.MaxK {
				t.Fatalf("instance %d opts=%+v: MaxK = %d, want %d", i, opts, got.MaxK, want.MaxK)
			}
			for v, c := range want.VertexCoreness {
				if got.VertexCoreness[v] != c {
					t.Fatalf("instance %d opts=%+v: vertex %d coreness %d, want %d",
						i, opts, v, got.VertexCoreness[v], c)
				}
			}
		}
	}
}

func TestShardedDecomposeCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i, h := range check.Instances(2, 7) {
		d, err := core.ShardedDecomposeCtx(ctx, h, core.ShardedOptions{Shards: 3})
		if d != nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("instance %d: want (nil, context.Canceled), got (%v, %v)", i, d, err)
		}
	}
}

func TestShardedDecomposeCtxBudget(t *testing.T) {
	insts := check.Instances(2, 11)
	h := insts[len(insts)-1] // the largest random instance
	ctx, _ := run.WithBudget(context.Background(), run.Budget{MaxSteps: 1})
	d, err := core.ShardedDecomposeCtx(ctx, h, core.ShardedOptions{Shards: 3})
	if d != nil || !errors.Is(err, run.ErrBudgetExceeded) {
		t.Fatalf("want (nil, ErrBudgetExceeded), got (%v, %v)", d, err)
	}
}
