// Unit tests for the reduction layer (reduce.go): the incremental
// overlap table and the snapshot scratch checker must both implement
// the paper's containment rule, agree with each other, and agree with
// the independent detection in hypergraph.NonMaximalEdges.  In-package
// so the unexported layer is reachable (internal/check would be an
// import cycle here).
package core

import (
	"testing"

	"hyperplex/internal/csr"
	"hyperplex/internal/gen"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/xrand"
)

func noCheckpoint(int) {}

// reduceInstances returns a deterministic mix of crafted corner cases
// (duplicates, nesting, a spanning edge) and random hypergraphs.
func reduceInstances(t *testing.T) []*hypergraph.Hypergraph {
	t.Helper()
	crafted := [][][]int32{
		{{0, 1}, {0, 1}, {0, 1, 2}, {3}},          // duplicates + nesting
		{{0, 1, 2, 3, 4}, {1, 2}, {2, 3}, {0, 4}}, // spanning edge over all others
		{{0}, {1}, {2}},                           // disjoint singletons
	}
	var out []*hypergraph.Hypergraph
	for _, edges := range crafted {
		nv := int32(0)
		for _, e := range edges {
			for _, v := range e {
				if v+1 > nv {
					nv = v + 1
				}
			}
		}
		h, err := hypergraph.FromEdgeSets(int(nv), edges)
		if err != nil {
			t.Fatalf("crafted instance: %v", err)
		}
		out = append(out, h)
	}
	rng := xrand.New(0x5ED0CE)
	for i := 0; i < 12; i++ {
		out = append(out, gen.RandomHypergraph(3+rng.Intn(40), 1+rng.Intn(30), 1+rng.Intn(6), rng))
	}
	return out
}

// TestOverlapTableFill checks the freshly built table against the
// merge-based hypergraph.Overlap for every hyperedge pair.
func TestOverlapTableFill(t *testing.T) {
	for i, h := range reduceInstances(t) {
		var tab overlapTable
		tab.Fill(h, noCheckpoint)
		ne := h.NumEdges()
		for f := 0; f < ne; f++ {
			for g := 0; g < ne; g++ {
				if f == g {
					continue
				}
				if got, want := tab.Overlap(f, g), h.Overlap(f, g); got != want {
					t.Fatalf("instance %d %v: Overlap(%d, %d) = %d, want %d", i, h, f, g, got, want)
				}
			}
		}
	}
}

// bruteOverlap counts |f ∩ g| over the alive vertices directly.
func bruteOverlap(h *hypergraph.Hypergraph, vAlive []bool, f, g int) int {
	inF := make(map[int32]bool)
	for _, v := range h.Vertices(f) {
		if vAlive[v] {
			inF[v] = true
		}
	}
	n := 0
	for _, v := range h.Vertices(g) {
		if vAlive[v] && inF[v] {
			n++
		}
	}
	return n
}

// TestOverlapTableIncremental deletes vertices one at a time the way
// the sequential peeler does (ShrinkPairwise on the live incident
// edges, DropEdge on emptied ones) and checks the table against brute
// force after every deletion.
func TestOverlapTableIncremental(t *testing.T) {
	for i, h := range reduceInstances(t) {
		nv, ne := h.NumVertices(), h.NumEdges()
		var tab overlapTable
		tab.Fill(h, noCheckpoint)
		vAlive := make([]bool, nv)
		eAlive := make([]bool, ne)
		eDeg := make([]int, ne)
		for v := range vAlive {
			vAlive[v] = true
		}
		for f := range eAlive {
			eAlive[f] = true
			eDeg[f] = h.EdgeDegree(f)
		}
		rng := xrand.New(uint64(0xD0D0 + i))
		for _, v := range rng.Perm(nv) {
			vAlive[v] = false
			var live []int32
			for _, f := range h.Edges(v) {
				if eAlive[f] {
					live = append(live, f)
					eDeg[f]--
				}
			}
			tab.ShrinkPairwise(live)
			for _, f := range live {
				if eDeg[f] == 0 {
					eAlive[f] = false
					tab.DropEdge(int(f))
				}
			}
			for f := 0; f < ne; f++ {
				if !eAlive[f] {
					continue
				}
				for g := f + 1; g < ne; g++ {
					if !eAlive[g] {
						continue
					}
					want := bruteOverlap(h, vAlive, f, g)
					if got := tab.Overlap(f, g); got != want {
						t.Fatalf("instance %d %v after deleting vertex %d: Overlap(%d, %d) = %d, want %d",
							i, h, v, f, g, got, want)
					}
					if got := tab.Overlap(g, f); got != want {
						t.Fatalf("instance %d %v after deleting vertex %d: Overlap(%d, %d) = %d, want %d (asymmetry)",
							i, h, v, g, f, got, want)
					}
				}
			}
		}
	}
}

// TestNonMaximalDetectorsAgree checks all three detections of the
// containment rule against each other on the all-alive state: the
// incremental table, the snapshot scratch checker, and the independent
// hypergraph.NonMaximalEdges.
func TestNonMaximalDetectorsAgree(t *testing.T) {
	alive := func(int32) bool { return true }
	for i, h := range reduceInstances(t) {
		ne := h.NumEdges()
		var tab overlapTable
		tab.Fill(h, noCheckpoint)
		scratch := newNonMaxScratch(ne)
		cv := csr.FromH(h)
		eDeg := make([]int32, ne)
		for f := range eDeg {
			eDeg[f] = int32(h.EdgeDegree(f))
		}
		eDegAt := func(g int32) int32 { return eDeg[g] }
		want := hypergraph.NonMaximalEdges(h)
		for f := 0; f < ne; f++ {
			if eDeg[f] == 0 {
				continue // empty edges are the callers' business
			}
			if got := tab.NonMaximal(f, eDeg); got != want[f] {
				t.Fatalf("instance %d %v: overlapTable.NonMaximal(%d) = %t, want %t", i, h, f, got, want[f])
			}
			if got := scratch.NonMaximal(cv, int32(f), eDeg[f], alive, alive, eDegAt); got != want[f] {
				t.Fatalf("instance %d %v: nonMaxScratch.NonMaximal(%d) = %t, want %t", i, h, f, got, want[f])
			}
		}
	}
}

// TestNonMaxScratchStampWraparound pins the stamp-counter wraparound:
// checks on either side of the int32 rollover must not cross-talk
// through stale stamps.
func TestNonMaxScratchStampWraparound(t *testing.T) {
	h, err := hypergraph.FromEdgeSets(3, [][]int32{{0, 1}, {0, 1, 2}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	alive := func(int32) bool { return true }
	eDegAt := func(g int32) int32 { return int32(h.EdgeDegree(int(g))) }
	scratch := newNonMaxScratch(h.NumEdges())
	cv := csr.FromH(h)
	scratch.seq = 1<<31 - 3
	for trial := 0; trial < 6; trial++ {
		if !scratch.NonMaximal(cv, 0, 2, alive, alive, eDegAt) {
			t.Fatalf("trial %d (seq %d): edge 0 ⊂ edge 1 not detected", trial, scratch.seq)
		}
		if scratch.NonMaximal(cv, 1, 3, alive, alive, eDegAt) {
			t.Fatalf("trial %d (seq %d): maximal edge 1 flagged", trial, scratch.seq)
		}
	}
}
