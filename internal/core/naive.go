package core

import (
	"hyperplex/internal/hypergraph"
)

// KCoreNaive computes the k-core of h by fixpoint iteration with
// explicit set-containment scans: each round removes every alive
// vertex of degree < k, then re-scans all alive hyperedge pairs for
// containment (among alive vertices) and removes the contained ones.
// It is correct directly from the definition and therefore serves as
// the reference implementation in tests, and as the baseline in the
// maximality-detection ablation (the paper's overlap-count scheme
// versus pairwise comparison).
func KCoreNaive(h *hypergraph.Hypergraph, k int) *Result {
	nv, ne := h.NumVertices(), h.NumEdges()
	vAlive := make([]bool, nv)
	eAlive := make([]bool, ne)
	for v := range vAlive {
		vAlive[v] = true
	}
	for f := range eAlive {
		eAlive[f] = true
	}

	aliveDeg := func(f int) int {
		d := 0
		for _, v := range h.Vertices(f) {
			if vAlive[v] {
				d++
			}
		}
		return d
	}
	// containedAlive reports whether the alive part of f is a subset of
	// the alive part of g.
	containedAlive := func(f, g int) bool {
		mg := h.Vertices(g)
		inG := make(map[int32]bool, len(mg))
		for _, v := range mg {
			if vAlive[v] {
				inG[v] = true
			}
		}
		for _, v := range h.Vertices(f) {
			if vAlive[v] && !inG[v] {
				return false
			}
		}
		return true
	}

	minDeg := k
	if minDeg < 0 {
		minDeg = 0
	}
	for changed := true; changed; {
		changed = false
		// Remove non-maximal and empty hyperedges.
		for f := 0; f < ne; f++ {
			if !eAlive[f] {
				continue
			}
			df := aliveDeg(f)
			if df == 0 {
				eAlive[f] = false
				changed = true
				continue
			}
			for g := 0; g < ne; g++ {
				if g == f || !eAlive[g] {
					continue
				}
				dg := aliveDeg(g)
				if dg < df || (dg == df && g > f) {
					continue
				}
				if containedAlive(f, g) {
					eAlive[f] = false
					changed = true
					break
				}
			}
		}
		// Remove low-degree vertices (degree counted over alive edges).
		for v := 0; v < nv; v++ {
			if !vAlive[v] {
				continue
			}
			d := 0
			for _, f := range h.Edges(v) {
				if eAlive[f] {
					d++
				}
			}
			if d < minDeg || (k <= 0 && d == 0) {
				vAlive[v] = false
				changed = true
			}
		}
	}

	r := &Result{K: k, VertexIn: vAlive, EdgeIn: eAlive}
	for _, in := range vAlive {
		if in {
			r.NumVertices++
		}
	}
	for _, in := range eAlive {
		if in {
			r.NumEdges++
		}
	}
	return r
}
