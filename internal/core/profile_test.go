package core

import (
	"testing"
	"testing/quick"

	"hyperplex/internal/hypergraph"
)

func TestDecompositionProfile(t *testing.T) {
	h := plantedHypergraph(t)
	d := Decompose(h)
	levels := d.Profile()
	if len(levels) != d.MaxK {
		t.Fatalf("levels = %d, want %d", len(levels), d.MaxK)
	}
	// Level 3 is the planted 3-core: 4 vertices, 4 edges.
	if levels[2].K != 3 || levels[2].Vertices != 4 || levels[2].Edges != 4 {
		t.Errorf("level 3 = %+v", levels[2])
	}
	// Sizes are non-increasing in k.
	for i := 1; i < len(levels); i++ {
		if levels[i].Vertices > levels[i-1].Vertices || levels[i].Edges > levels[i-1].Edges {
			t.Errorf("profile not monotone: %+v", levels)
		}
	}
}

func TestPropertyProfileMatchesCores(t *testing.T) {
	prop := func(seed uint64) bool {
		h := randomHypergraph(seed)
		d := Decompose(h)
		for _, lvl := range d.Profile() {
			r := d.Core(lvl.K)
			if r.NumVertices != lvl.Vertices || r.NumEdges != lvl.Edges {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestKCoreNeedNotBeConnected pins the paper's remark that a k-core
// can be disconnected: two disjoint planted blocks both survive.
func TestKCoreNeedNotBeConnected(t *testing.T) {
	b := hypergraph.NewBuilder()
	// Block 1 on {a,b,c,d}, block 2 on {p,q,r,s}; each vertex in 3
	// hyperedges of its block.
	for _, blk := range [][]string{{"a", "b", "c", "d"}, {"p", "q", "r", "s"}} {
		b.AddEdge(blk[0]+"1", blk[0], blk[1], blk[2])
		b.AddEdge(blk[0]+"2", blk[0], blk[1], blk[3])
		b.AddEdge(blk[0]+"3", blk[0], blk[2], blk[3])
		b.AddEdge(blk[0]+"4", blk[1], blk[2], blk[3])
	}
	h := b.MustBuild()
	r := KCore(h, 3)
	if r.NumVertices != 8 || r.NumEdges != 8 {
		t.Fatalf("3-core = %d/%d, want both blocks (8/8)", r.NumVertices, r.NumEdges)
	}
}
