package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hyperplex/internal/csr"
	"hyperplex/internal/failpoint"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/run"
)

// fpParallelWorker fires inside every parallel worker chunk, so an
// injected panic exercises the worker recovery boundary.
var fpParallelWorker = failpoint.Register("core.parallel.worker")

// maxParallelWorkers caps the worker count: each worker owns O(|F|)
// scratch arrays, so an absurd request would turn into an allocation
// bomb rather than more parallelism.
const maxParallelWorkers = 512

// normalizeWorkers applies the documented worker-count policy shared
// by the parallel kernels: ≤ 0 selects runtime.NumCPU(), and requests
// beyond maxParallelWorkers are clamped.
func normalizeWorkers(workers int) int {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > maxParallelWorkers {
		workers = maxParallelWorkers
	}
	return workers
}

// WorkerPanicError reports a panic recovered at a parallel worker
// boundary: the computation is abandoned but the panic surfaces as an
// error instead of crossing goroutines, and no worker is leaked.
type WorkerPanicError struct {
	Value any    // the recovered panic value
	Stack []byte // stack of the panicking worker
}

func (e *WorkerPanicError) Error() string {
	return fmt.Sprintf("core: parallel worker panic: %v", e.Value)
}

// KCoreParallel computes the k-core of h with a round-synchronous
// parallel peeling algorithm, answering the paper's observation that
// "for large hypergraphs, a parallel algorithm will need to be
// designed".  workers ≤ 0 selects runtime.NumCPU(); requests beyond an
// internal cap are clamped (each worker owns O(|F|) scratch).
//
// Each round proceeds in three parallel phases over a frontier:
//
//  1. every alive vertex whose degree fell below k is retired, and the
//     hyperedge degrees of its hyperedges are decremented atomically;
//  2. every hyperedge that shrank is re-checked for emptiness and
//     maximality (overlap counts are recomputed locally against the
//     shrunk edge's alive two-hop neighborhood, using per-worker
//     stamped scratch arrays);
//  3. every hyperedge that died decrements the degrees of its alive
//     members atomically, seeding the next round's frontier.
//
// The k-core is a confluent fixpoint, so the parallel schedule reaches
// the same vertex set and the same family of hyperedge member-sets as
// the sequential algorithm; with the shared (degree, ID) tie-break for
// equal hyperedges the surviving edge IDs match as well.
func KCoreParallel(h *hypergraph.Hypergraph, k int, workers int) *Result {
	r, err := KCoreParallelCtx(context.Background(), h, k, workers)
	if err != nil {
		// Only reachable through an armed failpoint or a genuine worker
		// bug; either way the panic carries the recovered cause.
		panic(err)
	}
	return r
}

// KCoreParallelCtx is KCoreParallel honoring cancellation, deadline
// and any run.Budget attached to ctx, checked inside every worker
// chunk at bounded intervals.  A panic in a worker is recovered at the
// worker boundary and returned as a *WorkerPanicError — workers never
// leak and panics never cross goroutines.  On any error it returns
// (nil, err): the half-peeled state is not a valid core.
func KCoreParallelCtx(ctx context.Context, h *hypergraph.Hypergraph, k int, workers int) (*Result, error) {
	workers = normalizeWorkers(workers)
	meter := run.MeterFrom(ctx)
	// Entry checkpoint: an already-cancelled context fails before any
	// work, even on inputs too small to reach a worker checkpoint.
	if err := run.Tick(ctx, meter, 0); err != nil {
		return nil, err
	}
	nv, ne := h.NumVertices(), h.NumEdges()
	// The snapshot checker reads pins through the flat CSR view (the
	// adjacency is aliased from h, so this costs only the offsets).
	cv := csr.FromH(h)

	vAlive := make([]atomic.Bool, nv)
	eAlive := make([]atomic.Bool, ne)
	vDeg := make([]atomic.Int32, nv)
	eDeg := make([]atomic.Int32, ne)
	for v := 0; v < nv; v++ {
		vAlive[v].Store(true)
		vDeg[v].Store(int32(h.VertexDegree(v)))
	}
	for f := 0; f < ne; f++ {
		eAlive[f].Store(true)
		eDeg[f].Store(int32(h.EdgeDegree(f)))
	}

	minDeg := int32(k)
	if minDeg < 1 {
		minDeg = 1 // the 0-core still drops isolated vertices
	}

	// parallelRange runs fn over [0, n) split into worker chunks.  A
	// worker panic is recovered at the goroutine boundary (first one
	// wins) and returned; fn's own error return aborts likewise.  Every
	// chunk starts with a failpoint and a cancellation/budget tick, so
	// a stuck or cancelled computation stops at the next round phase.
	var panicErr atomic.Pointer[WorkerPanicError]
	var firstErr atomic.Pointer[error]
	parallelRange := func(n int, fn func(lo, hi, worker int) error) error {
		if n == 0 {
			return nil
		}
		w := workers
		if w > n {
			w = n
		}
		var wg sync.WaitGroup
		chunk := (n + w - 1) / w
		//hyperplexvet:ignore budgettick bounded spawn loop: at most workers iterations of O(1) setup; each spawned chunk ticks at entry
		for i := 0; i < w; i++ {
			lo := i * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi, worker int) {
				defer wg.Done()
				defer func() {
					if x := recover(); x != nil {
						stack := make([]byte, 16<<10)
						stack = stack[:runtime.Stack(stack, false)]
						panicErr.CompareAndSwap(nil, &WorkerPanicError{Value: x, Stack: stack})
					}
				}()
				if err := failpoint.Inject(fpParallelWorker); err != nil {
					firstErr.CompareAndSwap(nil, &err)
					return
				}
				if err := run.Tick(ctx, meter, int64(hi-lo)); err != nil {
					firstErr.CompareAndSwap(nil, &err)
					return
				}
				if err := fn(lo, hi, worker); err != nil {
					firstErr.CompareAndSwap(nil, &err)
				}
			}(lo, hi, i)
		}
		wg.Wait()
		if pe := panicErr.Load(); pe != nil {
			return pe
		}
		if ep := firstErr.Load(); ep != nil {
			return *ep
		}
		return nil
	}

	// checkEdges re-checks the hyperedges listed in cand (all alive)
	// for emptiness or non-maximality and returns those that must die.
	// The detection is the reduction layer's snapshot checker
	// (nonMaxScratch in reduce.go); per-worker scratch instances make
	// the overlap counting race-free, and the accessors read the atomic
	// alive state that stays constant within the phase.
	scratches := make([]*nonMaxScratch, workers)
	for i := range scratches {
		scratches[i] = newNonMaxScratch(ne)
	}
	vAliveAt := func(v int32) bool { return vAlive[v].Load() }
	eAliveAt := func(g int32) bool { return eAlive[g].Load() }
	eDegAt := func(g int32) int32 { return eDeg[g].Load() }
	checkEdges := func(cand []int32) ([]int32, error) {
		dead := make([][]int32, workers)
		err := parallelRange(len(cand), func(lo, hi, worker int) error {
			scratch := scratches[worker]
			//hyperplexvet:ignore budgettick charged en bloc by the chunk-entry run.Tick(hi-lo) in parallelRange
			for i := lo; i < hi; i++ {
				f := cand[i]
				df := eDeg[f].Load()
				if df == 0 || scratch.NonMaximal(cv, f, df, vAliveAt, eAliveAt, eDegAt) {
					dead[worker] = append(dead[worker], f)
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		var all []int32
		for _, d := range dead {
			all = append(all, d...)
		}
		return all, nil
	}

	// Round 0: the initial reduction checks every hyperedge.
	initial := make([]int32, ne)
	for f := range initial {
		initial[f] = int32(f)
	}
	round := int32(1)
	dying, err := checkEdges(initial)
	if err != nil {
		return nil, err
	}

	shrunkStamp := make([]atomic.Int32, ne)
	for f := range shrunkStamp {
		shrunkStamp[f].Store(-1)
	}

	for {
		// Per-round checkpoint: a round whose work list is empty spawns
		// no chunks, so the chunk-entry ticks alone would let the loop
		// pass a round without observing cancellation or the budget.
		if err := run.Tick(ctx, meter, 1); err != nil {
			return nil, err
		}
		// Phase 3 (and entry): retire dead edges, decrement members.
		err := parallelRange(len(dying), func(lo, hi, _ int) error {
			//hyperplexvet:ignore budgettick charged en bloc by the chunk-entry run.Tick(hi-lo) in parallelRange
			for i := lo; i < hi; i++ {
				f := dying[i]
				eAlive[f].Store(false)
				for _, v := range h.Vertices(int(f)) {
					if vAlive[v].Load() {
						vDeg[v].Add(-1)
					}
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}

		// Phase 1: gather the vertex frontier.
		frontierParts := make([][]int32, workers)
		err = parallelRange(nv, func(lo, hi, worker int) error {
			for v := lo; v < hi; v++ {
				if vAlive[v].Load() && vDeg[v].Load() < minDeg {
					frontierParts[worker] = append(frontierParts[worker], int32(v))
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		var frontier []int32
		for _, p := range frontierParts {
			frontier = append(frontier, p...)
		}
		if len(frontier) == 0 && len(dying) == 0 {
			break
		}
		round++

		// Retire frontier vertices and shrink their edges.
		err = parallelRange(len(frontier), func(lo, hi, _ int) error {
			for i := lo; i < hi; i++ {
				vAlive[frontier[i]].Store(false)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		shrunkParts := make([][]int32, workers)
		err = parallelRange(len(frontier), func(lo, hi, worker int) error {
			//hyperplexvet:ignore budgettick charged en bloc by the chunk-entry run.Tick(hi-lo) in parallelRange
			for i := lo; i < hi; i++ {
				v := frontier[i]
				for _, f := range h.Edges(int(v)) {
					if !eAlive[f].Load() {
						continue
					}
					eDeg[f].Add(-1)
					if shrunkStamp[f].Swap(round) != round {
						shrunkParts[worker] = append(shrunkParts[worker], f)
					}
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		var shrunk []int32
		for _, p := range shrunkParts {
			shrunk = append(shrunk, p...)
		}

		// Phase 2: re-check shrunk edges.
		dying, err = checkEdges(shrunk)
		if err != nil {
			return nil, err
		}
	}

	r := &Result{K: k, VertexIn: make([]bool, nv), EdgeIn: make([]bool, ne)}
	for v := 0; v < nv; v++ {
		if vAlive[v].Load() {
			r.VertexIn[v] = true
			r.NumVertices++
		}
	}
	for f := 0; f < ne; f++ {
		if eAlive[f].Load() {
			r.EdgeIn[f] = true
			r.NumEdges++
		}
	}
	return r, nil
}
