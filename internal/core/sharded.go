package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hyperplex/internal/csr"
	"hyperplex/internal/failpoint"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/partition"
	"hyperplex/internal/run"
)

// This file is the package's engine layer: a sharded core
// decomposition that peels a partitioned hypergraph (internal/
// partition) in bulk-synchronous rounds.  Each shard owns a vertex
// block and the hyperedges anchored in it; within a phase a shard
// writes only its owned state, and updates crossing a shard boundary
// travel through per-pair outboxes that the owning shard applies after
// an exchange barrier.  Plain arrays therefore suffice — no atomics —
// and every phase reads a snapshot that the barriers keep stable.  The
// rounds are the same round-synchronous schedule as KCoreParallel, so
// the engine reaches the same confluent fixpoint per level; the
// non-maximality detection is the reduction layer's snapshot checker
// (reduce.go).
//
// All pin traversal goes through the flat CSR view (internal/csr) of
// the input, and the exchange payloads are flat int32 ID slices over
// that shared substrate — one entry per degree decrement — so a future
// distributed engine can ship the outboxes as-is.

// fpShardedWorker fires inside every sharded engine worker, so an
// injected panic exercises the worker recovery boundary.
var fpShardedWorker = failpoint.Register("core.sharded.worker")

// fpShardedExchange fires at every exchange barrier, where outbox
// updates become visible to their owning shards.
var fpShardedExchange = failpoint.Register("core.sharded.exchange")

// ShardedOptions configures the sharded decomposition engine.
type ShardedOptions struct {
	// Shards is the number of vertex blocks: ≤ 0 selects
	// runtime.NumCPU(), and the count is clamped to the vertex count
	// and to the same cap as the worker policy (the engine's exchange
	// buffers are quadratic in the shard count).
	Shards int
	// Workers is the number of goroutines driving the phases, under
	// the normalizeWorkers policy (≤ 0 → runtime.NumCPU(), capped).
	Workers int
}

// normalizeShardCount applies the documented shard policy of
// ShardedOptions.Shards.
func normalizeShardCount(shards, numVertices int) int {
	shards = partition.NormalizeShards(shards, numVertices)
	if shards > maxParallelWorkers {
		shards = maxParallelWorkers
	}
	return shards
}

// ShardedDecompose computes the full core decomposition of h with the
// sharded peeling engine.  The result is the same decomposition as
// Decompose: vertex coreness is a confluent fixpoint, and the shared
// (degree, ID) tie-break keeps the surviving hyperedge families equal
// level by level.
func ShardedDecompose(h *hypergraph.Hypergraph, opts ShardedOptions) *Decomposition {
	d, err := ShardedDecomposeCtx(context.Background(), h, opts)
	if err != nil {
		// Only reachable through an armed failpoint: a background
		// context cannot be cancelled and carries no budget.
		panic(err)
	}
	return d
}

// ShardedDecomposeCtx is ShardedDecompose honoring cancellation,
// deadline and any run.Budget attached to ctx, checked inside every
// phase.  A panic in a worker is recovered at the worker boundary and
// returned as a *WorkerPanicError — workers never leak and panics
// never cross goroutines.  On any error it returns (nil, err): the
// half-peeled state is not a valid decomposition.
func ShardedDecomposeCtx(ctx context.Context, h *hypergraph.Hypergraph, opts ShardedOptions) (*Decomposition, error) {
	meter := run.MeterFrom(ctx)
	// Entry checkpoint: an already-cancelled context fails before the
	// partition is built.
	if err := run.Tick(ctx, meter, 0); err != nil {
		return nil, err
	}
	part, err := partition.BuildCtx(ctx, h, normalizeShardCount(opts.Shards, h.NumVertices()))
	if err != nil {
		return nil, err
	}
	e := newShardedEngine(ctx, h, part, normalizeWorkers(opts.Workers))
	return e.decompose()
}

// shardedEngine holds the engine state.  The slices indexed by vertex
// or hyperedge are written only by the owning shard's phase; the
// slices indexed by shard are written only by that shard.
type shardedEngine struct {
	h    *hypergraph.Hypergraph
	c    *csr.CSR // flat view of h; all pin traversal goes through it
	part *partition.Partition
	//hyperplexvet:ignore ctxfirst scoped to one ShardedDecomposeCtx call; the phase methods all run under it
	ctx     context.Context
	meter   *run.Meter
	workers int
	k       int // current peeling threshold

	vAlive, eAlive []bool
	vDeg, eDeg     []int32
	vCore, eCore   []int
	aliveVShard    []int // alive owned vertices per shard

	frontier [][]int32 // per shard: owned vertices below threshold
	dying    [][]int32 // per shard: owned hyperedges found dead
	shrunk   [][]int32 // per shard: owned hyperedges shrunk this round

	shrunkStamp []int32 // last round each hyperedge was recorded shrunk
	round       int32

	// outV[s][t] carries vertex-degree decrements from shard s to
	// vertex owner t; outE[s][t] hyperedge-degree decrements to edge
	// owner t.  One entry is one decrement; buffers are reused.
	outV, outE [][][]int32

	scratches []*nonMaxScratch // one per worker
	vAliveAt  func(int32) bool
	eAliveAt  func(int32) bool
	eDegAt    func(int32) int32
}

func newShardedEngine(ctx context.Context, h *hypergraph.Hypergraph, part *partition.Partition, workers int) *shardedEngine {
	nv, ne := h.NumVertices(), h.NumEdges()
	ns := part.NumShards()
	e := &shardedEngine{
		h:           h,
		c:           csr.FromH(h),
		part:        part,
		ctx:         ctx,
		meter:       run.MeterFrom(ctx),
		workers:     workers,
		vAlive:      make([]bool, nv),
		eAlive:      make([]bool, ne),
		vDeg:        make([]int32, nv),
		eDeg:        make([]int32, ne),
		vCore:       make([]int, nv),
		eCore:       make([]int, ne),
		aliveVShard: make([]int, ns),
		frontier:    make([][]int32, ns),
		dying:       make([][]int32, ns),
		shrunk:      make([][]int32, ns),
		shrunkStamp: make([]int32, ne),
		outV:        make([][][]int32, ns),
		outE:        make([][][]int32, ns),
		scratches:   make([]*nonMaxScratch, workers),
	}
	for v := 0; v < nv; v++ {
		e.vAlive[v] = true
		e.vDeg[v] = int32(h.VertexDegree(v))
	}
	for f := 0; f < ne; f++ {
		e.eAlive[f] = true
		e.eDeg[f] = int32(h.EdgeDegree(f))
		e.shrunkStamp[f] = -1
	}
	for s := range e.outV {
		e.aliveVShard[s] = len(part.Shards[s].Vertices)
		e.outV[s] = make([][]int32, ns)
		e.outE[s] = make([][]int32, ns)
	}
	for i := range e.scratches {
		e.scratches[i] = newNonMaxScratch(ne)
	}
	e.vAliveAt = func(v int32) bool { return e.vAlive[v] }
	e.eAliveAt = func(g int32) bool { return e.eAlive[g] }
	e.eDegAt = func(g int32) int32 { return e.eDeg[g] }
	return e
}

// forEachShard runs fn(s, worker) over every shard, split across the
// engine's workers.  A worker panic is recovered at the goroutine
// boundary (first one wins) and returned as a *WorkerPanicError; fn's
// own error return aborts likewise.
func (e *shardedEngine) forEachShard(fn func(s, worker int) error) error {
	ns := e.part.NumShards()
	w := e.workers
	if w > ns {
		w = ns
	}
	var panicErr atomic.Pointer[WorkerPanicError]
	var firstErr atomic.Pointer[error]
	var wg sync.WaitGroup
	chunk := (ns + w - 1) / w
	for i := 0; i < w; i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > ns {
			hi = ns
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi, worker int) {
			defer wg.Done()
			defer func() {
				if x := recover(); x != nil {
					stack := make([]byte, 16<<10)
					stack = stack[:runtime.Stack(stack, false)]
					panicErr.CompareAndSwap(nil, &WorkerPanicError{Value: x, Stack: stack})
				}
			}()
			if err := failpoint.Inject(fpShardedWorker); err != nil {
				firstErr.CompareAndSwap(nil, &err)
				return
			}
			for s := lo; s < hi; s++ {
				if err := fn(s, worker); err != nil {
					firstErr.CompareAndSwap(nil, &err)
					return
				}
			}
		}(lo, hi, i)
	}
	wg.Wait()
	if pe := panicErr.Load(); pe != nil {
		return pe
	}
	if ep := firstErr.Load(); ep != nil {
		return *ep
	}
	return nil
}

// exchange is the barrier at which outbox updates become visible to
// their owning shards; the failpoint makes the hand-off injectable.
func (e *shardedEngine) exchange() error {
	if err := failpoint.Inject(fpShardedExchange); err != nil {
		return fmt.Errorf("core: sharded exchange: %w", err)
	}
	return nil
}

// clampCore is the shared coreness assignment: state retired while
// peeling toward threshold k belonged to the (k-1)-core.
func (e *shardedEngine) clampCore() int {
	if e.k < 1 {
		return 0
	}
	return e.k - 1
}

// applyDying retires shard s's dying hyperedges and decrements the
// degrees of their alive members — owned directly, foreign through the
// vertex outboxes.
func (e *shardedEngine) applyDying(s, _ int) error {
	list := e.dying[s]
	if err := run.Tick(e.ctx, e.meter, int64(len(list))+1); err != nil {
		return err
	}
	for _, f := range list {
		e.eAlive[f] = false
		e.eCore[f] = e.clampCore()
		for _, v := range e.c.EdgeVertices(f) {
			if !e.vAlive[v] {
				continue
			}
			if t := e.part.VertexOwner[v]; int(t) == s {
				e.vDeg[v]--
			} else {
				e.outV[s][t] = append(e.outV[s][t], v)
			}
		}
	}
	return nil
}

// drainAndGather applies shard s's vertex inbox and gathers its
// frontier: owned alive vertices whose degree fell below the
// threshold.
func (e *shardedEngine) drainAndGather(s, _ int) error {
	owned := e.part.Shards[s].Vertices
	n := len(owned)
	for src := range e.outV {
		n += len(e.outV[src][s])
	}
	if err := run.Tick(e.ctx, e.meter, int64(n)+1); err != nil {
		return err
	}
	for src := range e.outV {
		buf := e.outV[src][s]
		for _, v := range buf {
			e.vDeg[v]--
		}
		e.outV[src][s] = buf[:0]
	}
	e.frontier[s] = e.frontier[s][:0]
	for _, v := range owned {
		if e.vAlive[v] && e.vDeg[v] < int32(e.k) {
			e.frontier[s] = append(e.frontier[s], v)
		}
	}
	return nil
}

// retireAndShrink retires shard s's frontier vertices and shrinks
// their alive hyperedges — owned directly (recording them for the
// re-check), foreign through the hyperedge outboxes.
func (e *shardedEngine) retireAndShrink(s, _ int) error {
	list := e.frontier[s]
	if err := run.Tick(e.ctx, e.meter, int64(len(list))+1); err != nil {
		return err
	}
	e.shrunk[s] = e.shrunk[s][:0]
	for _, v := range list {
		e.vAlive[v] = false
		e.vCore[v] = e.clampCore()
		e.aliveVShard[s]--
		for _, f := range e.c.VertexEdges(v) {
			if !e.eAlive[f] {
				continue
			}
			if t := e.part.EdgeOwner[f]; int(t) == s {
				e.eDeg[f]--
				if e.shrunkStamp[f] != e.round {
					e.shrunkStamp[f] = e.round
					e.shrunk[s] = append(e.shrunk[s], f)
				}
			} else {
				e.outE[s][t] = append(e.outE[s][t], f)
			}
		}
	}
	return nil
}

// drainEdges applies shard s's hyperedge inbox.  It runs as its own
// phase: the re-check that follows reads the degrees of other shards'
// hyperedges, so every inbox must be fully applied — barrier between —
// before any shard starts checking.
func (e *shardedEngine) drainEdges(s, _ int) error {
	n := 0
	for src := range e.outE {
		n += len(e.outE[src][s])
	}
	if err := run.Tick(e.ctx, e.meter, int64(n)+1); err != nil {
		return err
	}
	for src := range e.outE {
		buf := e.outE[src][s]
		for _, f := range buf {
			e.eDeg[f]--
			if e.shrunkStamp[f] != e.round {
				e.shrunkStamp[f] = e.round
				e.shrunk[s] = append(e.shrunk[s], f)
			}
		}
		e.outE[src][s] = buf[:0]
	}
	return nil
}

// checkShrunk re-checks every owned hyperedge that shrank this round
// for emptiness or non-maximality, refilling the shard's dying list.
func (e *shardedEngine) checkShrunk(s, worker int) error {
	return e.checkShard(s, worker, e.shrunk[s])
}

// checkShard refills shard s's dying list with the candidates that
// are empty or non-maximal against the current stable snapshot.
func (e *shardedEngine) checkShard(s, worker int, cand []int32) error {
	if err := run.Tick(e.ctx, e.meter, int64(len(cand))+1); err != nil {
		return err
	}
	scratch := e.scratches[worker]
	e.dying[s] = e.dying[s][:0]
	for _, f := range cand {
		df := e.eDeg[f]
		if df == 0 || scratch.NonMaximal(e.c, f, df, e.vAliveAt, e.eAliveAt, e.eDegAt) {
			e.dying[s] = append(e.dying[s], f)
		}
	}
	return nil
}

// decompose runs the level loop: like Decompose, it raises the
// threshold one level at a time, carrying all peeling state across
// levels, but peels each level in bulk-synchronous rounds.
func (e *shardedEngine) decompose() (*Decomposition, error) {
	// Round 0: the initial reduction checks every hyperedge.
	err := e.forEachShard(func(s, worker int) error {
		return e.checkShard(s, worker, e.part.Shards[s].Edges)
	})
	if err != nil {
		return nil, err
	}

	aliveV := 0
	for _, n := range e.aliveVShard {
		aliveV += n
	}
	maxK := 0
	for k := 1; aliveV > 0; k++ {
		e.k = k
		for {
			dyingTotal := 0
			for _, d := range e.dying {
				dyingTotal += len(d)
			}
			if err := e.forEachShard(e.applyDying); err != nil {
				return nil, err
			}
			if err := e.exchange(); err != nil {
				return nil, err
			}
			if err := e.forEachShard(e.drainAndGather); err != nil {
				return nil, err
			}
			frontierTotal := 0
			for _, fr := range e.frontier {
				frontierTotal += len(fr)
			}
			if frontierTotal == 0 && dyingTotal == 0 {
				break // level fixpoint: every alive vertex has degree ≥ k
			}
			e.round++
			if err := e.forEachShard(e.retireAndShrink); err != nil {
				return nil, err
			}
			if err := e.exchange(); err != nil {
				return nil, err
			}
			if err := e.forEachShard(e.drainEdges); err != nil {
				return nil, err
			}
			if err := e.forEachShard(e.checkShrunk); err != nil {
				return nil, err
			}
		}
		aliveV = 0
		for _, n := range e.aliveVShard {
			aliveV += n
		}
		if aliveV > 0 {
			maxK = k
		}
	}
	return &Decomposition{
		VertexCoreness: e.vCore,
		EdgeCoreness:   e.eCore,
		MaxK:           maxK,
	}, nil
}
