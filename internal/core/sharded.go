package core

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"hyperplex/internal/csr"
	"hyperplex/internal/failpoint"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/partition"
	"hyperplex/internal/run"
)

// This file is the package's engine layer: a sharded core
// decomposition that peels a partitioned hypergraph (internal/
// partition) in bulk-synchronous rounds.  Each shard owns a vertex
// block and the hyperedges anchored in it; within a phase a shard
// writes only its owned state, and updates crossing a shard boundary
// travel through per-pair outboxes that the owning shard applies after
// an exchange barrier.  Plain arrays therefore suffice — no atomics —
// and every phase reads a snapshot that the barriers keep stable.  The
// rounds are the same round-synchronous schedule as KCoreParallel, so
// the engine reaches the same confluent fixpoint per level; the
// non-maximality detection is the reduction layer's snapshot checker
// (reduce.go).
//
// The shard-local peel state lives in the flat-array substrate: each
// shard materializes its block as a csr.CSR (partition.MaterializeCSR)
// plus the complementary remote-incidence rows (partition.RemoteEdges),
// and all of its mutable int32 state — owned degrees, the lazy bucket
// queue, the shrunk stamps, the frontier/shrunk/dying lists and the
// outbox payloads — is carved from one arena per shard.  Instead of
// rescanning every owned vertex per round, the frontier is gathered
// from the bucket queue with the same lazy stale-skipping discipline as
// csr/peel.go: a vertex is re-pushed on every degree decrement and
// entries whose recorded degree went stale are dropped at pop time, so
// the entry arena is bounded by |owned| plus the owned incidence count.
// Exchange payloads are flat int32 ID slices over the shared substrate
// — one entry per degree decrement — so a future distributed engine can
// ship the outboxes as-is.

// fpShardedWorker fires inside every sharded engine worker, so an
// injected panic exercises the worker recovery boundary.
var fpShardedWorker = failpoint.Register("core.sharded.worker")

// fpShardedExchange fires at every exchange barrier, where outbox
// updates become visible to their owning shards.
var fpShardedExchange = failpoint.Register("core.sharded.exchange")

// ShardedOptions configures the sharded decomposition engine.
type ShardedOptions struct {
	// Shards is the number of vertex blocks: ≤ 0 selects
	// runtime.NumCPU(), and the count is clamped to the vertex count
	// and to the same cap as the worker policy (the engine's exchange
	// buffers are quadratic in the shard count).
	Shards int
	// Workers is the number of goroutines driving the phases, under
	// the normalizeWorkers policy (≤ 0 → runtime.NumCPU(), capped).
	Workers int
}

// normalizeShardCount applies the documented shard policy of
// ShardedOptions.Shards.
func normalizeShardCount(shards, numVertices int) int {
	shards = partition.NormalizeShards(shards, numVertices)
	if shards > maxParallelWorkers {
		shards = maxParallelWorkers
	}
	return shards
}

// ShardedDecompose computes the full core decomposition of h with the
// sharded peeling engine.  The result is the same decomposition as
// Decompose: vertex coreness is a confluent fixpoint, and the shared
// (degree, ID) tie-break keeps the surviving hyperedge families equal
// level by level.
func ShardedDecompose(h *hypergraph.Hypergraph, opts ShardedOptions) *Decomposition {
	d, err := ShardedDecomposeCtx(context.Background(), h, opts)
	if err != nil {
		// Only reachable through an armed failpoint: a background
		// context cannot be cancelled and carries no budget.
		panic(err)
	}
	return d
}

// ShardedDecomposeCtx is ShardedDecompose honoring cancellation,
// deadline and any run.Budget attached to ctx, checked inside every
// phase.  A panic in a worker is recovered at the worker boundary and
// returned as a *WorkerPanicError — workers never leak and panics
// never cross goroutines.  On any error it returns (nil, err): the
// half-peeled state is not a valid decomposition.
func ShardedDecomposeCtx(ctx context.Context, h *hypergraph.Hypergraph, opts ShardedOptions) (*Decomposition, error) {
	meter := run.MeterFrom(ctx)
	// Entry checkpoint: an already-cancelled context fails before the
	// partition is built.
	if err := run.Tick(ctx, meter, 0); err != nil {
		return nil, err
	}
	part, err := partition.BuildCtx(ctx, h, normalizeShardCount(opts.Shards, h.NumVertices()))
	if err != nil {
		return nil, err
	}
	e := newShardedEngine(ctx, h, part, normalizeWorkers(opts.Workers))
	return e.decompose()
}

// shardPeel is one shard's peel state, all of it over the flat-array
// substrate: the CSR block of owned∪frontier vertices and owned
// hyperedges, the remote-incidence rows, and a single int32 arena
// carved into the degree array, the lazy bucket queue, the shrunk
// stamps, the frontier/shrunk/dying lists and the per-target outbox
// payloads.  Owned vertices are addressed by their offset j in the
// contiguous owned block: global ID lo+j, block-local ID olo+j.
type shardPeel struct {
	block *csr.CSR // owned∪frontier × owned hyperedges, with ID maps
	lo    int32    // first owned global vertex ID
	n     int32    // owned vertex count
	olo   int32    // block-local ID of the first owned vertex

	deg []int32 // current full degree per owned vertex, indexed by j

	// Lazy bucket queue over the owned vertices: head[d] is the top
	// entry index of the degree-d bucket, next links entries, item
	// holds the owned offset of each entry.  A vertex is re-pushed on
	// every decrement; stale entries are skipped at gather time.
	head, next, item []int32
	nfree            int32
	cur              int // lowest possibly-non-empty bucket

	stamp    []int32 // per owned local hyperedge: last round it shrank
	frontier []int32 // owned offsets gathered below threshold this round
	shrunk   []int32 // local hyperedge IDs shrunk this round
	dying    []int32 // local hyperedge IDs found dead

	// Remote incidence: rAdj[rOff[j]:rOff[j+1]] lists the foreign-owned
	// hyperedges (global IDs) incident to owned vertex j.
	rOff, rAdj []int32

	// outV[t] carries vertex-degree decrements to vertex owner t,
	// outE[t] hyperedge-degree decrements to edge owner t, both as
	// flat global ID payloads (one entry per decrement).  Capacities
	// are exact: every cut pin and every remote incidence fires at
	// most once over the whole run.
	//hyperplexvet:outbox
	outV, outE [][]int32

	aliveV int
}

// push records that owned vertex j now has degree d.  Entries are
// never removed eagerly; gathers skip entries whose recorded degree is
// stale.
func (p *shardPeel) push(j int32, d int) {
	idx := p.nfree
	p.nfree++
	p.item[idx] = j
	p.next[idx] = p.head[d]
	p.head[d] = idx
	if d < p.cur {
		p.cur = d
	}
}

// shardedEngine holds the engine state.  The global slices indexed by
// vertex or hyperedge are written only by the owning shard's phase;
// each shardPeel is written only by its own shard (outbox buffers by
// the sending shard, drained by the receiver after a barrier).
type shardedEngine struct {
	c    *csr.CSR // flat view of the full hypergraph
	part *partition.Partition
	//hyperplexvet:ignore ctxfirst scoped to one ShardedDecomposeCtx call; the phase methods all run under it
	ctx     context.Context
	meter   *run.Meter
	workers int
	k       int // current peeling threshold

	vAlive, eAlive []bool
	eDeg           []int32 // global hyperedge degrees, for the snapshot checker
	vCore, eCore   []int

	peels []*shardPeel
	round int32

	scratches []*nonMaxScratch // one per worker
	vAliveAt  func(int32) bool
	eAliveAt  func(int32) bool
	eDegAt    func(int32) int32
}

func newShardedEngine(ctx context.Context, h *hypergraph.Hypergraph, part *partition.Partition, workers int) *shardedEngine {
	nv, ne := h.NumVertices(), h.NumEdges()
	ns := part.NumShards()
	e := &shardedEngine{
		c:         csr.FromH(h),
		part:      part,
		ctx:       ctx,
		meter:     run.MeterFrom(ctx),
		workers:   workers,
		vAlive:    make([]bool, nv),
		eAlive:    make([]bool, ne),
		eDeg:      make([]int32, ne),
		vCore:     make([]int, nv),
		eCore:     make([]int, ne),
		peels:     make([]*shardPeel, ns),
		scratches: make([]*nonMaxScratch, workers),
	}
	for v := 0; v < nv; v++ {
		e.vAlive[v] = true
	}
	for f := 0; f < ne; f++ {
		e.eAlive[f] = true
		e.eDeg[f] = int32(h.EdgeDegree(f))
	}
	for i := range e.scratches {
		e.scratches[i] = newNonMaxScratch(ne)
	}
	e.vAliveAt = func(v int32) bool { return e.vAlive[v] }
	e.eAliveAt = func(g int32) bool { return e.eAlive[g] }
	e.eDegAt = func(g int32) int32 { return e.eDeg[g] }
	return e
}

// setupShard materializes shard s's peel state: the CSR block, the
// remote-incidence rows, and the arena carved into degrees, bucket
// queue, stamps, work lists and outbox payloads.
//
//hyperplexvet:phase owned
func (e *shardedEngine) setupShard(s, _ int) error {
	sh := &e.part.Shards[s]
	n := csr.MustInt32(len(sh.Vertices))
	if err := run.Tick(e.ctx, e.meter, int64(n)+int64(sh.Pins)+1); err != nil {
		return err
	}
	block := e.part.MaterializeCSR(s)
	rOff, rAdj := e.part.RemoteEdges(s)
	ne := csr.MustInt32(block.NumEdges())
	ns := len(e.peels)

	p := &shardPeel{block: block, n: n, aliveV: int(n)}
	if n > 0 {
		p.lo = sh.Vertices[0]
		olo, _ := slices.BinarySearch(block.VertexID, p.lo)
		p.olo = int32(olo)
	}

	// Exact arena accounting.  ownedInc bounds the bucket entries (one
	// initial push per owned vertex plus one per degree decrement, at
	// most one per incidence); the outbox capacities count the cut pins
	// and remote incidences per target, each of which sends at most one
	// decrement over the whole run.
	maxDeg := int32(0)
	ownedInc := int32(0)
	for j := int32(0); j < n; j++ {
		d := e.c.VertexDegree(p.lo + j)
		if d > maxDeg {
			maxDeg = d
		}
		ownedInc += d
	}
	vcnt := make([]int32, ns)
	for _, w := range block.EAdj {
		if j := w - p.olo; j < 0 || j >= n {
			vcnt[e.part.VertexOwner[block.VertexID[w]]]++
		}
	}
	ecnt := make([]int32, ns)
	for _, g := range rAdj {
		ecnt[e.part.EdgeOwner[g]]++
	}
	vout, eout := int32(0), csr.MustInt32(len(rAdj))
	for _, c := range vcnt {
		vout += c
	}

	entries := n + ownedInc
	arena := make([]int32, n+(maxDeg+1)+2*entries+3*ne+n+vout+eout)
	carve := func(sz int32) []int32 {
		s := arena[:sz:sz]
		arena = arena[sz:]
		return s
	}
	p.deg = carve(n)
	p.head = carve(maxDeg + 1)
	p.next = carve(entries)
	p.item = carve(entries)
	p.stamp = carve(ne)
	p.frontier = carve(n)[:0]
	p.shrunk = carve(ne)[:0]
	p.dying = carve(ne)[:0]
	p.outV = make([][]int32, ns)
	p.outE = make([][]int32, ns)
	for t := 0; t < ns; t++ {
		p.outV[t] = carve(vcnt[t])[:0]
		p.outE[t] = carve(ecnt[t])[:0]
	}
	p.rOff, p.rAdj = rOff, rAdj

	for i := range p.head {
		p.head[i] = -1
	}
	for i := range p.stamp {
		p.stamp[i] = -1
	}
	for j := int32(0); j < n; j++ {
		p.deg[j] = e.c.VertexDegree(p.lo + j)
		p.push(j, int(p.deg[j]))
	}
	e.peels[s] = p
	return nil
}

// forEachShard runs fn(s, worker) over every shard, split across the
// engine's workers.  A worker panic is recovered at the goroutine
// boundary (first one wins) and returned as a *WorkerPanicError; fn's
// own error return aborts likewise.
func (e *shardedEngine) forEachShard(fn func(s, worker int) error) error {
	ns := e.part.NumShards()
	w := e.workers
	if w > ns {
		w = ns
	}
	var panicErr atomic.Pointer[WorkerPanicError]
	var firstErr atomic.Pointer[error]
	var wg sync.WaitGroup
	chunk := (ns + w - 1) / w
	//hyperplexvet:ignore budgettick bounded spawn loop: at most workers iterations of O(1) setup; every phase fn ticks at entry
	for i := 0; i < w; i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > ns {
			hi = ns
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi, worker int) {
			defer wg.Done()
			defer func() {
				if x := recover(); x != nil {
					stack := make([]byte, 16<<10)
					stack = stack[:runtime.Stack(stack, false)]
					panicErr.CompareAndSwap(nil, &WorkerPanicError{Value: x, Stack: stack})
				}
			}()
			if err := failpoint.Inject(fpShardedWorker); err != nil {
				firstErr.CompareAndSwap(nil, &err)
				return
			}
			//hyperplexvet:ignore budgettick every phase fn begins with a run.Tick sized to its shard's work
			for s := lo; s < hi; s++ {
				if err := fn(s, worker); err != nil {
					firstErr.CompareAndSwap(nil, &err)
					return
				}
			}
		}(lo, hi, i)
	}
	wg.Wait()
	if pe := panicErr.Load(); pe != nil {
		return pe
	}
	if ep := firstErr.Load(); ep != nil {
		return *ep
	}
	return nil
}

// exchange is the barrier at which outbox updates become visible to
// their owning shards; the failpoint makes the hand-off injectable.
func (e *shardedEngine) exchange() error {
	if err := failpoint.Inject(fpShardedExchange); err != nil {
		return fmt.Errorf("core: sharded exchange: %w", err)
	}
	return nil
}

// clampCore is the shared coreness assignment: state retired while
// peeling toward threshold k belonged to the (k-1)-core.
func (e *shardedEngine) clampCore() int {
	if e.k < 1 {
		return 0
	}
	return e.k - 1
}

// applyDying retires shard s's dying hyperedges and decrements the
// degrees of their alive members — owned directly (re-pushing them at
// their new bucket), foreign through the vertex outboxes.
//
//hyperplexvet:phase owned
//hyperplexvet:hotpath
func (e *shardedEngine) applyDying(s, _ int) error {
	p := e.peels[s]
	if err := run.Tick(e.ctx, e.meter, int64(len(p.dying))+1); err != nil {
		return err
	}
	for _, fi := range p.dying {
		g := p.block.EdgeID[fi]
		e.eAlive[g] = false
		e.eCore[g] = e.clampCore()
		for _, w := range p.block.EdgeVertices(fi) {
			if j := w - p.olo; j >= 0 && j < p.n {
				if e.vAlive[p.lo+j] {
					p.deg[j]--
					p.push(j, int(p.deg[j]))
				}
			} else {
				vg := p.block.VertexID[w]
				if e.vAlive[vg] {
					t := e.part.VertexOwner[vg]
					p.outV[t] = append(p.outV[t], vg)
				}
			}
		}
	}
	return nil
}

// drainAndGather applies shard s's vertex inbox, then gathers its
// frontier from the bucket queue: every bucket below the threshold is
// drained, keeping the entries whose recorded degree is still current
// (each alive owned vertex below the threshold has exactly one such
// entry, pushed by its last decrement).
//
//hyperplexvet:phase drain
//hyperplexvet:hotpath
func (e *shardedEngine) drainAndGather(s, _ int) error {
	p := e.peels[s]
	inbox := 0
	for src := range e.peels {
		buf := e.peels[src].outV[s]
		inbox += len(buf)
		for _, vg := range buf {
			j := vg - p.lo
			p.deg[j]--
			p.push(j, int(p.deg[j]))
		}
		e.peels[src].outV[s] = buf[:0]
	}
	p.frontier = p.frontier[:0]
	pops := 0
	top := e.k
	if top > len(p.head) {
		top = len(p.head)
	}
	for d := p.cur; d < top; d++ {
		for idx := p.head[d]; idx != -1; idx = p.next[idx] {
			pops++
			j := p.item[idx]
			if e.vAlive[p.lo+j] && int(p.deg[j]) == d {
				p.frontier = append(p.frontier, j)
			}
		}
		p.head[d] = -1
	}
	if p.cur < top {
		p.cur = top
	}
	return run.Tick(e.ctx, e.meter, int64(inbox+pops)+1)
}

// retireAndShrink retires shard s's frontier vertices and shrinks
// their alive hyperedges — owned through the block rows (recording
// first-shrink stamps for the re-check), foreign through the remote
// rows into the hyperedge outboxes.
//
//hyperplexvet:phase owned
//hyperplexvet:hotpath
func (e *shardedEngine) retireAndShrink(s, _ int) error {
	p := e.peels[s]
	if err := run.Tick(e.ctx, e.meter, int64(len(p.frontier))+1); err != nil {
		return err
	}
	p.shrunk = p.shrunk[:0]
	for _, j := range p.frontier {
		vg := p.lo + j
		e.vAlive[vg] = false
		e.vCore[vg] = e.clampCore()
		p.aliveV--
		for _, fi := range p.block.VertexEdges(p.olo + j) {
			g := p.block.EdgeID[fi]
			if !e.eAlive[g] {
				continue
			}
			e.eDeg[g]--
			if p.stamp[fi] != e.round {
				p.stamp[fi] = e.round
				p.shrunk = append(p.shrunk, fi)
			}
		}
		for _, g := range p.rAdj[p.rOff[j]:p.rOff[j+1]] {
			if e.eAlive[g] {
				t := e.part.EdgeOwner[g]
				p.outE[t] = append(p.outE[t], g)
			}
		}
	}
	return nil
}

// drainEdges applies shard s's hyperedge inbox.  It runs as its own
// phase: the re-check that follows reads the degrees of other shards'
// hyperedges, so every inbox must be fully applied — barrier between —
// before any shard starts checking.
//
//hyperplexvet:phase drain
//hyperplexvet:hotpath
func (e *shardedEngine) drainEdges(s, _ int) error {
	p := e.peels[s]
	n := 0
	for src := range e.peels {
		n += len(e.peels[src].outE[s])
	}
	if err := run.Tick(e.ctx, e.meter, int64(n)+1); err != nil {
		return err
	}
	for src := range e.peels {
		buf := e.peels[src].outE[s]
		for _, g := range buf {
			e.eDeg[g]--
			fi, _ := slices.BinarySearch(p.block.EdgeID, g)
			if p.stamp[fi] != e.round {
				p.stamp[fi] = e.round
				p.shrunk = append(p.shrunk, int32(fi))
			}
		}
		e.peels[src].outE[s] = buf[:0]
	}
	return nil
}

// checkShrunk re-checks every owned hyperedge that shrank this round
// for emptiness or non-maximality, refilling the shard's dying list.
//
//hyperplexvet:phase owned
//hyperplexvet:hotpath
func (e *shardedEngine) checkShrunk(s, worker int) error {
	p := e.peels[s]
	if err := run.Tick(e.ctx, e.meter, int64(len(p.shrunk))+1); err != nil {
		return err
	}
	scratch := e.scratches[worker]
	p.dying = p.dying[:0]
	for _, fi := range p.shrunk {
		if e.checkDead(p, scratch, fi) {
			p.dying = append(p.dying, fi)
		}
	}
	return nil
}

// checkInitial is round 0's reduction: every owned hyperedge is
// checked, so empty and initially non-maximal hyperedges die at
// coreness 0.
//
//hyperplexvet:phase owned
//hyperplexvet:hotpath
func (e *shardedEngine) checkInitial(s, worker int) error {
	p := e.peels[s]
	ne := csr.MustInt32(p.block.NumEdges())
	if err := run.Tick(e.ctx, e.meter, int64(ne)+1); err != nil {
		return err
	}
	scratch := e.scratches[worker]
	p.dying = p.dying[:0]
	for fi := int32(0); fi < ne; fi++ {
		if e.checkDead(p, scratch, fi) {
			p.dying = append(p.dying, fi)
		}
	}
	return nil
}

// checkDead reports whether owned local hyperedge fi is empty or
// non-maximal against the current stable global snapshot.
func (e *shardedEngine) checkDead(p *shardPeel, scratch *nonMaxScratch, fi int32) bool {
	g := p.block.EdgeID[fi]
	df := e.eDeg[g]
	return df == 0 || scratch.NonMaximal(e.c, g, df, e.vAliveAt, e.eAliveAt, e.eDegAt)
}

// decompose runs the level loop: like Decompose, it raises the
// threshold one level at a time, carrying all peeling state across
// levels, but peels each level in bulk-synchronous rounds.
func (e *shardedEngine) decompose() (*Decomposition, error) {
	if err := e.forEachShard(e.setupShard); err != nil {
		return nil, err
	}
	// Round 0: the initial reduction checks every hyperedge.
	if err := e.forEachShard(e.checkInitial); err != nil {
		return nil, err
	}

	aliveV := 0
	for _, p := range e.peels {
		aliveV += p.aliveV
	}
	maxK := 0
	for k := 1; aliveV > 0; k++ {
		e.k = k
		for {
			dyingTotal := 0
			for _, p := range e.peels {
				dyingTotal += len(p.dying)
			}
			if err := e.forEachShard(e.applyDying); err != nil {
				return nil, err
			}
			if err := e.exchange(); err != nil {
				return nil, err
			}
			if err := e.forEachShard(e.drainAndGather); err != nil {
				return nil, err
			}
			frontierTotal := 0
			for _, p := range e.peels {
				frontierTotal += len(p.frontier)
			}
			if frontierTotal == 0 && dyingTotal == 0 {
				break // level fixpoint: every alive vertex has degree ≥ k
			}
			e.round++
			if err := e.forEachShard(e.retireAndShrink); err != nil {
				return nil, err
			}
			if err := e.exchange(); err != nil {
				return nil, err
			}
			if err := e.forEachShard(e.drainEdges); err != nil {
				return nil, err
			}
			if err := e.forEachShard(e.checkShrunk); err != nil {
				return nil, err
			}
		}
		aliveV = 0
		for _, p := range e.peels {
			aliveV += p.aliveV
		}
		if aliveV > 0 {
			maxK = k
		}
	}
	return &Decomposition{
		VertexCoreness: e.vCore,
		EdgeCoreness:   e.eCore,
		MaxK:           maxK,
	}, nil
}
