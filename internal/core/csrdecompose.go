package core

import (
	"context"

	"hyperplex/internal/csr"
	"hyperplex/internal/hypergraph"
)

// CSRDecompose computes the full core decomposition of h on the
// flat-array substrate: the hypergraph is viewed as a csr.CSR (cheap —
// the pins are aliased) and peeled by the bucket-queue kernel
// (csr.Decompose), which replaces the level-by-level scans and
// map-backed overlap bookkeeping of Decompose with int32 arrays and a
// single scratch arena.
//
// The result is the same decomposition as Decompose: identical vertex
// coreness, edge coreness levels and MaxK.  Of duplicate equal-set
// hyperedges the surviving copy can differ by deletion order, with
// equal induced member-set families per level (the same caveat as
// ShardedDecompose); the differential tests pin all three against each
// other.
func CSRDecompose(h *hypergraph.Hypergraph) *Decomposition {
	d, err := CSRDecomposeCtx(context.Background(), h)
	if err != nil {
		// Only reachable through an armed failpoint: a background
		// context cannot be cancelled and carries no budget.
		panic(err)
	}
	return d
}

// CSRDecomposeCtx is CSRDecompose honoring cancellation, deadline and
// any run.Budget attached to ctx, checked every bounded number of peel
// operations (the csr.build and csr.peel checkpoint sites).  On
// cancellation or budget exhaustion it returns (nil, err).
func CSRDecomposeCtx(ctx context.Context, h *hypergraph.Hypergraph) (*Decomposition, error) {
	fd, err := csr.DecomposeCtx(ctx, csr.FromH(h))
	if err != nil {
		return nil, err
	}
	d := &Decomposition{
		VertexCoreness: make([]int, len(fd.VertexCoreness)),
		EdgeCoreness:   make([]int, len(fd.EdgeCoreness)),
		MaxK:           fd.MaxK,
	}
	for v, c := range fd.VertexCoreness {
		d.VertexCoreness[v] = int(c)
	}
	for f, c := range fd.EdgeCoreness {
		d.EdgeCoreness[f] = int(c)
	}
	return d, nil
}
