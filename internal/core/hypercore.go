package core

import (
	"context"

	"hyperplex/internal/failpoint"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/run"
)

// Result describes a k-core of a hypergraph as membership slices over
// the ORIGINAL vertex and hyperedge IDs.
type Result struct {
	// K is the threshold this core was computed for.
	K int
	// VertexIn[v] reports whether vertex v survives in the k-core.
	VertexIn []bool
	// EdgeIn[f] reports whether hyperedge f survives in the k-core.
	EdgeIn []bool
	// NumVertices and NumEdges count the survivors.
	NumVertices int
	NumEdges    int
}

// Sub materializes the core as a sub-hypergraph of h (with old→new ID
// maps), for callers that want to keep analyzing it.
func (r *Result) Sub(h *hypergraph.Hypergraph) (*hypergraph.Hypergraph, map[int]int, map[int]int) {
	return h.Sub(r.VertexIn, r.EdgeIn)
}

// Decomposition is the full core decomposition of a hypergraph.
type Decomposition struct {
	// VertexCoreness[v] is the largest k such that v is in the k-core
	// (0 if v is not even in the 1-core).
	VertexCoreness []int
	// EdgeCoreness[f] is the largest k such that hyperedge f is in the
	// k-core (0 if f does not survive reduction of the 1-core).
	EdgeCoreness []int
	// MaxK is the maximum k with a non-empty k-core.
	MaxK int
}

// Core extracts the k-core recorded in the decomposition.
func (d *Decomposition) Core(k int) *Result {
	r := &Result{
		K:        k,
		VertexIn: make([]bool, len(d.VertexCoreness)),
		EdgeIn:   make([]bool, len(d.EdgeCoreness)),
	}
	for v, c := range d.VertexCoreness {
		if c >= k {
			r.VertexIn[v] = true
			r.NumVertices++
		}
	}
	for f, c := range d.EdgeCoreness {
		if c >= k {
			r.EdgeIn[f] = true
			r.NumEdges++
		}
	}
	return r
}

// CoreLevel is one row of a core-decomposition profile: the size of
// the k-core at each level.
type CoreLevel struct {
	K        int
	Vertices int
	Edges    int
}

// Profile returns the k-core sizes for k = 1..MaxK (the number of
// vertices and hyperedges with coreness ≥ k) — the data behind "core
// hierarchy" plots.
func (d *Decomposition) Profile() []CoreLevel {
	levels := make([]CoreLevel, d.MaxK)
	for i := range levels {
		levels[i].K = i + 1
	}
	for _, c := range d.VertexCoreness {
		for k := 1; k <= c && k <= d.MaxK; k++ {
			levels[k-1].Vertices++
		}
	}
	for _, c := range d.EdgeCoreness {
		for k := 1; k <= c && k <= d.MaxK; k++ {
			levels[k-1].Edges++
		}
	}
	return levels
}

// peeler holds the mutable peeling state of the paper's algorithm
// (Fig. 4): per-vertex and per-hyperedge current degrees, and the
// pairwise overlap counts used to detect non-maximal hyperedges
// without comparing membership lists.
type peeler struct {
	h *hypergraph.Hypergraph
	k int
	//hyperplexvet:ignore ctxfirst scoped to one KCoreCtx call; threading ctx through every cascade helper would bloat the hot path
	ctx    context.Context
	meter  *run.Meter
	ops    int // operations since the last checkpoint
	vAlive []bool
	eAlive []bool
	vDeg   []int32
	eDeg   []int32
	// ov is the reduction layer's incremental overlap table (reduce.go):
	// ov[f][g] = |f ∩ g| among alive vertices, maintained across vertex
	// and hyperedge deletions to detect non-maximal hyperedges.
	ov overlapTable

	queue   []int32
	inQueue []bool

	// minEdgeSize is the l of a (k, l)-core: hyperedges shrinking
	// below it are deleted.  The plain k-core uses 1 (only empty
	// hyperedges die for size reasons).
	minEdgeSize int

	vCore, eCore   []int
	aliveV, aliveE int
}

// fpPeelStep fires at the sequential peeler's checkpoints (overlap
// construction and the deletion cascade).
var fpPeelStep = failpoint.Register("core.peel.step")

// peelCheckEvery is the number of elementary peel operations between
// cancellation/budget checkpoints — small enough that even the crafted
// sweep instances cross one, cheap enough to vanish in benchmarks.
const peelCheckEvery = 64

// peelAbort unwinds the deletion cascade when a checkpoint trips; it
// is recovered at the Ctx API boundary and never escapes the package.
type peelAbort struct{ err error }

// checkpoint charges n elementary operations and aborts the peel via
// panic when the context is cancelled, the budget is exhausted, or an
// armed failpoint fires.
func (p *peeler) checkpoint(n int) {
	p.ops += n
	if p.ops < peelCheckEvery {
		return
	}
	charge := int64(p.ops)
	p.ops = 0
	if err := failpoint.Inject(fpPeelStep); err != nil {
		//hyperplexvet:ignore nopanic peelAbort unwinds the cascade and is recovered at the Ctx API boundary
		panic(peelAbort{err})
	}
	if err := run.Tick(p.ctx, p.meter, charge); err != nil {
		//hyperplexvet:ignore nopanic peelAbort unwinds the cascade and is recovered at the Ctx API boundary
		panic(peelAbort{err})
	}
}

// newPeeler builds the initial state and performs the initial
// reduction (delete hyperedges contained in another, keeping the
// lowest-ID copy of duplicates, plus empty hyperedges), since every
// core of H — including the 0-core — must be a reduced hypergraph.
func newPeeler(ctx context.Context, h *hypergraph.Hypergraph) *peeler {
	// Entry checkpoint: an already-cancelled context aborts before any
	// work, even on inputs too small to reach a periodic checkpoint.
	if err := run.Tick(ctx, run.MeterFrom(ctx), 0); err != nil {
		//hyperplexvet:ignore nopanic peelAbort unwinds the cascade and is recovered at the Ctx API boundary
		panic(peelAbort{err})
	}
	nv, ne := h.NumVertices(), h.NumEdges()
	p := &peeler{
		h:       h,
		ctx:     ctx,
		meter:   run.MeterFrom(ctx),
		vAlive:  make([]bool, nv),
		eAlive:  make([]bool, ne),
		vDeg:    make([]int32, nv),
		eDeg:    make([]int32, ne),
		inQueue: make([]bool, nv),
		vCore:   make([]int, nv),
		eCore:   make([]int, ne),
		aliveV:  nv,
		aliveE:  ne,

		minEdgeSize: 1,
	}
	for v := 0; v < nv; v++ {
		p.vAlive[v] = true
		p.vDeg[v] = int32(h.VertexDegree(v))
	}
	for f := 0; f < ne; f++ {
		p.eAlive[f] = true
		p.eDeg[f] = int32(h.EdgeDegree(f))
	}
	p.ov.Fill(h, p.checkpoint)
	// Initial reduction.  Collect first, then delete, so that the
	// containment tests all see the original overlap table.
	var drop []int
	for f := 0; f < ne; f++ {
		p.checkpoint(1)
		if p.eDeg[f] == 0 || p.ov.NonMaximal(f, p.eDeg) {
			drop = append(drop, f)
		}
	}
	for _, f := range drop {
		p.deleteEdge(f)
	}
	return p
}

// deleteEdge removes alive hyperedge f: its alive members lose one
// degree (and are queued if they drop below k), and f disappears from
// the overlap sets of its neighbors.  Deleting an edge can never make
// another edge non-maximal, so no containment re-checks are needed.
func (p *peeler) deleteEdge(f int) {
	p.checkpoint(1)
	p.eAlive[f] = false
	p.eCore[f] = p.k - 1
	if p.eCore[f] < 0 {
		p.eCore[f] = 0
	}
	p.aliveE--
	for _, w := range p.h.Vertices(f) {
		if !p.vAlive[w] {
			continue
		}
		p.vDeg[w]--
		if p.vDeg[w] < int32(p.k) && !p.inQueue[w] {
			p.inQueue[w] = true
			p.queue = append(p.queue, w)
		}
	}
	p.ov.DropEdge(f)
}

// deleteVertex removes alive vertex v.  Phase one removes v from every
// alive hyperedge containing it and updates the pairwise overlaps of
// those hyperedges; phase two then re-checks each shrunk hyperedge for
// emptiness or non-maximality.  The two phases keep the overlap table
// consistent while several hyperedges shrink at once.
func (p *peeler) deleteVertex(v int) {
	p.checkpoint(1)
	p.vAlive[v] = false
	p.vCore[v] = p.k - 1
	if p.vCore[v] < 0 {
		p.vCore[v] = 0
	}
	p.aliveV--

	adj := p.h.Edges(v)
	live := make([]int32, 0, len(adj))
	for _, f := range adj {
		if p.eAlive[f] {
			live = append(live, f)
		}
	}
	// Phase 1: degrees and overlaps.
	for _, f := range live {
		p.eDeg[f]--
	}
	p.ov.ShrinkPairwise(live)
	// Phase 2: a shrunk hyperedge dies when it falls below the minimum
	// size (empty, for the plain k-core) or stops being maximal.
	for _, f := range live {
		p.checkpoint(1)
		if !p.eAlive[f] {
			continue
		}
		if p.eDeg[f] < int32(p.minEdgeSize) || p.ov.NonMaximal(int(f), p.eDeg) {
			p.deleteEdge(int(f))
		}
	}
}

// peelTo raises the threshold to k and drains the queue: every alive
// vertex of degree < k is deleted, cascading hyperedge deletions and
// further vertex deletions until the fixpoint.
func (p *peeler) peelTo(k int) {
	p.k = k
	for v := 0; v < len(p.vAlive); v++ {
		if p.vAlive[v] && p.vDeg[v] < int32(k) && !p.inQueue[v] {
			p.inQueue[v] = true
			p.queue = append(p.queue, int32(v))
		}
	}
	for len(p.queue) > 0 {
		v := p.queue[len(p.queue)-1]
		p.queue = p.queue[:len(p.queue)-1]
		p.inQueue[v] = false
		if p.vAlive[v] {
			p.deleteVertex(int(v))
		}
	}
}

// result snapshots the current alive sets.
func (p *peeler) result(k int) *Result {
	r := &Result{
		K:           k,
		VertexIn:    append([]bool(nil), p.vAlive...),
		EdgeIn:      append([]bool(nil), p.eAlive...),
		NumVertices: p.aliveV,
		NumEdges:    p.aliveE,
	}
	return r
}

// KCore computes the k-core of h with the paper's overlap-count
// algorithm and returns the surviving membership.  k must be ≥ 0; the
// 0-core is the reduced hypergraph with isolated vertices removed.
func KCore(h *hypergraph.Hypergraph, k int) *Result {
	r, err := KCoreCtx(context.Background(), h, k)
	if err != nil {
		// Only reachable through an armed failpoint: a background
		// context cannot be cancelled and carries no budget.
		panic(err)
	}
	return r
}

// KCoreCtx is KCore honoring cancellation, deadline and any run.Budget
// attached to ctx (see run.WithBudget), checked every bounded number of
// peel operations.  On cancellation or budget exhaustion it returns
// (nil, err): a partially peeled state is not a valid core of any k, so
// no partial result is exposed.
func KCoreCtx(ctx context.Context, h *hypergraph.Hypergraph, k int) (r *Result, err error) {
	defer recoverPeelAbort(&err)
	p := newPeeler(ctx, h)
	if k < 1 {
		// Even the 0-core drops vertices in no hyperedge.
		p.peelTo(1)
		// peelTo(1) removes degree-0 vertices *and* degree-<1, which is
		// the same set; but it also removes vertices of degree 0 only.
		// For k = 0 we must keep vertices of degree ≥ 1, which peelTo(1)
		// preserves, so this is exactly the reduced hypergraph.
		return p.result(0), nil
	}
	p.peelTo(k)
	return p.result(k), nil
}

// recoverPeelAbort converts a checkpoint abort into the returned
// error, leaving any other panic untouched.
func recoverPeelAbort(err *error) {
	if x := recover(); x != nil {
		a, ok := x.(peelAbort)
		if !ok {
			panic(x)
		}
		*err = a.err
	}
}

// Decompose computes the full core decomposition by raising the peeling
// threshold one level at a time, re-using all peeling state (each
// vertex is still deleted from each hyperedge at most once across the
// whole run, so the total work matches a single maximum-core
// computation).
func Decompose(h *hypergraph.Hypergraph) *Decomposition {
	d, err := DecomposeCtx(context.Background(), h)
	if err != nil {
		panic(err) // only reachable through an armed failpoint
	}
	return d
}

// DecomposeCtx is Decompose honoring cancellation, deadline and any
// run.Budget attached to ctx, checked every bounded number of peel
// operations.  On cancellation or budget exhaustion it returns
// (nil, err).
func DecomposeCtx(ctx context.Context, h *hypergraph.Hypergraph) (d *Decomposition, err error) {
	defer recoverPeelAbort(&err)
	p := newPeeler(ctx, h)
	maxK := 0
	for k := 1; p.aliveV > 0; k++ {
		// The (k-1)-core was non-empty; remember it before peeling on.
		maxK = k - 1
		p.peelTo(k)
		if p.aliveV > 0 {
			maxK = k
		}
	}
	return &Decomposition{
		VertexCoreness: p.vCore,
		EdgeCoreness:   p.eCore,
		MaxK:           maxK,
	}, nil
}

// MaxCore returns the maximum core of h: the largest k with a
// non-empty k-core, and that core's membership.  When even the 1-core
// is empty it returns the 0-core (the reduced hypergraph with isolated
// vertices removed), since coreness values cannot distinguish the
// 0-core at level 0.
func MaxCore(h *hypergraph.Hypergraph) *Result {
	r, err := MaxCoreCtx(context.Background(), h)
	if err != nil {
		panic(err) // only reachable through an armed failpoint
	}
	return r
}

// MaxCoreCtx is MaxCore honoring cancellation, deadline and any
// run.Budget attached to ctx.  On cancellation or budget exhaustion it
// returns (nil, err).
func MaxCoreCtx(ctx context.Context, h *hypergraph.Hypergraph) (*Result, error) {
	d, err := DecomposeCtx(ctx, h)
	if err != nil {
		return nil, err
	}
	if d.MaxK == 0 {
		return KCoreCtx(ctx, h, 0)
	}
	return d.Core(d.MaxK), nil
}
