// Package core implements the k-core algorithms of Ramadan, Tarafdar
// and Pothen (IPPS 2004): the classical linear-time k-core of a graph,
// and the paper's k-core of a hypergraph.
//
// The k-core of a graph G is a maximal subgraph in which every vertex
// has degree at least k.  The k-core of a hypergraph H is a maximal
// sub-hypergraph that is *reduced* (no hyperedge contained in another)
// and in which every vertex belongs to at least k hyperedges.  When a
// vertex is peeled, a hyperedge it belonged to is deleted as soon as it
// stops being maximal — including the special case of becoming empty.
//
// The hypergraph algorithm follows the paper exactly: non-maximal
// hyperedges are detected by maintaining pairwise overlap counts
// (|f ∩ g|) rather than comparing membership lists — a hyperedge f is
// contained in g precisely when its current degree equals its current
// overlap with g.  The running time is O(|E|·(Δ₂,F + Δ_V·log Δ₂,F))
// where |E| is the number of pins and Δ₂,F the maximum number of
// hyperedges overlapping any single hyperedge.
//
// Four implementations are provided, layered over a shared reduction
// layer (reduce.go) that holds the only copy of the containment test:
//
//   - KCore / Decomposition: the sequential overlap-count algorithm.
//   - KCoreNaive: a fixpoint reference that re-scans for containment
//     each round; used by tests and the maximality ablation benchmark.
//   - KCoreParallel: a round-synchronous peeling algorithm answering
//     the paper's call ("for large hypergraphs, a parallel algorithm
//     will need to be designed").
//   - ShardedDecompose: a BSP decomposition engine over vertex-block
//     shards from internal/partition, peeling shards in synchronized
//     rounds with cross-shard deltas exchanged at barriers.  Vertex
//     coreness and MaxK match Decompose exactly on every input.
package core
