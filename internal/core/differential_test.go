// Differential tests validating the fast core implementations against
// the naive oracles and invariant checkers in internal/check, over a
// deterministic generator sweep plus the Cellzome dataset.  This file
// is an external test package because check imports core.
package core_test

import (
	"runtime"
	"testing"
	"time"

	"hyperplex/internal/check"
	"hyperplex/internal/core"
	"hyperplex/internal/dataset"
)

// TestDifferentialKCore checks KCore against both the in-package naive
// implementation and check's independent fixpoint oracle on every sweep
// instance, then on the Cellzome hypergraph.
func TestDifferentialKCore(t *testing.T) {
	for i, h := range check.Instances(58, 0xC04E1) {
		for _, k := range []int{0, 1, 2, 3} {
			r := core.KCore(h, k)
			if err := check.ValidCore(h, k, r); err != nil {
				t.Fatalf("instance %d %v, k=%d: %v", i, h, k, err)
			}
			if err := check.SameResult(h, r, core.KCoreNaive(h, k)); err != nil {
				t.Fatalf("instance %d %v, k=%d: KCore vs KCoreNaive: %v", i, h, k, err)
			}
		}
	}
	h := dataset.Cellzome().H
	for _, k := range []int{1, 6, 7} {
		r := core.KCore(h, k)
		if err := check.ValidCore(h, k, r); err != nil {
			t.Fatalf("Cellzome k=%d: %v", k, err)
		}
	}
	if r6 := core.KCore(h, 6); r6.NumVertices != 41 || r6.NumEdges != 54 {
		t.Fatalf("Cellzome 6-core is %d/%d, want the paper's 41/54", r6.NumVertices, r6.NumEdges)
	}
}

// TestDifferentialKCoreParallel exercises the concurrent peeler with 1,
// 2 and NumCPU workers (run under -race in CI) and requires exact
// agreement with the sequential algorithm plus the invariant checker,
// and that no worker goroutine outlives the calls.
func TestDifferentialKCoreParallel(t *testing.T) {
	snapshot := check.GoroutineSnapshot()
	defer func() {
		if err := check.CheckNoLeaks(snapshot, 2*time.Second); err != nil {
			t.Error(err)
		}
	}()
	workers := []int{1, 2, runtime.NumCPU()}
	for i, h := range check.Instances(58, 0xC04E2) {
		for _, k := range []int{1, 2, 3} {
			want := core.KCore(h, k)
			for _, w := range workers {
				got := core.KCoreParallel(h, k, w)
				if err := check.SameResult(h, got, want); err != nil {
					t.Fatalf("instance %d %v, k=%d, workers=%d: parallel vs sequential: %v", i, h, k, w, err)
				}
			}
			if err := check.ValidCore(h, k, core.KCoreParallel(h, k, 2)); err != nil {
				t.Fatalf("instance %d %v, k=%d: %v", i, h, k, err)
			}
		}
	}
	h := dataset.Cellzome().H
	want := core.KCore(h, 6)
	for _, w := range workers {
		got := core.KCoreParallel(h, 6, w)
		if err := check.SameResult(h, got, want); err != nil {
			t.Fatalf("Cellzome k=6, workers=%d: %v", w, err)
		}
	}
}

// TestDifferentialShardedDecompose points the differential driver at
// the sharded engine: for shard counts {1, 2, 3, NumCPU} and a count
// larger than the vertex count (exercising the clamp), the vertex
// coreness vector and MaxK must equal Decompose exactly, and every
// core level must contain the same hyperedge family (the surviving
// copy of equal-set hyperedges is peeling-order dependent, so levels
// are compared as member-set families via SameResult, the same
// convention as the parallel peeler).  Each instance's sharded
// decomposition is also validated level by level against the
// independent fixpoint oracle, and no worker goroutine may outlive the
// calls.
func TestDifferentialShardedDecompose(t *testing.T) {
	snapshot := check.GoroutineSnapshot()
	defer func() {
		if err := check.CheckNoLeaks(snapshot, 2*time.Second); err != nil {
			t.Error(err)
		}
	}()
	for i, h := range check.Instances(58, 0xC04E5) {
		want := core.Decompose(h)
		shardCounts := []int{1, 2, 3, runtime.NumCPU(), h.NumVertices() + 13}
		for _, shards := range shardCounts {
			got := core.ShardedDecompose(h, core.ShardedOptions{Shards: shards})
			if got.MaxK != want.MaxK {
				t.Fatalf("instance %d %v, shards=%d: MaxK = %d, want %d", i, h, shards, got.MaxK, want.MaxK)
			}
			for v, c := range want.VertexCoreness {
				if got.VertexCoreness[v] != c {
					t.Fatalf("instance %d %v, shards=%d: vertex %d coreness %d, want %d",
						i, h, shards, v, got.VertexCoreness[v], c)
				}
			}
			for k := 1; k <= want.MaxK; k++ {
				if err := check.SameResult(h, got.Core(k), want.Core(k)); err != nil {
					t.Fatalf("instance %d %v, shards=%d, k=%d: sharded vs sequential: %v", i, h, shards, k, err)
				}
			}
		}
		got := core.ShardedDecompose(h, core.ShardedOptions{Shards: 3})
		if err := check.ValidDecomposition(h, got); err != nil {
			t.Fatalf("instance %d %v, shards=3: %v", i, h, err)
		}
	}
	h := dataset.Cellzome().H
	want := core.Decompose(h)
	for _, shards := range []int{1, 2, 3, runtime.NumCPU(), h.NumVertices() + 13} {
		got := core.ShardedDecompose(h, core.ShardedOptions{Shards: shards})
		if got.MaxK != 6 {
			t.Fatalf("Cellzome shards=%d: MaxK = %d, want 6", shards, got.MaxK)
		}
		for v, c := range want.VertexCoreness {
			if got.VertexCoreness[v] != c {
				t.Fatalf("Cellzome shards=%d: vertex %d coreness %d, want %d", shards, v, got.VertexCoreness[v], c)
			}
		}
		r6 := got.Core(6)
		if err := check.SameResult(h, r6, want.Core(6)); err != nil {
			t.Fatalf("Cellzome shards=%d, 6-core: %v", shards, err)
		}
		if err := check.ValidCore(h, 6, r6); err != nil {
			t.Fatalf("Cellzome shards=%d: %v", shards, err)
		}
		if r6.NumVertices != 41 || r6.NumEdges != 54 {
			t.Fatalf("Cellzome shards=%d: 6-core is %d/%d, want the paper's 41/54", shards, r6.NumVertices, r6.NumEdges)
		}
	}
}

// TestDifferentialCSRDecompose pins the flat-array bucket-queue kernel
// (internal/csr, reached through core.CSRDecompose) to both the
// level-by-level map-based Decompose and the sharded engine, with the
// same protocol as the sharded differential: exact vertex coreness and
// MaxK, per-level hyperedge member-set families via SameResult (the
// surviving copy of equal-set hyperedges is deletion-order dependent),
// the independent fixpoint oracle, and the Cellzome golden numbers.
// No goroutine may outlive the calls — the CSR kernel is sequential,
// so a leak here would mean the sharded comparator leaked.
func TestDifferentialCSRDecompose(t *testing.T) {
	snapshot := check.GoroutineSnapshot()
	defer func() {
		if err := check.CheckNoLeaks(snapshot, 2*time.Second); err != nil {
			t.Error(err)
		}
	}()
	for i, h := range check.Instances(58, 0xC04E6) {
		want := core.Decompose(h)
		got := core.CSRDecompose(h)
		if got.MaxK != want.MaxK {
			t.Fatalf("instance %d %v: CSR MaxK = %d, want %d", i, h, got.MaxK, want.MaxK)
		}
		for v, c := range want.VertexCoreness {
			if got.VertexCoreness[v] != c {
				t.Fatalf("instance %d %v: CSR vertex %d coreness %d, want %d",
					i, h, v, got.VertexCoreness[v], c)
			}
		}
		for k := 1; k <= want.MaxK; k++ {
			if err := check.SameResult(h, got.Core(k), want.Core(k)); err != nil {
				t.Fatalf("instance %d %v, k=%d: CSR vs sequential: %v", i, h, k, err)
			}
		}
		if err := check.ValidDecomposition(h, got); err != nil {
			t.Fatalf("instance %d %v: CSR decomposition: %v", i, h, err)
		}
		sharded := core.ShardedDecompose(h, core.ShardedOptions{Shards: 3})
		if sharded.MaxK != got.MaxK {
			t.Fatalf("instance %d %v: sharded MaxK %d vs CSR %d", i, h, sharded.MaxK, got.MaxK)
		}
		for k := 1; k <= got.MaxK; k++ {
			if err := check.SameResult(h, sharded.Core(k), got.Core(k)); err != nil {
				t.Fatalf("instance %d %v, k=%d: sharded vs CSR: %v", i, h, k, err)
			}
		}
	}
	h := dataset.Cellzome().H
	want := core.Decompose(h)
	got := core.CSRDecompose(h)
	if got.MaxK != 6 {
		t.Fatalf("Cellzome CSR MaxK = %d, want 6", got.MaxK)
	}
	for v, c := range want.VertexCoreness {
		if got.VertexCoreness[v] != c {
			t.Fatalf("Cellzome: CSR vertex %d coreness %d, want %d", v, got.VertexCoreness[v], c)
		}
	}
	r6 := got.Core(6)
	if err := check.SameResult(h, r6, want.Core(6)); err != nil {
		t.Fatalf("Cellzome 6-core: CSR vs sequential: %v", err)
	}
	if err := check.ValidCore(h, 6, r6); err != nil {
		t.Fatalf("Cellzome CSR 6-core: %v", err)
	}
	if r6.NumVertices != 41 || r6.NumEdges != 54 {
		t.Fatalf("Cellzome CSR 6-core is %d/%d, want the paper's 41/54", r6.NumVertices, r6.NumEdges)
	}
}

// TestDifferentialBiCore checks the (k, l)-core peeler against the
// definitional fixpoint oracle.
func TestDifferentialBiCore(t *testing.T) {
	pairs := [][2]int{{0, 2}, {1, 2}, {2, 2}, {1, 3}, {3, 1}, {2, 4}}
	for i, h := range check.Instances(58, 0xC04E3) {
		for _, kl := range pairs {
			r := core.BiCore(h, kl[0], kl[1])
			if err := check.ValidBiCore(h, kl[0], kl[1], r); err != nil {
				t.Fatalf("instance %d %v, k=%d, l=%d: %v", i, h, kl[0], kl[1], err)
			}
		}
	}
	h := dataset.Cellzome().H
	r := core.BiCore(h, 2, 3)
	if err := check.ValidBiCore(h, 2, 3, r); err != nil {
		t.Fatalf("Cellzome (2,3)-core: %v", err)
	}
}

// TestDifferentialDecompose validates the full decomposition level by
// level against the oracle on the sweep, and spot-checks the Cellzome
// maximum core against the paper's numbers.
func TestDifferentialDecompose(t *testing.T) {
	for i, h := range check.Instances(58, 0xC04E4) {
		d := core.Decompose(h)
		if err := check.ValidDecomposition(h, d); err != nil {
			t.Fatalf("instance %d %v: %v", i, h, err)
		}
	}
	h := dataset.Cellzome().H
	d := core.Decompose(h)
	if d.MaxK != 6 {
		t.Fatalf("Cellzome MaxK = %d, want 6", d.MaxK)
	}
	r := d.Core(6)
	if err := check.ValidCore(h, 6, r); err != nil {
		t.Fatalf("Cellzome decomposition 6-core: %v", err)
	}
}
