package core

import (
	"testing"

	"hyperplex/internal/gen"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/partition"
	"hyperplex/internal/xrand"
)

// distDriver drives a set of DistPeeler replicas through the broadcast
// BSP schedule locally — the same loop the internal/dist coordinator
// runs over the wire, minus transport.  barrier, when non-nil, is
// invoked after every completed barrier with the current (k, round)
// and may mutate the replicas (the replay tests restore checkpoints
// from inside it).
func distDriver(t *testing.T, h *hypergraph.Hypergraph, shards, nw int,
	barrier func(k int, round int, workers []*DistPeeler)) *Decomposition {
	t.Helper()
	part := partition.Build(h, partition.NormalizeShards(shards, h.NumVertices()))
	workers := make([]*DistPeeler, nw)
	for i := range workers {
		workers[i] = NewDistPeeler(h, part)
	}
	var dying []int32
	for s := 0; s < part.NumShards(); s++ {
		sn := workers[s%nw].AssignFresh(s)
		dying = append(dying, sn.Dying...)
	}
	round := 0
	if barrier != nil {
		barrier(0, round, workers)
	}
	maxK := 0
	for k := 1; ; k++ {
		for {
			for _, w := range workers {
				w.ApplyDying(k, dying)
			}
			frontier, alive := 0, 0
			for _, w := range workers {
				f, a := w.GatherFrontier()
				frontier += f
				alive += a
			}
			if frontier == 0 && len(dying) == 0 {
				if alive == 0 {
					vCore, eCore := workers[0].Coreness()
					return &Decomposition{VertexCoreness: vCore, EdgeCoreness: eCore, MaxK: maxK}
				}
				maxK = k
				break
			}
			var retired []int32
			for _, w := range workers {
				retired = append(retired, w.CollectRetired()...)
			}
			for _, w := range workers {
				w.ApplyRetired(retired)
			}
			dying = dying[:0]
			for _, w := range workers {
				for _, sn := range w.CheckShrunk() {
					dying = append(dying, sn.Dying...)
				}
			}
			round++
			if barrier != nil {
				barrier(k, round, workers)
			}
		}
	}
}

// sameDecomposition asserts exact equality of vertex coreness and MaxK
// against the sequential peeler, plus hyperedge coreness against the
// in-process sharded engine (whose round schedule the dist peeler
// replays exactly).
func sameDecomposition(t *testing.T, h *hypergraph.Hypergraph, got *Decomposition, label string) {
	t.Helper()
	want := Decompose(h)
	if got.MaxK != want.MaxK {
		t.Fatalf("%s: MaxK = %d, want %d", label, got.MaxK, want.MaxK)
	}
	for v, c := range want.VertexCoreness {
		if got.VertexCoreness[v] != c {
			t.Fatalf("%s: vertex %d coreness = %d, want %d", label, v, got.VertexCoreness[v], c)
		}
	}
	sharded := ShardedDecompose(h, ShardedOptions{Shards: 3})
	for f, c := range sharded.EdgeCoreness {
		if got.EdgeCoreness[f] != c {
			t.Fatalf("%s: hyperedge %d coreness = %d, want %d (sharded schedule)", label, f, got.EdgeCoreness[f], c)
		}
	}
}

// TestDistPeelerDifferential pins the broadcast-delta peel against the
// sequential and sharded engines over the sweep instances and a larger
// random hypergraph, across worker and shard counts.
func TestDistPeelerDifferential(t *testing.T) {
	rng := xrand.New(0xD157)
	var instances []*hypergraph.Hypergraph
	for i := 0; i < 10; i++ {
		instances = append(instances, gen.RandomHypergraph(10+17*i, 8+13*i, 2+i%5, rng))
	}
	instances = append(instances, gen.RandomHypergraph(220, 160, 6, rng))
	for i, h := range instances {
		for _, cfg := range [][2]int{{1, 1}, {3, 2}, {4, 3}, {7, 2}} {
			got := distDriver(t, h, cfg[0], cfg[1], nil)
			sameDecomposition(t, h, got, "instance")
			_ = i
		}
	}
}

// TestDistPeelerReplicasAgree asserts that after a full run every
// replica holds the same coreness mirrors — the invariant that lets
// any worker serve the final result.
func TestDistPeelerReplicasAgree(t *testing.T) {
	h := gen.RandomHypergraph(150, 120, 5, xrand.New(0xA9EE))
	var workers []*DistPeeler
	distDriver(t, h, 4, 3, func(k, round int, ws []*DistPeeler) { workers = ws })
	v0, e0 := workers[0].Coreness()
	for i := 1; i < len(workers); i++ {
		vi, ei := workers[i].Coreness()
		for v := range v0 {
			if vi[v] != v0[v] {
				t.Fatalf("replica %d vertex %d coreness %d, replica 0 has %d", i, v, vi[v], v0[v])
			}
		}
		for f := range e0 {
			if ei[f] != e0[f] {
				t.Fatalf("replica %d hyperedge %d coreness %d, replica 0 has %d", i, f, ei[f], e0[f])
			}
		}
	}
}

// scramble vandalizes a replica's mutable state the way a half-applied
// round would: degrees, queue heads, mirrors and coreness all change.
func scramble(w *DistPeeler) {
	for i := range w.vAlive {
		if i%3 == 0 {
			w.vAlive[i] = !w.vAlive[i]
		}
	}
	for i := range w.eDeg {
		w.eDeg[i] += int32(i%5) - 2
	}
	for i := range w.vCore {
		w.vCore[i] += 7
	}
	for i := range w.eCore {
		w.eCore[i] += 7
	}
	w.round += 13
	for _, p := range w.shards {
		if p == nil {
			continue
		}
		for j := range p.deg {
			p.deg[j] += int32(j%3) - 1
		}
		for i := range p.head {
			p.head[i] = -1
		}
		p.nfree = 0
		p.cur = 0
		p.frontier = append(p.frontier[:0], 0)
		p.aliveV += 5
	}
}

// TestDistPeelerCheckpointReplay is the barrier-replay pin: at a fixed
// barrier every replica is checkpointed, its state scrambled, then
// restored — and the continuation must still produce the exact
// sequential decomposition.
func TestDistPeelerCheckpointReplay(t *testing.T) {
	h := gen.RandomHypergraph(180, 140, 5, xrand.New(0xBEEF))
	for _, target := range []int{0, 1, 3} {
		got := distDriver(t, h, 4, 2, func(k, round int, workers []*DistPeeler) {
			if round != target {
				return
			}
			for _, w := range workers {
				cp := w.Checkpoint()
				scramble(w)
				if err := w.Restore(cp); err != nil {
					t.Fatalf("restore at barrier %d: %v", round, err)
				}
			}
		})
		sameDecomposition(t, h, got, "replayed run")
	}
}

// TestDistPeelerReassignment moves a shard between replicas at a
// barrier through its wire snapshot — the coordinator's worker-death
// recovery path — and asserts the continuation is exact.
func TestDistPeelerReassignment(t *testing.T) {
	h := gen.RandomHypergraph(180, 140, 5, xrand.New(0xFEED))
	moved := false
	got := distDriver(t, h, 5, 2, func(k, round int, workers []*DistPeeler) {
		if moved || round < 2 {
			return
		}
		moved = true
		// Move every shard owned by worker 1 onto worker 0, as if
		// worker 1 died at this barrier and the coordinator replayed
		// its snapshots onto the survivor.
		for _, s := range workers[1].Owned() {
			sn := workers[1].snapshotShard(s)
			workers[1].DropShard(s)
			if err := workers[0].AssignSnapshot(sn); err != nil {
				t.Fatalf("reassign shard %d: %v", s, err)
			}
		}
	})
	if !moved {
		t.Fatal("run finished before the reassignment barrier; enlarge the instance")
	}
	sameDecomposition(t, h, got, "reassigned run")
}

// TestDistPeelerSnapshotValidation pins the decoder-side defenses of
// AssignSnapshot: wrong shard index, wrong degree length, and a dying
// edge owned elsewhere are all rejected.
func TestDistPeelerSnapshotValidation(t *testing.T) {
	h := gen.RandomHypergraph(40, 30, 4, xrand.New(1))
	part := partition.Build(h, 3)
	w := NewDistPeeler(h, part)
	sn := w.AssignFresh(1)
	if err := w.AssignSnapshot(&ShardSnapshot{Shard: 99}); err == nil {
		t.Error("out-of-range shard index accepted")
	}
	bad := sn.Clone()
	bad.Deg = bad.Deg[:1]
	if err := w.AssignSnapshot(bad); err == nil {
		t.Error("truncated degree array accepted")
	}
	bad = sn.Clone()
	var foreign int32 = -1
	for g := int32(0); int(g) < h.NumEdges(); g++ {
		if part.EdgeOwner[g] != 1 {
			foreign = g
			break
		}
	}
	if foreign >= 0 {
		bad.Dying = append(bad.Dying, foreign)
		if err := w.AssignSnapshot(bad); err == nil {
			t.Error("foreign dying edge accepted")
		}
	}
	if err := w.AssignSnapshot(sn.Clone()); err != nil {
		t.Errorf("valid snapshot rejected: %v", err)
	}
}

// TestDistPeelerEmptyAndDegenerate covers the empty hypergraph and
// memberless hyperedges through the dist schedule.
func TestDistPeelerEmptyAndDegenerate(t *testing.T) {
	empty, err := hypergraph.FromEdgeSets(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := distDriver(t, empty, 2, 2, nil)
	if d.MaxK != 0 {
		t.Fatalf("empty hypergraph MaxK = %d, want 0", d.MaxK)
	}
	one, err := hypergraph.FromEdgeSets(3, [][]int32{{}, {0, 1, 2}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	sameDecomposition(t, one, distDriver(t, one, 2, 2, nil), "degenerate")
}

// TestNewShardSingleArena pins the allocation discipline of the dist
// shard setup: every int32 array of a shardPeel is carved from one
// arena allocation, so assigning a shard costs two heap objects (the
// struct and the arena) instead of one per work list — and the carved
// slices tile the arena with full-slice-expression caps, so an append
// past a list's budget cannot silently bleed into its neighbor.
func TestNewShardSingleArena(t *testing.T) {
	rng := xrand.New(0xA7E4A)
	h := gen.RandomHypergraph(300, 200, 5, rng)
	part := partition.Build(h, partition.NormalizeShards(4, h.NumVertices()))
	w := NewDistPeeler(h, part)

	allocs := testing.AllocsPerRun(50, func() {
		_ = w.newShard(1)
	})
	if allocs > 3 {
		t.Errorf("newShard allocates %.1f objects per call, want at most 3 (shardPeel + arena)", allocs)
	}

	p := w.newShard(1)
	n := len(part.Shards[1].Vertices)
	ne := len(part.Shards[1].Edges)
	if cap(p.frontier) != n || len(p.frontier) != 0 {
		t.Errorf("frontier carved len=%d cap=%d, want an empty list with capacity %d", len(p.frontier), cap(p.frontier), n)
	}
	for name, sl := range map[string][]int32{"shrunk": p.shrunk, "dying": p.dying} {
		if cap(sl) != ne || len(sl) != 0 {
			t.Errorf("%s carved len=%d cap=%d, want an empty list with capacity %d", name, len(sl), cap(sl), ne)
		}
	}
	if cap(p.deg) != len(p.deg) || cap(p.stamp) != len(p.stamp) {
		t.Error("carved arrays are not capacity-capped; appends could bleed into the next carve")
	}
}
