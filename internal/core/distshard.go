package core

import (
	"fmt"

	"hyperplex/internal/csr"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/partition"
)

// This file is the engine layer's distributed face: the per-worker
// peel state a coordinator/worker runtime (internal/dist) drives over a
// wire instead of through in-memory outboxes.  A DistPeeler is one
// worker's replica — the full hypergraph as a csr.CSR, the global
// alive/degree/coreness mirrors every worker keeps in lockstep, and the
// shardPeel arenas of the shards assigned to this worker.  The phase
// methods mirror the bulk-synchronous schedule of shardedEngine
// (sharded.go) exactly, with one twist: instead of pairwise outboxes,
// each round's cross-shard traffic is two broadcast deltas — the dying
// hyperedge IDs and the retired vertex IDs — which every replica
// applies uniformly, so the mirrors never diverge.  Degree decrements,
// alive flips and coreness clamps are commutative within a phase, so
// the fixpoint per level (and therefore the coreness assignment) is
// identical to Decompose and ShardedDecompose.
//
// Fault tolerance hangs off two snapshot layers:
//
//   - ShardSnapshot is the wire-serializable barrier state of a single
//     shardPeel (owned degrees, alive count, pending dying edges); the
//     coordinator collects one per shard at every barrier and replays
//     it onto a surviving worker when the owner dies.
//   - PeelCheckpoint is a worker-local deep copy of the whole replica
//     (mirrors plus every owned ShardSnapshot); survivors restore it on
//     rollback so the round replays from the last completed barrier.
//
// Everything else — the bucket queue, the shrink stamps, the frontier
// lists — is reconstructed from those snapshots plus the mirrors, so a
// restored replica continues bit-identically (distshard_test.go pins
// this).

// ShardSnapshot is the barrier state of one shard's peel, in wire-ready
// form: flat int32 arrays, global IDs, no pointers into the arena.
type ShardSnapshot struct {
	Shard  int32   // shard index
	AliveV int32   // alive owned vertices
	Deg    []int32 // current degree per owned vertex, by owned offset
	Dying  []int32 // pending dying hyperedges (global IDs), found by the last check phase
}

// Clone deep-copies the snapshot.
func (sn *ShardSnapshot) Clone() *ShardSnapshot {
	return &ShardSnapshot{
		Shard:  sn.Shard,
		AliveV: sn.AliveV,
		Deg:    append([]int32(nil), sn.Deg...),
		Dying:  append([]int32(nil), sn.Dying...),
	}
}

// PeelCheckpoint is a worker-local deep copy of a DistPeeler at a
// barrier: the global mirrors plus a ShardSnapshot per owned shard.
type PeelCheckpoint struct {
	K      int
	Round  int32
	vAlive []bool
	eAlive []bool
	eDeg   []int32
	vCore  []int
	eCore  []int
	shards []*ShardSnapshot
}

// DistPeeler is one distributed worker's replica of the sharded peel:
// the full hypergraph, the global mirrors, and the shardPeel arenas of
// the shards assigned to it.  It is not safe for concurrent use; the
// dist worker drives it from a single loop.
type DistPeeler struct {
	c    *csr.CSR
	part *partition.Partition

	vAlive, eAlive []bool
	eDeg           []int32
	vCore, eCore   []int

	// eLocal maps a global hyperedge ID to its owner-local index (its
	// position in part.Shards[owner].Edges), shared by every shard's
	// stamp addressing.
	eLocal []int32

	shards  []*shardPeel // indexed by shard; nil when not owned here
	scratch *nonMaxScratch

	k     int   // current peeling threshold
	round int32 // shrink-stamp generation, advanced per retire phase
}

// NewDistPeeler builds a fresh replica over h and its partition: all
// vertices and hyperedges alive, no shards assigned.
func NewDistPeeler(h *hypergraph.Hypergraph, part *partition.Partition) *DistPeeler {
	nv, ne := h.NumVertices(), h.NumEdges()
	w := &DistPeeler{
		c:       csr.FromH(h),
		part:    part,
		vAlive:  make([]bool, nv),
		eAlive:  make([]bool, ne),
		eDeg:    make([]int32, ne),
		vCore:   make([]int, nv),
		eCore:   make([]int, ne),
		eLocal:  make([]int32, ne),
		shards:  make([]*shardPeel, part.NumShards()),
		scratch: newNonMaxScratch(ne),
	}
	for v := 0; v < nv; v++ {
		w.vAlive[v] = true
	}
	for f := 0; f < ne; f++ {
		w.eAlive[f] = true
		w.eDeg[f] = int32(h.EdgeDegree(f))
	}
	for s := range part.Shards {
		for i, g := range part.Shards[s].Edges {
			w.eLocal[g] = int32(i)
		}
	}
	return w
}

// NumShards returns the partition's shard count.
func (w *DistPeeler) NumShards() int { return w.part.NumShards() }

// Owned returns the ascending indices of the shards assigned here.
func (w *DistPeeler) Owned() []int {
	var out []int
	for s, p := range w.shards {
		if p != nil {
			out = append(out, s)
		}
	}
	return out
}

// newShard carves the structural arrays of shard s's peel: degrees,
// the lazy bucket queue sized for one initial push per owned vertex
// plus one per possible decrement, the owner-local shrink stamps and
// the work lists.  Degrees and queue contents are filled by the
// caller (fresh assign or snapshot restore).
func (w *DistPeeler) newShard(s int) *shardPeel {
	sh := &w.part.Shards[s]
	n := csr.MustInt32(len(sh.Vertices))
	p := &shardPeel{n: n}
	if n > 0 {
		p.lo = sh.Vertices[0]
	}
	maxDeg, ownedInc := int32(0), int32(0)
	for j := int32(0); j < n; j++ {
		d := w.c.VertexDegree(p.lo + j)
		if d > maxDeg {
			maxDeg = d
		}
		ownedInc += d
	}
	ne := csr.MustInt32(len(sh.Edges))
	entries := n + ownedInc
	// One arena allocation backs every int32 slice of the shard — the
	// same carve discipline as shardedEngine.setupShard, so the work
	// lists shared through shardPeel stay arena-owned everywhere.
	arena := make([]int32, n+(maxDeg+1)+2*entries+ne+n+2*ne)
	carve := func(sz int32) []int32 {
		s := arena[:sz:sz]
		arena = arena[sz:]
		return s
	}
	p.deg = carve(n)
	p.head = carve(maxDeg + 1)
	p.next = carve(entries)
	p.item = carve(entries)
	p.stamp = carve(ne)
	p.frontier = carve(n)[:0]
	p.shrunk = carve(ne)[:0]
	p.dying = carve(ne)[:0]
	for i := range p.head {
		p.head[i] = -1
	}
	for i := range p.stamp {
		p.stamp[i] = -1
	}
	p.cur = len(p.head)
	return p
}

// AssignFresh assigns shard s to this replica in its initial state and
// runs the round-0 reduction over its owned hyperedges (empty and
// initially non-maximal hyperedges die at coreness 0, exactly like
// shardedEngine.checkInitial).  It returns the shard's first barrier
// snapshot.
func (w *DistPeeler) AssignFresh(s int) *ShardSnapshot {
	p := w.newShard(s)
	for j := int32(0); j < p.n; j++ {
		p.deg[j] = w.c.VertexDegree(p.lo + j)
		p.push(j, int(p.deg[j]))
	}
	p.aliveV = int(p.n)
	w.shards[s] = p
	for i, g := range w.part.Shards[s].Edges {
		if w.checkDead(g) {
			p.dying = append(p.dying, int32(i))
		}
	}
	return w.snapshotShard(s)
}

// AssignSnapshot assigns shard s to this replica, restored from a
// barrier snapshot: degrees come from the snapshot, the bucket queue is
// rebuilt with one push per alive owned vertex at its current degree,
// and the pending dying list is mapped back to owner-local indices.
// The global mirrors must already be at the same barrier.
func (w *DistPeeler) AssignSnapshot(sn *ShardSnapshot) error {
	s := int(sn.Shard)
	if s < 0 || s >= len(w.shards) {
		return fmt.Errorf("core: dist shard snapshot for shard %d of %d", s, len(w.shards))
	}
	p := w.newShard(s)
	if len(sn.Deg) != int(p.n) {
		return fmt.Errorf("core: dist shard %d snapshot has %d degrees, want %d", s, len(sn.Deg), p.n)
	}
	copy(p.deg, sn.Deg)
	p.aliveV = int(sn.AliveV)
	for j := int32(0); j < p.n; j++ {
		if w.vAlive[p.lo+j] {
			p.push(j, int(p.deg[j]))
		}
	}
	for _, g := range sn.Dying {
		if g < 0 || int(g) >= len(w.eLocal) || w.part.EdgeOwner[g] != int32(s) {
			return fmt.Errorf("core: dist shard %d snapshot dying edge %d is not owned by it", s, g)
		}
		p.dying = append(p.dying, w.eLocal[g])
	}
	w.shards[s] = p
	return nil
}

// DropShard releases shard s (its owner moved elsewhere).
func (w *DistPeeler) DropShard(s int) { w.shards[s] = nil }

// snapshotShard captures shard s's barrier state.
func (w *DistPeeler) snapshotShard(s int) *ShardSnapshot {
	p := w.shards[s]
	sn := &ShardSnapshot{
		Shard:  int32(s),
		AliveV: int32(p.aliveV),
		Deg:    append([]int32(nil), p.deg...),
		Dying:  make([]int32, 0, len(p.dying)),
	}
	for _, fi := range p.dying {
		sn.Dying = append(sn.Dying, w.part.Shards[s].Edges[fi])
	}
	return sn
}

// clampCore mirrors shardedEngine.clampCore: state retired while
// peeling toward threshold k belonged to the (k-1)-core.
func (w *DistPeeler) clampCore() int {
	if w.k < 1 {
		return 0
	}
	return w.k - 1
}

// checkDead reports whether hyperedge g (global ID) is empty or
// non-maximal against the current stable snapshot.
func (w *DistPeeler) checkDead(g int32) bool {
	df := w.eDeg[g]
	return df == 0 || w.scratch.NonMaximal(w.c, g, df,
		func(v int32) bool { return w.vAlive[v] },
		func(f int32) bool { return w.eAlive[f] },
		func(f int32) int32 { return w.eDeg[f] })
}

// ApplyDying applies a round's broadcast dying-hyperedge delta at
// threshold k: every replica retires the edges in its mirrors, and the
// owners of their alive members decrement those vertices' degrees
// (re-pushing them at the new bucket).  The union must cover every
// shard's pending dying list; the pending lists are consumed.
func (w *DistPeeler) ApplyDying(k int, dying []int32) {
	w.k = k
	for _, g := range dying {
		w.eAlive[g] = false
		w.eCore[g] = w.clampCore()
		for _, v := range w.c.EdgeVertices(g) {
			if !w.vAlive[v] {
				continue
			}
			if p := w.shards[w.part.VertexOwner[v]]; p != nil {
				j := v - p.lo
				p.deg[j]--
				p.push(j, int(p.deg[j]))
			}
		}
	}
	for _, p := range w.shards {
		if p != nil {
			p.dying = p.dying[:0]
		}
	}
}

// GatherFrontier gathers every owned shard's frontier — alive owned
// vertices whose degree fell below the threshold — from the bucket
// queues with the same stale-skipping discipline as the sharded
// engine, and returns the local frontier size and alive-vertex count
// for the coordinator's barrier vote.
func (w *DistPeeler) GatherFrontier() (frontier, alive int) {
	for _, p := range w.shards {
		if p == nil {
			continue
		}
		p.frontier = p.frontier[:0]
		top := w.k
		if top > len(p.head) {
			top = len(p.head)
		}
		for d := p.cur; d < top; d++ {
			for idx := p.head[d]; idx != -1; idx = p.next[idx] {
				j := p.item[idx]
				if w.vAlive[p.lo+j] && int(p.deg[j]) == d {
					p.frontier = append(p.frontier, j)
				}
			}
			p.head[d] = -1
		}
		if p.cur < top {
			p.cur = top
		}
		frontier += len(p.frontier)
		alive += p.aliveV
	}
	return frontier, alive
}

// CollectRetired drains the gathered frontiers as global vertex IDs for
// the retire broadcast.  Nothing is applied yet: the coordinator
// gathers every worker's contribution and broadcasts the union, which
// ApplyRetired then applies uniformly.
func (w *DistPeeler) CollectRetired() []int32 {
	var out []int32
	for _, p := range w.shards {
		if p == nil {
			continue
		}
		for _, j := range p.frontier {
			out = append(out, p.lo+j)
		}
		p.frontier = p.frontier[:0]
	}
	return out
}

// ApplyRetired applies a round's broadcast retired-vertex delta: every
// replica retires the vertices in its mirrors and decrements the
// degrees of their alive hyperedges, and the owners of those hyperedges
// record first-shrink stamps for the re-check phase.
func (w *DistPeeler) ApplyRetired(retired []int32) {
	w.round++
	for _, vg := range retired {
		w.vAlive[vg] = false
		w.vCore[vg] = w.clampCore()
		if p := w.shards[w.part.VertexOwner[vg]]; p != nil {
			p.aliveV--
		}
		for _, g := range w.c.VertexEdges(vg) {
			if !w.eAlive[g] {
				continue
			}
			w.eDeg[g]--
			if ps := w.shards[w.part.EdgeOwner[g]]; ps != nil {
				fi := w.eLocal[g]
				if ps.stamp[fi] != w.round {
					ps.stamp[fi] = w.round
					ps.shrunk = append(ps.shrunk, fi)
				}
			}
		}
	}
}

// CheckShrunk re-checks every owned hyperedge that shrank this round
// for emptiness or non-maximality, refilling each shard's pending
// dying list, and returns the barrier snapshot of every owned shard.
func (w *DistPeeler) CheckShrunk() []*ShardSnapshot {
	var out []*ShardSnapshot
	for s, p := range w.shards {
		if p == nil {
			continue
		}
		p.dying = p.dying[:0]
		for _, fi := range p.shrunk {
			if w.checkDead(w.part.Shards[s].Edges[fi]) {
				p.dying = append(p.dying, fi)
			}
		}
		p.shrunk = p.shrunk[:0]
		out = append(out, w.snapshotShard(s))
	}
	return out
}

// Coreness copies out the replica's coreness mirrors.  Valid once the
// coordinator has driven every vertex to retirement; every replica
// holds the full arrays, so any worker can serve the result.
func (w *DistPeeler) Coreness() (vCore, eCore []int) {
	return append([]int(nil), w.vCore...), append([]int(nil), w.eCore...)
}

// Checkpoint deep-copies the replica at a barrier: mirrors plus one
// ShardSnapshot per owned shard.  Restore brings the replica back to
// exactly this state.
func (w *DistPeeler) Checkpoint() *PeelCheckpoint {
	cp := &PeelCheckpoint{
		K:      w.k,
		Round:  w.round,
		vAlive: append([]bool(nil), w.vAlive...),
		eAlive: append([]bool(nil), w.eAlive...),
		eDeg:   append([]int32(nil), w.eDeg...),
		vCore:  append([]int(nil), w.vCore...),
		eCore:  append([]int(nil), w.eCore...),
	}
	for s, p := range w.shards {
		if p != nil {
			cp.shards = append(cp.shards, w.snapshotShard(s))
		}
	}
	return cp
}

// Restore rolls the replica back to a checkpoint taken on this
// replica: mirrors are copied back and every owned shardPeel is
// rebuilt from its barrier snapshot, so the continuation is
// bit-identical to a run that never left the barrier.
func (w *DistPeeler) Restore(cp *PeelCheckpoint) error {
	w.k = cp.K
	w.round = cp.Round
	copy(w.vAlive, cp.vAlive)
	copy(w.eAlive, cp.eAlive)
	copy(w.eDeg, cp.eDeg)
	copy(w.vCore, cp.vCore)
	copy(w.eCore, cp.eCore)
	for s := range w.shards {
		w.shards[s] = nil
	}
	for _, sn := range cp.shards {
		if err := w.AssignSnapshot(sn); err != nil {
			return err
		}
	}
	return nil
}
