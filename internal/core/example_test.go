package core_test

import (
	"fmt"

	"hyperplex/internal/core"
	"hyperplex/internal/graph"
	"hyperplex/internal/hypergraph"
)

// ExampleKCore computes the core proteome of a toy complex network.
func ExampleKCore() {
	b := hypergraph.NewBuilder()
	b.AddEdge("c1", "a", "b", "c")
	b.AddEdge("c2", "a", "b", "d")
	b.AddEdge("c3", "a", "c", "d")
	b.AddEdge("c4", "b", "c", "d")
	b.AddEdge("pendant", "a", "x")
	h := b.MustBuild()

	r := core.KCore(h, 3)
	fmt.Printf("%d vertices, %d hyperedges in the 3-core\n", r.NumVertices, r.NumEdges)
	// Output:
	// 4 vertices, 4 hyperedges in the 3-core
}

// ExampleDecompose shows the coreness profile of a small hypergraph.
func ExampleDecompose() {
	b := hypergraph.NewBuilder()
	b.AddEdge("c1", "a", "b", "c")
	b.AddEdge("c2", "a", "b", "d")
	b.AddEdge("c3", "a", "c", "d")
	b.AddEdge("c4", "b", "c", "d")
	b.AddEdge("p1", "a", "x")
	b.AddEdge("p2", "x", "y")
	h := b.MustBuild()

	d := core.Decompose(h)
	for _, lvl := range d.Profile() {
		fmt.Printf("%d-core: %d/%d\n", lvl.K, lvl.Vertices, lvl.Edges)
	}
	// Output:
	// 1-core: 6/6
	// 2-core: 4/4
	// 3-core: 4/4
}

// ExampleBiCore filters peeled hyperedges below a minimum size.
func ExampleBiCore() {
	b := hypergraph.NewBuilder()
	b.AddEdge("big1", "a", "b", "c", "d")
	b.AddEdge("big2", "a", "b", "c", "e")
	b.AddEdge("big3", "a", "b", "d", "e")
	b.AddEdge("pair", "a", "x")
	h := b.MustBuild()

	r := core.BiCore(h, 2, 3)
	fmt.Printf("(2,3)-core: %d vertices, %d hyperedges\n", r.NumVertices, r.NumEdges)
	// Output:
	// (2,3)-core: 5 vertices, 3 hyperedges
}

// ExampleGraphCoreness reproduces the Figure 2 computation.
func ExampleGraphCoreness() {
	// K4 with a pendant path: the maximum core is the 3-core.
	g := mustGraph()
	fmt.Println(core.GraphCoreness(g))
	// Output:
	// [3 3 3 3 1 1 1]
}

func mustGraph() *graph.Graph {
	return graph.MustBuild(7, [][2]int32{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
		{3, 4}, {4, 5}, {0, 6},
	})
}
