package core

import (
	"context"

	"hyperplex/internal/hypergraph"
)

// BiCore computes the (k, l)-core of a hypergraph: the maximal
// sub-hypergraph in which every vertex belongs to at least k
// hyperedges AND every hyperedge contains at least l vertices, with
// the reduction invariant (no hyperedge contained in another)
// maintained throughout, generalizing the paper's k-core (which is the
// (k, 1)-core).  The l threshold matters for complex data: complexes
// whittled down to one or two proteins by peeling are biologically
// dubious cores, and (k, l ≥ 3) filters them.
//
// The implementation extends the overlap-count peeler: hyperedges die
// when empty, non-maximal, or smaller than l; vertices die when their
// degree drops below k.
func BiCore(h *hypergraph.Hypergraph, k, l int) *Result {
	r, err := BiCoreCtx(context.Background(), h, k, l)
	if err != nil {
		panic(err) // only reachable through an armed failpoint
	}
	return r
}

// BiCoreCtx is BiCore honoring cancellation, deadline and any
// run.Budget attached to ctx, checked every bounded number of peel
// operations.  On cancellation or budget exhaustion it returns
// (nil, err).
func BiCoreCtx(ctx context.Context, h *hypergraph.Hypergraph, k, l int) (r *Result, err error) {
	defer recoverPeelAbort(&err)
	p := newPeeler(ctx, h)
	if l < 1 {
		l = 1
	}
	p.minEdgeSize = l
	// Seed: remove undersized hyperedges before the vertex peel.
	var drop []int
	for f := 0; f < h.NumEdges(); f++ {
		if p.eAlive[f] && p.eDeg[f] < int32(l) {
			drop = append(drop, f)
		}
	}
	p.k = k
	for _, f := range drop {
		if p.eAlive[f] {
			p.deleteEdge(f)
		}
	}
	if k < 1 {
		p.peelTo(1)
		return p.result(0), nil
	}
	p.peelTo(k)
	return p.result(k), nil
}

// BiCoreDecomposeL returns, for fixed l, the maximum k with a
// non-empty (k, l)-core, plus that core.  It exists so callers can
// sweep the l axis cheaply.
func BiCoreDecomposeL(h *hypergraph.Hypergraph, l int) (int, *Result) {
	best := BiCore(h, 0, l)
	if best.NumVertices == 0 {
		return 0, best
	}
	for k := 1; ; k++ {
		r := BiCore(h, k, l)
		if r.NumVertices == 0 {
			return k - 1, best
		}
		best = r
	}
}
