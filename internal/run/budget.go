// Package run carries the execution-control plumbing shared by the
// algorithm kernels: resource budgets (steps, estimated allocation,
// wall deadline) and the checkpoint helper the kernels call at bounded
// intervals to honor cancellation and budgets.  A budget turns a
// runaway input into a typed ErrBudgetExceeded instead of an unbounded
// computation; the Ctx variants of the kernels document what partial
// result (if any) accompanies the error.
package run

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrBudgetExceeded is the base error of every budget violation; match
// it with errors.Is.
var ErrBudgetExceeded = errors.New("run: budget exceeded")

// BudgetError reports which resource ran out.  It wraps
// ErrBudgetExceeded.
type BudgetError struct {
	Resource string // "steps", "alloc" or "wall"
	Limit    int64  // the configured limit (nanoseconds for "wall")
	Used     int64  // consumption at the time of the violation
}

func (e *BudgetError) Error() string {
	if e.Resource == "wall" {
		return fmt.Sprintf("run: wall deadline exceeded after %v (budget %v)",
			time.Duration(e.Used), time.Duration(e.Limit))
	}
	return fmt.Sprintf("run: %s budget exceeded: %d > %d", e.Resource, e.Used, e.Limit)
}

func (e *BudgetError) Unwrap() error { return ErrBudgetExceeded }

// Budget bounds a computation.  The zero value is unlimited.
type Budget struct {
	// MaxSteps caps the number of elementary operations (peeled
	// vertices and edges, heap pops, BFS relaxations, parsed records —
	// each kernel documents its unit).  0 = unlimited.
	MaxSteps int64
	// MaxAlloc caps the estimated bytes of long-lived allocation a
	// loader or kernel admits (an estimate charged by the code, not a
	// runtime measurement).  0 = unlimited.
	MaxAlloc int64
	// MaxWall caps the wall-clock duration measured from the first
	// checkpoint.  0 = unlimited.
	MaxWall time.Duration
}

// Meter tracks consumption against a Budget.  A nil *Meter is valid
// and unlimited, so kernels can call methods unconditionally.  Meters
// are safe for concurrent use by parallel kernels.
type Meter struct {
	budget Budget
	steps  atomic.Int64
	alloc  atomic.Int64
	start  atomic.Int64 // first-checkpoint time, UnixNano; 0 = not started
}

// NewMeter returns a meter enforcing b.
func NewMeter(b Budget) *Meter { return &Meter{budget: b} }

// Steps returns the steps charged so far.
func (m *Meter) Steps() int64 {
	if m == nil {
		return 0
	}
	return m.steps.Load()
}

// Allocated returns the estimated bytes charged so far.
func (m *Meter) Allocated() int64 {
	if m == nil {
		return 0
	}
	return m.alloc.Load()
}

// Step charges n elementary operations and reports whether the step or
// wall budget is exhausted.
func (m *Meter) Step(n int64) error {
	if m == nil {
		return nil
	}
	used := m.steps.Add(n)
	if m.budget.MaxSteps > 0 && used > m.budget.MaxSteps {
		return &BudgetError{Resource: "steps", Limit: m.budget.MaxSteps, Used: used}
	}
	return m.checkWall()
}

// Alloc charges n estimated bytes and reports whether the allocation
// budget is exhausted.
func (m *Meter) Alloc(n int64) error {
	if m == nil {
		return nil
	}
	used := m.alloc.Add(n)
	if m.budget.MaxAlloc > 0 && used > m.budget.MaxAlloc {
		return &BudgetError{Resource: "alloc", Limit: m.budget.MaxAlloc, Used: used}
	}
	return nil
}

func (m *Meter) checkWall() error {
	if m.budget.MaxWall <= 0 {
		return nil
	}
	now := time.Now().UnixNano()
	start := m.start.Load()
	if start == 0 {
		// First checkpoint starts the clock; a lost race just means
		// another checkpoint's timestamp wins, which is equivalent.
		if !m.start.CompareAndSwap(0, now) {
			start = m.start.Load()
		} else {
			start = now
		}
	}
	if elapsed := now - start; elapsed > int64(m.budget.MaxWall) {
		return &BudgetError{Resource: "wall", Limit: int64(m.budget.MaxWall), Used: elapsed}
	}
	return nil
}

type meterKey struct{}

// WithBudget returns a context carrying a fresh Meter enforcing b.
// Kernels retrieve it with MeterFrom; the caller can keep the returned
// Meter to inspect consumption afterwards.
func WithBudget(ctx context.Context, b Budget) (context.Context, *Meter) {
	m := NewMeter(b)
	return context.WithValue(ctx, meterKey{}, m), m
}

// MeterFrom returns the context's Meter, or nil (= unlimited) when the
// context carries none.
func MeterFrom(ctx context.Context) *Meter {
	m, _ := ctx.Value(meterKey{}).(*Meter)
	return m
}

// Tick is the checkpoint the kernels call every bounded number of
// elementary operations: it surfaces context cancellation or deadline
// first, then charges n steps against the context's budget (if any).
func Tick(ctx context.Context, m *Meter, n int64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return m.Step(n)
}
