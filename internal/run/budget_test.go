package run

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilMeterUnlimited(t *testing.T) {
	var m *Meter
	if err := m.Step(1 << 40); err != nil {
		t.Fatal(err)
	}
	if err := m.Alloc(1 << 40); err != nil {
		t.Fatal(err)
	}
	if m.Steps() != 0 || m.Allocated() != 0 {
		t.Fatal("nil meter should report zero consumption")
	}
}

func TestZeroBudgetUnlimited(t *testing.T) {
	m := NewMeter(Budget{})
	for i := 0; i < 1000; i++ {
		if err := m.Step(1 << 20); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStepBudget(t *testing.T) {
	m := NewMeter(Budget{MaxSteps: 100})
	if err := m.Step(100); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	err := m.Step(1)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Resource != "steps" || be.Used != 101 {
		t.Fatalf("want steps BudgetError with Used=101, got %#v", err)
	}
}

func TestAllocBudget(t *testing.T) {
	m := NewMeter(Budget{MaxAlloc: 1 << 10})
	if err := m.Alloc(1 << 10); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	err := m.Alloc(1)
	var be *BudgetError
	if !errors.As(err, &be) || be.Resource != "alloc" {
		t.Fatalf("want alloc BudgetError, got %v", err)
	}
}

func TestWallBudget(t *testing.T) {
	m := NewMeter(Budget{MaxWall: 5 * time.Millisecond})
	if err := m.Step(1); err != nil {
		t.Fatalf("first checkpoint should start the clock, not fail: %v", err)
	}
	time.Sleep(15 * time.Millisecond)
	err := m.Step(1)
	var be *BudgetError
	if !errors.As(err, &be) || be.Resource != "wall" {
		t.Fatalf("want wall BudgetError, got %v", err)
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx, m := WithBudget(context.Background(), Budget{MaxSteps: 10})
	if got := MeterFrom(ctx); got != m {
		t.Fatal("MeterFrom should return the attached meter")
	}
	if got := MeterFrom(context.Background()); got != nil {
		t.Fatalf("plain context carries meter %v", got)
	}
	if err := Tick(ctx, m, 10); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	if err := Tick(ctx, m, 1); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
}

func TestTickSurfacesCancellationFirst(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := NewMeter(Budget{MaxSteps: 1})
	err := Tick(ctx, m, 100)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if m.Steps() != 0 {
		t.Fatal("cancelled tick should not charge steps")
	}
}
