// Package chaos hosts the fault-injection test suite: it iterates
// every failpoint site registered by the library (see
// internal/failpoint) crossed with every arm (error, panic, delay
// under a deadline) and asserts the robustness contract of the Ctx
// APIs:
//
//   - faults surface as clean typed errors (wrapping
//     failpoint.ErrInjected, context errors, run.ErrBudgetExceeded, or
//     a recovered-worker-panic error) — never as an unrecovered crash;
//   - any result returned alongside success still satisfies the
//     invariant checkers in internal/check (ValidCore, ValidCover);
//   - no goroutine outlives the interrupted call.
//
// The package contains no library code; the suite lives in the test
// files so production binaries never link it.
package chaos
