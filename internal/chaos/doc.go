// Package chaos hosts the fault-injection test suite: it iterates
// every failpoint site registered by the library (see
// internal/failpoint) crossed with every arm (error, panic, delay
// under a deadline) and asserts the robustness contract of the Ctx
// APIs:
//
//   - faults surface as clean typed errors (wrapping
//     failpoint.ErrInjected, context errors, run.ErrBudgetExceeded, or
//     a recovered-worker-panic error) — never as an unrecovered crash;
//   - any result returned alongside success still satisfies the
//     invariant checkers in internal/check (ValidCore, ValidCover);
//   - no goroutine outlives the interrupted call.
//
// The distributed runtime's sites (dist.send, dist.recv,
// dist.heartbeat, dist.reassign) carry an inverted contract: the
// coordinator absorbs injected faults by retry-with-backoff,
// worker-death replay from the last committed barrier, or the local
// fallback, so a fired error arm followed by a clean, exactly-correct
// result is the expected outcome there.  Their driver kills a worker
// at the first committed barrier so every run also crosses the
// death-recovery path.
//
// The package contains no library code; the suite lives in the test
// files so production binaries never link it.
package chaos
