package chaos

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hyperplex/internal/check"
	"hyperplex/internal/core"
	"hyperplex/internal/cover"
	"hyperplex/internal/dataset"
	"hyperplex/internal/dist"
	"hyperplex/internal/failpoint"
	"hyperplex/internal/gen"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/mmio"
	"hyperplex/internal/pajek"
	"hyperplex/internal/partition"
	"hyperplex/internal/run"
	"hyperplex/internal/stats"
	"hyperplex/internal/store"
	"hyperplex/internal/xrand"
)

// Shared fixtures: a hypergraph large enough that every periodic
// checkpoint is reached, its serialized forms for the reader sites,
// and a saved dataset instance for dataset.load.
var (
	bigH      *hypergraph.Hypergraph
	textData  []byte
	mtxData   []byte
	netData   []byte
	instDir   string
	storePath string
)

func TestMain(m *testing.M) {
	bigH = gen.RandomHypergraph(400, 300, 6, xrand.New(0xC11A05))
	var buf bytes.Buffer
	if err := hypergraph.WriteText(&buf, bigH); err != nil {
		panic(err)
	}
	textData = append([]byte(nil), buf.Bytes()...)
	buf.Reset()
	if err := mmio.Write(&buf, mmio.FromHypergraph(bigH)); err != nil {
		panic(err)
	}
	mtxData = append([]byte(nil), buf.Bytes()...)
	buf.Reset()
	if err := pajek.WriteNet(&buf, bigH, nil, nil); err != nil {
		panic(err)
	}
	netData = append([]byte(nil), buf.Bytes()...)

	dir, err := os.MkdirTemp("", "chaos-instance-")
	if err != nil {
		panic(err)
	}
	if err := dataset.Cellzome().Save(dir); err != nil {
		panic(err)
	}
	instDir = dir
	storePath = filepath.Join(dir, "big.store")
	if err := store.WriteH(storePath, bigH); err != nil {
		panic(err)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// drivers maps every registered failpoint site to a function that
// exercises it through the public Ctx APIs.  Each driver validates any
// successful result with the independent checkers and returns the
// call's error for the harness to judge.
func drivers() map[string]func(t *testing.T, ctx context.Context) error {
	return map[string]func(t *testing.T, ctx context.Context) error{
		"core.peel.step": func(t *testing.T, ctx context.Context) error {
			r, err := core.KCoreCtx(ctx, bigH, 2)
			if err == nil {
				if verr := check.ValidCore(bigH, 2, r); verr != nil {
					t.Errorf("successful KCoreCtx result invalid: %v", verr)
				}
			} else if r != nil {
				t.Errorf("KCoreCtx returned a result alongside error %v", err)
			}
			return err
		},
		"core.parallel.worker": func(t *testing.T, ctx context.Context) error {
			r, err := core.KCoreParallelCtx(ctx, bigH, 2, 4)
			if err == nil {
				if verr := check.ValidCore(bigH, 2, r); verr != nil {
					t.Errorf("successful KCoreParallelCtx result invalid: %v", verr)
				}
			} else if r != nil {
				t.Errorf("KCoreParallelCtx returned a result alongside error %v", err)
			}
			return err
		},
		"core.sharded.worker":   shardedDriver,
		"core.sharded.exchange": shardedDriver,
		"csr.build":             csrDriver,
		"csr.peel":              csrDriver,
		"partition.build": func(t *testing.T, ctx context.Context) error {
			p, err := partition.BuildCtx(ctx, bigH, 4)
			if err == nil {
				if p.NumShards() != 4 {
					t.Errorf("successful BuildCtx produced %d shards, want 4", p.NumShards())
				}
				owned := 0
				for _, sh := range p.Shards {
					owned += len(sh.Vertices)
				}
				if owned != bigH.NumVertices() {
					t.Errorf("successful BuildCtx owns %d of %d vertices", owned, bigH.NumVertices())
				}
			} else if p != nil {
				t.Errorf("BuildCtx returned a partition alongside error %v", err)
			}
			return err
		},
		"cover.greedy.pop": func(t *testing.T, ctx context.Context) error {
			c, err := cover.GreedyCtx(ctx, bigH, nil)
			if err == nil {
				if verr := check.ValidCover(bigH, c, nil, nil); verr != nil {
					t.Errorf("successful GreedyCtx result invalid: %v", verr)
				}
			} else if c != nil {
				t.Errorf("GreedyCtx returned a cover alongside error %v", err)
			}
			return err
		},
		"cover.csr.pop": func(t *testing.T, ctx context.Context) error {
			c, err := cover.CSRGreedyCtx(ctx, bigH, nil)
			if err == nil {
				if verr := check.ValidCover(bigH, c, nil, nil); verr != nil {
					t.Errorf("successful CSRGreedyCtx result invalid: %v", verr)
				}
			} else if c != nil {
				t.Errorf("CSRGreedyCtx returned a cover alongside error %v", err)
			}
			return err
		},
		"cover.primaldual.scan": func(t *testing.T, ctx context.Context) error {
			pd, err := cover.PrimalDualCtx(ctx, bigH, nil)
			if err == nil {
				if verr := check.ValidPrimalDual(bigH, nil, pd); verr != nil {
					t.Errorf("successful PrimalDualCtx result invalid: %v", verr)
				}
			} else if pd != nil {
				t.Errorf("PrimalDualCtx returned a result alongside error %v", err)
			}
			return err
		},
		"stats.bfs.source": func(t *testing.T, ctx context.Context) error {
			sw, err := stats.SmallWorldStatsCtx(ctx, bigH, 4)
			// Success or not, the (possibly partial, sampled) summary
			// must be internally consistent.
			if sw.Sources < 0 || sw.Sources > bigH.NumVertices() {
				t.Errorf("SmallWorldStatsCtx reports %d sources for %d vertices", sw.Sources, bigH.NumVertices())
			}
			if sw.Diameter < 0 || sw.AvgPathLength < 0 || sw.Pairs < 0 {
				t.Errorf("SmallWorldStatsCtx summary has negative fields: %+v", sw)
			}
			if err == nil && sw.Sources != bigH.NumVertices() {
				t.Errorf("successful SmallWorldStatsCtx completed %d of %d sources", sw.Sources, bigH.NumVertices())
			}
			return err
		},
		"hypergraph.read.line": func(t *testing.T, ctx context.Context) error {
			h, err := hypergraph.ReadTextCtx(ctx, bytes.NewReader(textData))
			if err == nil && h.NumEdges() != bigH.NumEdges() {
				t.Errorf("round trip read %d edges, want %d", h.NumEdges(), bigH.NumEdges())
			}
			return err
		},
		"mmio.read.entry": func(t *testing.T, ctx context.Context) error {
			m, err := mmio.ReadCtx(ctx, bytes.NewReader(mtxData))
			if err == nil && m.NNZ() != bigH.NumPins() {
				t.Errorf("round trip read %d entries, want %d", m.NNZ(), bigH.NumPins())
			}
			return err
		},
		"pajek.read.line": func(t *testing.T, ctx context.Context) error {
			info, err := pajek.ReadNetCtx(ctx, bytes.NewReader(netData))
			if err == nil && len(info.Labels) != bigH.NumVertices()+bigH.NumEdges() {
				t.Errorf("round trip read %d labels, want %d", len(info.Labels), bigH.NumVertices()+bigH.NumEdges())
			}
			return err
		},
		"dataset.load": func(t *testing.T, ctx context.Context) error {
			inst, err := dataset.LoadInstanceCtx(ctx, instDir)
			if err == nil && inst.H.NumVertices() == 0 {
				t.Error("successful LoadInstanceCtx returned an empty instance")
			}
			return err
		},
		"store.open": func(t *testing.T, ctx context.Context) error {
			st, err := store.OpenCtx(ctx, storePath, store.Options{})
			if err == nil {
				defer st.Close()
				c := st.CSR()
				if c.NumVertices() != bigH.NumVertices() || c.NumEdges() != bigH.NumEdges() || c.NumPins() != bigH.NumPins() {
					t.Errorf("successful OpenCtx decoded %d/%d/%d, want %d/%d/%d",
						c.NumVertices(), c.NumEdges(), c.NumPins(),
						bigH.NumVertices(), bigH.NumEdges(), bigH.NumPins())
				}
			} else if st != nil {
				t.Errorf("OpenCtx returned a store alongside error %v", err)
			}
			return err
		},
		"store.build": func(t *testing.T, ctx context.Context) error {
			dst := filepath.Join(t.TempDir(), "built.store")
			err := store.BuildFileCtx(ctx, dst, store.Source{
				Format: "text",
				Open: func() (io.ReadCloser, error) {
					return io.NopCloser(bytes.NewReader(textData)), nil
				},
			})
			if err == nil {
				st, oerr := store.Open(dst, store.Options{NoMmap: true})
				if oerr != nil {
					t.Errorf("successful BuildFileCtx left an unopenable store: %v", oerr)
					return nil
				}
				defer st.Close()
				if st.CSR().NumEdges() != bigH.NumEdges() {
					t.Errorf("successful BuildFileCtx built %d edges, want %d", st.CSR().NumEdges(), bigH.NumEdges())
				}
			} else if _, serr := os.Stat(dst); serr == nil {
				t.Errorf("failed BuildFileCtx left %s behind", dst)
			}
			return err
		},
		"dist.send":      distDriver,
		"dist.recv":      distDriver,
		"dist.heartbeat": distDriver,
		"dist.reassign":  distDriver,
	}
}

// resilientSites are the fault-tolerant distributed-runtime sites.
// Their robustness contract is inverted relative to the kernels: an
// injected fault there is absorbed by retry-with-backoff, worker-death
// replay from the last committed barrier, or the local fallback, so an
// error arm that fired followed by a clean, validated result is the
// expected outcome — not a swallowed error.
var resilientSites = map[string]bool{
	"dist.send":      true,
	"dist.recv":      true,
	"dist.heartbeat": true,
	"dist.reassign":  true,
}

// distDriver exercises all four distributed-runtime sites through
// dist.DecomposeCtx with in-process workers over real loopback
// connections.  It kills one worker at the first committed barrier so
// every run crosses the death-recovery path (making dist.reassign
// reachable), and enables the local fallback so a pool collapse
// degrades to the in-process engine; a successful decomposition must
// agree with the sequential peeler exactly.
func distDriver(t *testing.T, ctx context.Context) error {
	killed := false
	d, err := dist.DecomposeCtx(ctx, bigH, dist.Options{
		Workers:           3,
		Shards:            4,
		HeartbeatInterval: 15 * time.Millisecond,
		PhaseTimeout:      2 * time.Second,
		MaxRecoveries:     4,
		LocalFallback:     true,
		OnBarrier: func(k, round int32, kill func(worker int)) {
			if !killed {
				killed = true
				kill(1)
			}
		},
	})
	if err == nil {
		want := core.Decompose(bigH)
		if d.MaxK != want.MaxK {
			t.Errorf("successful dist.DecomposeCtx MaxK = %d, want %d", d.MaxK, want.MaxK)
		}
		for v, c := range want.VertexCoreness {
			if d.VertexCoreness[v] != c {
				t.Errorf("successful dist.DecomposeCtx: vertex %d coreness %d, want %d", v, d.VertexCoreness[v], c)
				break
			}
		}
	} else if d != nil {
		t.Errorf("dist.DecomposeCtx returned a result alongside error %v", err)
	}
	return err
}

// shardedDriver exercises both sharded engine sites (worker and
// exchange) through ShardedDecomposeCtx; a successful decomposition
// must agree with the sequential peeler exactly on vertex coreness.
func shardedDriver(t *testing.T, ctx context.Context) error {
	d, err := core.ShardedDecomposeCtx(ctx, bigH, core.ShardedOptions{Shards: 4, Workers: 4})
	if err == nil {
		want := core.Decompose(bigH)
		if d.MaxK != want.MaxK {
			t.Errorf("successful ShardedDecomposeCtx MaxK = %d, want %d", d.MaxK, want.MaxK)
		}
		for v, c := range want.VertexCoreness {
			if d.VertexCoreness[v] != c {
				t.Errorf("successful ShardedDecomposeCtx: vertex %d coreness %d, want %d", v, d.VertexCoreness[v], c)
				break
			}
		}
	} else if d != nil {
		t.Errorf("ShardedDecomposeCtx returned a result alongside error %v", err)
	}
	return err
}

// csrDriver exercises both flat-array kernel sites (overlap-table build
// and bucket-queue peel) through CSRDecomposeCtx; a successful
// decomposition must agree with the map-based sequential peeler exactly
// on vertex coreness.
func csrDriver(t *testing.T, ctx context.Context) error {
	d, err := core.CSRDecomposeCtx(ctx, bigH)
	if err == nil {
		want := core.Decompose(bigH)
		if d.MaxK != want.MaxK {
			t.Errorf("successful CSRDecomposeCtx MaxK = %d, want %d", d.MaxK, want.MaxK)
		}
		for v, c := range want.VertexCoreness {
			if d.VertexCoreness[v] != c {
				t.Errorf("successful CSRDecomposeCtx: vertex %d coreness %d, want %d", v, d.VertexCoreness[v], c)
				break
			}
		}
	} else if d != nil {
		t.Errorf("CSRDecomposeCtx returned a result alongside error %v", err)
	}
	return err
}

var errBoom = errors.New("boom")

// cleanError reports whether err is one of the typed failures the
// robustness contract allows: an injected fault, a context error, a
// budget violation, or a recovered worker panic.
func cleanError(err error) bool {
	var wpe *core.WorkerPanicError
	return errors.Is(err, failpoint.ErrInjected) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, run.ErrBudgetExceeded) ||
		errors.As(err, &wpe) ||
		strings.Contains(err.Error(), "worker panic")
}

// runScenario arms site, runs drive under a panic boundary, disarms,
// and asserts the robustness contract: clean typed errors, injected
// panics either recovered by the library or surfaced verbatim, and no
// leaked goroutines.
func runScenario(t *testing.T, siteName string, arm failpoint.Arm, ctx context.Context, drive func(*testing.T, context.Context) error) {
	t.Helper()
	before := check.GoroutineSnapshot()
	if err := failpoint.Enable(siteName, arm); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disable(siteName)

	var err error
	panicked := func() (x any) {
		defer func() { x = recover() }()
		err = drive(t, ctx)
		return nil
	}()
	fired := failpoint.Fired(siteName)
	failpoint.Disable(siteName)

	if lerr := check.CheckNoLeaks(before, 2*time.Second); lerr != nil {
		t.Error(lerr)
	}

	switch {
	case panicked != nil:
		// Only a panic arm may escape, and only with the marker value —
		// anything else is a genuine crash.
		if arm.Mode != failpoint.ModePanic {
			t.Fatalf("%v arm caused a panic: %v", arm.Mode, panicked)
		}
		if p, ok := panicked.(failpoint.Panic); !ok || p.Site != siteName {
			t.Fatalf("panic arm threw %v, want failpoint.Panic{Site: %q}", panicked, siteName)
		}
	case err != nil:
		if !cleanError(err) {
			t.Fatalf("untyped error: %v", err)
		}
		if fired == 0 && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("error %v without the site firing", err)
		}
		if arm.Err != nil && errors.Is(err, failpoint.ErrInjected) && !errors.Is(err, errBoom) {
			t.Fatalf("injected error %v does not wrap the arm's custom error", err)
		}
	default:
		// Success is fine when the schedule kept the site from firing
		// (or a delay arm merely slowed the call down), but an error arm
		// that fired must not produce a clean return — except at the
		// resilient sites, where recovering from the fault and still
		// succeeding is precisely the contract under test.
		if arm.Mode == failpoint.ModeError && fired > 0 && !resilientSites[siteName] {
			t.Fatalf("error arm fired %d time(s) but the call succeeded", fired)
		}
	}
}

// TestChaosEverySiteEveryArm is the main chaos matrix: every
// registered site crossed with every arm kind, on inputs big enough
// for every periodic checkpoint to be reached.
func TestChaosEverySiteEveryArm(t *testing.T) {
	defer failpoint.DisableAll()
	noDeadline := func() (context.Context, context.CancelFunc) {
		return context.WithCancel(context.Background())
	}
	arms := []struct {
		name string
		arm  failpoint.Arm
		ctx  func() (context.Context, context.CancelFunc)
	}{
		{"error", failpoint.Arm{Mode: failpoint.ModeError}, noDeadline},
		{"error-custom", failpoint.Arm{Mode: failpoint.ModeError, Err: errBoom}, noDeadline},
		{"error-scheduled", failpoint.Arm{Mode: failpoint.ModeError, After: 2, Times: 1}, noDeadline},
		{"panic", failpoint.Arm{Mode: failpoint.ModePanic}, noDeadline},
		{"delay", failpoint.Arm{Mode: failpoint.ModeDelay, Delay: 30 * time.Millisecond}, func() (context.Context, context.CancelFunc) {
			return context.WithTimeout(context.Background(), 5*time.Millisecond)
		}},
	}
	ds := drivers()
	for _, siteName := range failpoint.Sites() {
		drive, ok := ds[siteName]
		if !ok {
			t.Errorf("registered failpoint %q has no chaos driver — add one to drivers()", siteName)
			continue
		}
		for _, a := range arms {
			t.Run(siteName+"/"+a.name, func(t *testing.T) {
				ctx, cancel := a.ctx()
				defer cancel()
				runScenario(t, siteName, a.arm, ctx, drive)
			})
		}
	}
}

// TestChaosDisabledIsClean runs every driver with no site armed: all
// calls must succeed and validate.  This also pins the contract that
// merely importing failpoint-instrumented packages injects nothing.
func TestChaosDisabledIsClean(t *testing.T) {
	for siteName, drive := range drivers() {
		t.Run(siteName, func(t *testing.T) {
			if err := drive(t, context.Background()); err != nil {
				t.Fatalf("no arm enabled, got error: %v", err)
			}
		})
	}
}

// TestChaosCancelledContext runs every driver with an already-expired
// context: each must fail fast with context.Canceled and return no
// half-built result (the drivers assert that themselves).
func TestChaosCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for siteName, drive := range drivers() {
		t.Run(siteName, func(t *testing.T) {
			err := drive(t, ctx)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled, got %v", err)
			}
		})
	}
}

// TestChaosBudget runs every driver under a 1-step budget: each must
// stop with run.ErrBudgetExceeded once it reaches a checkpoint that
// charges steps (every driver's workload is far beyond one step).
func TestChaosBudget(t *testing.T) {
	for siteName, drive := range drivers() {
		t.Run(siteName, func(t *testing.T) {
			ctx, _ := run.WithBudget(context.Background(), run.Budget{MaxSteps: 1})
			err := drive(t, ctx)
			if !errors.Is(err, run.ErrBudgetExceeded) {
				t.Fatalf("want ErrBudgetExceeded, got %v", err)
			}
		})
	}
}

// TestChaosErrorArmOverSweep drives the kernel sites with an error arm
// across the differential sweep instances: small and degenerate inputs
// must either finish with a valid result (the site never fired) or
// fail with the injected error — never crash or wedge.
func TestChaosErrorArmOverSweep(t *testing.T) {
	defer failpoint.DisableAll()
	instances := check.Instances(12, 0xFA117)
	kernels := []struct {
		site  string
		drive func(ctx context.Context, h *hypergraph.Hypergraph) error
	}{
		{"core.peel.step", func(ctx context.Context, h *hypergraph.Hypergraph) error {
			r, err := core.KCoreCtx(ctx, h, 2)
			if err == nil {
				return check.ValidCore(h, 2, r)
			}
			return err
		}},
		{"core.parallel.worker", func(ctx context.Context, h *hypergraph.Hypergraph) error {
			r, err := core.KCoreParallelCtx(ctx, h, 2, 3)
			if err == nil {
				return check.ValidCore(h, 2, r)
			}
			return err
		}},
		{"cover.greedy.pop", func(ctx context.Context, h *hypergraph.Hypergraph) error {
			c, err := cover.GreedyCtx(ctx, h, nil)
			if err == nil {
				return check.ValidCover(h, c, nil, nil)
			}
			return err
		}},
		{"cover.csr.pop", func(ctx context.Context, h *hypergraph.Hypergraph) error {
			c, err := cover.CSRGreedyCtx(ctx, h, nil)
			if err == nil {
				return check.ValidCover(h, c, nil, nil)
			}
			return err
		}},
		{"cover.primaldual.scan", func(ctx context.Context, h *hypergraph.Hypergraph) error {
			pd, err := cover.PrimalDualCtx(ctx, h, nil)
			if err == nil {
				return check.ValidPrimalDual(h, nil, pd)
			}
			return err
		}},
		{"stats.bfs.source", func(ctx context.Context, h *hypergraph.Hypergraph) error {
			_, err := stats.SmallWorldStatsCtx(ctx, h, 2)
			return err
		}},
		{"core.sharded.worker", func(ctx context.Context, h *hypergraph.Hypergraph) error {
			d, err := core.ShardedDecomposeCtx(ctx, h, core.ShardedOptions{Shards: 3, Workers: 2})
			if err == nil {
				return check.ValidDecomposition(h, d)
			}
			return err
		}},
		{"core.sharded.exchange", func(ctx context.Context, h *hypergraph.Hypergraph) error {
			d, err := core.ShardedDecomposeCtx(ctx, h, core.ShardedOptions{Shards: 3, Workers: 2})
			if err == nil {
				return check.ValidDecomposition(h, d)
			}
			return err
		}},
		{"partition.build", func(ctx context.Context, h *hypergraph.Hypergraph) error {
			_, err := partition.BuildCtx(ctx, h, 3)
			return err
		}},
		{"csr.build", func(ctx context.Context, h *hypergraph.Hypergraph) error {
			d, err := core.CSRDecomposeCtx(ctx, h)
			if err == nil {
				return check.ValidDecomposition(h, d)
			}
			return err
		}},
		{"csr.peel", func(ctx context.Context, h *hypergraph.Hypergraph) error {
			d, err := core.CSRDecomposeCtx(ctx, h)
			if err == nil {
				return check.ValidDecomposition(h, d)
			}
			return err
		}},
	}
	for _, k := range kernels {
		t.Run(k.site, func(t *testing.T) {
			before := check.GoroutineSnapshot()
			if err := failpoint.Enable(k.site, failpoint.Arm{Mode: failpoint.ModeError}); err != nil {
				t.Fatal(err)
			}
			defer failpoint.Disable(k.site)
			for i, h := range instances {
				if err := k.drive(context.Background(), h); err != nil && !cleanError(err) {
					t.Fatalf("instance %d: %v", i, err)
				}
			}
			failpoint.Disable(k.site)
			if err := check.CheckNoLeaks(before, 2*time.Second); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestChaosWorkerPanicDetail pins the parallel peeler's panic
// boundary: an injected worker panic must come back as a
// *core.WorkerPanicError carrying the site marker and a stack, with no
// goroutine leaked.
func TestChaosWorkerPanicDetail(t *testing.T) {
	before := check.GoroutineSnapshot()
	if err := failpoint.Enable("core.parallel.worker", failpoint.Arm{Mode: failpoint.ModePanic}); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disable("core.parallel.worker")
	r, err := core.KCoreParallelCtx(context.Background(), bigH, 2, 4)
	failpoint.Disable("core.parallel.worker")
	if r != nil {
		t.Fatalf("got a result alongside the injected panic: %+v", r)
	}
	var wpe *core.WorkerPanicError
	if !errors.As(err, &wpe) {
		t.Fatalf("want *core.WorkerPanicError, got %v", err)
	}
	if p, ok := wpe.Value.(failpoint.Panic); !ok || p.Site != "core.parallel.worker" {
		t.Fatalf("recovered value %v, want the failpoint marker", wpe.Value)
	}
	if len(wpe.Stack) == 0 {
		t.Error("recovered panic carries no stack")
	}
	if err := check.CheckNoLeaks(before, 2*time.Second); err != nil {
		t.Error(err)
	}
}

// TestChaosShardedWorkerPanicDetail pins the sharded engine's panic
// boundary the same way: an injected worker panic must come back as a
// *core.WorkerPanicError carrying the site marker and a stack, with no
// goroutine leaked.
func TestChaosShardedWorkerPanicDetail(t *testing.T) {
	before := check.GoroutineSnapshot()
	if err := failpoint.Enable("core.sharded.worker", failpoint.Arm{Mode: failpoint.ModePanic}); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disable("core.sharded.worker")
	d, err := core.ShardedDecomposeCtx(context.Background(), bigH, core.ShardedOptions{Shards: 4, Workers: 4})
	failpoint.Disable("core.sharded.worker")
	if d != nil {
		t.Fatalf("got a result alongside the injected panic: %+v", d)
	}
	var wpe *core.WorkerPanicError
	if !errors.As(err, &wpe) {
		t.Fatalf("want *core.WorkerPanicError, got %v", err)
	}
	if p, ok := wpe.Value.(failpoint.Panic); !ok || p.Site != "core.sharded.worker" {
		t.Fatalf("recovered value %v, want the failpoint marker", wpe.Value)
	}
	if len(wpe.Stack) == 0 {
		t.Error("recovered panic carries no stack")
	}
	if err := check.CheckNoLeaks(before, 2*time.Second); err != nil {
		t.Error(err)
	}
}

// TestChaosFiredAccounting sanity-checks the determinism story end to
// end: the same workload under the same schedule fires the same number
// of times.  A zero-delay arm observes every checkpoint without
// perturbing the run.
func TestChaosFiredAccounting(t *testing.T) {
	defer failpoint.DisableAll()
	counts := [2]int{}
	for trial := range counts {
		if err := failpoint.Enable("hypergraph.read.line", failpoint.Arm{Mode: failpoint.ModeDelay}); err != nil {
			t.Fatal(err)
		}
		h, err := hypergraph.ReadTextCtx(context.Background(), bytes.NewReader(textData))
		if err != nil || h == nil {
			t.Fatalf("trial %d: unexpected failure: %v", trial, err)
		}
		counts[trial] = failpoint.Fired("hypergraph.read.line")
		failpoint.Disable("hypergraph.read.line")
	}
	if counts[0] == 0 {
		t.Fatal("the fixture never reached a read checkpoint; enlarge it")
	}
	if counts[0] != counts[1] {
		t.Fatalf("fire counts differ across identical runs: %v", counts)
	}
}
