// Package ctxpair is a fixture for the ctxpair analyzer.
package ctxpair

import "context"

// DropCtx has a plain twin but never touches its context.
func DropCtx(ctx context.Context, n int) int { return n } // want "drops its context: the ctx parameter is never used"

// Drop is the compliant plain twin of DropCtx.
func Drop(n int) int { return DropCtx(context.Background(), n) }

// BlankCtx discards its context at the signature.
func BlankCtx(_ context.Context) int { return 1 } // want "drops its context: the ctx parameter is blank"

// Blank is the compliant plain twin of BlankCtx.
func Blank() int { return BlankCtx(context.Background()) }

// OrphanCtx uses its context but ships without a plain twin.
func OrphanCtx(ctx context.Context) error { return ctx.Err() } // want "exported OrphanCtx has no plain Orphan twin"

// TodoCtx itself is compliant.
func TodoCtx(ctx context.Context) error { return ctx.Err() }

// Todo wraps TodoCtx with the wrong context constructor.
func Todo() error {
	return TodoCtx(context.TODO()) // want "plain Todo must pass context.Background\(\) to TodoCtx"
}

// helperCtx is unexported: no twin required, but the context must
// still be used.
func helperCtx(ctx context.Context) int { _ = ctx; return 2 }

// GoodCtx and Good are the convention done right.
func GoodCtx(ctx context.Context, n int) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return n, nil
}

// Good is the compliant plain twin of GoodCtx.
func Good(n int) int {
	v, _ := GoodCtx(context.Background(), n)
	return v
}

var _ = helperCtx
