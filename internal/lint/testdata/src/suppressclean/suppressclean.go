// Package suppressclean carries one violation of every suppressible
// kind, each covered by a well-formed ignore directive: the whole
// package must lint clean, which is how the CLI test proves
// suppressions are honored end to end.
package suppressclean

import "context"

// keeper pins a context for the lifetime of one call tree.
type keeper struct {
	//hyperplexvet:ignore ctxfirst fixture: scoped to a single call, mirroring core.peeler
	ctx context.Context
}

// Check panics on a documented invariant.
func Check(k keeper) {
	if k.ctx == nil {
		//hyperplexvet:ignore nopanic fixture: a nil context here is a constructor bug
		panic("suppressclean: nil context")
	}
}
