// Package nopanic is a fixture for the nopanic analyzer.
package nopanic

import "context"

// Explode panics where a typed error belongs.
func Explode(n int) int {
	if n < 0 {
		panic("nopanic: negative n") // want "naked panic in library code"
	}
	return n
}

// MustExplode is a Must helper: panicking is its documented purpose.
func MustExplode(n int) int {
	if n < 0 {
		panic("nopanic: negative n")
	}
	return n
}

// rethrow is a recovery helper re-raising a foreign panic.
func rethrow() {
	if x := recover(); x != nil {
		panic(x)
	}
}

// WrapCtx is a compliant Ctx kernel.
func WrapCtx(ctx context.Context) error { return ctx.Err() }

// Wrap is the plain twin: panicking on the impossible error of a
// background context is the blessed convention.
func Wrap() {
	if err := WrapCtx(context.Background()); err != nil {
		panic(err)
	}
}

var _ = rethrow
