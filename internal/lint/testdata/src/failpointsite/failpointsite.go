// Package failpointsite is a fixture for the failpointsite analyzer.
package failpointsite

import "hyperplex/internal/failpoint"

// fpGood is the convention: one package-level var, constant name.
var fpGood = failpoint.Register("fixture.good")

// fpDyn registers under a dynamic name the chaos suite cannot see.
var fpDyn = failpoint.Register(siteName()) // want "failpoint site name must be a constant string"

func siteName() string { return "fixture.dyn" }

func work() error {
	site := failpoint.Register("fixture.local") // want "failpoint.Register must initialize a dedicated package-level var"
	_ = site
	if err := failpoint.Inject(fpGood); err != nil {
		return err
	}
	if err := failpoint.Inject(fpDyn); err != nil {
		return err
	}
	return failpoint.Inject("fixture.raw") // want "failpoint.Inject must be called with a site var registered at package level"
}

var _ = work
