// Package failpointsite is a fixture for the failpointsite analyzer.
package failpointsite

import "hyperplex/internal/failpoint"

// fpGood is the convention: one package-level var, constant name.
var fpGood = failpoint.Register("fixture.good")

// Grouped site vars are still the convention — each spec declares one
// dedicated var under a constant name, as the dist wire protocol does
// for its send/recv sites.
var (
	fpGroupA = failpoint.Register("fixture.group.a")
	fpGroupB = failpoint.Register("fixture.group.b")
)

// A multi-name spec shares one declaration between sites, so neither
// var is dedicated; both calls are flagged.
var fpPairA, fpPairB = failpoint.Register("fixture.pair.a"), failpoint.Register("fixture.pair.b") // want "dedicated package-level var" "dedicated package-level var"

// fpDyn registers under a dynamic name the chaos suite cannot see.
var fpDyn = failpoint.Register(siteName()) // want "failpoint site name must be a constant string"

func siteName() string { return "fixture.dyn" }

func work() error {
	site := failpoint.Register("fixture.local") // want "failpoint.Register must initialize a dedicated package-level var"
	_ = site
	if err := failpoint.Inject(fpGood); err != nil {
		return err
	}
	if err := failpoint.Inject(fpGroupA); err != nil {
		return err
	}
	if err := failpoint.Inject(fpGroupB); err != nil {
		return err
	}
	if err := failpoint.Inject(fpPairA); err != nil { // want "site var registered at package level"
		return err
	}
	if err := failpoint.Inject(fpDyn); err != nil {
		return err
	}
	return failpoint.Inject("fixture.raw") // want "failpoint.Inject must be called with a site var registered at package level"
}

var _ = work
