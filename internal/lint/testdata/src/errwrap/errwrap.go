// Package errwrap is a fixture for the errwrap analyzer.
package errwrap

import (
	"errors"
	"fmt"
	"strings"
)

// ErrSentinel is a sentinel error callers should match with errors.Is.
var ErrSentinel = errors.New("errwrap: sentinel")

// Flatten breaks the error chain with %v.
func Flatten(err error) error {
	return fmt.Errorf("loading: %v", err) // want "error value formatted with %v flattens the chain"
}

// FlattenIndexed breaks the chain through an explicit operand index.
func FlattenIndexed(err error) error {
	return fmt.Errorf("attempt %d: %[2]s", 3, err) // want "error value formatted with %s flattens the chain"
}

// WrapOK keeps the chain intact.
func WrapOK(err error) error {
	return fmt.Errorf("loading: %w", err)
}

// Stringly matches errors by their rendered text.
func Stringly(err error) bool {
	if err.Error() == "errwrap: sentinel" { // want "comparing Error\(\) strings"
		return true
	}
	return strings.Contains(err.Error(), "sentinel") // want "substring-matching Error\(\) output"
}

// TypedOK matches the sentinel properly.
func TypedOK(err error) bool {
	return errors.Is(err, ErrSentinel)
}
