// Package snapshotphase is a fixture for the snapshotphase analyzer.
package snapshotphase

// peel is one shard's mutable state; the outbox fields are the only
// state other shards may touch, and only in a drain phase.
type peel struct {
	deg []int32
	//hyperplexvet:outbox
	out [][]int32
	//hyperplexvet:outbox
	outE [][]int32
}

type engine struct {
	peels []*peel
}

// sendDeltas is a well-formed owned phase: it writes only its own
// peel, staging cross-shard hand-offs in its own outboxes.
//
//hyperplexvet:phase owned
func (e *engine) sendDeltas(s, _ int) error {
	p := e.peels[s]
	for t := range p.out {
		p.out[t] = append(p.out[t], int32(s))
	}
	return nil
}

// peek reaches into shard 0's live state from an owned phase.
//
//hyperplexvet:phase owned
func (e *engine) peek(s, _ int) error {
	p := e.peels[s]
	p.deg[0] = e.peels[0].deg[0] // want "owned phase accesses another shard's peel"
	return nil
}

// drainDeltas is a well-formed drain phase: it reads foreign outboxes,
// applies them to its own state, and resets them to length zero.
//
//hyperplexvet:phase drain
func (e *engine) drainDeltas(s, _ int) error {
	p := e.peels[s]
	for src := range e.peels {
		buf := e.peels[src].out[s]
		for _, v := range buf {
			p.deg[v]++
		}
		e.peels[src].out[s] = buf[:0]
	}
	return nil
}

// drainAndSend stages new deltas while still draining: send and drain
// must sit on opposite sides of a barrier.
//
//hyperplexvet:phase drain
func (e *engine) drainAndSend(s, _ int) error { // want "drains foreign outboxes and appends to its own on one execution path"
	p := e.peels[s]
	for src := range e.peels {
		for _, v := range e.peels[src].out[s] {
			p.outE[v] = append(p.outE[v], v)
		}
	}
	return nil
}

// badRead drains non-outbox state of another shard.
//
//hyperplexvet:phase drain
func (e *engine) badRead(s, _ int) error {
	n := 0
	for src := range e.peels {
		n += len(e.peels[src].deg) // want "reads another shard's non-outbox state"
	}
	if n < 0 {
		return nil
	}
	return nil
}

// badWrite pushes into a foreign outbox instead of resetting it.
//
//hyperplexvet:phase drain
func (e *engine) badWrite(s, _ int) error {
	for src := range e.peels {
		if src == s {
			continue
		}
		e.peels[src].out[s] = append(e.peels[src].out[s], 1) // want "may only reset a foreign outbox to length zero"
	}
	return nil
}

// alias smuggles a whole foreign peel into a local, which would let
// every later access bypass the phase discipline.
//
//hyperplexvet:phase drain
func (e *engine) alias(s, _ int) error {
	q := e.peels[(s+1)%len(e.peels)] // want "may only select outbox fields of another shard's peel"
	_ = q
	return nil
}
