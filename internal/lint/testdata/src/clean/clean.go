// Package clean is a fully compliant fixture used by the CLI tests.
package clean

import (
	"context"
	"fmt"
)

// AnswerCtx honors cancellation before answering.
func AnswerCtx(ctx context.Context) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, fmt.Errorf("clean: %w", err)
	}
	return 42, nil
}

// Answer is the plain twin of AnswerCtx.
func Answer() int {
	v, _ := AnswerCtx(context.Background())
	return v
}
