// Package ctxfirst is a fixture for the ctxfirst analyzer.
package ctxfirst

import "context"

// Late takes its context in the wrong position.
func Late(n int, ctx context.Context) error { // want "context.Context must be the first parameter"
	_ = n
	return ctx.Err()
}

// Renamed names its context parameter unconventionally.
func Renamed(c context.Context) error { // want "context parameter should be named ctx, not c"
	return c.Err()
}

// holder stores a context across calls.
type holder struct {
	ctx context.Context // want "context.Context stored in a struct field"
	n   int
}

// Callback types are signatures too.
type Callback func(n int, ctx context.Context) // want "context.Context must be the first parameter"

// Ok is compliant, as is a blank first context.
func Ok(ctx context.Context, n int) error {
	_ = n
	return ctx.Err()
}

// Iface methods are signatures as well.
type Iface interface {
	Do(ctx context.Context) error
}

var _ = holder{}
