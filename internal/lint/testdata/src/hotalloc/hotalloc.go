// Package hotalloc is a fixture for the hotalloc analyzer.
package hotalloc

type kern struct {
	buf []int32
	out []int32
}

// newKern carves buf from a single arena allocation — the idiom that
// makes buf arena-owned for the whole package.
func newKern(n int) *kern {
	arena := make([]int32, 2*n)
	carve := func(sz int) []int32 {
		s := arena[:sz:sz]
		arena = arena[sz:]
		return s
	}
	k := &kern{}
	k.buf = carve(n)[:0]
	return k
}

// hot is a whole-function hotpath region: every allocation form is
// banned, and append is only allowed into arena-owned storage.
//
//hyperplexvet:hotpath
func (k *kern) hot(xs []int32) {
	k.out = append(k.out, xs...) // want "append to non-arena slice"
	tmp := make([]int32, 4)      // want "make allocates in a hotpath region"
	_ = tmp
	m := map[int]int{} // want "composite literal allocates in a hotpath region"
	_ = m
	f := func() {} // want "closure literal allocates in a hotpath region"
	f()
	p := &kern{} // want "composite literal allocates in a hotpath region"
	_ = p
	k.buf = append(k.buf, 1) // arena-owned: recycles carved storage
}

// mixed has a statement-level region: only the marked loop is policed,
// the setup above it allocates freely.
func mixed(n int) []int32 {
	out := make([]int32, 0, n)
	k := newKern(n)
	//hyperplexvet:hotpath
	for i := 0; i < n; i++ {
		k.buf = append(k.buf, int32(i))
		out = append(out, int32(i)) // want "append to non-arena slice"
	}
	return out
}

var _ = mixed
var _ = (*kern).hot
