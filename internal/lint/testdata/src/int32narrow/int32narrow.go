// Package int32narrow is a fixture for the int32narrow analyzer.
package int32narrow

import "hyperplex/internal/csr"

type table struct{}

// NumRows is a size accessor by naming convention.
func (table) NumRows() int { return 0 }

// width is not a size accessor: the name carries no size meaning.
func (table) width() int { return 0 }

func narrowings(xs []int, t table) []int32 {
	a := int32(len(xs))         // want "unchecked int32 narrowing of size-derived value"
	b := int32(uint32(cap(xs))) // want "unchecked uint32 narrowing of size-derived value"
	c := int32(t.NumRows())     // want "unchecked int32 narrowing of size-derived value"
	d := int32(2*len(xs) + 1)   // want "unchecked int32 narrowing of size-derived value"
	e := csr.MustInt32(len(xs)) // checked: the sanctioned helper
	f := int32(t.width())       // not size-derived
	g := int32(xs[0])           // not size-derived: element value, not a count
	const fixed = 1 << 10
	h := int32(fixed) // constant-folded, checked at compile time
	// Narrowing a local that held a size is beyond the syntactic
	// check's reach; the convention is to narrow at the len site, which
	// the repo audit enforces.
	wide := int64(len(xs))
	i := int32(wide)
	return []int32{a, b, c, d, e, f, g, h, i}
}

var _ = narrowings
