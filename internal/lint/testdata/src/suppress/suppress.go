// Package suppress is a fixture for the ignore-directive machinery,
// exercised through the nopanic analyzer.
package suppress

// Invariant documents its panic with a standalone directive.
func Invariant(n int) int {
	if n < 0 {
		//hyperplexvet:ignore nopanic negative n is a caller bug; the precondition is documented
		panic("suppress: negative n")
	}
	return n
}

// Trailing documents its panic with a trailing directive.
func Trailing(n int) int {
	if n > 1<<30 {
		panic("suppress: n too large") //hyperplexvet:ignore nopanic documented size cap
	}
	return n
}

// Unreasoned shows that a directive without a reason suppresses
// nothing and is itself reported.
func Unreasoned(n int) int {
	if n < 0 {
		//hyperplexvet:ignore nopanic
		panic("suppress: no reason given") // want "naked panic in library code"
	}
	return n
}

// Unknown shows that directives naming unknown analyzers are reported.
func Unknown(n int) int {
	if n < 0 {
		//hyperplexvet:ignore nosuchlint because reasons
		panic("suppress: unknown analyzer") // want "naked panic in library code"
	}
	return n
}
