// Package budgettick is a fixture for the budgettick analyzer.
package budgettick

import (
	"context"

	"hyperplex/internal/run"
)

// SumCtx checkpoints every 64 iterations through an interval guard.
// The guard if-statement contains a checkpoint, so the CFG collapses
// it into the block as one atomic node; every iteration path passes
// through it and the loop is accepted.
func SumCtx(ctx context.Context, xs []int) (int, error) {
	m := run.MeterFrom(ctx)
	sum, ops := 0, 0
	for i := 0; i < len(xs); i++ {
		ops++
		if ops >= 64 {
			ops = 0
			if err := run.Tick(ctx, m, 64); err != nil {
				return 0, err
			}
		}
		sum += mix(xs[i])
	}
	return sum, nil
}

// mix is deliberately non-trivial (it loops), so loops calling it do
// not qualify as exempt simple scans; its own loop is a call-free
// bounded scan and is exempt.
func mix(x int) int {
	h := x
	for h > 0xff {
		h = (h >> 8) ^ (h & 0xff)
	}
	return h
}

// RetryCtx spins until success with no way for a cancelled context or
// an exhausted budget to interrupt: the unbounded-retry bug class.
func RetryCtx(ctx context.Context) error {
	for { // want "can iterate without passing a run.Tick/failpoint checkpoint"
		if tryOnce() {
			return nil
		}
	}
}

func tryOnce() bool { return true }

// PollCtx is the same loop made legal by checking ctx on every
// iteration.
func PollCtx(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if tryOnce() {
			return nil
		}
	}
}

// SkipCtx ticks on the long path, but the continue bypasses the
// checkpoint: the CFG finds the unchecked iteration path.
func SkipCtx(ctx context.Context, xs []int) error {
	m := run.MeterFrom(ctx)
	for _, x := range xs { // want "can iterate without passing a run.Tick/failpoint checkpoint"
		if x < 0 {
			continue
		}
		if err := run.Tick(ctx, m, 1); err != nil {
			return err
		}
		_ = mix(x)
	}
	return nil
}

// peeler mirrors the kernel charge-accumulator idiom: charge counts
// work and fires the checkpoint func field, whose every assigned value
// checkpoints, so a loop that charges each iteration passes.
type peeler struct {
	checkpoint func(n int)
	ctx        context.Context
	meter      *run.Meter
	ops        int
}

func (p *peeler) fire(n int) {
	p.ops = 0
	if err := run.Tick(p.ctx, p.meter, int64(n)); err != nil {
		panic(err)
	}
}

func (p *peeler) charge(n int) {
	p.ops += n
	if p.ops >= 64 {
		p.checkpoint(p.ops)
	}
}

// DrainCtx charges every pop; the accumulator idiom makes charge a
// checkpointer even though the Tick is two hops away.
func DrainCtx(ctx context.Context, xs []int) {
	p := &peeler{ctx: ctx, meter: run.MeterFrom(ctx)}
	p.checkpoint = p.fire
	for _, x := range xs {
		p.charge(1)
		_ = mix(x)
	}
}

// ScanOuterCtx ticks once per outer round; the inner scan is an exempt
// bounded pass and its labeled break leaves both loops.
func ScanOuterCtx(ctx context.Context, xs []int) error {
	m := run.MeterFrom(ctx)
outer:
	for {
		for _, x := range xs {
			if x == 0 {
				break outer
			}
		}
		if err := run.Tick(ctx, m, int64(len(xs))); err != nil {
			return err
		}
	}
	return nil
}

// WalkCtx hides the retry loop inside a function literal; literals run
// under the kernel's budget and are checked with their own CFG.
func WalkCtx(ctx context.Context, xs []int) {
	each := func(f func(int) bool) {
		for { // want "can iterate without passing a run.Tick/failpoint checkpoint"
			if f(len(xs)) {
				return
			}
		}
	}
	each(func(n int) bool { return n == 0 })
}

// spin is not reachable from any Ctx kernel, so its unchecked loop is
// outside budgettick's scope.
func spin() {
	for {
		if tryOnce() {
			return
		}
	}
}
