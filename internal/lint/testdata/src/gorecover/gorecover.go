// Package gorecover is a fixture for the gorecover analyzer.
package gorecover

import "sync"

// Bare launches goroutines that violate the recovery contract.
func Bare() {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // want "goroutine has no deferred recover"
		defer wg.Done()
	}()
	go worker(&wg) // want "go must launch a func literal"
	wg.Wait()
}

func worker(wg *sync.WaitGroup) { defer wg.Done() }

// Nested recovery belongs to the inner goroutine, not the outer one.
func Nested() {
	done := make(chan struct{})
	go func() { // want "goroutine has no deferred recover"
		defer close(done)
		inner := func() {
			defer func() { _ = recover() }()
		}
		inner()
	}()
	<-done
}

// Good recovers at the boundary with a func literal.
func Good() {
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() {
			if x := recover(); x != nil {
				_ = x
			}
		}()
	}()
	<-done
}

// Helper recovers through a named recover helper.
func Helper() {
	done := make(chan struct{})
	go func() {
		defer close(done)
		var err error
		defer recoverInto(&err)
	}()
	<-done
}

func recoverInto(err *error) {
	_ = recover()
	_ = err
}
