// Package broken does not type-check; the CLI must exit 2 on it.
package broken

// Boom returns the wrong type.
func Boom() int { return "not an int" }
