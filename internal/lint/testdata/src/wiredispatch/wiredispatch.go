// Package wiredispatch is a fixture for the wiredispatch analyzer.
package wiredispatch

import "errors"

// Wire frame types of the fixture protocol.
//
//hyperplexvet:wiretypes
const (
	mPing byte = iota + 1
	mPong
	mData
	mAck
	mOrphan // want "has no dispatch site" "is never sent"
	mTypeMax
)

// dec is the bounds-checked payload reader decoders must use.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) u8() byte {
	if d.off >= len(d.b) {
		d.err = errors.New("short payload")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) fin() error { return d.err }

// writeFrame is the send root: every frame on the wire leaves through
// it.
//
//hyperplexvet:wiresend
func writeFrame(out *[]byte, typ byte, payload []byte) {
	*out = append(*out, typ, byte(len(payload)))
	*out = append(*out, payload...)
}

// send forwards its frame type to writeFrame; the frame-parameter
// fixpoint marks its typ as a send position too.
func send(out *[]byte, typ byte, payload []byte) {
	writeFrame(out, typ, payload)
}

// expect is the receive root: passing a frame type as its first byte
// parameter dispatches it.
//
//hyperplexvet:wirerecv
func expect(want, got byte) error {
	if got != want {
		return errors.New("unexpected frame")
	}
	return nil
}

// handle dispatches one frame; the default clause is the contract for
// unknown frames arriving from a newer or corrupt peer.
func handle(typ byte, payload []byte) error {
	switch typ {
	case mPing:
		return nil
	case mPong:
		return nil
	case mData:
		var m msgData
		return m.decode(payload)
	default:
		return errors.New("unknown frame")
	}
}

// handleLegacy treats unknown frames as impossible.
func handleLegacy(typ byte) {
	switch typ { // want "must have a default clause"
	case mPing:
	case mPong:
	}
}

// hello exercises the send path of every live frame type, directly and
// through the forwarding chain.
func hello(out *[]byte) error {
	send(out, mPing, nil)
	send(out, mPong, nil)
	writeFrame(out, mData, nil)
	send(out, mAck, nil)
	raw := byte(0)
	return expect(mAck, raw)
}

// msgData's codecs are paired and its decoder reads through dec.
type msgData struct {
	a, b byte
}

func (m *msgData) encode(out *[]byte) {
	*out = append(*out, m.a, m.b)
}

func (m *msgData) decode(payload []byte) error {
	d := dec{b: payload}
	m.a = d.u8()
	m.b = d.u8()
	return d.fin()
}

// msgRaw trusts the wire length instead of the dec reader.
type msgRaw struct {
	a byte
}

func (m *msgRaw) encode(out *[]byte) {
	*out = append(*out, m.a)
}

func (m *msgRaw) decode(payload []byte) error { // want "must go through the bounds-checked dec reader"
	m.a = payload[0]
	return nil
}

// msgHalf can be written but never read back.
type msgHalf struct{}

func (m *msgHalf) encode(out *[]byte) { // want "has an encoder but no decoder"
	_ = m
	_ = out
}

var (
	_ = handle
	_ = handleLegacy
	_ = hello
)
