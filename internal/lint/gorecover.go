package lint

import (
	"go/ast"
	"strings"
)

// GoRecover enforces the goroutine-boundary contract: every goroutine
// launched in library code defers panic recovery (directly, or through
// a recover helper such as cli.RecoverPanic), so a worker panic
// surfaces as a typed error like *core.WorkerPanicError instead of
// crashing the process from a goroutine the caller never sees.  The
// goroutine body must be a func literal — a bare `go namedFunc()`
// hides whether the callee recovers.
var GoRecover = &Analyzer{
	Name: "gorecover",
	Doc:  "library goroutines must defer a recover at the goroutine boundary",
	Run:  runGoRecover,
}

func runGoRecover(pass *Pass) {
	if !pass.Pkg.IsLibrary() {
		return
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			fl, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
			if !ok {
				pass.Reportf(g.Pos(), "go must launch a func literal that defers panic recovery, not a bare function call")
				return true
			}
			if !hasDeferredRecover(pass.Pkg, fl.Body) {
				pass.Reportf(g.Pos(), "goroutine has no deferred recover; recover at the boundary and surface the panic as a typed error")
			}
			return true
		})
	}
}

// hasDeferredRecover reports whether the statement block defers panic
// recovery at its own goroutine level (nested func literals belong to
// other goroutines or calls and do not count).
func hasDeferredRecover(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			if deferRecovers(pkg, n) {
				found = true
			}
			return false
		}
		return true
	})
	return found
}

// deferRecovers reports whether a defer statement performs panic
// recovery: it defers a func literal containing a recover() call, or
// defers a function whose name marks it as a recover helper.
func deferRecovers(pkg *Package, d *ast.DeferStmt) bool {
	switch fun := ast.Unparen(d.Call.Fun).(type) {
	case *ast.FuncLit:
		return callsRecover(pkg, fun.Body)
	case *ast.Ident:
		return nameRecovers(fun.Name)
	case *ast.SelectorExpr:
		return nameRecovers(fun.Sel.Name)
	}
	return false
}

// callsRecover reports whether the block calls the recover builtin at
// its own function level.
func callsRecover(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isBuiltinCall(pkg, call, "recover") {
			found = true
		}
		return !found
	})
	return found
}

// nameRecovers reports whether a function name declares it a recover
// helper (RecoverPanic, recoverPeelAbort, ...).
func nameRecovers(name string) bool {
	return strings.Contains(strings.ToLower(name), "recover")
}
