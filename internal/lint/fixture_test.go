package lint

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRE extracts the quoted expectations of a `// want "..." "..."`
// comment.
var wantRE = regexp.MustCompile(`// want ((?:"[^"]*"\s*)+)`)

var quotedRE = regexp.MustCompile(`"([^"]*)"`)

// expectation is one expected diagnostic: a regexp anchored to a line.
type expectation struct {
	line int
	re   *regexp.Regexp
	hit  bool
}

// runFixture loads testdata/src/<name>, runs the given analyzers, and
// compares the diagnostics against the fixture's `// want` comments.
// extra adds expectations that cannot be written as want comments
// because they anchor to a directive comment itself: each key must
// equal a whole trimmed source line, and its value is the expected
// message regexp for that line.
func runFixture(t *testing.T, name string, analyzers []*Analyzer, extra map[string]string) {
	t.Helper()
	prog, err := Load(".", "./"+filepath.ToSlash(filepath.Join("testdata", "src", name)))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if len(prog.Pkgs) != 1 {
		t.Fatalf("fixture %s loaded %d packages, want 1", name, len(prog.Pkgs))
	}
	pkg := prog.Pkgs[0]

	var wants []*expectation
	for _, src := range pkg.Sources {
		for i, line := range strings.Split(string(src), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
					wants = append(wants, &expectation{line: i + 1, re: regexp.MustCompile(q[1])})
				}
			}
			if msg, ok := extra[strings.TrimSpace(line)]; ok {
				wants = append(wants, &expectation{line: i + 1, re: regexp.MustCompile(msg)})
			}
		}
	}
	if len(wants) == 0 && extra != nil {
		t.Fatalf("fixture %s: extra expectations matched no source line", name)
	}

	diags := RunSuite(prog, analyzers)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s: line %d: expected diagnostic matching %q, got none", name, w.line, w.re)
		}
	}
}

func TestCtxPairFixture(t *testing.T) {
	runFixture(t, "ctxpair", []*Analyzer{CtxPair}, nil)
}

func TestCtxFirstFixture(t *testing.T) {
	runFixture(t, "ctxfirst", []*Analyzer{CtxFirst}, nil)
}

func TestFailpointSiteFixture(t *testing.T) {
	runFixture(t, "failpointsite", []*Analyzer{FailpointSite}, nil)
}

func TestGoRecoverFixture(t *testing.T) {
	runFixture(t, "gorecover", []*Analyzer{GoRecover}, nil)
}

func TestNoPanicFixture(t *testing.T) {
	runFixture(t, "nopanic", []*Analyzer{NoPanic}, nil)
}

func TestErrWrapFixture(t *testing.T) {
	runFixture(t, "errwrap", []*Analyzer{ErrWrap}, nil)
}

func TestBudgetTickFixture(t *testing.T) {
	runFixture(t, "budgettick", []*Analyzer{BudgetTick}, nil)
}

func TestInt32NarrowFixture(t *testing.T) {
	runFixture(t, "int32narrow", []*Analyzer{Int32Narrow}, nil)
}

func TestHotAllocFixture(t *testing.T) {
	runFixture(t, "hotalloc", []*Analyzer{HotAlloc}, nil)
}

func TestWireDispatchFixture(t *testing.T) {
	runFixture(t, "wiredispatch", []*Analyzer{WireDispatch}, nil)
}

func TestSnapshotPhaseFixture(t *testing.T) {
	runFixture(t, "snapshotphase", []*Analyzer{SnapshotPhase}, nil)
}

// TestSuppressFixture checks both suppression outcomes: well-formed
// directives silence the analyzer (Invariant and Trailing report
// nothing), while a directive missing its reason or naming an unknown
// analyzer suppresses nothing — the panic is still reported (want
// comments in the fixture) and the directive itself is diagnosed
// (extra expectations here, keyed by the exact directive line).
func TestSuppressFixture(t *testing.T) {
	runFixture(t, "suppress", []*Analyzer{NoPanic}, map[string]string{
		"//hyperplexvet:ignore nopanic":                    "malformed ignore directive",
		"//hyperplexvet:ignore nosuchlint because reasons": `unknown analyzer "nosuchlint"`,
	})
}

// TestSuppressCleanFixture proves a fully suppressed package reports
// nothing at all under the complete suite.
func TestSuppressCleanFixture(t *testing.T) {
	runFixture(t, "suppressclean", All(), nil)
}

// TestBrokenFixtureFailsToLoad pins the load-error path the CLI's
// exit-2 behavior relies on.
func TestBrokenFixtureFailsToLoad(t *testing.T) {
	_, err := Load(".", "./testdata/src/broken")
	if err == nil {
		t.Fatal("loading the broken fixture succeeded; want a type error")
	}
	if !strings.Contains(err.Error(), "broken") {
		t.Errorf("load error does not name the package: %v", err)
	}
}
