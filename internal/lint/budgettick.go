package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// BudgetTick enforces the checkpoint discipline of the Ctx kernels:
// inside a ...Ctx function, and everything it reaches through
// same-package calls, no loop may iterate indefinitely without passing
// a budget/cancellation checkpoint — a run.Tick, failpoint.Inject,
// ctx.Err()/ctx.Done(), a call to a function that checkpoints, or a
// call through a func field whose every assigned value checkpoints
// (the charge-accumulator idiom).  This is the unbounded-retry class
// of bug: a backoff loop, a drain loop or a cascade that a cancelled
// context or an exhausted run.Budget cannot interrupt.
//
// Bounded scan loops are exempt: a loop with a range clause or a
// condition whose body has no nested loops, no channel operations and
// no calls beyond builtins, conversions and trivial accessors finishes
// one pass over its data and is charged en bloc by the surrounding
// checkpoints.  Loops with no condition (for {}) are never exempt.
var BudgetTick = &Analyzer{
	Name: "budgettick",
	Doc:  "loops reachable from Ctx kernels must pass a run.Tick/failpoint checkpoint on every iteration path",
	Run:  runBudgetTick,
}

func runBudgetTick(pass *Pass) {
	if !pass.Pkg.IsLibrary() {
		return
	}
	facts := pass.Facts()

	// The Ctx closure: every function reachable from a ...Ctx function
	// through same-package calls (function literals inside a reachable
	// function run as part of it and are walked for edges too).
	inClosure := make(map[types.Object]bool)
	var visit func(obj types.Object)
	visit = func(obj types.Object) {
		if obj == nil || inClosure[obj] {
			return
		}
		fd := facts.FuncDecls[obj]
		if fd == nil || fd.Body == nil {
			return
		}
		inClosure[obj] = true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := calleeOf(pass.Pkg, call); callee != nil && callee.Pkg() == pass.Pkg.Types {
				if _, isFunc := callee.(*types.Func); isFunc {
					visit(callee)
				}
			}
			return true
		})
	}
	for obj, fd := range facts.FuncDecls {
		if strings.HasSuffix(fd.Name.Name, "Ctx") {
			visit(obj)
		}
	}

	for obj := range inClosure {
		fd := facts.FuncDecls[obj]
		checkBody(pass, facts, fd.Body)
		// Nested function literals get their own CFG: their loops run
		// under the same kernel budget.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				checkBody(pass, facts, lit.Body)
			}
			return true
		})
	}
}

// checkBody builds the CFG of one function body (FuncLits excluded —
// they are checked separately) and reports every loop that can cycle
// without a checkpoint.  A checkpointing statement is collapsed into
// its block as one atomic node — that is what accepts the interval
// idiom `if ops >= N { tick }` — but never when it contains a loop:
// collapsing a loop would hide it from the analysis entirely.
func checkBody(pass *Pass, facts *PkgFacts, body *ast.BlockStmt) {
	isCheckpoint := func(s ast.Stmt) bool { return isCheckpointStmt(pass, s) }
	atomic := func(s ast.Stmt) bool {
		switch s.(type) {
		case *ast.BlockStmt, *ast.LabeledStmt:
			return false // structure, not a checkpoint unit
		}
		return !containsLoop(s) && isCheckpoint(s)
	}
	g := BuildCFG(body, atomic)
	blocked := func(b *Block) bool {
		for _, s := range b.Stmts {
			if isCheckpoint(s) {
				return true
			}
		}
		return false
	}
	for _, li := range g.Loops {
		if exemptScanLoop(pass, li.Stmt) {
			continue
		}
		if g.Reaches(li.Head, li.Latch, blocked) {
			pass.Reportf(li.Stmt.Pos(), "loop in a Ctx kernel can iterate without passing a run.Tick/failpoint checkpoint; charge the work or check ctx on every path")
		}
	}
}

// isCheckpointStmt reports whether the statement's subtree (function
// literals excluded) performs a budget/cancellation checkpoint.
// Checkpointer facts resolve across module package boundaries: a call
// into another internal package's ticking helper checkpoints too.
func isCheckpointStmt(pass *Pass, s ast.Stmt) bool {
	pkg := pass.Pkg
	hit := false
	ast.Inspect(s, func(n ast.Node) bool {
		if hit {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isCheckpointPrimitive(pkg, call) {
			hit = true
			return false
		}
		if callee := calleeOf(pkg, call); callee != nil && callee.Pkg() != nil {
			if f := pass.FactsFor(callee.Pkg()); f != nil {
				if f.Checkpointers[callee] || f.CheckpointFields[callee] {
					hit = true
					return false
				}
			}
		}
		return true
	})
	return hit
}

// containsLoop reports whether the statement's subtree (function
// literals excluded) holds a for or range loop.
func containsLoop(s ast.Stmt) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
		}
		return !found
	})
	return found
}

// boundedStdlib names the stdlib packages whose functions do a
// bounded, non-blocking amount of work per call — pure computation
// over their arguments.  An exempt scan loop may call into them.  IO
// and synchronization packages (io, bufio, os, net, time, sync,
// context) are deliberately absent: a scan that reads, sleeps or
// blocks per iteration must be charged.
var boundedStdlib = map[string]bool{
	"bytes":           true,
	"cmp":             true,
	"encoding/binary": true,
	"errors":          true,
	"fmt":             true,
	"maps":            true,
	"math":            true,
	"math/bits":       true,
	"slices":          true,
	"sort":            true,
	"strconv":         true,
	"strings":         true,
	"sync/atomic":     true,
	"unicode":         true,
	"unicode/utf8":    true,
}

// exemptScanLoop reports whether the loop is a bounded simple scan: a
// range loop (over anything but a channel) or a condition-guarded for
// loop whose body is straight-line — no nested loops, selects, channel
// operations, gotos or function literals — and whose calls are all
// builtins, conversions, bounded stdlib helpers, or trivial accessors
// of a module package (resolved through the program-wide facts).  Such
// a loop finishes one pass over its data; the surrounding checkpoints
// bound it.
func exemptScanLoop(pass *Pass, loop ast.Stmt) bool {
	pkg := pass.Pkg
	var body *ast.BlockStmt
	switch loop := loop.(type) {
	case *ast.ForStmt:
		if loop.Cond == nil {
			return false
		}
		body = loop.Body
	case *ast.RangeStmt:
		if tv, ok := pkg.Info.Types[loop.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				return false
			}
		}
		body = loop.Body
	default:
		return false
	}
	simple := true
	ast.Inspect(body, func(n ast.Node) bool {
		if !simple {
			return false
		}
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SelectStmt, *ast.GoStmt,
			*ast.DeferStmt, *ast.SendStmt, *ast.FuncLit:
			simple = false
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				simple = false
			}
		case *ast.BranchStmt:
			if n.Tok.String() == "goto" {
				simple = false
			}
		case *ast.CallExpr:
			if isConversion(pkg, n) {
				return true
			}
			callee := calleeOf(pkg, n)
			if callee == nil { // builtin
				return true
			}
			if !boundedCallee(pass, callee) {
				simple = false
			}
		}
		return simple
	})
	return simple
}

// boundedCallee reports whether a call to callee does bounded work: a
// trivial accessor of a module package, or anything from the bounded
// stdlib set.
func boundedCallee(pass *Pass, callee types.Object) bool {
	tp := callee.Pkg()
	if tp == nil {
		return false
	}
	if f := pass.FactsFor(tp); f != nil {
		return f.Trivial[callee]
	}
	return boundedStdlib[tp.Path()]
}
