package lint

import "testing"

// TestSelfLint runs the full analyzer suite over the whole repository
// and requires zero diagnostics: every kernel contract the analyzers
// encode is machine-checked on each test run, and any new violation —
// or any ignore directive that loses its reason — fails the build.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("self-lint type-checks the whole module; skipped in -short mode")
	}
	prog, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	if len(prog.Pkgs) < 10 {
		t.Fatalf("loaded only %d packages; the ./... walk is broken", len(prog.Pkgs))
	}
	diags := RunSuite(prog, All())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Logf("%d diagnostic(s); fix the code or add a reasoned //hyperplexvet:ignore directive", len(diags))
	}
}
