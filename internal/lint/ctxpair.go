package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxPair enforces the kernel API convention from the cancellation PR:
// every exported FooCtx function comes with a plain Foo in the same
// package (so callers who don't thread contexts keep a simple entry
// point), a plain wrapper that forwards to FooCtx passes
// context.Background() rather than TODO or a stored context, and a
// FooCtx body actually uses its ctx parameter — a dropped context
// means the kernel silently lost cancellation.
var CtxPair = &Analyzer{
	Name: "ctxpair",
	Doc:  "every exported FooCtx needs a plain Foo twin, and FooCtx must actually use its ctx",
	Run:  runCtxPair,
}

func runCtxPair(pass *Pass) {
	info := pass.Pkg.Info

	// Index the package's top-level plain functions by name.
	decls := make(map[string]*ast.FuncDecl)
	funcsOf(pass.Pkg, func(_ *ast.File, fd *ast.FuncDecl) {
		if fd.Recv == nil {
			decls[fd.Name.Name] = fd
		}
	})

	funcsOf(pass.Pkg, func(_ *ast.File, fd *ast.FuncDecl) {
		name := fd.Name.Name
		if fd.Recv != nil || !strings.HasSuffix(name, "Ctx") || name == "Ctx" {
			return
		}
		params := fd.Type.Params
		if params == nil || len(params.List) == 0 || !isContextType(info.TypeOf(params.List[0].Type)) {
			return // not a context kernel; ctxfirst complains if ctx hides elsewhere
		}

		// The ctx parameter must be named and used.
		ctxField := params.List[0]
		if len(ctxField.Names) == 0 || ctxField.Names[0].Name == "_" {
			pass.Reportf(fd.Name.Pos(), "%s drops its context: the ctx parameter is blank", name)
		} else if fd.Body != nil {
			obj := info.Defs[ctxField.Names[0]]
			if obj != nil && !usesObject(pass.Pkg, fd.Body, obj) {
				pass.Reportf(fd.Name.Pos(), "%s drops its context: the ctx parameter is never used", name)
			}
		}

		if !ast.IsExported(name) {
			return
		}
		base := strings.TrimSuffix(name, "Ctx")
		twin, ok := decls[base]
		if !ok {
			pass.Reportf(fd.Name.Pos(), "exported %s has no plain %s twin in this package", name, base)
			return
		}
		checkTwinWrapper(pass, twin, fd)
	})
}

// usesObject reports whether any identifier in the subtree refers to
// the given object.
func usesObject(pkg *Package, root ast.Node, obj types.Object) bool {
	used := false
	ast.Inspect(root, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}

// checkTwinWrapper verifies that wherever the plain twin calls its Ctx
// variant directly, the first argument is context.Background().  A
// twin that delegates elsewhere (e.g. the root package forwarding to
// an internal kernel) is accepted as-is.
func checkTwinWrapper(pass *Pass, twin, ctxFn *ast.FuncDecl) {
	if twin.Body == nil {
		return
	}
	info := pass.Pkg.Info
	ctxObj := info.Defs[ctxFn.Name]
	ast.Inspect(twin.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || info.Uses[id] != ctxObj || len(call.Args) == 0 {
			return true
		}
		if !isContextBackgroundCall(pass.Pkg, call.Args[0]) {
			pass.Reportf(call.Pos(), "plain %s must pass context.Background() to %s",
				twin.Name.Name, ctxFn.Name.Name)
		}
		return true
	})
}

// isContextBackgroundCall reports whether the expression is exactly
// context.Background().
func isContextBackgroundCall(pkg *Package, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	return isPkgFunc(pkg, call, "context", "Background")
}
