package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module, the
// unit every analyzer runs over.  Test files (*_test.go) are excluded:
// the contracts the suite enforces are library contracts, and test
// packages arm failpoints, match error strings and panic freely.
type Package struct {
	// Path is the full import path (e.g. "hyperplex/internal/core").
	Path string
	// Dir is the absolute directory the files were read from.
	Dir string
	// Name is the package name declared by the files.
	Name string
	// Module is the module path from go.mod ("hyperplex").
	Module string
	// Files are the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Types and Info hold the go/types results for the package.
	Types *types.Package
	Info  *types.Info
	// Sources maps each file name to its raw content, so the ignore
	// scanner can tell trailing directives from standalone ones.
	Sources map[string][]byte

	// facts memoizes the package's facts registry (see facts.go).
	facts *PkgFacts
}

// IsLibrary reports whether the package is library code — the module
// root package or anything under internal/ — as opposed to a command
// or an example.  Scoped analyzers (nopanic, gorecover) only apply to
// library packages.
func (p *Package) IsLibrary() bool {
	return p.Path == p.Module || strings.HasPrefix(p.Path, p.Module+"/internal/")
}

// Program is the result of one Load call: the requested packages (not
// their transitive imports) sharing one FileSet.
type Program struct {
	Fset   *token.FileSet
	Module string
	Root   string
	Pkgs   []*Package

	// byTypes indexes every module-internal package the load touched —
	// requested or imported — by its go/types package, so analyzers can
	// resolve facts about callees across package boundaries.
	byTypes map[*types.Package]*Package
}

// PackageFor returns the loaded module package behind a go/types
// package, or nil when tp is outside the module (stdlib) or was not
// part of this load.
func (prog *Program) PackageFor(tp *types.Package) *Package {
	return prog.byTypes[tp]
}

// Load resolves the given patterns relative to dir and parses and
// type-checks every matched package using only the standard library.
// A pattern is either a directory ("./internal/core") or a recursive
// wildcard ("./...", "dir/..."); wildcard expansion skips testdata,
// vendor and hidden directories, exactly like the go tool, while an
// explicit directory is always loaded (which is how the fixture tests
// reach packages under testdata).  Imports within the module are
// type-checked from source; all other imports resolve through the
// toolchain's export data with a source-importer fallback.
func Load(dir string, patterns ...string) (*Program, error) {
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: resolving %s: %w", dir, err)
	}
	root, module, err := findModule(absDir)
	if err != nil {
		return nil, err
	}
	l := &loader{
		fset:   token.NewFileSet(),
		root:   root,
		module: module,
		pkgs:   make(map[string]*Package),
	}
	l.std = importer.Default()

	dirs, err := expandPatterns(absDir, patterns)
	if err != nil {
		return nil, err
	}
	prog := &Program{Fset: l.fset, Module: module, Root: root}
	seen := make(map[string]bool)
	for _, d := range dirs {
		path, err := l.importPathFor(d)
		if err != nil {
			return nil, err
		}
		if seen[path] {
			continue
		}
		seen[path] = true
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].Path < prog.Pkgs[j].Path })
	prog.byTypes = make(map[*types.Package]*Package, len(l.pkgs))
	for _, pkg := range l.pkgs {
		prog.byTypes[pkg.Types] = pkg
	}
	return prog, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, module string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if name, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(name), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// expandPatterns turns patterns into a list of absolute package
// directories.  Wildcard walks skip testdata, vendor, and dot or
// underscore directories, and silently drop directories with no Go
// files; an explicit directory must contain at least one non-test Go
// file.
func expandPatterns(dir string, patterns []string) ([]string, error) {
	var dirs []string
	for _, pat := range patterns {
		if base, ok := strings.CutSuffix(pat, "..."); ok {
			base = strings.TrimSuffix(base, "/")
			if base == "" || base == "." {
				base = dir
			} else if !filepath.IsAbs(base) {
				base = filepath.Join(dir, base)
			}
			err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != base && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if names, _ := goFilesIn(p); len(names) > 0 {
					dirs = append(dirs, p)
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("lint: expanding %s: %w", pat, err)
			}
			continue
		}
		p := pat
		if !filepath.IsAbs(p) {
			p = filepath.Join(dir, p)
		}
		names, err := goFilesIn(p)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", pat, err)
		}
		if len(names) == 0 {
			return nil, fmt.Errorf("lint: %s: no non-test Go files", pat)
		}
		dirs = append(dirs, p)
	}
	return dirs, nil
}

// goFilesIn lists the non-test Go files of a directory that build on
// the host platform, sorted.  Build constraints — `//go:build` lines
// and GOOS/GOARCH file-name suffixes like `_linux.go` — are honored
// via go/build, so a package with platform-split files (e.g. an mmap
// implementation and its stub) type-checks as one coherent set
// instead of redeclaring symbols.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// loader memoizes parsed and type-checked packages and implements
// types.Importer for imports inside the module.
type loader struct {
	fset   *token.FileSet
	root   string
	module string
	pkgs   map[string]*Package
	stack  []string // import chain, for cycle diagnostics
	std    types.Importer
	stdSrc types.Importer
}

// importPathFor maps an absolute directory inside the module to its
// import path.
func (l *loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.module)
	}
	if rel == "." {
		return l.module, nil
	}
	return l.module + "/" + filepath.ToSlash(rel), nil
}

// dirFor is the inverse of importPathFor.
func (l *loader) dirFor(path string) string {
	if path == l.module {
		return l.root
	}
	return filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.module+"/")))
}

// load parses and type-checks the package at the given module-internal
// import path, memoized.
func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	for _, s := range l.stack {
		if s == path {
			return nil, fmt.Errorf("lint: import cycle: %s", strings.Join(append(l.stack, path), " -> "))
		}
	}
	l.stack = append(l.stack, path)
	defer func() { l.stack = l.stack[:len(l.stack)-1] }()

	dir := l.dirFor(path)
	names, err := goFilesIn(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: %s: no non-test Go files in %s", path, dir)
	}
	var files []*ast.File
	sources := make(map[string][]byte)
	pkgName := ""
	for _, name := range names {
		filename := filepath.Join(dir, name)
		src, err := os.ReadFile(filename)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", path, err)
		}
		f, err := parser.ParseFile(l.fset, filename, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", path, err)
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if f.Name.Name != pkgName {
			return nil, fmt.Errorf("lint: %s: mixed package names %s and %s", path, pkgName, f.Name.Name)
		}
		files = append(files, f)
		sources[filename] = src
	}

	var typeErrs []error
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error: func(err error) {
			if len(typeErrs) < 10 {
				typeErrs = append(typeErrs, err)
			}
		},
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, len(typeErrs))
		for i, e := range typeErrs {
			msgs[i] = e.Error()
		}
		return nil, fmt.Errorf("lint: type-checking %s:\n\t%s", path, strings.Join(msgs, "\n\t"))
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}

	pkg := &Package{
		Path:    path,
		Dir:     dir,
		Name:    pkgName,
		Module:  l.module,
		Files:   files,
		Types:   tpkg,
		Info:    info,
		Sources: sources,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer: module-internal packages are
// loaded from source through the same loader, everything else is
// resolved from the toolchain's export data, falling back to the
// source importer (which type-checks GOROOT source) when export data
// is unavailable.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if pkg, err := l.std.Import(path); err == nil {
		return pkg, nil
	}
	if l.stdSrc == nil {
		l.stdSrc = importer.ForCompiler(l.fset, "source", nil)
	}
	return l.stdSrc.Import(path)
}
