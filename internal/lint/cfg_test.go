package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildTestCFG parses a function body and builds its CFG; atomic may be
// nil.  The body is wrapped in a one-function file so plain go/parser
// suffices — BuildCFG is syntax-only.
func buildTestCFG(t *testing.T, body string, atomic func(ast.Stmt) bool) *CFG {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	file, err := parser.ParseFile(token.NewFileSet(), "cfg_test.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing test body: %v", err)
	}
	return BuildCFG(file.Decls[0].(*ast.FuncDecl).Body, atomic)
}

// blockCalling returns the block whose statements include a call to the
// named function — either as an expression statement or as the wrapped
// condition expression the builder records for ifs and loop headers.
func blockCalling(t *testing.T, g *CFG, name string) *Block {
	t.Helper()
	for _, b := range g.Blocks {
		for _, s := range b.Stmts {
			es, ok := s.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
				return b
			}
		}
	}
	t.Fatalf("no block calls %s", name)
	return nil
}

// onlyLoop returns the single LoopInfo of the graph.
func onlyLoop(t *testing.T, g *CFG) *LoopInfo {
	t.Helper()
	if len(g.Loops) != 1 {
		t.Fatalf("graph has %d loops, want 1", len(g.Loops))
	}
	for _, li := range g.Loops {
		return li
	}
	return nil
}

// TestCFGEarlyReturn checks that a return leaves the function: the
// then-branch reaches Exit but not the statements after the if.
func TestCFGEarlyReturn(t *testing.T) {
	g := buildTestCFG(t, `
	a()
	if cond() {
		b()
		return
	}
	d()
`, nil)
	a, b, d := blockCalling(t, g, "a"), blockCalling(t, g, "b"), blockCalling(t, g, "d")
	if !g.Reaches(a, d, nil) {
		t.Error("fallthrough path a -> d missing")
	}
	if !g.Reaches(b, g.Exit, nil) {
		t.Error("return branch does not reach Exit")
	}
	if g.Reaches(b, d, nil) {
		t.Error("return branch leaks past the if to d")
	}
	// Blocking the returning branch must still leave the else path open.
	if !g.Reaches(a, g.Exit, func(blk *Block) bool { return blk == b }) {
		t.Error("blocking the then-branch cut off the else path to Exit")
	}
}

// TestCFGForwardGoto checks that goto jumps over the skipped statements:
// they become dead blocks that still flow to the label for resolution,
// but entry never reaches them.
func TestCFGForwardGoto(t *testing.T) {
	g := buildTestCFG(t, `
	a()
	goto skip
	b()
skip:
	c()
`, nil)
	a, b, c := blockCalling(t, g, "a"), blockCalling(t, g, "b"), blockCalling(t, g, "c")
	if !g.Reaches(a, c, nil) {
		t.Error("goto edge a -> skip missing")
	}
	if g.Reaches(g.Entry, b, nil) || g.Reaches(a, b, nil) {
		t.Error("statements jumped over by goto are reachable")
	}
	if !g.Reaches(c, g.Exit, nil) {
		t.Error("label body does not reach Exit")
	}
}

// TestCFGBackwardGoto checks that a backward goto forms a cycle the
// self-reachability query sees.
func TestCFGBackwardGoto(t *testing.T) {
	g := buildTestCFG(t, `
	a()
loop:
	b()
	if cond() {
		goto loop
	}
	d()
`, nil)
	b, d := blockCalling(t, g, "b"), blockCalling(t, g, "d")
	if !g.Reaches(b, b, nil) {
		t.Error("backward goto does not close a cycle through the label")
	}
	if !g.Reaches(b, d, nil) {
		t.Error("loop body cannot fall through to d")
	}
	if g.Reaches(d, b, nil) {
		t.Error("post-loop code reaches back into the goto loop")
	}
}

// TestCFGBreakLabel checks that break LABEL exits the labeled outer
// loop directly: the breaking block reaches the code after the outer
// loop even when both loop headers are blocked, and never reaches the
// rest of the inner body.
func TestCFGBreakLabel(t *testing.T) {
	g := buildTestCFG(t, `
outer:
	for x() {
		for y() {
			if cond() {
				a()
				break outer
			}
			b()
		}
	}
	d()
`, nil)
	a, b, d := blockCalling(t, g, "a"), blockCalling(t, g, "b"), blockCalling(t, g, "d")
	xHead, yHead := blockCalling(t, g, "x"), blockCalling(t, g, "y")
	heads := func(blk *Block) bool { return blk == xHead || blk == yHead }
	if !g.Reaches(a, d, heads) {
		t.Error("break outer does not bypass both loop headers")
	}
	if g.Reaches(a, b, nil) {
		t.Error("break outer flows back into the inner loop body")
	}
	if !g.Reaches(b, d, nil) {
		t.Error("normal inner-body path cannot exit the loops at all")
	}
	if g.Reaches(b, d, heads) {
		t.Error("non-breaking body escaped the loops without passing a header")
	}
}

// TestCFGContinueLabel checks that continue LABEL targets the outer
// latch: the continuing block starts the next outer iteration without
// touching the inner loop header again.
func TestCFGContinueLabel(t *testing.T) {
	g := buildTestCFG(t, `
outer:
	for x() {
		a()
		for y() {
			if cond() {
				m()
				continue outer
			}
			b()
		}
	}
	d()
`, nil)
	a, b, m := blockCalling(t, g, "a"), blockCalling(t, g, "b"), blockCalling(t, g, "m")
	yHead := blockCalling(t, g, "y")
	noYHead := func(blk *Block) bool { return blk == yHead }
	if !g.Reaches(m, a, noYHead) {
		t.Error("continue outer does not restart the outer body around the inner header")
	}
	if g.Reaches(b, a, noYHead) {
		t.Error("plain inner-body path restarted the outer loop without its header")
	}
}

// TestCFGDefer checks that defer and go statements are straight-line:
// control continues past them instead of leaving the function.
func TestCFGDefer(t *testing.T) {
	g := buildTestCFG(t, `
	defer cleanup()
	if cond() {
		return
	}
	a()
`, nil)
	a := blockCalling(t, g, "a")
	if !g.Reaches(g.Entry, a, nil) {
		t.Error("defer statement terminated the path before a")
	}
	var deferBlock *Block
	for _, b := range g.Blocks {
		for _, s := range b.Stmts {
			if _, ok := s.(*ast.DeferStmt); ok {
				deferBlock = b
			}
		}
	}
	if deferBlock == nil {
		t.Fatal("defer statement recorded in no block")
	}
	if !g.Reaches(deferBlock, a, nil) {
		t.Error("block holding the defer does not flow on to a")
	}
}

// TestCFGLoopAnatomy checks the LoopInfo wiring of a plain for loop:
// the header cycles through the latch and only through the latch, and
// the exit is where control lands afterwards.
func TestCFGLoopAnatomy(t *testing.T) {
	g := buildTestCFG(t, `
	for x() {
		a()
	}
	d()
`, nil)
	li := onlyLoop(t, g)
	if li.Head != blockCalling(t, g, "x") {
		t.Error("loop Head is not the block evaluating the condition")
	}
	if !g.Reaches(li.Head, li.Head, nil) {
		t.Error("loop header has no cycle back to itself")
	}
	if g.Reaches(li.Head, li.Head, func(blk *Block) bool { return blk == li.Latch }) {
		t.Error("loop cycles without passing its latch")
	}
	if !g.Reaches(li.Exit, blockCalling(t, g, "d"), nil) && li.Exit != blockCalling(t, g, "d") {
		t.Error("loop exit does not lead to the code after the loop")
	}
	d := blockCalling(t, g, "d")
	if g.Reaches(d, d, nil) {
		t.Error("straight-line block reports a cycle to itself")
	}
}

// TestCFGAtomic checks the atomic callback: a statement it names is one
// opaque node, so its internal return does not split the block or cut
// the fallthrough edge.
func TestCFGAtomic(t *testing.T) {
	g := buildTestCFG(t, `
	a()
	if cond() {
		return
	}
	b()
`, func(s ast.Stmt) bool {
		_, ok := s.(*ast.IfStmt)
		return ok
	})
	a, b := blockCalling(t, g, "a"), blockCalling(t, g, "b")
	if a != b {
		t.Error("atomic if split the surrounding block")
	}
	if len(g.Blocks) != 2 { // entry and exit only
		t.Errorf("graph has %d blocks, want 2 (entry+exit) with the if collapsed", len(g.Blocks))
	}
	if !g.Reaches(g.Entry, g.Exit, nil) {
		t.Error("entry does not reach exit")
	}
}

// TestCFGPanicTerminates checks that a direct panic call ends the path:
// nothing after it in the same list is reachable.
func TestCFGPanicTerminates(t *testing.T) {
	g := buildTestCFG(t, `
	a()
	panic("boom")
	b()
`, nil)
	a, b := blockCalling(t, g, "a"), blockCalling(t, g, "b")
	if !g.Reaches(a, g.Exit, nil) {
		t.Error("panic does not link to Exit")
	}
	if g.Reaches(a, b, nil) {
		t.Error("statements after panic are reachable")
	}
}
