package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// This file is the facts registry: package-wide conventions computed
// once per package and shared by the flow-sensitive analyzers.  Facts
// capture what no single function shows — which functions reach a
// budget checkpoint through any call chain, which slices only ever
// hold arena-carved storage, which constants are wire frame types —
// so the analyzers stay syntax-local while still judging cross-file
// contracts.

// PkgFacts are the computed conventions of one package.
type PkgFacts struct {
	// Checkpointers are the package functions (including methods) whose
	// body reaches a run.Tick / failpoint.Inject / ctx.Err checkpoint,
	// directly or through same-package calls, including calls through
	// func-valued fields all of whose assigned values checkpoint.
	Checkpointers map[types.Object]bool
	// CheckpointFields are func-typed fields and variables every value
	// assigned to which (package-wide) is a checkpointer, so a call
	// through one always checkpoints (the charge-accumulator idiom:
	// p.checkpoint = p.checkpointBuild / p.checkpointPeel).
	CheckpointFields map[types.Object]bool
	// Trivial are loop-free accessor-grade functions doing a bounded
	// amount of work per call (transitively: they may call builtins,
	// bounded stdlib helpers and other trivial functions).  budgettick
	// lets bounded scan loops call them without losing the exemption.
	Trivial map[types.Object]bool
	// ArenaOwned are the slice-typed objects (locals and fields) whose
	// every binding in the package is arena-carved storage: a carve-call
	// result, a reslice of an arena-owned object, or a self-append.
	ArenaOwned map[types.Object]bool
	// FailpointSites maps registered failpoint site names to the
	// position of their Register call.
	FailpointSites map[string]token.Pos
	// WireConsts are the constants of the //hyperplexvet:wiretypes
	// block, in declaration order (empty when the package has none).
	WireConsts []types.Object
	// WireSend and WireRecv are the functions marked wiresend/wirerecv:
	// their first byte-typed parameter carries a wire frame type.
	WireSend, WireRecv map[types.Object]bool
	// OutboxFields are struct fields marked //hyperplexvet:outbox.
	OutboxFields map[types.Object]bool
	// Phases maps each //hyperplexvet:phase function decl to its kind,
	// "owned" or "drain".
	Phases map[*ast.FuncDecl]string
	// HotMarks holds the target lines of //hyperplexvet:hotpath
	// directives, file → line → true; hotalloc resolves them against
	// function and statement start lines.
	HotMarks map[string]map[int]bool
	// FuncDecls maps each declared function object to its declaration.
	FuncDecls map[types.Object]*ast.FuncDecl
}

// Facts returns the facts registry of the pass's package, computing it
// on first use.
func (p *Pass) Facts() *PkgFacts {
	if p.Pkg.facts == nil {
		p.Pkg.facts = collectFacts(p.Fset, p.Pkg)
	}
	return p.Pkg.facts
}

// FactsFor returns the facts registry of any module-internal package
// the load touched — the pass's own, or an imported one — and nil for
// stdlib packages or when the pass has no program backref.
func (p *Pass) FactsFor(tp *types.Package) *PkgFacts {
	if tp == p.Pkg.Types {
		return p.Facts()
	}
	if p.Prog == nil {
		return nil
	}
	pkg := p.Prog.PackageFor(tp)
	if pkg == nil {
		return nil
	}
	if pkg.facts == nil {
		pkg.facts = collectFacts(p.Fset, pkg)
	}
	return pkg.facts
}

// CollectFacts computes the registry for every package of prog and
// returns it keyed by import path.  RunSuite does this implicitly;
// the explicit form exists for tests and tooling that inspect facts
// across a multi-package load.
func CollectFacts(prog *Program) map[string]*PkgFacts {
	out := make(map[string]*PkgFacts, len(prog.Pkgs))
	for _, pkg := range prog.Pkgs {
		if pkg.facts == nil {
			pkg.facts = collectFacts(prog.Fset, pkg)
		}
		out[pkg.Path] = pkg.facts
	}
	return out
}

func collectFacts(fset *token.FileSet, pkg *Package) *PkgFacts {
	f := &PkgFacts{
		Checkpointers:    make(map[types.Object]bool),
		CheckpointFields: make(map[types.Object]bool),
		Trivial:          make(map[types.Object]bool),
		ArenaOwned:       make(map[types.Object]bool),
		FailpointSites:   make(map[string]token.Pos),
		WireSend:         make(map[types.Object]bool),
		WireRecv:         make(map[types.Object]bool),
		OutboxFields:     make(map[types.Object]bool),
		Phases:           make(map[*ast.FuncDecl]string),
		HotMarks:         make(map[string]map[int]bool),
		FuncDecls:        make(map[types.Object]*ast.FuncDecl),
	}
	funcsOf(pkg, func(_ *ast.File, fd *ast.FuncDecl) {
		if obj := pkg.Info.Defs[fd.Name]; obj != nil {
			f.FuncDecls[obj] = fd
		}
	})
	f.collectDirectives(fset, pkg)
	f.collectFailpointSites(pkg)
	f.collectTrivial(pkg)
	f.collectCheckpointers(pkg)
	f.collectArenaOwned(pkg)
	return f
}

// --- directive-backed facts ---

func (f *PkgFacts) collectDirectives(fset *token.FileSet, pkg *Package) {
	type mark struct {
		file string
		line int
	}
	marks := make(map[string][]mark) // verb → targets
	phaseKind := make(map[mark]string)
	for _, d := range packageDirectives(fset, pkg) {
		m := mark{d.file, d.targetLine}
		marks[d.verb] = append(marks[d.verb], m)
		if d.verb == "phase" {
			phaseKind[m] = d.args
		}
	}
	has := func(verb, file string, line int) bool {
		for _, m := range marks[verb] {
			if m.file == file && m.line == line {
				return true
			}
		}
		return false
	}
	for _, m := range marks["hotpath"] {
		byLine := f.HotMarks[m.file]
		if byLine == nil {
			byLine = make(map[int]bool)
			f.HotMarks[m.file] = byLine
		}
		byLine[m.line] = true
	}

	for _, file := range pkg.Files {
		filename := fset.Position(file.Pos()).Filename
		lineOf := func(n ast.Node) int { return fset.Position(n.Pos()).Line }
		for _, decl := range file.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				obj := pkg.Info.Defs[decl.Name]
				if obj == nil {
					continue
				}
				if has("wiresend", filename, lineOf(decl)) {
					f.WireSend[obj] = true
				}
				if has("wirerecv", filename, lineOf(decl)) {
					f.WireRecv[obj] = true
				}
				for _, m := range marks["phase"] {
					if m.file == filename && m.line == lineOf(decl) {
						f.Phases[decl] = phaseKind[m]
					}
				}
			case *ast.GenDecl:
				if decl.Tok == token.CONST && has("wiretypes", filename, lineOf(decl)) {
					for _, spec := range decl.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for _, name := range vs.Names {
							if obj := pkg.Info.Defs[name]; obj != nil {
								f.WireConsts = append(f.WireConsts, obj)
							}
						}
					}
				}
			}
		}
		// Outbox marks attach to struct fields anywhere in the file.
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				if !has("outbox", filename, lineOf(fld)) {
					continue
				}
				for _, name := range fld.Names {
					if obj := pkg.Info.Defs[name]; obj != nil {
						f.OutboxFields[obj] = true
					}
				}
			}
			return true
		})
	}
}

// --- failpoint sites ---

func (f *PkgFacts) collectFailpointSites(pkg *Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || len(vs.Values) != 1 {
					continue
				}
				call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr)
				if !ok || !isPkgFunc(pkg, call, failpointPath, "Register") || len(call.Args) != 1 {
					continue
				}
				if tv := pkg.Info.Types[call.Args[0]]; tv.Value != nil && tv.Value.Kind() == constant.String {
					f.FailpointSites[constant.StringVal(tv.Value)] = call.Pos()
				}
			}
		}
	}
}

// --- callee resolution (shared helper) ---

// calleeOf resolves a call to the function or method object it
// invokes, or to the field/variable object for calls through func
// values; nil when the callee is a builtin, a conversion, or not
// resolvable.
func calleeOf(pkg *Package, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj := pkg.Info.Uses[fun]
		if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
			return nil
		}
		if _, isType := obj.(*types.TypeName); isType {
			return nil
		}
		return obj
	case *ast.SelectorExpr:
		if sel := pkg.Info.Selections[fun]; sel != nil {
			return sel.Obj()
		}
		return pkg.Info.Uses[fun.Sel] // package-qualified
	}
	return nil
}

// isCheckpointPrimitive reports whether the call is one of the root
// budget/cancellation checkpoints: run.Tick, failpoint.Inject, or
// ctx.Err()/ctx.Done() on a context.Context value.
func isCheckpointPrimitive(pkg *Package, call *ast.CallExpr) bool {
	if isPkgFunc(pkg, call, "internal/run", "Tick") || isPkgFunc(pkg, call, failpointPath, "Inject") {
		return true
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Err" && sel.Sel.Name != "Done") {
		return false
	}
	tv, ok := pkg.Info.Types[sel.X]
	return ok && isContextType(tv.Type)
}

// --- trivial functions ---

// collectTrivial finds accessor-grade functions: no loops, no selects,
// no channel operations, and no calls other than builtins, bounded
// stdlib helpers, or other trivial same-package functions.  Greatest
// fixpoint: start with every structurally simple function, drop those
// calling a dropped one.
func (f *PkgFacts) collectTrivial(pkg *Package) {
	calls := make(map[types.Object][]types.Object)
	for obj, fd := range f.FuncDecls {
		if fd.Body == nil {
			continue
		}
		simple := true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ForStmt, *ast.RangeStmt, *ast.SelectStmt, *ast.GoStmt, *ast.SendStmt:
				simple = false
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					simple = false
				}
			case *ast.CallExpr:
				if isConversion(pkg, n) {
					return true
				}
				if callee := calleeOf(pkg, n); callee != nil {
					switch cp := callee.Pkg(); {
					case cp == pkg.Types:
						calls[obj] = append(calls[obj], callee)
					case cp != nil && boundedStdlib[cp.Path()]:
						// Pure computation per call; stays trivial.
					default:
						simple = false
					}
				}
			}
			return simple
		})
		if simple {
			f.Trivial[obj] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for obj := range f.Trivial {
			for _, callee := range calls[obj] {
				if !f.Trivial[callee] {
					delete(f.Trivial, obj)
					changed = true
					break
				}
			}
		}
	}
}

// isConversion reports whether the "call" is really a type conversion.
func isConversion(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[call.Fun]
	return ok && tv.IsType()
}

// --- checkpointers ---

// collectCheckpointers runs the least fixpoint over the package call
// graph: a function checkpoints if its body (function literals
// excluded — they run elsewhere) contains a checkpoint primitive, a
// call to a same-package checkpointer, or a call through a func-typed
// field every assigned value of which is a checkpointer.
func (f *PkgFacts) collectCheckpointers(pkg *Package) {
	fieldAssigns := collectFuncFieldAssigns(pkg)
	for changed := true; changed; {
		changed = false
		for obj, fd := range f.FuncDecls {
			if f.Checkpointers[obj] || fd.Body == nil {
				continue
			}
			hit := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok || hit {
					return !hit
				}
				if isCheckpointPrimitive(pkg, call) {
					hit = true
					return false
				}
				if callee := calleeOf(pkg, call); callee != nil && callee.Pkg() == pkg.Types {
					if f.Checkpointers[callee] {
						hit = true
						return false
					}
					if vals, ok := fieldAssigns[callee]; ok && len(vals) > 0 {
						all := true
						for _, v := range vals {
							if v == nil || !f.Checkpointers[v] {
								all = false
								break
							}
						}
						if all {
							hit = true
							return false
						}
					}
				}
				return true
			})
			if hit {
				f.Checkpointers[obj] = true
				changed = true
			}
		}
	}
	for field, vals := range fieldAssigns {
		if len(vals) == 0 {
			continue
		}
		all := true
		for _, v := range vals {
			if v == nil || !f.Checkpointers[v] {
				all = false
				break
			}
		}
		if all {
			f.CheckpointFields[field] = true
		}
	}
}

// collectFuncFieldAssigns maps each func-typed field or variable to
// every value assigned to it anywhere in the package (nil entries for
// values that are not resolvable to a declared function).
func collectFuncFieldAssigns(pkg *Package) map[types.Object][]types.Object {
	out := make(map[types.Object][]types.Object)
	record := func(lhs, rhs ast.Expr) {
		var target types.Object
		switch lhs := ast.Unparen(lhs).(type) {
		case *ast.SelectorExpr:
			if sel := pkg.Info.Selections[lhs]; sel != nil {
				target = sel.Obj()
			}
		case *ast.Ident:
			target = pkg.Info.Defs[lhs]
			if target == nil {
				target = pkg.Info.Uses[lhs]
			}
		}
		if target == nil {
			return
		}
		if _, ok := target.Type().Underlying().(*types.Signature); !ok {
			return
		}
		var val types.Object
		switch rhs := ast.Unparen(rhs).(type) {
		case *ast.Ident:
			val = pkg.Info.Uses[rhs]
		case *ast.SelectorExpr:
			if sel := pkg.Info.Selections[rhs]; sel != nil {
				val = sel.Obj() // method value
			} else {
				val = pkg.Info.Uses[rhs.Sel]
			}
		}
		if _, ok := val.(*types.Func); !ok {
			val = nil
		}
		out[target] = append(out[target], val)
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
				for i := range as.Lhs {
					record(as.Lhs[i], as.Rhs[i])
				}
			}
			return true
		})
	}
	return out
}

// --- arena-owned slices ---

// collectArenaOwned finds the objects whose storage is always carved
// from a kernel arena.  A carver is a local closure returning a
// full-slice expression (s[:n:n]); a binding is arena if it is a
// carver call, a reslice or element of an arena object, an append to
// one, or a self-reference.  Greatest fixpoint over all bindings, so
// mutually-recycled buffers (outbox reset via a local alias) stay
// owned as long as no binding introduces foreign storage.
func (f *PkgFacts) collectArenaOwned(pkg *Package) {
	carvers := collectCarvers(pkg)
	sources := make(map[types.Object][]ast.Expr)
	record := func(lhs, rhs ast.Expr) {
		obj := baseObject(pkg, lhs)
		if obj == nil {
			return
		}
		if !isSliceObj(obj) {
			return
		}
		if isSpineMake(pkg, lhs, rhs) {
			// obj = make([][]T, n) allocates only nil element headers;
			// whether the storage is arena is decided by the element
			// bindings alone (p.out[t] = carve(n)[:0] and resets).
			return
		}
		sources[obj] = append(sources[obj], rhs)
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						record(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i := range n.Names {
						record(n.Names[i], n.Values[i])
					}
				}
			}
			return true
		})
	}
	owned := make(map[types.Object]bool, len(sources))
	for obj := range sources {
		owned[obj] = true
	}
	for changed := true; changed; {
		changed = false
		for obj := range owned {
			ok, anchored := true, false
			for _, src := range sources[obj] {
				if !isArenaExpr(pkg, src, obj, owned, carvers) {
					ok = false
					break
				}
				// A self-reference (self-append, self-reslice) recycles
				// storage but never establishes it; at least one binding
				// must anchor the object to the arena for real, or a
				// plain growing result buffer would count as owned.
				if baseObject(pkg, rootExpr(src)) != obj {
					anchored = true
				}
			}
			if !ok || !anchored {
				delete(owned, obj)
				changed = true
			}
		}
	}
	f.ArenaOwned = owned
}

// isSpineMake reports whether the binding allocates only the spine of
// a nested slice: a whole-object assignment (bare identifier or field,
// no indexing) of a make whose element type is itself a slice.  The
// spine holds nil headers, never element storage, so it neither
// anchors the object to the arena nor poisons it.
func isSpineMake(pkg *Package, lhs, rhs ast.Expr) bool {
	switch ast.Unparen(lhs).(type) {
	case *ast.Ident, *ast.SelectorExpr:
	default:
		return false
	}
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || !isBuiltinCall(pkg, call, "make") {
		return false
	}
	tv, ok := pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	_, nested := sl.Elem().Underlying().(*types.Slice)
	return nested
}

// rootExpr unwraps reslices, element indexing and appends down to the
// expression naming the storage's origin.
func rootExpr(e ast.Expr) ast.Expr {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "append" && len(x.Args) > 0 {
				e = x.Args[0]
				continue
			}
			return e
		default:
			return e
		}
	}
}

// collectCarvers finds locals bound to a closure whose body returns a
// full-slice expression — the arena-carve idiom.
func collectCarvers(pkg *Package) map[types.Object]bool {
	out := make(map[types.Object]bool)
	consider := func(name ast.Expr, val ast.Expr) {
		id, ok := ast.Unparen(name).(*ast.Ident)
		if !ok {
			return
		}
		lit, ok := ast.Unparen(val).(*ast.FuncLit)
		if !ok {
			return
		}
		carves := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if se, ok := n.(*ast.SliceExpr); ok && se.Slice3 {
				carves = true
			}
			return !carves
		})
		if !carves {
			return
		}
		obj := pkg.Info.Defs[id]
		if obj == nil {
			obj = pkg.Info.Uses[id]
		}
		if obj != nil {
			out[obj] = true
		}
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						consider(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i := range n.Names {
						consider(n.Names[i], n.Values[i])
					}
				}
			}
			return true
		})
	}
	return out
}

// baseObject resolves an lvalue or value expression to the object
// owning its storage: the variable or field itself, through index and
// slice expressions (an element of x is storage of x).
func baseObject(pkg *Package, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pkg.Info.Defs[e]; obj != nil {
			return obj
		}
		return pkg.Info.Uses[e]
	case *ast.SelectorExpr:
		if sel := pkg.Info.Selections[e]; sel != nil {
			return sel.Obj()
		}
		return pkg.Info.Uses[e.Sel]
	case *ast.IndexExpr:
		return baseObject(pkg, e.X)
	case *ast.SliceExpr:
		return baseObject(pkg, e.X)
	}
	return nil
}

func isSliceObj(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	// [][]T element assignments resolve to the same field object, so a
	// nested outbox slice counts the same as a flat one.
	_, isSlice := v.Type().Underlying().(*types.Slice)
	return isSlice
}

// isArenaExpr reports whether evaluating e yields arena-carved storage
// (under the current owned set, with self considered owned).
func isArenaExpr(pkg *Package, e ast.Expr, self types.Object, owned map[types.Object]bool, carvers map[types.Object]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr:
		obj := baseObject(pkg, e)
		return obj != nil && (obj == self || owned[obj])
	case *ast.IndexExpr:
		return isArenaExpr(pkg, e.X, self, owned, carvers)
	case *ast.SliceExpr:
		return isArenaExpr(pkg, e.X, self, owned, carvers)
	case *ast.CallExpr:
		if isBuiltinCall(pkg, e, "append") && len(e.Args) > 0 {
			return isArenaExpr(pkg, e.Args[0], self, owned, carvers)
		}
		if callee := calleeOf(pkg, e); callee != nil && carvers[callee] {
			return true
		}
		return false
	}
	return false
}
