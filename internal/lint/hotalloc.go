package lint

import (
	"go/ast"
	"go/types"
)

// HotAlloc bans allocation inside //hyperplexvet:hotpath regions — the
// arena-discipline guard for the CSR peeler, the shardPeel round loops
// and the cover heap loops.  A hotpath mark on a function covers its
// whole body; a standalone mark above a statement covers that
// statement's subtree.  Inside a region the analyzer reports make and
// new calls, slice/map composite literals (and &T{...}), function
// literals, and append calls whose destination is not arena-owned
// storage (see PkgFacts.ArenaOwned: carve-call results, reslices of
// them, and self-appends).  Calls out of the region are not followed:
// the mark documents and polices the statements it covers.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "no append/make/map/closure allocation inside //hyperplexvet:hotpath regions",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	facts := pass.Facts()
	if len(facts.HotMarks) == 0 {
		return
	}
	for _, file := range pass.Pkg.Files {
		filename := pass.Fset.Position(file.Pos()).Filename
		lines := facts.HotMarks[filename]
		if len(lines) == 0 {
			continue
		}
		marked := func(n ast.Node) bool { return lines[pass.Fset.Position(n.Pos()).Line] }
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if marked(fd) {
				checkHotRegion(pass, facts, fd.Body)
				continue
			}
			// Statement-level marks inside an unmarked function.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				s, ok := n.(ast.Stmt)
				if !ok || !marked(s) {
					return true
				}
				checkHotRegion(pass, facts, s)
				return false // the whole subtree was just checked
			})
		}
	}
}

// checkHotRegion reports every allocation site in the region subtree.
func checkHotRegion(pass *Pass, facts *PkgFacts, region ast.Node) {
	ast.Inspect(region, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure literal allocates in a hotpath region")
			return false // its body runs elsewhere
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&composite literal allocates in a hotpath region")
					return false
				}
			}
		case *ast.CompositeLit:
			switch pass.Pkg.Info.Types[n].Type.Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(n.Pos(), "composite literal allocates in a hotpath region")
			}
		case *ast.CallExpr:
			switch {
			case isBuiltinCall(pass.Pkg, n, "make"):
				pass.Reportf(n.Pos(), "make allocates in a hotpath region; carve from the arena instead")
			case isBuiltinCall(pass.Pkg, n, "new"):
				pass.Reportf(n.Pos(), "new allocates in a hotpath region; carve from the arena instead")
			case isBuiltinCall(pass.Pkg, n, "append"):
				if len(n.Args) > 0 && !isArenaExpr(pass.Pkg, n.Args[0], nil, facts.ArenaOwned, nil) {
					pass.Reportf(n.Pos(), "append to non-arena slice may allocate in a hotpath region")
				}
			}
		}
		return true
	})
}
