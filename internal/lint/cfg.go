package lint

import (
	"go/ast"
)

// This file is the intraprocedural control-flow layer of the suite: a
// small statement-level CFG over one function body, built from syntax
// alone, with the reachability query the flow-sensitive analyzers
// (budgettick, snapshotphase) are written against.
//
// The graph is deliberately coarse.  Nodes are basic blocks of
// statements; expressions never split a block, so a condition with side
// effects lives in the block that evaluates it.  An analyzer that cares
// about a statement class marks whole blocks (a block containing a
// checkpoint statement is a checkpointed block) and asks whether one
// block reaches another while avoiding marked blocks — path-sensitivity
// at block granularity, which is exactly enough for "every iteration
// path passes a checkpoint" and "no path both sends and drains".

// Block is one basic block: straight-line statements and the successor
// edges control can take afterwards.
type Block struct {
	Index int
	Stmts []ast.Stmt
	Succs []*Block
}

// LoopInfo ties one for/range statement to its CFG anatomy.
type LoopInfo struct {
	// Stmt is the *ast.ForStmt or *ast.RangeStmt.
	Stmt ast.Stmt
	// Head is the loop header: the block that evaluates the condition
	// (or range step) and branches into the body or out of the loop.
	Head *Block
	// Latch is the block every completed iteration passes through on
	// its way back to Head (continue statements target it; a ForStmt
	// post statement lives in it).
	Latch *Block
	// Exit is the block control reaches when the loop terminates.
	Exit *Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Entry  *Block
	Exit   *Block // every return, and falling off the end, leads here
	Blocks []*Block
	// Loops maps each for/range statement in the body (FuncLit bodies
	// excluded) to its blocks.
	Loops map[ast.Stmt]*LoopInfo
}

// BuildCFG builds the CFG of a function body.  atomic, when non-nil,
// names statements to keep opaque: a statement for which it returns
// true is appended to the current block as a single node even if it is
// compound (its internal control flow — including any break, continue
// or return it contains — is not modeled, and control is assumed to
// continue after it).  Analyzers use this to collapse statements they
// treat as indivisible, e.g. an if-block that performs a checkpoint.
// Function literals are never descended into; they execute elsewhere.
func BuildCFG(body *ast.BlockStmt, atomic func(ast.Stmt) bool) *CFG {
	b := &cfgBuilder{
		g:      &CFG{Loops: make(map[ast.Stmt]*LoopInfo)},
		atomic: atomic,
		labels: make(map[string]*labelInfo),
	}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.collectLabels(body)
	if end := b.stmts(body.List, b.g.Entry); end != nil {
		b.link(end, b.g.Exit)
	}
	return b.g
}

// Reaches reports whether control can flow from one block to another
// along edges that avoid blocked blocks.  A blocked from or to makes
// the answer false: a path cannot start inside, end inside, or pass
// through a blocked block.  from == to asks for a non-trivial cycle
// back to the same block.
func (g *CFG) Reaches(from, to *Block, blocked func(*Block) bool) bool {
	if from == nil || to == nil || blocked != nil && (blocked(from) || blocked(to)) {
		return false
	}
	seen := make([]bool, len(g.Blocks))
	stack := []*Block{}
	push := func(b *Block) {
		if !seen[b.Index] && (blocked == nil || !blocked(b)) {
			seen[b.Index] = true
			stack = append(stack, b)
		}
	}
	// Seed with successors, not from itself, so from == to detects a
	// true cycle rather than the empty path.
	for _, s := range from.Succs {
		push(s)
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == to {
			return true
		}
		for _, s := range b.Succs {
			push(s)
		}
	}
	return false
}

// labelInfo is the resolution state of one label: the block the label
// heads (goto target) and, once the labeled statement turns out to be a
// loop or switch, the break/continue targets.
type labelInfo struct {
	head       *Block
	breakT     *Block
	continueT  *Block
	isLoopLike bool
}

type cfgBuilder struct {
	g      *CFG
	atomic func(ast.Stmt) bool
	labels map[string]*labelInfo

	// Innermost enclosing targets for plain break/continue, and the
	// next-case block for fallthrough.
	breakT, contT, fallT *Block
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) link(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// collectLabels pre-creates a head block for every label in the body
// (FuncLits excluded), so forward gotos resolve while building.
func (b *cfgBuilder) collectLabels(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if ls, ok := n.(*ast.LabeledStmt); ok {
			b.labels[ls.Label.Name] = &labelInfo{head: b.newBlock()}
		}
		return true
	})
}

// stmts builds a statement list starting in cur; it returns the block
// where control continues, or nil if every path left the list (return,
// break, goto, ...).
func (b *cfgBuilder) stmts(list []ast.Stmt, cur *Block) *Block {
	for _, s := range list {
		if cur == nil {
			// Dead statements after a terminator still need building so
			// labels inside them resolve; give them a detached block.
			cur = b.newBlock()
		}
		cur = b.stmt(s, cur)
	}
	return cur
}

func (b *cfgBuilder) stmt(s ast.Stmt, cur *Block) *Block {
	if b.atomic != nil && b.atomic(s) {
		cur.Stmts = append(cur.Stmts, s)
		return cur
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(s.List, cur)

	case *ast.LabeledStmt:
		li := b.labels[s.Label.Name]
		b.link(cur, li.head)
		return b.labeled(s, li)

	case *ast.BranchStmt:
		cur.Stmts = append(cur.Stmts, s)
		return b.branch(s, cur)

	case *ast.ReturnStmt:
		cur.Stmts = append(cur.Stmts, s)
		b.link(cur, b.g.Exit)
		return nil

	case *ast.IfStmt:
		if s.Init != nil {
			cur.Stmts = append(cur.Stmts, s.Init)
		}
		cur.Stmts = append(cur.Stmts, &ast.ExprStmt{X: s.Cond})
		after := b.newBlock()
		thenB := b.newBlock()
		b.link(cur, thenB)
		if end := b.stmt(s.Body, thenB); end != nil {
			b.link(end, after)
		}
		if s.Else != nil {
			elseB := b.newBlock()
			b.link(cur, elseB)
			if end := b.stmt(s.Else, elseB); end != nil {
				b.link(end, after)
			}
		} else {
			b.link(cur, after)
		}
		return after

	case *ast.ForStmt:
		return b.forLoop(s, cur, nil)

	case *ast.RangeStmt:
		return b.rangeLoop(s, cur, nil)

	case *ast.SwitchStmt:
		if s.Init != nil {
			cur.Stmts = append(cur.Stmts, s.Init)
		}
		if s.Tag != nil {
			cur.Stmts = append(cur.Stmts, &ast.ExprStmt{X: s.Tag})
		}
		return b.switchBody(s.Body, cur, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur.Stmts = append(cur.Stmts, s.Init)
		}
		cur.Stmts = append(cur.Stmts, s.Assign)
		return b.switchBody(s.Body, cur, nil)

	case *ast.SelectStmt:
		return b.selectBody(s.Body, cur, nil)

	default:
		// Assignments, declarations, expression/send/incdec statements,
		// defer and go: straight-line.  A direct panic(...) terminates
		// the path (recover only matters across function boundaries the
		// CFG does not model).
		cur.Stmts = append(cur.Stmts, s)
		if es, ok := s.(*ast.ExprStmt); ok {
			if call, ok := ast.Unparen(es.X).(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
					b.link(cur, b.g.Exit)
					return nil
				}
			}
		}
		return cur
	}
}

// labeled builds the statement under a label, wiring labeled break and
// continue through the labelInfo.
func (b *cfgBuilder) labeled(s *ast.LabeledStmt, li *labelInfo) *Block {
	switch inner := s.Stmt.(type) {
	case *ast.ForStmt:
		li.isLoopLike = true
		return b.forLoop(inner, li.head, li)
	case *ast.RangeStmt:
		li.isLoopLike = true
		return b.rangeLoop(inner, li.head, li)
	case *ast.SwitchStmt:
		li.isLoopLike = true
		if inner.Init != nil {
			li.head.Stmts = append(li.head.Stmts, inner.Init)
		}
		if inner.Tag != nil {
			li.head.Stmts = append(li.head.Stmts, &ast.ExprStmt{X: inner.Tag})
		}
		return b.switchBody(inner.Body, li.head, li)
	case *ast.TypeSwitchStmt:
		li.isLoopLike = true
		if inner.Init != nil {
			li.head.Stmts = append(li.head.Stmts, inner.Init)
		}
		li.head.Stmts = append(li.head.Stmts, inner.Assign)
		return b.switchBody(inner.Body, li.head, li)
	case *ast.SelectStmt:
		li.isLoopLike = true
		return b.selectBody(inner.Body, li.head, li)
	default:
		return b.stmt(s.Stmt, li.head)
	}
}

// branch routes a break/continue/goto/fallthrough out of cur; it
// returns nil (control left) except for an unresolvable target, which
// is treated as straight-line to stay total on odd input.
func (b *cfgBuilder) branch(s *ast.BranchStmt, cur *Block) *Block {
	target := func(breakNotCont bool) *Block {
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil && li.isLoopLike {
				if breakNotCont {
					return li.breakT
				}
				return li.continueT
			}
			return nil
		}
		if breakNotCont {
			return b.breakT
		}
		return b.contT
	}
	var t *Block
	switch s.Tok.String() {
	case "break":
		t = target(true)
	case "continue":
		t = target(false)
	case "goto":
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil {
				t = li.head
			}
		}
	case "fallthrough":
		t = b.fallT
	}
	if t == nil {
		return cur
	}
	b.link(cur, t)
	return nil
}

// forLoop builds a ForStmt rooted at cur (which already holds the
// label head when the loop is labeled).
func (b *cfgBuilder) forLoop(s *ast.ForStmt, cur *Block, li *labelInfo) *Block {
	if s.Init != nil {
		cur.Stmts = append(cur.Stmts, s.Init)
	}
	head := b.newBlock()
	b.link(cur, head)
	if s.Cond != nil {
		head.Stmts = append(head.Stmts, &ast.ExprStmt{X: s.Cond})
	}
	latch := b.newBlock()
	if s.Post != nil {
		latch.Stmts = append(latch.Stmts, s.Post)
	}
	b.link(latch, head)
	exit := b.newBlock()
	if s.Cond != nil {
		b.link(head, exit)
	}
	body := b.newBlock()
	b.link(head, body)
	b.g.Loops[s] = &LoopInfo{Stmt: s, Head: head, Latch: latch, Exit: exit}
	if li != nil {
		li.breakT, li.continueT = exit, latch
	}
	b.inLoop(exit, latch, func() {
		if end := b.stmt(s.Body, body); end != nil {
			b.link(end, latch)
		}
	})
	return exit
}

// rangeLoop builds a RangeStmt; the range header acts as both
// condition and post, so Head doubles as the Latch target.
func (b *cfgBuilder) rangeLoop(s *ast.RangeStmt, cur *Block, li *labelInfo) *Block {
	cur.Stmts = append(cur.Stmts, &ast.ExprStmt{X: s.X})
	head := b.newBlock()
	b.link(cur, head)
	latch := b.newBlock()
	b.link(latch, head)
	exit := b.newBlock()
	b.link(head, exit)
	body := b.newBlock()
	b.link(head, body)
	b.g.Loops[s] = &LoopInfo{Stmt: s, Head: head, Latch: latch, Exit: exit}
	if li != nil {
		li.breakT, li.continueT = exit, latch
	}
	b.inLoop(exit, latch, func() {
		if end := b.stmt(s.Body, body); end != nil {
			b.link(end, latch)
		}
	})
	return exit
}

// inLoop runs fn with break/continue targets swapped in; fallthrough
// is not legal across a loop boundary, so it resets too.
func (b *cfgBuilder) inLoop(breakT, contT *Block, fn func()) {
	oldB, oldC, oldF := b.breakT, b.contT, b.fallT
	b.breakT, b.contT, b.fallT = breakT, contT, nil
	fn()
	b.breakT, b.contT, b.fallT = oldB, oldC, oldF
}

// switchBody builds the clauses of a switch or type switch rooted at
// cur.  Each clause gets its own block reachable from cur; without a
// default clause, cur also flows directly to the exit.
func (b *cfgBuilder) switchBody(body *ast.BlockStmt, cur *Block, li *labelInfo) *Block {
	exit := b.newBlock()
	if li != nil {
		li.breakT, li.continueT = exit, nil
	}
	oldB, oldF := b.breakT, b.fallT
	b.breakT = exit

	var clauseBlocks []*Block
	var clauses []*ast.CaseClause
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		clauses = append(clauses, cc)
		clauseBlocks = append(clauseBlocks, b.newBlock())
	}
	for i, cc := range clauses {
		blk := clauseBlocks[i]
		b.link(cur, blk)
		for _, e := range cc.List {
			blk.Stmts = append(blk.Stmts, &ast.ExprStmt{X: e})
		}
		if i+1 < len(clauseBlocks) {
			b.fallT = clauseBlocks[i+1]
		} else {
			b.fallT = nil
		}
		if end := b.stmts(cc.Body, blk); end != nil {
			b.link(end, exit)
		}
	}
	if !hasDefault {
		b.link(cur, exit)
	}
	b.breakT, b.fallT = oldB, oldF
	return exit
}

// selectBody builds the comm clauses of a select rooted at cur.
func (b *cfgBuilder) selectBody(body *ast.BlockStmt, cur *Block, li *labelInfo) *Block {
	exit := b.newBlock()
	if li != nil {
		li.breakT, li.continueT = exit, nil
	}
	oldB := b.breakT
	b.breakT = exit
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			hasDefault = true
		}
		blk := b.newBlock()
		b.link(cur, blk)
		if cc.Comm != nil {
			blk.Stmts = append(blk.Stmts, cc.Comm)
		}
		if end := b.stmts(cc.Body, blk); end != nil {
			b.link(end, exit)
		}
	}
	// A select without default blocks until some clause runs; control
	// never skips past it, so no cur→exit edge.
	_ = hasDefault
	b.breakT = oldB
	return exit
}
