package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Int32Narrow flags unchecked narrowing conversions of size-derived
// values: an int32(x) or uint32(x) whose operand is built from a
// len/cap or a size accessor (Num*, Len, Count, Size).  Sizes that are
// sums over the input — pin counts, arena extents, wire lengths — can
// exceed 2^31 even when every individual ID fits int32, and a bare
// conversion silently truncates instead of failing.  The sanctioned
// forms are csr.MustInt32 (panics with a diagnosable message) and the
// dist cap checks that bound the value first.
var Int32Narrow = &Analyzer{
	Name: "int32narrow",
	Doc:  "int→int32/uint32 conversions of size-derived values must go through csr.MustInt32 or an explicit cap check",
	Run:  runInt32Narrow,
}

func runInt32Narrow(pass *Pass) {
	if !pass.Pkg.IsLibrary() {
		return
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 || !isConversion(pass.Pkg, call) {
				return true
			}
			to, ok := pass.Pkg.Info.Types[call.Fun]
			if !ok || !isNarrow32(to.Type) {
				return true
			}
			arg := call.Args[0]
			from, ok := pass.Pkg.Info.Types[arg]
			if !ok || from.Type == nil || !isWideInt(from.Type) {
				return true
			}
			if from.Value != nil {
				return true // constant-folded, checked at compile time
			}
			if src := sizeSource(pass.Pkg, arg); src != "" {
				pass.Reportf(call.Pos(), "unchecked %s narrowing of size-derived value (%s); use csr.MustInt32 or bound the value first",
					to.Type.Underlying().String(), src)
			}
			return true
		})
	}
}

// isNarrow32 reports whether t is (a named type of) int32 or uint32.
func isNarrow32(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Int32 || b.Kind() == types.Uint32)
}

// isWideInt reports whether t is an integer type wider than 32 bits on
// 64-bit targets (int, uint, int64, uint64, uintptr).
func isWideInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int, types.Uint, types.Int64, types.Uint64, types.Uintptr:
		return true
	}
	return false
}

// sizeSource reports how the expression derives from a size — the name
// of the len/cap builtin or size accessor found in its subtree — or ""
// when it does not.
func sizeSource(pkg *Package, e ast.Expr) string {
	src := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if src != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isBuiltinCall(pkg, call, "len") || isBuiltinCall(pkg, call, "cap") {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				src = id.Name
			}
			return false
		}
		var name string
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		if strings.HasPrefix(name, "Num") || name == "Len" || name == "Count" || name == "Size" {
			src = name
			return false
		}
		return true
	})
	return src
}
