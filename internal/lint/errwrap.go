package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// ErrWrap enforces the typed-error contract: sentinel errors like
// run.ErrBudgetExceeded and failpoint.ErrInjected stay matchable with
// errors.Is only while every layer wraps with %w.  The analyzer flags
// fmt.Errorf calls that format an error value with %v/%s/%q (which
// flattens the chain), and stringly-typed error matching — comparing
// or substring-searching Error() output instead of using errors.Is.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "wrap errors with %w and match them with errors.Is, never by string",
	Run:  runErrWrap,
}

func runErrWrap(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkErrorfCall(pass, n)
				checkStringsMatch(pass, n)
			case *ast.BinaryExpr:
				checkErrorCompare(pass, n)
			}
			return true
		})
	}
}

// checkErrorfCall flags fmt.Errorf("... %v ...", err) where err is an
// error value: the verb must be %w so the chain stays unwrappable.
func checkErrorfCall(pass *Pass, call *ast.CallExpr) {
	if !isPkgFunc(pass.Pkg, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	tv := pass.Pkg.Info.Types[call.Args[0]]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	for _, v := range parseVerbs(constant.StringVal(tv.Value)) {
		argIdx := 1 + v.arg
		if argIdx >= len(call.Args) {
			return // fmt mismatch; go vet reports it
		}
		switch v.verb {
		case 'v', 's', 'q':
			if implementsError(pass.Pkg.Info.TypeOf(call.Args[argIdx])) {
				pass.Reportf(call.Args[argIdx].Pos(),
					"error value formatted with %%%c flattens the chain; wrap it with %%w so errors.Is keeps working", v.verb)
			}
		}
	}
}

// checkErrorCompare flags `err.Error() == "..."` (and !=): sentinel
// errors are matched with errors.Is, not by their rendered text.
func checkErrorCompare(pass *Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	if isErrorStringCall(pass.Pkg, be.X) || isErrorStringCall(pass.Pkg, be.Y) {
		pass.Reportf(be.Pos(), "comparing Error() strings; match sentinel errors with errors.Is (or errors.As)")
	}
}

// checkStringsMatch flags strings.Contains/HasPrefix/HasSuffix applied
// to Error() output.
func checkStringsMatch(pass *Pass, call *ast.CallExpr) {
	for _, name := range []string{"Contains", "HasPrefix", "HasSuffix"} {
		if isPkgFunc(pass.Pkg, call, "strings", name) {
			for _, arg := range call.Args {
				if isErrorStringCall(pass.Pkg, arg) {
					pass.Reportf(call.Pos(), "substring-matching Error() output; match sentinel errors with errors.Is")
					return
				}
			}
		}
	}
}

// isErrorStringCall reports whether the expression is a nullary
// .Error() call on an error value.
func isErrorStringCall(pkg *Package, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	return implementsError(pkg.Info.TypeOf(sel.X))
}

// errorIface is the universe error interface.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t satisfies the error interface.
func implementsError(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}

// fmtVerb is one formatting verb and the 0-based index of the operand
// it consumes.
type fmtVerb struct {
	verb rune
	arg  int
}

// parseVerbs scans a Printf-style format string and maps verbs to
// operand indexes, accounting for flags, * width/precision operands,
// and explicit [n] argument indexes.
func parseVerbs(format string) []fmtVerb {
	var verbs []fmtVerb
	arg := 0
	runes := []rune(format)
	for i := 0; i < len(runes); i++ {
		if runes[i] != '%' {
			continue
		}
		i++
		if i >= len(runes) {
			break
		}
		if runes[i] == '%' {
			continue
		}
		// Flags.
		for i < len(runes) && (runes[i] == '#' || runes[i] == '+' || runes[i] == '-' ||
			runes[i] == ' ' || runes[i] == '0') {
			i++
		}
		// Explicit argument index [n].
		if i < len(runes) && runes[i] == '[' {
			j := i + 1
			n := 0
			for j < len(runes) && runes[j] >= '0' && runes[j] <= '9' {
				n = n*10 + int(runes[j]-'0')
				j++
			}
			if j < len(runes) && runes[j] == ']' && n > 0 {
				arg = n - 1
				i = j + 1
			}
		}
		// Width.
		for i < len(runes) && runes[i] >= '0' && runes[i] <= '9' {
			i++
		}
		if i < len(runes) && runes[i] == '*' {
			arg++
			i++
		}
		// Precision.
		if i < len(runes) && runes[i] == '.' {
			i++
			for i < len(runes) && runes[i] >= '0' && runes[i] <= '9' {
				i++
			}
			if i < len(runes) && runes[i] == '*' {
				arg++
				i++
			}
		}
		if i >= len(runes) {
			break
		}
		verbs = append(verbs, fmtVerb{verb: runes[i], arg: arg})
		arg++
	}
	return verbs
}
