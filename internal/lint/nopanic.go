package lint

import (
	"go/ast"
	"strings"
)

// NoPanic bans naked panics in library code: kernels and readers
// return typed errors, and the chaos suite proves they degrade instead
// of crashing.  Three idioms are allowed without a directive, because
// they are themselves part of the contract:
//
//   - Must-prefixed helpers (MustBuild, mustFromEdgeSets): panicking
//     on invalid input is their documented purpose;
//   - functions that call recover(): recovery helpers legitimately
//     re-panic values they do not own, and a function that recovers a
//     worker panic may re-raise it on the caller's own goroutine;
//   - the plain twin of a Ctx kernel (a package-level Foo whose FooCtx
//     exists): it panics on the impossible error of a background
//     context, which only an armed failpoint can produce.
//
// Anything else needs a typed error or an explicit
// //hyperplexvet:ignore nopanic <reason> directive documenting the
// invariant.
var NoPanic = &Analyzer{
	Name: "nopanic",
	Doc:  "no naked panic in library code outside Must helpers, recover helpers, and Ctx twins",
	Run:  runNoPanic,
}

func runNoPanic(pass *Pass) {
	if !pass.Pkg.IsLibrary() {
		return
	}

	// Names of top-level functions, to recognize Ctx twins.
	topLevel := make(map[string]bool)
	funcsOf(pass.Pkg, func(_ *ast.File, fd *ast.FuncDecl) {
		if fd.Recv == nil {
			topLevel[fd.Name.Name] = true
		}
	})

	report := func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isBuiltinCall(pass.Pkg, call, "panic") {
				pass.Reportf(call.Pos(), "naked panic in library code: return a typed error, or annotate a genuine invariant with %signore nopanic <reason>", directivePrefix)
			}
			return true
		})
	}

	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				report(decl) // panics in var initializers and the like
				continue
			}
			if fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			if strings.HasPrefix(strings.ToLower(name), "must") {
				continue
			}
			if fd.Recv == nil && topLevel[name+"Ctx"] {
				continue // plain twin of a Ctx kernel
			}
			if callsRecoverAnywhere(pass.Pkg, fd.Body) {
				continue // recovery helper or worker-boundary owner
			}
			report(fd.Body)
		}
	}
}

// callsRecoverAnywhere reports whether the block calls recover() at
// any depth, including nested func literals — a function that recovers
// worker panics may re-raise them on its own goroutine.
func callsRecoverAnywhere(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isBuiltinCall(pkg, call, "recover") {
			found = true
		}
		return !found
	})
	return found
}
