package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// failpointPath is the import-path suffix identifying the fault
// injection registry package.
const failpointPath = "internal/failpoint"

// FailpointSite enforces the chaos-suite contract around failpoint
// sites: failpoint.Register is only called to initialize a dedicated
// package-level var, its site name is a compile-time string constant,
// and failpoint.Inject always goes through such a registered var.
// Dynamic or inline site names would let a kernel checkpoint drift out
// of the registry, bypassing the chaos suite's every-site × every-arm
// sweep and its unregistered-site guard.
var FailpointSite = &Analyzer{
	Name: "failpointsite",
	Doc:  "failpoint sites are package-level vars registered with constant names",
	Run:  runFailpointSite,
}

func runFailpointSite(pass *Pass) {
	if strings.HasSuffix(pass.Pkg.Path, "/"+failpointPath) {
		return // the registry implementation itself is exempt
	}
	info := pass.Pkg.Info

	// Pass 1: bless Register calls that initialize a single
	// package-level var, and remember those site vars.
	blessed := make(map[*ast.CallExpr]bool)
	sites := make(map[types.Object]bool)
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || len(vs.Values) != 1 {
					continue
				}
				call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr)
				if !ok || !isPkgFunc(pass.Pkg, call, failpointPath, "Register") {
					continue
				}
				blessed[call] = true
				if len(call.Args) == 1 {
					tv := info.Types[call.Args[0]]
					if tv.Value == nil || tv.Value.Kind() != constant.String {
						pass.Reportf(call.Args[0].Pos(), "failpoint site name must be a constant string, not a dynamic expression")
					}
				}
				if obj := info.Defs[vs.Names[0]]; obj != nil {
					sites[obj] = true
				}
			}
		}
	}

	// Pass 2: every other Register call, and every Inject that does
	// not route through a registered site var, is a violation.
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case isPkgFunc(pass.Pkg, call, failpointPath, "Register"):
				if !blessed[call] {
					pass.Reportf(call.Pos(), "failpoint.Register must initialize a dedicated package-level var (var fpFoo = failpoint.Register(...))")
				}
			case isPkgFunc(pass.Pkg, call, failpointPath, "Inject"):
				if len(call.Args) != 1 {
					return true
				}
				id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
				if !ok || !sites[info.Uses[id]] {
					pass.Reportf(call.Args[0].Pos(), "failpoint.Inject must be called with a site var registered at package level, so the chaos suite can enumerate it")
				}
			}
			return true
		})
	}
}
