package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// WireDispatch enforces protocol exhaustiveness over the wire frame
// types declared in a //hyperplexvet:wiretypes const block (names
// ending in "Max" are sentinels and exempt).  Every frame type must be
// dispatched somewhere — a switch case, an ==/!= comparison, or an
// argument to a //hyperplexvet:wirerecv parameter — and sent somewhere
// — an argument reaching a //hyperplexvet:wiresend parameter through
// any chain of byte-parameter forwarding.  Every switch dispatching on
// frame types must have a default clause (unknown frames are data, not
// dead code).  Message types (named msg*) must carry encode and decode
// in pairs, and every decoder must go through the allocation-capped
// dec reader rather than trusting wire lengths.
var WireDispatch = &Analyzer{
	Name: "wiredispatch",
	Doc:  "every wire frame type is sent, dispatched with a default case, and its message codecs are paired and capped",
	Run:  runWireDispatch,
}

func runWireDispatch(pass *Pass) {
	facts := pass.Facts()
	if len(facts.WireConsts) == 0 {
		return
	}
	wire := make(map[types.Object]bool, len(facts.WireConsts))
	for _, c := range facts.WireConsts {
		wire[c] = true
	}

	sendParams, recvParams := frameParams(pass, facts)

	dispatched := make(map[types.Object]bool)
	sent := make(map[types.Object]bool)
	markConsts := func(e ast.Expr, into map[types.Object]bool) {
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := pass.Pkg.Info.Uses[id]; obj != nil && wire[obj] {
					into[obj] = true
				}
			}
			return true
		})
	}

	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SwitchStmt:
				usesWire, hasDefault := false, false
				for _, c := range n.Body.List {
					cc, ok := c.(*ast.CaseClause)
					if !ok {
						continue
					}
					if cc.List == nil {
						hasDefault = true
					}
					for _, e := range cc.List {
						if usesWireConst(pass, wire, e) {
							usesWire = true
						}
						markConsts(e, dispatched)
					}
				}
				if usesWire && !hasDefault {
					pass.Reportf(n.Pos(), "switch dispatching on wire frame types must have a default clause for unknown frames")
				}
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					markConsts(n.X, dispatched)
					markConsts(n.Y, dispatched)
				}
			case *ast.CallExpr:
				callee := calleeOf(pass.Pkg, n)
				fd := facts.FuncDecls[callee]
				if fd == nil {
					return true
				}
				params := paramObjects(pass.Pkg, fd)
				for i, arg := range n.Args {
					if i >= len(params) {
						break
					}
					if sendParams[params[i]] {
						markConsts(arg, sent)
					}
					if recvParams[params[i]] {
						markConsts(arg, dispatched)
					}
				}
			}
			return true
		})
	}

	for _, c := range facts.WireConsts {
		if strings.HasSuffix(c.Name(), "Max") {
			continue
		}
		if !dispatched[c] {
			pass.Reportf(c.Pos(), "wire frame type %s has no dispatch site (no switch case, comparison or wirerecv argument consumes it)", c.Name())
		}
		if !sent[c] {
			pass.Reportf(c.Pos(), "wire frame type %s is never sent (no call chain reaches a wiresend parameter)", c.Name())
		}
	}

	checkCodecs(pass)
}

// usesWireConst reports whether e mentions a wire const (helper for
// the switch scan, where markConsts may have already recorded it).
func usesWireConst(pass *Pass, wire map[types.Object]bool, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Pkg.Info.Uses[id]; obj != nil && wire[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// frameParams computes the byte parameters that carry a frame type:
// seeded by the first byte parameter of each wiresend/wirerecv-marked
// function, then propagated through calls — a byte parameter passed
// into a frame-param position is itself a frame param.
func frameParams(pass *Pass, facts *PkgFacts) (send, recv map[types.Object]bool) {
	send = make(map[types.Object]bool)
	recv = make(map[types.Object]bool)
	seed := func(marked map[types.Object]bool, into map[types.Object]bool) {
		for obj := range marked {
			fd := facts.FuncDecls[obj]
			if fd == nil {
				continue
			}
			for _, p := range paramObjects(pass.Pkg, fd) {
				if isByte(p.Type()) {
					into[p] = true
					break
				}
			}
		}
	}
	seed(facts.WireSend, send)
	seed(facts.WireRecv, recv)

	for changed := true; changed; {
		changed = false
		for _, file := range pass.Pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fd := facts.FuncDecls[calleeOf(pass.Pkg, call)]
				if fd == nil {
					return true
				}
				params := paramObjects(pass.Pkg, fd)
				for i, arg := range call.Args {
					if i >= len(params) {
						break
					}
					id, ok := ast.Unparen(arg).(*ast.Ident)
					if !ok {
						continue
					}
					obj := pass.Pkg.Info.Uses[id]
					if obj == nil || !isByte(obj.Type()) {
						continue
					}
					if _, isVar := obj.(*types.Var); !isVar {
						continue
					}
					if send[params[i]] && !send[obj] {
						send[obj] = true
						changed = true
					}
					if recv[params[i]] && !recv[obj] {
						recv[obj] = true
						changed = true
					}
				}
				return true
			})
		}
	}
	return send, recv
}

// paramObjects flattens a function declaration's parameter objects in
// declaration order.
func paramObjects(pkg *Package, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := pkg.Info.Defs[name]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

func isByte(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// checkCodecs pairs encode/decode methods on msg* types and checks
// decoder discipline: a decode must construct the package's dec reader
// (bounds-checked, allocation-capped) or delegate to another decode.
func checkCodecs(pass *Pass) {
	type codec struct {
		encode, decode *ast.FuncDecl
	}
	byType := make(map[string]*codec)
	funcsOf(pass.Pkg, func(_ *ast.File, fd *ast.FuncDecl) {
		if fd.Recv == nil || len(fd.Recv.List) != 1 {
			return
		}
		if fd.Name.Name != "encode" && fd.Name.Name != "decode" {
			return
		}
		t := fd.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		id, ok := t.(*ast.Ident)
		if !ok || !strings.HasPrefix(id.Name, "msg") {
			return
		}
		c := byType[id.Name]
		if c == nil {
			c = &codec{}
			byType[id.Name] = c
		}
		if fd.Name.Name == "encode" {
			c.encode = fd
		} else {
			c.decode = fd
		}
	})
	for name, c := range byType {
		switch {
		case c.encode == nil:
			pass.Reportf(c.decode.Pos(), "message type %s has a decoder but no encoder", name)
		case c.decode == nil:
			pass.Reportf(c.encode.Pos(), "message type %s has an encoder but no decoder", name)
		default:
			if !usesDecReader(pass, c.decode) {
				pass.Reportf(c.decode.Pos(), "decoder for %s must go through the bounds-checked dec reader, not raw payload indexing", name)
			}
		}
	}
}

// usesDecReader reports whether the decode body constructs a value of
// the package's dec type or delegates to another decode method.
func usesDecReader(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Body == nil {
		return false
	}
	ok := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			if tv, found := pass.Pkg.Info.Types[n]; found {
				if named, isNamed := tv.Type.(*types.Named); isNamed && named.Obj().Name() == "dec" {
					ok = true
				}
			}
		case *ast.CallExpr:
			if sel, isSel := ast.Unparen(n.Fun).(*ast.SelectorExpr); isSel && sel.Sel.Name == "decode" {
				ok = true
			}
		}
		return !ok
	})
	return ok
}
