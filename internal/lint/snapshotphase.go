package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// SnapshotPhase enforces the BSP phase-separation rule of the sharded
// engine: within one phase a shard touches only its own peel state,
// and data crosses shards exclusively through outbox fields around an
// exchange barrier.  Phase functions are marked //hyperplexvet:phase
// <owned|drain>; outbox fields are marked //hyperplexvet:outbox.  A
// shard's own peel is the element of the peels slice indexed by the
// phase's first parameter (and locals bound to it).  An owned phase
// may not reach into any other shard's peel at all.  A drain phase may
// read other shards' outbox fields and reset them to length zero, but
// may not read their other state, write anything else into them, or —
// checked over the control-flow graph — both drain a foreign outbox
// and append to one of its own outboxes on the same execution path
// (send and drain belong to different sides of a barrier).
var SnapshotPhase = &Analyzer{
	Name: "snapshotphase",
	Doc:  "BSP phases touch only their own shard; cross-shard data moves through outbox fields across a barrier",
	Run:  runSnapshotPhase,
}

func runSnapshotPhase(pass *Pass) {
	facts := pass.Facts()
	if len(facts.Phases) == 0 {
		return
	}
	for fd, kind := range facts.Phases {
		checkPhase(pass, facts, fd, kind)
	}
}

func checkPhase(pass *Pass, facts *PkgFacts, fd *ast.FuncDecl, kind string) {
	if fd.Body == nil {
		return
	}
	params := paramObjects(pass.Pkg, fd)
	if len(params) == 0 {
		pass.Reportf(fd.Pos(), "phase function must take the shard index as its first parameter")
		return
	}
	shardParam := params[0]

	// Locals aliasing the own peel: p := peels[s].
	ownAlias := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			if ie, ok := ast.Unparen(as.Rhs[i]).(*ast.IndexExpr); ok &&
				isPeelsSlice(pass.Pkg, facts, ie.X) && indexIsParam(pass.Pkg, ie.Index, shardParam) {
				if obj := pass.Pkg.Info.Defs[id]; obj != nil {
					ownAlias[obj] = true
				}
			}
		}
		return true
	})

	// foreignOf classifies an expression's peel access: the foreign
	// peels-index it roots at, or nil for own/none.
	foreignIndex := func(e ast.Expr) *ast.IndexExpr {
		ie, ok := ast.Unparen(e).(*ast.IndexExpr)
		if !ok || !isPeelsSlice(pass.Pkg, facts, ie.X) {
			return nil
		}
		if indexIsParam(pass.Pkg, ie.Index, shardParam) {
			return nil
		}
		return ie
	}

	// One walk classifies every statement: does it drain (touch a
	// foreign outbox), and does it send (append to an own outbox)?
	// Foreign accesses that are not outbox-field selections, and
	// foreign-outbox writes that are not length-zero resets, are
	// reported here.
	consumed := make(map[*ast.IndexExpr]bool)
	isDrainNode := func(n ast.Node) bool {
		drain := false
		ast.Inspect(n, func(m ast.Node) bool {
			if sel, ok := m.(*ast.SelectorExpr); ok {
				if ie := foreignIndex(sel.X); ie != nil {
					consumed[ie] = true
					obj := selectedField(pass.Pkg, sel)
					if obj != nil && facts.OutboxFields[obj] {
						drain = true
					} else {
						pass.Reportf(sel.Pos(), "%s phase reads another shard's non-outbox state; phases may only see foreign outboxes", kind)
					}
				}
			}
			return true
		})
		return drain
	}
	isSendNode := func(n ast.Node) bool {
		send := false
		ast.Inspect(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok || !isBuiltinCall(pass.Pkg, call, "append") || len(call.Args) == 0 {
				return true
			}
			if obj := baseObject(pass.Pkg, call.Args[0]); obj != nil && facts.OutboxFields[obj] {
				if foreignIndexIn(pass.Pkg, facts, call.Args[0], shardParam) == nil {
					send = true
				}
			}
			return true
		})
		return send
	}

	if kind == "owned" {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				if ie := foreignIndex(e); ie != nil && !consumed[ie] {
					consumed[ie] = true
					pass.Reportf(ie.Pos(), "owned phase accesses another shard's peel; move the hand-off into an outbox and a drain phase")
				}
			}
			return true
		})
		return
	}

	// Drain phase: build the CFG and mark send/drain blocks.
	g := BuildCFG(fd.Body, nil)
	var sendBlocks, drainBlocks []*Block
	for _, b := range g.Blocks {
		for _, s := range b.Stmts {
			sends, drains := isSendNode(s), isDrainNode(s)
			if sends && drains {
				pass.Reportf(s.Pos(), "statement both appends to an own outbox and touches a foreign outbox; send and drain sit on opposite sides of a barrier")
			}
			if sends {
				sendBlocks = append(sendBlocks, b)
			}
			if drains {
				drainBlocks = append(drainBlocks, b)
			}
		}
	}
	reported := false
	for _, sb := range sendBlocks {
		for _, db := range drainBlocks {
			if reported {
				break
			}
			if sb == db || g.Reaches(sb, db, nil) || g.Reaches(db, sb, nil) {
				pass.Reportf(fd.Pos(), "drain phase both drains foreign outboxes and appends to its own on one execution path; split the phase at the barrier")
				reported = true
			}
		}
	}

	// Foreign-outbox writes must be length-zero resets.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if foreignIndexIn(pass.Pkg, facts, lhs, shardParam) == nil {
				continue
			}
			if i < len(as.Rhs) && isResetSlice(pass.Pkg, as.Rhs[i]) {
				continue
			}
			pass.Reportf(as.Pos(), "drain phase may only reset a foreign outbox to length zero (x = buf[:0]), not write into it")
		}
		return true
	})

	// Any remaining unconsumed foreign access (e.g. aliasing a whole
	// foreign peel into a local) is a violation.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok {
			if ie := foreignIndex(e); ie != nil && !consumed[ie] {
				consumed[ie] = true
				pass.Reportf(ie.Pos(), "drain phase may only select outbox fields of another shard's peel")
			}
		}
		return true
	})
}

// isPeelsSlice reports whether e is a slice (or array) whose element
// type, behind a pointer, is a struct declaring an outbox field.
func isPeelsSlice(pkg *Package, facts *PkgFacts, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	var elem types.Type
	switch t := tv.Type.Underlying().(type) {
	case *types.Slice:
		elem = t.Elem()
	case *types.Array:
		elem = t.Elem()
	default:
		return false
	}
	if ptr, ok := elem.Underlying().(*types.Pointer); ok {
		elem = ptr.Elem()
	}
	st, ok := elem.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if facts.OutboxFields[st.Field(i)] {
			return true
		}
	}
	return false
}

// indexIsParam reports whether the index expression is exactly the
// given parameter.
func indexIsParam(pkg *Package, idx ast.Expr, param types.Object) bool {
	id, ok := ast.Unparen(idx).(*ast.Ident)
	return ok && pkg.Info.Uses[id] == param
}

// foreignIndexIn finds a foreign peels-index anywhere inside e.
func foreignIndexIn(pkg *Package, facts *PkgFacts, e ast.Expr, shardParam types.Object) *ast.IndexExpr {
	var found *ast.IndexExpr
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if ie, ok := n.(*ast.IndexExpr); ok && isPeelsSlice(pkg, facts, ie.X) &&
			!indexIsParam(pkg, ie.Index, shardParam) {
			found = ie
			return false
		}
		return true
	})
	return found
}

// selectedField resolves the field object a selector picks, nil for
// methods and package selectors.
func selectedField(pkg *Package, sel *ast.SelectorExpr) types.Object {
	if s := pkg.Info.Selections[sel]; s != nil {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
		return nil
	}
	return nil
}

// isResetSlice reports whether e reslices something to length zero
// (buf[:0] or buf[:0:c]).
func isResetSlice(pkg *Package, e ast.Expr) bool {
	se, ok := ast.Unparen(e).(*ast.SliceExpr)
	if !ok || se.High == nil {
		return false
	}
	tv, ok := pkg.Info.Types[se.High]
	return ok && tv.Value != nil && constant.Sign(tv.Value) == 0
}
