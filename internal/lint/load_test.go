package lint

import (
	"strings"
	"testing"
)

// TestLoadWildcardSkipsTestdata checks that ./... walks the module but
// never descends into testdata, vendor, or hidden directories — the
// fixtures under internal/lint/testdata must only load when named
// explicitly.
func TestLoadWildcardSkipsTestdata(t *testing.T) {
	prog, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	if prog.Module != "hyperplex" {
		t.Errorf("module = %q, want hyperplex", prog.Module)
	}
	seen := make(map[string]bool)
	for _, pkg := range prog.Pkgs {
		seen[pkg.Path] = true
		if strings.Contains(pkg.Path, "testdata") {
			t.Errorf("wildcard loaded testdata package %s", pkg.Path)
		}
	}
	for _, want := range []string{"hyperplex", "hyperplex/internal/lint", "hyperplex/cmd/hyperplexvet"} {
		if !seen[want] {
			t.Errorf("wildcard did not load %s", want)
		}
	}
}

// TestLoadExplicitDir checks that naming a testdata directory loads it
// despite the wildcard exclusion.
func TestLoadExplicitDir(t *testing.T) {
	prog, err := Load(".", "./testdata/src/clean")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	if len(prog.Pkgs) != 1 || prog.Pkgs[0].Name != "clean" {
		t.Fatalf("loaded %d packages, want exactly the clean fixture", len(prog.Pkgs))
	}
	if !prog.Pkgs[0].IsLibrary() {
		t.Error("fixture under internal/ must count as library code so nopanic and gorecover fire on it")
	}
}

// TestLoadHonorsBuildConstraints checks that platform-split files
// (`//go:build` lines and `_GOOS.go` suffixes) load as one coherent
// file set: internal/store pairs a linux mmap implementation with a
// stub for everything else, and loading it must not report the
// symbols as redeclared.
func TestLoadHonorsBuildConstraints(t *testing.T) {
	// Before constraint filtering this failed to type-check outright:
	// mmap_linux.go and mmap_stub.go declare the same symbols.
	prog, err := Load("../..", "./internal/store")
	if err != nil {
		t.Fatalf("loading internal/store: %v", err)
	}
	if len(prog.Pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(prog.Pkgs))
	}
	linux, stub := false, false
	for name := range prog.Pkgs[0].Sources {
		linux = linux || strings.HasSuffix(name, "mmap_linux.go")
		stub = stub || strings.HasSuffix(name, "mmap_stub.go")
	}
	if linux == stub {
		t.Errorf("loaded linux=%v stub=%v, want exactly one of the platform pair", linux, stub)
	}
}

// TestLoadMissingDir checks the error path for a nonexistent pattern.
func TestLoadMissingDir(t *testing.T) {
	if _, err := Load(".", "./no/such/dir"); err == nil {
		t.Fatal("loading a nonexistent directory succeeded")
	}
}

// TestIsLibrary pins the library/binary split the nopanic and
// gorecover analyzers rely on.
func TestIsLibrary(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"hyperplex", true},
		{"hyperplex/internal/core", true},
		{"hyperplex/internal/lint", true},
		{"hyperplex/cmd/hyperplexvet", false},
		{"hyperplex/examples/table1", false},
	}
	for _, c := range cases {
		p := &Package{Path: c.path, Module: "hyperplex"}
		if got := p.IsLibrary(); got != c.want {
			t.Errorf("IsLibrary(%s) = %v, want %v", c.path, got, c.want)
		}
	}
}
