// Package lint is a stdlib-only static-analysis suite that turns the
// repository's kernel contracts — Ctx variants with checkpointed
// cancellation, registered failpoint sites, panic recovery at
// goroutine boundaries, typed %w-wrapped errors — into machine-checked
// invariants.  It is deliberately built on go/parser, go/ast, go/types
// and go/importer alone, so the module keeps its zero-dependency
// guarantee while still getting go/analysis-style file:line
// diagnostics.  The cmd/hyperplexvet command runs the suite; the
// self-lint test pins the whole repository to zero diagnostics.
//
// A diagnostic is suppressed by an ignore directive trailing the
// offending line, or standing alone on the line (or comment block)
// directly above it:
//
//	//hyperplexvet:ignore nopanic documented invariant, callers own the precondition
//
// The directive names one or more analyzers (comma-separated) and must
// state a reason; a directive without a reason, or naming an unknown
// analyzer, is itself reported and cannot be suppressed.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a loaded package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is the one-line description shown by hyperplexvet -list.
	Doc string
	// Run reports the analyzer's findings on one package via Reportf.
	Run func(*Pass)
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		BudgetTick, CtxFirst, CtxPair, ErrWrap, FailpointSite, GoRecover,
		HotAlloc, Int32Narrow, NoPanic, SnapshotPhase, WireDispatch,
	}
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	// Prog is the load the package came from; it lets analyzers resolve
	// facts about module-internal callees in other packages.
	Prog   *Program
	report func(Diagnostic)
}

// Reportf records a diagnostic at pos unless an ignore directive
// covering this analyzer is attached to that line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunSuite runs the analyzers over every package of the program and
// returns the surviving diagnostics sorted by position.  Ignore
// directives are validated against the full suite (All) plus the
// analyzers actually being run, so a partial -only invocation does not
// misreport directives for the analyzers it skipped.
func RunSuite(prog *Program, analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		sup, bad := scanIgnores(prog.Fset, pkg, known)
		diags = append(diags, bad...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     prog.Fset,
				Pkg:      pkg,
				Prog:     prog,
				report: func(d Diagnostic) {
					if !sup.covers(d.Pos.Filename, d.Pos.Line, d.Analyzer) {
						diags = append(diags, d)
					}
				},
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}

// directivePrefix introduces every hyperplexvet comment directive.
const directivePrefix = "//hyperplexvet:"

// suppressions maps file name → line → set of analyzer names ignored
// on that line.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) covers(file string, line int, analyzer string) bool {
	return s[file][line][analyzer]
}

func (s suppressions) add(file string, line int, analyzer string) {
	byLine, ok := s[file]
	if !ok {
		byLine = make(map[int]map[string]bool)
		s[file] = byLine
	}
	names, ok := byLine[line]
	if !ok {
		names = make(map[string]bool)
		byLine[line] = names
	}
	names[analyzer] = true
}

// directive is one parsed //hyperplexvet: comment: its verb, the raw
// text after the verb, and the source line it governs (its own line
// when trailing code, the first line after the comment group when the
// group stands alone).
type directive struct {
	verb       string
	args       string
	pos        token.Pos
	file       string
	targetLine int
}

// directiveVerbs is every defined directive.  ignore suppresses
// diagnostics (handled by scanIgnores); the marker verbs are collected
// into the facts registry and consumed by the flow-sensitive analyzers.
var directiveVerbs = map[string]bool{
	"ignore":    true, // ignore <analyzers> <reason>
	"hotpath":   true, // marks a function or statement as an allocation-free region
	"wiretypes": true, // marks the const block declaring the wire frame types
	"wiresend":  true, // marks a func whose first byte param is a frame type being sent
	"wirerecv":  true, // marks a func whose first byte param is a dispatch position
	"outbox":    true, // marks a struct field as BSP outbox state
	"phase":     true, // phase <owned|drain>: marks a BSP phase function
}

// packageDirectives parses every hyperplexvet directive in the package.
func packageDirectives(fset *token.FileSet, pkg *Package) []directive {
	var out []directive
	for _, file := range pkg.Files {
		filename := fset.Position(file.Pos()).Filename
		src := pkg.Sources[filename]
		for _, group := range file.Comments {
			standalone := commentStartsLine(fset, src, group.Pos())
			for _, c := range group.List {
				rest, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				verb, args, _ := strings.Cut(rest, " ")
				target := fset.Position(c.Pos()).Line
				if standalone {
					target = fset.Position(group.End()).Line + 1
				}
				out = append(out, directive{
					verb:       verb,
					args:       args,
					pos:        c.Pos(),
					file:       filename,
					targetLine: target,
				})
			}
		}
	}
	return out
}

// scanIgnores collects the ignore directives of every file in the
// package.  A directive in a standalone comment group applies to the
// first line after the group (so directives stack above the code they
// cover); a trailing directive applies to its own line.  Malformed
// directives — no reason, unknown analyzer, unknown verb, a marker
// verb with bad arguments — come back as unsuppressible diagnostics
// under the pseudo-analyzer name "hyperplexvet".
func scanIgnores(fset *token.FileSet, pkg *Package, known map[string]bool) (suppressions, []Diagnostic) {
	sup := make(suppressions)
	var bad []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		bad = append(bad, Diagnostic{
			Pos:      fset.Position(pos),
			Analyzer: "hyperplexvet",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, d := range packageDirectives(fset, pkg) {
		if !directiveVerbs[d.verb] {
			verbs := make([]string, 0, len(directiveVerbs))
			for v := range directiveVerbs {
				verbs = append(verbs, v)
			}
			sort.Strings(verbs)
			report(d.pos, "unknown directive %s%s (defined: %s)", directivePrefix, d.verb, strings.Join(verbs, ", "))
			continue
		}
		switch d.verb {
		case "ignore":
			fields := strings.Fields(d.args)
			if len(fields) < 2 {
				report(d.pos, "malformed ignore directive: want %signore <analyzers> <reason>", directivePrefix)
				continue
			}
			for _, name := range strings.Split(fields[0], ",") {
				if !known[name] {
					report(d.pos, "ignore directive names unknown analyzer %q", name)
					continue
				}
				sup.add(d.file, d.targetLine, name)
			}
		case "phase":
			if kind := strings.TrimSpace(d.args); kind != "owned" && kind != "drain" {
				report(d.pos, "malformed phase directive: want %sphase <owned|drain>, got %q", directivePrefix, kind)
			}
		}
	}
	return sup, bad
}

// commentStartsLine reports whether only whitespace precedes pos on
// its line, i.e. the comment stands alone rather than trailing code.
func commentStartsLine(fset *token.FileSet, src []byte, pos token.Pos) bool {
	tf := fset.File(pos)
	if tf == nil || src == nil {
		return false
	}
	p := fset.Position(pos)
	start := tf.Offset(tf.LineStart(p.Line))
	end := tf.Offset(pos)
	if start < 0 || end > len(src) || start > end {
		return false
	}
	return strings.TrimSpace(string(src[start:end])) == ""
}

// --- shared AST/type helpers used by several analyzers ---

// isContextType reports whether t is exactly context.Context.
func isContextType(t types.Type) bool {
	return t != nil && t.String() == "context.Context"
}

// funcsOf calls fn for every top-level function declaration in the
// package, files in order.
func funcsOf(pkg *Package, fn func(*ast.File, *ast.FuncDecl)) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				fn(file, fd)
			}
		}
	}
}

// isPkgFunc reports whether the call invokes the named function from
// the package whose import path has the given suffix (an exact path
// also matches).
func isPkgFunc(pkg *Package, call *ast.CallExpr, pathSuffix, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	obj := pkg.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == pathSuffix || strings.HasSuffix(p, "/"+pathSuffix)
}

// isBuiltinCall reports whether the call invokes the named universe
// builtin (panic, recover, ...).
func isBuiltinCall(pkg *Package, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}
