package lint

import (
	"go/types"
	"testing"
)

// hasNamed reports whether the fact set contains an object with the
// given name.  Facts are keyed by types.Object, which tests cannot
// construct; matching by name against the real repo packages is the
// stable way to pin membership.
func hasNamed(facts map[types.Object]bool, name string) bool {
	for obj, ok := range facts {
		if ok && obj != nil && obj.Name() == name {
			return true
		}
	}
	return false
}

// TestCollectFactsMultiPackage loads two real packages in one program
// and checks the registry computed for each: the directive-backed facts
// of internal/core (outbox fields, phase kinds, hotpath marks) and the
// fixpoint facts of internal/csr (checkpointers, the checkpoint-field
// idiom, trivial accessors, arena-owned peeler state, failpoint sites).
func TestCollectFactsMultiPackage(t *testing.T) {
	prog, err := Load("../..", "./internal/csr", "./internal/core")
	if err != nil {
		t.Fatalf("loading csr+core: %v", err)
	}
	all := CollectFacts(prog)
	csr, core := all["hyperplex/internal/csr"], all["hyperplex/internal/core"]
	if csr == nil || core == nil {
		t.Fatalf("CollectFacts keys = %v, want both csr and core", keysOf(all))
	}

	for _, site := range []string{"csr.build", "csr.peel"} {
		if _, ok := csr.FailpointSites[site]; !ok {
			t.Errorf("csr facts missing failpoint site %q", site)
		}
	}
	for _, fn := range []string{"checkpointBuild", "checkpointPeel", "charge"} {
		if !hasNamed(csr.Checkpointers, fn) {
			t.Errorf("csr checkpointer fixpoint missing %s", fn)
		}
	}
	// Every value assigned to peeler.checkpoint is a checkpointer, so a
	// call through the field always checkpoints — the charge idiom.
	if !hasNamed(csr.CheckpointFields, "checkpoint") {
		t.Error("peeler.checkpoint not recognized as an always-checkpointing field")
	}
	// Loop-free accessors over builtins stay trivial.
	for _, fn := range []string{"NumVertices", "NumEdges", "VertexEdges"} {
		if !hasNamed(csr.Trivial, fn) {
			t.Errorf("csr trivial fixpoint missing accessor %s", fn)
		}
	}
	// The peeler's scan-stamp fields and drop worklist are carved from
	// one arena, so hotalloc lets appends to them through.
	for _, f := range []string{"stamp", "estamp", "mem", "drop"} {
		if !hasNamed(csr.ArenaOwned, f) {
			t.Errorf("peeler %s not arena-owned", f)
		}
	}

	if !hasNamed(core.OutboxFields, "outV") || !hasNamed(core.OutboxFields, "outE") {
		t.Error("core outbox marks on shardPeel.outV/outE not collected")
	}
	kinds := map[string]int{}
	for _, kind := range core.Phases {
		kinds[kind]++
	}
	if kinds["owned"] == 0 || kinds["drain"] == 0 {
		t.Errorf("core phase marks = %v, want both owned and drain functions", kinds)
	}
	marked := 0
	for _, lines := range core.HotMarks {
		marked += len(lines)
	}
	if marked == 0 {
		t.Error("core hotpath marks not collected")
	}
}

// TestFactsForCrossPackage checks the cross-package resolution path an
// analyzer uses: a pass over internal/core asks for the facts of its
// internal/csr import and gets the same registry a direct load would
// compute, while stdlib imports resolve to nil.
func TestFactsForCrossPackage(t *testing.T) {
	prog, err := Load("../..", "./internal/core")
	if err != nil {
		t.Fatalf("loading core: %v", err)
	}
	if len(prog.Pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(prog.Pkgs))
	}
	pass := &Pass{Fset: prog.Fset, Pkg: prog.Pkgs[0], Prog: prog}

	if pass.FactsFor(prog.Pkgs[0].Types) != pass.Facts() {
		t.Error("FactsFor of the pass's own package is not its Facts()")
	}
	var csrT, stdT *types.Package
	for _, imp := range prog.Pkgs[0].Types.Imports() {
		switch {
		case imp.Path() == "hyperplex/internal/csr":
			csrT = imp
		case stdT == nil && !isModulePath(imp.Path()):
			stdT = imp
		}
	}
	if csrT == nil {
		t.Fatal("core no longer imports hyperplex/internal/csr; pick another import for this test")
	}
	facts := pass.FactsFor(csrT)
	if facts == nil {
		t.Fatal("FactsFor returned nil for a module-internal import")
	}
	if !hasNamed(facts.Checkpointers, "checkpointPeel") {
		t.Error("cross-package csr facts missing checkpointPeel")
	}
	if facts != pass.FactsFor(csrT) {
		t.Error("FactsFor does not memoize: two calls returned different registries")
	}
	if stdT == nil {
		t.Fatal("core has no stdlib import to probe")
	}
	if pass.FactsFor(stdT) != nil {
		t.Errorf("FactsFor(%s) = non-nil, want nil for stdlib", stdT.Path())
	}
}

func isModulePath(p string) bool {
	return p == "hyperplex" || len(p) > len("hyperplex/") && p[:len("hyperplex/")] == "hyperplex/"
}

func keysOf(m map[string]*PkgFacts) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
