package lint

import (
	"go/ast"
)

// CtxFirst enforces the repository's context plumbing convention:
// context.Context is always the first parameter of a signature, the
// parameter is named ctx (or blank), and contexts are never stored in
// struct fields — a stored context outlives the call it belongs to and
// silently detaches cancellation from the work it governs.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc:  "context.Context must be the first parameter, named ctx, and never live in a struct field",
	Run:  runCtxFirst,
}

func runCtxFirst(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncType:
				checkCtxParams(pass, n)
			case *ast.StructType:
				for _, f := range n.Fields.List {
					if _, isFunc := f.Type.(*ast.FuncType); isFunc {
						continue // callback fields are checked as FuncTypes
					}
					if isContextType(info.TypeOf(f.Type)) {
						pass.Reportf(f.Pos(), "context.Context stored in a struct field; pass it as the first call parameter instead")
					}
				}
			}
			return true
		})
	}
}

// checkCtxParams verifies the position and name of every context
// parameter in one signature.
func checkCtxParams(pass *Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	info := pass.Pkg.Info
	index := 0
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1 // unnamed parameter still occupies one slot
		}
		if isContextType(info.TypeOf(field.Type)) {
			if index != 0 {
				pass.Reportf(field.Pos(), "context.Context must be the first parameter")
			}
			for _, name := range field.Names {
				if name.Name != "ctx" && name.Name != "_" {
					pass.Reportf(name.Pos(), "context parameter should be named ctx, not %s", name.Name)
				}
			}
			if len(field.Names) > 1 {
				pass.Reportf(field.Pos(), "a signature should take a single context.Context")
			}
		}
		index += n
	}
}
