package gen

import (
	"hyperplex/internal/graph"
	"hyperplex/internal/xrand"
)

// PreferentialAttachment generates a Barabási–Albert-style power-law
// graph: starting from a small seed clique, each new vertex attaches m
// edges to existing vertices chosen proportionally to degree.  The
// resulting graph has coreness at most m, which makes it the right
// low-core background into which PlantDenseSubgraph embeds the DIP
// networks' maximum cores.
func PreferentialAttachment(n, m int, rng *xrand.RNG) *graph.Graph {
	if n < m+1 {
		n = m + 1
	}
	var edges [][2]int32
	// Degree-proportional sampling via a repeated-endpoint list.
	var endpoints []int32
	// Seed: clique on m+1 vertices.
	for i := int32(0); i <= int32(m); i++ {
		for j := i + 1; j <= int32(m); j++ {
			edges = append(edges, [2]int32{i, j})
			endpoints = append(endpoints, i, j)
		}
	}
	for v := m + 1; v < n; v++ {
		chosen := make(map[int32]bool, m)
		for len(chosen) < m {
			t := endpoints[rng.Intn(len(endpoints))]
			chosen[t] = true
		}
		for t := range chosen {
			edges = append(edges, [2]int32{int32(v), t})
			endpoints = append(endpoints, int32(v), t)
		}
	}
	return graph.MustBuild(n, edges)
}

// PlantDenseSubgraph returns a graph over g's vertex set in which the
// last `size` vertex IDs form a planted dense subgraph with internal
// degree ≥ minInternalDegree.  Background edges incident to planted
// vertices are removed, and each planted vertex is re-attached to one
// distinct background vertex instead; this caps every background
// vertex at one planted neighbor, so the background's coreness cannot
// be inflated by the planted set.  With minInternalDegree = k greater
// than the background coreness, the maximum core of the result is
// exactly the planted vertex set at level k — which is how the
// synthetic DIP networks pin the published (k, core size) pairs.
func PlantDenseSubgraph(g *graph.Graph, size, minInternalDegree int, rng *xrand.RNG) *graph.Graph {
	n := g.NumVertices()
	if size > n {
		size = n
	}
	base := n - size
	members := make([]int32, size)
	for i := range members {
		members[i] = int32(base + i)
	}
	var edges [][2]int32
	for u := 0; u < base; u++ {
		for _, v := range g.Neighbors(u) {
			if int32(u) < v && int(v) < base {
				edges = append(edges, [2]int32{int32(u), v})
			}
		}
	}
	// Re-attach each planted vertex to a distinct background vertex.
	if base > 0 {
		for i, m := range members {
			edges = append(edges, [2]int32{m, int32(i % base)})
		}
	}
	// Ring + chords: connect each member to its minInternalDegree
	// nearest ring neighbors (⌈d/2⌉ on each side), a d-regular-ish
	// circulant that guarantees internal degree ≥ minInternalDegree.
	half := (minInternalDegree + 1) / 2
	for i := 0; i < size; i++ {
		for o := 1; o <= half; o++ {
			j := (i + o) % size
			if i != j {
				edges = append(edges, [2]int32{members[i], members[j]})
			}
		}
	}
	// A sprinkle of random internal chords for irregularity.
	extra := size / 4
	for i := 0; i < extra; i++ {
		a := members[rng.Intn(size)]
		b := members[rng.Intn(size)]
		if a != b {
			edges = append(edges, [2]int32{a, b})
		}
	}
	return graph.MustBuild(n, edges)
}
