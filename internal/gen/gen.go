// Package gen provides the deterministic synthetic-data generators the
// reproduction uses in place of the paper's datasets (which are not
// redistributable and unavailable offline): power-law degree
// sequences, bipartite configuration-model wiring for hypergraphs,
// preferential-attachment graphs with planted dense subgraphs for the
// DIP protein-interaction networks, and banded sparse matrices at
// Matrix Market scales for Table 1.  All generators are driven by
// xrand.RNG so equal seeds give identical outputs on every platform.
package gen

import (
	"fmt"
	"sort"

	"hyperplex/internal/hypergraph"
	"hyperplex/internal/xrand"
)

// PowerLawDegreeSequence samples n degrees from P(d) ∝ d^−gamma on
// [dmin, dmax], sorted descending.  The paper's protein degree
// distribution has gamma ≈ 2.5 with degrees 1..21.
func PowerLawDegreeSequence(n int, gamma float64, dmin, dmax int, rng *xrand.RNG) []int {
	deg := make([]int, n)
	for i := range deg {
		deg[i] = rng.PowerLawInt(gamma, dmin, dmax)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(deg)))
	return deg
}

// BipartiteConfiguration wires a hypergraph with the given vertex
// degree sequence and hyperedge size sequence using the configuration
// model: vertex pin stubs are shuffled and dealt to hyperedges, then
// duplicate pins within a hyperedge are repaired by swapping with
// random stubs elsewhere.  Σ vertexDeg must equal Σ edgeSize.  If a
// duplicate cannot be repaired after a bounded number of swaps, the
// duplicate pin is dropped (shrinking that hyperedge by one); this is
// rare and only occurs for adversarial sequences.
//
// The returned edge sets are over vertex IDs 0..len(vertexDeg)-1.
func BipartiteConfiguration(vertexDeg, edgeSize []int, rng *xrand.RNG) ([][]int32, error) {
	sumV, sumE := 0, 0
	for _, d := range vertexDeg {
		if d < 0 {
			return nil, fmt.Errorf("gen: negative vertex degree %d", d)
		}
		sumV += d
	}
	for _, s := range edgeSize {
		if s < 0 {
			return nil, fmt.Errorf("gen: negative hyperedge size %d", s)
		}
		if s > len(vertexDeg) {
			return nil, fmt.Errorf("gen: hyperedge size %d exceeds vertex count %d", s, len(vertexDeg))
		}
		sumE += s
	}
	if sumV != sumE {
		return nil, fmt.Errorf("gen: degree sums disagree: Σ vertex = %d, Σ edge = %d", sumV, sumE)
	}

	stubs := make([]int32, 0, sumV)
	for v, d := range vertexDeg {
		for i := 0; i < d; i++ {
			stubs = append(stubs, int32(v))
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })

	// Deal stubs to edges.
	offsets := make([]int, len(edgeSize)+1)
	for f, s := range edgeSize {
		offsets[f+1] = offsets[f] + s
	}
	// Repair duplicates: for edge f spanning stubs[lo:hi], any repeated
	// vertex is swapped with a random stub outside [lo,hi) such that
	// neither edge ends up with a duplicate.
	edges := make([][]int32, len(edgeSize))
	edgeOf := func(pos int) int {
		// Binary search for the edge owning stub position pos.
		return sort.Search(len(offsets)-1, func(f int) bool { return offsets[f+1] > pos })
	}
	for f := range edgeSize {
		lo, hi := offsets[f], offsets[f+1]
		seen := make(map[int32]int, hi-lo) // vertex → stub position
		for p := lo; p < hi; p++ {
			v := stubs[p]
			if _, dup := seen[v]; !dup {
				seen[v] = p
				continue
			}
			repaired := false
			for attempt := 0; attempt < 64; attempt++ {
				q := rng.Intn(len(stubs))
				if q >= lo && q < hi {
					continue
				}
				w := stubs[q]
				if w == v {
					continue
				}
				if _, has := seen[w]; has {
					continue
				}
				// The other edge must not already contain v.
				g := edgeOf(q)
				glo, ghi := offsets[g], offsets[g+1]
				hasV := false
				for r := glo; r < ghi; r++ {
					if r != q && stubs[r] == v {
						hasV = true
						break
					}
				}
				if hasV {
					continue
				}
				stubs[p], stubs[q] = w, v
				seen[w] = p
				repaired = true
				break
			}
			if !repaired {
				stubs[p] = -1 // drop the duplicate pin
			}
		}
	}
	for f := range edgeSize {
		lo, hi := offsets[f], offsets[f+1]
		for p := lo; p < hi; p++ {
			if stubs[p] >= 0 {
				edges[f] = append(edges[f], stubs[p])
			}
		}
	}
	return edges, nil
}

// RandomHypergraph generates a hypergraph with nv vertices and ne
// hyperedges whose sizes are uniform in [1, maxSize] (each hyperedge's
// members drawn without replacement).
func RandomHypergraph(nv, ne, maxSize int, rng *xrand.RNG) *hypergraph.Hypergraph {
	if maxSize > nv {
		maxSize = nv
	}
	edges := make([][]int32, ne)
	for f := range edges {
		size := 1 + rng.Intn(maxSize)
		seen := make(map[int32]bool, size)
		for len(seen) < size {
			seen[int32(rng.Intn(nv))] = true
		}
		for v := range seen {
			edges[f] = append(edges[f], v)
		}
		sort.Slice(edges[f], func(i, j int) bool { return edges[f][i] < edges[f][j] })
	}
	h, err := hypergraph.FromEdgeSets(nv, edges)
	if err != nil {
		//hyperplexvet:ignore nopanic the generator emits sorted in-range members, so a build failure is a generator bug
		panic("gen: RandomHypergraph: " + err.Error())
	}
	return h
}
