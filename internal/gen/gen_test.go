package gen

import (
	"testing"
	"testing/quick"

	"hyperplex/internal/core"
	"hyperplex/internal/mmio"
	"hyperplex/internal/xrand"
)

func TestPowerLawDegreeSequence(t *testing.T) {
	rng := xrand.New(1)
	deg := PowerLawDegreeSequence(1000, 2.5, 1, 21, rng)
	if len(deg) != 1000 {
		t.Fatalf("len = %d", len(deg))
	}
	ones := 0
	for i, d := range deg {
		if d < 1 || d > 21 {
			t.Fatalf("degree %d out of [1,21]", d)
		}
		if i > 0 && deg[i-1] < d {
			t.Fatal("sequence not sorted descending")
		}
		if d == 1 {
			ones++
		}
	}
	// With gamma 2.5 the majority of degrees are 1.
	if ones < 500 {
		t.Errorf("degree-1 count = %d, want majority", ones)
	}
}

func TestPowerLawDegreeSequenceDeterministic(t *testing.T) {
	a := PowerLawDegreeSequence(100, 2.5, 1, 21, xrand.New(42))
	b := PowerLawDegreeSequence(100, 2.5, 1, 21, xrand.New(42))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed gave different sequences")
		}
	}
}

func TestBipartiteConfigurationBasic(t *testing.T) {
	rng := xrand.New(3)
	vDeg := []int{3, 2, 2, 1, 1, 1}
	eSize := []int{4, 3, 3}
	edges, err := BipartiteConfiguration(vDeg, eSize, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 3 {
		t.Fatalf("edges = %d", len(edges))
	}
	// No duplicates within an edge; total pins ≤ Σ sizes.
	pins := 0
	for f, members := range edges {
		seen := map[int32]bool{}
		for _, v := range members {
			if seen[v] {
				t.Errorf("edge %d contains %d twice", f, v)
			}
			seen[v] = true
		}
		pins += len(members)
	}
	if pins != 10 {
		t.Errorf("pins = %d, want 10 (no drops expected here)", pins)
	}
}

func TestBipartiteConfigurationErrors(t *testing.T) {
	rng := xrand.New(1)
	if _, err := BipartiteConfiguration([]int{1}, []int{2}, rng); err == nil {
		t.Error("mismatched sums accepted")
	}
	if _, err := BipartiteConfiguration([]int{-1, 3}, []int{2}, rng); err == nil {
		t.Error("negative degree accepted")
	}
	if _, err := BipartiteConfiguration([]int{2}, []int{2}, rng); err == nil {
		t.Error("edge size beyond vertex count accepted")
	}
}

func TestPropertyBipartiteConfigurationDegrees(t *testing.T) {
	// Vertex degrees of the wired hypergraph match the requested
	// sequence when no drops occur (drops only shrink).
	prop := func(seed uint64) bool {
		rng := xrand.New(seed)
		nv := 5 + rng.Intn(20)
		ne := 2 + rng.Intn(8)
		vDeg := make([]int, nv)
		total := 0
		for i := range vDeg {
			vDeg[i] = rng.Intn(3)
			total += vDeg[i]
		}
		// Distribute the total over edges without exceeding nv each.
		eSize := make([]int, ne)
		rem := total
		for f := 0; f < ne; f++ {
			max := rem
			if max > nv {
				max = nv
			}
			if f == ne-1 {
				if rem > nv {
					// Push the remainder onto the vertex side instead:
					// shrink some vertex degrees.
					for i := range vDeg {
						for vDeg[i] > 0 && rem > nv {
							vDeg[i]--
							rem--
							total--
						}
					}
				}
				eSize[f] = rem
				rem = 0
				break
			}
			s := 0
			if max > 0 {
				s = rng.Intn(max + 1)
			}
			eSize[f] = s
			rem -= s
		}
		edges, err := BipartiteConfiguration(vDeg, eSize, rng)
		if err != nil {
			return false
		}
		got := make([]int, nv)
		for _, members := range edges {
			for _, v := range members {
				got[v]++
			}
		}
		for v := range got {
			if got[v] > vDeg[v] {
				return false // can only shrink, never grow
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRandomHypergraph(t *testing.T) {
	h := RandomHypergraph(50, 30, 6, xrand.New(9))
	if h.NumVertices() != 50 || h.NumEdges() != 30 {
		t.Fatalf("shape: %v", h)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.MaxEdgeDegree() > 6 {
		t.Errorf("max edge degree %d > 6", h.MaxEdgeDegree())
	}
}

func TestPreferentialAttachment(t *testing.T) {
	g := PreferentialAttachment(500, 3, xrand.New(11))
	if g.NumVertices() != 500 {
		t.Fatalf("|V| = %d", g.NumVertices())
	}
	// Every non-seed vertex has degree ≥ m = 3.
	for v := 4; v < 500; v++ {
		if g.Degree(v) < 3 {
			t.Fatalf("vertex %d degree %d < 3", v, g.Degree(v))
		}
	}
	// Coreness bounded by m.
	maxK, _ := core.GraphMaxCore(g)
	if maxK > 3 {
		t.Errorf("PA coreness %d > m = 3", maxK)
	}
	// Heavy tail: max degree far above m.
	if g.MaxDegree() < 10 {
		t.Errorf("max degree %d suspiciously small for PA", g.MaxDegree())
	}
}

func TestPlantDenseSubgraph(t *testing.T) {
	rng := xrand.New(5)
	bg := PreferentialAttachment(800, 3, rng)
	g := PlantDenseSubgraph(bg, 33, 10, rng)
	k, in := core.GraphMaxCore(g)
	if k != 10 {
		t.Fatalf("planted max core k = %d, want 10", k)
	}
	n := 0
	for v, b := range in {
		if b {
			n++
			if v < 800-33 {
				t.Errorf("background vertex %d in the planted core", v)
			}
		}
	}
	if n != 33 {
		t.Errorf("core size = %d, want 33", n)
	}
}

func TestSyntheticMatrix(t *testing.T) {
	spec := MatrixSpec{Name: "t", Rows: 100, Cols: 100, Band: 4, BandFill: 0.5, RandomPerRow: 1, Seed: 7}
	m := SyntheticMatrix(spec)
	if m.Rows != 100 || m.Cols != 100 {
		t.Fatalf("shape %dx%d", m.Rows, m.Cols)
	}
	if m.NNZ() < 100 { // at least the diagonal
		t.Errorf("nnz = %d", m.NNZ())
	}
	for k := 0; k < m.NNZ(); k++ {
		if m.RowIdx[k] < 0 || m.RowIdx[k] >= 100 || m.ColIdx[k] < 0 || m.ColIdx[k] >= 100 {
			t.Fatalf("entry %d out of range", k)
		}
	}
	// Deterministic.
	m2 := SyntheticMatrix(spec)
	if m2.NNZ() != m.NNZ() {
		t.Error("same spec gave different matrices")
	}
	// Hypergraph conversion works.
	h, err := mmio.ToHypergraph(m)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumVertices() != 100 || h.NumEdges() != 100 {
		t.Errorf("hypergraph shape: %v", h)
	}
}

func TestTable1Specs(t *testing.T) {
	full := Table1Specs(false)
	short := Table1Specs(true)
	if len(full) != 5 || len(short) != 5 {
		t.Fatalf("spec counts: %d, %d", len(full), len(short))
	}
	for i := range full {
		if short[i].Rows >= full[i].Rows {
			t.Errorf("short spec %s not smaller", full[i].Name)
		}
		if full[i].Name == "" {
			t.Error("unnamed spec")
		}
	}
}
