package gen

import (
	"hyperplex/internal/mmio"
	"hyperplex/internal/xrand"
)

// MatrixSpec parameterizes a synthetic sparse matrix standing in for a
// Matrix Market test matrix in Table 1.  The pattern is a band of the
// given half-width around the diagonal (the dominant structure of the
// finite-element and circuit matrices the paper used) with a fraction
// of additional uniformly random fill.
type MatrixSpec struct {
	Name       string
	Rows, Cols int
	// Band is the half bandwidth; each row gets nonzeros at columns
	// j ∈ [i−Band, i+Band] with probability BandFill.
	Band     int
	BandFill float64
	// RandomPerRow adds this many uniformly random extra nonzeros per
	// row, modelling the long-range coupling entries.
	RandomPerRow int
	Seed         uint64
}

// SyntheticMatrix generates the matrix described by spec.
func SyntheticMatrix(spec MatrixSpec) *mmio.Matrix {
	rng := xrand.New(spec.Seed)
	m := &mmio.Matrix{Rows: spec.Rows, Cols: spec.Cols, Pattern: true}
	add := func(i, j int) {
		if i < 0 || i >= spec.Rows || j < 0 || j >= spec.Cols {
			return
		}
		m.RowIdx = append(m.RowIdx, int32(i))
		m.ColIdx = append(m.ColIdx, int32(j))
		m.Val = append(m.Val, 1)
	}
	for i := 0; i < spec.Rows; i++ {
		add(i, i) // always keep the diagonal
		for o := 1; o <= spec.Band; o++ {
			if rng.Float64() < spec.BandFill {
				add(i, i+o)
			}
			if rng.Float64() < spec.BandFill {
				add(i, i-o)
			}
		}
		for r := 0; r < spec.RandomPerRow; r++ {
			add(i, rng.Intn(spec.Cols))
		}
	}
	return m
}

// Table1Specs returns the synthetic stand-ins for the Matrix Market
// matrices of Table 1, at the scales of the originals (bfw398a,
// utm5940 and three matrices of the fidap/bcsstk families; the paper's
// table legend truncates the names to bfw…, fdp…, stk…, utm…, fdp…).
// The `short` variant shrinks every dimension ~8× so the full pipeline
// stays interactive in -short test runs.
func Table1Specs(short bool) []MatrixSpec {
	specs := []MatrixSpec{
		{Name: "bfw398a", Rows: 398, Cols: 398, Band: 8, BandFill: 0.55, RandomPerRow: 1, Seed: 0xbf01},
		{Name: "utm5940", Rows: 5940, Cols: 5940, Band: 10, BandFill: 0.6, RandomPerRow: 2, Seed: 0x071a},
		{Name: "fdp011", Rows: 16614, Cols: 16614, Band: 14, BandFill: 0.7, RandomPerRow: 2, Seed: 0xfd11},
		{Name: "stk32", Rows: 44609, Cols: 44609, Band: 16, BandFill: 0.7, RandomPerRow: 1, Seed: 0x5732},
		{Name: "fdpm37", Rows: 9152, Cols: 9152, Band: 30, BandFill: 0.8, RandomPerRow: 2, Seed: 0xfd37},
	}
	if short {
		for i := range specs {
			specs[i].Rows /= 8
			specs[i].Cols /= 8
			if specs[i].Rows < 64 {
				specs[i].Rows, specs[i].Cols = 64, 64
			}
		}
	}
	return specs
}
