package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestKnownStream(t *testing.T) {
	// Pin the first outputs so a refactor cannot silently change every
	// generated dataset.
	r := New(0)
	got := []uint64{r.Uint64(), r.Uint64(), r.Uint64()}
	want := []uint64{0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x6c45d188009454f}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stream[%d] = %#x, want %#x", i, got[i], want[i])
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(7)
	for i := 0; i < 1000; i++ {
		n := 1 + i%50
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d", n, v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v", f)
		}
	}
}

func TestInt63NonNegative(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		if r.Int63() < 0 {
			t.Fatal("Int63 negative")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("bad permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(5)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Error("split children identical")
	}
}

func TestPowerLawIntBounds(t *testing.T) {
	r := New(13)
	counts := map[int]int{}
	for i := 0; i < 20000; i++ {
		d := r.PowerLawInt(2.5, 1, 21)
		if d < 1 || d > 21 {
			t.Fatalf("PowerLawInt = %d", d)
		}
		counts[d]++
	}
	// Monotone-ish decay: degree 1 dominates degree 2 dominates degree 4.
	if !(counts[1] > counts[2] && counts[2] > counts[4]) {
		t.Errorf("counts not decaying: %v", counts)
	}
	// Roughly the right ratio: P(1)/P(2) ≈ 2^2.5 ≈ 5.7.
	ratio := float64(counts[1]) / float64(counts[2])
	if ratio < 3.5 || ratio > 9 {
		t.Errorf("P(1)/P(2) = %v, want ≈ 5.7", ratio)
	}
	if d := r.PowerLawInt(2.5, 4, 4); d != 4 {
		t.Errorf("degenerate PowerLawInt = %d", d)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(21)
	n := 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Errorf("variance = %v", variance)
	}
}

func TestBinomial(t *testing.T) {
	r := New(31)
	if r.Binomial(0, 0.5) != 0 || r.Binomial(10, 0) != 0 || r.Binomial(10, 1) != 10 {
		t.Error("binomial edge cases wrong")
	}
	// Small-n mean check.
	total := 0
	for i := 0; i < 5000; i++ {
		total += r.Binomial(20, 0.3)
	}
	mean := float64(total) / 5000
	if math.Abs(mean-6) > 0.3 {
		t.Errorf("Binomial(20, .3) mean = %v, want 6", mean)
	}
	// Large-n path.
	big := r.Binomial(10000, 0.5)
	if big < 4500 || big > 5500 {
		t.Errorf("Binomial(10000, .5) = %d", big)
	}
}

func TestPropertyShuffleKeepsMultiset(t *testing.T) {
	prop := func(seed uint64) bool {
		r := New(seed)
		n := 1 + int(seed%40)
		s := make([]int, n)
		for i := range s {
			s[i] = i % 7
		}
		var before [7]int
		for _, v := range s {
			before[v]++
		}
		r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
		var after [7]int
		for _, v := range s {
			after[v]++
		}
		return before == after
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
