// Package xrand provides a small, fast, deterministic random number
// generator used by every generator in this module.
//
// The module's experiments must be reproducible bit-for-bit across runs,
// Go versions and platforms, so we do not rely on math/rand (whose
// top-level functions are seeded randomly since Go 1.20, and whose
// generator algorithm is not guaranteed stable).  Instead we implement
// splitmix64, a tiny, well-studied 64-bit generator with excellent
// statistical quality for simulation workloads.
package xrand

import "math"

// RNG is a deterministic pseudo-random number generator (splitmix64).
// The zero value is a valid generator seeded with 0; use New to seed.
// RNG is not safe for concurrent use; give each goroutine its own
// generator (see Split).
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.  Equal seeds always produce
// identical streams.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives a new independent generator from r in a deterministic
// way.  It is the supported way to hand per-worker generators to
// concurrent code: the parent stream advances once, and the child is
// seeded from the drawn value.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next 64-bit value in the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n).  It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		//hyperplexvet:ignore nopanic mirrors math/rand.Intn's documented contract
		panic("xrand: Intn with non-positive n")
	}
	// Multiply-shift rejection-free mapping is fine for simulation use;
	// bias is at most n/2^64.
	return int((r.Uint64() >> 1) % uint64(n))
}

// Int63 returns a uniform non-negative 63-bit value.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle permutes n elements using the provided swap function
// (Fisher-Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a normally distributed value with mean 0 and
// standard deviation 1, using the polar (Marsaglia) method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// PowerLawInt samples an integer degree d in [dmin, dmax] with
// P(d) proportional to d^(-gamma), by inverse-transform sampling on the
// discrete distribution.  It panics on invalid bounds.
func (r *RNG) PowerLawInt(gamma float64, dmin, dmax int) int {
	if dmin < 1 || dmax < dmin {
		//hyperplexvet:ignore nopanic documented precondition, matching the math/rand panic convention for samplers
		panic("xrand: PowerLawInt bounds invalid")
	}
	if dmin == dmax {
		return dmin
	}
	// Continuous power-law inverse transform on [dmin, dmax+1), floored.
	// This matches the discrete distribution closely for gamma > 1 and is
	// O(1) per sample.
	a := 1 - gamma
	lo := math.Pow(float64(dmin), a)
	hi := math.Pow(float64(dmax+1), a)
	u := r.Float64()
	x := math.Pow(lo+u*(hi-lo), 1/a)
	d := int(x)
	if d < dmin {
		d = dmin
	}
	if d > dmax {
		d = dmax
	}
	return d
}

// Binomial samples from Binomial(n, p) by direct simulation for small n
// and a normal approximation for large n.  Used only for synthetic data
// generation where exactness of tails is not required.
func (r *RNG) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n <= 64 {
		k := 0
		for i := 0; i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	sd := math.Sqrt(mean * (1 - p))
	k := int(mean + sd*r.NormFloat64() + 0.5)
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}
