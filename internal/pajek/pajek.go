// Package pajek exports hypergraphs as Pajek .net network files and
// .clu partition files, the tool the paper used to draw Figure 3 (the
// yeast protein-complex hypergraph as a bipartite graph with its
// maximum core highlighted).
package pajek

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hyperplex/internal/failpoint"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/run"
)

// fpReadLine fires on every checkpoint of the .net reader.
var fpReadLine = failpoint.Register("pajek.read.line")

// readCheckEvery bounds how many input lines may pass between
// cancellation/budget checkpoints in ReadNetCtx.
const readCheckEvery = 256

// Fig. 3 color legend: proteins outside/inside the maximum core are
// yellow/red; complexes outside/inside are pink/green.
const (
	ColorProtein     = "Yellow"
	ColorProteinCore = "Red"
	ColorComplex     = "Pink"
	ColorComplexCore = "Green"
)

// WriteNet writes the bipartite drawing of h as a Pajek .net file.
// Vertices 1..|V| are the hypergraph's vertices, |V|+1..|V|+|F| its
// hyperedges; each pin becomes an edge.  coreV/coreF may be nil; when
// given, core members get the Fig. 3 highlight colors.
func WriteNet(w io.Writer, h *hypergraph.Hypergraph, coreV, coreF []bool) error {
	bw := bufio.NewWriter(w)
	nv, ne := h.NumVertices(), h.NumEdges()
	fmt.Fprintf(bw, "*Vertices %d\n", nv+ne)
	for v := 0; v < nv; v++ {
		name := h.VertexName(v)
		if name == "" {
			name = "v" + strconv.Itoa(v)
		}
		color := ColorProtein
		if coreV != nil && coreV[v] {
			color = ColorProteinCore
		}
		fmt.Fprintf(bw, "%d %q ic %s\n", v+1, name, color)
	}
	for f := 0; f < ne; f++ {
		name := h.EdgeName(f)
		if name == "" {
			name = "f" + strconv.Itoa(f)
		}
		color := ColorComplex
		if coreF != nil && coreF[f] {
			color = ColorComplexCore
		}
		fmt.Fprintf(bw, "%d %q ic %s\n", nv+f+1, name, color)
	}
	fmt.Fprintln(bw, "*Edges")
	for f := 0; f < ne; f++ {
		for _, v := range h.Vertices(f) {
			fmt.Fprintf(bw, "%d %d\n", int(v)+1, nv+f+1)
		}
	}
	return bw.Flush()
}

// WriteClu writes a Pajek partition file assigning class 1 to core
// proteins, 2 to non-core proteins, 3 to core complexes and 4 to
// non-core complexes (matching the four colors of Fig. 3).
func WriteClu(w io.Writer, h *hypergraph.Hypergraph, coreV, coreF []bool) error {
	bw := bufio.NewWriter(w)
	nv, ne := h.NumVertices(), h.NumEdges()
	fmt.Fprintf(bw, "*Vertices %d\n", nv+ne)
	for v := 0; v < nv; v++ {
		class := 2
		if coreV != nil && coreV[v] {
			class = 1
		}
		fmt.Fprintln(bw, class)
	}
	for f := 0; f < ne; f++ {
		class := 4
		if coreF != nil && coreF[f] {
			class = 3
		}
		fmt.Fprintln(bw, class)
	}
	return bw.Flush()
}

// maxNetVertices bounds the vertex count a *Vertices header may
// declare: the label table is allocated up front, so an unchecked
// header would let a tiny hostile file demand gigabytes.
const maxNetVertices = 1 << 22

// NetInfo is the minimal structural content of a .net file read back:
// vertex labels and the edge list (1-based IDs as stored).
type NetInfo struct {
	Labels []string
	Edges  [][2]int
}

// NetEvents receives the content of a .net file as ScanNetCtx parses
// it.  Any nil callback skips delivery of that record kind.
type NetEvents struct {
	// VertexCount is called once with the *Vertices header count n,
	// before any Vertex call.  n has already passed the maxNetVertices
	// cap, so it is safe to size allocations by.
	VertexCount func(n int) error
	// Vertex is called per vertex line with a 1-based id in [1, n] and
	// its label.
	Vertex func(id int, label string) error
	// Edge is called per edge line with the 1-based endpoint ids as
	// stored (unchecked against n, matching the written format, where
	// hyperedge nodes sit above the vertex range).
	Edge func(u, v int) error
	// ChargeBytes charges the consumed input bytes against the budget.
	// Callers that retain the file's content (ReadNetCtx) set it;
	// streaming consumers leave it false.
	ChargeBytes bool
}

// ScanNet parses the subset of the Pajek .net format emitted by
// WriteNet (a *Vertices section with quoted labels followed by an
// *Edges section) as a stream, delivering records to ev.  ReadNet and
// out-of-core ingest hooks share this scanner.
func ScanNet(r io.Reader, ev NetEvents) error {
	return ScanNetCtx(context.Background(), r, ev)
}

// ScanNetCtx is ScanNet honoring cancellation, deadline and any
// run.Budget attached to ctx, checked at entry and at bounded line
// intervals (one step per line).
func ScanNetCtx(ctx context.Context, r io.Reader, ev NetEvents) error {
	meter := run.MeterFrom(ctx)
	if err := run.Tick(ctx, meter, 0); err != nil {
		return err
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	state := 0 // 0=expect header, 1=vertices, 2=edges
	numVertices := 0
	pending, pendingBytes := 0, int64(0)
	for sc.Scan() {
		pending++
		pendingBytes += int64(len(sc.Bytes())) + 1
		if pending >= readCheckEvery {
			if err := failpoint.Inject(fpReadLine); err != nil {
				return err
			}
			if err := run.Tick(ctx, meter, int64(pending)); err != nil {
				return err
			}
			if ev.ChargeBytes {
				if err := meter.Alloc(pendingBytes); err != nil {
					return err
				}
			}
			pending, pendingBytes = 0, 0
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		lower := strings.ToLower(line)
		switch {
		case strings.HasPrefix(lower, "*vertices"):
			fields := strings.Fields(line)
			if len(fields) < 2 {
				return fmt.Errorf("pajek: bad *Vertices line %q", line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return fmt.Errorf("pajek: bad vertex count in %q", line)
			}
			if n > maxNetVertices {
				return fmt.Errorf("pajek: vertex count %d exceeds the %d limit", n, maxNetVertices)
			}
			numVertices = n
			if ev.VertexCount != nil {
				if err := ev.VertexCount(n); err != nil {
					return err
				}
			}
			state = 1
			continue
		case strings.HasPrefix(lower, "*edges") || strings.HasPrefix(lower, "*arcs"):
			state = 2
			continue
		case strings.HasPrefix(lower, "*"):
			return fmt.Errorf("pajek: unsupported section %q", line)
		}
		switch state {
		case 1:
			id, label, err := parseVertexLine(line)
			if err != nil {
				return err
			}
			if id < 1 || id > numVertices {
				return fmt.Errorf("pajek: vertex id %d out of range", id)
			}
			if ev.Vertex != nil {
				if err := ev.Vertex(id, label); err != nil {
					return err
				}
			}
		case 2:
			fields := strings.Fields(line)
			if len(fields) < 2 {
				return fmt.Errorf("pajek: bad edge line %q", line)
			}
			u, err1 := strconv.Atoi(fields[0])
			v, err2 := strconv.Atoi(fields[1])
			if err1 != nil || err2 != nil {
				return fmt.Errorf("pajek: bad edge line %q", line)
			}
			if ev.Edge != nil {
				if err := ev.Edge(u, v); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("pajek: content before *Vertices: %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("pajek: read: %w", err)
	}
	return nil
}

// ReadNet parses the subset of the Pajek .net format emitted by
// WriteNet (a *Vertices section with quoted labels followed by an
// *Edges section).  It exists so tests can verify round trips and so
// the tools can re-ingest their own exports.
func ReadNet(r io.Reader) (*NetInfo, error) {
	return ReadNetCtx(context.Background(), r)
}

// ReadNetCtx is ReadNet honoring cancellation, deadline and any
// run.Budget attached to ctx, checked at entry and at bounded line
// intervals (one step per line plus the bytes consumed are charged).
// On any error it returns (nil, err).
func ReadNetCtx(ctx context.Context, r io.Reader) (*NetInfo, error) {
	info := &NetInfo{}
	err := ScanNetCtx(ctx, r, NetEvents{
		ChargeBytes: true,
		VertexCount: func(n int) error {
			info.Labels = make([]string, n)
			return nil
		},
		Vertex: func(id int, label string) error {
			info.Labels[id-1] = label
			return nil
		},
		Edge: func(u, v int) error {
			info.Edges = append(info.Edges, [2]int{u, v})
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	return info, nil
}

func parseVertexLine(line string) (int, string, error) {
	sp := strings.IndexAny(line, " \t")
	if sp < 0 {
		return 0, "", fmt.Errorf("pajek: bad vertex line %q", line)
	}
	id, err := strconv.Atoi(line[:sp])
	if err != nil {
		return 0, "", fmt.Errorf("pajek: bad vertex id in %q", line)
	}
	rest := strings.TrimSpace(line[sp:])
	if strings.HasPrefix(rest, "\"") {
		label, err := strconv.Unquote(firstQuoted(rest))
		if err != nil {
			return 0, "", fmt.Errorf("pajek: bad label in %q", line)
		}
		return id, label, nil
	}
	return id, strings.Fields(rest)[0], nil
}

func firstQuoted(s string) string {
	// s begins with a quote; find its matching close (WriteNet uses %q,
	// so standard Go escaping applies).
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' {
			i++
			continue
		}
		if s[i] == '"' {
			return s[:i+1]
		}
	}
	return s
}
