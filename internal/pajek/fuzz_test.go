package pajek

import (
	"bufio"
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// renderNet re-emits a NetInfo the way WriteNet renders hypergraphs,
// so the fuzz target can require parse→render→parse stability for any
// accepted input (WriteNet itself starts from a hypergraph, which
// arbitrary .net files do not correspond to).
func renderNet(info *NetInfo) string {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	fmt.Fprintf(bw, "*Vertices %d\n", len(info.Labels))
	for i, label := range info.Labels {
		fmt.Fprintf(bw, "%d %q\n", i+1, label)
	}
	fmt.Fprintln(bw, "*Edges")
	for _, e := range info.Edges {
		fmt.Fprintf(bw, "%d %d\n", e[0], e[1])
	}
	bw.Flush()
	return buf.String()
}

// FuzzReadPajek feeds arbitrary bytes to the .net parser.  Every
// accepted input must re-render and re-parse to the identical NetInfo.
func FuzzReadPajek(f *testing.F) {
	f.Add("*Vertices 3\n1 \"a\" ic Yellow\n2 \"b\" ic Red\n3 \"f0\" ic Pink\n*Edges\n1 3\n2 3\n")
	f.Add("*Vertices 2\n1 plain\n2 \"esc\\\"aped\"\n*Arcs\n1 2\n")
	f.Add("*Vertices 0\n*Edges\n")
	f.Add("% comment\n*Vertices 1\n1 \"x\"\n")
	f.Fuzz(func(t *testing.T, data string) {
		info, err := ReadNet(strings.NewReader(data))
		if err != nil {
			return
		}
		info2, err := ReadNet(strings.NewReader(renderNet(info)))
		if err != nil {
			t.Fatalf("re-read of rendered output: %v", err)
		}
		if len(info.Labels) != len(info2.Labels) || len(info.Edges) != len(info2.Edges) {
			t.Fatalf("round trip changed shape: %d/%d labels, %d/%d edges",
				len(info.Labels), len(info2.Labels), len(info.Edges), len(info2.Edges))
		}
		for i := range info.Labels {
			if info.Labels[i] != info2.Labels[i] {
				t.Fatalf("label %d changed: %q to %q", i, info.Labels[i], info2.Labels[i])
			}
		}
		for i := range info.Edges {
			if info.Edges[i] != info2.Edges[i] {
				t.Fatalf("edge %d changed: %v to %v", i, info.Edges[i], info2.Edges[i])
			}
		}
	})
}
