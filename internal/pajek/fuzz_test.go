package pajek

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"hyperplex/internal/run"
)

// renderNet re-emits a NetInfo the way WriteNet renders hypergraphs,
// so the fuzz target can require parse→render→parse stability for any
// accepted input (WriteNet itself starts from a hypergraph, which
// arbitrary .net files do not correspond to).
func renderNet(info *NetInfo) string {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	fmt.Fprintf(bw, "*Vertices %d\n", len(info.Labels))
	for i, label := range info.Labels {
		fmt.Fprintf(bw, "%d %q\n", i+1, label)
	}
	fmt.Fprintln(bw, "*Edges")
	for _, e := range info.Edges {
		fmt.Fprintf(bw, "%d %d\n", e[0], e[1])
	}
	bw.Flush()
	return buf.String()
}

// FuzzReadPajek feeds arbitrary bytes to the .net parser.  Every
// accepted input must re-render and re-parse to the identical NetInfo.
func FuzzReadPajek(f *testing.F) {
	f.Add("*Vertices 3\n1 \"a\" ic Yellow\n2 \"b\" ic Red\n3 \"f0\" ic Pink\n*Edges\n1 3\n2 3\n")
	f.Add("*Vertices 2\n1 plain\n2 \"esc\\\"aped\"\n*Arcs\n1 2\n")
	f.Add("*Vertices 0\n*Edges\n")
	f.Add("% comment\n*Vertices 1\n1 \"x\"\n")
	// Enough lines to cross the reader's periodic checkpoint (256).
	f.Add("*Vertices 2\n1 \"a\"\n2 \"b\"\n*Edges\n" + strings.Repeat("1 2\n", 300))
	f.Fuzz(func(t *testing.T, data string) {
		// A pre-cancelled context surfaces context.Canceled for every
		// input — never a partial parse or another error class.
		cctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := ReadNetCtx(cctx, strings.NewReader(data)); !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled ReadNetCtx of %q: got %v, want context.Canceled", data, err)
		}
		info, err := ReadNet(strings.NewReader(data))
		if err != nil {
			return
		}
		// A starved step budget must either reproduce the unbudgeted
		// parse or fail with a clean ErrBudgetExceeded.
		bctx, _ := run.WithBudget(context.Background(), run.Budget{MaxSteps: 128})
		switch ib, berr := ReadNetCtx(bctx, strings.NewReader(data)); {
		case berr == nil:
			if len(ib.Labels) != len(info.Labels) || len(ib.Edges) != len(info.Edges) {
				t.Fatalf("budgeted ReadNetCtx of %q changed shape: %d/%d to %d/%d", data,
					len(info.Labels), len(info.Edges), len(ib.Labels), len(ib.Edges))
			}
		case errors.Is(berr, run.ErrBudgetExceeded):
		default:
			t.Fatalf("budgeted ReadNetCtx of %q: got %v, want success or ErrBudgetExceeded", data, berr)
		}
		info2, err := ReadNet(strings.NewReader(renderNet(info)))
		if err != nil {
			t.Fatalf("re-read of rendered output: %v", err)
		}
		if len(info.Labels) != len(info2.Labels) || len(info.Edges) != len(info2.Edges) {
			t.Fatalf("round trip changed shape: %d/%d labels, %d/%d edges",
				len(info.Labels), len(info2.Labels), len(info.Edges), len(info2.Edges))
		}
		for i := range info.Labels {
			if info.Labels[i] != info2.Labels[i] {
				t.Fatalf("label %d changed: %q to %q", i, info.Labels[i], info2.Labels[i])
			}
		}
		for i := range info.Edges {
			if info.Edges[i] != info2.Edges[i] {
				t.Fatalf("edge %d changed: %v to %v", i, info.Edges[i], info2.Edges[i])
			}
		}
	})
}
