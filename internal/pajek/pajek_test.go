package pajek

import (
	"bytes"
	"strings"
	"testing"

	"hyperplex/internal/hypergraph"
)

func sample(t *testing.T) *hypergraph.Hypergraph {
	t.Helper()
	b := hypergraph.NewBuilder()
	b.AddEdge("c1", "a", "b")
	b.AddEdge("c2", "b", "c")
	return b.MustBuild()
}

func TestWriteNetAndReadBack(t *testing.T) {
	h := sample(t)
	coreV := []bool{false, true, true}
	coreF := []bool{false, true}
	var buf bytes.Buffer
	if err := WriteNet(&buf, h, coreV, coreF); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "*Vertices 5") {
		t.Errorf("missing vertex count header:\n%s", out)
	}
	if !strings.Contains(out, ColorProteinCore) || !strings.Contains(out, ColorComplexCore) {
		t.Error("core colors missing")
	}
	info, err := ReadNet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Labels) != 5 {
		t.Fatalf("labels = %v", info.Labels)
	}
	if info.Labels[0] != "a" || info.Labels[3] != "c1" {
		t.Errorf("labels = %v", info.Labels)
	}
	if len(info.Edges) != h.NumPins() {
		t.Errorf("edges = %d, want %d", len(info.Edges), h.NumPins())
	}
	// First pin: a (1) — c1 (4).
	if info.Edges[0] != [2]int{1, 4} {
		t.Errorf("first edge = %v", info.Edges[0])
	}
}

func TestWriteNetNilCores(t *testing.T) {
	h := sample(t)
	var buf bytes.Buffer
	if err := WriteNet(&buf, h, nil, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, ColorProteinCore) || strings.Contains(out, ColorComplexCore) {
		t.Error("core colors present without core slices")
	}
}

func TestWriteClu(t *testing.T) {
	h := sample(t)
	var buf bytes.Buffer
	if err := WriteClu(&buf, h, []bool{true, false, false}, []bool{false, true}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Header + 3 proteins + 2 complexes.
	if len(lines) != 6 {
		t.Fatalf("lines = %v", lines)
	}
	want := []string{"*Vertices 5", "1", "2", "2", "4", "3"}
	for i, w := range want {
		if lines[i] != w {
			t.Errorf("line %d = %q, want %q", i, lines[i], w)
		}
	}
}

func TestReadNetErrors(t *testing.T) {
	cases := map[string]string{
		"content before section": "1 \"a\"\n",
		"bad vertex count":       "*Vertices x\n",
		"unsupported section":    "*Vertices 1\n1 \"a\"\n*Matrix\n",
		"vertex out of range":    "*Vertices 1\n2 \"b\"\n",
		"bad edge":               "*Vertices 1\n1 \"a\"\n*Edges\n1\n",
	}
	for name, in := range cases {
		if _, err := ReadNet(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted invalid input", name)
		}
	}
}

func TestReadNetQuotedLabelWithSpace(t *testing.T) {
	in := "*Vertices 1\n1 \"protein X\" ic Yellow\n*Edges\n"
	info, err := ReadNet(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if info.Labels[0] != "protein X" {
		t.Errorf("label = %q", info.Labels[0])
	}
}
