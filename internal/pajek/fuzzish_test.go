package pajek

import (
	"strings"
	"testing"
	"testing/quick"

	"hyperplex/internal/xrand"
)

func TestReadNetNeverPanics(t *testing.T) {
	prop := func(seed uint64) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		rng := xrand.New(seed)
		chars := []byte("*VerticesEdges 0123456789\"\\ \nic Yellow")
		var sb strings.Builder
		if seed%2 == 0 {
			sb.WriteString("*Vertices 3\n")
		}
		n := rng.Intn(250)
		for i := 0; i < n; i++ {
			sb.WriteByte(chars[rng.Intn(len(chars))])
		}
		_, _ = ReadNet(strings.NewReader(sb.String()))
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
