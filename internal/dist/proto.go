// Package dist executes the sharded core decomposition across OS
// processes: a coordinator partitions the hypergraph, ships shard
// assignments to worker processes over a length-prefixed binary wire
// protocol, drives the bulk-synchronous rounds with broadcast deltas
// (dying hyperedges, retired vertices), and collects a barrier
// snapshot of every shard each round.  Workers that die — connection
// error, missed heartbeats, corrupt frame, injected fault — have their
// shards reassigned to survivors and the round replays from the last
// completed barrier; with Options.LocalFallback an unrecoverable pool
// collapses the run onto the in-process sharded engine instead of
// failing.  The peel itself is internal/core's DistPeeler, whose
// broadcast schedule reproduces Decompose's coreness exactly.
package dist

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"

	"hyperplex/internal/core"
	"hyperplex/internal/csr"
	"hyperplex/internal/failpoint"
	"hyperplex/internal/partition"
)

// fpSend fires before every frame write, so chaos tests can inject
// transient send failures (retried with backoff) and hard ones.
var fpSend = failpoint.Register("dist.send")

// fpRecv fires before every frame read, so chaos tests can fail or
// stall the receive path of either end.
var fpRecv = failpoint.Register("dist.recv")

// Wire format: every frame is a 12-byte header followed by a payload.
//
//	offset 0: magic "hx"
//	offset 2: protocol version (protoVersion)
//	offset 3: frame type
//	offset 4: payload length, uint32 little-endian
//	offset 8: CRC32 (IEEE) of the payload
//
// The decoder validates magic, version, type and length against a hard
// cap before allocating, and the checksum after reading, so a corrupt
// or adversarial peer costs at most one bounded allocation and
// surfaces as ErrCorruptFrame — never a crash or an allocation bomb.
// Inside payloads every slice is count-prefixed, and the count is
// validated against the bytes actually present before the slice is
// allocated (the same allocation-capped discipline as the mmio and
// pajek readers).
const (
	protoVersion = 1
	headerLen    = 12
	// maxFramePayload caps a frame's payload allocation.  The largest
	// legitimate frame is the Load graph blob; 1 GiB leaves room for
	// hypergraphs far beyond the in-RAM engines while still bounding a
	// hostile length field.
	maxFramePayload = 1 << 30
)

var frameMagic = [2]byte{'h', 'x'}

// Frame types.  Coordinator→worker frames carry the coordinator's
// epoch; worker→coordinator frames echo it, so replies raced by a
// recovery are recognized as stale and dropped.
//
//hyperplexvet:wiretypes
const (
	mHello     = byte(iota + 1) // w→c: protocol version
	mLoad                       // c→w: shard descriptors + serialized hypergraph
	mAssign                     // c→w: fresh shards to set up, or snapshots to restore
	mRollback                   // c→w: restore the checkpoint at (k, round); round -1 = full reset
	mApply                      // c→w: apply dying delta at threshold k, gather frontier
	mFrontier                   // w→c: frontier size + alive count vote
	mRetire                     // c→w: collect the gathered frontier
	mRetired                    // w→c: retired vertex IDs
	mShrink                     // c→w: apply retired delta, re-check shrunk edges
	mBarrier                    // w→c: per-shard barrier snapshots (the vote + replay state)
	mFinish                     // c→w: send the final coreness mirrors
	mResult                     // w→c: vertex + hyperedge coreness
	mHeartbeat                  // w→c: liveness beacon
	mShutdown                   // c→w: exit cleanly
	mError                      // w→c: typed failure report
	mTypeMax
)

// ErrCorruptFrame reports a frame that failed structural validation or
// its checksum; the connection it arrived on is unusable afterwards.
var ErrCorruptFrame = errors.New("dist: corrupt frame")

// writeFrame encodes and writes one frame.  The failpoint fires before
// any bytes hit the wire, so an injected failure never half-writes.
//
//hyperplexvet:wiresend
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if err := failpoint.Inject(fpSend); err != nil {
		return fmt.Errorf("dist: send: %w", err)
	}
	if len(payload) > maxFramePayload {
		return fmt.Errorf("dist: send: %d-byte payload exceeds the %d cap", len(payload), maxFramePayload)
	}
	var hdr [headerLen]byte
	hdr[0], hdr[1] = frameMagic[0], frameMagic[1]
	hdr[2] = protoVersion
	hdr[3] = typ
	binary.LittleEndian.PutUint32(hdr[4:8], lenU32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("dist: send: %w", err)
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return fmt.Errorf("dist: send: %w", err)
		}
	}
	return nil
}

// sendRetry is writeFrame with bounded retry-with-backoff on transient
// failures: injected faults and network timeouts back off 1, 2, 4…
// milliseconds; hard errors (a broken connection) return immediately.
// The backoff waits on ctx, so a cancelled peel abandons the retry
// sequence at the next attempt boundary instead of sleeping it out.
//
//hyperplexvet:wiresend
func sendRetry(ctx context.Context, w io.Writer, typ byte, payload []byte, retries int) error {
	backoff := time.Millisecond
	for attempt := 0; ; attempt++ {
		err := writeFrame(w, typ, payload)
		if err == nil {
			return nil
		}
		var nerr interface{ Timeout() bool }
		transient := errors.Is(err, failpoint.ErrInjected) ||
			(errors.As(err, &nerr) && nerr.Timeout())
		if !transient || attempt >= retries {
			return err
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("dist: send retry abandoned: %w", ctx.Err())
		case <-time.After(backoff):
		}
		backoff *= 2
	}
}

// readFrame reads and validates one frame.  maxPayload further
// restricts the global cap for peers that should never send large
// frames (workers, for everything except Result).
func readFrame(r io.Reader, maxPayload uint32) (typ byte, payload []byte, err error) {
	if err := failpoint.Inject(fpRecv); err != nil {
		return 0, nil, fmt.Errorf("dist: recv: %w", err)
	}
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("dist: recv: %w", err)
	}
	if hdr[0] != frameMagic[0] || hdr[1] != frameMagic[1] {
		return 0, nil, fmt.Errorf("%w: bad magic %q", ErrCorruptFrame, hdr[:2])
	}
	if hdr[2] != protoVersion {
		return 0, nil, fmt.Errorf("%w: protocol version %d, want %d", ErrCorruptFrame, hdr[2], protoVersion)
	}
	typ = hdr[3]
	if typ == 0 || typ >= mTypeMax {
		return 0, nil, fmt.Errorf("%w: unknown frame type %d", ErrCorruptFrame, typ)
	}
	n := binary.LittleEndian.Uint32(hdr[4:8])
	if n > maxPayload {
		return 0, nil, fmt.Errorf("%w: %d-byte payload exceeds the %d cap", ErrCorruptFrame, n, maxPayload)
	}
	if n > 0 {
		payload = make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return 0, nil, fmt.Errorf("dist: recv: %w", err)
		}
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[8:12]) {
		return 0, nil, fmt.Errorf("%w: payload checksum mismatch", ErrCorruptFrame)
	}
	return typ, payload, nil
}

// lenU32 narrows a length or count for the wire.  Routing it through
// csr.MustInt32 fails loudly instead of truncating: a count beyond the
// int32 index space cannot have come from a well-formed in-memory
// structure, so framing it would only smuggle the corruption across
// the connection.
func lenU32(n int) uint32 {
	return uint32(csr.MustInt32(n))
}

// enc is an append-only payload builder.
type enc struct{ b []byte }

func (e *enc) u32(x uint32) {
	e.b = binary.LittleEndian.AppendUint32(e.b, x)
}
func (e *enc) i32(x int32) { e.u32(uint32(x)) }
func (e *enc) i32s(xs []int32) {
	e.u32(lenU32(len(xs)))
	for _, x := range xs {
		e.i32(x)
	}
}
func (e *enc) bytes(b []byte) {
	e.u32(lenU32(len(b)))
	e.b = append(e.b, b...)
}

// dec is a bounds-checked payload reader: every count is validated
// against the bytes still present before anything is allocated, and
// the first error sticks.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrCorruptFrame, fmt.Sprintf(format, args...))
	}
}

func (d *dec) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 4 {
		d.fail("truncated u32")
		return 0
	}
	x := binary.LittleEndian.Uint32(d.b[:4])
	d.b = d.b[4:]
	return x
}

func (d *dec) i32() int32 { return int32(d.u32()) }

func (d *dec) i32s() []int32 {
	n := d.u32()
	if d.err != nil {
		return nil
	}
	if uint64(n)*4 > uint64(len(d.b)) {
		d.fail("int32 slice count %d exceeds %d remaining bytes", n, len(d.b))
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(d.b[4*i:]))
	}
	d.b = d.b[4*n:]
	return out
}

func (d *dec) bytes() []byte {
	n := d.u32()
	if d.err != nil {
		return nil
	}
	if uint64(n) > uint64(len(d.b)) {
		d.fail("byte blob count %d exceeds %d remaining bytes", n, len(d.b))
		return nil
	}
	out := d.b[:n:n]
	d.b = d.b[n:]
	return out
}

// done returns the sticky error, or complains about trailing garbage.
func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorruptFrame, len(d.b))
	}
	return nil
}

// snapshot encoding, shared by Assign and Barrier frames.

func encSnapshot(e *enc, sn *core.ShardSnapshot) {
	e.i32(sn.Shard)
	e.i32(sn.AliveV)
	e.i32s(sn.Deg)
	e.i32s(sn.Dying)
}

func decSnapshot(d *dec) *core.ShardSnapshot {
	sn := &core.ShardSnapshot{Shard: d.i32(), AliveV: d.i32()}
	sn.Deg = d.i32s()
	sn.Dying = d.i32s()
	return sn
}

func encSnapshots(e *enc, snaps []*core.ShardSnapshot) {
	e.u32(lenU32(len(snaps)))
	//hyperplexvet:ignore budgettick bounded: one encoding pass over the snapshots being framed; the caller's send path checks ctx
	for _, sn := range snaps {
		encSnapshot(e, sn)
	}
}

func decSnapshots(d *dec) []*core.ShardSnapshot {
	n := d.u32()
	if d.err != nil {
		return nil
	}
	// Each snapshot is at least 4 int32s (shard, alive, two counts).
	if uint64(n)*16 > uint64(len(d.b)) {
		d.fail("snapshot count %d exceeds %d remaining bytes", n, len(d.b))
		return nil
	}
	out := make([]*core.ShardSnapshot, 0, n)
	//hyperplexvet:ignore budgettick bounded: one decoding pass over a length-validated payload; the read loop checks ctx per frame
	for i := uint32(0); i < n && d.err == nil; i++ {
		out = append(out, decSnapshot(d))
	}
	return out
}

// msgHello is the worker's join handshake: its protocol version and
// the worker ID the spawner assigned it.  The ID is what lets the
// coordinator pair an accepted connection with the process it spawned
// — dial order is not spawn order.
type msgHello struct {
	Version uint32
	ID      int32
}

func (m *msgHello) encode() []byte { var e enc; e.u32(m.Version); e.i32(m.ID); return e.b }
func (m *msgHello) decode(b []byte) error {
	d := dec{b: b}
	m.Version = d.u32()
	m.ID = d.i32()
	return d.done()
}

// msgLoad ships the problem: the partition's shard descriptors and the
// hypergraph structure as flat member rows.  IDs — not names — are
// what the decomposition consumes, so the structural encoding keeps
// every worker's vertex and hyperedge numbering bit-identical to the
// coordinator's.
type msgLoad struct {
	Epoch uint32
	Descs []partition.Desc
	NumV  int32
	Edges [][]int32 // member vertex IDs per hyperedge, in edge order
}

func (m *msgLoad) encode() []byte {
	var e enc
	e.u32(m.Epoch)
	e.u32(lenU32(len(m.Descs)))
	for _, d := range m.Descs {
		e.i32(d.First)
		e.i32(d.Count)
	}
	e.i32(m.NumV)
	e.u32(lenU32(len(m.Edges)))
	//hyperplexvet:ignore budgettick bounded: one encoding pass over the hypergraph being shipped; the caller's send path checks ctx
	for _, members := range m.Edges {
		e.i32s(members)
	}
	return e.b
}

func (m *msgLoad) decode(b []byte) error {
	d := dec{b: b}
	m.Epoch = d.u32()
	n := d.u32()
	if d.err == nil && uint64(n)*8 > uint64(len(d.b)) {
		d.fail("descriptor count %d exceeds %d remaining bytes", n, len(d.b))
	}
	if d.err == nil {
		m.Descs = make([]partition.Desc, n)
		for i := range m.Descs {
			m.Descs[i].First = d.i32()
			m.Descs[i].Count = d.i32()
		}
	}
	m.NumV = d.i32()
	ne := d.u32()
	// Each hyperedge row costs at least its 4-byte count.
	if d.err == nil && uint64(ne)*4 > uint64(len(d.b)) {
		d.fail("hyperedge count %d exceeds %d remaining bytes", ne, len(d.b))
	}
	if d.err == nil {
		m.Edges = make([][]int32, ne)
		//hyperplexvet:ignore budgettick bounded: one decoding pass over a length-validated payload; the read loop checks ctx per frame
		for i := range m.Edges {
			m.Edges[i] = d.i32s()
			if d.err != nil {
				break
			}
		}
	}
	return d.done()
}

// msgAssign hands shards to a worker: Fresh ones are set up from the
// initial state (and answered with a Barrier frame carrying their
// round-0 snapshots), Snaps are restored from barrier snapshots during
// recovery.
type msgAssign struct {
	Epoch uint32
	K     int32
	Round int32
	Fresh []int32
	Snaps []*core.ShardSnapshot
}

func (m *msgAssign) encode() []byte {
	var e enc
	e.u32(m.Epoch)
	e.i32(m.K)
	e.i32(m.Round)
	e.i32s(m.Fresh)
	encSnapshots(&e, m.Snaps)
	return e.b
}

func (m *msgAssign) decode(b []byte) error {
	d := dec{b: b}
	m.Epoch = d.u32()
	m.K = d.i32()
	m.Round = d.i32()
	m.Fresh = d.i32s()
	m.Snaps = decSnapshots(&d)
	return d.done()
}

// msgRound is the shared shape of the per-round frames: Apply and
// Shrink carry a delta, Frontier carries the vote counts, Rollback
// carries only the barrier tag (Round -1 means full reset), Retire and
// the worker's Retired reply carry the frontier.
type msgRound struct {
	Epoch uint32
	K     int32
	Round int32
	IDs   []int32 // dying (Apply), retired (Shrink, Retired); nil otherwise
	A, B  int32   // Frontier vote: frontier size, alive owned vertices
}

func (m *msgRound) encode() []byte {
	var e enc
	e.u32(m.Epoch)
	e.i32(m.K)
	e.i32(m.Round)
	e.i32s(m.IDs)
	e.i32(m.A)
	e.i32(m.B)
	return e.b
}

func (m *msgRound) decode(b []byte) error {
	d := dec{b: b}
	m.Epoch = d.u32()
	m.K = d.i32()
	m.Round = d.i32()
	m.IDs = d.i32s()
	m.A = d.i32()
	m.B = d.i32()
	return d.done()
}

// msgBarrier is the worker's end-of-round vote and replay state: one
// snapshot per owned shard.
type msgBarrier struct {
	Epoch uint32
	K     int32
	Round int32
	Snaps []*core.ShardSnapshot
}

func (m *msgBarrier) encode() []byte {
	var e enc
	e.u32(m.Epoch)
	e.i32(m.K)
	e.i32(m.Round)
	encSnapshots(&e, m.Snaps)
	return e.b
}

func (m *msgBarrier) decode(b []byte) error {
	d := dec{b: b}
	m.Epoch = d.u32()
	m.K = d.i32()
	m.Round = d.i32()
	m.Snaps = decSnapshots(&d)
	return d.done()
}

// msgResult carries a replica's full coreness mirrors.
type msgResult struct {
	Epoch        uint32
	VCore, ECore []int32
}

func (m *msgResult) encode() []byte {
	var e enc
	e.u32(m.Epoch)
	e.i32s(m.VCore)
	e.i32s(m.ECore)
	return e.b
}

func (m *msgResult) decode(b []byte) error {
	d := dec{b: b}
	m.Epoch = d.u32()
	m.VCore = d.i32s()
	m.ECore = d.i32s()
	return d.done()
}

// msgError is a worker's typed failure report.
type msgError struct {
	Epoch uint32
	Text  string
}

func (m *msgError) encode() []byte {
	var e enc
	e.u32(m.Epoch)
	e.bytes([]byte(m.Text))
	return e.b
}

func (m *msgError) decode(b []byte) error {
	d := dec{b: b}
	m.Epoch = d.u32()
	m.Text = string(d.bytes())
	return d.done()
}

// peekEpoch reads the leading epoch shared by every worker reply
// without consuming the payload.
func peekEpoch(payload []byte) (uint32, bool) {
	if len(payload) < 4 {
		return 0, false
	}
	return binary.LittleEndian.Uint32(payload[:4]), true
}

// coreInt32 narrows a coreness array for the wire; coreness is bounded
// by the vertex degree, which is int32 already.
func coreInt32(xs []int) []int32 {
	out := make([]int32, len(xs))
	for i, x := range xs {
		if x > math.MaxInt32 {
			x = math.MaxInt32
		}
		out[i] = int32(x)
	}
	return out
}

// coreInt widens a wire coreness array.
func coreInt(xs []int32) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = int(x)
	}
	return out
}
