package dist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"hyperplex/internal/core"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/partition"
	"hyperplex/internal/run"
)

// Options configures a distributed decomposition.
type Options struct {
	// Workers is the worker pool size.  ≤ 0 selects 2.  The pool is
	// capped at the shard count: a worker holds a full replica, so
	// shardless workers only add memory.
	Workers int
	// Shards is the partition width, under the same policy as
	// core.ShardedOptions (≤ 0 → NumCPU, clamped to the vertex count).
	Shards int
	// WorkerCommand, when non-empty, is the argv prefix used to spawn
	// each worker as an OS process (typically {"hgshardd"}); the
	// coordinator appends -connect/-heartbeat flags.  When empty,
	// workers run as in-process goroutines dialing the same TCP
	// loopback listener — the full wire path without process spawning.
	WorkerCommand []string
	// LocalFallback collapses an unrecoverable worker pool onto the
	// in-process sharded engine instead of failing.
	LocalFallback bool
	// HeartbeatInterval is the worker beacon period (default 100ms); a
	// worker silent for 4 intervals is declared dead.
	HeartbeatInterval time.Duration
	// PhaseTimeout bounds every protocol phase: worker join, load, and
	// each await of a round reply.  Defaults to 30s.
	PhaseTimeout time.Duration
	// SendRetries bounds retry-with-backoff on transient send failures
	// (default 3).
	SendRetries int
	// MaxRecoveries bounds worker-death recoveries before the pool is
	// declared failed (default 3).
	MaxRecoveries int
	// Listen is the coordinator's listen address (default
	// "127.0.0.1:0").
	Listen string
	// WorkerStderr receives spawned worker processes' stderr; nil
	// discards it.
	WorkerStderr io.Writer

	// OnBarrier, when set, runs on the coordinator after every
	// committed barrier with the barrier's (k, round) tag and a kill
	// switch that severs a live worker's connection.  It exists as the
	// deterministic worker-death harness for this package's tests and
	// the chaos suite; production callers leave it nil.
	OnBarrier func(k, round int32, kill func(worker int))
}

func (o Options) normalized(h *hypergraph.Hypergraph) Options {
	o.Shards = partition.NormalizeShards(o.Shards, h.NumVertices())
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.Workers > o.Shards {
		o.Workers = o.Shards
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 100 * time.Millisecond
	}
	if o.PhaseTimeout <= 0 {
		o.PhaseTimeout = 30 * time.Second
	}
	if o.SendRetries <= 0 {
		o.SendRetries = 3
	}
	if o.MaxRecoveries <= 0 {
		o.MaxRecoveries = 3
	}
	if o.Listen == "" {
		o.Listen = "127.0.0.1:0"
	}
	return o
}

// ErrPoolFailed reports that the worker pool collapsed beyond
// recovery: no workers joined, every worker died, or the recovery
// budget ran out.  With Options.LocalFallback the run degrades to the
// in-process engine instead of surfacing this.
var ErrPoolFailed = errors.New("dist: worker pool failed")

// Decompose runs the distributed core decomposition of h and returns
// a result exactly equal to core.Decompose's coreness and MaxK.
func Decompose(h *hypergraph.Hypergraph, opts Options) (*core.Decomposition, error) {
	return DecomposeCtx(context.Background(), h, opts)
}

// DecomposeCtx is Decompose honoring cancellation, deadline and any
// run.Budget attached to ctx.  Worker deaths are recovered by shard
// reassignment and replay from the last completed barrier; only a
// pool-level collapse fails the run (or, with Options.LocalFallback,
// degrades it to core.ShardedDecomposeCtx).  Context and budget errors
// are never masked by the fallback.
func DecomposeCtx(ctx context.Context, h *hypergraph.Hypergraph, opts Options) (*core.Decomposition, error) {
	meter := run.MeterFrom(ctx)
	if err := run.Tick(ctx, meter, 0); err != nil {
		return nil, err
	}
	opts = opts.normalized(h)
	d, err := runCoordinator(ctx, meter, h, opts)
	if err != nil && opts.LocalFallback && errors.Is(err, ErrPoolFailed) {
		return core.ShardedDecomposeCtx(ctx, h, core.ShardedOptions{Shards: opts.Shards})
	}
	if err != nil {
		return nil, fmt.Errorf("dist: %w", err)
	}
	return d, nil
}
