package dist

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"strings"
	"testing"
	"time"

	"hyperplex/internal/core"
	"hyperplex/internal/failpoint"
	"hyperplex/internal/partition"
)

// frameBytes builds a valid frame for test and fuzz seeds.
func frameBytes(t testing.TB, typ byte, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := writeFrame(&buf, typ, payload); err != nil {
		t.Fatalf("writeFrame: %v", err)
	}
	return buf.Bytes()
}

func TestFrameRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xAB}, 4096)} {
		raw := frameBytes(t, mApply, payload)
		typ, got, err := readFrame(bytes.NewReader(raw), maxFramePayload)
		if err != nil {
			t.Fatalf("readFrame: %v", err)
		}
		if typ != mApply || !bytes.Equal(got, payload) {
			t.Fatalf("round-trip mismatch: typ=%d len=%d", typ, len(got))
		}
	}
}

func TestFrameRejectsCorruption(t *testing.T) {
	base := frameBytes(t, mBarrier, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	cases := map[string][]byte{
		"bad magic":   append([]byte{'z', 'z'}, base[2:]...),
		"bad version": append([]byte{'h', 'x', 99}, base[3:]...),
		"bad type":    append([]byte{'h', 'x', protoVersion, 200}, base[4:]...),
		"flipped payload": func() []byte {
			b := append([]byte(nil), base...)
			b[headerLen] ^= 0xFF
			return b
		}(),
		"flipped checksum": func() []byte {
			b := append([]byte(nil), base...)
			b[8] ^= 0xFF
			return b
		}(),
	}
	for name, raw := range cases {
		if _, _, err := readFrame(bytes.NewReader(raw), maxFramePayload); !errors.Is(err, ErrCorruptFrame) {
			t.Errorf("%s: err = %v, want ErrCorruptFrame", name, err)
		}
	}
	if _, _, err := readFrame(bytes.NewReader(base[:7]), maxFramePayload); err == nil {
		t.Error("truncated header accepted")
	}
	if _, _, err := readFrame(bytes.NewReader(base[:len(base)-3]), maxFramePayload); err == nil {
		t.Error("truncated payload accepted")
	}
}

// TestFrameLengthCap pins the allocation-capped decode: a frame whose
// header claims a payload beyond the cap is rejected from the header
// alone, before any payload allocation.
func TestFrameLengthCap(t *testing.T) {
	hdr := make([]byte, headerLen)
	hdr[0], hdr[1], hdr[2], hdr[3] = 'h', 'x', protoVersion, mApply
	binary.LittleEndian.PutUint32(hdr[4:8], 1<<31)
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.ChecksumIEEE(nil))
	_, _, err := readFrame(bytes.NewReader(hdr), 1<<20)
	if !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("oversized length: err = %v, want ErrCorruptFrame", err)
	}
}

func TestMessageRoundTrips(t *testing.T) {
	snaps := []*core.ShardSnapshot{
		{Shard: 0, AliveV: 5, Deg: []int32{1, 2, 3}, Dying: []int32{9}},
		{Shard: 2, AliveV: 0, Deg: nil, Dying: nil},
	}
	load := msgLoad{
		Epoch: 7,
		Descs: []partition.Desc{{First: 0, Count: 3}, {First: 3, Count: 2}},
		NumV:  5,
		Edges: [][]int32{{0, 1, 2}, {}, {3, 4}},
	}
	var load2 msgLoad
	if err := load2.decode(load.encode()); err != nil {
		t.Fatalf("load decode: %v", err)
	}
	if len(load2.Descs) != 2 || load2.Descs[1].First != 3 || load2.Epoch != 7 ||
		load2.NumV != 5 || len(load2.Edges) != 3 || len(load2.Edges[1]) != 0 || load2.Edges[2][1] != 4 {
		t.Fatalf("load round-trip mismatch: %+v", load2)
	}

	asn := msgAssign{Epoch: 3, K: 2, Round: 5, Fresh: []int32{1, 4}, Snaps: snaps}
	var asn2 msgAssign
	if err := asn2.decode(asn.encode()); err != nil {
		t.Fatalf("assign decode: %v", err)
	}
	if len(asn2.Snaps) != 2 || asn2.Snaps[0].AliveV != 5 || asn2.Snaps[0].Deg[2] != 3 || asn2.Snaps[1].Shard != 2 {
		t.Fatalf("assign round-trip mismatch: %+v", asn2)
	}

	rd := msgRound{Epoch: 1, K: 4, Round: 9, IDs: []int32{5, -1, 7}, A: 11, B: -2}
	var rd2 msgRound
	if err := rd2.decode(rd.encode()); err != nil {
		t.Fatalf("round decode: %v", err)
	}
	if rd2.K != 4 || rd2.Round != 9 || len(rd2.IDs) != 3 || rd2.IDs[1] != -1 || rd2.A != 11 || rd2.B != -2 {
		t.Fatalf("round round-trip mismatch: %+v", rd2)
	}

	bar := msgBarrier{Epoch: 8, K: 3, Round: 12, Snaps: snaps}
	var bar2 msgBarrier
	if err := bar2.decode(bar.encode()); err != nil {
		t.Fatalf("barrier decode: %v", err)
	}
	if len(bar2.Snaps) != 2 || bar2.Snaps[0].Dying[0] != 9 {
		t.Fatalf("barrier round-trip mismatch: %+v", bar2)
	}

	res := msgResult{Epoch: 2, VCore: []int32{0, 1, 2}, ECore: []int32{3}}
	var res2 msgResult
	if err := res2.decode(res.encode()); err != nil {
		t.Fatalf("result decode: %v", err)
	}
	if len(res2.VCore) != 3 || res2.ECore[0] != 3 {
		t.Fatalf("result round-trip mismatch: %+v", res2)
	}

	em := msgError{Epoch: 6, Text: "worker 3: shard exploded"}
	var emDec msgError
	if err := emDec.decode(em.encode()); err != nil || emDec.Text != em.Text || emDec.Epoch != 6 {
		t.Fatalf("error round-trip mismatch: %+v err=%v", emDec, err)
	}

	hello := msgHello{Version: protoVersion, ID: 3}
	var hello2 msgHello
	if err := hello2.decode(hello.encode()); err != nil || hello2.Version != protoVersion || hello2.ID != 3 {
		t.Fatalf("hello round-trip mismatch: %+v err=%v", hello2, err)
	}
}

// TestDecodeRejectsAllocationBombs pins the count-validated slice
// decode: a payload claiming a billion int32s with eight bytes behind
// it must fail before allocating.
func TestDecodeRejectsAllocationBombs(t *testing.T) {
	var en enc
	en.u32(0) // epoch
	en.i32(1)
	en.i32(1)
	en.u32(1 << 30) // IDs count with no bytes behind it
	var m msgRound
	if err := m.decode(en.b); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("bomb count: err = %v, want ErrCorruptFrame", err)
	}
	var en2 enc
	en2.u32(0)
	en2.i32(0)
	en2.i32(0)
	en2.u32(1 << 29) // snapshot count with no bytes behind it
	var b msgBarrier
	if err := b.decode(en2.b); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("snapshot bomb: err = %v, want ErrCorruptFrame", err)
	}
	var m2 msgRound
	if err := m2.decode(append((&msgRound{}).encode(), 0xEE)); !errors.Is(err, ErrCorruptFrame) {
		t.Fatal("trailing garbage accepted")
	}
}

// FuzzDecodeFrame fuzzes the full inbound path: frame validation with
// a bounded payload cap, then every message decoder over the payload.
// Nothing here may panic or over-allocate, whatever the bytes.
func FuzzDecodeFrame(f *testing.F) {
	f.Add(frameBytes(f, mHello, (&msgHello{Version: protoVersion}).encode()))
	f.Add(frameBytes(f, mApply, (&msgRound{Epoch: 1, K: 2, Round: 3, IDs: []int32{4, 5}}).encode()))
	f.Add(frameBytes(f, mBarrier, (&msgBarrier{Epoch: 1, K: 1, Round: 1, Snaps: []*core.ShardSnapshot{{Shard: 0, Deg: []int32{1}}}}).encode()))
	f.Add(frameBytes(f, mLoad, (&msgLoad{Descs: []partition.Desc{{First: 0, Count: 2}}, NumV: 2, Edges: [][]int32{{0, 1}}}).encode()))
	f.Add(frameBytes(f, mResult, (&msgResult{VCore: []int32{1}, ECore: []int32{2}}).encode()))
	// Truncated header and payload.
	whole := frameBytes(f, mRetired, (&msgRound{IDs: []int32{1, 2, 3}}).encode())
	f.Add(whole[:5])
	f.Add(whole[:len(whole)-2])
	// Oversized claimed length.
	over := append([]byte(nil), whole...)
	binary.LittleEndian.PutUint32(over[4:8], 1<<30)
	f.Add(over)
	// Corrupt checksum.
	bad := append([]byte(nil), whole...)
	bad[8] ^= 0x40
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := readFrame(bytes.NewReader(data), 1<<20)
		if err != nil {
			if payload != nil && err == io.EOF {
				t.Fatal("payload returned alongside an error")
			}
			return
		}
		// A structurally valid frame: every decoder must handle the
		// payload without panicking, whatever the type byte says.
		_ = typ
		var (
			h  msgHello
			l  msgLoad
			a  msgAssign
			r  msgRound
			b  msgBarrier
			rs msgResult
			em msgError
		)
		_ = h.decode(payload)
		_ = l.decode(payload)
		_ = a.decode(payload)
		_ = r.decode(payload)
		_ = b.decode(payload)
		_ = rs.decode(payload)
		_ = em.decode(payload)
	})
}

// TestSendRetryAbandonedOnCancel pins the context contract of the send
// retry loop: with the send failpoint hard-arming every attempt and the
// context already cancelled, sendRetry surfaces the abandonment error
// at the first backoff boundary instead of sleeping out the exponential
// schedule (30 retries would otherwise back off for days).
func TestSendRetryAbandonedOnCancel(t *testing.T) {
	if err := failpoint.Enable("dist.send", failpoint.Arm{Mode: failpoint.ModeError}); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disable("dist.send")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	err := sendRetry(ctx, io.Discard, mHello, nil, 30)
	if err == nil || !strings.Contains(err.Error(), "dist: send retry abandoned") {
		t.Fatalf("err = %v, want the retry-abandoned error", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("abandonment error does not wrap context.Canceled: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("sendRetry took %v under a cancelled context; the backoff is not ctx-aware", elapsed)
	}
}

// TestSendRetryExhaustsBudget pins the other exit: with a live context
// the loop retries through the budget and returns the underlying
// injected error once attempts run out.
func TestSendRetryExhaustsBudget(t *testing.T) {
	if err := failpoint.Enable("dist.send", failpoint.Arm{Mode: failpoint.ModeError}); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disable("dist.send")
	err := sendRetry(context.Background(), io.Discard, mHello, nil, 2)
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("err = %v, want the injected send failure after the budget", err)
	}
	if fired := failpoint.Fired("dist.send"); fired != 3 {
		t.Errorf("failpoint fired %d times, want 3 (initial attempt + 2 retries)", fired)
	}
}
