package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os/exec"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hyperplex/internal/core"
	"hyperplex/internal/csr"
	"hyperplex/internal/failpoint"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/partition"
	"hyperplex/internal/run"
)

// fpReassign fires at the start of every worker-death recovery; an
// injected error there declares the pool failed (exercising the
// local-fallback path).
var fpReassign = failpoint.Register("dist.reassign")

// errWorkerLost is the internal signal that at least one worker died
// mid-phase; the coordinator's main loop answers it with a recovery
// and a replay from the last committed barrier.
var errWorkerLost = errors.New("dist: worker lost")

type frameMsg struct {
	typ     byte
	payload []byte
}

// remoteWorker is the coordinator's handle on one worker: its
// connection, its decoded inbound frames, and its last-heard-from
// clock (any frame counts, heartbeats exist to keep it fresh while
// the worker computes).
type remoteWorker struct {
	id       int
	conn     net.Conn
	frames   chan frameMsg
	lastBeat atomic.Int64 // unix nanos of the last frame received
	dead     bool
	cmd      *exec.Cmd // non-nil when spawned as an OS process
}

func (rw *remoteWorker) alive() bool { return rw != nil && !rw.dead }

type coordinator struct {
	//hyperplexvet:ignore ctxfirst scoped to one runCoordinator call tree, mirroring core.peeler
	ctx   context.Context
	meter *run.Meter
	opts  Options
	h     *hypergraph.Hypergraph
	part  *partition.Partition
	edges [][]int32 // member rows shipped in Load

	ln       net.Listener
	accepted []net.Conn // every accepted conn, for panic-safe teardown
	workers  []*remoteWorker
	wg       sync.WaitGroup // reader goroutines + in-process workers
	done     chan struct{}

	epoch uint32
	owner []int // shard → worker id

	// Last committed barrier: per-shard snapshots, the pending dying
	// union, and its (k, round) tag.  This is the replay point.
	snaps       []*core.ShardSnapshot
	dying       []int32
	barK        int32
	barRound    int32
	haveBarrier bool

	maxK       int
	recoveries int
}

func runCoordinator(ctx context.Context, meter *run.Meter, h *hypergraph.Hypergraph, opts Options) (*core.Decomposition, error) {
	c := &coordinator{ctx: ctx, meter: meter, opts: opts, h: h, done: make(chan struct{})}
	defer c.teardown()
	if err := c.setup(); err != nil {
		return nil, err
	}
	if err := c.initialAssign(); err != nil {
		if !errors.Is(err, errWorkerLost) {
			return nil, err
		}
		if rerr := c.recoverLoop(); rerr != nil {
			return nil, rerr
		}
	}
	k := 1
	for {
		status, err := c.round(k)
		switch {
		case err == nil && status == roundMore:
			// Barrier committed; stay at this threshold.
		case err == nil && status == roundAdvance:
			c.maxK = k
			k++
		case err == nil && status == roundDone:
			return c.finish()
		case errors.Is(err, errWorkerLost):
			if rerr := c.recoverLoop(); rerr != nil {
				return nil, rerr
			}
			// Replay from the committed barrier's threshold.
			k = int(c.barK)
			if k < 1 {
				k = 1
			}
		default:
			return nil, err
		}
	}
}

// recoverLoop runs worker-death recovery, answering further deaths
// during the recovery itself with another attempt, until the pool is
// consistent again, the recovery budget runs out, or a fatal error
// surfaces.
func (c *coordinator) recoverLoop() error {
	for {
		err := c.recoverPool()
		if err == nil {
			return nil
		}
		if !errors.Is(err, errWorkerLost) {
			return err
		}
	}
}

// setup serializes the problem, builds the partition, starts the
// listener, spawns the pool, and ships Load to every joined worker.
func (c *coordinator) setup() error {
	c.edges = make([][]int32, c.h.NumEdges())
	for f := range c.edges {
		c.edges[f] = c.h.Vertices(f)
	}
	part, err := partition.BuildCtx(c.ctx, c.h, c.opts.Shards)
	if err != nil {
		return err
	}
	c.part = part
	c.owner = make([]int, part.NumShards())
	c.snaps = make([]*core.ShardSnapshot, part.NumShards())

	ln, err := net.Listen("tcp", c.opts.Listen)
	if err != nil {
		return fmt.Errorf("dist: listen: %w", err)
	}
	c.ln = ln
	addr := ln.Addr().String()
	for i := 0; i < c.opts.Workers; i++ {
		if err := c.ctx.Err(); err != nil {
			return err
		}
		if err := c.spawn(i, addr); err != nil {
			return err
		}
	}
	if err := c.join(); err != nil {
		return err
	}

	load := msgLoad{Epoch: c.epoch, Descs: part.Descs(), NumV: csr.MustInt32(c.h.NumVertices()), Edges: c.edges}
	payload := load.encode()
	for _, rw := range c.workers {
		if err := c.ctx.Err(); err != nil {
			return err
		}
		if !rw.alive() {
			continue
		}
		if err := sendRetry(c.ctx, rw.conn, mLoad, payload, c.opts.SendRetries); err != nil {
			c.kill(rw)
		}
	}
	if len(c.aliveWorkers()) == 0 {
		return fmt.Errorf("%w: no workers survived load", ErrPoolFailed)
	}
	return nil
}

// spawn starts worker i: an OS process running Options.WorkerCommand,
// or an in-process goroutine serving the same protocol over loopback.
func (c *coordinator) spawn(i int, addr string) error {
	if len(c.opts.WorkerCommand) > 0 {
		argv := append(append([]string(nil), c.opts.WorkerCommand...),
			"-connect", addr, "-id", strconv.Itoa(i),
			"-heartbeat", c.opts.HeartbeatInterval.String())
		cmd := exec.CommandContext(c.ctx, argv[0], argv[1:]...)
		cmd.Stderr = c.opts.WorkerStderr
		if err := cmd.Start(); err != nil {
			// An unstartable pool is a pool failure like an unjoined
			// one, so LocalFallback covers a missing worker binary.
			return fmt.Errorf("%w: spawn worker %d: %w", ErrPoolFailed, i, err)
		}
		c.workers = append(c.workers, &remoteWorker{id: i, cmd: cmd})
		return nil
	}
	c.workers = append(c.workers, &remoteWorker{id: i})
	wopts := WorkerOptions{ID: i, HeartbeatInterval: c.opts.HeartbeatInterval, SendRetries: c.opts.SendRetries}
	ctx := c.ctx
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		defer func() {
			// An in-process worker must never crash the coordinator;
			// its death is detected through the severed connection.
			_ = recover()
		}()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return
		}
		_ = ServeWorker(ctx, conn, wopts)
		_ = conn.Close()
	}()
	return nil
}

// join accepts pool connections and their Hello handshakes until every
// spawned worker connected or the phase deadline passes; a partial
// pool proceeds, an empty one is a pool failure.  Each connection is
// paired with the worker slot its Hello names — never with the accept
// order, which under concurrent dials matches the spawn order only by
// luck, and a mispairing would aim every kill (and its Process.Kill)
// at the wrong process.
func (c *coordinator) join() error {
	deadline := time.Now().Add(c.opts.PhaseTimeout)
	tl, ok := c.ln.(*net.TCPListener)
	if !ok {
		return fmt.Errorf("dist: listener is %T, want *net.TCPListener", c.ln)
	}
	joined := 0
	for range c.workers {
		if c.ctx.Err() != nil {
			return c.ctx.Err()
		}
		if err := tl.SetDeadline(deadline); err != nil {
			return fmt.Errorf("dist: listener deadline: %w", err)
		}
		conn, err := tl.Accept()
		if err != nil {
			break // deadline passed; proceed with the joined pool
		}
		// Track the conn before the handshake: if an injected fault
		// panics out of hello, teardown still severs it, so the worker
		// behind it cannot be left blocked on a read.
		c.accepted = append(c.accepted, conn)
		var id int
		if err = conn.SetReadDeadline(deadline); err == nil {
			id, err = c.hello(conn)
		}
		if err == nil && (id < 0 || id >= len(c.workers) || c.workers[id].conn != nil) {
			err = fmt.Errorf("%w: hello claims worker slot %d", ErrCorruptFrame, id)
		}
		if err != nil {
			_ = conn.Close()
			continue
		}
		rw := c.workers[id]
		_ = conn.SetReadDeadline(time.Time{})
		rw.conn = conn
		rw.frames = make(chan frameMsg, 4)
		rw.lastBeat.Store(time.Now().UnixNano())
		c.startReader(rw)
		joined++
	}
	for _, rw := range c.workers {
		if rw.conn == nil {
			rw.dead = true
		}
	}
	if joined == 0 {
		return fmt.Errorf("%w: no workers joined within %v", ErrPoolFailed, c.opts.PhaseTimeout)
	}
	return nil
}

// hello validates one join handshake and returns the worker ID the
// connection claims.
func (c *coordinator) hello(conn net.Conn) (int, error) {
	typ, payload, err := readFrame(conn, 64)
	if err != nil {
		return 0, err
	}
	if typ != mHello {
		return 0, fmt.Errorf("%w: join frame type %d, want Hello", ErrCorruptFrame, typ)
	}
	var m msgHello
	if err := m.decode(payload); err != nil {
		return 0, err
	}
	if m.Version != protoVersion {
		return 0, fmt.Errorf("%w: worker protocol version %d, want %d", ErrCorruptFrame, m.Version, protoVersion)
	}
	return int(m.ID), nil
}

// startReader decodes rw's inbound frames into its channel; any read
// failure (connection death, corrupt frame, injected fault) closes the
// channel, which every consumer treats as worker death.
func (c *coordinator) startReader(rw *remoteWorker) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		defer func() {
			_ = recover() // an injected recv panic is a dead worker, not a crash
			close(rw.frames)
		}()
		for {
			typ, payload, err := readFrame(rw.conn, maxFramePayload)
			if err != nil {
				return
			}
			rw.lastBeat.Store(time.Now().UnixNano())
			if typ == mHeartbeat {
				continue
			}
			select {
			case rw.frames <- frameMsg{typ: typ, payload: payload}:
			case <-c.done:
				return
			}
		}
	}()
}

func (c *coordinator) aliveWorkers() []*remoteWorker {
	var out []*remoteWorker
	for _, rw := range c.workers {
		if rw.alive() {
			out = append(out, rw)
		}
	}
	return out
}

// kill marks a worker dead and severs its connection; its reader
// goroutine and (for processes) a bounded Wait are cleaned up here and
// at teardown.
func (c *coordinator) kill(rw *remoteWorker) {
	if rw.dead {
		return
	}
	rw.dead = true
	if rw.conn != nil {
		_ = rw.conn.Close()
	}
	if rw.cmd != nil && rw.cmd.Process != nil {
		_ = rw.cmd.Process.Kill()
	}
}

// broadcast sends one frame to every live worker; send failure kills
// the worker and reports the loss after the sweep completes.
func (c *coordinator) broadcast(typ byte, payload []byte) error {
	lost := false
	for _, rw := range c.workers {
		if err := c.ctx.Err(); err != nil {
			return err
		}
		if !rw.alive() {
			continue
		}
		if err := sendRetry(c.ctx, rw.conn, typ, payload, c.opts.SendRetries); err != nil {
			c.kill(rw)
			lost = true
		}
	}
	if lost {
		return errWorkerLost
	}
	return nil
}

// await blocks for the next current-epoch frame from rw, expecting
// want.  Stale-epoch frames (replies raced by a recovery) are dropped;
// a closed channel, an Error frame, a protocol violation, a missed-
// heartbeat window or the phase deadline all kill the worker and
// report errWorkerLost; context and budget failures surface as-is.
//
//hyperplexvet:wirerecv
func (c *coordinator) await(rw *remoteWorker, want byte) ([]byte, error) {
	deadline := time.Now().Add(c.opts.PhaseTimeout)
	missWindow := 4 * c.opts.HeartbeatInterval
	for {
		tick := c.opts.HeartbeatInterval
		if until := time.Until(deadline); until < tick {
			tick = until
		}
		if tick <= 0 {
			c.kill(rw)
			return nil, fmt.Errorf("%w: worker %d phase deadline", errWorkerLost, rw.id)
		}
		timer := time.NewTimer(tick)
		select {
		case fm, ok := <-rw.frames:
			timer.Stop()
			if !ok {
				c.kill(rw)
				return nil, fmt.Errorf("%w: worker %d connection", errWorkerLost, rw.id)
			}
			ep, ok := peekEpoch(fm.payload)
			if !ok {
				c.kill(rw)
				return nil, fmt.Errorf("%w: worker %d sent an epochless frame", errWorkerLost, rw.id)
			}
			if ep != c.epoch {
				continue // stale reply from before a recovery
			}
			if fm.typ == mError {
				var m msgError
				_ = m.decode(fm.payload)
				c.kill(rw)
				return nil, fmt.Errorf("%w: worker %d failed: %s", errWorkerLost, rw.id, m.Text)
			}
			if fm.typ != want {
				c.kill(rw)
				return nil, fmt.Errorf("%w: worker %d sent frame type %d, want %d", errWorkerLost, rw.id, fm.typ, want)
			}
			return fm.payload, nil
		case <-c.ctx.Done():
			timer.Stop()
			return nil, c.ctx.Err()
		case <-timer.C:
			if time.Since(time.Unix(0, rw.lastBeat.Load())) > missWindow {
				c.kill(rw)
				return nil, fmt.Errorf("%w: worker %d missed heartbeats", errWorkerLost, rw.id)
			}
		}
	}
}

// initialAssign distributes every shard fresh, round-robin over the
// live pool, and commits barrier (0, 0) from the returned snapshots.
func (c *coordinator) initialAssign() error {
	alive := c.aliveWorkers()
	if len(alive) == 0 {
		return fmt.Errorf("%w: no workers to assign", ErrPoolFailed)
	}
	fresh := make(map[int][]int32, len(alive))
	for s := 0; s < c.part.NumShards(); s++ {
		rw := alive[s%len(alive)]
		c.owner[s] = rw.id
		fresh[rw.id] = append(fresh[rw.id], int32(s))
	}
	for _, rw := range alive {
		m := msgAssign{Epoch: c.epoch, K: 0, Round: 0, Fresh: fresh[rw.id]}
		if err := sendRetry(c.ctx, rw.conn, mAssign, m.encode(), c.opts.SendRetries); err != nil {
			c.kill(rw)
			return errWorkerLost
		}
	}
	dying := []int32{}
	for _, rw := range alive {
		if err := c.ctx.Err(); err != nil {
			return err
		}
		if len(fresh[rw.id]) == 0 {
			continue
		}
		snaps, err := c.awaitBarrier(rw, 0, 0)
		if err != nil {
			return err
		}
		for _, sn := range snaps {
			c.snaps[sn.Shard] = sn
			dying = append(dying, sn.Dying...)
		}
	}
	c.dying = dying
	c.barK, c.barRound, c.haveBarrier = 0, 0, true
	c.fireBarrierHook()
	return nil
}

// awaitBarrier awaits rw's Barrier frame for (k, round) and returns
// its validated snapshots.
func (c *coordinator) awaitBarrier(rw *remoteWorker, k, round int32) ([]*core.ShardSnapshot, error) {
	payload, err := c.await(rw, mBarrier)
	if err != nil {
		return nil, err
	}
	var m msgBarrier
	if err := m.decode(payload); err != nil {
		c.kill(rw)
		return nil, fmt.Errorf("%w: worker %d: %w", errWorkerLost, rw.id, err)
	}
	if m.K != k || m.Round != round {
		c.kill(rw)
		return nil, fmt.Errorf("%w: worker %d voted barrier (%d,%d), want (%d,%d)", errWorkerLost, rw.id, m.K, m.Round, k, round)
	}
	//hyperplexvet:ignore budgettick bounded validation pass over one decoded frame; kill runs on the error path only
	for _, sn := range m.Snaps {
		if sn.Shard < 0 || int(sn.Shard) >= c.part.NumShards() {
			c.kill(rw)
			return nil, fmt.Errorf("%w: worker %d snapshot for unknown shard %d", errWorkerLost, rw.id, sn.Shard)
		}
	}
	return m.Snaps, nil
}

type roundStatus int

const (
	roundMore    roundStatus = iota // barrier committed, stay at k
	roundAdvance                    // level fixpoint with survivors: k++
	roundDone                       // level fixpoint with nothing alive
)

// round drives one BSP round at threshold k: broadcast the dying
// delta, gather the frontier vote, and either detect the level
// fixpoint or retire-shrink-barrier.
func (c *coordinator) round(k int) (roundStatus, error) {
	if err := run.Tick(c.ctx, c.meter, int64(len(c.dying))+1); err != nil {
		return 0, err
	}
	apply := msgRound{Epoch: c.epoch, K: int32(k), Round: c.barRound, IDs: c.dying}
	if err := c.broadcast(mApply, apply.encode()); err != nil {
		return 0, err
	}
	frontier, alive := 0, 0
	for _, rw := range c.aliveWorkers() {
		payload, err := c.await(rw, mFrontier)
		if err != nil {
			return 0, err
		}
		var m msgRound
		if err := m.decode(payload); err != nil {
			c.kill(rw)
			return 0, fmt.Errorf("%w: worker %d: %w", errWorkerLost, rw.id, err)
		}
		frontier += int(m.A)
		alive += int(m.B)
	}
	if frontier == 0 && len(c.dying) == 0 {
		if alive == 0 {
			return roundDone, nil
		}
		return roundAdvance, nil
	}

	retire := msgRound{Epoch: c.epoch, K: int32(k), Round: c.barRound}
	if err := c.broadcast(mRetire, retire.encode()); err != nil {
		return 0, err
	}
	var retired []int32
	for _, rw := range c.aliveWorkers() {
		payload, err := c.await(rw, mRetired)
		if err != nil {
			return 0, err
		}
		var m msgRound
		if err := m.decode(payload); err != nil {
			c.kill(rw)
			return 0, fmt.Errorf("%w: worker %d: %w", errWorkerLost, rw.id, err)
		}
		retired = append(retired, m.IDs...)
	}

	newRound := c.barRound + 1
	shrink := msgRound{Epoch: c.epoch, K: int32(k), Round: newRound, IDs: retired}
	if err := c.broadcast(mShrink, shrink.encode()); err != nil {
		return 0, err
	}
	collected := make([]*core.ShardSnapshot, c.part.NumShards())
	var dying []int32
	for _, rw := range c.aliveWorkers() {
		snaps, err := c.awaitBarrier(rw, int32(k), newRound)
		if err != nil {
			return 0, err
		}
		for _, sn := range snaps {
			collected[sn.Shard] = sn
			dying = append(dying, sn.Dying...)
		}
	}
	for s, sn := range collected {
		if sn == nil {
			return 0, fmt.Errorf("%w: shard %d missing from barrier %d", errWorkerLost, s, newRound)
		}
	}
	c.snaps = collected
	c.dying = dying
	c.barK, c.barRound = int32(k), newRound
	c.fireBarrierHook()
	return roundMore, nil
}

func (c *coordinator) fireBarrierHook() {
	if c.opts.OnBarrier == nil {
		return
	}
	c.opts.OnBarrier(c.barK, c.barRound, func(worker int) {
		if worker >= 0 && worker < len(c.workers) {
			if rw := c.workers[worker]; rw.alive() && rw.conn != nil {
				_ = rw.conn.Close()
			}
		}
	})
}

// recoverPool is the worker-death recovery: bump the epoch so stale
// replies are discarded, roll the survivors back to the last committed
// barrier (or fully reset if none exists yet), and reassign the dead
// workers' shards from the coordinator-held snapshots, round-robin
// over survivors.
func (c *coordinator) recoverPool() error {
	c.recoveries++
	if c.recoveries > c.opts.MaxRecoveries {
		return fmt.Errorf("%w: recovery budget (%d) exhausted", ErrPoolFailed, c.opts.MaxRecoveries)
	}
	if err := failpoint.Inject(fpReassign); err != nil {
		return fmt.Errorf("%w: reassign: %w", ErrPoolFailed, err)
	}
	alive := c.aliveWorkers()
	if len(alive) == 0 {
		return fmt.Errorf("%w: no surviving workers", ErrPoolFailed)
	}
	c.epoch++
	if !c.haveBarrier {
		// The pool broke before the first barrier committed: reset the
		// survivors and redo the initial assignment from scratch.
		reset := msgRound{Epoch: c.epoch, K: 0, Round: -1}
		if err := c.broadcast(mRollback, reset.encode()); err != nil {
			return err
		}
		return c.initialAssign()
	}
	rb := msgRound{Epoch: c.epoch, K: c.barK, Round: c.barRound}
	if err := c.broadcast(mRollback, rb.encode()); err != nil {
		return err
	}
	// Reassign orphaned shards from the barrier snapshots.
	assign := make(map[int][]*core.ShardSnapshot)
	for s := 0; s < c.part.NumShards(); s++ {
		if c.workers[c.owner[s]].alive() {
			continue
		}
		rw := alive[s%len(alive)]
		c.owner[s] = rw.id
		assign[rw.id] = append(assign[rw.id], c.snaps[s])
	}
	for _, rw := range alive {
		if err := c.ctx.Err(); err != nil {
			return err
		}
		snaps := assign[rw.id]
		if len(snaps) == 0 {
			continue
		}
		m := msgAssign{Epoch: c.epoch, K: c.barK, Round: c.barRound, Snaps: snaps}
		if err := sendRetry(c.ctx, rw.conn, mAssign, m.encode(), c.opts.SendRetries); err != nil {
			c.kill(rw)
			return errWorkerLost
		}
	}
	return nil
}

// finish asks a surviving replica for the final mirrors; any replica
// holds the complete answer, so each is tried in turn.
func (c *coordinator) finish() (*core.Decomposition, error) {
	fin := msgRound{Epoch: c.epoch, K: c.barK, Round: c.barRound}
	for _, rw := range c.aliveWorkers() {
		if err := sendRetry(c.ctx, rw.conn, mFinish, fin.encode(), c.opts.SendRetries); err != nil {
			c.kill(rw)
			continue
		}
		payload, err := c.await(rw, mResult)
		if err != nil {
			if errors.Is(err, errWorkerLost) {
				continue
			}
			return nil, err
		}
		var m msgResult
		if err := m.decode(payload); err != nil {
			c.kill(rw)
			continue
		}
		return &core.Decomposition{
			VertexCoreness: coreInt(m.VCore),
			EdgeCoreness:   coreInt(m.ECore),
			MaxK:           c.maxK,
		}, nil
	}
	return nil, fmt.Errorf("%w: no worker could report the result", ErrPoolFailed)
}

// teardown shuts the pool down: best-effort Shutdown frames, severed
// connections, closed listener, and a bounded wait for every reader
// goroutine, in-process worker, and worker process.
func (c *coordinator) teardown() {
	//hyperplexvet:ignore budgettick bounded teardown sweep over the worker table; shutdown must proceed under a cancelled ctx
	for _, rw := range c.workers {
		if rw == nil {
			continue
		}
		if rw.alive() && rw.conn != nil {
			// The Shutdown frame is best-effort; even an injected send
			// panic must not abort the rest of the teardown.
			func() {
				defer func() { _ = recover() }()
				_ = writeFrame(rw.conn, mShutdown, nil)
			}()
		}
		if rw.conn != nil {
			_ = rw.conn.Close()
		}
	}
	//hyperplexvet:ignore budgettick bounded teardown sweep: one non-blocking Close per accepted connection
	for _, conn := range c.accepted {
		_ = conn.Close()
	}
	if c.ln != nil {
		_ = c.ln.Close()
	}
	close(c.done)
	c.wg.Wait()
	//hyperplexvet:ignore budgettick bounded teardown sweep: per-process wait is capped by the 3s kill watchdog
	for _, rw := range c.workers {
		if rw == nil || rw.cmd == nil {
			continue
		}
		cmd := rw.cmd
		watchdog := time.AfterFunc(3*time.Second, func() {
			if cmd.Process != nil {
				_ = cmd.Process.Kill()
			}
		})
		_ = cmd.Wait()
		watchdog.Stop()
	}
}
