package dist

import (
	"context"
	"errors"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"hyperplex/internal/check"
	"hyperplex/internal/core"
	"hyperplex/internal/dataset"
	"hyperplex/internal/failpoint"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/run"
)

// fastOpts keeps the protocol timers tight so death detection and
// phase deadlines resolve in test time.
func fastOpts() Options {
	return Options{
		Workers:           3,
		Shards:            5,
		HeartbeatInterval: 15 * time.Millisecond,
		PhaseTimeout:      5 * time.Second,
	}
}

// assertExact asserts the distributed result equals the sequential
// decomposition on vertex coreness and MaxK (the paper-facing
// quantities), and the sharded schedule on hyperedge coreness.
func assertExact(t *testing.T, h *hypergraph.Hypergraph, got *core.Decomposition, label string) {
	t.Helper()
	want := core.Decompose(h)
	if got.MaxK != want.MaxK {
		t.Fatalf("%s: MaxK = %d, want %d", label, got.MaxK, want.MaxK)
	}
	for v, c := range want.VertexCoreness {
		if got.VertexCoreness[v] != c {
			t.Fatalf("%s: vertex %d coreness = %d, want %d", label, v, got.VertexCoreness[v], c)
		}
	}
	sharded := core.ShardedDecompose(h, core.ShardedOptions{Shards: 3})
	for f, c := range sharded.EdgeCoreness {
		if got.EdgeCoreness[f] != c {
			t.Fatalf("%s: hyperedge %d coreness = %d, want %d", label, f, got.EdgeCoreness[f], c)
		}
	}
}

// leakChecked wraps a test body with a goroutine-leak assertion: the
// coordinator must tear down every reader, worker and heartbeat
// goroutine it started, on success and on failure alike.
func leakChecked(t *testing.T, body func(t *testing.T)) {
	t.Helper()
	before := check.GoroutineSnapshot()
	body(t)
	if err := check.CheckNoLeaks(before, 2*time.Second); err != nil {
		t.Fatalf("goroutine leak: %v", err)
	}
}

// TestDifferentialDistDecompose is the acceptance differential: the
// coordinator + worker pool produces vertex coreness and MaxK exactly
// equal to sequential Decompose on the sweep instances and Cellzome —
// on the healthy path, under a chaos kill mid-round, and through the
// local fallback after an unrecoverable pool.
func TestDifferentialDistDecompose(t *testing.T) {
	instances := check.Instances(8, 0xD157)
	cz := dataset.Cellzome().H

	t.Run("healthy", func(t *testing.T) {
		leakChecked(t, func(t *testing.T) {
			for i, h := range instances {
				d, err := Decompose(h, fastOpts())
				if err != nil {
					t.Fatalf("instance %d: %v", i, err)
				}
				assertExact(t, h, d, "healthy sweep")
			}
			d, err := Decompose(cz, fastOpts())
			if err != nil {
				t.Fatal(err)
			}
			assertExact(t, cz, d, "healthy cellzome")
		})
	})

	t.Run("chaos kill mid-round", func(t *testing.T) {
		leakChecked(t, func(t *testing.T) {
			for i, h := range append(instances[:4:4], cz) {
				killed := false
				opts := fastOpts()
				// Sever worker 1's connection at the first committed
				// barrier; the coordinator must detect the death,
				// reassign its shards, replay, and still be exact.
				opts.OnBarrier = func(k, round int32, kill func(worker int)) {
					if !killed {
						killed = true
						kill(1)
					}
				}
				d, err := Decompose(h, opts)
				if err != nil {
					t.Fatalf("instance %d: %v", i, err)
				}
				if !killed {
					t.Fatalf("instance %d: no barrier fired", i)
				}
				assertExact(t, h, d, "killed run")
			}
		})
	})

	t.Run("repeated kills", func(t *testing.T) {
		leakChecked(t, func(t *testing.T) {
			h := instances[len(instances)-1]
			kills := 0
			opts := fastOpts()
			opts.Workers, opts.Shards = 3, 6
			opts.MaxRecoveries = 5
			opts.OnBarrier = func(k, round int32, kill func(worker int)) {
				// Kill workers 1 then 2 at successive barriers,
				// funneling every shard onto worker 0.
				if kills < 2 {
					kills++
					kill(kills)
				}
			}
			d, err := Decompose(h, opts)
			if err != nil {
				t.Fatal(err)
			}
			if kills == 0 {
				t.Fatal("no barrier fired")
			}
			assertExact(t, h, d, "twice-killed run")
		})
	})

	t.Run("local fallback", func(t *testing.T) {
		leakChecked(t, func(t *testing.T) {
			if err := failpoint.Enable("dist.reassign", failpoint.Arm{Mode: failpoint.ModeError}); err != nil {
				t.Fatal(err)
			}
			defer failpoint.Disable("dist.reassign")
			h := instances[len(instances)-1]
			opts := fastOpts()
			opts.OnBarrier = func(k, round int32, kill func(worker int)) { kill(1) }

			// Without the fallback the poisoned recovery is a pool
			// failure with the injected cause in the chain.
			_, err := Decompose(h, opts)
			if !errors.Is(err, ErrPoolFailed) || !errors.Is(err, failpoint.ErrInjected) {
				t.Fatalf("err = %v, want ErrPoolFailed wrapping ErrInjected", err)
			}

			// With it, the run degrades onto the in-process engine and
			// stays exact.
			opts.LocalFallback = true
			d, err := Decompose(h, opts)
			if err != nil {
				t.Fatal(err)
			}
			if failpoint.Fired("dist.reassign") == 0 {
				t.Fatal("reassign failpoint never fired")
			}
			assertExact(t, h, d, "fallback run")
		})
	})
}

// TestDistHeartbeatDeath kills a worker through the dist.heartbeat
// panic arm — the injected panic is recovered in the worker, its
// connection severed, and the coordinator recovers the run.
func TestDistHeartbeatDeath(t *testing.T) {
	leakChecked(t, func(t *testing.T) {
		if err := failpoint.Enable("dist.heartbeat", failpoint.Arm{Mode: failpoint.ModePanic, After: 2, Times: 1}); err != nil {
			t.Fatal(err)
		}
		defer failpoint.Disable("dist.heartbeat")
		h := dataset.Cellzome().H
		opts := fastOpts()
		opts.HeartbeatInterval = 5 * time.Millisecond
		d, err := Decompose(h, opts)
		if err != nil {
			t.Fatal(err)
		}
		if failpoint.Fired("dist.heartbeat") == 0 {
			t.Fatal("heartbeat failpoint never fired")
		}
		assertExact(t, h, d, "heartbeat-death run")
	})
}

// TestDistSendFaultsRetried pins retry-with-backoff: transient
// injected send failures (every 7th send, three at most per site hit)
// are absorbed without any worker death.
func TestDistSendFaultsRetried(t *testing.T) {
	leakChecked(t, func(t *testing.T) {
		if err := failpoint.Enable("dist.send", failpoint.Arm{Mode: failpoint.ModeError, Every: 7}); err != nil {
			t.Fatal(err)
		}
		defer failpoint.Disable("dist.send")
		h := check.Instances(6, 1)[5]
		d, err := Decompose(h, fastOpts())
		if err != nil {
			t.Fatal(err)
		}
		if failpoint.Fired("dist.send") == 0 {
			t.Fatal("send failpoint never fired")
		}
		assertExact(t, h, d, "retried-send run")
	})
}

// TestDistHeartbeatMissDetection unit-tests the silent-worker path:
// a worker whose frames never arrive and whose last beat is stale is
// declared dead within the miss window, well before the phase
// deadline.
func TestDistHeartbeatMissDetection(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	c := &coordinator{
		ctx:  context.Background(),
		opts: Options{HeartbeatInterval: 10 * time.Millisecond, PhaseTimeout: 10 * time.Second}.normalized(dataset.Cellzome().H),
	}
	rw := &remoteWorker{id: 0, conn: a, frames: make(chan frameMsg)}
	rw.lastBeat.Store(time.Now().Add(-time.Second).UnixNano())
	start := time.Now()
	_, err := c.await(rw, mFrontier)
	if !errors.Is(err, errWorkerLost) {
		t.Fatalf("err = %v, want errWorkerLost", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("miss detection took %v, want well under the phase deadline", elapsed)
	}
	if !rw.dead {
		t.Fatal("silent worker not marked dead")
	}
}

// TestDistNoWorkers pins pool-collapse at the join phase: a worker
// command that never connects is a pool failure, or a silent local
// degrade with the fallback.
func TestDistNoWorkers(t *testing.T) {
	leakChecked(t, func(t *testing.T) {
		h := check.Instances(3, 2)[2]
		opts := fastOpts()
		opts.WorkerCommand = []string{"/bin/false"}
		opts.PhaseTimeout = 300 * time.Millisecond
		_, err := Decompose(h, opts)
		if !errors.Is(err, ErrPoolFailed) {
			t.Fatalf("err = %v, want ErrPoolFailed", err)
		}
		opts.LocalFallback = true
		d, err := Decompose(h, opts)
		if err != nil {
			t.Fatal(err)
		}
		assertExact(t, h, d, "fallback-from-join run")
	})
}

// TestDistUnspawnablePool pins pool-collapse one phase earlier: a
// worker binary that cannot even start is a pool failure too, so
// LocalFallback covers a missing or broken hgshardd path.
func TestDistUnspawnablePool(t *testing.T) {
	leakChecked(t, func(t *testing.T) {
		h := check.Instances(3, 2)[2]
		opts := fastOpts()
		opts.WorkerCommand = []string{"/nonexistent/hgshardd"}
		_, err := Decompose(h, opts)
		if !errors.Is(err, ErrPoolFailed) {
			t.Fatalf("err = %v, want ErrPoolFailed", err)
		}
		opts.LocalFallback = true
		d, err := Decompose(h, opts)
		if err != nil {
			t.Fatal(err)
		}
		assertExact(t, h, d, "fallback-from-spawn run")
	})
}

// TestDistContextAndBudget pins that cancellation and budget errors
// surface as themselves and are never masked by the local fallback.
func TestDistContextAndBudget(t *testing.T) {
	leakChecked(t, func(t *testing.T) {
		h := check.Instances(3, 3)[2]
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		opts := fastOpts()
		opts.LocalFallback = true
		if _, err := DecomposeCtx(ctx, h, opts); !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled ctx: err = %v, want context.Canceled", err)
		}
		bctx, _ := run.WithBudget(context.Background(), run.Budget{MaxSteps: 1})
		if _, err := DecomposeCtx(bctx, h, opts); !errors.Is(err, run.ErrBudgetExceeded) {
			t.Fatalf("budget: err = %v, want ErrBudgetExceeded", err)
		}
	})
}

// TestDistProcessSmoke runs the real multi-process path: hgshardd is
// built from source, two worker processes join over localhost, and one
// is killed mid-run.  Gated behind HYPERPLEX_DIST_SMOKE=1 (the CI
// distributed-smoke job sets it) to keep default test runs hermetic.
func TestDistProcessSmoke(t *testing.T) {
	if os.Getenv("HYPERPLEX_DIST_SMOKE") != "1" {
		t.Skip("set HYPERPLEX_DIST_SMOKE=1 to run the multi-process smoke test")
	}
	bin := filepath.Join(t.TempDir(), "hgshardd")
	build := exec.Command("go", "build", "-o", bin, "hyperplex/cmd/hgshardd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build hgshardd: %v\n%s", err, out)
	}
	h := dataset.Cellzome().H
	killed := false
	opts := fastOpts()
	opts.Workers = 2
	// OS-process workers on a loaded CI runner can miss fastOpts's
	// 15ms beat cadence; keep the 4-beat death window at 100ms.
	opts.HeartbeatInterval = 25 * time.Millisecond
	opts.WorkerCommand = []string{bin}
	opts.WorkerStderr = os.Stderr
	opts.OnBarrier = func(k, round int32, kill func(worker int)) {
		if !killed && round >= 1 {
			killed = true
			kill(1)
		}
	}
	d, err := Decompose(h, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !killed {
		t.Fatal("run finished before the scripted kill")
	}
	assertExact(t, h, d, "process smoke")
}
