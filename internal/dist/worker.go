package dist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hyperplex/internal/core"
	"hyperplex/internal/failpoint"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/partition"
)

// fpHeartbeat fires before every heartbeat send; the chaos suite's
// panic arm turns it into a mid-round worker death.
var fpHeartbeat = failpoint.Register("dist.heartbeat")

// WorkerOptions tunes one worker connection.
type WorkerOptions struct {
	// ID is the worker identity assigned by the spawner, echoed in the
	// Hello handshake so the coordinator can pair this connection with
	// the process it launched whatever order the pool dialed in.
	ID int
	// HeartbeatInterval is the beacon period; the coordinator declares
	// a silent worker dead after several missed beats.  Defaults to
	// 100ms.
	HeartbeatInterval time.Duration
	// SendRetries bounds retry-with-backoff on transient reply-send
	// failures.  Defaults to 3.
	SendRetries int
}

func (o WorkerOptions) normalized() WorkerOptions {
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 100 * time.Millisecond
	}
	if o.SendRetries <= 0 {
		o.SendRetries = 3
	}
	return o
}

// errShutdown signals a clean coordinator-requested exit.
var errShutdown = errors.New("dist: shutdown requested")

// tagged is one checkpoint slot: the peel state at barrier (k, round).
type tagged struct {
	k, round int32
	cp       *core.PeelCheckpoint
}

// workerState is one worker's side of the protocol: the replica, the
// connection, and the two-slot barrier checkpoint.  pending holds the
// snapshot taken when the worker voted at the latest barrier; the next
// Apply frame proves the coordinator committed that barrier and
// promotes it to committed.  A Rollback frame names one of the two
// tags; anything else is a protocol violation.
type workerState struct {
	//hyperplexvet:ignore ctxfirst scoped to one ServeWorker call tree, mirroring coordinator
	ctx  context.Context
	conn net.Conn
	opts WorkerOptions

	wmu sync.Mutex // serializes frame writes (main loop vs heartbeat)

	h      *hypergraph.Hypergraph
	part   *partition.Partition
	peeler *core.DistPeeler

	epoch              uint32
	pending, committed *tagged

	hbPanic atomic.Pointer[core.WorkerPanicError]
}

// ServeWorker runs one worker over conn until the coordinator sends
// Shutdown, the connection drops, or ctx is cancelled.  It recovers
// panics (including injected ones) into a *core.WorkerPanicError so a
// worker process, or an in-process worker goroutine, always fails as a
// typed error rather than a crash.
func ServeWorker(ctx context.Context, conn net.Conn, opts WorkerOptions) (err error) {
	defer func() {
		if x := recover(); x != nil {
			stack := make([]byte, 16<<10)
			stack = stack[:runtime.Stack(stack, false)]
			err = &core.WorkerPanicError{Value: x, Stack: stack}
		}
	}()
	w := &workerState{ctx: ctx, conn: conn, opts: opts.normalized()}
	if err := w.send(mHello, (&msgHello{Version: protoVersion, ID: int32(w.opts.ID)}).encode()); err != nil {
		return err
	}

	// One sidecar goroutine: heartbeats on a ticker, and closes the
	// connection when ctx is cancelled so the read loop unblocks.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			if x := recover(); x != nil {
				// An injected heartbeat panic is a worker death: record
				// it and sever the connection so both ends notice.
				stack := make([]byte, 16<<10)
				stack = stack[:runtime.Stack(stack, false)]
				w.hbPanic.Store(&core.WorkerPanicError{Value: x, Stack: stack})
				_ = conn.Close()
			}
		}()
		w.heartbeatLoop(ctx, stop)
	}()
	defer func() {
		close(stop)
		wg.Wait()
	}()

	for {
		typ, payload, rerr := readFrame(conn, maxFramePayload)
		if rerr != nil {
			if p := w.hbPanic.Load(); p != nil {
				return p
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if errors.Is(rerr, io.EOF) {
				return nil // coordinator hung up cleanly
			}
			return rerr
		}
		if herr := w.handle(ctx, typ, payload); herr != nil {
			if errors.Is(herr, errShutdown) {
				return nil
			}
			w.report(herr)
			return herr
		}
	}
}

// heartbeatLoop beacons until stop closes; on ctx cancellation it
// severs the connection to unblock the main read loop.
func (w *workerState) heartbeatLoop(ctx context.Context, stop <-chan struct{}) {
	ticker := time.NewTicker(w.opts.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ctx.Done():
			_ = w.conn.Close()
			return
		case <-ticker.C:
			if err := failpoint.Inject(fpHeartbeat); err != nil {
				continue // beat skipped; enough of these reads as death
			}
			w.wmu.Lock()
			err := writeFrame(w.conn, mHeartbeat, nil)
			w.wmu.Unlock()
			if err != nil && !errors.Is(err, failpoint.ErrInjected) {
				return // connection is gone; the main loop will notice
			}
		}
	}
}

// send writes one frame under the write lock with bounded retry.
func (w *workerState) send(typ byte, payload []byte) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return sendRetry(w.ctx, w.conn, typ, payload, w.opts.SendRetries)
}

// report best-effort ships a typed failure to the coordinator before
// the worker gives up.
func (w *workerState) report(err error) {
	_ = w.send(mError, (&msgError{Epoch: w.epoch, Text: err.Error()}).encode())
}

//hyperplexvet:wirerecv
func (w *workerState) handle(ctx context.Context, typ byte, payload []byte) error {
	switch typ {
	case mLoad:
		var m msgLoad
		if err := m.decode(payload); err != nil {
			return err
		}
		return w.load(ctx, &m)
	case mAssign:
		var m msgAssign
		if err := m.decode(payload); err != nil {
			return err
		}
		return w.assign(&m)
	case mRollback:
		var m msgRound
		if err := m.decode(payload); err != nil {
			return err
		}
		return w.rollback(&m)
	case mApply:
		var m msgRound
		if err := m.decode(payload); err != nil {
			return err
		}
		return w.apply(&m)
	case mRetire:
		var m msgRound
		if err := m.decode(payload); err != nil {
			return err
		}
		w.epoch = m.Epoch
		m.IDs = w.peelerOrNil().CollectRetired()
		return w.send(mRetired, m.encode())
	case mShrink:
		var m msgRound
		if err := m.decode(payload); err != nil {
			return err
		}
		return w.shrink(&m)
	case mFinish:
		var m msgRound
		if err := m.decode(payload); err != nil {
			return err
		}
		w.epoch = m.Epoch
		vCore, eCore := w.peelerOrNil().Coreness()
		res := msgResult{Epoch: w.epoch, VCore: coreInt32(vCore), ECore: coreInt32(eCore)}
		return w.send(mResult, res.encode())
	case mShutdown:
		return errShutdown
	case mHeartbeat:
		return nil
	default:
		return fmt.Errorf("%w: unexpected frame type %d at worker", ErrCorruptFrame, typ)
	}
}

// peelerOrNil returns the replica; frames arriving before Load are a
// coordinator bug and surface as the nil-pointer panic recovered at
// ServeWorker into a typed error, so no silent wrong answers.
func (w *workerState) peelerOrNil() *core.DistPeeler { return w.peeler }

func (w *workerState) load(ctx context.Context, m *msgLoad) error {
	w.epoch = m.Epoch
	h, err := hypergraph.FromEdgeSets(int(m.NumV), m.Edges)
	if err != nil {
		return fmt.Errorf("dist: load graph: %w", err)
	}
	part, err := partition.FromDescsCtx(ctx, h, m.Descs)
	if err != nil {
		return fmt.Errorf("dist: load partition: %w", err)
	}
	w.h, w.part = h, part
	w.peeler = core.NewDistPeeler(h, part)
	w.pending, w.committed = nil, nil
	return nil
}

func (w *workerState) assign(m *msgAssign) error {
	w.epoch = m.Epoch
	if w.peeler == nil {
		return errors.New("dist: assign before load")
	}
	var snaps []*core.ShardSnapshot
	for _, s := range m.Fresh {
		if err := w.ctx.Err(); err != nil {
			return err
		}
		if s < 0 || int(s) >= w.peeler.NumShards() {
			return fmt.Errorf("dist: assign of unknown shard %d", s)
		}
		snaps = append(snaps, w.peeler.AssignFresh(int(s)))
	}
	for _, sn := range m.Snaps {
		if err := w.ctx.Err(); err != nil {
			return err
		}
		if err := w.peeler.AssignSnapshot(sn); err != nil {
			return err
		}
	}
	// The replica now holds barrier (K, Round) state including the new
	// shards; re-checkpoint it as the committed slot.
	w.committed = &tagged{k: m.K, round: m.Round, cp: w.peeler.Checkpoint()}
	w.pending = nil
	if len(m.Fresh) > 0 {
		b := msgBarrier{Epoch: w.epoch, K: m.K, Round: m.Round, Snaps: snaps}
		return w.send(mBarrier, b.encode())
	}
	return nil
}

func (w *workerState) rollback(m *msgRound) error {
	w.epoch = m.Epoch
	if m.Round < 0 {
		// Full reset: the pool died before the first barrier committed.
		if w.h == nil {
			return errors.New("dist: reset before load")
		}
		w.peeler = core.NewDistPeeler(w.h, w.part)
		w.pending, w.committed = nil, nil
		return nil
	}
	var cp *tagged
	switch {
	case w.pending != nil && w.pending.k == m.K && w.pending.round == m.Round:
		cp = w.pending
	case w.committed != nil && w.committed.k == m.K && w.committed.round == m.Round:
		cp = w.committed
	default:
		return fmt.Errorf("dist: no checkpoint for barrier k=%d round=%d", m.K, m.Round)
	}
	if err := w.peeler.Restore(cp.cp); err != nil {
		return err
	}
	w.committed, w.pending = cp, nil
	return nil
}

func (w *workerState) apply(m *msgRound) error {
	w.epoch = m.Epoch
	// An Apply frame means the coordinator committed the barrier this
	// worker last voted for: promote the tentative checkpoint.
	if w.pending != nil {
		w.committed, w.pending = w.pending, nil
	}
	w.peelerOrNil().ApplyDying(int(m.K), m.IDs)
	f, a := w.peeler.GatherFrontier()
	reply := msgRound{Epoch: w.epoch, K: m.K, Round: m.Round, A: int32(f), B: int32(a)}
	return w.send(mFrontier, reply.encode())
}

func (w *workerState) shrink(m *msgRound) error {
	w.epoch = m.Epoch
	w.peelerOrNil().ApplyRetired(m.IDs)
	snaps := w.peeler.CheckShrunk()
	// Tentative checkpoint: this barrier is committed only once every
	// worker's vote lands, which the next Apply frame confirms.
	w.pending = &tagged{k: m.K, round: m.Round, cp: w.peeler.Checkpoint()}
	b := msgBarrier{Epoch: w.epoch, K: m.K, Round: m.Round, Snaps: snaps}
	return w.send(mBarrier, b.encode())
}
