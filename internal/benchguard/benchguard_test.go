package benchguard

import (
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: hyperplex/internal/benchguard
cpu: some machine
BenchmarkGuardCalibrate-8   	    1000	   1000000 ns/op
BenchmarkGuardKCore-8       	     500	   2000000 ns/op	1024 B/op	3 allocs/op
BenchmarkGuardKCore-8       	     600	   1900000 ns/op	1024 B/op	3 allocs/op
PASS
ok  	hyperplex/internal/benchguard	3.1s
`

func TestParseBench(t *testing.T) {
	got, err := ParseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
	if got["BenchmarkGuardCalibrate"] != 1_000_000 {
		t.Fatalf("calibrate = %v", got["BenchmarkGuardCalibrate"])
	}
	// Duplicate runs keep the fastest.
	if got["BenchmarkGuardKCore"] != 1_900_000 {
		t.Fatalf("kcore = %v, want the fastest of the two runs", got["BenchmarkGuardKCore"])
	}
}

func TestParseBenchEmpty(t *testing.T) {
	if _, err := ParseBench(strings.NewReader("PASS\n")); err == nil {
		t.Fatal("want an error for output with no benchmark lines")
	}
}

func TestCompareCalibrationScaling(t *testing.T) {
	base := &Baseline{NsPerOp: map[string]float64{
		CalibrateName:         1_000_000,
		"BenchmarkGuardKCore": 2_000_000,
	}}
	// A machine running calibration 2x slower is allowed 2x the ns/op
	// (times the threshold) before the guard trips.
	current := map[string]float64{
		CalibrateName:         2_000_000,
		"BenchmarkGuardKCore": 5_000_000, // 1.25x calibrated — inside 1.30
	}
	regs, err := Compare(base, current, DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("want no regressions, got %v", regs)
	}
	current["BenchmarkGuardKCore"] = 5_500_000 // 1.375x calibrated — over
	regs, err = Compare(base, current, DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Name != "BenchmarkGuardKCore" {
		t.Fatalf("want exactly the KCore regression, got %v", regs)
	}
	if regs[0].Ratio < 1.37 || regs[0].Ratio > 1.38 {
		t.Fatalf("ratio = %v, want ~1.375", regs[0].Ratio)
	}
}

func TestCompareMissingBench(t *testing.T) {
	base := &Baseline{NsPerOp: map[string]float64{
		CalibrateName:         1_000_000,
		"BenchmarkGuardKCore": 2_000_000,
	}}
	if _, err := Compare(base, map[string]float64{"BenchmarkGuardKCore": 1}, DefaultThreshold); err == nil {
		t.Fatal("want an error when the calibration benchmark is missing")
	}
	if _, err := Compare(base, map[string]float64{CalibrateName: 1_000_000}, DefaultThreshold); err == nil {
		t.Fatal("want an error when a pinned benchmark is missing")
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	b := &Baseline{Note: "test", NsPerOp: map[string]float64{CalibrateName: 42}}
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Note != "test" || got.NsPerOp[CalibrateName] != 42 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

// TestCommittedBaselineCoversGuards ensures the checked-in baseline
// stays in sync with the pinned benchmark set in guard_bench_test.go.
func TestCommittedBaselineCoversGuards(t *testing.T) {
	b, err := LoadBaseline(filepath.Join("testdata", "baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		CalibrateName,
		"BenchmarkGuardKCore",
		"BenchmarkGuardGreedyMulticover",
		"BenchmarkGuardShortestPath",
		"BenchmarkGuardStoreDecompose",
	} {
		if _, ok := b.NsPerOp[name]; !ok {
			t.Errorf("committed baseline is missing %s — re-record with cmd/benchguard -update", name)
		}
	}
}
