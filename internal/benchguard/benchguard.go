// Package benchguard implements the benchmark regression guard: it
// parses `go test -bench` output, normalizes it against a calibration
// benchmark that measures raw machine speed, and compares the pinned
// guard benchmarks (see guard_bench_test.go) to a committed baseline.
// A kernel that got more than the threshold factor slower than the
// calibrated baseline fails the guard.  cmd/benchguard is the CLI.
package benchguard

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// CalibrateName is the benchmark whose ns/op measures raw machine
// speed.  Baseline values for all other benchmarks are scaled by the
// ratio current-calibration / baseline-calibration before comparison,
// so the guard tolerates running on slower or faster hardware than the
// machine that recorded the baseline.
const CalibrateName = "BenchmarkGuardCalibrate"

// DefaultThreshold fails a benchmark that is more than 30% slower than
// its calibrated baseline.
const DefaultThreshold = 1.30

// Baseline is the committed reference file.
type Baseline struct {
	// Note is free-form provenance (machine, date) for humans.
	Note string `json:"note,omitempty"`
	// NsPerOp maps benchmark name (with the -GOMAXPROCS suffix
	// stripped) to the recorded ns/op.
	NsPerOp map[string]float64 `json:"ns_per_op"`
}

// LoadBaseline reads a baseline JSON file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("benchguard: parsing %s: %w", path, err)
	}
	if len(b.NsPerOp) == 0 {
		return nil, fmt.Errorf("benchguard: baseline %s has no entries", path)
	}
	return &b, nil
}

// Save writes the baseline as stable, human-diffable JSON.
func (b *Baseline) Save(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ParseBench extracts ns/op per benchmark from `go test -bench`
// output.  The -N GOMAXPROCS suffix is stripped so results compare
// across machines; a benchmark appearing more than once keeps its
// fastest run.
func ParseBench(r io.Reader) (map[string]float64, error) {
	results := make(map[string]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if fields[3] != "ns/op" {
			continue
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if prev, ok := results[name]; !ok || ns < prev {
			results[name] = ns
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("benchguard: no benchmark results found in input")
	}
	return results, nil
}

// Regression describes one benchmark that exceeded the threshold.
type Regression struct {
	Name      string
	CurrentNs float64
	// AllowedNs is the calibrated baseline times the threshold.
	AllowedNs float64
	// Ratio is CurrentNs over the calibrated baseline (1.0 = parity).
	Ratio float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %.0f ns/op is %.2fx the calibrated baseline (allowed %.0f ns/op)",
		r.Name, r.CurrentNs, r.Ratio, r.AllowedNs)
}

// Compare checks every baseline benchmark against the current results,
// scaling by the calibration ratio.  It returns the regressions (empty
// means the guard passes) and errors if the calibration benchmark or
// any pinned benchmark is missing from current.
func Compare(baseline *Baseline, current map[string]float64, threshold float64) ([]Regression, error) {
	baseCal, ok := baseline.NsPerOp[CalibrateName]
	if !ok || baseCal <= 0 {
		return nil, fmt.Errorf("benchguard: baseline is missing %s", CalibrateName)
	}
	curCal, ok := current[CalibrateName]
	if !ok || curCal <= 0 {
		return nil, fmt.Errorf("benchguard: current results are missing %s", CalibrateName)
	}
	scale := curCal / baseCal

	names := make([]string, 0, len(baseline.NsPerOp))
	for name := range baseline.NsPerOp {
		if name != CalibrateName {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	var regressions []Regression
	for _, name := range names {
		cur, ok := current[name]
		if !ok {
			return nil, fmt.Errorf("benchguard: current results are missing %s (was it renamed?)", name)
		}
		calibrated := baseline.NsPerOp[name] * scale
		allowed := calibrated * threshold
		if cur > allowed {
			regressions = append(regressions, Regression{
				Name:      name,
				CurrentNs: cur,
				AllowedNs: allowed,
				Ratio:     cur / calibrated,
			})
		}
	}
	return regressions, nil
}
