// Pinned guard benchmarks for the CI regression gate.  These are the
// only benchmarks cmd/benchguard compares against the committed
// baseline (testdata/baseline.json), so their workloads must stay
// byte-for-byte deterministic: fixed seeds, fixed sizes.  Changing a
// workload requires re-recording the baseline with `-update`.
//
//	go test -run '^$' -bench '^BenchmarkGuard' ./internal/benchguard/ \
//	  | go run ./cmd/benchguard -baseline internal/benchguard/testdata/baseline.json
package benchguard_test

import (
	"path/filepath"
	"sync"
	"testing"

	"hyperplex/internal/core"
	"hyperplex/internal/cover"
	"hyperplex/internal/csr"
	"hyperplex/internal/gen"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/stats"
	"hyperplex/internal/store"
	"hyperplex/internal/xrand"
)

var (
	guardOnce sync.Once
	guardH    *hypergraph.Hypergraph
)

func guardInstance(b *testing.B) *hypergraph.Hypergraph {
	b.Helper()
	guardOnce.Do(func() { guardH = gen.RandomHypergraph(2000, 1500, 8, xrand.New(0x6A12D)) })
	return guardH
}

var calibrateSink uint64

// BenchmarkGuardCalibrate is a pure integer loop that measures raw
// machine speed.  cmd/benchguard scales the other baselines by the
// ratio of this benchmark's current ns/op to its baseline ns/op, so
// the guard ports across hardware.
func BenchmarkGuardCalibrate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		x := uint64(0x9E3779B97F4A7C15)
		for j := 0; j < 1_000_000; j++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		calibrateSink = x
	}
}

// BenchmarkGuardKCore pins the sequential k-core peeler.
func BenchmarkGuardKCore(b *testing.B) {
	h := guardInstance(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if r := core.KCore(h, 2); r == nil {
			b.Fatal("nil result")
		}
	}
}

// BenchmarkGuardShardedDecompose pins the sharded decomposition
// engine (4 shards) so the round-synchronous peeling path cannot
// silently regress.
func BenchmarkGuardShardedDecompose(b *testing.B) {
	h := guardInstance(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := core.ShardedDecompose(h, core.ShardedOptions{Shards: 4})
		if d == nil || d.MaxK == 0 {
			b.Fatal("degenerate decomposition")
		}
	}
}

// BenchmarkGuardDecompose pins the map-based sequential decomposition,
// the semantic reference the CSR kernel is differentially tested
// against.
func BenchmarkGuardDecompose(b *testing.B) {
	h := guardInstance(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := core.Decompose(h)
		if d == nil || d.MaxK == 0 {
			b.Fatal("degenerate decomposition")
		}
	}
}

// BenchmarkGuardCSRDecompose pins the flat-array bucket-queue kernel so
// the CSR hot path cannot silently regress toward the map-based cost.
func BenchmarkGuardCSRDecompose(b *testing.B) {
	h := guardInstance(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := core.CSRDecompose(h)
		if d == nil || d.MaxK == 0 {
			b.Fatal("degenerate decomposition")
		}
	}
}

// BenchmarkGuardGreedyMulticover pins the lazy-heap greedy cover.
func BenchmarkGuardGreedyMulticover(b *testing.B) {
	h := guardInstance(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cover.GreedyMulticover(h, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGuardCSRGreedyMulticover pins the flat-array greedy cover
// kernel so the CSR cover hot path cannot silently regress toward the
// map-based cost.
func BenchmarkGuardCSRGreedyMulticover(b *testing.B) {
	h := guardInstance(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cover.CSRGreedyMulticover(h, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGuardStoreDecompose pins the flat-array decomposition
// kernel running over the memory-mapped store backend, so the storage
// seam cannot silently add per-access cost to the peel hot path.  The
// store file is written and mapped outside the timed region; the
// baseline is directly comparable to BenchmarkGuardCSRDecompose (the
// same kernel over in-RAM arrays).
func BenchmarkGuardStoreDecompose(b *testing.B) {
	h := guardInstance(b)
	path := filepath.Join(b.TempDir(), "guard.store")
	if err := store.WriteH(path, h); err != nil {
		b.Fatal(err)
	}
	st, err := store.Open(path, store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	c := st.CSR()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := csr.Decompose(c)
		if d == nil || d.MaxK == 0 {
			b.Fatal("degenerate decomposition")
		}
	}
}

// BenchmarkGuardShortestPath pins alternating-path BFS extraction.
func BenchmarkGuardShortestPath(b *testing.B) {
	h := guardInstance(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := stats.ShortestPath(h, 0, h.NumVertices()-1); !ok {
			b.Fatal("expected the dense random instance to be connected")
		}
	}
}
