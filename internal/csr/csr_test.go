// Tests for the flat-array substrate: the round-trip property of the
// conversion layer (ToH ∘ FromH preserves the incidence structure
// exactly), Validate's rejection of malformed arrays, and the
// cancellation/budget contract of the bucket-queue kernel.  External
// test package so the sweep in internal/check (which imports core,
// which imports this package) is usable.
package csr_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"hyperplex/internal/check"
	"hyperplex/internal/csr"
	"hyperplex/internal/gen"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/run"
	"hyperplex/internal/xrand"
)

// roundtripInstances is the conversion-layer test mix: the crafted
// corner cases the satellite calls out (empty edges, isolated
// vertices, duplicate equal-set edges), the deterministic sweep, and a
// few random instances.
func roundtripInstances(t *testing.T) []*hypergraph.Hypergraph {
	t.Helper()
	crafted := []struct {
		nv    int
		edges [][]int32
	}{
		{0, nil},                         // empty hypergraph
		{5, nil},                         // isolated vertices only
		{3, [][]int32{{}, {0, 1}, {}}},   // empty edges between real ones
		{4, [][]int32{{0, 1}, {0, 1}}},   // duplicate equal-set edges
		{2, [][]int32{{0}, {1}, {0, 1}}}, // singletons + spanning edge
	}
	var out []*hypergraph.Hypergraph
	for _, c := range crafted {
		h, err := hypergraph.FromEdgeSets(c.nv, c.edges)
		if err != nil {
			t.Fatalf("crafted instance: %v", err)
		}
		out = append(out, h)
	}
	out = append(out, check.Instances(30, 0xC5A0)...)
	rng := xrand.New(0xC5A1)
	for i := 0; i < 8; i++ {
		out = append(out, gen.RandomHypergraph(3+rng.Intn(50), 1+rng.Intn(40), 1+rng.Intn(7), rng))
	}
	return out
}

// TestFromHValidates pins that every converted instance is a valid CSR
// with the same counts, degrees and pin rows as its source.
func TestFromHValidates(t *testing.T) {
	for i, h := range roundtripInstances(t) {
		c := csr.FromH(h)
		if err := c.Validate(); err != nil {
			t.Fatalf("instance %d %v: %v", i, h, err)
		}
		if c.NumVertices() != h.NumVertices() || c.NumEdges() != h.NumEdges() || c.NumPins() != h.NumPins() {
			t.Fatalf("instance %d %v: CSR is %d/%d/%d, want %d/%d/%d", i, h,
				c.NumVertices(), c.NumEdges(), c.NumPins(),
				h.NumVertices(), h.NumEdges(), h.NumPins())
		}
		for v := 0; v < h.NumVertices(); v++ {
			if int(c.VertexDegree(int32(v))) != h.VertexDegree(v) {
				t.Fatalf("instance %d %v: vertex %d degree %d, want %d", i, h, v, c.VertexDegree(int32(v)), h.VertexDegree(v))
			}
		}
		for f := 0; f < h.NumEdges(); f++ {
			row := c.EdgeVertices(int32(f))
			want := h.Vertices(f)
			if len(row) != len(want) {
				t.Fatalf("instance %d %v: edge %d has %d members, want %d", i, h, f, len(row), len(want))
			}
			for j := range row {
				if row[j] != want[j] {
					t.Fatalf("instance %d %v: edge %d member %d = %d, want %d", i, h, f, j, row[j], want[j])
				}
			}
		}
	}
}

// TestRoundTrip pins ToH(FromH(h)) ≅ h: identical vertex and edge
// counts, pin count, degree sequences, and per-edge member sets.  IDs
// are preserved exactly (FromH is the identity embedding and ToH emits
// edges in local order), so the comparison is positional, which is
// stronger than isomorphism.
func TestRoundTrip(t *testing.T) {
	for i, h := range roundtripInstances(t) {
		c := csr.FromH(h)
		h2, err := c.ToH()
		if err != nil {
			t.Fatalf("instance %d %v: ToH: %v", i, h, err)
		}
		if err := h2.Validate(); err != nil {
			t.Fatalf("instance %d %v: round-tripped hypergraph invalid: %v", i, h, err)
		}
		if h2.NumVertices() != h.NumVertices() || h2.NumEdges() != h.NumEdges() || h2.NumPins() != h.NumPins() {
			t.Fatalf("instance %d %v: round-trip is %v", i, h, h2)
		}
		for v := 0; v < h.NumVertices(); v++ {
			if h2.VertexDegree(v) != h.VertexDegree(v) {
				t.Fatalf("instance %d %v: round-trip vertex %d degree %d, want %d", i, h, v, h2.VertexDegree(v), h.VertexDegree(v))
			}
		}
		for f := 0; f < h.NumEdges(); f++ {
			got, want := h2.Vertices(f), h.Vertices(f)
			if len(got) != len(want) {
				t.Fatalf("instance %d %v: round-trip edge %d has %d members, want %d", i, h, f, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("instance %d %v: round-trip edge %d member set drifted", i, h, f)
				}
			}
		}
		// A second conversion of the round-tripped hypergraph must give
		// byte-identical arrays.
		c2 := csr.FromH(h2)
		for j, x := range c.VOff {
			if c2.VOff[j] != x {
				t.Fatalf("instance %d %v: VOff drifted at %d", i, h, j)
			}
		}
		for j, x := range c.EAdj {
			if c2.EAdj[j] != x {
				t.Fatalf("instance %d %v: EAdj drifted at %d", i, h, j)
			}
		}
	}
}

// TestValidateRejects spot-checks that Validate catches hand-broken
// arrays: unsorted rows, dangling pins, bad offsets, bad ID maps.
func TestValidateRejects(t *testing.T) {
	base := func(t *testing.T) *csr.CSR {
		h, err := hypergraph.FromEdgeSets(3, [][]int32{{0, 1}, {1, 2}})
		if err != nil {
			t.Fatal(err)
		}
		c := csr.FromH(h)
		// Deep-copy so mutations cannot touch h's aliased storage.
		return &csr.CSR{
			VOff: append([]int32(nil), c.VOff...),
			VAdj: append([]int32(nil), c.VAdj...),
			EOff: append([]int32(nil), c.EOff...),
			EAdj: append([]int32(nil), c.EAdj...),
		}
	}
	breaks := []struct {
		name  string
		wreck func(c *csr.CSR)
	}{
		{"offset not starting at 0", func(c *csr.CSR) { c.EOff[0] = 1 }},
		{"offset overshooting pins", func(c *csr.CSR) { c.EOff[len(c.EOff)-1]++ }},
		{"negative cardinality", func(c *csr.CSR) { c.EOff[1] = 3; c.EOff[0] = 0 }},
		{"unsorted member row", func(c *csr.CSR) { c.EAdj[0], c.EAdj[1] = c.EAdj[1], c.EAdj[0] }},
		{"out-of-range member", func(c *csr.CSR) { c.EAdj[0] = 99 }},
		{"inconsistent directions", func(c *csr.CSR) { c.VAdj[0] = 1 }},
		{"ID map wrong length", func(c *csr.CSR) { c.VertexID = []int32{0} }},
		{"ID map not ascending", func(c *csr.CSR) { c.EdgeID = []int32{1, 0} }},
	}
	for _, b := range breaks {
		c := base(t)
		b.wreck(c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the wreck", b.name)
		}
	}
	if err := base(t).Validate(); err != nil {
		t.Fatalf("unwrecked base must validate: %v", err)
	}
}

// TestDecomposeCtxCancelled pins the cancellation contract: an
// already-cancelled context returns (nil, context.Canceled) before any
// work, on every sweep instance.
func TestDecomposeCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i, h := range check.Instances(12, 0xC5A2) {
		d, err := csr.DecomposeCtx(ctx, csr.FromH(h))
		if d != nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("instance %d: want (nil, context.Canceled), got (%v, %v)", i, d, err)
		}
	}
}

// TestDecomposeCtxBudget pins the budget contract: a one-step budget
// trips a checkpoint on any instance big enough to reach one.
func TestDecomposeCtxBudget(t *testing.T) {
	rng := xrand.New(0xC5A3)
	h := gen.RandomHypergraph(300, 200, 6, rng)
	ctx, _ := run.WithBudget(context.Background(), run.Budget{MaxSteps: 1})
	d, err := csr.DecomposeCtx(ctx, csr.FromH(h))
	if d != nil || !errors.Is(err, run.ErrBudgetExceeded) {
		t.Fatalf("want (nil, ErrBudgetExceeded), got (%v, %v)", d, err)
	}
}

// TestMustInt32 pins the loud-failure contract of the index-space
// narrowing helper: in-range sizes pass through exactly, while a
// negative or too-large size panics with a message naming the overflow
// instead of silently truncating into a corrupt index array.
func TestMustInt32(t *testing.T) {
	for _, ok := range []int{0, 1, 4096, 1<<31 - 1} {
		if got := csr.MustInt32(ok); int(got) != ok {
			t.Errorf("MustInt32(%d) = %d, want pass-through", ok, got)
		}
	}
	for _, bad := range []int{-1, 1 << 31, 1<<31 + 7} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("MustInt32(%d) did not panic", bad)
					return
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, "overflows the int32 index space") {
					t.Errorf("MustInt32(%d) panic = %v, want an index-space overflow message", bad, r)
				}
			}()
			csr.MustInt32(bad)
		}()
	}
}
