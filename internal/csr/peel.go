package csr

import (
	"context"
	"fmt"

	"hyperplex/internal/failpoint"
	"hyperplex/internal/run"
)

// This file is the flat-array decomposition kernel: a lazy bucket-queue
// peeler over a CSR, computing the same core decomposition as the
// level-by-level sequential peeler in internal/core but without maps,
// per-level vertex scans, or per-deletion allocations.  All mutable
// state lives in a single int32 arena carved into slices up front.
//
// The equivalence with the level peeler: popping the minimum-degree
// vertex v at degree d and setting core = max(core, d) assigns v the
// coreness the level peeler assigns when it deletes v while raising the
// threshold to core+1; hyperedges deleted in the cascade get the same
// level's coreness (core).  The fixpoint is confluent, so the vertex
// coreness and MaxK are identical; of duplicate equal-set hyperedges
// the surviving copy can differ by deletion order, which is why the
// differential tests compare induced member-set families per level.

// fpBuild fires at the checkpoints of the construction phase (arena
// setup and initial reduction), before the first vertex pops.
var fpBuild = failpoint.Register("csr.build")

// fpPeel fires at the checkpoints of the peel loop proper.
var fpPeel = failpoint.Register("csr.peel")

// peelCheckEvery bounds the elementary operations between two
// cancellation/budget checkpoints, matching the sequential peeler.
const peelCheckEvery = 64

// Decomposition is the full core decomposition of a CSR, in the flat
// int32 layout the kernel produces.  Local IDs index it; callers
// holding a CSR block map them back through VertexID/EdgeID.
type Decomposition struct {
	// VertexCoreness[v] is the largest k such that v is in the k-core.
	VertexCoreness []int32
	// EdgeCoreness[f] is the largest k such that hyperedge f is in the
	// k-core (0 if f does not survive reduction of the 1-core).
	EdgeCoreness []int32
	// MaxK is the maximum k with a non-empty k-core.
	MaxK int
}

// peelAbort unwinds the peel when a checkpoint trips; it is recovered
// at the Ctx API boundary and never escapes the package.
type peelAbort struct{ err error }

// recoverPeelAbort converts a checkpoint abort into the returned
// error, leaving any other panic untouched.
func recoverPeelAbort(err *error) {
	if x := recover(); x != nil {
		a, ok := x.(peelAbort)
		if !ok {
			panic(x)
		}
		*err = a.err
	}
}

// peeler is the kernel state.  The bucket queue is lazy: a vertex is
// pushed again on every degree decrement and stale entries (degree or
// liveness mismatch) are skipped at pop time, so the entry arena is
// bounded by |V| + |E| (one initial push per vertex, at most one push
// per pin).
type peeler struct {
	c *CSR
	//hyperplexvet:ignore ctxfirst scoped to one DecomposeCtx call; threading ctx through every cascade helper would bloat the hot path
	ctx        context.Context
	meter      *run.Meter
	checkpoint func(n int) // phase-specific: build or peel failpoint
	ops        int

	vAlive, eAlive []bool
	vDeg, eDeg     []int32
	vCore, eCore   []int32

	// Bucket queue: head[d] is the top entry index of degree-d bucket,
	// next links entries, item holds the vertex of each entry.
	head, next, item []int32
	nfree            int32 // next unused entry slot
	cur              int   // lowest possibly-non-empty bucket
	live             []int32

	// Containment scratch: stamp[w] == seq marks w as an alive member
	// of the hyperedge under test, estamp[g] == seq marks g as incident
	// to the test edge's second witness vertex, and shrunk[g] == dseq
	// marks g as incident to the vertex being deleted (no pairwise
	// overlap table is maintained — see nonMaximal).
	stamp  []int32
	estamp []int32
	shrunk []int32
	seq    int32
	dseq   int32

	// mem mirrors the CSR's edge→vertex rows with each row sorted by
	// ascending static vertex row length, so nonMaximal finds the
	// witnesses with the shortest candidate scans in O(1) expected
	// members instead of scanning the whole row.
	mem []int32

	core   int
	aliveV int
}

// charge accrues n elementary operations and fires the current phase's
// checkpoint once the accumulator crosses the threshold.  The common
// case is a plain add-and-compare, so the indirect checkpoint call is
// off the hot path.
func (p *peeler) charge(n int) {
	p.ops += n
	if p.ops >= peelCheckEvery {
		p.checkpoint(0)
	}
}

func (p *peeler) checkpointBuild(n int) {
	p.ops += n
	if p.ops < peelCheckEvery {
		return
	}
	charge := int64(p.ops)
	p.ops = 0
	if err := failpoint.Inject(fpBuild); err != nil {
		//hyperplexvet:ignore nopanic peelAbort unwinds the construction and is recovered at the Ctx API boundary
		panic(peelAbort{fmt.Errorf("csr: build: %w", err)})
	}
	if err := run.Tick(p.ctx, p.meter, charge); err != nil {
		//hyperplexvet:ignore nopanic peelAbort unwinds the construction and is recovered at the Ctx API boundary
		panic(peelAbort{err})
	}
}

func (p *peeler) checkpointPeel(n int) {
	p.ops += n
	if p.ops < peelCheckEvery {
		return
	}
	charge := int64(p.ops)
	p.ops = 0
	if err := failpoint.Inject(fpPeel); err != nil {
		//hyperplexvet:ignore nopanic peelAbort unwinds the cascade and is recovered at the Ctx API boundary
		panic(peelAbort{fmt.Errorf("csr: peel: %w", err)})
	}
	if err := run.Tick(p.ctx, p.meter, charge); err != nil {
		//hyperplexvet:ignore nopanic peelAbort unwinds the cascade and is recovered at the Ctx API boundary
		panic(peelAbort{err})
	}
}

// newPeeler allocates the arena, fills the bucket queue from the
// initial degrees and performs the initial reduction (empty and
// non-maximal hyperedges die at coreness 0).
func newPeeler(ctx context.Context, c *CSR) *peeler {
	// Entry checkpoint: an already-cancelled context aborts before any
	// work, even on inputs too small to reach a periodic checkpoint.
	if err := run.Tick(ctx, run.MeterFrom(ctx), 0); err != nil {
		//hyperplexvet:ignore nopanic peelAbort unwinds the construction and is recovered at the Ctx API boundary
		panic(peelAbort{err})
	}
	nv, ne, pins := c.NumVertices(), c.NumEdges(), c.NumPins()
	p := &peeler{
		c:      c,
		ctx:    ctx,
		meter:  run.MeterFrom(ctx),
		vAlive: make([]bool, nv),
		eAlive: make([]bool, ne),
		aliveV: nv,
	}
	p.checkpoint = p.checkpointBuild

	maxDeg := 0
	for v := 0; v < nv; v++ {
		if d := int(c.VertexDegree(int32(v))); d > maxDeg {
			maxDeg = d
		}
	}
	maxEDeg := 0
	for f := 0; f < ne; f++ {
		if d := int(c.EdgeDegree(int32(f))); d > maxEDeg {
			maxEDeg = d
		}
	}

	// One arena allocation backs every int32 slice of the kernel; the
	// bucket entry arena is sized for the lazy queue's worst case
	// (|V| initial pushes + one push per pin decrement).
	entries := nv + pins
	arena := make([]int32, 3*nv+5*ne+(maxDeg+1)+2*entries+maxDeg+pins)
	carve := func(n int) []int32 {
		s := arena[:n:n]
		arena = arena[n:]
		return s
	}
	p.vDeg = carve(nv)
	p.eDeg = carve(ne)
	p.vCore = carve(nv)
	p.eCore = carve(ne)
	p.head = carve(maxDeg + 1)
	p.next = carve(entries)
	p.item = carve(entries)
	p.live = carve(maxDeg)[:0]
	p.stamp = carve(nv)
	p.estamp = carve(ne)
	p.shrunk = carve(ne)
	p.mem = carve(pins)

	// Witness rows: each hyperedge's members sorted by ascending static
	// vertex row length (insertion sort; rows are short).  nonMaximal
	// scans candidates over a witness's static CSR row, so the cheapest
	// witnesses are the members with the shortest rows — a property of
	// the immutable CSR, computable once here.
	copy(p.mem, c.EAdj)
	for f := 0; f < ne; f++ {
		p.charge(1)
		row := p.mem[c.EOff[f]:c.EOff[f+1]]
		for i := 1; i < len(row); i++ {
			p.charge(1)
			w := row[i]
			lw := c.VOff[w+1] - c.VOff[w]
			j := i - 1
			for ; j >= 0 && c.VOff[row[j]+1]-c.VOff[row[j]] > lw; j-- {
				row[j+1] = row[j]
			}
			row[j+1] = w
		}
	}

	for i := range p.head {
		p.head[i] = -1
	}
	// dseq generations start at 1 (first vertex deletion), so the
	// zeroed shrunk array marks nothing during the initial reduction.
	for i := range p.shrunk {
		p.shrunk[i] = -1
	}
	for v := 0; v < nv; v++ {
		p.vAlive[v] = true
		p.vDeg[v] = c.VertexDegree(int32(v))
	}
	for f := 0; f < ne; f++ {
		p.eAlive[f] = true
		p.eDeg[f] = c.EdgeDegree(int32(f))
	}
	for v := int32(0); int(v) < nv; v++ {
		p.push(v, int(p.vDeg[v]))
	}

	// Initial reduction.  Collect first, then delete, so that the
	// containment tests all see the original incidence state.  The drop
	// list is carved from the arena (worst case: every hyperedge dies),
	// not grown by append — the arena sizing above reserves its ne slot.
	drop := carve(ne)[:0]
	for f := 0; f < ne; f++ {
		p.charge(1)
		if p.eDeg[f] == 0 || p.nonMaximal(int32(f)) {
			drop = append(drop, int32(f))
		}
	}
	for _, f := range drop {
		p.deleteEdge(f)
	}
	return p
}

// push records that vertex v now has degree d.  Entries are never
// removed eagerly; pops skip entries whose recorded degree is stale.
//
//hyperplexvet:hotpath
func (p *peeler) push(v int32, d int) {
	idx := p.nfree
	p.nfree++
	p.item[idx] = v
	p.next[idx] = p.head[d]
	p.head[d] = idx
	if d < p.cur {
		p.cur = d
	}
}

// deleteEdge removes alive hyperedge f at the current core level: its
// alive members lose one degree and are re-pushed at their new bucket.
//
//hyperplexvet:hotpath
func (p *peeler) deleteEdge(f int32) {
	p.charge(1)
	p.eAlive[f] = false
	p.eDeg[f] = 0 // lets nonMaximal's degree filter skip dead candidates
	p.eCore[f] = int32(p.core)
	for _, w := range p.c.EdgeVertices(f) {
		if !p.vAlive[w] {
			continue
		}
		p.vDeg[w]--
		p.push(w, int(p.vDeg[w]))
	}
}

// deleteVertex removes alive vertex v at the current core level.
// Phase one removes v from every alive hyperedge containing it; phase
// two re-checks each shrunk hyperedge for emptiness or non-maximality,
// cascading deleteEdge.  Only shrunk hyperedges need re-checking: a
// containment f ⊆ g over alive vertices can only be created by f
// losing an alive member, and the equal-set tie-break can only flip
// against a hyperedge that shrank in the same deletion.
//
//hyperplexvet:hotpath
func (p *peeler) deleteVertex(v int32) {
	p.charge(1)
	p.vAlive[v] = false
	p.vCore[v] = int32(p.core)
	p.aliveV--

	p.dseq++
	live := p.live[:0]
	for _, f := range p.c.VertexEdges(v) {
		p.shrunk[f] = p.dseq
		if p.eAlive[f] {
			live = append(live, f)
			p.eDeg[f]--
		}
	}
	for _, f := range live {
		if p.eAlive[f] && (p.eDeg[f] == 0 || p.nonMaximal(f)) {
			p.deleteEdge(f)
		}
	}
}

// nonMaximal reports whether alive hyperedge f is contained in another
// alive hyperedge g over the alive vertices, with the reduction
// tie-break (d(g) > d(f), or d(g) == d(f) and g < f, so the lowest-ID
// copy of an equal-set family survives).  Instead of maintaining a
// pairwise overlap table, it scans the hyperedges incident to an alive
// member v1 of f — any g containing f must appear there — and prunes
// the candidates three ways before counting:
//
//   - shrunk filter: a containment newly created by deleting vertex v
//     needs v ∈ f and v ∉ g (if both held v, or neither, the containment
//     already held before the deletion and f would be gone), so
//     hyperedges that shrank in the same deleteVertex are skipped;
//   - witness filter: g must also be incident to a second alive member
//     v2, and for d(f) ≤ 2 the witnesses are the whole containment
//     test;
//   - degree filter: dead hyperedges have eDeg zeroed at deletion, so
//     the tie-break comparison skips them without a liveness load.
//
// The witnesses v1, v2 are the first two alive members of f in the
// presorted mem row — the alive members whose static CSR rows, and so
// whose candidate scans, are shortest.  Only candidates surviving all
// three filters reach the member count, so f's alive members are
// stamped lazily on the first such candidate.
//
//hyperplexvet:hotpath
func (p *peeler) nonMaximal(f int32) bool {
	df := p.eDeg[f]
	if df == 0 {
		return false
	}
	// Hot loop: raw field locals keep the candidate scan free of
	// repeated slice-header construction and pointer loads.
	estamp, eDeg := p.estamp, p.eDeg
	vAlive, shrunk, dseq := p.vAlive, p.shrunk, p.dseq
	mrow := p.mem[p.c.EOff[f]:p.c.EOff[f+1]]
	var v1 int32
	i := 0
	//hyperplexvet:ignore budgettick bounded: eDeg[f] > 0 guarantees an alive member in mrow
	for ; ; i++ {
		if w := mrow[i]; vAlive[w] {
			v1 = w
			i++
			break
		}
	}
	row := p.c.VertexEdges(v1)
	p.charge(len(row))
	if df == 1 {
		// Every candidate contains v1 — f's only alive member — so the
		// tie-break alone decides.
		for _, g := range row {
			if g == f || shrunk[g] == dseq {
				continue
			}
			if dg := eDeg[g]; dg > 1 || (dg == 1 && g < f) {
				return true
			}
		}
		return false
	}
	var v2 int32
	//hyperplexvet:ignore budgettick bounded: df >= 2 here, so a second alive member follows in mrow
	for ; ; i++ {
		if w := mrow[i]; vAlive[w] {
			v2 = w
			break
		}
	}
	seq := p.nextSeq()
	for _, g := range p.c.VertexEdges(v2) {
		estamp[g] = seq
	}
	eOff, eAdj := p.c.EOff, p.c.EAdj
	stamp, stamped := p.stamp, false
	for _, g := range row {
		p.charge(1)
		if estamp[g] != seq || g == f || shrunk[g] == dseq {
			continue
		}
		if dg := eDeg[g]; dg < df || (dg == df && g > f) {
			continue
		}
		if df == 2 {
			return true // g contains both witnesses — all of alive(f)
		}
		if !stamped {
			stamped = true
			for _, w := range mrow {
				if vAlive[w] {
					stamp[w] = seq
				}
			}
		}
		n := int32(0)
		for _, w := range eAdj[eOff[g]:eOff[g+1]] {
			if stamp[w] == seq {
				n++
			}
		}
		if n == df {
			return true
		}
	}
	return false
}

// nextSeq advances the stamp generation, clearing both stamp arrays on
// the (rare) int32 wraparound so stale stamps cannot alias.
func (p *peeler) nextSeq() int32 {
	if p.seq == 1<<31-1 {
		p.seq = 0
		clear(p.stamp)
		clear(p.estamp)
	}
	p.seq++
	return p.seq
}

// peel drains the bucket queue: repeatedly pop a minimum-degree alive
// vertex, raise the core level to its degree if higher, and delete it.
//
//hyperplexvet:hotpath
func (p *peeler) peel() {
	p.checkpoint = p.checkpointPeel
	for p.aliveV > 0 {
		for p.head[p.cur] == -1 {
			p.cur++
		}
		idx := p.head[p.cur]
		p.head[p.cur] = p.next[idx]
		v := p.item[idx]
		// Each pop is charged here: a bucket full of stale entries would
		// otherwise drain through the continue below with no checkpoint.
		p.charge(1)
		if !p.vAlive[v] || int(p.vDeg[v]) != p.cur {
			continue // stale entry: v died or was decremented since
		}
		if p.cur > p.core {
			p.core = p.cur
		}
		p.deleteVertex(v)
	}
}

// Decompose computes the full core decomposition of c with the
// bucket-queue peeler.  It is the flat-array equivalent of the level
// peeler in internal/core: identical vertex coreness, edge coreness
// levels and MaxK (the surviving copy of duplicate equal-set
// hyperedges may differ, with equal induced member-set families).
func Decompose(c *CSR) *Decomposition {
	d, err := DecomposeCtx(context.Background(), c)
	if err != nil {
		// Only reachable through an armed failpoint: a background
		// context cannot be cancelled and carries no budget.
		panic(err)
	}
	return d
}

// DecomposeCtx is Decompose honoring cancellation, deadline and any
// run.Budget attached to ctx, checked every bounded number of peel
// operations.  On cancellation or budget exhaustion it returns
// (nil, err): the half-peeled state is not a valid decomposition.
func DecomposeCtx(ctx context.Context, c *CSR) (d *Decomposition, err error) {
	defer recoverPeelAbort(&err)
	p := newPeeler(ctx, c)
	p.peel()
	return &Decomposition{
		VertexCoreness: p.vCore,
		EdgeCoreness:   p.eCore,
		MaxK:           p.core,
	}, nil
}
