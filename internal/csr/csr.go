// Package csr is the flat-array kernel substrate: an immutable
// compressed-sparse-row view of a hypergraph with both incidence
// directions as int32 index arrays, plus optional ID maps back to the
// builder-layer hypergraph.Hypergraph it was carved from.
//
// The split of responsibilities is deliberate: hypergraph.Hypergraph
// remains the builder/IO layer (names, validation, file formats), while
// the hot kernels — the bucket-queue peeler in this package and the
// overlap reduction shared with internal/core — run over a CSR whose
// adjacency is four dense slices.  FromH is O(|V| + |F|) (the pin
// arrays are aliased, not copied), so converting at a kernel boundary
// is cheap; ToH rebuilds a full Hypergraph for callers that want to
// keep analyzing a materialized block.
package csr

import (
	"fmt"
	"slices"

	"hyperplex/internal/hypergraph"
)

// CSR is an immutable compressed-sparse-row hypergraph: hyperedges
// containing vertex v are VAdj[VOff[v]:VOff[v+1]], vertices of
// hyperedge f are EAdj[EOff[f]:EOff[f+1]], both sorted ascending.
// All IDs are dense int32 local to this CSR; when the CSR is a block
// of a larger hypergraph (partition.MaterializeCSR), VertexID and
// EdgeID map local IDs back to the original ones.  Kernels must treat
// every slice as read-only.
type CSR struct {
	VOff []int32 // len NumVertices()+1
	VAdj []int32 // vertex→edge pins
	EOff []int32 // len NumEdges()+1
	EAdj []int32 // edge→vertex pins

	// VertexID and EdgeID, when non-nil, give the original ID of each
	// local vertex and hyperedge (both strictly ascending).  Nil means
	// the identity map: the CSR covers its source hypergraph whole.
	VertexID []int32
	EdgeID   []int32
}

// NumVertices returns |V|.
func (c *CSR) NumVertices() int { return len(c.VOff) - 1 }

// NumEdges returns |F|.
func (c *CSR) NumEdges() int { return len(c.EOff) - 1 }

// NumPins returns |E| = Σ_f d(f), the size of the incidence relation.
func (c *CSR) NumPins() int { return len(c.EAdj) }

// VertexEdges returns the sorted hyperedges containing vertex v,
// aliasing internal storage.
func (c *CSR) VertexEdges(v int32) []int32 { return c.VAdj[c.VOff[v]:c.VOff[v+1]] }

// EdgeVertices returns the sorted vertices of hyperedge f, aliasing
// internal storage.
func (c *CSR) EdgeVertices(f int32) []int32 { return c.EAdj[c.EOff[f]:c.EOff[f+1]] }

// VertexDegree returns d(v).
func (c *CSR) VertexDegree(v int32) int32 { return c.VOff[v+1] - c.VOff[v] }

// EdgeDegree returns d(f).
func (c *CSR) EdgeDegree(f int32) int32 { return c.EOff[f+1] - c.EOff[f] }

// FromH builds the CSR view of h.  The adjacency arrays are aliased
// from h (hypergraph.Hypergraph is itself immutable), so the
// conversion costs O(|V| + |F|) for the offset narrowing only.  The ID
// maps are nil: the view covers h whole and local IDs equal h's IDs.
func FromH(h *hypergraph.Hypergraph) *CSR {
	vOff, vAdj, eOff, eAdj := h.RawCSR()
	c := &CSR{
		VOff: narrow(vOff),
		VAdj: vAdj,
		EOff: narrow(eOff),
		EAdj: eAdj,
	}
	return c
}

// MustInt32 narrows a size-derived int to int32, panicking when the
// value does not fit.  The CSR index space is int32 by design; every
// narrowing of a length, count or offset must go through this helper
// (or an explicit bound check) so that a pathological input fails
// loudly instead of silently truncating into a corrupt index array.
// The int32narrow analyzer enforces the convention.
func MustInt32(x int) int32 {
	if x < 0 || x > 1<<31-1 {
		panic(fmt.Sprintf("csr: size %d overflows the int32 index space", x))
	}
	return int32(x)
}

// narrow converts an int offset array to int32, failing loudly via
// MustInt32 if a pin count ever exceeds the int32 index space (offsets
// are monotone, so checking each entry checks the total).
func narrow(off []int) []int32 {
	out := make([]int32, len(off))
	for i, x := range off {
		out[i] = MustInt32(x)
	}
	return out
}

// ToH rebuilds a builder-layer Hypergraph from the CSR, with generated
// names ("v0", "f0", ... over local IDs).  Structure — member sets,
// degree sequences, pin count — round-trips exactly; names do not,
// since the CSR never carried them.
func (c *CSR) ToH() (*hypergraph.Hypergraph, error) {
	edges := make([][]int32, c.NumEdges())
	for f := range edges {
		edges[f] = c.EdgeVertices(int32(f))
	}
	return hypergraph.FromEdgeSets(c.NumVertices(), edges)
}

// Validate checks the structural invariants: offsets start at zero,
// are monotone and end at the pin count, both directions describe the
// same pin set, rows are strictly sorted, and the optional ID maps are
// sized and ordered consistently.  Kernels assume a valid CSR; the
// check is for tests and for code assembling CSRs by hand.
func (c *CSR) Validate() error {
	nv, ne := c.NumVertices(), c.NumEdges()
	if nv < 0 || ne < 0 {
		return fmt.Errorf("csr: offset arrays must have at least one entry")
	}
	if c.VOff[0] != 0 || c.EOff[0] != 0 {
		return fmt.Errorf("csr: offset arrays must start at 0")
	}
	if int(c.VOff[nv]) != len(c.VAdj) {
		return fmt.Errorf("csr: vertex offsets end at %d, want %d", c.VOff[nv], len(c.VAdj))
	}
	if int(c.EOff[ne]) != len(c.EAdj) {
		return fmt.Errorf("csr: edge offsets end at %d, want %d", c.EOff[ne], len(c.EAdj))
	}
	if len(c.VAdj) != len(c.EAdj) {
		return fmt.Errorf("csr: pin counts disagree: %d vertex-side vs %d edge-side", len(c.VAdj), len(c.EAdj))
	}
	for v := 0; v < nv; v++ {
		if c.VOff[v+1] < c.VOff[v] {
			return fmt.Errorf("csr: vertex %d has negative degree", v)
		}
		row := c.VertexEdges(int32(v))
		for i, f := range row {
			if f < 0 || int(f) >= ne {
				return fmt.Errorf("csr: vertex %d lists out-of-range hyperedge %d", v, f)
			}
			if i > 0 && row[i-1] >= f {
				return fmt.Errorf("csr: vertex %d adjacency not strictly sorted", v)
			}
			if !c.edgeContains(f, int32(v)) {
				return fmt.Errorf("csr: vertex %d lists hyperedge %d, which does not contain it", v, f)
			}
		}
	}
	for f := 0; f < ne; f++ {
		if c.EOff[f+1] < c.EOff[f] {
			return fmt.Errorf("csr: hyperedge %d has negative cardinality", f)
		}
		row := c.EdgeVertices(int32(f))
		for i, v := range row {
			if v < 0 || int(v) >= nv {
				return fmt.Errorf("csr: hyperedge %d lists out-of-range vertex %d", f, v)
			}
			if i > 0 && row[i-1] >= v {
				return fmt.Errorf("csr: hyperedge %d member list not strictly sorted", f)
			}
		}
	}
	if err := validateIDMap("vertex", c.VertexID, nv); err != nil {
		return err
	}
	if err := validateIDMap("hyperedge", c.EdgeID, ne); err != nil {
		return err
	}
	return nil
}

func (c *CSR) edgeContains(f, v int32) bool {
	_, ok := slices.BinarySearch(c.EdgeVertices(f), v)
	return ok
}

func validateIDMap(kind string, ids []int32, n int) error {
	if ids == nil {
		return nil
	}
	if len(ids) != n {
		return fmt.Errorf("csr: %s ID map has %d entries, want %d", kind, len(ids), n)
	}
	for i, id := range ids {
		if id < 0 {
			return fmt.Errorf("csr: %s ID map entry %d is negative", kind, i)
		}
		if i > 0 && ids[i-1] >= id {
			return fmt.Errorf("csr: %s ID map not strictly ascending at %d", kind, i)
		}
	}
	return nil
}
