package csr

import "slices"

// Overlaps is the flat-array overlap table of the reduction layer:
// for every hyperedge f it stores the sorted row of hyperedges g
// sharing at least one vertex with f initially, and alongside it the
// current |f ∩ g| over alive vertices.  It replaces the per-hyperedge
// Go maps of the original sequential peeler with three int32 arrays
// (offsets, neighbor IDs, counts), so a containment probe is a binary
// search in a cache-resident row instead of a hash walk.
//
// The row structure is fixed at Build time; deletions are expressed by
// the dropped flags (hyperedges) and by decrementing counts (vertices,
// via ShrinkPairwise).  Counts of pairs involving a dropped hyperedge
// go stale, which is harmless: every reader skips dropped rows and
// dropped neighbors.
type Overlaps struct {
	off     []int32 // len NumEdges()+1; row of f is nbr[off[f]:off[f+1]]
	nbr     []int32 // initially-overlapping hyperedges, sorted per row
	cnt     []int32 // cnt[i] = current |f ∩ nbr[i]| over alive vertices
	dropped []bool
}

// Build fills the table for c with every vertex and hyperedge alive,
// in O(Σ_v d(v)²) time and three passes over the two-hop structure.
// checkpoint is called with an operation count at bounded intervals so
// the caller can honor cancellation and budgets; pass a no-op when the
// construction is not cancellable.
func (o *Overlaps) Build(c *CSR, checkpoint func(n int)) {
	ne := c.NumEdges()
	o.off = make([]int32, ne+1)
	o.dropped = make([]bool, ne)

	// Pass 1: d₂ per hyperedge with a stamped scratch, giving the row
	// offsets.
	stamp := make([]int32, ne)
	for i := range stamp {
		stamp[i] = -1
	}
	for f := 0; f < ne; f++ {
		checkpoint(1)
		d2 := int32(0)
		for _, v := range c.EdgeVertices(int32(f)) {
			for _, g := range c.VertexEdges(v) {
				if g != int32(f) && stamp[g] != int32(f) {
					stamp[g] = int32(f)
					d2++
				}
			}
		}
		o.off[f+1] = o.off[f] + d2
	}
	o.nbr = make([]int32, o.off[ne])
	o.cnt = make([]int32, o.off[ne])

	// Pass 2: collect each row's distinct neighbors and sort it.  The
	// stamp array is re-used with an offset generation (f+ne > every
	// pass-1 stamp), so no second scratch allocation or clearing pass.
	for f := 0; f < ne; f++ {
		row := o.nbr[o.off[f]:o.off[f]]
		for _, v := range c.EdgeVertices(int32(f)) {
			checkpoint(1 + len(c.VertexEdges(v)))
			for _, g := range c.VertexEdges(v) {
				if g != int32(f) && stamp[g] != int32(f)+int32(ne) {
					stamp[g] = int32(f) + int32(ne)
					row = append(row, g)
				}
			}
		}
		slices.Sort(row)
	}

	// Pass 3: accumulate the overlap counts.  pos[g] is g's slot in the
	// current row; it is fully rewritten per row before being read, so
	// the array needs no clearing between rows.
	pos := stamp // reuse: every entry is written before read below
	for f := 0; f < ne; f++ {
		lo, hi := o.off[f], o.off[f+1]
		for i := lo; i < hi; i++ {
			pos[o.nbr[i]] = i
		}
		for _, v := range c.EdgeVertices(int32(f)) {
			checkpoint(1 + len(c.VertexEdges(v)))
			for _, g := range c.VertexEdges(v) {
				if g != int32(f) {
					o.cnt[pos[g]]++
				}
			}
		}
	}
}

// Overlap returns the current |f ∩ g| (0 when the hyperedges do not
// overlap among alive vertices, or when either has been dropped).
func (o *Overlaps) Overlap(f, g int) int {
	if o.dropped[f] || o.dropped[g] {
		return 0
	}
	lo, hi := o.off[f], o.off[f+1]
	i, ok := slices.BinarySearch(o.nbr[lo:hi], int32(g))
	if !ok {
		return 0
	}
	return int(o.cnt[int(lo)+i])
}

// NonMaximal reports whether alive hyperedge f is currently contained
// in another alive hyperedge: some g with |f ∩ g| = d(f) and either
// d(g) > d(f) (strict containment) or d(g) = d(f) with g < f (the
// tie-break that keeps exactly one copy of equal hyperedges).  eDeg
// holds the current alive degrees of the hyperedges.
func (o *Overlaps) NonMaximal(f int, eDeg []int32) bool {
	df := eDeg[f]
	if df == 0 {
		return false
	}
	for i := o.off[f]; i < o.off[f+1]; i++ {
		if o.cnt[i] != df {
			continue
		}
		g := o.nbr[i]
		if o.dropped[g] {
			continue
		}
		dg := eDeg[g]
		if dg > df || (dg == df && int(g) < f) {
			return true
		}
	}
	return false
}

// DropEdge removes hyperedge f from the table.  Deleting an edge can
// never make another edge non-maximal, so no containment re-checks are
// needed; readers skip dropped hyperedges, so the stale counts of
// pairs involving f are never consulted.
func (o *Overlaps) DropEdge(f int) {
	o.dropped[f] = true
}

// ShrinkPairwise updates the table after one vertex shared by exactly
// the hyperedges in live has been deleted: every pairwise overlap
// among them decreases by one.  Each pair shares the deleted vertex,
// so it is guaranteed present in both rows.
func (o *Overlaps) ShrinkPairwise(live []int32) {
	for i := 0; i < len(live); i++ {
		for j := i + 1; j < len(live); j++ {
			o.dec(live[i], live[j])
			o.dec(live[j], live[i])
		}
	}
}

func (o *Overlaps) dec(f, g int32) {
	lo, hi := o.off[f], o.off[f+1]
	if i, ok := slices.BinarySearch(o.nbr[lo:hi], g); ok {
		o.cnt[int(lo)+i]--
	}
}
