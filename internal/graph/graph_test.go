package graph

import (
	"testing"
	"testing/quick"

	"hyperplex/internal/hypergraph"
	"hyperplex/internal/xrand"
)

// path5 is 0-1-2-3-4.
func path5(t *testing.T) *Graph {
	t.Helper()
	return MustBuild(5, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
}

func TestBuildDedup(t *testing.T) {
	g := MustBuild(3, [][2]int32{{0, 1}, {1, 0}, {0, 1}, {2, 2}})
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1 (dedup + self-loop removal)", g.NumEdges())
	}
	if g.Degree(2) != 0 {
		t.Errorf("Degree(2) = %d, want 0", g.Degree(2))
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Error("HasEdge incorrect")
	}
}

func TestBuildOutOfRange(t *testing.T) {
	if _, err := Build(2, [][2]int32{{0, 2}}); err == nil {
		t.Error("Build accepted out-of-range endpoint")
	}
	if _, err := Build(2, [][2]int32{{-1, 0}}); err == nil {
		t.Error("Build accepted negative endpoint")
	}
}

func TestBFS(t *testing.T) {
	g := path5(t)
	dist := g.BFS(0, nil)
	want := []int32{0, 1, 2, 3, 4}
	for v, w := range want {
		if dist[v] != w {
			t.Errorf("dist[%d] = %d, want %d", v, dist[v], w)
		}
	}
	// Disconnected vertex.
	g2 := MustBuild(3, [][2]int32{{0, 1}})
	d2 := g2.BFS(0, nil)
	if d2[2] != -1 {
		t.Errorf("dist to disconnected vertex = %d, want -1", d2[2])
	}
}

func TestBFSReuseBuffer(t *testing.T) {
	g := path5(t)
	buf := make([]int32, 0, 16)
	d := g.BFS(4, buf)
	if d[0] != 4 {
		t.Errorf("dist[0] = %d, want 4", d[0])
	}
}

func TestComponents(t *testing.T) {
	g := MustBuild(6, [][2]int32{{0, 1}, {1, 2}, {3, 4}})
	comp, n := g.Components()
	if n != 3 {
		t.Fatalf("components = %d, want 3", n)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Error("vertices 0,1,2 should share a component")
	}
	if comp[3] != comp[4] || comp[3] == comp[0] {
		t.Error("vertices 3,4 should form their own component")
	}
	if comp[5] == comp[0] || comp[5] == comp[3] {
		t.Error("vertex 5 should be isolated")
	}
}

func TestSubgraph(t *testing.T) {
	g := MustBuild(5, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}})
	keep := []bool{true, true, true, false, false}
	sub, vMap := g.Subgraph(keep)
	if sub.NumVertices() != 3 || sub.NumEdges() != 2 {
		t.Errorf("subgraph |V|=%d |E|=%d, want 3, 2", sub.NumVertices(), sub.NumEdges())
	}
	if !sub.HasEdge(vMap[0], vMap[1]) || !sub.HasEdge(vMap[1], vMap[2]) {
		t.Error("subgraph lost kept edges")
	}
}

func TestClusteringCoefficient(t *testing.T) {
	// Triangle: every vertex has C = 1.
	tri := MustBuild(3, [][2]int32{{0, 1}, {1, 2}, {0, 2}})
	if c := tri.ClusteringCoefficient(); c != 1 {
		t.Errorf("triangle clustering = %v, want 1", c)
	}
	// Path: middle vertices have C = 0, endpoints excluded.
	if c := path5(t).ClusteringCoefficient(); c != 0 {
		t.Errorf("path clustering = %v, want 0", c)
	}
}

func buildTinyHypergraph(t *testing.T) *hypergraph.Hypergraph {
	t.Helper()
	b := hypergraph.NewBuilder()
	b.AddEdge("c1", "a", "b", "c")
	b.AddEdge("c2", "c", "d")
	b.AddEdge("c3", "e")
	return b.MustBuild()
}

func TestCliqueExpansion(t *testing.T) {
	h := buildTinyHypergraph(t)
	g := CliqueExpansion(h)
	// c1 contributes C(3,2)=3 edges, c2 contributes 1, c3 none.
	if g.NumEdges() != 4 {
		t.Errorf("clique expansion edges = %d, want 4", g.NumEdges())
	}
	a, _ := h.VertexID("a")
	b, _ := h.VertexID("b")
	d, _ := h.VertexID("d")
	if !g.HasEdge(a, b) {
		t.Error("clique expansion missing intra-complex edge a-b")
	}
	if g.HasEdge(a, d) {
		t.Error("clique expansion has spurious edge a-d")
	}
	// A shared member produces a clique per complex but no dedup issue:
	// verify count helper agrees.
	if CliqueExpansionEdgeCount(h) != g.NumEdges() {
		t.Error("CliqueExpansionEdgeCount disagrees with expansion")
	}
}

func TestStarExpansion(t *testing.T) {
	h := buildTinyHypergraph(t)
	c, _ := h.VertexID("c") // degree 2, the max in both c1 and c2
	g := StarExpansion(h, nil)
	// c is the default bait of c1 and c2: edges c-a, c-b, c-d.
	if g.NumEdges() != 3 {
		t.Errorf("star expansion edges = %d, want 3", g.NumEdges())
	}
	a, _ := h.VertexID("a")
	b, _ := h.VertexID("b")
	if !g.HasEdge(c, a) || !g.HasEdge(c, b) || g.HasEdge(a, b) {
		t.Error("star expansion structure wrong")
	}
	// Explicit baits.
	baits := []int{a, -1, -1}
	g2 := StarExpansion(h, baits)
	if !g2.HasEdge(a, b) || !g2.HasEdge(a, c) {
		t.Error("explicit bait not honored")
	}
}

func TestIntersectionGraph(t *testing.T) {
	h := buildTinyHypergraph(t)
	g, edges, weights := IntersectionGraph(h)
	if g.NumVertices() != 3 {
		t.Fatalf("intersection graph |V| = %d, want 3", g.NumVertices())
	}
	// Only c1 and c2 share a protein (c).
	if g.NumEdges() != 1 || len(edges) != 1 || weights[0] != 1 {
		t.Errorf("intersection graph edges = %d (%v, w=%v), want one edge of weight 1", g.NumEdges(), edges, weights)
	}
	c1, _ := h.EdgeID("c1")
	c2, _ := h.EdgeID("c2")
	if !g.HasEdge(c1, c2) {
		t.Error("intersection edge c1-c2 missing")
	}
}

func TestIntersectionGraphWeights(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.AddEdge("f", "a", "b", "c")
	b.AddEdge("g", "b", "c", "d")
	h := b.MustBuild()
	_, edges, weights := IntersectionGraph(h)
	if len(edges) != 1 || weights[0] != 2 {
		t.Errorf("weights = %v, want [2]", weights)
	}
}

func TestBipartite(t *testing.T) {
	h := buildTinyHypergraph(t)
	g := Bipartite(h)
	if g.NumVertices() != h.NumVertices()+h.NumEdges() {
		t.Fatalf("bipartite |V| = %d", g.NumVertices())
	}
	if g.NumEdges() != h.NumPins() {
		t.Errorf("bipartite |E| = %d, want %d pins", g.NumEdges(), h.NumPins())
	}
	// a-c1 incidence becomes an edge; a has no direct protein edges.
	a, _ := h.VertexID("a")
	c1, _ := h.EdgeID("c1")
	if !g.HasEdge(a, h.NumVertices()+c1) {
		t.Error("bipartite missing pin edge")
	}
	// Distance a..d: a -c1- c -c2- d = 4 bipartite hops (2 hyperedges).
	d, _ := h.VertexID("d")
	dist := g.BFS(a, nil)
	if dist[d] != 4 {
		t.Errorf("bipartite dist(a,d) = %d, want 4", dist[d])
	}
}

func TestPropertyDegreeSumTwiceEdges(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 2 + rng.Intn(40)
		ne := rng.Intn(3 * n)
		edges := make([][2]int32, ne)
		for i := range edges {
			edges[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
		}
		g := MustBuild(n, edges)
		sum := 0
		for v := 0; v < n; v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyBFSTriangleInequality(t *testing.T) {
	// dist(src, v) <= dist(src, u) + 1 for every edge (u, v).
	prop := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 2 + rng.Intn(30)
		ne := rng.Intn(2 * n)
		edges := make([][2]int32, ne)
		for i := range edges {
			edges[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
		}
		g := MustBuild(n, edges)
		dist := g.BFS(0, nil)
		for u := 0; u < n; u++ {
			if dist[u] < 0 {
				continue
			}
			for _, v := range g.Neighbors(u) {
				if dist[v] < 0 || dist[v] > dist[u]+1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCliqueExpansionUpperBound(t *testing.T) {
	// Clique expansion never exceeds Σ d(f)(d(f)-1)/2 edges.
	prop := func(seed uint64) bool {
		rng := xrand.New(seed)
		nv := 3 + rng.Intn(20)
		b := hypergraph.NewBuilder()
		for v := 0; v < nv; v++ {
			b.AddVertex(string(rune('A' + v)))
		}
		ne := 1 + rng.Intn(8)
		for f := 0; f < ne; f++ {
			sz := 1 + rng.Intn(5)
			members := make([]int32, sz)
			for i := range members {
				members[i] = int32(rng.Intn(nv))
			}
			b.AddEdgeIDs("", members)
		}
		h := b.MustBuild()
		bound := 0
		for f := 0; f < h.NumEdges(); f++ {
			d := h.EdgeDegree(f)
			bound += d * (d - 1) / 2
		}
		return CliqueExpansion(h).NumEdges() <= bound
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
