// Differential tests validating the CSR graph expansions against the
// naive map-based oracles in internal/check, over the deterministic
// generator sweep.  This file is an external test package because
// check imports graph.
package graph_test

import (
	"testing"

	"hyperplex/internal/check"
	"hyperplex/internal/graph"
)

func TestDifferentialCliqueExpansion(t *testing.T) {
	for i, h := range check.Instances(58, 0xE79A1) {
		g := graph.CliqueExpansion(h)
		want := check.CliqueEdges(h)
		if err := check.SameGraph(g, h.NumVertices(), want); err != nil {
			t.Fatalf("instance %d %v: %v", i, h, err)
		}
		if got := graph.CliqueExpansionEdgeCount(h); got != len(want) {
			t.Fatalf("instance %d %v: CliqueExpansionEdgeCount = %d, want %d", i, h, got, len(want))
		}
	}
}

func TestDifferentialStarExpansion(t *testing.T) {
	for i, h := range check.Instances(58, 0xE79A2) {
		// Default bait selection (highest degree, ties by ID).
		g := graph.StarExpansion(h, nil)
		if err := check.SameGraph(g, h.NumVertices(), check.StarEdges(h, nil)); err != nil {
			t.Fatalf("instance %d %v, default baits: %v", i, h, err)
		}
		// Explicit baits: first member of each hyperedge.
		baitOf := make([]int, h.NumEdges())
		for f := range baitOf {
			if m := h.Vertices(f); len(m) > 0 {
				baitOf[f] = int(m[0])
			} else {
				baitOf[f] = -1
			}
		}
		g = graph.StarExpansion(h, baitOf)
		if err := check.SameGraph(g, h.NumVertices(), check.StarEdges(h, baitOf)); err != nil {
			t.Fatalf("instance %d %v, explicit baits: %v", i, h, err)
		}
	}
}

func TestDifferentialIntersectionGraph(t *testing.T) {
	for i, h := range check.Instances(58, 0xE79A3) {
		g, edges, weights := graph.IntersectionGraph(h)
		want := check.IntersectionEdges(h)
		if len(edges) != len(weights) {
			t.Fatalf("instance %d %v: %d edges but %d weights", i, h, len(edges), len(weights))
		}
		if len(edges) != len(want) {
			t.Fatalf("instance %d %v: %d edges, want %d", i, h, len(edges), len(want))
		}
		boolWant := make(map[[2]int32]bool, len(want))
		for e := range want {
			boolWant[e] = true
		}
		if err := check.SameGraph(g, h.NumEdges(), boolWant); err != nil {
			t.Fatalf("instance %d %v: %v", i, h, err)
		}
		for j, e := range edges {
			key := e
			if key[0] > key[1] {
				key[0], key[1] = key[1], key[0]
			}
			shared, ok := want[key]
			if !ok {
				t.Fatalf("instance %d %v: edge (%d,%d) not in oracle", i, h, e[0], e[1])
			}
			if weights[j] != shared {
				t.Fatalf("instance %d %v: edge (%d,%d) weight %d, want %d shared proteins",
					i, h, e[0], e[1], weights[j], shared)
			}
		}
	}
}

func TestDifferentialBipartite(t *testing.T) {
	for i, h := range check.Instances(58, 0xE79A4) {
		g := graph.Bipartite(h)
		if err := check.SameGraph(g, h.NumVertices()+h.NumEdges(), check.BipartiteEdges(h)); err != nil {
			t.Fatalf("instance %d %v: %v", i, h, err)
		}
	}
}
