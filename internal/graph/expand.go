package graph

import (
	"hyperplex/internal/hypergraph"
)

// This file implements the graph representations of protein-complex
// data that the paper criticizes in §1.2, so that the model-comparison
// experiment (X4) can quantify their costs against the hypergraph.

// CliqueExpansion returns the protein-protein interaction graph in
// which every complex is replaced by a clique on its members.  A
// complex with n members costs O(n²) edges here versus the O(n) pins of
// the hypergraph — the space blow-up the paper calls out.  The returned
// graph shares vertex IDs with h.
func CliqueExpansion(h *hypergraph.Hypergraph) *Graph {
	var edges [][2]int32
	for f := 0; f < h.NumEdges(); f++ {
		m := h.Vertices(f)
		for i := 0; i < len(m); i++ {
			for j := i + 1; j < len(m); j++ {
				edges = append(edges, [2]int32{m[i], m[j]})
			}
		}
	}
	return MustBuild(h.NumVertices(), edges)
}

// CliqueExpansionEdgeCount returns the number of distinct edges the
// clique expansion would create, without materializing it.  (Used by
// storage-cost accounting; it simply builds the deduplicated structure
// and reports, since exact deduplicated counting requires the
// structure anyway.)
func CliqueExpansionEdgeCount(h *hypergraph.Hypergraph) int {
	return CliqueExpansion(h).NumEdges()
}

// StarExpansion returns the protein-protein interaction graph in which
// every complex is replaced by a star: the complex's bait protein is
// connected to every other member.  baitOf[f] gives the bait vertex of
// hyperedge f; a value of -1 selects the member with the highest
// hypergraph degree (a deterministic stand-in when the bait is
// unknown).  The returned graph shares vertex IDs with h.
func StarExpansion(h *hypergraph.Hypergraph, baitOf []int) *Graph {
	var edges [][2]int32
	for f := 0; f < h.NumEdges(); f++ {
		m := h.Vertices(f)
		if len(m) < 2 {
			continue
		}
		bait := -1
		if baitOf != nil {
			bait = baitOf[f]
		}
		if bait < 0 {
			// Deterministic default: highest-degree member, ties by ID.
			best := -1
			for _, v := range m {
				if best < 0 || h.VertexDegree(int(v)) > h.VertexDegree(best) {
					best = int(v)
				}
			}
			bait = best
		}
		for _, v := range m {
			if int(v) != bait {
				edges = append(edges, [2]int32{int32(bait), v})
			}
		}
	}
	return MustBuild(h.NumVertices(), edges)
}

// IntersectionGraph returns the complex intersection graph: one vertex
// per hyperedge of h, with an edge joining two complexes that share at
// least one protein.  weights[i] is the number of shared proteins for
// the i-th returned edge (the edge weighting the paper describes).
// Proteins are not represented at all — the information loss the paper
// criticizes.
func IntersectionGraph(h *hypergraph.Hypergraph) (g *Graph, edges [][2]int32, weights []int) {
	ne := h.NumEdges()
	stamp := make([]int32, ne)
	count := make([]int, ne)
	for i := range stamp {
		stamp[i] = -1
	}
	var touched []int32
	for f := 0; f < ne; f++ {
		touched = touched[:0]
		for _, v := range h.Vertices(f) {
			for _, g2 := range h.Edges(int(v)) {
				if int(g2) <= f { // emit each pair once, from the lower side
					continue
				}
				if stamp[g2] != int32(f) {
					stamp[g2] = int32(f)
					count[g2] = 0
					touched = append(touched, g2)
				}
				count[g2]++
			}
		}
		for _, g2 := range touched {
			edges = append(edges, [2]int32{int32(f), g2})
			weights = append(weights, count[g2])
		}
	}
	return MustBuild(ne, edges), edges, weights
}

// Bipartite returns the bipartite graph B(H) = (X, Y, E): vertices
// 0..|V|-1 are the hypergraph's vertices, vertices |V|..|V|+|F|-1 are
// its hyperedges, and each pin becomes an edge.  Distances in the
// hypergraph's alternating-path metric are bipartite distances halved.
func Bipartite(h *hypergraph.Hypergraph) *Graph {
	nv := h.NumVertices()
	edges := make([][2]int32, 0, h.NumPins())
	for f := 0; f < h.NumEdges(); f++ {
		fn := int32(nv + f)
		for _, v := range h.Vertices(f) {
			edges = append(edges, [2]int32{v, fn})
		}
	}
	return MustBuild(nv+h.NumEdges(), edges)
}
