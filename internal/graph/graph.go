// Package graph provides the plain-graph substrate that the paper's
// baseline models live on: protein-protein interaction graphs obtained
// by clique or star expansion of a complex, the complex intersection
// graph, and the bipartite graph B(H) used to draw and traverse a
// hypergraph.  It also supplies the BFS and connected-component
// primitives shared by the statistics package.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable simple undirected graph in CSR form.  Vertices
// are dense integer IDs; self-loops and parallel edges are removed at
// construction.
type Graph struct {
	off []int
	adj []int32
	m   int // number of undirected edges
}

// Build constructs a Graph over n vertices from an edge list.  Self
// loops are dropped and parallel edges deduplicated.  It returns an
// error if an endpoint is out of range.
func Build(n int, edges [][2]int32) (*Graph, error) {
	adjSets := make([][]int32, n)
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || int(u) >= n || v < 0 || int(v) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, n)
		}
		if u == v {
			continue
		}
		adjSets[u] = append(adjSets[u], v)
		adjSets[v] = append(adjSets[v], u)
	}
	g := &Graph{off: make([]int, n+1)}
	total := 0
	for u := range adjSets {
		s := adjSets[u]
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		w := 0
		for i, v := range s {
			if i == 0 || s[i-1] != v {
				s[w] = v
				w++
			}
		}
		adjSets[u] = s[:w]
		total += w
	}
	g.adj = make([]int32, 0, total)
	for u := range adjSets {
		g.off[u] = len(g.adj)
		g.adj = append(g.adj, adjSets[u]...)
	}
	g.off[n] = len(g.adj)
	g.m = total / 2
	return g, nil
}

// MustBuild is Build but panics on error.
func MustBuild(n int, edges [][2]int32) *Graph {
	g, err := Build(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.off) - 1 }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.m }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return g.off[v+1] - g.off[v] }

// Neighbors returns the sorted neighbor list of v.  The slice aliases
// internal storage and must not be modified.
func (g *Graph) Neighbors(v int) []int32 { return g.adj[g.off[v]:g.off[v+1]] }

// HasEdge reports whether {u, v} is an edge, by binary search.
func (g *Graph) HasEdge(u, v int) bool {
	nb := g.Neighbors(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= int32(v) })
	return i < len(nb) && nb[i] == int32(v)
}

// MaxDegree returns the maximum degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// Degrees returns a fresh slice of all vertex degrees.
func (g *Graph) Degrees() []int {
	d := make([]int, g.NumVertices())
	for v := range d {
		d[v] = g.Degree(v)
	}
	return d
}

// BFS runs a breadth-first search from src and returns the distance to
// every vertex (-1 if unreachable).  dist may be passed in to avoid
// allocation (it is resized/reset as needed); pass nil to allocate.
func (g *Graph) BFS(src int, dist []int32) []int32 {
	n := g.NumVertices()
	if cap(dist) < n {
		dist = make([]int32, n)
	}
	dist = dist[:n]
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int32, 0, 64)
	queue = append(queue, int32(src))
	dist[src] = 0
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, v := range g.Neighbors(int(u)) {
			if dist[v] < 0 {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Components labels the connected components of g.  It returns the
// component ID of every vertex and the number of components.  IDs are
// assigned in order of the smallest vertex in each component.
func (g *Graph) Components() (comp []int32, count int) {
	n := g.NumVertices()
	comp = make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var queue []int32
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		id := int32(count)
		count++
		queue = queue[:0]
		queue = append(queue, int32(s))
		comp[s] = id
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range g.Neighbors(int(u)) {
				if comp[v] < 0 {
					comp[v] = id
					queue = append(queue, v)
				}
			}
		}
	}
	return comp, count
}

// Subgraph returns the induced subgraph on the vertices with keep[v]
// true, plus the old→new vertex ID map.
func (g *Graph) Subgraph(keep []bool) (*Graph, map[int]int) {
	vMap := make(map[int]int)
	for v := 0; v < g.NumVertices(); v++ {
		if keep[v] {
			vMap[v] = len(vMap)
		}
	}
	var edges [][2]int32
	for u := 0; u < g.NumVertices(); u++ {
		if !keep[u] {
			continue
		}
		for _, v := range g.Neighbors(u) {
			if int32(u) < v && keep[v] {
				edges = append(edges, [2]int32{int32(vMap[u]), int32(vMap[int(v)])})
			}
		}
	}
	sub, err := Build(len(vMap), edges)
	if err != nil {
		//hyperplexvet:ignore nopanic remapped endpoints are in range by construction, so a build failure is an internal bug
		panic("graph: Subgraph: " + err.Error())
	}
	return sub, vMap
}

// ClusteringCoefficient returns the average local clustering
// coefficient over vertices of degree ≥ 2 (vertices of lower degree are
// excluded, the usual convention).  The paper cites the inflated
// clustering coefficients of clique expansions [Maslov-Sneppen-Alon];
// this lets the model-comparison experiment measure that inflation.
func (g *Graph) ClusteringCoefficient() float64 {
	n := g.NumVertices()
	total, counted := 0.0, 0
	for v := 0; v < n; v++ {
		nb := g.Neighbors(v)
		d := len(nb)
		if d < 2 {
			continue
		}
		links := 0
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				if g.HasEdge(int(nb[i]), int(nb[j])) {
					links++
				}
			}
		}
		total += 2 * float64(links) / float64(d*(d-1))
		counted++
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}
