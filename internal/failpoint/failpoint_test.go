package failpoint

import (
	"errors"
	"testing"
	"time"
)

func TestDisabledIsNil(t *testing.T) {
	Register("t.disabled")
	if err := Inject("t.disabled"); err != nil {
		t.Fatalf("disabled site injected %v", err)
	}
	if err := Inject("t.never-registered"); err != nil {
		t.Fatalf("unregistered site injected %v", err)
	}
}

func TestErrorArm(t *testing.T) {
	Register("t.err")
	defer DisableAll()
	if err := Enable("t.err", Arm{Mode: ModeError}); err != nil {
		t.Fatal(err)
	}
	err := Inject("t.err")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	custom := errors.New("disk on fire")
	if err := Enable("t.err", Arm{Mode: ModeError, Err: custom}); err != nil {
		t.Fatal(err)
	}
	err = Inject("t.err")
	if !errors.Is(err, ErrInjected) || !errors.Is(err, custom) {
		t.Fatalf("want wrapped ErrInjected and custom error, got %v", err)
	}
}

func TestEnableUnknownSite(t *testing.T) {
	if err := Enable("t.unknown-site", Arm{}); err == nil {
		t.Fatal("enabling an unregistered site should fail")
	}
}

func TestPanicArm(t *testing.T) {
	Register("t.panic")
	defer DisableAll()
	if err := Enable("t.panic", Arm{Mode: ModePanic}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		v := recover()
		p, ok := v.(Panic)
		if !ok || p.Site != "t.panic" {
			t.Fatalf("want Panic{t.panic}, got %v", v)
		}
	}()
	Inject("t.panic")
	t.Fatal("panic arm did not panic")
}

func TestDelayArm(t *testing.T) {
	Register("t.delay")
	defer DisableAll()
	if err := Enable("t.delay", Arm{Mode: ModeDelay, Delay: 20 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Inject("t.delay"); err != nil {
		t.Fatalf("delay arm returned %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("delay arm slept only %v", d)
	}
}

func TestSchedule(t *testing.T) {
	Register("t.sched")
	defer DisableAll()
	// Skip 2 hits, fire every 3rd eligible hit, at most twice:
	// hits 1,2 skipped; eligible hits 3.. → fire on eligible 3,6 → hits 5, 8.
	if err := Enable("t.sched", Arm{Mode: ModeError, After: 2, Every: 3, Times: 2}); err != nil {
		t.Fatal(err)
	}
	var fired []int
	for i := 1; i <= 12; i++ {
		if Inject("t.sched") != nil {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 5 || fired[1] != 8 {
		t.Fatalf("schedule fired on hits %v, want [5 8]", fired)
	}
	if got := Fired("t.sched"); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
}

func TestSitesSortedAndRegisterIdempotent(t *testing.T) {
	a := Register("t.z-site")
	b := Register("t.a-site")
	Register("t.a-site")
	if a != "t.z-site" || b != "t.a-site" {
		t.Fatalf("Register returned %q, %q", a, b)
	}
	names := Sites()
	ia, iz := -1, -1
	for i, n := range names {
		switch n {
		case "t.a-site":
			ia = i
		case "t.z-site":
			iz = i
		}
	}
	if ia < 0 || iz < 0 || ia > iz {
		t.Fatalf("Sites() = %v: want t.a-site before t.z-site, each once", names)
	}
}

func TestDisableResetsFastPath(t *testing.T) {
	Register("t.reset")
	if err := Enable("t.reset", Arm{Mode: ModeError}); err != nil {
		t.Fatal(err)
	}
	Disable("t.reset")
	if got := armed.Load(); got != 0 {
		t.Fatalf("armed counter = %d after disabling the only site", got)
	}
	if err := Inject("t.reset"); err != nil {
		t.Fatalf("disabled site injected %v", err)
	}
}
