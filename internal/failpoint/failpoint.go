// Package failpoint is a fault-injection registry for the algorithm
// kernels and loaders.  Long-running code declares named sites with
// Register and calls Inject at bounded checkpoint intervals; tests arm
// a site with an error, panic or delay and deterministic scheduling,
// and the chaos suite (internal/chaos) iterates every site × every arm
// to prove the library degrades into typed errors rather than crashes.
//
// The disabled fast path is a single atomic load: when no site is
// armed, Inject returns nil without touching the registry, so
// production builds pay no measurable cost (the benchmark guard pins
// this).
package failpoint

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the base error of every error-arm injection; match it
// with errors.Is.
var ErrInjected = errors.New("failpoint: injected failure")

// Panic is the value thrown by panic arms, so recovery boundaries can
// distinguish an injected panic from a genuine bug.
type Panic struct{ Site string }

func (p Panic) String() string { return "failpoint: injected panic at " + p.Site }

// Mode selects what an armed site does when its schedule fires.
type Mode int

const (
	// ModeError makes Inject return an error wrapping ErrInjected.
	ModeError Mode = iota
	// ModePanic makes Inject panic with a Panic value.
	ModePanic
	// ModeDelay makes Inject sleep for Arm.Delay and return nil.
	ModeDelay
)

func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModePanic:
		return "panic"
	case ModeDelay:
		return "delay"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Arm describes what an enabled site does and on which hits.  Hits are
// counted from 1 in program order, so schedules are deterministic for
// deterministic workloads.
type Arm struct {
	Mode Mode
	// Err overrides the returned error for ModeError (it is wrapped so
	// errors.Is(err, ErrInjected) still holds).  Nil uses a default.
	Err error
	// Delay is the sleep duration for ModeDelay.
	Delay time.Duration
	// After skips the first After hits before the arm may fire.
	After int
	// Every fires on every Every-th eligible hit (0 or 1 = every hit).
	Every int
	// Times caps the number of fires (0 = unlimited).
	Times int
}

type site struct {
	mu    sync.Mutex
	arm   *Arm
	hits  int // calls to Inject that took the slow path while armed
	fires int // times the arm actually fired
}

var (
	registry sync.Map     // site name → *site
	armed    atomic.Int32 // number of armed sites; Inject's fast-path gate
)

// Register declares a site.  It is idempotent and safe to call from
// package init; the returned name lets call sites be declared as
//
//	var fpFoo = failpoint.Register("pkg.foo")
func Register(name string) string {
	registry.LoadOrStore(name, &site{})
	return name
}

// Sites returns the sorted names of all registered sites.
func Sites() []string {
	var names []string
	registry.Range(func(k, _ any) bool {
		names = append(names, k.(string))
		return true
	})
	sort.Strings(names)
	return names
}

// Enable arms a registered site.  Arming an already-armed site
// replaces its arm and resets its hit and fire counters.
func Enable(name string, arm Arm) error {
	v, ok := registry.Load(name)
	if !ok {
		return fmt.Errorf("failpoint: unknown site %q", name)
	}
	s := v.(*site)
	s.mu.Lock()
	wasArmed := s.arm != nil
	s.arm = &arm
	s.hits, s.fires = 0, 0
	s.mu.Unlock()
	if !wasArmed {
		armed.Add(1)
	}
	return nil
}

// Disable disarms a site (no-op if not armed or not registered).
func Disable(name string) {
	v, ok := registry.Load(name)
	if !ok {
		return
	}
	s := v.(*site)
	s.mu.Lock()
	wasArmed := s.arm != nil
	s.arm = nil
	s.mu.Unlock()
	if wasArmed {
		armed.Add(-1)
	}
}

// DisableAll disarms every site.
func DisableAll() {
	registry.Range(func(k, _ any) bool {
		Disable(k.(string))
		return true
	})
}

// Fired returns how many times the site's current arm has fired since
// it was enabled.
func Fired(name string) int {
	v, ok := registry.Load(name)
	if !ok {
		return 0
	}
	s := v.(*site)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fires
}

// Inject is called by instrumented code at a named site.  With no site
// armed anywhere it costs one atomic load and returns nil.  An armed
// site consults its schedule and fires its arm: ModeError returns an
// error, ModePanic panics with a Panic value, ModeDelay sleeps.
func Inject(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	return injectSlow(name)
}

func injectSlow(name string) error {
	v, ok := registry.Load(name)
	if !ok {
		return nil
	}
	s := v.(*site)
	s.mu.Lock()
	arm := s.arm
	if arm == nil {
		s.mu.Unlock()
		return nil
	}
	s.hits++
	if !shouldFire(arm, s.hits, s.fires) {
		s.mu.Unlock()
		return nil
	}
	s.fires++
	s.mu.Unlock()

	switch arm.Mode {
	case ModePanic:
		//hyperplexvet:ignore nopanic ModePanic exists to inject panics; chaos tests recover the typed Panic value
		panic(Panic{Site: name})
	case ModeDelay:
		time.Sleep(arm.Delay)
		return nil
	default:
		if arm.Err != nil {
			return fmt.Errorf("failpoint %s: %w: %w", name, ErrInjected, arm.Err)
		}
		return fmt.Errorf("failpoint %s: %w", name, ErrInjected)
	}
}

// shouldFire evaluates the deterministic schedule for the hit'th hit
// (1-based) given fires so far.
func shouldFire(arm *Arm, hit, fires int) bool {
	if arm.Times > 0 && fires >= arm.Times {
		return false
	}
	eligible := hit - arm.After
	if eligible <= 0 {
		return false
	}
	every := arm.Every
	if every <= 1 {
		return true
	}
	return eligible%every == 0
}
