package stats

import (
	"math"
	"testing"
)

func TestFitExponentialExact(t *testing.T) {
	// P(d) = 1000·e^(−0.5 d) for d = 0..10.
	hist := make([]int, 11)
	for d := 0; d <= 10; d++ {
		hist[d] = int(math.Round(1000 * math.Exp(-0.5*float64(d))))
	}
	fit, err := FitExponential(hist)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Lambda-0.5) > 0.01 {
		t.Errorf("lambda = %v, want ≈ 0.5", fit.Lambda)
	}
	if math.Abs(fit.A-1000) > 30 {
		t.Errorf("A = %v, want ≈ 1000", fit.A)
	}
	if fit.R2 < 0.999 {
		t.Errorf("R² = %v", fit.R2)
	}
	if fit.String() == "" {
		t.Error("empty String()")
	}
}

func TestFitExponentialErrors(t *testing.T) {
	if _, err := FitExponential([]int{5}); err == nil {
		t.Error("one point accepted")
	}
	if _, err := FitExponential(nil); err == nil {
		t.Error("no points accepted")
	}
}

func TestJudgeDistribution(t *testing.T) {
	// A clean power law: power-law fit passes, exponential fails.
	pl := make([]int, 30)
	for d := 1; d < 30; d++ {
		pl[d] = int(math.Round(10000 * math.Pow(float64(d), -2.5)))
	}
	v := JudgeDistribution(pl, 0.98)
	if !v.PowerLawOK {
		t.Errorf("power law should satisfy its own data: %v", v)
	}
	if v.ExpOK {
		t.Errorf("exponential should fail on power-law data: %v", v)
	}

	// A clean exponential: reverse.
	ex := make([]int, 30)
	for d := 0; d < 30; d++ {
		ex[d] = int(math.Round(10000 * math.Exp(-0.4*float64(d))))
	}
	v2 := JudgeDistribution(ex, 0.98)
	if !v2.ExpOK {
		t.Errorf("exponential should satisfy its own data: %v", v2)
	}

	// Data satisfying neither (uniform-ish with jitter).
	flatNoisy := []int{0, 50, 400, 30, 500, 20, 450, 40, 480}
	v3 := JudgeDistribution(flatNoisy, 0.9)
	if v3.PowerLawOK || v3.ExpOK {
		t.Errorf("noisy data should satisfy neither: %v", v3)
	}
	if v3.String() == "" {
		t.Error("empty String()")
	}
}
