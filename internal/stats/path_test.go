package stats

import (
	"strings"
	"testing"
	"testing/quick"

	"hyperplex/internal/hypergraph"
	"hyperplex/internal/xrand"
)

func TestShortestPathChain(t *testing.T) {
	h := chainH(4) // v0 -f0- v1 -f1- v2 -f2- v3 -f3- v4
	v0, _ := h.VertexID("v0")
	v3, _ := h.VertexID("v3")
	p, ok := ShortestPath(h, v0, v3)
	if !ok {
		t.Fatal("path not found")
	}
	if p.Len() != 3 {
		t.Fatalf("path length = %d, want 3", p.Len())
	}
	if len(p.Vertices) != 4 {
		t.Fatalf("path vertices = %d, want 4", len(p.Vertices))
	}
	if p.Vertices[0] != v0 || p.Vertices[len(p.Vertices)-1] != v3 {
		t.Error("endpoints wrong")
	}
	// Consecutive vertices must share the listed hyperedge.
	for i, f := range p.Edges {
		if !h.EdgeContains(f, p.Vertices[i]) || !h.EdgeContains(f, p.Vertices[i+1]) {
			t.Errorf("hyperedge %d does not join step %d", f, i)
		}
	}
	s := p.Format(h)
	if !strings.Contains(s, "v0") || !strings.Contains(s, "-[") {
		t.Errorf("Format = %q", s)
	}
}

func TestShortestPathSelf(t *testing.T) {
	h := chainH(2)
	p, ok := ShortestPath(h, 0, 0)
	if !ok || p.Len() != 0 || len(p.Vertices) != 1 {
		t.Errorf("self path = %+v, %v", p, ok)
	}
}

func TestShortestPathDisconnected(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.AddEdge("f1", "a", "b")
	b.AddEdge("f2", "x", "y")
	h := b.MustBuild()
	a, _ := h.VertexID("a")
	x, _ := h.VertexID("x")
	if _, ok := ShortestPath(h, a, x); ok {
		t.Error("found a path across components")
	}
}

func TestPropertyShortestPathMatchesDistance(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := xrand.New(seed)
		nv := 4 + rng.Intn(15)
		ne := 2 + rng.Intn(12)
		edges := make([][]int32, ne)
		for f := range edges {
			size := 1 + rng.Intn(4)
			for i := 0; i < size; i++ {
				edges[f] = append(edges[f], int32(rng.Intn(nv)))
			}
		}
		h, err := hypergraph.FromEdgeSets(nv, edges)
		if err != nil {
			return false
		}
		u := rng.Intn(nv)
		v := rng.Intn(nv)
		p, ok := ShortestPath(h, u, v)
		// Cross-check against the pairwise distance from the exact
		// machinery.
		ecc, _ := Eccentricity(h, u)
		_ = ecc
		hist := DistanceHistogram(h, 1)
		_ = hist
		if !ok {
			return u != v // same-vertex always has a path
		}
		// Path validity: no repeats, alternation correct.
		seenV := map[int]bool{}
		for _, x := range p.Vertices {
			if seenV[x] {
				return false
			}
			seenV[x] = true
		}
		seenF := map[int]bool{}
		for i, f := range p.Edges {
			if seenF[f] {
				return false
			}
			seenF[f] = true
			if !h.EdgeContains(f, p.Vertices[i]) || !h.EdgeContains(f, p.Vertices[i+1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
