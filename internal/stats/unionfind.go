package stats

import (
	"sort"

	"hyperplex/internal/csr"
	"hyperplex/internal/hypergraph"
)

// unionFind is a weighted-quick-union structure with path halving.
type unionFind struct {
	parent []int32
	size   []int32
}

func newUnionFind(n int) *unionFind {
	u := &unionFind{parent: make([]int32, n), size: make([]int32, n)}
	for i := range u.parent {
		u.parent[i] = int32(i)
		u.size[i] = 1
	}
	return u
}

func (u *unionFind) find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int32) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
}

// ComponentsUF computes connected components with union-find directly
// over the pins, without materializing the bipartite graph B(H).  It
// returns exactly the same labeling contract as Components (IDs, and
// the component list sorted by decreasing vertex count).  This is the
// alternative implementation measured by the component ablation; for
// pin-heavy hypergraphs it avoids B(H)'s extra allocation entirely.
func ComponentsUF(h *hypergraph.Hypergraph) (vComp, eComp []int32, comps []ComponentInfo) {
	nv, ne := h.NumVertices(), h.NumEdges()
	u := newUnionFind(nv + ne)
	for f := 0; f < ne; f++ {
		fn := int32(nv + f)
		for _, v := range h.Vertices(f) {
			u.union(v, fn)
		}
	}
	// Dense component IDs in order of first appearance (vertices then
	// edges), matching the BFS labeling of Components.
	idOf := make(map[int32]int32)
	label := func(x int32) int32 {
		r := u.find(x)
		id, ok := idOf[r]
		if !ok {
			id = csr.MustInt32(len(idOf))
			idOf[r] = id
		}
		return id
	}
	vComp = make([]int32, nv)
	for v := 0; v < nv; v++ {
		vComp[v] = label(int32(v))
	}
	eComp = make([]int32, ne)
	for f := 0; f < ne; f++ {
		eComp[f] = label(int32(nv + f))
	}
	comps = make([]ComponentInfo, len(idOf))
	for i := range comps {
		comps[i].ID = i
	}
	for _, c := range vComp {
		comps[c].Vertices++
	}
	for _, c := range eComp {
		comps[c].Edges++
	}
	sort.Slice(comps, func(i, j int) bool {
		if comps[i].Vertices != comps[j].Vertices {
			return comps[i].Vertices > comps[j].Vertices
		}
		if comps[i].Edges != comps[j].Edges {
			return comps[i].Edges > comps[j].Edges
		}
		return comps[i].ID < comps[j].ID
	})
	return vComp, eComp, comps
}
