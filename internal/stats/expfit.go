package stats

import (
	"fmt"
	"math"
)

// ExponentialFit holds the least-squares fit of
// ln P(d) = ln a − λ·d over the degrees with non-zero frequency, i.e.
// P(d) = a·e^(−λ d).  §2 of the paper reports that the complex degree
// distribution satisfies *neither* a power law *nor* an exponential;
// this fit supplies the second half of that claim.
type ExponentialFit struct {
	A      float64 // amplitude
	Lambda float64 // decay rate (positive for decaying distributions)
	R2     float64 // coefficient of determination of the semi-log fit
	N      int     // points fitted
}

func (e ExponentialFit) String() string {
	return fmt.Sprintf("P(d) = %.3g·exp(%.3f·d)  (R² = %.3f, n = %d)", e.A, -e.Lambda, e.R2, e.N)
}

// FitExponential fits an exponential to a degree histogram (hist[d] =
// frequency of degree d).  Zero-frequency degrees are skipped.  It
// returns an error if fewer than two points remain.
func FitExponential(hist []int) (ExponentialFit, error) {
	var xs, ys []float64
	for d := 0; d < len(hist); d++ {
		if hist[d] > 0 {
			xs = append(xs, float64(d))
			ys = append(ys, math.Log(float64(hist[d])))
		}
	}
	if len(xs) < 2 {
		return ExponentialFit{}, fmt.Errorf("stats: exponential fit needs ≥ 2 distinct degrees, have %d", len(xs))
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return ExponentialFit{}, fmt.Errorf("stats: degenerate exponential fit (all degrees equal)")
	}
	slope := (n*sxy - sx*sy) / denom
	intercept := (sy - slope*sx) / n

	meanY := sy / n
	var ssRes, ssTot float64
	for i := range xs {
		pred := intercept + slope*xs[i]
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return ExponentialFit{
		A:      math.Exp(intercept),
		Lambda: -slope,
		R2:     r2,
		N:      len(xs),
	}, nil
}

// DistributionVerdict compares both fits of a histogram the way §2
// does for the complex degrees, reporting whether either family
// explains the data at the given R² threshold.
type DistributionVerdict struct {
	PowerLaw    PowerLawFit
	PowerLawOK  bool
	Exponential ExponentialFit
	ExpOK       bool
	Threshold   float64
}

// JudgeDistribution fits both families and applies the threshold.
// Fit errors (too few points) count as "does not satisfy".
func JudgeDistribution(hist []int, threshold float64) DistributionVerdict {
	v := DistributionVerdict{Threshold: threshold}
	if fit, err := FitPowerLaw(hist); err == nil {
		v.PowerLaw = fit
		v.PowerLawOK = fit.R2 >= threshold
	}
	if fit, err := FitExponential(hist); err == nil {
		v.Exponential = fit
		v.ExpOK = fit.R2 >= threshold
	}
	return v
}

func (v DistributionVerdict) String() string {
	verdict := func(ok bool) string {
		if ok {
			return "satisfied"
		}
		return "not satisfied"
	}
	return fmt.Sprintf("power law %s (R²=%.3f); exponential %s (R²=%.3f) at threshold %.2f",
		verdict(v.PowerLawOK), v.PowerLaw.R2, verdict(v.ExpOK), v.Exponential.R2, v.Threshold)
}
