package stats

import (
	"fmt"

	"hyperplex/internal/graph"
	"hyperplex/internal/hypergraph"
)

// HyperPath is an alternating vertex–hyperedge path as defined in §1.3
// of the paper: v₁, f₁, v₂, f₂, …, v_k, where consecutive vertices
// share the hyperedge between them, no vertex or hyperedge repeats,
// and the length is the number of hyperedges.
type HyperPath struct {
	Vertices []int // k vertices, endpoints included
	Edges    []int // k-1 hyperedges
}

// Len returns the path length (number of hyperedges).
func (p HyperPath) Len() int { return len(p.Edges) }

// Format renders the path with names from h.
func (p HyperPath) Format(h *hypergraph.Hypergraph) string {
	s := ""
	for i, v := range p.Vertices {
		if i > 0 {
			name := h.EdgeName(p.Edges[i-1])
			if name == "" {
				name = fmt.Sprintf("f%d", p.Edges[i-1])
			}
			s += " -[" + name + "]- "
		}
		name := h.VertexName(v)
		if name == "" {
			name = fmt.Sprintf("v%d", v)
		}
		s += name
	}
	return s
}

// ShortestPath returns a shortest alternating path between two
// vertices, or ok = false if they are disconnected.  A vertex's
// distance to itself is the empty path.  BFS over the bipartite graph
// B(H) guarantees minimality in the number of hyperedges.
func ShortestPath(h *hypergraph.Hypergraph, from, to int) (HyperPath, bool) {
	if from == to {
		return HyperPath{Vertices: []int{from}}, true
	}
	bip := graph.Bipartite(h)
	n := bip.NumVertices()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -2 // unvisited
	}
	parent[from] = -1
	queue := []int32{int32(from)}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, w := range bip.Neighbors(int(u)) {
			if parent[w] != -2 {
				continue
			}
			parent[w] = u
			if int(w) == to {
				return tracePath(h, parent, to), true
			}
			queue = append(queue, w)
		}
	}
	return HyperPath{}, false
}

func tracePath(h *hypergraph.Hypergraph, parent []int32, to int) HyperPath {
	nv := h.NumVertices()
	var rev []int
	for at := to; at != -1; at = int(parent[at]) {
		rev = append(rev, at)
	}
	p := HyperPath{}
	for i := len(rev) - 1; i >= 0; i-- {
		id := rev[i]
		if id < nv {
			p.Vertices = append(p.Vertices, id)
		} else {
			p.Edges = append(p.Edges, id-nv)
		}
	}
	return p
}
