package stats

import (
	"testing"
	"testing/quick"

	"hyperplex/internal/hypergraph"
	"hyperplex/internal/xrand"
)

func TestComponentsUFBasic(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.AddEdge("f1", "a", "b")
	b.AddEdge("f2", "b", "c")
	b.AddEdge("g1", "x", "y")
	b.AddVertex("lonely")
	h := b.MustBuild()
	vComp, eComp, comps := ComponentsUF(h)
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	if comps[0].Vertices != 3 || comps[0].Edges != 2 {
		t.Errorf("largest = %+v", comps[0])
	}
	a, _ := h.VertexID("a")
	c, _ := h.VertexID("c")
	x, _ := h.VertexID("x")
	if vComp[a] != vComp[c] || vComp[a] == vComp[x] {
		t.Error("labels wrong")
	}
	f1, _ := h.EdgeID("f1")
	if eComp[f1] != vComp[a] {
		t.Error("edge label disagrees")
	}
}

func TestPropertyComponentsUFMatchesBFS(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := xrand.New(seed)
		nv := 2 + rng.Intn(25)
		ne := rng.Intn(20)
		edges := make([][]int32, ne)
		for f := range edges {
			size := rng.Intn(4)
			for i := 0; i < size; i++ {
				edges[f] = append(edges[f], int32(rng.Intn(nv)))
			}
		}
		h, err := hypergraph.FromEdgeSets(nv, edges)
		if err != nil {
			return false
		}
		v1, e1, c1 := Components(h)
		v2, e2, c2 := ComponentsUF(h)
		if len(c1) != len(c2) {
			return false
		}
		// The component *partition* must agree even if ID numbering
		// differs: same-label pairs in one must be same-label in the
		// other.
		for i := range v1 {
			for j := i + 1; j < len(v1); j++ {
				if (v1[i] == v1[j]) != (v2[i] == v2[j]) {
					return false
				}
			}
		}
		for i := range e1 {
			for j := i + 1; j < len(e1); j++ {
				if (e1[i] == e1[j]) != (e2[i] == e2[j]) {
					return false
				}
			}
		}
		// Sorted component sizes agree.
		for i := range c1 {
			if c1[i].Vertices != c2[i].Vertices || c1[i].Edges != c2[i].Edges {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
