package stats

import (
	"fmt"
	"runtime"
	"sync"

	"hyperplex/internal/graph"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/xrand"
)

// SmallWorld summarizes the distance structure of a hypergraph under
// the paper's path metric (path length = number of hyperedges on an
// alternating vertex–hyperedge path; the distance between two vertices
// is the length of a shortest such path).
type SmallWorld struct {
	// Diameter is the maximum finite distance between two vertices.
	Diameter int
	// AvgPathLength is the mean distance over all ordered pairs of
	// distinct vertices in the same component.
	AvgPathLength float64
	// Pairs is the number of (unordered) connected vertex pairs the
	// average is taken over.
	Pairs int64
	// Sources is the number of BFS sources used (|V| for the exact
	// computation, the sample size for the sampled one).
	Sources int
}

// SmallWorldStats computes the exact diameter and average path length
// by running one BFS per vertex over the bipartite graph B(H),
// splitting the sources over `workers` goroutines (≤ 0 selects
// runtime.NumCPU()).  Hypergraph distances are bipartite distances
// halved.
func SmallWorldStats(h *hypergraph.Hypergraph, workers int) SmallWorld {
	return smallWorld(h, workers, nil)
}

// SmallWorldSampled estimates diameter (as the max eccentricity over
// the sampled sources — a lower bound) and average path length from a
// uniform sample of BFS sources.  It is the cheap alternative assessed
// by the APSP ablation benchmark.
func SmallWorldSampled(h *hypergraph.Hypergraph, samples int, workers int, rng *xrand.RNG) SmallWorld {
	nv := h.NumVertices()
	if samples >= nv {
		return smallWorld(h, workers, nil)
	}
	perm := rng.Perm(nv)
	return smallWorld(h, workers, perm[:samples])
}

// smallWorld runs BFS from the given sources (nil = all vertices).
func smallWorld(h *hypergraph.Hypergraph, workers int, sources []int) SmallWorld {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	nv := h.NumVertices()
	if nv == 0 {
		return SmallWorld{}
	}
	bip := graph.Bipartite(h)

	if sources == nil {
		sources = make([]int, nv)
		for i := range sources {
			sources[i] = i
		}
	}

	type acc struct {
		diameter int
		sum      int64
		pairs    int64
	}
	results := make([]acc, workers)
	var wg sync.WaitGroup
	next := make(chan int, len(sources))
	for _, s := range sources {
		next <- s
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var dist []int32
			a := &results[w]
			for src := range next {
				dist = bip.BFS(src, dist)
				for v := 0; v < nv; v++ {
					if v == src || dist[v] < 0 {
						continue
					}
					d := int(dist[v]) / 2 // hyperedge count = bipartite hops / 2
					if d > a.diameter {
						a.diameter = d
					}
					a.sum += int64(d)
					a.pairs++
				}
			}
		}(w)
	}
	wg.Wait()

	var total acc
	for _, a := range results {
		if a.diameter > total.diameter {
			total.diameter = a.diameter
		}
		total.sum += a.sum
		total.pairs += a.pairs
	}
	sw := SmallWorld{Diameter: total.diameter, Pairs: total.pairs / boolTo64(len(sources) == nv, 2, 1), Sources: len(sources)}
	if total.pairs > 0 {
		sw.AvgPathLength = float64(total.sum) / float64(total.pairs)
	}
	return sw
}

func boolTo64(b bool, t, f int64) int64 {
	if b {
		return t
	}
	return f
}

// Eccentricity returns the eccentricity of vertex v in the hypergraph
// metric: the maximum finite distance from v to any other vertex, and
// the number of vertices reachable from v (excluding v itself).
func Eccentricity(h *hypergraph.Hypergraph, v int) (ecc int, reachable int) {
	bip := graph.Bipartite(h)
	dist := bip.BFS(v, nil)
	for u := 0; u < h.NumVertices(); u++ {
		if u == v || dist[u] < 0 {
			continue
		}
		reachable++
		if d := int(dist[u]) / 2; d > ecc {
			ecc = d
		}
	}
	return ecc, reachable
}

// DistanceHistogram returns the distribution of pairwise hypergraph
// distances: hist[d] = number of unordered connected vertex pairs at
// distance d.  Exact (all-pairs BFS), parallelized.
func DistanceHistogram(h *hypergraph.Hypergraph, workers int) []int64 {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	nv := h.NumVertices()
	bip := graph.Bipartite(h)
	hists := make([][]int64, workers)
	var wg sync.WaitGroup
	next := make(chan int, nv)
	for v := 0; v < nv; v++ {
		next <- v
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var dist []int32
			local := []int64{}
			for src := range next {
				dist = bip.BFS(src, dist)
				for v := src + 1; v < nv; v++ { // unordered pairs once
					if dist[v] < 0 {
						continue
					}
					d := int(dist[v]) / 2
					for len(local) <= d {
						local = append(local, 0)
					}
					local[d]++
				}
			}
			hists[w] = local
		}(w)
	}
	wg.Wait()
	var out []int64
	for _, local := range hists {
		for d, c := range local {
			for len(out) <= d {
				out = append(out, 0)
			}
			out[d] += c
		}
	}
	return out
}

// FormatDistanceHistogram renders a distance histogram as aligned rows
// for reports.
func FormatDistanceHistogram(hist []int64) string {
	s := ""
	for d, c := range hist {
		if c > 0 {
			s += fmt.Sprintf("  d=%d: %d pairs\n", d, c)
		}
	}
	return s
}
