package stats

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hyperplex/internal/failpoint"
	"hyperplex/internal/graph"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/run"
	"hyperplex/internal/xrand"
)

// fpBFSSource fires before each BFS source in the all-pairs sweep.
var fpBFSSource = failpoint.Register("stats.bfs.source")

// SmallWorld summarizes the distance structure of a hypergraph under
// the paper's path metric (path length = number of hyperedges on an
// alternating vertex–hyperedge path; the distance between two vertices
// is the length of a shortest such path).
type SmallWorld struct {
	// Diameter is the maximum finite distance between two vertices.
	Diameter int
	// AvgPathLength is the mean distance over all ordered pairs of
	// distinct vertices in the same component.
	AvgPathLength float64
	// Pairs is the number of (unordered) connected vertex pairs the
	// average is taken over.
	Pairs int64
	// Sources is the number of BFS sources used (|V| for the exact
	// computation, the sample size for the sampled one).
	Sources int
}

// SmallWorldStats computes the exact diameter and average path length
// by running one BFS per vertex over the bipartite graph B(H),
// splitting the sources over `workers` goroutines (≤ 0 selects
// runtime.NumCPU()).  Hypergraph distances are bipartite distances
// halved.
func SmallWorldStats(h *hypergraph.Hypergraph, workers int) SmallWorld {
	sw, err := SmallWorldStatsCtx(context.Background(), h, workers)
	if err != nil {
		panic(err) // only reachable through an armed failpoint
	}
	return sw
}

// SmallWorldStatsCtx is SmallWorldStats honoring cancellation, deadline
// and any run.Budget attached to ctx (one checkpoint per BFS source,
// charging |V| steps each).  On cancellation or budget exhaustion it
// degrades to a sampled estimate: the returned SmallWorld summarizes
// the BFS sources completed before the interruption (Sources reports
// how many, Diameter becomes a lower bound — exactly the semantics of
// SmallWorldSampled) alongside the non-nil error.
func SmallWorldStatsCtx(ctx context.Context, h *hypergraph.Hypergraph, workers int) (SmallWorld, error) {
	return smallWorldCtx(ctx, h, workers, nil)
}

// SmallWorldSampled estimates diameter (as the max eccentricity over
// the sampled sources — a lower bound) and average path length from a
// uniform sample of BFS sources.  It is the cheap alternative assessed
// by the APSP ablation benchmark.
func SmallWorldSampled(h *hypergraph.Hypergraph, samples int, workers int, rng *xrand.RNG) SmallWorld {
	sw, err := SmallWorldSampledCtx(context.Background(), h, samples, workers, rng)
	if err != nil {
		panic(err) // only reachable through an armed failpoint
	}
	return sw
}

// SmallWorldSampledCtx is SmallWorldSampled honoring cancellation,
// deadline and any run.Budget attached to ctx, with the same
// partial-result semantics as SmallWorldStatsCtx (the estimate shrinks
// to the sources completed before the interruption).
func SmallWorldSampledCtx(ctx context.Context, h *hypergraph.Hypergraph, samples int, workers int, rng *xrand.RNG) (SmallWorld, error) {
	nv := h.NumVertices()
	if samples >= nv {
		return smallWorldCtx(ctx, h, workers, nil)
	}
	perm := rng.Perm(nv)
	return smallWorldCtx(ctx, h, workers, perm[:samples])
}

// smallWorldCtx runs BFS from the given sources (nil = all vertices),
// dispatching sources to workers through an atomic index.  A worker
// panic is recovered at the worker boundary and returned as an error;
// the remaining workers drain quickly because every iteration begins by
// checking whether a failure was already recorded.  The returned
// SmallWorld always summarizes the sources that completed.
func smallWorldCtx(ctx context.Context, h *hypergraph.Hypergraph, workers int, sources []int) (SmallWorld, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	nv := h.NumVertices()
	if nv == 0 {
		return SmallWorld{}, nil
	}
	meter := run.MeterFrom(ctx)
	if err := run.Tick(ctx, meter, 0); err != nil {
		return SmallWorld{}, err
	}
	bip := graph.Bipartite(h)

	if sources == nil {
		sources = make([]int, nv)
		for i := range sources {
			sources[i] = i
		}
	}

	type acc struct {
		diameter int
		sum      int64
		pairs    int64
		done     int64 // sources fully processed by this worker
	}
	results := make([]acc, workers)
	var wg sync.WaitGroup
	var next atomic.Int64
	var firstErr atomic.Pointer[error]
	fail := func(err error) { firstErr.CompareAndSwap(nil, &err) }
	//hyperplexvet:ignore budgettick bounded spawn loop: at most workers iterations of O(1) setup; each worker ticks per BFS source
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if x := recover(); x != nil {
					fail(fmt.Errorf("stats: BFS worker panic: %v", x))
				}
			}()
			var dist []int32
			a := &results[w]
			for firstErr.Load() == nil {
				i := int(next.Add(1)) - 1
				if i >= len(sources) {
					return
				}
				if err := failpoint.Inject(fpBFSSource); err != nil {
					fail(err)
					return
				}
				if err := run.Tick(ctx, meter, int64(nv)); err != nil {
					fail(err)
					return
				}
				src := sources[i]
				dist = bip.BFS(src, dist)
				for v := 0; v < nv; v++ {
					if v == src || dist[v] < 0 {
						continue
					}
					d := int(dist[v]) / 2 // hyperedge count = bipartite hops / 2
					if d > a.diameter {
						a.diameter = d
					}
					a.sum += int64(d)
					a.pairs++
				}
				a.done++
			}
		}(w)
	}
	wg.Wait()

	var total acc
	for _, a := range results {
		if a.diameter > total.diameter {
			total.diameter = a.diameter
		}
		total.sum += a.sum
		total.pairs += a.pairs
		total.done += a.done
	}
	// Each unordered pair is counted from both endpoints only when every
	// vertex served as a completed source; an interrupted or sampled run
	// reports ordered (source, target) pairs, like SmallWorldSampled.
	exact := len(sources) == nv && total.done == int64(len(sources))
	sw := SmallWorld{Diameter: total.diameter, Pairs: total.pairs / boolTo64(exact, 2, 1), Sources: int(total.done)}
	if total.pairs > 0 {
		sw.AvgPathLength = float64(total.sum) / float64(total.pairs)
	}
	if ep := firstErr.Load(); ep != nil {
		return sw, *ep
	}
	return sw, nil
}

func boolTo64(b bool, t, f int64) int64 {
	if b {
		return t
	}
	return f
}

// Eccentricity returns the eccentricity of vertex v in the hypergraph
// metric: the maximum finite distance from v to any other vertex, and
// the number of vertices reachable from v (excluding v itself).
func Eccentricity(h *hypergraph.Hypergraph, v int) (ecc int, reachable int) {
	bip := graph.Bipartite(h)
	dist := bip.BFS(v, nil)
	for u := 0; u < h.NumVertices(); u++ {
		if u == v || dist[u] < 0 {
			continue
		}
		reachable++
		if d := int(dist[u]) / 2; d > ecc {
			ecc = d
		}
	}
	return ecc, reachable
}

// DistanceHistogram returns the distribution of pairwise hypergraph
// distances: hist[d] = number of unordered connected vertex pairs at
// distance d.  Exact (all-pairs BFS), parallelized.
func DistanceHistogram(h *hypergraph.Hypergraph, workers int) []int64 {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	nv := h.NumVertices()
	bip := graph.Bipartite(h)
	hists := make([][]int64, workers)
	var wg sync.WaitGroup
	next := make(chan int, nv)
	for v := 0; v < nv; v++ {
		next <- v
	}
	close(next)
	var panicked atomic.Pointer[any]
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if x := recover(); x != nil {
					panicked.CompareAndSwap(nil, &x)
				}
			}()
			var dist []int32
			local := []int64{}
			for src := range next {
				dist = bip.BFS(src, dist)
				for v := src + 1; v < nv; v++ { // unordered pairs once
					if dist[v] < 0 {
						continue
					}
					d := int(dist[v]) / 2
					for len(local) <= d {
						local = append(local, 0)
					}
					local[d]++
				}
			}
			hists[w] = local
		}(w)
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		//hyperplexvet:ignore nopanic re-raising a worker panic on the caller goroutine after the recover boundary
		panic(*p)
	}
	var out []int64
	for _, local := range hists {
		for d, c := range local {
			for len(out) <= d {
				out = append(out, 0)
			}
			out[d] += c
		}
	}
	return out
}

// FormatDistanceHistogram renders a distance histogram as aligned rows
// for reports.
func FormatDistanceHistogram(hist []int64) string {
	s := ""
	for d, c := range hist {
		if c > 0 {
			s += fmt.Sprintf("  d=%d: %d pairs\n", d, c)
		}
	}
	return s
}
