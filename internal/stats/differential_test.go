// Differential tests validating the alternating-path metric against a
// naive BFS oracle.  This file is an external test package because
// check imports stats.
package stats_test

import (
	"fmt"
	"testing"

	"hyperplex/internal/check"
	"hyperplex/internal/dataset"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/stats"
	"hyperplex/internal/xrand"
)

// comparePair requires ShortestPath and the oracle to agree on
// reachability and distance, and any returned path to pass ValidPath
// with the claimed length.
func comparePair(t *testing.T, label string, h *hypergraph.Hypergraph, from, to int) {
	t.Helper()
	p, ok := stats.ShortestPath(h, from, to)
	wantDist, wantOK := check.ShortestPathNaive(h, from, to)
	if ok != wantOK {
		t.Fatalf("%s: ShortestPath(%d,%d) reachable=%t, oracle says %t", label, from, to, ok, wantOK)
	}
	if !ok {
		return
	}
	if got := len(p.Edges); got != wantDist {
		t.Fatalf("%s: ShortestPath(%d,%d) length %d, oracle says %d", label, from, to, got, wantDist)
	}
	if err := check.ValidPath(h, from, to, p); err != nil {
		t.Fatalf("%s: path %d→%d: %v", label, from, to, err)
	}
}

// TestDifferentialAlternatingPath samples vertex pairs on every sweep
// instance and compares the production BFS against the oracle, then
// does the same on Cellzome.
func TestDifferentialAlternatingPath(t *testing.T) {
	rng := xrand.New(0x9A7B)
	for i, h := range check.Instances(58, 0x9A7A) {
		nv := h.NumVertices()
		if nv == 0 {
			continue
		}
		for s := 0; s < 12; s++ {
			from, to := rng.Intn(nv), rng.Intn(nv)
			comparePair(t, labelOf(i, h), h, from, to)
		}
		// Always include the self-pair and the extreme-ID pair.
		comparePair(t, labelOf(i, h), h, 0, 0)
		comparePair(t, labelOf(i, h), h, 0, nv-1)
	}

	h := dataset.Cellzome().H
	nv := h.NumVertices()
	for s := 0; s < 40; s++ {
		comparePair(t, "Cellzome", h, rng.Intn(nv), rng.Intn(nv))
	}
}

func labelOf(i int, h *hypergraph.Hypergraph) string {
	return fmt.Sprintf("instance %d %v", i, h)
}
