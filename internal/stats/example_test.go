package stats_test

import (
	"fmt"

	"hyperplex/internal/hypergraph"
	"hyperplex/internal/stats"
)

// ExampleFitPowerLaw fits the Fig. 1 degree distribution.
func ExampleFitPowerLaw() {
	hist := []int{0, 1000, 177, 64, 31} // ≈ 1000·d^−2.5
	fit, _ := stats.FitPowerLaw(hist)
	fmt.Printf("gamma = %.1f\n", fit.Gamma)
	// Output:
	// gamma = 2.5
}

// ExampleSmallWorldStats measures diameter and average path length in
// the paper's alternating-path metric.
func ExampleSmallWorldStats() {
	b := hypergraph.NewBuilder()
	b.AddEdge("f1", "a", "b")
	b.AddEdge("f2", "b", "c")
	b.AddEdge("f3", "c", "d")
	h := b.MustBuild()

	sw := stats.SmallWorldStats(h, 1)
	fmt.Printf("diameter %d, average %.2f\n", sw.Diameter, sw.AvgPathLength)
	// Output:
	// diameter 3, average 1.67
}

// ExampleShortestPath extracts an alternating vertex–hyperedge path.
func ExampleShortestPath() {
	b := hypergraph.NewBuilder()
	b.AddEdge("f1", "a", "b")
	b.AddEdge("f2", "b", "c")
	h := b.MustBuild()

	a, _ := h.VertexID("a")
	c, _ := h.VertexID("c")
	p, _ := stats.ShortestPath(h, a, c)
	fmt.Println(p.Format(h))
	// Output:
	// a -[f1]- b -[f2]- c
}
