// Package stats computes the network statistics reported in §2 of the
// paper: degree distributions and their power-law fits (Fig. 1),
// connected components, and the small-world metrics — diameter and
// average path length — under the hypergraph path metric (paths
// alternate vertices and hyperedges; the length is the number of
// hyperedges).  It also accounts for the storage costs of the
// competing graph models (§1.2).
package stats

import (
	"fmt"
	"math"
	"sort"

	"hyperplex/internal/graph"
	"hyperplex/internal/hypergraph"
)

// DegreeHistogram returns hist where hist[d] is the number of entries
// of degrees equal to d, up to the maximum degree present.
func DegreeHistogram(degrees []int) []int {
	max := 0
	for _, d := range degrees {
		if d > max {
			max = d
		}
	}
	hist := make([]int, max+1)
	for _, d := range degrees {
		hist[d]++
	}
	return hist
}

// PowerLawFit holds the least-squares fit of log10 P(d) = log10 c − γ·log10 d
// over the degrees with non-zero frequency, as in Fig. 1 of the paper
// (which reports log c = 3.161, γ = 2.528, R² = 0.963 for the protein
// degrees).
type PowerLawFit struct {
	LogC  float64 // intercept, log10 of the amplitude
	C     float64 // amplitude, 10^LogC
	Gamma float64 // exponent (positive: P(d) = C·d^−Gamma)
	R2    float64 // coefficient of determination of the log–log fit
	N     int     // number of (degree, frequency) points fitted
}

func (p PowerLawFit) String() string {
	return fmt.Sprintf("P(d) = %.3g·d^%.3f  (log c = %.3f, R² = %.3f, n = %d)", p.C, -p.Gamma, p.LogC, p.R2, p.N)
}

// FitPowerLaw fits a power law to a degree histogram (hist[d] =
// frequency of degree d).  Degree 0 and zero-frequency degrees are
// skipped (their logarithms are undefined).  It returns an error if
// fewer than two points remain.
func FitPowerLaw(hist []int) (PowerLawFit, error) {
	var xs, ys []float64
	for d := 1; d < len(hist); d++ {
		if hist[d] > 0 {
			xs = append(xs, math.Log10(float64(d)))
			ys = append(ys, math.Log10(float64(hist[d])))
		}
	}
	if len(xs) < 2 {
		return PowerLawFit{}, fmt.Errorf("stats: power-law fit needs ≥ 2 distinct degrees, have %d", len(xs))
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return PowerLawFit{}, fmt.Errorf("stats: degenerate power-law fit (all degrees equal)")
	}
	slope := (n*sxy - sx*sy) / denom
	intercept := (sy - slope*sx) / n

	// R² = 1 − (rᵀr)/(yᵀy) with y in deviations from its mean.
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range xs {
		pred := intercept + slope*xs[i]
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return PowerLawFit{
		LogC:  intercept,
		C:     math.Pow(10, intercept),
		Gamma: -slope,
		R2:    r2,
		N:     len(xs),
	}, nil
}

// ComponentInfo describes one connected component of a hypergraph.
type ComponentInfo struct {
	ID       int
	Vertices int
	Edges    int
}

// Components computes the connected components of the hypergraph under
// the alternating path relation (equivalently, of the bipartite graph
// B(H)).  It returns per-vertex and per-hyperedge component IDs and the
// component list sorted by decreasing vertex count (ties by edge count
// then ID).  Isolated vertices form their own components.
func Components(h *hypergraph.Hypergraph) (vComp, eComp []int32, comps []ComponentInfo) {
	bip := graph.Bipartite(h)
	comp, n := bip.Components()
	nv := h.NumVertices()
	vComp = comp[:nv]
	eComp = comp[nv:]
	comps = make([]ComponentInfo, n)
	for i := range comps {
		comps[i].ID = i
	}
	for _, c := range vComp {
		comps[c].Vertices++
	}
	for _, c := range eComp {
		comps[c].Edges++
	}
	sort.Slice(comps, func(i, j int) bool {
		if comps[i].Vertices != comps[j].Vertices {
			return comps[i].Vertices > comps[j].Vertices
		}
		if comps[i].Edges != comps[j].Edges {
			return comps[i].Edges > comps[j].Edges
		}
		return comps[i].ID < comps[j].ID
	})
	return vComp, eComp, comps
}

// StorageCosts quantifies the §1.2 space argument: the pins of the
// hypergraph versus the edge counts of the clique-expansion
// protein-interaction graph and the complex intersection graph.
type StorageCosts struct {
	HypergraphPins        int
	CliqueExpansionEdges  int
	StarExpansionEdges    int
	IntersectionEdges     int
	CliqueBlowupFactor    float64 // clique edges / pins
	IntersectionPerMember float64 // intersection edges / |F|
}

// ComputeStorageCosts materializes each representation and counts.
func ComputeStorageCosts(h *hypergraph.Hypergraph) StorageCosts {
	s := StorageCosts{HypergraphPins: h.NumPins()}
	s.CliqueExpansionEdges = graph.CliqueExpansion(h).NumEdges()
	s.StarExpansionEdges = graph.StarExpansion(h, nil).NumEdges()
	ig, _, _ := graph.IntersectionGraph(h)
	s.IntersectionEdges = ig.NumEdges()
	if s.HypergraphPins > 0 {
		s.CliqueBlowupFactor = float64(s.CliqueExpansionEdges) / float64(s.HypergraphPins)
	}
	if h.NumEdges() > 0 {
		s.IntersectionPerMember = float64(s.IntersectionEdges) / float64(h.NumEdges())
	}
	return s
}
