package stats

import (
	"math"
	"testing"
	"testing/quick"

	"hyperplex/internal/hypergraph"
	"hyperplex/internal/xrand"
)

func TestDegreeHistogram(t *testing.T) {
	hist := DegreeHistogram([]int{1, 1, 2, 5, 0})
	want := []int{1, 2, 1, 0, 0, 1}
	if len(hist) != len(want) {
		t.Fatalf("hist = %v, want %v", hist, want)
	}
	for i := range want {
		if hist[i] != want[i] {
			t.Errorf("hist[%d] = %d, want %d", i, hist[i], want[i])
		}
	}
}

func TestDegreeHistogramEmpty(t *testing.T) {
	hist := DegreeHistogram(nil)
	if len(hist) != 1 || hist[0] != 0 {
		t.Errorf("hist = %v, want [0]", hist)
	}
}

func TestFitPowerLawExact(t *testing.T) {
	// Synthesize an exact power law P(d) = 1000·d^−2 and check the fit
	// recovers it with R² = 1.
	hist := make([]int, 11)
	for d := 1; d <= 10; d++ {
		hist[d] = int(math.Round(1000 * math.Pow(float64(d), -2)))
	}
	fit, err := FitPowerLaw(hist)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Gamma-2) > 0.02 {
		t.Errorf("gamma = %v, want ≈ 2", fit.Gamma)
	}
	if math.Abs(fit.LogC-3) > 0.02 {
		t.Errorf("log c = %v, want ≈ 3", fit.LogC)
	}
	if fit.R2 < 0.999 {
		t.Errorf("R² = %v, want ≈ 1", fit.R2)
	}
	if fit.N != 10 {
		t.Errorf("N = %d, want 10", fit.N)
	}
}

func TestFitPowerLawErrors(t *testing.T) {
	if _, err := FitPowerLaw([]int{0, 5}); err == nil {
		t.Error("fit with one point should fail")
	}
	if _, err := FitPowerLaw(nil); err == nil {
		t.Error("fit with no points should fail")
	}
}

func TestFitPowerLawSkipsZeros(t *testing.T) {
	hist := []int{99, 100, 0, 0, 10} // degrees 1 and 4 only; degree 0 ignored
	fit, err := FitPowerLaw(hist)
	if err != nil {
		t.Fatal(err)
	}
	if fit.N != 2 {
		t.Errorf("N = %d, want 2", fit.N)
	}
	// Two points fit exactly.
	if fit.R2 < 0.9999 {
		t.Errorf("R² = %v, want 1", fit.R2)
	}
}

// chainH builds a chain of c complexes: f_i = {v_i, v_{i+1}}.
func chainH(c int) *hypergraph.Hypergraph {
	b := hypergraph.NewBuilder()
	for i := 0; i < c; i++ {
		b.AddEdge("f"+itoa(i), "v"+itoa(i), "v"+itoa(i+1))
	}
	return b.MustBuild()
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}

func TestComponents(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.AddEdge("f1", "a", "b")
	b.AddEdge("f2", "b", "c")
	b.AddEdge("g1", "x", "y")
	b.AddVertex("lonely")
	h := b.MustBuild()
	vComp, eComp, comps := Components(h)
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	// Sorted by size: {a,b,c | f1,f2}, {x,y | g1}, {lonely}.
	if comps[0].Vertices != 3 || comps[0].Edges != 2 {
		t.Errorf("largest component = %+v", comps[0])
	}
	if comps[1].Vertices != 2 || comps[1].Edges != 1 {
		t.Errorf("second component = %+v", comps[1])
	}
	if comps[2].Vertices != 1 || comps[2].Edges != 0 {
		t.Errorf("third component = %+v", comps[2])
	}
	aID, _ := h.VertexID("a")
	bID, _ := h.VertexID("b")
	xID, _ := h.VertexID("x")
	if vComp[aID] != vComp[bID] || vComp[aID] == vComp[xID] {
		t.Error("vertex component labels wrong")
	}
	f1, _ := h.EdgeID("f1")
	if eComp[f1] != vComp[aID] {
		t.Error("edge component label disagrees with member's")
	}
}

func TestSmallWorldChain(t *testing.T) {
	// Chain of 4 complexes over 5 proteins: diameter = 4 (v0 to v4).
	h := chainH(4)
	sw := SmallWorldStats(h, 2)
	if sw.Diameter != 4 {
		t.Errorf("diameter = %d, want 4", sw.Diameter)
	}
	// Distances: pairs at distance 1: 4 (adjacent), 2: 3, 3: 2, 4: 1 →
	// avg = (4·1+3·2+2·3+1·4)/10 = 20/10 = 2.
	if math.Abs(sw.AvgPathLength-2) > 1e-9 {
		t.Errorf("avg path length = %v, want 2", sw.AvgPathLength)
	}
	if sw.Pairs != 10 {
		t.Errorf("pairs = %d, want 10", sw.Pairs)
	}
}

func TestSmallWorldDisconnected(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.AddEdge("f1", "a", "b")
	b.AddEdge("g1", "x", "y")
	h := b.MustBuild()
	sw := SmallWorldStats(h, 1)
	if sw.Diameter != 1 {
		t.Errorf("diameter = %d, want 1", sw.Diameter)
	}
	if sw.Pairs != 2 {
		t.Errorf("pairs = %d, want 2 (cross-component pairs excluded)", sw.Pairs)
	}
	if sw.AvgPathLength != 1 {
		t.Errorf("avg = %v, want 1", sw.AvgPathLength)
	}
}

func TestSmallWorldEmpty(t *testing.T) {
	h := hypergraph.NewBuilder().MustBuild()
	sw := SmallWorldStats(h, 4)
	if sw.Diameter != 0 || sw.AvgPathLength != 0 {
		t.Errorf("empty small world = %+v", sw)
	}
}

func TestSmallWorldWorkerInvariance(t *testing.T) {
	h := chainH(9)
	base := SmallWorldStats(h, 1)
	for _, w := range []int{2, 3, 8} {
		got := SmallWorldStats(h, w)
		if got != base {
			t.Errorf("workers=%d gave %+v, want %+v", w, got, base)
		}
	}
}

func TestSmallWorldSampled(t *testing.T) {
	h := chainH(9)
	rng := xrand.New(7)
	sw := SmallWorldSampled(h, 4, 2, rng)
	if sw.Sources != 4 {
		t.Errorf("sources = %d, want 4", sw.Sources)
	}
	exact := SmallWorldStats(h, 2)
	if sw.Diameter > exact.Diameter {
		t.Errorf("sampled diameter %d exceeds exact %d", sw.Diameter, exact.Diameter)
	}
	// Sampling more sources than vertices falls back to exact.
	all := SmallWorldSampled(h, 1000, 2, rng)
	if all.Diameter != exact.Diameter || all.AvgPathLength != exact.AvgPathLength {
		t.Error("oversampled stats differ from exact")
	}
}

func TestEccentricity(t *testing.T) {
	h := chainH(4)
	v0, _ := h.VertexID("v0")
	v2, _ := h.VertexID("v2")
	ecc0, reach0 := Eccentricity(h, v0)
	if ecc0 != 4 || reach0 != 4 {
		t.Errorf("ecc(v0) = %d reach %d, want 4, 4", ecc0, reach0)
	}
	ecc2, _ := Eccentricity(h, v2)
	if ecc2 != 2 {
		t.Errorf("ecc(v2) = %d, want 2", ecc2)
	}
}

func TestDistanceHistogram(t *testing.T) {
	h := chainH(4)
	hist := DistanceHistogram(h, 2)
	want := []int64{0, 4, 3, 2, 1}
	if len(hist) != len(want) {
		t.Fatalf("hist = %v, want %v", hist, want)
	}
	for i := range want {
		if hist[i] != want[i] {
			t.Errorf("hist[%d] = %d, want %d", i, hist[i], want[i])
		}
	}
	if FormatDistanceHistogram(hist) == "" {
		t.Error("FormatDistanceHistogram returned empty")
	}
}

func TestComputeStorageCosts(t *testing.T) {
	// One complex of 10 proteins: 10 pins vs 45 clique edges vs 9 star
	// edges vs 0 intersection edges.
	b := hypergraph.NewBuilder()
	names := make([]string, 10)
	for i := range names {
		names[i] = "p" + itoa(i)
	}
	b.AddEdge("big", names...)
	h := b.MustBuild()
	s := ComputeStorageCosts(h)
	if s.HypergraphPins != 10 || s.CliqueExpansionEdges != 45 || s.StarExpansionEdges != 9 || s.IntersectionEdges != 0 {
		t.Errorf("costs = %+v", s)
	}
	if math.Abs(s.CliqueBlowupFactor-4.5) > 1e-12 {
		t.Errorf("blowup = %v, want 4.5", s.CliqueBlowupFactor)
	}
}

func TestPropertySampledAvgConsistent(t *testing.T) {
	// Sampled average path length from all sources equals exact.
	prop := func(seed uint64) bool {
		rng := xrand.New(seed)
		c := 2 + rng.Intn(8)
		h := chainH(c)
		exact := SmallWorldStats(h, 2)
		sampled := SmallWorldSampled(h, h.NumVertices(), 2, rng)
		return sampled == exact
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDiameterAtLeastAvg(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := xrand.New(seed)
		nv := 3 + rng.Intn(12)
		ne := 1 + rng.Intn(10)
		edges := make([][]int32, ne)
		for f := range edges {
			size := 1 + rng.Intn(4)
			for i := 0; i < size; i++ {
				edges[f] = append(edges[f], int32(rng.Intn(nv)))
			}
		}
		h, err := hypergraph.FromEdgeSets(nv, edges)
		if err != nil {
			return false
		}
		sw := SmallWorldStats(h, 3)
		return float64(sw.Diameter) >= sw.AvgPathLength
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
