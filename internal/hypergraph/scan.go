package hypergraph

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strings"

	"hyperplex/internal/failpoint"
	"hyperplex/internal/run"
)

// TextEvents receives the records of the text format as ScanTextCtx
// encounters them.  A nil callback skips its record kind, so a
// counting pass can subscribe to only what it needs.
type TextEvents struct {
	// Vertex is called for each "vertex Name" isolated-vertex line.
	Vertex func(name string) error
	// Edge is called for each "name: members..." hyperedge line with
	// the whitespace-split member names; duplicates are not yet
	// collapsed.  The members slice is reused between calls and must
	// not be retained.
	Edge func(name string, members []string) error
	// ChargeBytes charges the consumed input bytes against the
	// budget's allocation estimate.  Callers that retain the parsed
	// content (ReadTextCtx) set it; streaming consumers that keep only
	// counters and names leave it false, so a MaxAlloc budget bounds
	// resident memory rather than input size.
	ChargeBytes bool
}

// ScanText parses the text format as a stream, delivering each record
// to ev without building a Hypergraph.  ReadText and the out-of-core
// store builder share this scanner, so both accept exactly the same
// inputs with the same diagnostics.
func ScanText(r io.Reader, ev TextEvents) error {
	return ScanTextCtx(context.Background(), r, ev)
}

// ScanTextCtx is ScanText honoring cancellation, deadline and any
// run.Budget attached to ctx, checked at entry and at bounded line
// intervals (one step per line read).
func ScanTextCtx(ctx context.Context, r io.Reader, ev TextEvents) error {
	meter := run.MeterFrom(ctx)
	if err := run.Tick(ctx, meter, 0); err != nil {
		return err
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	lineNo := 0
	pending, pendingBytes := 0, int64(0)
	for sc.Scan() {
		lineNo++
		pending++
		pendingBytes += int64(len(sc.Bytes())) + 1
		if pending >= readCheckEvery {
			if err := failpoint.Inject(fpReadLine); err != nil {
				return err
			}
			if err := run.Tick(ctx, meter, int64(pending)); err != nil {
				return err
			}
			if ev.ChargeBytes {
				if err := meter.Alloc(pendingBytes); err != nil {
					return err
				}
			}
			pending, pendingBytes = 0, 0
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "vertex "); ok {
			name := strings.TrimSpace(rest)
			if name == "" {
				return fmt.Errorf("hypergraph: line %d: empty vertex name", lineNo)
			}
			if ev.Vertex != nil {
				if err := ev.Vertex(name); err != nil {
					return err
				}
			}
			continue
		}
		name, members, ok := strings.Cut(line, ":")
		if !ok {
			return fmt.Errorf("hypergraph: line %d: expected \"name: members...\"", lineNo)
		}
		name = strings.TrimSpace(name)
		if name == "" {
			return fmt.Errorf("hypergraph: line %d: empty hyperedge name", lineNo)
		}
		if ev.Edge != nil {
			if err := ev.Edge(name, strings.Fields(members)); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("hypergraph: read: %w", err)
	}
	// Charge the tail that never reached a periodic checkpoint.
	if err := run.Tick(ctx, meter, int64(pending)); err != nil {
		return err
	}
	if ev.ChargeBytes {
		if err := meter.Alloc(pendingBytes); err != nil {
			return err
		}
	}
	return nil
}
