package hypergraph

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"

	"hyperplex/internal/failpoint"
)

// fpReadLine fires on every checkpoint of the text-format reader.
var fpReadLine = failpoint.Register("hypergraph.read.line")

// readCheckEvery bounds how many input lines may pass between
// cancellation/budget checkpoints in ReadTextCtx.
const readCheckEvery = 256

// The text format is one hyperedge per line:
//
//	EdgeName: member1 member2 member3 ...
//
// Blank lines and lines starting with '#' are ignored.  A line of the
// form "vertex Name" declares an isolated vertex.  This is the native
// on-disk format of the cmd/ tools.

// WriteText writes h in the text format.
func WriteText(w io.Writer, h *Hypergraph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# hypergraph |V|=%d |F|=%d |E|=%d\n", h.NumVertices(), h.NumEdges(), h.NumPins())

	inEdge := make([]bool, h.NumVertices())
	for f := 0; f < h.NumEdges(); f++ {
		name := h.EdgeName(f)
		if name == "" {
			name = fmt.Sprintf("f%d", f)
		}
		bw.WriteString(name)
		bw.WriteString(":")
		for _, v := range h.Vertices(f) {
			inEdge[v] = true
			bw.WriteByte(' ')
			vn := h.VertexName(int(v))
			if vn == "" {
				vn = fmt.Sprintf("v%d", v)
			}
			bw.WriteString(vn)
		}
		bw.WriteByte('\n')
	}
	for v := 0; v < h.NumVertices(); v++ {
		if !inEdge[v] {
			vn := h.VertexName(v)
			if vn == "" {
				vn = fmt.Sprintf("v%d", v)
			}
			fmt.Fprintf(bw, "vertex %s\n", vn)
		}
	}
	return bw.Flush()
}

// ReadText parses the text format.
func ReadText(r io.Reader) (*Hypergraph, error) {
	return ReadTextCtx(context.Background(), r)
}

// ReadTextCtx is ReadText honoring cancellation, deadline and any
// run.Budget attached to ctx, checked at entry and at bounded line
// intervals.  Each checkpoint charges one step per line read plus the
// bytes consumed against the budget's allocation estimate, so a budget
// bounds how much of a hostile or oversized input is admitted.  On any
// error it returns (nil, err).
func ReadTextCtx(ctx context.Context, r io.Reader) (*Hypergraph, error) {
	b := NewBuilder()
	err := ScanTextCtx(ctx, r, TextEvents{
		ChargeBytes: true,
		Vertex: func(name string) error {
			b.AddVertex(name)
			return nil
		},
		Edge: func(name string, members []string) error {
			b.AddEdge(name, members...)
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	return b.Build()
}

// jsonHypergraph is the JSON wire form: explicit vertex list (so
// isolated vertices survive a round trip) and named member lists.
type jsonHypergraph struct {
	Vertices []string            `json:"vertices"`
	Edges    map[string][]string `json:"edges"`
	Order    []string            `json:"edgeOrder"`
}

// MarshalJSON encodes h with stable ordering.
func (h *Hypergraph) MarshalJSON() ([]byte, error) {
	j := jsonHypergraph{
		Vertices: make([]string, h.NumVertices()),
		Edges:    make(map[string][]string, h.NumEdges()),
		Order:    make([]string, h.NumEdges()),
	}
	for v := range j.Vertices {
		name := h.VertexName(v)
		if name == "" {
			name = fmt.Sprintf("v%d", v)
		}
		j.Vertices[v] = name
	}
	for f := 0; f < h.NumEdges(); f++ {
		name := h.EdgeName(f)
		if name == "" {
			name = fmt.Sprintf("f%d", f)
		}
		j.Order[f] = name
		members := make([]string, 0, h.EdgeDegree(f))
		for _, v := range h.Vertices(f) {
			members = append(members, j.Vertices[v])
		}
		j.Edges[name] = members
	}
	return json.Marshal(j)
}

// UnmarshalJSONHypergraph decodes the JSON wire form into a new
// Hypergraph.  (A method form is impossible on an immutable type, so
// this is a function.)
func UnmarshalJSONHypergraph(data []byte) (*Hypergraph, error) {
	var j jsonHypergraph
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("hypergraph: json: %w", err)
	}
	b := NewBuilder()
	for _, v := range j.Vertices {
		b.AddVertex(v)
	}
	order := j.Order
	if len(order) == 0 {
		// Older files without an explicit order: sort for determinism.
		for name := range j.Edges {
			order = append(order, name)
		}
		sortStrings(order)
	}
	for _, name := range order {
		members, ok := j.Edges[name]
		if !ok {
			return nil, fmt.Errorf("hypergraph: json: edgeOrder names unknown edge %q", name)
		}
		b.AddEdge(name, members...)
	}
	return b.Build()
}

func sortStrings(s []string) {
	// Tiny insertion sort; files without an order section are small
	// legacy cases and this avoids importing sort for one call site.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
