package hypergraph

import (
	"strings"
	"testing"
)

func TestBuilderCounters(t *testing.T) {
	b := NewBuilder()
	if b.NumVertices() != 0 || b.NumEdges() != 0 {
		t.Error("fresh builder not empty")
	}
	b.AddEdge("e", "a", "b")
	if b.NumVertices() != 2 || b.NumEdges() != 1 {
		t.Errorf("counters = %d/%d", b.NumVertices(), b.NumEdges())
	}
}

func TestMustBuildPanics(t *testing.T) {
	b := NewBuilder()
	b.AddEdge("dup", "a")
	b.AddEdge("dup", "b")
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic on duplicate names")
		}
	}()
	b.MustBuild()
}

func TestDegreeSlicesAndEdgeSet(t *testing.T) {
	h := tiny(t)
	vd := h.VertexDegrees()
	if len(vd) != h.NumVertices() {
		t.Fatalf("VertexDegrees len = %d", len(vd))
	}
	sum := 0
	for _, d := range vd {
		sum += d
	}
	if sum != h.NumPins() {
		t.Errorf("Σ vertex degrees = %d, want %d", sum, h.NumPins())
	}
	ed := h.EdgeDegrees()
	sum2 := 0
	for _, d := range ed {
		sum2 += d
	}
	if sum2 != h.NumPins() {
		t.Errorf("Σ edge degrees = %d, want %d", sum2, h.NumPins())
	}
	c1, _ := h.EdgeID("c1")
	set := h.EdgeSet(c1)
	if len(set) != 3 {
		t.Errorf("EdgeSet(c1) = %v", set)
	}
	// Mutating the returned slice must not affect the hypergraph.
	set[0] = 999
	if h.Vertices(c1)[0] == 999 {
		t.Error("EdgeSet aliases internal storage")
	}
}

func TestStringer(t *testing.T) {
	h := tiny(t)
	s := h.String()
	if !strings.Contains(s, "|V|=6") || !strings.Contains(s, "|F|=5") {
		t.Errorf("String() = %q", s)
	}
}

func TestEdgesEqual(t *testing.T) {
	b := NewBuilder()
	b.AddEdge("e0", "a", "b")
	b.AddEdge("e1", "a", "b")
	b.AddEdge("e2", "a", "c")
	b.AddEdge("e3", "a", "b", "c")
	h := b.MustBuild()
	if !h.EdgesEqual(0, 1) {
		t.Error("identical edges not equal")
	}
	if h.EdgesEqual(0, 2) || h.EdgesEqual(0, 3) {
		t.Error("different edges reported equal")
	}
}

func TestUnnamedFallbacks(t *testing.T) {
	h, err := FromEdgeSets(2, [][]int32{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	// FromEdgeSets names everything; exercise the unnamed path via a
	// struct literal-ish construction: Sub of a hypergraph keeps names,
	// so instead check names resolve.
	if h.VertexName(0) != "v0" || h.EdgeName(0) != "f0" {
		t.Errorf("names = %q/%q", h.VertexName(0), h.EdgeName(0))
	}
}

func TestUnmarshalJSONWithoutOrder(t *testing.T) {
	// Legacy files lacking edgeOrder: edges sorted by name.
	in := `{"vertices":["a","b"],"edges":{"z":["a"],"m":["a","b"]}}`
	h, err := UnmarshalJSONHypergraph([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 2 {
		t.Fatalf("edges = %d", h.NumEdges())
	}
	if h.EdgeName(0) != "m" || h.EdgeName(1) != "z" {
		t.Errorf("order = %q, %q (want sorted)", h.EdgeName(0), h.EdgeName(1))
	}
}

func TestUnmarshalJSONBadOrder(t *testing.T) {
	in := `{"vertices":["a"],"edges":{"e":["a"]},"edgeOrder":["e","ghost"]}`
	if _, err := UnmarshalJSONHypergraph([]byte(in)); err == nil {
		t.Error("edgeOrder naming a missing edge accepted")
	}
}
