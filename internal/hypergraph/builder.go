package hypergraph

import (
	"fmt"
	"sort"
)

// Builder accumulates hyperedges and produces an immutable Hypergraph.
// The zero value is ready to use.  Vertices may be added explicitly
// (AddVertex) to include isolated vertices, or implicitly by naming
// them in a hyperedge.
type Builder struct {
	vertexNames []string
	vertexIndex map[string]int
	edges       []edgeUnderConstruction
}

type edgeUnderConstruction struct {
	name    string
	members []int32
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{vertexIndex: make(map[string]int)}
}

// AddVertex adds (or looks up) a vertex by name and returns its ID.
func (b *Builder) AddVertex(name string) int {
	if b.vertexIndex == nil {
		b.vertexIndex = make(map[string]int)
	}
	if v, ok := b.vertexIndex[name]; ok {
		return v
	}
	v := len(b.vertexNames)
	b.vertexNames = append(b.vertexNames, name)
	b.vertexIndex[name] = v
	return v
}

// AddEdge adds a hyperedge with the given name over the named member
// vertices, creating vertices as needed, and returns the hyperedge ID.
// Duplicate member names within one call are collapsed.
func (b *Builder) AddEdge(name string, members ...string) int {
	ids := make([]int32, 0, len(members))
	for _, m := range members {
		ids = append(ids, int32(b.AddVertex(m)))
	}
	return b.AddEdgeIDs(name, ids)
}

// AddEdgeIDs adds a hyperedge over existing vertex IDs and returns the
// hyperedge ID.  Duplicate IDs are collapsed; out-of-range IDs panic.
func (b *Builder) AddEdgeIDs(name string, members []int32) int {
	ms := append([]int32(nil), members...)
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	uniq := ms[:0]
	for i, v := range ms {
		if v < 0 || int(v) >= len(b.vertexNames) {
			//hyperplexvet:ignore nopanic documented builder precondition: members must name vertices already added
			panic(fmt.Sprintf("hypergraph: AddEdgeIDs member %d out of range [0,%d)", v, len(b.vertexNames)))
		}
		if i == 0 || ms[i-1] != v {
			uniq = append(uniq, v)
		}
	}
	f := len(b.edges)
	b.edges = append(b.edges, edgeUnderConstruction{name: name, members: uniq})
	return f
}

// NumVertices reports the number of vertices added so far.
func (b *Builder) NumVertices() int { return len(b.vertexNames) }

// NumEdges reports the number of hyperedges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build produces the immutable Hypergraph.  Hyperedge names must be
// unique when non-empty; vertex names are unique by construction.
func (b *Builder) Build() (*Hypergraph, error) {
	nv := len(b.vertexNames)
	ne := len(b.edges)

	h := &Hypergraph{
		vertexNames: append([]string(nil), b.vertexNames...),
		vertexIndex: make(map[string]int, nv),
		edgeNames:   make([]string, ne),
		edgeIndex:   make(map[string]int, ne),
		vOff:        make([]int, nv+1),
		eOff:        make([]int, ne+1),
	}
	for v, name := range h.vertexNames {
		h.vertexIndex[name] = v
	}

	pins := 0
	for f, e := range b.edges {
		h.edgeNames[f] = e.name
		if e.name != "" {
			if prev, dup := h.edgeIndex[e.name]; dup {
				return nil, fmt.Errorf("hypergraph: duplicate hyperedge name %q (edges %d and %d)", e.name, prev, f)
			}
			h.edgeIndex[e.name] = f
		}
		pins += len(e.members)
	}

	// Edge-side CSR.
	h.eAdj = make([]int32, 0, pins)
	for f, e := range b.edges {
		h.eOff[f] = len(h.eAdj)
		h.eAdj = append(h.eAdj, e.members...)
	}
	h.eOff[ne] = len(h.eAdj)

	// Vertex-side CSR by counting sort over pins; since edges are
	// appended in increasing f order, each vertex's edge list comes out
	// sorted.
	deg := make([]int, nv)
	for _, v := range h.eAdj {
		deg[v]++
	}
	for v := 0; v < nv; v++ {
		h.vOff[v+1] = h.vOff[v] + deg[v]
	}
	h.vAdj = make([]int32, pins)
	cursor := append([]int(nil), h.vOff[:nv]...)
	//hyperplexvet:ignore budgettick bounded: one transpose pass over pins the Ctx readers already charged line by line; Build itself carries no context
	for f := 0; f < ne; f++ {
		for _, v := range h.Vertices(f) {
			h.vAdj[cursor[v]] = int32(f)
			cursor[v]++
		}
	}
	return h, nil
}

// MustBuild is Build but panics on error; convenient in tests and
// generators whose inputs are known valid.
func (b *Builder) MustBuild() *Hypergraph {
	h, err := b.Build()
	if err != nil {
		panic(err)
	}
	return h
}

// FromEdgeSets builds an unnamed hypergraph over nv vertices directly
// from a slice of member-ID sets.  Vertices are named "v0", "v1", ...
// and edges "f0", "f1", ... so that exported files remain readable.
func FromEdgeSets(nv int, edges [][]int32) (*Hypergraph, error) {
	b := NewBuilder()
	for v := 0; v < nv; v++ {
		b.AddVertex(fmt.Sprintf("v%d", v))
	}
	for f, members := range edges {
		for _, v := range members {
			if v < 0 || int(v) >= nv {
				return nil, fmt.Errorf("hypergraph: edge %d member %d out of range [0,%d)", f, v, nv)
			}
		}
		b.AddEdgeIDs(fmt.Sprintf("f%d", f), members)
	}
	return b.Build()
}
