// Native fuzz targets for the text and JSON parsers.  An external test
// package so the round-trip checkers in internal/check (which imports
// hypergraph) can serve as the property being fuzzed.
package hypergraph_test

import (
	"context"
	"errors"
	"slices"
	"strings"
	"testing"
	"unicode/utf8"

	"hyperplex/internal/check"
	"hyperplex/internal/core"
	"hyperplex/internal/cover"
	"hyperplex/internal/hypergraph"
	"hyperplex/internal/run"
)

// fuzzCorePins caps the size of parsed hypergraphs that get the full
// sequential-vs-sharded decomposition cross-check, so the fuzzer's
// throughput stays dominated by the parser, not the peeler.
const fuzzCorePins = 400

// fuzzCoverPins caps the size of parsed hypergraphs that get the cover
// cross-checks: the greedy map-vs-CSR equality is cheap, but the
// primal–dual certificate runs an exact branch-and-bound search, so the
// cap is tighter than fuzzCorePins.
const fuzzCoverPins = 120

// fuzzCertifyNodes caps the exact search inside the primal–dual
// certificate; a capped search reports inconclusive, not failure.
const fuzzCertifyNodes = 20_000

// FuzzReadText feeds arbitrary bytes to the text parser and, for every
// input it accepts, requires the parsed hypergraph to be structurally
// valid and to survive write→read round trips with a write-stable
// canonical form.  The same bytes are also offered to the JSON parser,
// which must error or produce a valid hypergraph.
func FuzzReadText(f *testing.F) {
	f.Add("e: a b c\ne2: a\nvertex q\n")
	f.Add("x: y\n# comment\nz: y y y\n")
	f.Add("only: one\n")
	f.Add("empty:\n")
	f.Add("odd name: a:b #x\nvertex #y\n")
	f.Add(`{"vertices":["a"],"edges":{"e":["a"]},"edgeOrder":["e"]}`)
	// Long inputs reach the reader's periodic cancellation checkpoint
	// (every 256 lines), not just the entry check.
	f.Add(strings.Repeat("e: a b\n", 300))
	// Partition-hostile shapes for the sharded cross-check below: one
	// giant hyperedge spanning every shard, and duplicate-set edges
	// whose members straddle a shard boundary (the equal-set tie-break
	// must agree across schedules).
	f.Add("giant: a b c d e f g h i j k l m n o p\nleft: a b\nright: o p\n")
	f.Add("d1: h i\nd2: i h\ne1: a b c\ne2: f g h\ne3: c d e\n")
	// CSR-hostile shapes: a max-degree hub vertex (one long vertex→edge
	// adjacency row), a single all-vertices hyperedge (one long
	// edge→vertex row), and singleton edges only (every offset step is
	// exactly one).
	f.Add("h1: hub a\nh2: hub b\nh3: hub c\nh4: hub d\nh5: hub e\nh6: hub f\nh7: hub g\nh8: hub h\n")
	f.Add("all: a b c d e f g h i j\n")
	f.Add("s1: a\ns2: b\ns3: c\ns4: d\ns5: a\n")
	// Cover-hostile shapes: a cycle of equal-gain ties (the two greedy
	// kernels must break every tie identically), and a hub whose first
	// pick collapses the residual gains of everything else.
	f.Add("t1: a b\nt2: b c\nt3: c a\n")
	f.Add("hub1: h a\nhub2: h b\nhub3: h c\nhub4: h d\nlone: x y\n")
	f.Fuzz(func(t *testing.T, data string) {
		// Robustness: a pre-cancelled context surfaces context.Canceled
		// for every input — never a partial parse, never a different
		// error class.
		cctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := hypergraph.ReadTextCtx(cctx, strings.NewReader(data)); !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled ReadTextCtx of %q: got %v, want context.Canceled", data, err)
		}
		if h, err := hypergraph.UnmarshalJSONHypergraph([]byte(data)); err == nil {
			if err := h.Validate(); err != nil {
				t.Fatalf("JSON parser accepted %q but produced invalid hypergraph: %v", data, err)
			}
		}
		h, err := hypergraph.ReadText(strings.NewReader(data))
		if err != nil {
			return
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("text parser accepted %q but produced invalid hypergraph: %v", data, err)
		}
		if err := check.RoundTripText(h); err != nil {
			t.Fatalf("text round trip of %q: %v", data, err)
		}
		// A starved step budget must either reproduce the unbudgeted
		// parse or fail with a clean ErrBudgetExceeded — never return a
		// different hypergraph or another error class.
		bctx, _ := run.WithBudget(context.Background(), run.Budget{MaxSteps: 128})
		switch hb, berr := hypergraph.ReadTextCtx(bctx, strings.NewReader(data)); {
		case berr == nil:
			if hb.NumVertices() != h.NumVertices() || hb.NumEdges() != h.NumEdges() || hb.NumPins() != h.NumPins() {
				t.Fatalf("budgeted ReadTextCtx of %q changed shape: %d/%d/%d to %d/%d/%d", data,
					h.NumVertices(), h.NumEdges(), h.NumPins(), hb.NumVertices(), hb.NumEdges(), hb.NumPins())
			}
		case errors.Is(berr, run.ErrBudgetExceeded):
		default:
			t.Fatalf("budgeted ReadTextCtx of %q: got %v, want success or ErrBudgetExceeded", data, berr)
		}
		// Sequential, sharded and CSR core decomposition are
		// differentially equivalent on every accepted input: identical
		// vertex coreness and identical per-level edge families
		// (surviving-duplicate IDs may differ, so families are compared,
		// not raw edge coreness).
		if h.NumPins() <= fuzzCorePins {
			want := core.Decompose(h)
			got := core.ShardedDecompose(h, core.ShardedOptions{Shards: 3})
			if got.MaxK != want.MaxK {
				t.Fatalf("sharded MaxK of %q: got %d, want %d", data, got.MaxK, want.MaxK)
			}
			for v, c := range want.VertexCoreness {
				if got.VertexCoreness[v] != c {
					t.Fatalf("sharded coreness of %q: vertex %d got %d, want %d", data, v, got.VertexCoreness[v], c)
				}
			}
			for k := 1; k <= want.MaxK; k++ {
				if err := check.SameResult(h, got.Core(k), want.Core(k)); err != nil {
					t.Fatalf("sharded %d-core of %q: %v", k, data, err)
				}
			}
			flat := core.CSRDecompose(h)
			if flat.MaxK != want.MaxK {
				t.Fatalf("CSR MaxK of %q: got %d, want %d", data, flat.MaxK, want.MaxK)
			}
			for v, c := range want.VertexCoreness {
				if flat.VertexCoreness[v] != c {
					t.Fatalf("CSR coreness of %q: vertex %d got %d, want %d", data, v, flat.VertexCoreness[v], c)
				}
			}
			for k := 1; k <= want.MaxK; k++ {
				if err := check.SameResult(h, flat.Core(k), want.Core(k)); err != nil {
					t.Fatalf("CSR %d-core of %q: %v", k, data, err)
				}
			}
		}
		// The cover layer's two greedy kernels are differentially exact:
		// the map kernel and the CSR kernel must select the same vertices
		// in the same order with bitwise-equal weight, and must reject
		// the same inputs with the same error.  Coverable inputs also get
		// the primal–dual certificate, which sandwiches the 2-approx
		// between feasibility and the exact optimum (inconclusive if the
		// capped exact search gives up).
		if h.NumPins() <= fuzzCoverPins && h.NumEdges() > 0 {
			mc, merr := cover.Greedy(h, nil)
			cc, cerr := cover.CSRGreedy(h, nil)
			switch {
			case (merr == nil) != (cerr == nil):
				t.Fatalf("greedy kernels disagree on %q: map err %v, CSR err %v", data, merr, cerr)
			case merr != nil:
				if merr.Error() != cerr.Error() {
					t.Fatalf("greedy kernel errors differ on %q: map %q, CSR %q", data, merr, cerr)
				}
			default:
				if !slices.Equal(mc.Vertices, cc.Vertices) || mc.Weight != cc.Weight {
					t.Fatalf("greedy kernels diverge on %q: map %v w=%v, CSR %v w=%v",
						data, mc.Vertices, mc.Weight, cc.Vertices, cc.Weight)
				}
				if err := check.ValidCover(h, mc, nil, nil); err != nil {
					t.Fatalf("greedy cover of %q: %v", data, err)
				}
			}
			if merr == nil {
				if err := check.CertifyPrimalDual(h, nil, fuzzCertifyNodes); err != nil {
					t.Fatalf("primal–dual certificate of %q: %v", data, err)
				}
			}
		}
		// JSON keys collapse duplicate edge names and encoding/json
		// replaces invalid UTF-8 with U+FFFD, so the JSON round trip is
		// only promised for unique, valid-UTF-8 names.
		names := make(map[string]bool, h.NumEdges())
		for fe := 0; fe < h.NumEdges(); fe++ {
			name := h.EdgeName(fe)
			if names[name] || !utf8.ValidString(name) {
				return
			}
			names[name] = true
		}
		for v := 0; v < h.NumVertices(); v++ {
			if !utf8.ValidString(h.VertexName(v)) {
				return
			}
		}
		if err := check.RoundTripJSON(h); err != nil {
			t.Fatalf("JSON round trip of %q: %v", data, err)
		}
	})
}

// TestReadTextParsedIsValid pins a few accepted inputs: anything the
// parser accepts must satisfy the structural invariants.
func TestReadTextParsedIsValid(t *testing.T) {
	inputs := []string{
		"e: a b c\ne2: a\nvertex q\n",
		"x: y\n# comment\nz: y y y\n",
		"only: one\n",
	}
	for _, in := range inputs {
		h, err := hypergraph.ReadText(strings.NewReader(in))
		if err != nil {
			t.Errorf("ReadText(%q): %v", in, err)
			continue
		}
		if err := h.Validate(); err != nil {
			t.Errorf("ReadText(%q) produced invalid hypergraph: %v", in, err)
		}
	}
}
