// Differential round-trip tests over the generator sweep and the
// Cellzome dataset, covering all three IO formats plus JSON.  This
// file is an external test package because check imports hypergraph.
package hypergraph_test

import (
	"testing"

	"hyperplex/internal/check"
	"hyperplex/internal/dataset"
)

// TestDifferentialRoundTrip pushes every sweep instance through the
// text, JSON, Matrix Market and Pajek round-trip checkers.
func TestDifferentialRoundTrip(t *testing.T) {
	for i, h := range check.Instances(58, 0xF11E5) {
		if err := check.RoundTripAll(h); err != nil {
			t.Fatalf("instance %d %v: %v", i, h, err)
		}
	}
	if err := check.RoundTripAll(dataset.Cellzome().H); err != nil {
		t.Fatalf("Cellzome: %v", err)
	}
}
