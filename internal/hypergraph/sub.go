package hypergraph

import "sort"

// Sub returns the sub-hypergraph induced by keeping exactly the
// vertices with keepV[v] == true and the hyperedges with keepF[f] ==
// true.  A kept hyperedge retains only its kept member vertices (it may
// become empty).  Names carry over.  IDs are renumbered densely; the
// returned maps give old-ID → new-ID for vertices and edges (absent
// entries were dropped).
func (h *Hypergraph) Sub(keepV, keepF []bool) (*Hypergraph, map[int]int, map[int]int) {
	vMap := make(map[int]int)
	b := NewBuilder()
	for v := 0; v < h.NumVertices(); v++ {
		if keepV[v] {
			vMap[v] = b.AddVertex(h.VertexName(v))
		}
	}
	fMap := make(map[int]int)
	for f := 0; f < h.NumEdges(); f++ {
		if !keepF[f] {
			continue
		}
		var members []int32
		for _, v := range h.Vertices(f) {
			if nv, ok := vMap[int(v)]; ok {
				members = append(members, int32(nv))
			}
		}
		fMap[f] = b.AddEdgeIDs(h.EdgeName(f), members)
	}
	sub, err := b.Build()
	if err != nil {
		//hyperplexvet:ignore nopanic names were unique in h, so they stay unique in the restriction
		panic("hypergraph: Sub: " + err.Error())
	}
	return sub, vMap, fMap
}

// SubVertices returns the sub-hypergraph induced by a vertex subset:
// every hyperedge is restricted to the kept vertices, and hyperedges
// that become empty are dropped.
func (h *Hypergraph) SubVertices(keepV []bool) (*Hypergraph, map[int]int, map[int]int) {
	keepF := make([]bool, h.NumEdges())
	for f := 0; f < h.NumEdges(); f++ {
		for _, v := range h.Vertices(f) {
			if keepV[v] {
				keepF[f] = true
				break
			}
		}
	}
	return h.Sub(keepV, keepF)
}

// Dual returns the dual hypergraph H* in which the roles of vertices
// and hyperedges are exchanged: H* has one vertex per hyperedge of H
// and one hyperedge per vertex of H, with v* containing f* exactly when
// f contained v.  Names are carried across the exchange.
func (h *Hypergraph) Dual() *Hypergraph {
	b := NewBuilder()
	for f := 0; f < h.NumEdges(); f++ {
		name := h.EdgeName(f)
		if name == "" {
			name = dualName("f", f)
		}
		b.AddVertex(name)
	}
	for v := 0; v < h.NumVertices(); v++ {
		name := h.VertexName(v)
		if name == "" {
			name = dualName("v", v)
		}
		b.AddEdgeIDs(name, h.Edges(v))
	}
	d, err := b.Build()
	if err != nil {
		//hyperplexvet:ignore nopanic vertex and edge names were unique in h, so the exchanged names stay unique
		panic("hypergraph: Dual: " + err.Error())
	}
	return d
}

func dualName(prefix string, id int) string {
	// Small allocation-free itoa for the common path.
	if id == 0 {
		return prefix + "0"
	}
	var buf [20]byte
	i := len(buf)
	for id > 0 {
		i--
		buf[i] = byte('0' + id%10)
		id /= 10
	}
	return prefix + string(buf[i:])
}

// Reduce returns the reduced hypergraph: every hyperedge that is
// contained in another hyperedge is removed (including empty hyperedges
// and duplicates, of which the lowest-ID copy is kept), along with any
// vertices left in no hyperedge.  In a reduced hypergraph every
// hyperedge is maximal, the precondition of the k-core definition in
// the paper.  The returned maps give old→new IDs of survivors.
func (h *Hypergraph) Reduce() (*Hypergraph, map[int]int, map[int]int) {
	nonMax := NonMaximalEdges(h)
	keepF := make([]bool, h.NumEdges())
	for f := range keepF {
		keepF[f] = !nonMax[f] && h.EdgeDegree(f) > 0
	}
	keepV := make([]bool, h.NumVertices())
	for f := 0; f < h.NumEdges(); f++ {
		if keepF[f] {
			for _, v := range h.Vertices(f) {
				keepV[v] = true
			}
		}
	}
	return h.Sub(keepV, keepF)
}

// IsReduced reports whether no hyperedge is contained in another and no
// hyperedge is empty.
func (h *Hypergraph) IsReduced() bool {
	nonMax := NonMaximalEdges(h)
	for f := 0; f < h.NumEdges(); f++ {
		if nonMax[f] || h.EdgeDegree(f) == 0 {
			return false
		}
	}
	return true
}

// NonMaximalEdges returns a boolean slice marking every hyperedge f for
// which there exists a hyperedge g with f ⊆ g and f ≠ g, or with f and
// g equal as sets and g of lower ID (the tie-break that keeps exactly
// one copy of duplicated hyperedges).  Empty hyperedges are not marked;
// callers decide their fate.
//
// The implementation uses the paper's overlap-counting idea rather than
// pairwise set comparison: f is contained in g exactly when
// |f ∩ g| = d(f), and the overlaps are accumulated by a single pass
// over the vertex adjacency lists in O(Σ_v d(v)²) time.
func NonMaximalEdges(h *Hypergraph) []bool {
	ne := h.NumEdges()
	nonMax := make([]bool, ne)

	// For each edge f, walk the edges sharing a vertex with f and count
	// the shared vertices with a stamped scratch array.
	stamp := make([]int32, ne)
	count := make([]int, ne)
	for i := range stamp {
		stamp[i] = -1
	}
	touched := make([]int32, 0, 64)
	for f := 0; f < ne; f++ {
		df := h.EdgeDegree(f)
		if df == 0 {
			continue
		}
		touched = touched[:0]
		for _, v := range h.Vertices(f) {
			for _, g := range h.Edges(int(v)) {
				if g == int32(f) {
					continue
				}
				if stamp[g] != int32(f) {
					stamp[g] = int32(f)
					count[g] = 0
					touched = append(touched, g)
				}
				count[g]++
			}
		}
		for _, g := range touched {
			if count[g] != df {
				continue
			}
			dg := h.EdgeDegree(int(g))
			if dg > df || (dg == df && int(g) < f) {
				nonMax[f] = true
				break
			}
		}
	}
	return nonMax
}

// EdgesEqual reports whether two hyperedges have identical member sets.
func (h *Hypergraph) EdgesEqual(f, g int) bool {
	a, b := h.Vertices(f), h.Vertices(g)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Overlap returns |f ∩ g|, computed by merging the two sorted member
// lists in O(d(f)+d(g)).
func (h *Hypergraph) Overlap(f, g int) int {
	a, b := h.Vertices(f), h.Vertices(g)
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// SortedEdgeIDsByDegree returns hyperedge IDs sorted by ascending
// cardinality (ties by ID); useful for deterministic processing orders.
func (h *Hypergraph) SortedEdgeIDsByDegree() []int {
	ids := make([]int, h.NumEdges())
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(i, j int) bool {
		di, dj := h.EdgeDegree(ids[i]), h.EdgeDegree(ids[j])
		if di != dj {
			return di < dj
		}
		return ids[i] < ids[j]
	})
	return ids
}
