package hypergraph

import "fmt"

// FromCSRArrays assembles a Hypergraph directly over prebuilt CSR
// incidence arrays, aliasing the two pin slices rather than copying
// them.  This is the bridge the storage layer uses to present a
// memory-mapped store file as an ordinary Hypergraph: the offsets are
// widened into O(|V|+|F|) resident ints, while the pin arrays — the
// part that dominates at scale — stay wherever the caller keeps them
// (for example an mmap'd file section).  Name slices are optional; nil
// leaves that side unnamed, with the accessors returning "".
//
// Only shape consistency and name uniqueness are checked here.  The
// arrays are otherwise trusted structurally; callers with untrusted
// input should run csr.Validate (or Validate on the result) first, as
// the store's Open path does.
func FromCSRArrays(vOff, vAdj, eOff, eAdj []int32, vertexNames, edgeNames []string) (*Hypergraph, error) {
	if len(vOff) == 0 || len(eOff) == 0 {
		return nil, fmt.Errorf("hypergraph: offset arrays must have at least one entry")
	}
	nv, ne := len(vOff)-1, len(eOff)-1
	if int(vOff[nv]) != len(vAdj) {
		return nil, fmt.Errorf("hypergraph: vertex offsets end at %d, want %d", vOff[nv], len(vAdj))
	}
	if int(eOff[ne]) != len(eAdj) {
		return nil, fmt.Errorf("hypergraph: edge offsets end at %d, want %d", eOff[ne], len(eAdj))
	}
	if len(vAdj) != len(eAdj) {
		return nil, fmt.Errorf("hypergraph: pin counts disagree: %d vertex-side vs %d edge-side", len(vAdj), len(eAdj))
	}
	if vertexNames != nil && len(vertexNames) != nv {
		return nil, fmt.Errorf("hypergraph: %d vertex names for %d vertices", len(vertexNames), nv)
	}
	if edgeNames != nil && len(edgeNames) != ne {
		return nil, fmt.Errorf("hypergraph: %d edge names for %d hyperedges", len(edgeNames), ne)
	}
	h := &Hypergraph{
		vOff: widenOffsets(vOff),
		vAdj: vAdj,
		eOff: widenOffsets(eOff),
		eAdj: eAdj,
	}
	if vertexNames != nil {
		h.vertexNames = vertexNames
		h.vertexIndex = make(map[string]int, nv)
		for v, name := range vertexNames {
			if prev, dup := h.vertexIndex[name]; dup && name != "" {
				return nil, fmt.Errorf("hypergraph: duplicate vertex name %q (vertices %d and %d)", name, prev, v)
			}
			h.vertexIndex[name] = v
		}
	}
	if edgeNames != nil {
		h.edgeNames = edgeNames
		h.edgeIndex = make(map[string]int, ne)
		for f, name := range edgeNames {
			if name == "" {
				continue
			}
			if prev, dup := h.edgeIndex[name]; dup {
				return nil, fmt.Errorf("hypergraph: duplicate hyperedge name %q (edges %d and %d)", name, prev, f)
			}
			h.edgeIndex[name] = f
		}
	}
	return h, nil
}

func widenOffsets(off []int32) []int {
	out := make([]int, len(off))
	for i, x := range off {
		out[i] = int(x)
	}
	return out
}
