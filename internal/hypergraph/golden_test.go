package hypergraph

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenTextFormat pins the on-disk text format: reading the
// golden file and writing it back must reproduce it byte-for-byte, so
// accidental format changes fail loudly instead of silently breaking
// users' files.
func TestGoldenTextFormat(t *testing.T) {
	path := filepath.Join("testdata", "golden.txt")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	h, err := ReadText(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := WriteText(&out, h); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("text format drifted.\n--- got ---\n%s--- want ---\n%s", out.String(), want)
	}
}

// TestGoldenShape pins the golden file's structure.
func TestGoldenShape(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "golden.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	h, err := ReadText(f)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumVertices() != 6 || h.NumEdges() != 5 || h.NumPins() != 10 {
		t.Errorf("golden shape: %v", h)
	}
	if _, ok := h.VertexID("z"); !ok {
		t.Error("isolated vertex z missing")
	}
}
