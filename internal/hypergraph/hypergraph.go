// Package hypergraph implements the hypergraph model of Ramadan,
// Tarafdar and Pothen (IPPS 2004) for protein-complex data: vertices are
// proteins, hyperedges are complexes, and a hyperedge may contain an
// arbitrary number of vertices.
//
// A Hypergraph is an immutable, compactly stored incidence structure.
// Both directions of the incidence relation are stored in CSR
// (compressed sparse row) form: for every vertex the sorted list of
// hyperedges containing it, and for every hyperedge the sorted list of
// vertices it contains.  This is the O(|E|) representation the paper
// argues for (a complex with n members costs O(n), not the O(n²) of a
// clique expansion), where |E| denotes the number of pins, i.e. the sum
// of hyperedge cardinalities.
//
// Construction goes through a Builder; analysis algorithms live in the
// sibling packages core (k-cores), cover (vertex covers), and stats
// (network statistics).
package hypergraph

import (
	"fmt"
	"sort"
)

// Hypergraph is an immutable hypergraph H = (V, F).  Vertices and
// hyperedges are identified by dense integer IDs in [0, NumVertices())
// and [0, NumEdges()); optional string names map back and forth.
type Hypergraph struct {
	vertexNames []string
	edgeNames   []string
	vertexIndex map[string]int
	edgeIndex   map[string]int

	// CSR incidence, vertex side: edges containing vertex v are
	// vAdj[vOff[v]:vOff[v+1]], sorted ascending.
	vOff []int
	vAdj []int32

	// CSR incidence, edge side: vertices of hyperedge f are
	// eAdj[eOff[f]:eOff[f+1]], sorted ascending.
	eOff []int
	eAdj []int32
}

// NumVertices returns |V|.
func (h *Hypergraph) NumVertices() int { return len(h.vOff) - 1 }

// NumEdges returns |F|, the number of hyperedges.
func (h *Hypergraph) NumEdges() int { return len(h.eOff) - 1 }

// NumPins returns |E| = Σ_f d(f) = Σ_v d(v), the size of the incidence
// relation.  This is the space needed to represent the hypergraph.
func (h *Hypergraph) NumPins() int { return len(h.eAdj) }

// VertexDegree returns d(v), the number of hyperedges containing v.
func (h *Hypergraph) VertexDegree(v int) int { return h.vOff[v+1] - h.vOff[v] }

// EdgeDegree returns d(f), the number of vertices in hyperedge f.
func (h *Hypergraph) EdgeDegree(f int) int { return h.eOff[f+1] - h.eOff[f] }

// Edges returns the sorted hyperedge IDs containing vertex v.  The
// returned slice aliases internal storage and must not be modified.
func (h *Hypergraph) Edges(v int) []int32 { return h.vAdj[h.vOff[v]:h.vOff[v+1]] }

// Vertices returns the sorted vertex IDs of hyperedge f.  The returned
// slice aliases internal storage and must not be modified.
func (h *Hypergraph) Vertices(f int) []int32 { return h.eAdj[h.eOff[f]:h.eOff[f+1]] }

// VertexName returns the name of vertex v ("" if unnamed).
func (h *Hypergraph) VertexName(v int) string {
	if h.vertexNames == nil {
		return ""
	}
	return h.vertexNames[v]
}

// EdgeName returns the name of hyperedge f ("" if unnamed).
func (h *Hypergraph) EdgeName(f int) string {
	if h.edgeNames == nil {
		return ""
	}
	return h.edgeNames[f]
}

// VertexID returns the ID of the vertex with the given name, or (0,
// false) if no such vertex exists.
func (h *Hypergraph) VertexID(name string) (int, bool) {
	v, ok := h.vertexIndex[name]
	return v, ok
}

// EdgeID returns the ID of the hyperedge with the given name, or (0,
// false) if no such hyperedge exists.
func (h *Hypergraph) EdgeID(name string) (int, bool) {
	f, ok := h.edgeIndex[name]
	return f, ok
}

// MaxVertexDegree returns Δ_V, the maximum vertex degree (0 for an
// empty vertex set).
func (h *Hypergraph) MaxVertexDegree() int {
	max := 0
	for v := 0; v < h.NumVertices(); v++ {
		if d := h.VertexDegree(v); d > max {
			max = d
		}
	}
	return max
}

// MaxEdgeDegree returns Δ_F, the maximum hyperedge cardinality (0 for
// an empty edge set).
func (h *Hypergraph) MaxEdgeDegree() int {
	max := 0
	for f := 0; f < h.NumEdges(); f++ {
		if d := h.EdgeDegree(f); d > max {
			max = d
		}
	}
	return max
}

// EdgeContains reports whether hyperedge f contains vertex v, by binary
// search on the sorted member list.
func (h *Hypergraph) EdgeContains(f, v int) bool {
	m := h.Vertices(f)
	i := sort.Search(len(m), func(i int) bool { return m[i] >= int32(v) })
	return i < len(m) && m[i] == int32(v)
}

// Degree2Edge returns d₂(f): the number of other hyperedges with which
// f shares at least one vertex (the number of hyperedges reachable from
// f by a path of length two in the bipartite graph B(H)).
func (h *Hypergraph) Degree2Edge(f int) int {
	seen := make(map[int32]struct{})
	for _, v := range h.Vertices(f) {
		for _, g := range h.Edges(int(v)) {
			if g != int32(f) {
				seen[g] = struct{}{}
			}
		}
	}
	return len(seen)
}

// MaxDegree2Edge returns Δ₂,F, the maximum d₂(f) over all hyperedges.
// It runs in O(Σ_v d(v)²) time.
func (h *Hypergraph) MaxDegree2Edge() int {
	// Count distinct overlapping edges per edge with a stamped scratch
	// array instead of per-edge maps: one pass over each edge's
	// two-hop neighborhood.
	stamp := make([]int32, h.NumEdges())
	for i := range stamp {
		stamp[i] = -1
	}
	max := 0
	for f := 0; f < h.NumEdges(); f++ {
		cnt := 0
		for _, v := range h.Vertices(f) {
			for _, g := range h.Edges(int(v)) {
				if g != int32(f) && stamp[g] != int32(f) {
					stamp[g] = int32(f)
					cnt++
				}
			}
		}
		if cnt > max {
			max = cnt
		}
	}
	return max
}

// Degree2Vertex returns d₂(v): the number of distinct vertices other
// than v that share a hyperedge with v (vertices reachable by a
// length-two path in B(H)).
func (h *Hypergraph) Degree2Vertex(v int) int {
	seen := make(map[int32]struct{})
	for _, f := range h.Edges(v) {
		for _, w := range h.Vertices(int(f)) {
			if w != int32(v) {
				seen[w] = struct{}{}
			}
		}
	}
	return len(seen)
}

// VertexDegrees returns a fresh slice of all vertex degrees.
func (h *Hypergraph) VertexDegrees() []int {
	d := make([]int, h.NumVertices())
	for v := range d {
		d[v] = h.VertexDegree(v)
	}
	return d
}

// EdgeDegrees returns a fresh slice of all hyperedge cardinalities.
func (h *Hypergraph) EdgeDegrees() []int {
	d := make([]int, h.NumEdges())
	for f := range d {
		d[f] = h.EdgeDegree(f)
	}
	return d
}

// EdgeSet returns the members of hyperedge f as a fresh int slice
// (convenience for callers that want to own the memory).
func (h *Hypergraph) EdgeSet(f int) []int {
	m := h.Vertices(f)
	out := make([]int, len(m))
	for i, v := range m {
		out[i] = int(v)
	}
	return out
}

// RawCSR exposes the four CSR incidence arrays backing h: vertex-side
// offsets and adjacency (edges containing v are vAdj[vOff[v]:vOff[v+1]])
// and edge-side offsets and adjacency (vertices of f are
// eAdj[eOff[f]:eOff[f+1]]).  The returned slices alias internal storage
// and must not be modified; the accessor exists so flat-array kernel
// substrates (internal/csr) can be built without copying the pins.
func (h *Hypergraph) RawCSR() (vOff []int, vAdj []int32, eOff []int, eAdj []int32) {
	return h.vOff, h.vAdj, h.eOff, h.eAdj
}

// String returns a short diagnostic description.
func (h *Hypergraph) String() string {
	return fmt.Sprintf("Hypergraph{|V|=%d |F|=%d |E|=%d}", h.NumVertices(), h.NumEdges(), h.NumPins())
}

// Clone returns a deep copy of h.
func (h *Hypergraph) Clone() *Hypergraph {
	c := &Hypergraph{
		vOff: append([]int(nil), h.vOff...),
		vAdj: append([]int32(nil), h.vAdj...),
		eOff: append([]int(nil), h.eOff...),
		eAdj: append([]int32(nil), h.eAdj...),
	}
	if h.vertexNames != nil {
		c.vertexNames = append([]string(nil), h.vertexNames...)
		c.vertexIndex = make(map[string]int, len(h.vertexIndex))
		for k, v := range h.vertexIndex {
			c.vertexIndex[k] = v
		}
	}
	if h.edgeNames != nil {
		c.edgeNames = append([]string(nil), h.edgeNames...)
		c.edgeIndex = make(map[string]int, len(h.edgeIndex))
		for k, v := range h.edgeIndex {
			c.edgeIndex[k] = v
		}
	}
	return c
}

// Validate checks the structural invariants of the incidence arrays:
// CSR offsets monotone, member lists sorted and duplicate-free, and the
// two incidence directions mutually consistent.  It returns nil if the
// hypergraph is well formed.  It is used by tests and by readers of
// external files.
func (h *Hypergraph) Validate() error {
	nv, ne := h.NumVertices(), h.NumEdges()
	if h.vOff[0] != 0 || h.eOff[0] != 0 {
		return fmt.Errorf("hypergraph: offset arrays must start at 0")
	}
	if h.vOff[nv] != len(h.vAdj) {
		return fmt.Errorf("hypergraph: vertex offsets end at %d, want %d", h.vOff[nv], len(h.vAdj))
	}
	if h.eOff[ne] != len(h.eAdj) {
		return fmt.Errorf("hypergraph: edge offsets end at %d, want %d", h.eOff[ne], len(h.eAdj))
	}
	if len(h.vAdj) != len(h.eAdj) {
		return fmt.Errorf("hypergraph: pin counts disagree: %d vertex-side vs %d edge-side", len(h.vAdj), len(h.eAdj))
	}
	for v := 0; v < nv; v++ {
		if h.vOff[v+1] < h.vOff[v] {
			return fmt.Errorf("hypergraph: vertex %d has negative degree", v)
		}
		adj := h.Edges(v)
		for i, f := range adj {
			if f < 0 || int(f) >= ne {
				return fmt.Errorf("hypergraph: vertex %d lists out-of-range hyperedge %d", v, f)
			}
			if i > 0 && adj[i-1] >= f {
				return fmt.Errorf("hypergraph: vertex %d adjacency not strictly sorted", v)
			}
			if !h.EdgeContains(int(f), v) {
				return fmt.Errorf("hypergraph: vertex %d lists hyperedge %d, which does not contain it", v, f)
			}
		}
	}
	for f := 0; f < ne; f++ {
		if h.eOff[f+1] < h.eOff[f] {
			return fmt.Errorf("hypergraph: hyperedge %d has negative cardinality", f)
		}
		m := h.Vertices(f)
		for i, v := range m {
			if v < 0 || int(v) >= nv {
				return fmt.Errorf("hypergraph: hyperedge %d lists out-of-range vertex %d", f, v)
			}
			if i > 0 && m[i-1] >= v {
				return fmt.Errorf("hypergraph: hyperedge %d member list not strictly sorted", f)
			}
		}
	}
	return nil
}
