package hypergraph

import (
	"strings"
	"testing"
	"testing/quick"

	"hyperplex/internal/xrand"
)

// randomText produces arbitrary byte soup biased toward the syntax of
// the text format, to shake out parser panics.
func randomText(rng *xrand.RNG) string {
	chars := []byte("abc: #\n\t xyz0189%*\"\\")
	n := rng.Intn(200)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(chars[rng.Intn(len(chars))])
	}
	return sb.String()
}

func TestReadTextNeverPanics(t *testing.T) {
	prop := func(seed uint64) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		rng := xrand.New(seed)
		h, err := ReadText(strings.NewReader(randomText(rng)))
		if err == nil && h.Validate() != nil {
			return false // parsed successfully but invalid
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalJSONNeverPanics(t *testing.T) {
	prop := func(seed uint64) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		rng := xrand.New(seed)
		chars := []byte(`{}[]",:abcdef \n01`)
		n := rng.Intn(150)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(chars[rng.Intn(len(chars))])
		}
		h, err := UnmarshalJSONHypergraph([]byte(sb.String()))
		if err == nil && h.Validate() != nil {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestReadTextParsedIsValid(t *testing.T) {
	// Anything the parser accepts must satisfy the structural
	// invariants.
	inputs := []string{
		"e: a b c\ne2: a\nvertex q\n",
		"x: y\n# comment\nz: y y y\n",
		"only: one\n",
	}
	for _, in := range inputs {
		h, err := ReadText(strings.NewReader(in))
		if err != nil {
			t.Errorf("ReadText(%q): %v", in, err)
			continue
		}
		if err := h.Validate(); err != nil {
			t.Errorf("ReadText(%q) produced invalid hypergraph: %v", in, err)
		}
	}
}
